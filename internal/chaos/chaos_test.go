package chaos

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"k2/internal/dsm"
	"k2/internal/soc"
)

func TestStormCodecRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		st := Generate(seed, 4)
		s := st.String()
		back, err := ParseStorm(s)
		if err != nil {
			t.Fatalf("seed %d: ParseStorm(%q): %v", seed, s, err)
		}
		if !reflect.DeepEqual(st, back) {
			t.Fatalf("seed %d: round trip mismatch:\n  %#v\n  %#v", seed, st, back)
		}
		if back.String() != s {
			t.Fatalf("seed %d: re-serialization differs: %q vs %q", seed, back.String(), s)
		}
	}
}

func TestStormCodecHandWritten(t *testing.T) {
	st, err := ParseStorm("crash:weak@60ms+50ms;hang:weak2@8ms+20ms;irq:3@10ms;drop:0.01;delay:0.02/30µs;dup:0.005")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Events) != 3 || st.Events[0].Kind != Crash || st.Events[0].Dom != soc.Weak ||
		st.Events[0].At != 60*time.Millisecond || st.Events[0].Reboot != 50*time.Millisecond {
		t.Fatalf("bad parse: %#v", st)
	}
	if st.Links.DropP != 0.01 || st.Links.DelayP != 0.02 || st.Links.DelayMax != 30*time.Microsecond || st.Links.DupP != 0.005 {
		t.Fatalf("bad links: %#v", st.Links)
	}
	if _, err := ParseStorm("crash:nowhere@1ms"); err == nil {
		t.Fatal("bad domain accepted")
	}
	if _, err := ParseStorm("flood:weak@1ms"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if empty, err := ParseStorm("none"); err != nil || len(empty.Events) != 0 {
		t.Fatalf("'none' should parse to the zero storm: %#v, %v", empty, err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(42, 2), Generate(42, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different storms:\n  %v\n  %v", a, b)
	}
	for _, ev := range a.Events {
		if ev.Kind != IRQ {
			if ev.Dom == soc.Strong {
				t.Fatalf("generated storm targets the strong domain: %v", a)
			}
			if ev.Reboot <= 0 {
				t.Fatalf("generated crash/hang without a reboot: %v", a)
			}
		}
	}
}

func TestRunFaultFreePassesAllOracles(t *testing.T) {
	r := Run(Config{Seed: 1, Storm: &Storm{}})
	if len(r.Violations) != 0 {
		t.Fatalf("fault-free run violated the oracle: %v", r.Violations)
	}
	for w, n := range r.Completed {
		if n == 0 {
			t.Fatalf("worker %d completed nothing", w)
		}
	}
	if r.OwnedByStrong != r.SharedPages {
		t.Fatalf("settle sweep left %d of %d pages unconverged", r.OwnedByStrong, r.SharedPages)
	}
}

func TestRunStormPassesAndConverges(t *testing.T) {
	base := Run(Config{Seed: 0, Storm: &Storm{}})
	for seed := int64(1); seed <= 6; seed++ {
		r := Run(Config{Seed: seed})
		if len(r.Violations) != 0 {
			t.Fatalf("seed %d: oracle violations: %v\nrepro: %s",
				seed, r.Violations, ReproCommand(seed, r.WeakDomains, r.Storm, r.Protocol))
		}
		if vs := Diverges(base, r); len(vs) != 0 {
			t.Fatalf("seed %d: diverged from the fault-free run: %v\nrepro: %s",
				seed, vs, ReproCommand(seed, r.WeakDomains, r.Storm, r.Protocol))
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, b := Run(Config{Seed: 9}), Run(Config{Seed: 9})
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestRunFourWeakDomains(t *testing.T) {
	base := Run(Config{Seed: 0, WeakDomains: 4, Storm: &Storm{}})
	r := Run(Config{Seed: 3, WeakDomains: 4})
	if len(r.Violations) != 0 {
		t.Fatalf("violations: %v\nrepro: %s", r.Violations, ReproCommand(3, 4, r.Storm, r.Protocol))
	}
	if vs := Diverges(base, r); len(vs) != 0 {
		t.Fatalf("diverged: %v", vs)
	}
}

// Under the MSI protocol the same storm sweep must pass every oracle and
// converge to the fault-free MSI baseline — including the hint-chain
// liveness check the final audit runs when the platform quiesces.
func TestMSIStormsPassAndConverge(t *testing.T) {
	base := Run(Config{Seed: 0, Protocol: dsm.MSI, Storm: &Storm{}})
	for seed := int64(1); seed <= 4; seed++ {
		r := Run(Config{Seed: seed, Protocol: dsm.MSI})
		if len(r.Violations) != 0 {
			t.Fatalf("seed %d: oracle violations: %v\nrepro: %s",
				seed, r.Violations, ReproCommand(seed, r.WeakDomains, r.Storm, r.Protocol))
		}
		if vs := Diverges(base, r); len(vs) != 0 {
			t.Fatalf("seed %d: diverged from the fault-free MSI run: %v\nrepro: %s",
				seed, vs, ReproCommand(seed, r.WeakDomains, r.Storm, r.Protocol))
		}
	}
}

// Scripted MSI crash storms: kernels die while they are owners, sharers or
// probOwner-chain links, so recovery must purge sharer sets and repair
// forwarding hints (dsm.ReclaimDead) for the final audit to pass.
func TestMSICrashStormRegressions(t *testing.T) {
	base := Run(Config{Seed: 0, WeakDomains: 4, Protocol: dsm.MSI, Storm: &Storm{}})
	for _, spec := range []string{
		// A single sharer/owner dies mid-run and reboots: crash during the
		// invalidation window of whatever faults are in flight.
		"crash:weak@6ms+30ms",
		// Two kernels die in quick succession — one of them a probOwner
		// target of the survivors' stale hints.
		"crash:weak@6ms+30ms;crash:weak3@9ms+30ms",
		// A hang (silent, not crashed) plus lossy links: forwarded Gets and
		// invalidation acks are dropped and must be resent or recovered.
		"hang:weak2@8ms+25ms;drop:0.02",
	} {
		st, err := ParseStorm(spec)
		if err != nil {
			t.Fatal(err)
		}
		r := Run(Config{Seed: 11, WeakDomains: 4, Protocol: dsm.MSI, Storm: &st})
		if len(r.Violations) != 0 {
			t.Fatalf("storm %q: oracle violations: %v\nrepro: %s",
				spec, r.Violations, ReproCommand(11, 4, st, dsm.MSI))
		}
		if vs := Diverges(base, r); len(vs) != 0 {
			t.Fatalf("storm %q: diverged: %v", spec, vs)
		}
		if r.DSM.Faults == 0 {
			t.Fatalf("storm %q: the workload drove no DSM faults", spec)
		}
	}
}

// The MSI chaos run must be deterministic, like the two-state one.
func TestMSIRunDeterministic(t *testing.T) {
	a := Run(Config{Seed: 9, Protocol: dsm.MSI})
	b := Run(Config{Seed: 9, Protocol: dsm.MSI})
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}
