package chaos

// Shrink reduces a failing storm to a 1-minimal schedule: it repeatedly
// tries removing each unit — every scripted event plus the three link-fault
// knobs (drop, delay, duplicate) — re-running the predicate after each
// removal and keeping any removal under which the storm still fails, until
// a full pass removes nothing or the run budget is exhausted. The result
// still fails, and removing any single remaining unit makes it pass (up to
// budget truncation).
//
// fails must be a pure predicate of the storm (chaos runs are
// deterministic, so re-running the same candidate always agrees). budget
// caps how many times fails may be invoked; <= 0 means a default of 200.
func Shrink(storm Storm, fails func(Storm) bool, budget int) Storm {
	if budget <= 0 {
		budget = 200
	}
	runs := 0
	try := func(st Storm) bool {
		if runs >= budget {
			return false
		}
		runs++
		return fails(st)
	}
	cur := storm
	for {
		shrunk := false

		// Events, scanned back to front so removals do not disturb the
		// indices still to be visited in this pass.
		for i := len(cur.Events) - 1; i >= 0; i-- {
			cand := cur
			cand.Events = make([]Event, 0, len(cur.Events)-1)
			cand.Events = append(cand.Events, cur.Events[:i]...)
			cand.Events = append(cand.Events, cur.Events[i+1:]...)
			if try(cand) {
				cur = cand
				shrunk = true
			}
		}

		// Link-fault knobs, one at a time.
		if cur.Links.DropP > 0 {
			cand := cur
			cand.Links.DropP = 0
			if try(cand) {
				cur = cand
				shrunk = true
			}
		}
		if cur.Links.DelayP > 0 {
			cand := cur
			cand.Links.DelayP = 0
			cand.Links.DelayMax = 0
			if try(cand) {
				cur = cand
				shrunk = true
			}
		}
		if cur.Links.DupP > 0 {
			cand := cur
			cand.Links.DupP = 0
			if try(cand) {
				cur = cand
				shrunk = true
			}
		}

		if !shrunk || runs >= budget {
			return cur
		}
	}
}
