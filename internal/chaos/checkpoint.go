package chaos

import (
	"fmt"
	"sync"
	"time"

	"k2/internal/check"
	"k2/internal/core"
	"k2/internal/dsm"
	"k2/internal/fault"
	"k2/internal/sim"
	"k2/internal/soc"
)

// preRunSafe is the boot budget of the pre-run timing regime: a storm whose
// earliest scripted fault lands at or after this bound releases its
// workload from the boot-ready barrier (and may restore a checkpoint
// instead of booting), because no fault can land mid-boot. Generated storms
// always qualify (their events start at 5 ms); a hand-written storm that
// faults earlier keeps the legacy cold path. bootRecoveryReady asserts the
// platform actually boots inside the bound.
const preRunSafe = 2 * time.Millisecond

// recoveryOptions is the standard recovery platform every chaos run boots:
// reliable mailbox transport, the shadow-kernel watchdog, and a bounded DSM
// owner timeout on a platform with weak weak domains, under the given
// coherence protocol.
func recoveryOptions(weak int, proto dsm.Protocol) core.Options {
	op := core.Options{Mode: core.K2Mode, WeakDomains: weak}
	scfg := soc.DefaultConfig().WithWeakDomains(weak)
	rel := soc.DefaultReliableParams()
	scfg.Reliable = &rel
	op.SoC = &scfg
	wd := core.DefaultWatchdogParams()
	op.Watchdog = &wd
	prm := dsm.DefaultParams()
	prm.OwnerTimeout = 200 * time.Microsecond
	prm.Protocol = proto
	op.DSMParams = &prm
	return op
}

// bootRecoveryReady boots cold on e and runs it to the boot-ready barrier:
// a monitor proc spawned before Boot is the first Ready waiter, so the
// engine pauses at exactly the quiesce instant.
func bootRecoveryReady(e *sim.Engine, op core.Options) (*core.OS, error) {
	var o *core.OS
	e.Spawn("boot-monitor", func(p *sim.Proc) {
		o.Ready.Wait(p)
		e.Stop()
	})
	var err error
	if o, err = core.Boot(e, op); err != nil {
		return nil, err
	}
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		return nil, err
	}
	if !o.Ready.Fired() {
		return nil, fmt.Errorf("chaos: boot never reached the ready barrier")
	}
	if now := e.Now(); now > sim.Time(preRunSafe) {
		return nil, fmt.Errorf("chaos: boot ran to %v, past the %v pre-run bound", now, preRunSafe)
	}
	return o, nil
}

// ckptEntry memoises the booted-platform snapshot for one weak-domain
// count — or the reason it could not be taken, so an uncapturable platform
// is probed once and every later run boots cold.
type ckptEntry struct {
	once sync.Once
	snp  *core.Snapshot
	err  error
}

// ckptKey identifies one cached recovery platform: its width and its
// coherence protocol (an MSI platform carries probOwner state from boot, so
// the two protocols can never share a snapshot).
type ckptKey struct {
	weak  int
	proto dsm.Protocol
}

var ckptCache sync.Map // ckptKey -> *ckptEntry

// recoverySnapshot returns the process-wide checkpoint of the standard
// recovery platform with weak weak domains under proto, capturing it on
// first request from a throwaway source system audited by the invariant
// oracle.
func recoverySnapshot(weak int, proto dsm.Protocol) (*core.Snapshot, error) {
	v, _ := ckptCache.LoadOrStore(ckptKey{weak, proto}, &ckptEntry{})
	ent := v.(*ckptEntry)
	ent.once.Do(func() {
		ent.snp, ent.err = func() (*core.Snapshot, error) {
			e := sim.NewEngine()
			o, err := bootRecoveryReady(e, recoveryOptions(weak, proto))
			if err != nil {
				return nil, err
			}
			snp, err := o.Snapshot()
			if err != nil {
				return nil, err
			}
			if vs := check.New(o).Check(); len(vs) > 0 {
				return nil, fmt.Errorf("chaos: platform unsound at capture: %v", vs[0])
			}
			return snp, nil
		}()
	})
	return ent.snp, ent.err
}

// ShrinkReport is the cost record of one instrumented shrink: the schedule
// it started from, the 1-minimal schedule it found, and how much work the
// predicate runs cost.
type ShrinkReport struct {
	Storm  Storm
	Shrunk Storm
	Runs   int    // predicate invocations
	Events uint64 // events dispatched across all predicate runs
}

// shrinkInstrumented shrinks storm with an instrumented Run predicate,
// summing each candidate run's dispatched events into the report.
func shrinkInstrumented(storm Storm, seed int64, weak, budget int, checkpoint bool) ShrinkReport {
	rep := ShrinkReport{Storm: storm}
	fails := func(st Storm) bool {
		r := Run(Config{Seed: seed, WeakDomains: weak, Storm: &st, Checkpoint: checkpoint})
		rep.Runs++
		rep.Events += r.Executed
		return len(r.Violations) > 0
	}
	rep.Shrunk = Shrink(storm, fails, budget)
	return rep
}

// PlantedBugStorm is the checkpoint demo's schedule: a crash that never
// reboots (so its workers freeze and the liveness oracle trips — the
// planted bug), wrapped in scripted noise and a mild link fault that shrink
// must discard. Every event lands after the boot-ready barrier, so
// checkpointed candidate runs replay only the post-boot suffix.
func PlantedBugStorm() Storm {
	return Storm{
		Events: []Event{
			{Kind: IRQ, Line: 1, At: 8 * time.Millisecond},
			{Kind: Crash, Dom: soc.Weak, At: 10 * time.Millisecond}, // Reboot 0: stays dead
			{Kind: IRQ, Line: 2, At: 12 * time.Millisecond},
		},
		Links: fault.LinkFaults{DropP: 0.004},
	}
}

// CheckpointDemo shrinks the planted-bug storm twice — cold boots versus
// checkpoint restores — and returns both cost reports. The two shrinks take
// identical decisions (checkpointing never changes a run's results), so
// the reports differ only in Events: the checkpointed side inherits each
// candidate's boot from the snapshot instead of re-executing it. k2bench
// -checkpoint-demo prints the comparison; the chaos tests assert the
// saving is real.
func CheckpointDemo(weak, budget int) (cold, warm ShrinkReport) {
	storm := PlantedBugStorm()
	cold = shrinkInstrumented(storm, 1, weak, budget, false)
	warm = shrinkInstrumented(storm, 1, weak, budget, true)
	return cold, warm
}
