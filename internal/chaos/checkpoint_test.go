package chaos

import (
	"reflect"
	"testing"
)

// A checkpointed run is byte-identical to a cold run of the same storm in
// every observable field; only Executed differs (the inherited boot share)
// and Restored records which path served the boot.
func TestCheckpointRunByteIdentical(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		st := Generate(seed, 2)
		cold := Run(Config{Seed: seed, WeakDomains: 2, Storm: &st})
		warm := Run(Config{Seed: seed, WeakDomains: 2, Storm: &st, Checkpoint: true})
		if !warm.Restored {
			t.Fatalf("seed %d: checkpointed run did not restore (platform uncapturable?)", seed)
		}
		if warm.Executed >= cold.Executed {
			t.Fatalf("seed %d: checkpointed run executed %d events, cold %d — boot was not skipped",
				seed, warm.Executed, cold.Executed)
		}
		cn, wn := cold, warm
		cn.Executed, wn.Executed = 0, 0
		cn.Restored, wn.Restored = false, false
		if !reflect.DeepEqual(cn, wn) {
			t.Fatalf("seed %d: checkpointed run diverged from cold run:\ncold: %+v\nwarm: %+v", seed, cn, wn)
		}
	}
}

// A storm that faults before the boot-ready barrier must keep the legacy
// cold path even when a checkpoint is requested.
func TestCheckpointRefusedForEarlyFault(t *testing.T) {
	st, err := ParseStorm("irq:1@1ms")
	if err != nil {
		t.Fatal(err)
	}
	r := Run(Config{Seed: 1, WeakDomains: 2, Storm: &st, Checkpoint: true})
	if r.Restored {
		t.Fatal("run with a mid-boot fault restored a checkpoint")
	}
}

// The tentpole's shrinker acceptance: shrinking the planted-bug storm from
// the checkpoint takes the same decisions and finds the same minimal
// schedule as cold shrinking, while replaying measurably fewer events —
// each candidate run inherits boot instead of re-executing it.
func TestShrinkCheckpointSpeedup(t *testing.T) {
	cold, warm := CheckpointDemo(2, 0)
	if got, want := warm.Shrunk.String(), cold.Shrunk.String(); got != want {
		t.Fatalf("checkpointed shrink found %q, cold shrink %q", got, want)
	}
	if len(warm.Shrunk.Events) >= len(PlantedBugStorm().Events) {
		t.Fatalf("shrink removed nothing: %q", warm.Shrunk)
	}
	if warm.Runs != cold.Runs {
		t.Fatalf("checkpointed shrink took %d predicate runs, cold %d", warm.Runs, cold.Runs)
	}
	if warm.Events >= cold.Events {
		t.Fatalf("checkpointed shrink executed %d events vs %d cold — no saving", warm.Events, cold.Events)
	}
	saved := 100 * (1 - float64(warm.Events)/float64(cold.Events))
	t.Logf("shrunk %q -> %q in %d predicate runs; cold replayed %d events, checkpointed %d (%.1f%% fewer)",
		cold.Storm, cold.Shrunk, cold.Runs, cold.Events, warm.Events, saved)
}
