package chaos

import (
	"fmt"
	"time"

	"k2/internal/check"
	"k2/internal/core"
	"k2/internal/dsm"
	"k2/internal/fault"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

// failHook, when non-nil, replaces the simulation entirely: Run reports
// whatever violations the hook assigns to the storm. It exists only so the
// shrinker tests can plant a known minimal bug; production code never sets
// it.
var failHook func(Storm) []check.Violation

// Config parameterizes one chaos run.
type Config struct {
	// Seed drives storm generation (when Storm is nil) and the plan's
	// probabilistic link draws.
	Seed int64
	// WeakDomains sizes the platform (default 2).
	WeakDomains int
	// Protocol selects the DSM coherence protocol of the recovery platform
	// (dsm.TwoState, the zero value, by default).
	Protocol dsm.Protocol
	// Storm overrides the generated schedule (e.g. a -storm repro or a
	// shrinker candidate). The zero Storm is the fault-free baseline.
	Storm *Storm
	// Workers and Episodes size the sensorhub workload (defaults 4, 12).
	Workers, Episodes int
	// NewEngine, if set, builds the engine (the experiment package passes
	// its probe-registering constructor so telemetry and k2d cancellation
	// reach chaos runs). Default sim.NewEngine.
	NewEngine func() *sim.Engine
	// BootOpts, if set, adjusts the boot options after the standard
	// recovery platform is configured (e.g. to install a trace sink).
	BootOpts func(*core.Options)
	// Checkpoint serves the boot by restoring a process-wide cached
	// snapshot of the booted recovery platform (one per weak-domain count)
	// instead of booting cold. Only storms whose earliest scripted fault
	// lands after the boot-ready barrier can use it, and every result
	// except Executed is byte-identical either way — the shrinker turns it
	// on to replay only each candidate's post-boot suffix. Ignored when
	// BootOpts is set (the adjusted options may not match the cached
	// platform) or when the platform cannot be captured quiescently.
	Checkpoint bool
}

// Result is the outcome and convergence fingerprint of one chaos run.
type Result struct {
	Seed        int64
	WeakDomains int
	Storm       Storm

	// Violations is every deduplicated oracle failure, from the periodic
	// quiesce checks and the final audit. Empty means the run passed.
	Violations []check.Violation

	// Convergence fingerprint, captured after the settle sweep.
	Completed     []int // episodes finished, per worker
	SharedPages   int
	OwnedByStrong int   // pages the directory assigns to the strong kernel
	TotalPages    []int // per-kernel buddy totals
	FreePages     []int // per-kernel buddy free counts
	LiveProcs     int
	CrashedEver   []bool

	// Protocol echoes the coherence protocol the platform ran.
	Protocol dsm.Protocol
	// DSM is the platform's aggregate coherence-protocol counters.
	DSM dsm.Counters

	// Recovery and transport record.
	Faults     fault.Stats
	Mail       soc.MailboxStats
	Deaths     int
	Reboots    int
	StaleFrees int
	SpanMS     float64
	EnergyMJ   float64

	// Executed counts the events the engine dispatched for this run. A
	// checkpointed run inherits boot's share from the snapshot without
	// executing it, which is exactly the shrinker's per-candidate saving;
	// everything else in the Result is unaffected by Restored.
	Executed uint64
	// Restored reports whether the boot was served from a checkpoint.
	Restored bool
}

// Run executes one storm against the standard recovery platform (reliable
// transport, watchdog, bounded DSM owner timeout) with the invariant oracle
// attached: periodic mid-run checks, then — once the workload and the
// storm's last effect are past — a settle sweep from the strong kernel that
// rewrites every shared page (forcing post-recovery ownership to converge
// and proving no page is wedged), a quiescence wait, and the final audit.
func Run(cfg Config) Result {
	weak := cfg.WeakDomains
	if weak <= 0 {
		weak = 2
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	episodes := cfg.Episodes
	if episodes <= 0 {
		episodes = 12
	}
	var storm Storm
	if cfg.Storm != nil {
		storm = *cfg.Storm
	} else {
		storm = Generate(cfg.Seed, weak)
	}
	res := Result{Seed: cfg.Seed, WeakDomains: weak, Storm: storm, Protocol: cfg.Protocol}
	res.CrashedEver = storm.CrashedEver(1 + weak)
	if failHook != nil {
		res.Violations = failHook(storm)
		return res
	}

	newEng := cfg.NewEngine
	if newEng == nil {
		newEng = sim.NewEngine
	}
	e := newEng()
	op := recoveryOptions(weak, cfg.Protocol)
	if cfg.BootOpts != nil {
		cfg.BootOpts(&op)
	}

	// Two deterministic timing regimes, chosen by the storm alone so that
	// checkpointing can never change a result: storms whose every scripted
	// fault lands after the boot-ready barrier release the workload from
	// the barrier (and may restore a checkpoint instead of booting cold);
	// storms that fault during boot keep the legacy cold path.
	preRun := storm.earliestEvent() >= preRunSafe
	var o *core.OS
	var injected uint64
	var violations []check.Violation
	if preRun && cfg.Checkpoint && cfg.BootOpts == nil {
		if snp, err := recoverySnapshot(weak, cfg.Protocol); err == nil {
			if ro, rerr := snp.Restore(e, nil); rerr == nil {
				o = ro
				res.Restored = true
				injected = e.Stats().Dispatched // boot's share, inherited not executed
			}
		}
	}
	if o == nil {
		var err error
		if preRun {
			o, err = bootRecoveryReady(e, op)
		} else {
			o, err = core.Boot(e, op)
		}
		if err != nil {
			panic(err)
		}
	}
	suite := check.New(o)
	if res.Restored {
		// Audit the restore boundary before releasing the workload.
		violations = append(violations, suite.Check()...)
	}
	plan := storm.Plan(cfg.Seed)
	plan.Arm(o.S, o.Trace)

	finished := false

	// Periodic quiesce-point checks of the instantaneous invariants.
	check.ScheduleChecks(e, suite, 25*time.Millisecond, 150*time.Millisecond, 25*time.Millisecond,
		func() bool { return finished },
		func(vs []check.Violation) { violations = append(violations, vs...) })

	capture := func() {
		res.SharedPages = o.DSM.SharedPages()
		for _, pfn := range o.DSM.Pages() {
			if o.DSM.Owner(pfn) == soc.Strong {
				res.OwnedByStrong++
			}
		}
		for _, b := range o.Mem.Buddies {
			res.TotalPages = append(res.TotalPages, b.TotalPages())
			res.FreePages = append(res.FreePages, b.FreePages())
		}
		res.LiveProcs = e.LiveProcs()
		res.DSM = o.DSM.Totals()
		res.Faults = plan.Stats
		res.Mail = o.S.Mailbox.Stats
		res.StaleFrees = o.Mem.StaleFrees
		if o.Watchdog != nil {
			res.Deaths = len(o.Watchdog.Deaths)
			res.Reboots = o.Watchdog.Reboots
		}
		res.EnergyMJ = o.EnergyJ() * 1e3
		res.Executed = e.Stats().Dispatched - injected
	}

	finish := func(vs []check.Violation) {
		violations = append(violations, vs...)
		finished = true
		capture()
		e.Stop()
	}

	// The sensorhub workload (as in the faults/scale experiments): workers
	// frozen by a crash resume after the scripted reboot, so every
	// obligation fires — or the liveness oracle says why not.
	done := 0
	completed := make([]int, workers)
	res.Completed = completed
	start := e.Now()
	settle := func(now sim.Time) {
		res.SpanMS = float64(now.Sub(start).Microseconds()) / 1e3
		at := now
		if last := sim.Time(storm.LastEffect()); last > at {
			at = last
		}
		at += sim.Time(8 * time.Millisecond)
		e.At(at, func() {
			if finished {
				return
			}
			e.Spawn("chaos-settle", func(p *sim.Proc) {
				quiesced := suite.SettleSweep(p)
				if finished {
					return
				}
				suite.RequireQuiescent = quiesced
				vs := suite.Final()
				if !quiesced {
					vs = append(vs, check.Violation{Oracle: "liveness",
						Msg: "transport/bottom-half never quiesced within the settle window"})
				}
				finish(vs)
			})
		})
	}
	for w := 0; w < workers; w++ {
		w := w
		name := fmt.Sprintf("chaos-sense-%d", w)
		ev := sim.NewEvent(e)
		suite.Obligation(name, ev)
		o.SpawnProcess(name).Spawn(sched.NightWatch, name, func(th *sched.Thread) {
			th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
			for i := 0; i < episodes; i++ {
				o.DMA.Transfer(th, 4<<10)
				th.Exec(soc.Work(50 * time.Microsecond))
				th.SleepIdle(5 * time.Millisecond)
				completed[w]++
			}
			ev.Fire()
			done++
			if done == workers {
				settle(th.P().Now())
			}
		})
	}

	// Hard backstop: if the workload or the settle sweep wedges (a manual
	// storm may never reboot a domain), audit what we have and stop — the
	// unfired obligations become the liveness report.
	hardAt := sim.Time(500 * time.Millisecond)
	if last := sim.Time(2*storm.LastEffect()) + sim.Time(200*time.Millisecond); last > hardAt {
		hardAt = last
	}
	e.At(hardAt, func() {
		if finished {
			return
		}
		vs := suite.Final()
		vs = append(vs, check.Violation{Oracle: "liveness",
			Msg: "run did not complete within the hard deadline"})
		finish(vs)
	})

	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}
	res.Violations = dedup(violations)
	return res
}

// dedup drops repeated violations (a persistent failure trips every
// quiesce check) while preserving first-occurrence order.
func dedup(vs []check.Violation) []check.Violation {
	seen := make(map[string]bool, len(vs))
	var out []check.Violation
	for _, v := range vs {
		k := v.Oracle + "\x00" + v.Msg
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// Diverges compares a faulted run's final state against the fault-free
// baseline of the same configuration: completed episodes, the shared-page
// directory (every page must have converged to the strong kernel after the
// settle sweep), per-kernel page counts for domains the storm never
// crashed, and the live-proc census (a proc parked forever is a surplus).
// Crashed domains are exempt from the memory comparison — their blocks
// were legitimately swept to the pool ("crashed-domain residue").
func Diverges(base, r Result) []check.Violation {
	var vs []check.Violation
	bad := func(format string, args ...any) {
		vs = append(vs, check.Violation{Oracle: "convergence", Msg: fmt.Sprintf(format, args...)})
	}
	if len(base.Completed) == len(r.Completed) {
		for w := range r.Completed {
			if r.Completed[w] != base.Completed[w] {
				bad("worker %d completed %d episodes vs %d fault-free", w, r.Completed[w], base.Completed[w])
			}
		}
	} else {
		bad("worker count %d vs %d fault-free", len(r.Completed), len(base.Completed))
	}
	if r.SharedPages != base.SharedPages {
		bad("%d shared pages vs %d fault-free", r.SharedPages, base.SharedPages)
	}
	if r.OwnedByStrong != r.SharedPages {
		bad("%d of %d shared pages converged to the strong kernel after the settle sweep",
			r.OwnedByStrong, r.SharedPages)
	}
	if len(base.TotalPages) == len(r.TotalPages) {
		for k := range r.TotalPages {
			if k < len(r.CrashedEver) && r.CrashedEver[k] {
				continue
			}
			if r.TotalPages[k] != base.TotalPages[k] {
				bad("kernel %d manages %d pages vs %d fault-free", k, r.TotalPages[k], base.TotalPages[k])
			}
			if r.FreePages[k] != base.FreePages[k] {
				bad("kernel %d has %d free pages vs %d fault-free", k, r.FreePages[k], base.FreePages[k])
			}
		}
	} else {
		bad("kernel count %d vs %d fault-free", len(r.TotalPages), len(base.TotalPages))
	}
	if r.LiveProcs != base.LiveProcs {
		bad("%d live procs at quiescence vs %d fault-free", r.LiveProcs, base.LiveProcs)
	}
	return vs
}

// ReproCommand renders the single-line reproduction command for a failing
// run, suitable for copy-pasting into a shell. Non-default protocols are
// spelled out so the repro boots the identical platform.
func ReproCommand(seed int64, weak int, storm Storm, proto dsm.Protocol) string {
	flag := ""
	if proto != dsm.TwoState {
		flag = fmt.Sprintf(" -dsm-protocol=%s", proto)
	}
	return fmt.Sprintf("k2bench -chaos -seed=%d -weakdomains=%d%s -storm='%s'", seed, weak, flag, storm)
}
