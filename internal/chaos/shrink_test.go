package chaos

import (
	"strings"
	"testing"
	"time"

	"k2/internal/check"
	"k2/internal/dsm"
	"k2/internal/soc"
)

// plantBug installs a failHook that fails a storm exactly when it still
// contains every one of the given events, restoring the hook on cleanup.
func plantBug(t *testing.T, needed []Event) {
	t.Helper()
	failHook = func(st Storm) []check.Violation {
		for _, want := range needed {
			found := false
			for _, ev := range st.Events {
				if ev == want {
					found = true
					break
				}
			}
			if !found {
				return nil
			}
		}
		return []check.Violation{{Oracle: "dsm", Msg: "planted three-event bug"}}
	}
	t.Cleanup(func() { failHook = nil })
}

// TestShrinkFindsMinimalSchedule plants a known bug that needs exactly
// three events of a 40-event storm and asserts the shrinker strips the
// other 37 events and every link-fault knob, leaving precisely the minimal
// failing schedule — and that the printed repro line reproduces it.
func TestShrinkFindsMinimalSchedule(t *testing.T) {
	minimal := []Event{
		{Kind: Crash, Dom: soc.Weak, At: 7 * time.Millisecond, Reboot: 12 * time.Millisecond},
		{Kind: Hang, Dom: soc.DomainID(2), At: 19 * time.Millisecond, Reboot: 15 * time.Millisecond},
		{Kind: IRQ, Line: 3, At: 31 * time.Millisecond},
	}
	plantBug(t, minimal)

	// A 40-event storm: the three culprits buried among 37 decoys, plus
	// link faults the bug does not depend on.
	var storm Storm
	for i := 0; i < 37; i++ {
		storm.Events = append(storm.Events, Event{
			Kind:   Crash,
			Dom:    soc.DomainID(1 + i%2),
			At:     time.Duration(1+i) * time.Millisecond,
			Reboot: 10 * time.Millisecond,
		})
	}
	storm.Events = append(storm.Events, minimal...)
	storm.Links.DropP = 0.01
	storm.Links.DelayP = 0.01
	storm.Links.DelayMax = 20 * time.Microsecond
	storm.Links.DupP = 0.005

	fails := func(st Storm) bool {
		return len(Run(Config{Seed: 1, WeakDomains: 2, Storm: &st}).Violations) > 0
	}
	if !fails(storm) {
		t.Fatal("planted bug does not fail the full storm")
	}

	shrunk := Shrink(storm, fails, 0)
	if len(shrunk.Events) != len(minimal) {
		t.Fatalf("shrunk to %d events, want %d: %s", len(shrunk.Events), len(minimal), shrunk)
	}
	for i, want := range minimal {
		if shrunk.Events[i] != want {
			t.Fatalf("shrunk event %d = %+v, want %+v", i, shrunk.Events[i], want)
		}
	}
	if shrunk.Links != (Storm{}).Links {
		t.Fatalf("shrinker kept irrelevant link faults: %s", shrunk)
	}

	// The repro line round-trips through the -storm flag syntax and the
	// replayed storm still fails.
	repro := ReproCommand(1, 2, shrunk, dsm.TwoState)
	const marker = "-storm='"
	i := strings.Index(repro, marker)
	if i < 0 || !strings.HasSuffix(repro, "'") {
		t.Fatalf("repro line %q has no -storm='...' argument", repro)
	}
	flag := repro[i+len(marker) : len(repro)-1]
	parsed, err := ParseStorm(flag)
	if err != nil {
		t.Fatalf("repro storm %q does not parse: %v", flag, err)
	}
	if !fails(parsed) {
		t.Fatalf("replayed repro storm %q no longer fails", flag)
	}
}
