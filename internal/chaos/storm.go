// Package chaos is the randomized fault-storm driver built on PR 2's
// deterministic injector and the internal/check invariant oracle. A Storm
// is a seeded, fully serializable fault schedule; Run executes one storm
// against the standard recovery platform with the oracle attached; Sweep
// fans many seeds over a worker pool; Shrink reduces a failing storm to a
// minimal schedule with a copy-pasteable repro line.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"k2/internal/fault"
	"k2/internal/sim"
	"k2/internal/soc"
)

// EventKind names one scripted domain-level fault.
type EventKind string

// The scripted fault kinds a storm can contain.
const (
	Crash EventKind = "crash"
	Hang  EventKind = "hang"
	IRQ   EventKind = "irq"
)

// Event is one scripted fault in a storm. Crash and Hang target a domain
// and always carry a Reboot delay when produced by Generate, so generated
// storms terminate; IRQ spuriously asserts an interrupt line.
type Event struct {
	Kind   EventKind
	Dom    soc.DomainID  // crash/hang target
	Line   soc.IRQLine   // irq line
	At     time.Duration // virtual injection time
	Reboot time.Duration // crash/hang: reboot this long after (0 = stays dead)
}

// Storm is a complete fault schedule: scripted events plus one
// probabilistic fault mix applied to every mailbox link. The zero Storm is
// fault-free.
type Storm struct {
	Events []Event
	Links  fault.LinkFaults
}

// Generate derives a random storm from seed for a platform with the given
// number of weak domains. The draw order is fixed, so the same seed always
// yields the same storm. Domain faults target weak domains only (the
// watchdog lives on the strong one) and always reboot, keeping every
// generated storm recoverable; link probabilities stay low enough that the
// reliable transport's retry budget is not structurally exhausted.
func Generate(seed int64, weak int) Storm {
	if weak < 1 {
		weak = 1
	}
	r := sim.NewRand(seed)
	var st Storm
	n := 2 + r.Intn(3)
	for i := 0; i < n; i++ {
		kind := r.Intn(3)
		dom := soc.DomainID(1 + r.Intn(weak))
		at := 5*time.Millisecond + r.Duration(45*time.Millisecond)
		reboot := 10*time.Millisecond + r.Duration(30*time.Millisecond)
		line := soc.IRQLine(r.Intn(4))
		switch kind {
		case 0:
			st.Events = append(st.Events, Event{Kind: Crash, Dom: dom, At: at, Reboot: reboot})
		case 1:
			st.Events = append(st.Events, Event{Kind: Hang, Dom: dom, At: at, Reboot: reboot})
		default:
			st.Events = append(st.Events, Event{Kind: IRQ, Line: line, At: at})
		}
	}
	st.Links.DropP = r.Float64() * 0.02
	st.Links.DelayP = r.Float64() * 0.02
	st.Links.DelayMax = 5*time.Microsecond + r.Duration(20*time.Microsecond)
	st.Links.DupP = r.Float64() * 0.01
	sort.SliceStable(st.Events, func(i, j int) bool { return st.Events[i].At < st.Events[j].At })
	return st
}

// Plan compiles the storm into an armable fault.Plan whose probabilistic
// link draws use the given seed.
func (st Storm) Plan(seed int64) *fault.Plan {
	pl := fault.NewPlan(seed)
	for _, ev := range st.Events {
		switch ev.Kind {
		case Crash:
			pl.CrashAt(ev.Dom, ev.At, ev.Reboot)
		case Hang:
			pl.HangAt(ev.Dom, ev.At, ev.Reboot)
		case IRQ:
			pl.SpuriousIRQAt(ev.Line, ev.At)
		}
	}
	if st.Links.DropP > 0 || st.Links.DelayP > 0 || st.Links.DupP > 0 {
		pl.AllLinks(st.Links)
	}
	return pl
}

// earliestEvent returns the time of the storm's first scripted event; a
// storm with no events (the fault-free baseline) reports an effectively
// infinite time, so it always qualifies for the pre-run regime.
func (st Storm) earliestEvent() time.Duration {
	first := time.Duration(1<<63 - 1)
	for _, ev := range st.Events {
		if ev.At < first {
			first = ev.At
		}
	}
	return first
}

// LastEffect returns the virtual time of the storm's last scheduled state
// change (the latest event time or reboot completion).
func (st Storm) LastEffect() time.Duration {
	var last time.Duration
	for _, ev := range st.Events {
		end := ev.At + ev.Reboot
		if end > last {
			last = end
		}
	}
	return last
}

// CrashedEver reports, per domain, whether the storm crashes or hangs it at
// any point — the domains whose final state is excluded from the
// convergence comparison ("modulo crashed-domain residue").
func (st Storm) CrashedEver(domains int) []bool {
	ever := make([]bool, domains)
	for _, ev := range st.Events {
		if (ev.Kind == Crash || ev.Kind == Hang) && int(ev.Dom) < domains {
			ever[ev.Dom] = true
		}
	}
	return ever
}

// String serializes the storm in the canonical -storm flag syntax:
//
//	crash:weak@60ms+50ms;hang:weak2@8ms+20ms;irq:3@10ms;drop:0.01;delay:0.02/30µs;dup:0.005
//
// Events appear in slice order; zero-probability link tokens are omitted.
// ParseStorm inverts it exactly.
func (st Storm) String() string {
	var toks []string
	for _, ev := range st.Events {
		switch ev.Kind {
		case IRQ:
			toks = append(toks, fmt.Sprintf("irq:%d@%s", int(ev.Line), ev.At))
		default:
			t := fmt.Sprintf("%s:%s@%s", ev.Kind, ev.Dom, ev.At)
			if ev.Reboot > 0 {
				t += "+" + ev.Reboot.String()
			}
			toks = append(toks, t)
		}
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	if st.Links.DropP > 0 {
		toks = append(toks, "drop:"+g(st.Links.DropP))
	}
	if st.Links.DelayP > 0 {
		toks = append(toks, fmt.Sprintf("delay:%s/%s", g(st.Links.DelayP), st.Links.DelayMax))
	}
	if st.Links.DupP > 0 {
		toks = append(toks, "dup:"+g(st.Links.DupP))
	}
	if len(toks) == 0 {
		return "none"
	}
	return strings.Join(toks, ";")
}

// ParseStorm parses the -storm flag syntax produced by Storm.String.
func ParseStorm(s string) (Storm, error) {
	var st Storm
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return st, nil
	}
	for _, tok := range strings.Split(s, ";") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		kind, rest, ok := strings.Cut(tok, ":")
		if !ok {
			return st, fmt.Errorf("chaos: bad storm token %q", tok)
		}
		switch kind {
		case "crash", "hang":
			target, times, ok := strings.Cut(rest, "@")
			if !ok {
				return st, fmt.Errorf("chaos: bad %s token %q", kind, tok)
			}
			dom, err := parseDomain(target)
			if err != nil {
				return st, err
			}
			atStr, rebootStr, hasReboot := strings.Cut(times, "+")
			at, err := time.ParseDuration(atStr)
			if err != nil {
				return st, fmt.Errorf("chaos: bad time in %q: %v", tok, err)
			}
			ev := Event{Kind: EventKind(kind), Dom: dom, At: at}
			if hasReboot {
				if ev.Reboot, err = time.ParseDuration(rebootStr); err != nil {
					return st, fmt.Errorf("chaos: bad reboot in %q: %v", tok, err)
				}
			}
			st.Events = append(st.Events, ev)
		case "irq":
			lineStr, atStr, ok := strings.Cut(rest, "@")
			if !ok {
				return st, fmt.Errorf("chaos: bad irq token %q", tok)
			}
			line, err := strconv.Atoi(lineStr)
			if err != nil {
				return st, fmt.Errorf("chaos: bad irq line in %q: %v", tok, err)
			}
			at, err := time.ParseDuration(atStr)
			if err != nil {
				return st, fmt.Errorf("chaos: bad time in %q: %v", tok, err)
			}
			st.Events = append(st.Events, Event{Kind: IRQ, Line: soc.IRQLine(line), At: at})
		case "drop", "dup":
			p, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return st, fmt.Errorf("chaos: bad probability in %q: %v", tok, err)
			}
			if kind == "drop" {
				st.Links.DropP = p
			} else {
				st.Links.DupP = p
			}
		case "delay":
			pStr, maxStr, ok := strings.Cut(rest, "/")
			if !ok {
				return st, fmt.Errorf("chaos: bad delay token %q (want delay:P/MAX)", tok)
			}
			p, err := strconv.ParseFloat(pStr, 64)
			if err != nil {
				return st, fmt.Errorf("chaos: bad probability in %q: %v", tok, err)
			}
			max, err := time.ParseDuration(maxStr)
			if err != nil {
				return st, fmt.Errorf("chaos: bad delay bound in %q: %v", tok, err)
			}
			st.Links.DelayP = p
			st.Links.DelayMax = max
		default:
			return st, fmt.Errorf("chaos: unknown storm token kind %q", kind)
		}
	}
	return st, nil
}

// parseDomain inverts soc.DomainID.String: "strong", "weak", "weakN".
func parseDomain(s string) (soc.DomainID, error) {
	switch {
	case s == "strong":
		return soc.Strong, nil
	case s == "weak":
		return soc.Weak, nil
	case strings.HasPrefix(s, "weak"):
		n, err := strconv.Atoi(s[len("weak"):])
		if err != nil || n < 1 {
			return 0, fmt.Errorf("chaos: bad domain %q", s)
		}
		return soc.DomainID(n), nil
	}
	return 0, fmt.Errorf("chaos: bad domain %q", s)
}
