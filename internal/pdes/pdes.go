// Package pdes is a conservative parallel-discrete-event scheduler for the
// sim engine, in the style of multicore SystemC-TLM virtual platforms: the
// event queue is partitioned per coherence domain (plus a shared partition
// for cross-domain traffic), partitions are maintained concurrently by a
// worker pool, and execution advances in lookahead windows derived from the
// minimum cross-domain mailbox latency the platform registers.
//
// Determinism is structural, not emergent. Workers only sort: each window,
// every partition independently integrates its newly offered events and
// extracts the sorted run of events below the window horizon; the engine
// then replays those runs — merged with its own heap of events born inside
// the window — in global (time, seq) order through the exact dispatch path
// the sequential loop uses. No handler ever runs off the engine goroutine,
// and partition assignment decides only which sub-heap an event waits in,
// never when it dispatches. Tables, traces and oracles are therefore
// byte-identical to the sequential engine at any worker count; the
// full-registry equivalence tests under -race enforce exactly that.
//
// See DESIGN.md §15 for the lookahead derivation and the merge rule.
package pdes

import (
	"sync"

	"k2/internal/sim"
)

// inlineThreshold is the pending-event count below which OpenWindow
// integrates and drains partitions on the engine goroutine instead of waking
// the worker pool. Sparse windows (a handful of timer ticks) are far cheaper
// to sort inline than to ship through two channel hops per worker; the
// resulting runs are identical either way, so the choice is invisible.
const inlineThreshold = 256

// partition is one per-domain sub-heap plus its window state. Outside
// OpenWindow it is owned by the engine goroutine; inside OpenWindow it is
// owned by exactly one worker (partition i belongs to worker i % workers),
// with the hand-offs ordered by the window barrier's channel operations.
type partition struct {
	inbox []sim.EventHandle // offered since the last window, unsorted
	heap  []sim.EventHandle // pending events, 4-ary min-heap by (At, Seq)
	run   []sim.EventHandle // current window: sorted events below horizon
	pos   int               // consumed prefix of run
}

// integrate folds the inbox (and any unconsumed run leftovers) into the heap.
func (p *partition) integrate() {
	for _, h := range p.inbox {
		p.heap = hpush(p.heap, h)
	}
	p.inbox = p.inbox[:0]
	for _, h := range p.run[p.pos:] {
		p.heap = hpush(p.heap, h)
	}
	p.run = p.run[:0]
	p.pos = 0
}

// drain extracts the sorted run of heap events below horizon.
func (p *partition) drain(horizon sim.Time) {
	for len(p.heap) > 0 && p.heap[0].At < horizon {
		var h sim.EventHandle
		h, p.heap = hpop(p.heap)
		p.run = append(p.run, h)
	}
}

// Scheduler implements sim.WindowScheduler over per-partition sub-heaps and
// a worker pool. Create one with New and install it with sim's
// SetWindowScheduler, or use Attach to do both.
type Scheduler struct {
	parts   []*partition
	workers int

	minBuf sim.Time // min At over all inbox entries (valid when bufN > 0)
	bufN   int      // total inbox entries across partitions
	heapN  int      // total heaped entries across partitions
	runN   int      // total unconsumed run entries across partitions

	cursors []int32 // binary min-heap of partition indices with run entries

	started bool            // worker goroutines running
	signal  []chan sim.Time // per-worker window horizon
	done    chan struct{}   // worker completion acks
	wg      sync.WaitGroup  // joins workers on Release
}

// New returns a scheduler with nparts partitions maintained by up to
// `workers` pool goroutines (clamped to [1, nparts]; goroutines start lazily
// on the first window large enough to need them).
func New(nparts, workers int) *Scheduler {
	if nparts < 1 {
		nparts = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > nparts {
		workers = nparts
	}
	s := &Scheduler{
		parts:   make([]*partition, nparts),
		workers: workers,
		done:    make(chan struct{}),
	}
	for i := range s.parts {
		s.parts[i] = &partition{}
	}
	return s
}

// Attach builds a scheduler sized to e's configured partitions and installs
// it, switching e's Run loop to windowed parallel dispatch. The engine's
// lookahead (registered by the platform) bounds each window.
func Attach(e *sim.Engine, workers int) *Scheduler {
	n := e.Partitions()
	if n < 1 {
		n = 1
	}
	s := New(n, workers)
	e.SetWindowScheduler(s)
	return s
}

// Workers returns the worker-pool size.
func (s *Scheduler) Workers() int { return s.workers }

// Offer transfers one pending event to its home partition's inbox.
// Engine-goroutine only.
func (s *Scheduler) Offer(h sim.EventHandle) {
	i := int(h.Part)
	if i < 0 || i >= len(s.parts) {
		i = 0
	}
	p := s.parts[i]
	p.inbox = append(p.inbox, h)
	if s.bufN == 0 || h.At < s.minBuf {
		s.minBuf = h.At
	}
	s.bufN++
}

// OpenWindow integrates all offered events and extracts each partition's
// sorted run below horizon, blocking until every partition has reached the
// horizon — inline for sparse windows, on the worker pool otherwise.
func (s *Scheduler) OpenWindow(horizon sim.Time) {
	if s.workers == 1 || s.bufN+s.heapN < inlineThreshold {
		for _, p := range s.parts {
			p.integrate()
			p.drain(horizon)
		}
	} else {
		if !s.started {
			s.start()
		}
		for w := 0; w < s.workers; w++ {
			s.signal[w] <- horizon
		}
		for w := 0; w < s.workers; w++ {
			<-s.done
		}
	}
	s.bufN = 0
	s.recount()
	s.rebuildCursors()
}

// start launches the worker pool. Worker w owns partitions w, w+workers, …
// and touches them only between receiving a horizon and sending its ack.
func (s *Scheduler) start() {
	s.signal = make([]chan sim.Time, s.workers)
	for w := 0; w < s.workers; w++ {
		ch := make(chan sim.Time)
		s.signal[w] = ch
		s.wg.Add(1)
		go func(w int, ch chan sim.Time) {
			defer s.wg.Done()
			for horizon := range ch {
				for i := w; i < len(s.parts); i += s.workers {
					s.parts[i].integrate()
					s.parts[i].drain(horizon)
				}
				s.done <- struct{}{}
			}
		}(w, ch)
	}
	s.started = true
}

// recount refreshes the aggregate heap/run tallies after a window phase.
func (s *Scheduler) recount() {
	s.heapN, s.runN = 0, 0
	for _, p := range s.parts {
		s.heapN += len(p.heap)
		s.runN += len(p.run) - p.pos
	}
}

// Peek returns the earliest unconsumed run entry across all partitions.
func (s *Scheduler) Peek() (sim.EventHandle, bool) {
	if len(s.cursors) == 0 {
		return sim.EventHandle{}, false
	}
	p := s.parts[s.cursors[0]]
	return p.run[p.pos], true
}

// Pop consumes the entry Peek reported.
func (s *Scheduler) Pop() {
	p := s.parts[s.cursors[0]]
	p.pos++
	s.runN--
	if p.pos >= len(p.run) {
		n := len(s.cursors) - 1
		s.cursors[0] = s.cursors[n]
		s.cursors = s.cursors[:n]
	}
	if len(s.cursors) > 0 {
		s.siftDown(0)
	}
}

// Rewind returns unconsumed run entries to their partitions' heaps.
func (s *Scheduler) Rewind() {
	for _, p := range s.parts {
		for _, h := range p.run[p.pos:] {
			p.heap = hpush(p.heap, h)
		}
		p.run = p.run[:0]
		p.pos = 0
	}
	s.cursors = s.cursors[:0]
	s.recount()
}

// MinPending reports the earliest event held anywhere in the scheduler.
func (s *Scheduler) MinPending() (sim.Time, bool) {
	var best sim.Time
	ok := false
	if s.bufN > 0 {
		best, ok = s.minBuf, true
	}
	for _, p := range s.parts {
		if len(p.heap) > 0 && (!ok || p.heap[0].At < best) {
			best, ok = p.heap[0].At, true
		}
		if p.pos < len(p.run) && (!ok || p.run[p.pos].At < best) {
			best, ok = p.run[p.pos].At, true
		}
	}
	return best, ok
}

// DrainAll removes and returns every held event, in no particular order.
func (s *Scheduler) DrainAll() []sim.EventHandle {
	var all []sim.EventHandle
	for _, p := range s.parts {
		all = append(all, p.inbox...)
		all = append(all, p.heap...)
		all = append(all, p.run[p.pos:]...)
		p.inbox, p.heap, p.run, p.pos = p.inbox[:0], p.heap[:0], p.run[:0], 0
	}
	s.bufN, s.heapN, s.runN = 0, 0, 0
	s.cursors = s.cursors[:0]
	return all
}

// Release stops and joins the worker pool. The scheduler must not be used
// afterwards.
func (s *Scheduler) Release() {
	if !s.started {
		return
	}
	for _, ch := range s.signal {
		close(ch)
	}
	s.wg.Wait()
	s.started = false
	s.signal = nil
}

// rebuildCursors resets the merge heap to the partitions holding run
// entries. The heap is keyed by each partition's run head, so the root is
// always the globally earliest scheduler-held event of the window.
func (s *Scheduler) rebuildCursors() {
	s.cursors = s.cursors[:0]
	for i, p := range s.parts {
		if p.pos < len(p.run) {
			s.cursors = append(s.cursors, int32(i))
		}
	}
	for i := len(s.cursors)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

func (s *Scheduler) cursorLess(a, b int32) bool {
	pa, pb := s.parts[a], s.parts[b]
	return sim.HandleLess(pa.run[pa.pos], pb.run[pb.pos])
}

func (s *Scheduler) siftDown(i int) {
	h := s.cursors
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && s.cursorLess(h[r], h[l]) {
			best = r
		}
		if !s.cursorLess(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// hpush / hpop maintain a 4-ary min-heap of handles ordered by (At, Seq),
// mirroring the engine's own event heap shape.
func hpush(h []sim.EventHandle, x sim.EventHandle) []sim.EventHandle {
	h = append(h, x)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !sim.HandleLess(x, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = x
	return h
}

func hpop(h []sim.EventHandle) (sim.EventHandle, []sim.EventHandle) {
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			best := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if sim.HandleLess(h[j], h[best]) {
					best = j
				}
			}
			if !sim.HandleLess(h[best], last) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	return top, h
}
