package pdes

import (
	"math/rand"
	"testing"
	"time"

	"k2/internal/sim"
)

// rec is one observed dispatch: the event's virtual time, its scheduling
// id (allocation order — a faithful proxy for the engine's seq counter,
// which is assigned in the same order), and whether it was a root event or
// one chained from inside a dispatch.
type rec struct {
	at   sim.Time
	id   int
	root bool
}

// runTagged schedules n root events at times drawn from a deliberately tiny
// set (forcing many same-instant collisions), tags each with a random
// partition, chains children from a quarter of the dispatches (some
// inheriting the parent's partition, some re-tagged), and returns the
// dispatch log. workers == 0 runs the plain sequential heap; workers >= 1
// attaches the window scheduler with that many workers.
func runTagged(t *testing.T, seed int64, n, nparts, workers int) []rec {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := sim.NewEngine()
	defer e.Shutdown()
	e.ConfigurePartitions(nparts)
	e.SetLookahead(2 * time.Microsecond)
	if workers >= 1 {
		Attach(e, workers)
	}
	var log []rec
	next := 0
	for i := 0; i < n; i++ {
		id := next
		next++
		at := sim.Time(time.Duration(rng.Intn(24)) * time.Microsecond)
		chain := rng.Intn(4) == 0
		retag := rng.Intn(nparts + 1) // nparts means "inherit"
		prev := e.SetEventPartition(rng.Intn(nparts))
		e.At(at, func() {
			log = append(log, rec{at: e.Now(), id: id, root: true})
			if chain {
				// Children allocate their ids (and seqs) at dispatch time,
				// so any order divergence amplifies through the tail.
				cid := next
				next++
				if retag < nparts {
					p := e.SetEventPartition(retag)
					e.After(0, func() { log = append(log, rec{at: e.Now(), id: cid}) })
					e.SetEventPartition(p)
				} else {
					e.After(0, func() { log = append(log, rec{at: e.Now(), id: cid}) })
				}
			}
		})
		e.SetEventPartition(prev)
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	return log
}

// TestCrossPartitionSameTimeSeqOrder is the merge property test: over
// fuzzed random partition assignments, events that share an instant must
// dispatch in seq allocation order no matter which partitions they were
// filed under or how many workers maintained the sub-heaps. Two shapes are
// checked per run: root events at one instant dispatch in scheduling order,
// and the whole log is identical to the sequential engine's. Sizes straddle
// the inline threshold so both the inline and the worker-barrier paths of
// OpenWindow are exercised.
func TestCrossPartitionSameTimeSeqOrder(t *testing.T) {
	for _, n := range []int{96, 1500} {
		for _, workers := range []int{2, 4} {
			for seed := int64(1); seed <= 6; seed++ {
				base := runTagged(t, seed, n, 5, 0)
				got := runTagged(t, seed, n, 5, workers)
				if len(got) != len(base) {
					t.Fatalf("n=%d workers=%d seed=%d: %d dispatches vs %d sequential",
						n, workers, seed, len(got), len(base))
				}
				for i := range got {
					if got[i] != base[i] {
						t.Fatalf("n=%d workers=%d seed=%d: dispatch %d diverged: %+v vs sequential %+v",
							n, workers, seed, i, got[i], base[i])
					}
				}
				// Independent of the baseline: same-instant roots in seq order,
				// time never rewinds.
				last := rec{at: -1, id: -1}
				for i, r := range got {
					if r.at < last.at {
						t.Fatalf("n=%d workers=%d seed=%d: time went backwards at dispatch %d (%v after %v)",
							n, workers, seed, i, r.at, last.at)
					}
					if r.root && last.root && r.at == last.at && r.id <= last.id {
						t.Fatalf("n=%d workers=%d seed=%d: same-time roots out of seq order at dispatch %d (id %d after %d)",
							n, workers, seed, i, r.id, last.id)
					}
					last = r
				}
			}
		}
	}
}

// TestSingleWorkerSchedulerMatchesSequential pins the degenerate
// configuration: a window scheduler with one worker always takes the
// inline drain path of OpenWindow, and it too must be invisible.
func TestSingleWorkerSchedulerMatchesSequential(t *testing.T) {
	base := runTagged(t, 42, 400, 3, 0)
	got := runTagged(t, 42, 400, 3, 1)
	if len(base) != len(got) {
		t.Fatalf("runs diverged: %d vs %d dispatches", len(base), len(got))
	}
	for i := range base {
		if base[i] != got[i] {
			t.Fatalf("dispatch %d diverged: %+v vs %+v", i, got[i], base[i])
		}
	}
}
