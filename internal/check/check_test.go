package check_test

import (
	"strings"
	"testing"
	"time"

	"k2/internal/check"
	"k2/internal/core"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

func bootK2(t *testing.T) (*sim.Engine, *core.OS) {
	t.Helper()
	e := sim.NewEngine()
	o, err := core.Boot(e, core.Options{Mode: core.K2Mode})
	if err != nil {
		t.Fatal(err)
	}
	return e, o
}

// A clean run — sensor workload, no faults — must pass every oracle, both
// at a mid-run quiesce point and in the final audit.
func TestCleanRunPasses(t *testing.T) {
	e, o := bootK2(t)
	suite := check.New(o)
	ev := sim.NewEvent(e)
	suite.Obligation("worker", ev)
	o.SpawnProcess("worker").Spawn(sched.NightWatch, "worker", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		for i := 0; i < 4; i++ {
			o.DMA.Transfer(th, 4<<10)
			th.Exec(soc.Work(50 * time.Microsecond))
			th.SleepIdle(2 * time.Millisecond)
		}
		ev.Fire()
	})
	var mid []check.Violation
	e.At(sim.Time(5*time.Millisecond), func() { mid = append(mid, suite.Check()...) })
	if err := e.Run(sim.Time(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(mid) != 0 {
		t.Fatalf("mid-run check violations on a clean run: %v", mid)
	}
	if vs := suite.Final(); len(vs) != 0 {
		t.Fatalf("final audit violations on a clean run: %v", vs)
	}
}

// An obligation that never fires must surface as a liveness violation
// naming the obligation.
func TestUnfiredObligationIsLivenessViolation(t *testing.T) {
	e, o := bootK2(t)
	suite := check.New(o)
	suite.Obligation("parked-forever", sim.NewEvent(e))
	if err := e.Run(sim.Time(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	vs := suite.Final()
	found := false
	for _, v := range vs {
		if v.Oracle == "liveness" && strings.Contains(v.Msg, "parked-forever") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unfired obligation not reported: %v", vs)
	}
}

// A rail driven to a negative power level must trip the energy oracle.
func TestNegativeRailLevelIsEnergyViolation(t *testing.T) {
	e, o := bootK2(t)
	suite := check.New(o)
	if err := e.Run(sim.Time(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	o.S.Domains[soc.Strong].Rail.SetLevel(-5)
	vs := suite.Check()
	found := false
	for _, v := range vs {
		if v.Oracle == "energy" && strings.Contains(v.Msg, "negative power level") {
			found = true
		}
	}
	if !found {
		t.Fatalf("negative rail level not reported: %v", vs)
	}
}
