// Package check is K2's global invariant oracle: a Suite attached to a
// booted OS that audits the whole-system properties the paper's design
// rests on — single-owner DSM coherence (§4.2), balloon/buddy page
// conservation (§6.2), energy as the exact integral of the modeled power
// states (§9.2), and recovery liveness. Experiments run it at quiesce
// points mid-simulation and at end-of-run; the chaos driver
// (internal/chaos) runs it over thousands of randomized fault storms.
//
// Every check is a pure read of simulation state (plus a passive shadow of
// the power rails), so attaching a Suite never changes an experiment's
// virtual execution: zero-fault runs stay byte-identical.
package check

import (
	"fmt"
	"math"

	"k2/internal/core"
	"k2/internal/dsm"
	"k2/internal/power"
	"k2/internal/sim"
	"k2/internal/soc"
)

// Violation is one invariant failure: which oracle tripped and why.
type Violation struct {
	Oracle string // "dsm", "memory", "energy", "liveness" or "replication"
	Msg    string
}

func (v Violation) String() string { return v.Oracle + ": " + v.Msg }

// obligation is a completion the liveness oracle requires by end-of-run.
type obligation struct {
	name string
	ev   *sim.Event
}

// railShadow independently integrates one rail's piecewise-constant power
// from the level-change and fixed-charge notifications alone, so the
// energy oracle can compare the rail's own accounting against a second
// derivation of the same integral.
type railShadow struct {
	rail   *power.Rail
	level  power.Milliwatts
	lastAt sim.Time
	joules float64 // integral through lastAt
	seen   float64 // last value the rail reported, for monotonicity
}

// Suite is an invariant oracle bound to one booted OS. Construct it with
// New right after core.Boot so the energy shadow observes the whole run.
type Suite struct {
	OS *core.OS

	// RequireQuiescent arms the checks that are only meaningful once the
	// system has settled (no traffic in flight, meta-manager drained):
	// outstanding reliable sends, deferred DSM requests, parked
	// meta-manager work, and undeclared crashed domains. The chaos driver
	// sets it after its settle window; experiments that stop mid-traffic
	// leave it off.
	RequireQuiescent bool

	rails       []*railShadow
	obligations []obligation
}

// New attaches a fresh Suite to the OS, installing the passive power-rail
// observers. Call it before the engine runs (rails must not have changed
// level yet for the shadow to cover the full run; at boot time they have
// not).
func New(o *core.OS) *Suite {
	s := &Suite{OS: o}
	for _, d := range o.S.Domains {
		sh := &railShadow{
			rail:   d.Rail,
			level:  d.Rail.Level(),
			lastAt: o.Eng.Now(),
			joules: d.Rail.EnergyJ(),
		}
		sh.seen = sh.joules
		d.Rail.OnLevelChange = func(at sim.Time, old, new power.Milliwatts) {
			sh.joules += float64(old) / 1e3 * at.Sub(sh.lastAt).Seconds()
			sh.lastAt = at
			sh.level = new
		}
		d.Rail.OnAddEnergy = func(j float64) { sh.joules += j }
		s.rails = append(s.rails, sh)
	}
	return s
}

// Obligation registers a completion the run must reach: Final reports a
// liveness violation for every registered event that never fired (a worker
// parked forever, a recovery that never completed).
func (s *Suite) Obligation(name string, ev *sim.Event) {
	s.obligations = append(s.obligations, obligation{name: name, ev: ev})
}

// Check audits the invariants that must hold at every event boundary: DSM
// directory consistency, memory conservation, and energy accounting. It is
// safe to call mid-run from a scheduled event (a quiesce point).
func (s *Suite) Check() []Violation {
	var vs []Violation
	vs = s.checkDSM(vs)
	vs = s.checkMemory(vs)
	vs = s.checkEnergy(vs)
	return vs
}

// Final audits everything: the instantaneous invariants plus the
// end-of-run-only ones — no grants left to crashed domains, every
// registered obligation met, and (with RequireQuiescent) nothing parked in
// any queue of the recovery machinery.
func (s *Suite) Final() []Violation {
	vs := s.Check()
	vs = s.checkCrashedResidue(vs)
	vs = s.checkLiveness(vs)
	vs = s.checkReplication(vs)
	return vs
}

func (s *Suite) checkDSM(vs []Violation) []Violation {
	d := s.OS.DSM
	if d == nil {
		return vs
	}
	if err := d.CheckInvariants(); err != nil {
		vs = append(vs, Violation{"dsm", err.Error()})
	}
	for _, pfn := range d.Pages() {
		owner := d.Owner(pfn)
		for _, h := range d.Holders(pfn) {
			if d.Level(h, pfn) == dsm.Exclusive && h != owner {
				vs = append(vs, Violation{"dsm", fmt.Sprintf(
					"page %d: exclusive holder %v disagrees with directory owner %v",
					pfn, h, owner)})
			}
		}
	}
	return vs
}

func (s *Suite) checkMemory(vs []Violation) []Violation {
	m := s.OS.Mem
	if m == nil {
		return vs
	}
	for _, b := range m.Buddies {
		if err := b.CheckInvariants(); err != nil {
			vs = append(vs, Violation{"memory", err.Error()})
		}
	}
	if err := m.CheckPartition(); err != nil {
		vs = append(vs, Violation{"memory", err.Error()})
	}
	if err := m.CheckConservation(); err != nil {
		vs = append(vs, Violation{"memory", err.Error()})
	}
	return vs
}

func (s *Suite) checkEnergy(vs []Violation) []Violation {
	now := s.OS.Eng.Now()
	for _, sh := range s.rails {
		expected := sh.joules + float64(sh.level)/1e3*now.Sub(sh.lastAt).Seconds()
		got := sh.rail.EnergyJ()
		tol := 1e-9 + 1e-6*math.Abs(expected)
		if math.Abs(got-expected) > tol {
			vs = append(vs, Violation{"energy", fmt.Sprintf(
				"rail %s: accounts %.12g J but the power-state integral is %.12g J",
				sh.rail.Name, got, expected)})
		}
		if got < sh.seen-tol {
			vs = append(vs, Violation{"energy", fmt.Sprintf(
				"rail %s: energy went backwards (%.12g J after %.12g J)",
				sh.rail.Name, got, sh.seen)})
		}
		sh.seen = got
		if sh.rail.Level() < 0 {
			vs = append(vs, Violation{"energy", fmt.Sprintf(
				"rail %s: negative power level %v", sh.rail.Name, sh.rail.Level())})
		}
	}
	return vs
}

// checkCrashedResidue asserts no DSM grant or directory ownership names a
// domain that is crashed at end-of-run. Mid-run this is legal (the crash
// happened, the watchdog has not swept yet); by Final the watchdog bound
// has elapsed, so residue means ReclaimDead missed state.
func (s *Suite) checkCrashedResidue(vs []Violation) []Violation {
	d := s.OS.DSM
	if d == nil {
		return vs
	}
	for k, dom := range s.OS.S.Domains {
		if !dom.Crashed() {
			continue
		}
		kd := soc.DomainID(k)
		if s.RequireQuiescent && s.OS.Watchdog != nil && s.OS.Watchdog.Alive(kd) &&
			// The replica manager may own recovery for this domain: it ran
			// the reclaim sweep when it re-integrated away, and the watchdog
			// was deliberately suppressed from declaring a second death.
			!(s.OS.Replicas != nil && s.OS.Replicas.SweptDead(kd)) {
			vs = append(vs, Violation{"liveness", fmt.Sprintf(
				"domain %v crashed but the watchdog never declared it dead", kd)})
		}
		for _, pfn := range d.Pages() {
			if d.Owner(pfn) == kd {
				vs = append(vs, Violation{"dsm", fmt.Sprintf(
					"page %d still owned by crashed domain %v", pfn, kd)})
			}
			if d.Level(kd, pfn) != dsm.Invalid {
				vs = append(vs, Violation{"dsm", fmt.Sprintf(
					"crashed domain %v still holds a grant on page %d", kd, pfn)})
			}
		}
	}
	return vs
}

// checkReplication audits the NMR voting layer (when one is attached):
// every replica group must have committed all of its vote points by
// quiescence (a stuck vote frontier means the masking machinery itself
// hung), and every outvoted replica must be implicated by an injected
// fault — a crash, a scripted corruption, or an observed reboot. An
// unimplicated outvote would mean healthy deterministic replicas disagreed,
// i.e. the vote order itself is nondeterministic.
func (s *Suite) checkReplication(vs []Violation) []Violation {
	r := s.OS.Replicas
	if r == nil {
		return vs
	}
	if s.RequireQuiescent {
		for _, g := range r.Groups() {
			if got, want := g.Committed(), g.VotePoints(); got < want {
				vs = append(vs, Violation{"replication", fmt.Sprintf(
					"group %s committed only %d of %d vote points", g.Name, got, want)})
			}
		}
	}
	for _, f := range r.Flags() {
		if !f.Implicated {
			vs = append(vs, Violation{"replication", fmt.Sprintf(
				"group %s replica %d outvoted at point %d (%s) on domain %v without an injected fault",
				f.Group, f.Replica, f.VotePoint, f.Reason, f.Domain)})
		}
	}
	return vs
}

func (s *Suite) checkLiveness(vs []Violation) []Violation {
	for _, ob := range s.obligations {
		if !ob.ev.Fired() {
			vs = append(vs, Violation{"liveness", fmt.Sprintf(
				"obligation %q never completed", ob.name)})
		}
	}
	if !s.RequireQuiescent {
		return vs
	}
	if n := s.OS.S.Mailbox.OutstandingReliable(); n != 0 {
		vs = append(vs, Violation{"liveness", fmt.Sprintf(
			"%d reliable sends neither delivered nor reported failed", n)})
	}
	if d := s.OS.DSM; d != nil {
		if n := d.DeferredLen(); n != 0 {
			vs = append(vs, Violation{"liveness", fmt.Sprintf(
				"%d DSM requests parked in the bottom-half queue", n)})
		}
		// Forwarding-chain liveness (MSI): at quiescence every probOwner
		// chain must reach the directory owner, or a future Get could be
		// forwarded past its hop bound. Mid-run the hints legitimately lag
		// in-flight transfers, so this is a quiescent-only check.
		if err := d.CheckHintChains(); err != nil {
			vs = append(vs, Violation{"liveness", err.Error()})
		}
	}
	if m := s.OS.Mem; m != nil {
		if err := m.CheckMetaQuiescent(); err != nil {
			vs = append(vs, Violation{"liveness", err.Error()})
		}
	}
	return vs
}
