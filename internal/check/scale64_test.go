package check_test

import (
	"testing"
	"time"

	"k2/internal/check"
	"k2/internal/core"
	"k2/internal/dsm"
	"k2/internal/mem"
	"k2/internal/sim"
	"k2/internal/soc"
)

// boot64 boots a watched 64-weak-domain K2 platform under the given DSM
// protocol — the scale shape the per-domain slices (watchdog state, DSM
// directory shares, balloon accounting) must survive.
func boot64(t *testing.T, proto dsm.Protocol) (*sim.Engine, *core.OS) {
	t.Helper()
	e := sim.NewEngine()
	cfg := soc.DefaultConfig()
	cfg.RAMBytes = 4 << 30 // 64 shadow kernels of 16 MB boot blocks need headroom
	rel := soc.DefaultReliableParams()
	cfg.Reliable = &rel
	wd := core.DefaultWatchdogParams()
	prm := dsm.DefaultParams()
	prm.Protocol = proto
	prm.OwnerTimeout = 200 * time.Microsecond
	o, err := core.Boot(e, core.Options{
		Mode: core.K2Mode, SoC: &cfg, WeakDomains: 64, Watchdog: &wd, DSMParams: &prm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, o
}

// At 64 weak domains, a multi-crash run must still satisfy every oracle:
// the watchdog reclaims each dead kernel's DSM pages and memory blocks,
// the directory and the balloon accounting stay conserved across all 64
// per-domain slices, and the final quiescent audit is clean — under both
// the paper's two-state protocol and the MSI read-replication variant
// (whose per-page copyset spans many more domains when it breaks).
func TestSuiteScales64Domains(t *testing.T) {
	for _, tc := range []struct {
		name  string
		proto dsm.Protocol
	}{{"twostate", dsm.TwoState}, {"msi", dsm.MSI}} {
		t.Run(tc.name, func(t *testing.T) {
			e, o := boot64(t, tc.proto)
			suite := check.New(o)

			// Spread ownership wide: kernels 1..8 each own four shared pages.
			// Under MSI the strong kernel additionally reads every page, so
			// crashed owners leave read replicas behind to invalidate (under
			// two-state a read would *transfer* the page, stripping the
			// owners we are about to crash).
			const owners, pagesEach = 8, 4
			e.Spawn("setup", func(p *sim.Proc) {
				o.Ready.Wait(p)
				pg := mem.PFN(100)
				for k := 1; k <= owners; k++ {
					for i := 0; i < pagesEach; i++ {
						o.DSM.Share(pg)
						o.DSM.Write(p, o.S.Core(soc.DomainID(k), 0), soc.DomainID(k), pg)
						if tc.proto == dsm.MSI {
							o.DSM.Read(p, o.S.Core(soc.Strong, 0), soc.Strong, pg)
						}
						pg++
					}
				}
			})

			// Crash three owners at staggered times; reboot them all.
			victims := []soc.DomainID{1, 4, 7}
			for i, k := range victims {
				k := k
				e.At(sim.Time(time.Duration(20+5*i)*time.Millisecond), func() { o.S.Domains[k].Crash() })
				e.At(sim.Time(time.Duration(60+5*i)*time.Millisecond), func() { o.S.Domains[k].Reboot() })
			}

			var mid []check.Violation
			e.At(sim.Time(45*time.Millisecond), func() { mid = append(mid, suite.Check()...) })
			if err := e.Run(sim.Time(200 * time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			if len(mid) != 0 {
				t.Fatalf("mid-run violations at 64 domains: %v", mid)
			}

			w := o.Watchdog
			if len(w.Deaths) != len(victims) {
				t.Fatalf("%d deaths declared, want %d", len(w.Deaths), len(victims))
			}
			reclaimed := 0
			for _, rec := range w.Deaths {
				reclaimed += rec.ReclaimedPages
				if rec.ReclaimedBlocks < 1 {
					t.Fatalf("death of %v reclaimed %d blocks, want its boot block", rec.Domain, rec.ReclaimedBlocks)
				}
			}
			if reclaimed < len(victims)*pagesEach {
				t.Fatalf("reclaimed %d pages across %d deaths, want at least %d",
					reclaimed, len(victims), len(victims)*pagesEach)
			}
			for _, k := range victims {
				if !w.Alive(k) {
					t.Fatalf("%v rebooted but still counted dead", k)
				}
			}
			// Every crashed owner's pages changed hands to a survivor.
			pg := mem.PFN(100)
			for k := 1; k <= owners; k++ {
				for i := 0; i < pagesEach; i++ {
					own := o.DSM.Owner(pg)
					for _, v := range victims {
						if soc.DomainID(k) == v && own == v {
							t.Fatalf("page %d still owned by crashed-and-rebooted %v", pg, v)
						}
					}
					pg++
				}
			}

			suite.RequireQuiescent = true
			if vs := suite.Final(); len(vs) != 0 {
				t.Fatalf("final audit violations at 64 domains: %v", vs)
			}
		})
	}
}
