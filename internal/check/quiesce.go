package check

import (
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
)

// This file holds the two audit patterns that every oracle-driven run
// shares — periodic quiesce-point checks and the end-of-run settle sweep.
// They used to be copy-pasted between the chaos driver and the faults and
// scale experiments; they also run around every snapshot/restore boundary
// (the checkpoint builder audits the source at capture, and warm-started
// chaos runs audit the restored system before releasing the workload).

// ScheduleChecks arms periodic quiesce-point audits of the instantaneous
// invariants: at every multiple of every from from through to, s.Check()
// runs and any violations go to report. done, if non-nil, suppresses checks
// once the run has finished (the suite may be mid-teardown). The checks are
// pure reads, so arming them never changes a run's virtual execution.
func ScheduleChecks(e *sim.Engine, s *Suite, from, to, every time.Duration, done func() bool, report func([]Violation)) {
	for t := from; t <= to; t += every {
		e.At(sim.Time(t), func() {
			if done != nil && done() {
				return
			}
			if vs := s.Check(); len(vs) > 0 {
				report(vs)
			}
		})
	}
}

// SettleSweep drives post-run convergence from the strong kernel: wake it,
// rewrite every shared page (forcing post-recovery ownership to converge
// and proving no page is wedged), then poll until the reliable transport
// and the DSM bottom-half drain. Reports whether the system quiesced within
// the window; callers typically assign the result to RequireQuiescent
// before the final audit. Must run on a proc of the suite's engine.
func (s *Suite) SettleSweep(p *sim.Proc) bool {
	o := s.OS
	o.S.Domains[soc.Strong].EnsureAwake(p)
	c := o.S.Core(soc.Strong, 0)
	for _, pfn := range o.DSM.Pages() {
		o.DSM.Write(p, c, soc.Strong, pfn)
	}
	for i := 0; i < 40; i++ {
		if o.S.Mailbox.OutstandingReliable() == 0 && o.DSM.DeferredLen() == 0 {
			return true
		}
		p.Sleep(50 * time.Microsecond)
	}
	return false
}
