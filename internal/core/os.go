// Package core assembles the K2 operating system (§5) over the simulated
// SoC: two kernels — the full-fledged main kernel on the strong Cortex-A9
// domain and the lean shadow kernel on the weak Cortex-M3 — presenting a
// single system image to applications. The two kernels share the unified
// kernel address space and the pool of physical memory, cooperate to handle
// IO interrupts, keep their shadowed services (DMA driver, ext2, UDP stack)
// coherent through the DSM, and run independent coordinated instances of
// core services (page allocator, interrupt management, scheduler).
//
// The same package boots the unmodified-Linux baseline used throughout the
// paper's evaluation: one kernel on the strong domain only, no DSM, no
// NightWatch protocol, shared interrupts pinned to the strong domain.
package core

import (
	"fmt"
	"time"

	"k2/internal/driver"
	"k2/internal/dsm"
	"k2/internal/fs"
	"k2/internal/irq"
	"k2/internal/mem"
	"k2/internal/netstack"
	"k2/internal/pdes"
	"k2/internal/power"
	"k2/internal/replica"
	"k2/internal/sched"
	"k2/internal/services"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/trace"
	"k2/internal/vm"
)

// Mode selects which OS to boot.
type Mode int

const (
	// K2Mode boots both kernels under the shared-most model.
	K2Mode Mode = iota
	// LinuxMode boots the single-kernel baseline on the strong domain.
	LinuxMode
)

func (m Mode) String() string {
	if m == LinuxMode {
		return "linux"
	}
	return "k2"
}

// Options configures a boot.
type Options struct {
	Mode Mode
	// SoC overrides the platform configuration (DefaultConfig if zero).
	SoC *soc.Config
	// WeakDomains, if non-zero, boots a platform with this many weak
	// domains (each an OMAP4-style Cortex-M3 instance, with its own shadow
	// kernel under K2). Ignored when the SoC config carries an explicit
	// Topology.
	WeakDomains int
	// DSMParams overrides the DSM calibration (K2 mode only).
	DSMParams *dsm.Params
	// DiskBlocks sizes the ramdisk (4 KB blocks); default 8192 (32 MB).
	DiskBlocks int
	// TraceCapacity sizes the kernel tracer ring (default 4096 events).
	TraceCapacity int
	// TraceSink, if non-nil, receives every kernel-trace event live as it
	// is emitted, in addition to the ring. Used by k2d to stream job
	// traces over HTTP.
	TraceSink func(trace.Event)
	// SensorPeriod, if non-zero, enables the autonomous sensor device
	// sampling at this period. Off by default: a free-running device
	// keeps generating interrupts, which matters for idle experiments.
	SensorPeriod time.Duration
	// InitialMainBlocks / InitialShadowBlocks are the 16 MB page blocks
	// deflated to each kernel at boot.
	InitialMainBlocks, InitialShadowBlocks int
	// Watchdog, if non-nil, runs the main kernel's shadow-kernel watchdog
	// (K2 mode only): heartbeats every weak kernel and reclaims the state
	// of any that stops answering. Off by default.
	Watchdog *WatchdogParams
	// Replication, if non-nil, boots the N-modular-redundancy layer
	// (internal/replica, K2 mode only): R-replica groups of NightWatch
	// state machines voting at the strong kernel, with immediate outvote
	// and re-integration of crashed or diverged replicas. Off by default —
	// an unreplicated system carries none of the machinery and its output
	// bytes are untouched.
	Replication *replica.Params
	// EngineParallel, when > 1, attaches the conservative parallel event
	// scheduler (internal/pdes) to the booting engine with that many pool
	// workers, partitioned per coherence domain under the platform's
	// mailbox-latency lookahead. Dispatch order — and therefore every
	// table, trace and oracle — is byte-identical at any value; the knob
	// only moves event-queue maintenance onto more cores. See DESIGN.md
	// §15.
	EngineParallel int
}

// SharedIRQLines are the IO interrupt lines wired to all domains.
var SharedIRQLines = []soc.IRQLine{soc.IRQDMA, soc.IRQBlock, soc.IRQNet, soc.IRQSensor}

// OS is a booted system.
type OS struct {
	Mode Mode
	Eng  *sim.Engine
	S    *soc.SoC

	Layout   vm.Layout
	AS       []*vm.AddressSpace
	Frames   *mem.Frames
	Mem      *mem.Manager
	DSM      *dsm.DSM // nil in LinuxMode
	Sched    *sched.Sched
	Router   *irq.Router
	Registry *services.Registry

	DMA    *driver.DMADriver
	Disk   *driver.RAMDisk
	FS     *fs.FileSystem
	Net    *netstack.Stack
	Sensor *driver.SensorDriver // nil unless Options.SensorPeriod set

	// Meter integrates energy over both domain rails.
	Meter *power.Meter
	// Ready fires once the init thread has formatted the filesystem.
	Ready *sim.Event
	// Trace is the kernel event tracer (all kinds enabled by default; use
	// Trace.EnableOnly to narrow it).
	Trace *trace.Buffer
	// Watchdog is the shadow-kernel watchdog (nil unless Options.Watchdog).
	Watchdog *Watchdog
	// Replicas is the N-modular-redundancy voter and re-integration agent
	// (nil unless Options.Replication).
	Replicas *replica.Manager

	kernels     []soc.DomainID // booted kernels: Strong, then every weak domain under K2
	irqHandlers map[soc.IRQLine][]IRQHandler
	pendingMaps map[uint32]mapOp
	nextMapID   uint32
	opts        Options // the options this system was booted with
}

// Kernels returns the booted kernels: the main kernel, then one shadow
// kernel per weak domain (K2 mode only).
func (o *OS) Kernels() []soc.DomainID { return o.kernels }

// IRQHandler runs in a handler proc on the service core of the domain that
// owns the interrupt line at delivery time.
type IRQHandler func(p *sim.Proc, core *soc.Core, k soc.DomainID)

// Boot constructs and starts the OS on a fresh engine. It wires every
// subsystem and spawns the per-kernel dispatcher procs; the filesystem is
// formatted by an init thread, after which Ready fires.
func Boot(eng *sim.Engine, opts Options) (*OS, error) {
	return bootSystem(eng, opts, nil)
}

// boot builds the OS. With restore == nil it is a cold boot. With a restore
// state it rehydrates a checkpoint instead: construction runs identically
// (its deterministic allocations reproduce the captured layout and are then
// overwritten by the patch phase), but nothing is spawned and nothing runs —
// the engine heap is purged, every subsystem is patched to its captured
// state, and the background procs are respawned parked exactly as the
// captured ones were at the boot-ready quiesce point.
func bootSystem(eng *sim.Engine, opts Options, restore *osState) (*OS, error) {
	cold := restore == nil
	cfg := soc.DefaultConfig()
	if opts.SoC != nil {
		cfg = *opts.SoC
	}
	if opts.WeakDomains > 0 && cfg.Topology == nil {
		cfg = cfg.WithWeakDomains(opts.WeakDomains)
	}
	if opts.DiskBlocks == 0 {
		opts.DiskBlocks = 8192
	}
	if opts.InitialMainBlocks == 0 {
		opts.InitialMainBlocks = 4
	}
	if opts.InitialShadowBlocks == 0 {
		opts.InitialShadowBlocks = 1
	}

	s := soc.New(eng, cfg)
	if opts.EngineParallel > 1 {
		// soc.New has declared the partitions, so the scheduler sizes one
		// sub-heap per domain plus the shared partition.
		pdes.Attach(eng, opts.EngineParallel)
	}
	o := &OS{
		Mode:        opts.Mode,
		Eng:         eng,
		S:           s,
		Frames:      mem.NewFrames(s.Pages(), cfg.PageSize),
		Registry:    services.NewRegistry(),
		Ready:       sim.NewEvent(eng),
		irqHandlers: make(map[soc.IRQLine][]IRQHandler),
		pendingMaps: make(map[uint32]mapOp),
	}
	rails := make([]*power.Rail, s.NumDomains())
	for id, d := range s.Domains {
		rails[id] = d.Rail
	}
	o.opts = opts
	o.Meter = power.NewMeter(rails...)
	o.Trace = trace.New(eng, opts.TraceCapacity)
	if cold {
		// On a warm boot the ring is restored and the sink installed after
		// the patch phase; emitting here would pollute both.
		if opts.TraceSink != nil {
			o.Trace.SetSink(opts.TraceSink)
		}
		o.Trace.Emit(trace.Boot, "booting %v on simulated OMAP4 (strong %d MHz, weak %d MHz)",
			opts.Mode, cfg.StrongFreqMHz, cfg.WeakFreqMHz)
	}

	// Power-state transitions go to the tracer; later hooks (the IRQ
	// router) chain on top of these.
	for _, d := range s.Domains {
		d := d
		d.OnWake = func() { o.Trace.Emit(trace.Power, "%s domain awake", d.Name) }
		d.OnSleep = func() { o.Trace.Emit(trace.Power, "%s domain inactive", d.Name) }
	}

	// Unified kernel address space (§6.1): one shadow local region per weak
	// kernel, then main local, then the global region to the end of memory.
	o.Layout = vm.NewLayoutN(s.Pages(), cfg.PageSize, 1, 2, s.NumDomains()-1)
	o.AS = make([]*vm.AddressSpace, s.NumDomains())
	for id := range s.Domains {
		o.AS[id] = vm.NewAddressSpace(soc.DomainID(id), o.Layout)
	}

	// Physical memory management (§6.2): independent allocators, balloons
	// owning the whole global region, initial boot-time deflates.
	o.Mem = mem.NewManager(s, o.Frames, mem.DefaultCostModel(), o.Layout.GlobalStart(), o.Layout.GlobalEnd())
	o.Mem.Tracef = func(f string, a ...any) { o.Trace.Emit(trace.Mem, f, a...) }
	for i := 0; i < opts.InitialMainBlocks; i++ {
		if _, err := o.Mem.DeflateBoot(soc.Strong); err != nil {
			return nil, fmt.Errorf("core: boot deflate (main): %w", err)
		}
	}
	if opts.Mode == K2Mode {
		for _, k := range s.WeakDomains() {
			for i := 0; i < opts.InitialShadowBlocks; i++ {
				if _, err := o.Mem.DeflateBoot(k); err != nil {
					return nil, fmt.Errorf("core: boot deflate (%v): %w", k, err)
				}
			}
		}
	}

	// Scheduler: two kernels under K2, one under the baseline.
	o.Sched = sched.New(s, opts.Mode == LinuxMode)
	o.Sched.Tracef = func(f string, a ...any) { o.Trace.Emit(trace.Sched, f, a...) }

	// Software coherence (§6.3) and interrupt routing (§7).
	if opts.Mode == K2Mode {
		prm := dsm.DefaultParams()
		if opts.DSMParams != nil {
			prm = *opts.DSMParams
		}
		o.DSM = dsm.New(s, prm)
		o.DSM.OnFirstShare = func(p mem.PFN) {
			// Shared pages force 4 KB mappings in every kernel; everything
			// else keeps large-grain sections (§6.3 footprint optimization).
			for _, as := range o.AS {
				as.EnsureSmallPage(p)
			}
		}
		o.DSM.Tracef = func(f string, a ...any) { o.Trace.Emit(trace.DSM, f, a...) }
		o.Router = irq.NewRouter(s, SharedIRQLines)
	} else {
		o.Router = irq.NewSingleRouter(s, SharedIRQLines)
	}

	// Extended (shadowed) services: state pages come from the main
	// kernel's allocator, unmovable, in the global region.
	dmaState, err := o.newState("dma-driver", 1, 1)
	if err != nil {
		return nil, err
	}
	o.DMA = driver.NewDMA(s, dmaState, driver.DefaultDMACosts())
	o.Disk = driver.NewRAMDisk(s, cfg.PageSize, opts.DiskBlocks)
	netState, err := o.newState("udp-stack", 2, 1)
	if err != nil {
		return nil, err
	}
	o.Net = netstack.NewStack(s, netState)
	if opts.SensorPeriod > 0 {
		sensState, err := o.newState("sensor", 4, 1)
		if err != nil {
			return nil, err
		}
		dev := driver.NewSensorDevice(s, opts.SensorPeriod)
		o.Sensor = driver.NewSensor(s, dev, sensState)
		o.RegisterIRQ(soc.IRQSensor, func(p *sim.Proc, core *soc.Core, k soc.DomainID) {
			o.Sensor.HandleIRQ(p, core, k)
		})
		if cold {
			dev.Start() // warm: the restored sampling clock is rearmed by patch
		}
	}

	// Service classification (§5.3).
	reg := o.Registry
	reg.Register("platform-init", services.Private)
	reg.Register("cpu-power-mgmt", services.Private)
	reg.Register("exception-handling", services.Private)
	reg.Register("page-allocator", services.Independent)
	reg.Register("interrupt-mgmt", services.Independent)
	reg.Register("scheduler", services.Independent)
	reg.Register("dma-driver", services.Shadowed)
	reg.Register("block-ramdisk", services.Shadowed)
	reg.Register("ext2", services.Shadowed)
	reg.Register("udp-stack", services.Shadowed)
	if o.Sensor != nil {
		reg.Register("sensor", services.Shadowed)
	}

	// Interrupt dispatch: handler procs run on the owning domain.
	o.RegisterIRQ(soc.IRQDMA, func(p *sim.Proc, core *soc.Core, k soc.DomainID) {
		o.DMA.HandleIRQ(p, core, k)
	})
	for id := range s.Domains {
		k := soc.DomainID(id)
		s.IRQ[k].SetHandler(func(line soc.IRQLine) {
			handlers := o.irqHandlers[line]
			if len(handlers) == 0 {
				return
			}
			o.Trace.Emit(trace.IRQ, "line %d dispatched on %v", line, k)
			core := o.serviceCore(k)
			for _, h := range handlers {
				h := h
				hp := eng.Spawn(fmt.Sprintf("irq%d-%s", line, k), func(p *sim.Proc) {
					h(p, core, k)
				})
				hp.SetPartition(s.DomainPartition(k))
			}
		})
	}

	// Per-kernel dispatcher and background procs. On a warm boot nothing is
	// spawned here: the patch phase respawns the daemons in this same order
	// once the engine is rewound, so they park exactly as the captured ones.
	o.kernels = []soc.DomainID{soc.Strong}
	if opts.Mode == K2Mode {
		o.kernels = append(o.kernels, s.WeakDomains()...)
	}
	if opts.Watchdog != nil && opts.Mode == K2Mode && len(o.kernels) > 1 {
		o.Watchdog = newWatchdog(o, *opts.Watchdog)
	}
	if opts.Replication != nil && opts.Mode == K2Mode && len(o.kernels) > 1 {
		o.Replicas = replica.NewManager(replica.Deps{
			Eng: eng, S: s, Sched: o.Sched, Trace: o.Trace, Ready: o.Ready,
			StrongCore: func() *soc.Core { return o.serviceCore(soc.Strong) },
			Reclaim:    o.reclaimDomain,
			WatchdogSuppress: func(k soc.DomainID) bool {
				if o.Watchdog == nil {
					return true // no watchdog: the manager owns every sweep
				}
				return o.Watchdog.Suppress(k)
			},
		}, *opts.Replication)
		if o.Watchdog != nil {
			o.Watchdog.OnSuppressedPong = o.Replicas.DomainBackAlive
		}
	}
	if cold {
		o.spawnDaemons()

		// Init thread: format the filesystem, then declare the system ready.
		init := o.Sched.NewProcess("init")
		init.Spawn(sched.Normal, "init", func(t *sched.Thread) {
			fsState, err := o.newState("ext2", 3, fs.StatePages)
			if err != nil {
				panic(err)
			}
			f, err := fs.Mkfs(t, o.Disk, fsState)
			if err != nil {
				panic(err)
			}
			o.FS = f
			o.Ready.Fire()
		})
		return o, nil
	}
	if err := o.restoreFrom(restore); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	return o, nil
}

// spawnDaemons starts the background procs: per-kernel mailbox dispatcher
// and memory worker, the DSM bottom-half drainer, and the watchdog. The
// order is load-bearing — a warm boot replays it so proc start events land
// in the same relative sequence as a cold boot's.
func (o *OS) spawnDaemons() {
	for _, k := range o.kernels {
		k := k
		core := o.serviceCore(k)
		part := o.S.DomainPartition(k)
		o.Eng.Spawn("mbox-dispatch-"+k.String(), func(p *sim.Proc) {
			o.dispatch(p, core, k)
		}).SetPartition(part)
		o.Eng.Spawn("mem-worker-"+k.String(), func(p *sim.Proc) {
			o.Mem.Worker(p, core, k)
		}).SetPartition(part)
	}
	if o.DSM != nil {
		o.Eng.Spawn("dsm-bh-drainer", o.DSM.RunMainDrainer).
			SetPartition(o.S.DomainPartition(soc.Strong))
	}
	if o.Watchdog != nil {
		o.Eng.Spawn("watchdog", func(p *sim.Proc) {
			o.Watchdog.run(p, o.serviceCore(soc.Strong))
		}).SetPartition(o.S.DomainPartition(soc.Strong))
	}
}

// newState allocates n unmovable state pages for a shadowed service and
// registers them with the DSM (a no-op under the Linux baseline).
func (o *OS) newState(name string, lock int, n int) (*services.ShadowedState, error) {
	var pages []mem.PFN
	for i := 0; i < n; i++ {
		p, err := o.Mem.Buddies[soc.Strong].AllocBoot(0, mem.Unmovable)
		if err != nil {
			return nil, fmt.Errorf("core: %s state page: %w", name, err)
		}
		pages = append(pages, p)
	}
	if o.DSM == nil {
		return services.NewShadowedState(name, nil, nil, pages), nil
	}
	return services.NewShadowedState(name, o.DSM, o.S.Spinlocks.Lock(lock), pages), nil
}

// serviceCore is the core each kernel dedicates to dispatchers and
// interrupt handlers: the last core of the strong domain, or core 0 of a
// weak one.
func (o *OS) serviceCore(k soc.DomainID) *soc.Core {
	if k == soc.Strong {
		return o.S.Core(soc.Strong, len(o.S.Domains[soc.Strong].Cores)-1)
	}
	return o.S.Core(k, 0)
}

// dispatch is a kernel's mailbox dispatcher loop: DSM coherence messages,
// NightWatch scheduling messages, and meta-level memory-manager commands.
func (o *OS) dispatch(p *sim.Proc, core *soc.Core, k soc.DomainID) {
	for {
		msg, from := o.S.Mailbox.RecvFrom(p, k)
		o.Trace.Emit(trace.Mailbox, "%v received %v", k, msg)
		if o.DSM != nil && o.DSM.HandleMessage(p, core, k, from, msg) {
			continue
		}
		if o.Sched.HandleMessage(p, core, k, msg) {
			continue
		}
		switch msg.Type() {
		case soc.MsgBalloonCmd:
			o.Mem.EnqueueReclaim(k, from)
		case soc.MsgBalloonAck:
			o.Mem.OnBalloonAck(k)
		case soc.MsgGeneric:
			if o.handleWatchdogMail(p, core, k, from, msg.Payload()) {
				continue
			}
			if o.Replicas != nil && o.Replicas.HandleMail(p, core, k, msg.Payload()) {
				continue
			}
			o.applyPeerMap(k, msg.Payload())
		}
	}
}

// RegisterIRQ adds a handler for a shared interrupt line.
func (o *OS) RegisterIRQ(line soc.IRQLine, h IRQHandler) {
	o.irqHandlers[line] = append(o.irqHandlers[line], h)
}

// SpawnProcess creates a process in the single system image.
func (o *OS) SpawnProcess(name string) *sched.Process {
	return o.Sched.NewProcess(name)
}

// EnergyJ returns the energy drawn by both domains since the last
// MeterReset.
func (o *OS) EnergyJ() float64 { return o.Meter.EnergyJ() }

// MeterReset zeroes the energy meter (start of a measured episode).
func (o *OS) MeterReset() { o.Meter.Reset() }
