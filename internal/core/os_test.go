package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

func boot(t *testing.T, mode Mode) (*sim.Engine, *OS) {
	t.Helper()
	e := sim.NewEngine()
	o, err := Boot(e, Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return e, o
}

func TestBootBothModes(t *testing.T) {
	for _, mode := range []Mode{K2Mode, LinuxMode} {
		e, o := boot(t, mode)
		if err := e.Run(sim.Time(time.Second)); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !o.Ready.Fired() {
			t.Fatalf("%v: init never completed", mode)
		}
		if o.FS == nil {
			t.Fatalf("%v: no filesystem", mode)
		}
		if mode == K2Mode && o.DSM == nil {
			t.Fatal("K2 must have a DSM")
		}
		if mode == LinuxMode && o.DSM != nil {
			t.Fatal("baseline must not have a DSM")
		}
	}
}

func TestServiceClassification(t *testing.T) {
	_, o := boot(t, K2Mode)
	// §5.3: shadowed is the largest category.
	sh, ind, priv := o.Registry.Count(2), o.Registry.Count(1), o.Registry.Count(0)
	if sh <= ind || sh <= priv {
		t.Fatalf("shadowed=%d independent=%d private=%d; shadowed must dominate", sh, ind, priv)
	}
}

// The single system image: a file written by a NightWatch thread on the
// shadow kernel is read back by a normal thread on the main kernel.
func TestSingleSystemImageAcrossKernels(t *testing.T) {
	e, o := boot(t, K2Mode)
	pr := o.SpawnProcess("app")
	var read []byte
	pr.Spawn(sched.NightWatch, "writer", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		f, err := o.FS.Create(th, "/note")
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.Write(th, []byte("written on the weak domain")); err != nil {
			t.Error(err)
			return
		}
		if err := f.Close(th); err != nil {
			t.Error(err)
			return
		}
		// Hand off to a normal thread in the same image.
		pr2 := o.SpawnProcess("reader")
		pr2.Spawn(sched.Normal, "reader", func(tr *sched.Thread) {
			f, err := o.FS.Open(tr, "/note")
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 64)
			n, err := f.Read(tr, buf)
			if err != nil {
				t.Error(err)
				return
			}
			read = append([]byte(nil), buf[:n]...)
		})
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(read, []byte("written on the weak domain")) {
		t.Fatalf("read %q", read)
	}
	if err := o.DSM.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// waitInactive blocks until both domains are inactive.
func waitInactive(o *OS, p *sim.Proc) {
	for o.S.Domains[soc.Strong].State() != soc.DomInactive ||
		o.S.Domains[soc.Weak].State() != soc.DomInactive {
		p.Sleep(250 * time.Millisecond)
	}
}

// lightEpisode runs one light-task episode (wake, 16 DMA transfers of
// 16 KB, idle to inactive) and returns the measured energy in joules.
func lightEpisode(t *testing.T, mode Mode) float64 {
	e, o := boot(t, mode)
	runOnce := func(name string) {
		pr := o.SpawnProcess(name)
		pr.Spawn(sched.NightWatch, "sync", func(th *sched.Thread) {
			th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
			for i := 0; i < 16; i++ {
				o.DMA.Transfer(th, 16<<10)
			}
		})
	}
	// Warmup pass: migrates service-state ownership and lets both domains
	// settle to inactive.
	runOnce("warm")
	done := false
	var energy float64
	e.Spawn("measure", func(p *sim.Proc) {
		p.Sleep(30 * time.Second) // past the warmup episode
		waitInactive(o, p)
		o.MeterReset()
		runOnce("measured")
		p.Sleep(time.Second)
		waitInactive(o, p)
		energy = o.EnergyJ()
		done = true
		o.Eng.Stop()
	})
	if err := e.Run(sim.Time(10 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("measurement did not finish")
	}
	return energy
}

// The headline result (§9.2): K2 improves energy efficiency for light OS
// workloads severalfold, by running them on the weak domain and letting the
// strong domain sleep.
func TestK2EnergyAdvantageForLightTasks(t *testing.T) {
	k2 := lightEpisode(t, K2Mode)
	linux := lightEpisode(t, LinuxMode)
	ratio := linux / k2
	if ratio < 4 {
		t.Fatalf("K2 advantage = %.2fx (linux %.4f J, k2 %.4f J); want >= 4x", ratio, linux, k2)
	}
	if ratio > 15 {
		t.Fatalf("K2 advantage = %.2fx implausibly high (linux %.4f J, k2 %.4f J)", ratio, linux, k2)
	}
}

// Under K2, a light task must not wake the inactive strong domain at all
// once service ownership has migrated (§7 rule 1 plus DSM warm state).
func TestLightTaskDoesNotWakeStrongDomain(t *testing.T) {
	e, o := boot(t, K2Mode)
	run := func(name string) {
		pr := o.SpawnProcess(name)
		pr.Spawn(sched.NightWatch, "sync", func(th *sched.Thread) {
			th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
			for i := 0; i < 4; i++ {
				o.DMA.Transfer(th, 16<<10)
			}
		})
	}
	run("warm")
	failed := false
	e.Spawn("measure", func(p *sim.Proc) {
		p.Sleep(30 * time.Second)
		waitInactive(o, p)
		wakes := o.S.Domains[soc.Strong].WakeCount()
		run("measured")
		p.Sleep(time.Second)
		waitInactive(o, p)
		if o.S.Domains[soc.Strong].WakeCount() != wakes {
			failed = true
		}
		o.Eng.Stop()
	})
	if err := e.Run(sim.Time(10 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("the light task woke the strong domain")
	}
}

// Concurrent DMA from both kernels (the Table 6 scenario) must preserve
// correctness and keep aggregate throughput near the single-kernel case.
func TestConcurrentDMABothKernels(t *testing.T) {
	e, o := boot(t, K2Mode)
	var mainDone, shadDone int
	const n = 12
	prM := o.SpawnProcess("main-bench")
	prM.Spawn(sched.Normal, "m", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		for i := 0; i < n; i++ {
			o.DMA.Transfer(th, 256<<10)
			mainDone++
		}
	})
	prS := o.SpawnProcess("shadow-bench")
	prS.Spawn(sched.NightWatch, "s", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		for i := 0; i < n/2; i++ {
			o.DMA.Transfer(th, 256<<10)
			shadDone++
		}
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if mainDone != n || shadDone != n/2 {
		t.Fatalf("transfers: main %d/%d shadow %d/%d", mainDone, n, shadDone, n/2)
	}
	if err := o.DSM.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The driver state must have ping-ponged.
	if o.DSM.RequesterStats[soc.Weak].Faults == 0 || o.DSM.RequesterStats[soc.Strong].Faults == 0 {
		t.Fatal("no DSM traffic despite concurrent shared-driver use")
	}
}

// Memory pressure on the shadow kernel must flow through the meta-level
// manager: probe -> worker -> balloon deflate.
func TestShadowMemoryPressureGetsBlocks(t *testing.T) {
	e, o := boot(t, K2Mode)
	pr := o.SpawnProcess("hog")
	pr.Spawn(sched.NightWatch, "alloc", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		b := o.Mem.Buddies[soc.Weak]
		for i := 0; i < 3000; i++ {
			if _, err := b.Alloc(th.P(), th.Core(), 0, 1); err != nil {
				t.Errorf("alloc %d: %v", i, err)
				return
			}
			if i%64 == 0 {
				th.SleepIdle(2 * time.Millisecond) // let background work run
			}
		}
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if o.Mem.Buddies[soc.Weak].TotalPages() <= 4096 {
		t.Fatalf("shadow never received extra blocks (total %d pages)",
			o.Mem.Buddies[soc.Weak].TotalPages())
	}
	if err := o.Mem.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}

func TestUDPAcrossImage(t *testing.T) {
	e, o := boot(t, K2Mode)
	pr := o.SpawnProcess("net")
	var got []byte
	pr.Spawn(sched.NightWatch, "loopback", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		a, err := o.Net.NewSocket(th, 0)
		if err != nil {
			t.Error(err)
			return
		}
		b, err := o.Net.NewSocket(th, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := a.SendTo(th, b.Addr(), []byte("cloud sync")); err != nil {
			t.Error(err)
			return
		}
		data, _, err := b.RecvFrom(th)
		if err != nil {
			t.Error(err)
			return
		}
		got = data
		a.Close(th)
		b.Close(th)
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if string(got) != "cloud sync" {
		t.Fatalf("got %q", got)
	}
}

func TestBootDeterminism(t *testing.T) {
	sig := func() string {
		e, o := boot(t, K2Mode)
		pr := o.SpawnProcess("app")
		pr.Spawn(sched.NightWatch, "w", func(th *sched.Thread) {
			th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
			for i := 0; i < 4; i++ {
				o.DMA.Transfer(th, 64<<10)
			}
		})
		if err := e.Run(sim.Time(time.Minute)); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v|%v|%d|%d", e.Now(), o.EnergyJ(),
			o.DSM.RequesterStats[soc.Weak].Faults, o.S.Mailbox.Sent(soc.Strong))
	}
	a, b := sig(), sig()
	if a != b {
		t.Fatalf("two identical boots diverged:\n%s\n%s", a, b)
	}
}
