package core

import (
	"fmt"

	"k2/internal/replica"
	"k2/internal/sched"
	"k2/internal/soc"
	"k2/internal/trace"
	"k2/internal/vm"
)

// mapOp is a pending page-table update being propagated to the peer
// kernels; refs counts how many have yet to apply it.
type mapOp struct {
	base  vm.VAddr
	pages int
	unmap bool
	refs  int
}

// MapIO establishes a temporary mapping (e.g. for device memory) in the
// calling kernel and propagates the page-table update to the peer kernel
// with a simple message protocol, keeping the unified address space
// consistent (§6.1: such creations and destructions are infrequent).
func (o *OS) MapIO(t *sched.Thread, base vm.VAddr, pages int) error {
	if err := o.AS[t.Kernel()].MapIO(base, pages); err != nil {
		return err
	}
	o.propagateMap(t, mapOp{base: base, pages: pages})
	return nil
}

// UnmapIO removes a temporary mapping from both kernels.
func (o *OS) UnmapIO(t *sched.Thread, base vm.VAddr) error {
	if err := o.AS[t.Kernel()].UnmapIO(base); err != nil {
		return err
	}
	o.propagateMap(t, mapOp{base: base, unmap: true})
	return nil
}

func (o *OS) propagateMap(t *sched.Thread, op mapOp) {
	if o.Mode != K2Mode {
		return
	}
	var peers []soc.DomainID
	for _, k := range o.kernels {
		if k != t.Kernel() {
			peers = append(peers, k)
		}
	}
	if len(peers) == 0 {
		return
	}
	o.nextMapID++
	// Fits the mail payload below both flag bits: bit 19 is the watchdog's,
	// bit 18 marks replica vote mails (replica.MailFlag).
	id := o.nextMapID & (replica.MailFlag - 1)
	op.refs = len(peers)
	o.pendingMaps[id] = op
	o.Trace.Emit(trace.Mailbox, "%v propagating %s at %#x to peer",
		t.Kernel(), mapOpName(op), uint64(op.base))
	for _, k := range peers {
		o.S.Mailbox.Send(t.P(), t.Core(), k,
			soc.NewMessage(soc.MsgGeneric, id, o.S.Mailbox.NextSeq()))
	}
}

func mapOpName(op mapOp) string {
	if op.unmap {
		return "unmap"
	}
	return "map"
}

// applyPeerMap executes a propagated page-table update on kernel k; called
// by the mailbox dispatcher on MsgGeneric.
func (o *OS) applyPeerMap(k soc.DomainID, id uint32) bool {
	op, ok := o.pendingMaps[id]
	if !ok {
		return false
	}
	op.refs--
	if op.refs <= 0 {
		delete(o.pendingMaps, id)
	} else {
		o.pendingMaps[id] = op
	}
	var err error
	if op.unmap {
		err = o.AS[k].UnmapIO(op.base)
	} else {
		err = o.AS[k].MapIO(op.base, op.pages)
	}
	if err != nil {
		// The peer's table diverged — loud failure beats silent skew.
		panic(fmt.Sprintf("core: peer mapping update failed on %v: %v", k, err))
	}
	o.Trace.Emit(trace.Mailbox, "%v applied peer %s at %#x", k, mapOpName(op), uint64(op.base))
	return true
}
