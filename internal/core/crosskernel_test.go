package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"k2/internal/netstack"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

// Both kernels hammer the filesystem concurrently: the shadowed metadata
// must stay coherent (DSM) and mutually excluded (hardware spinlock), and
// the volume must check out clean afterwards.
func TestConcurrentFilesystemBothKernels(t *testing.T) {
	e, o := boot(t, K2Mode)
	const filesPerSide = 12
	writer := func(kind sched.Kind, prefix string) {
		pr := o.SpawnProcess(prefix)
		pr.Spawn(kind, "writer", func(th *sched.Thread) {
			th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
			for i := 0; i < filesPerSide; i++ {
				name := fmt.Sprintf("/%s-%d", prefix, i)
				f, err := o.FS.Create(th, name)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				payload := bytes.Repeat([]byte(prefix), 1000)
				if err := f.Write(th, payload); err != nil {
					t.Error(err)
					return
				}
				if err := f.Close(th); err != nil {
					t.Error(err)
					return
				}
				th.SleepIdle(time.Millisecond)
			}
		})
	}
	writer(sched.Normal, "strongside")
	writer(sched.NightWatch, "weakside")
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}

	// Verify all files from a third thread and fsck the volume.
	done := false
	pr := o.SpawnProcess("checker")
	pr.Spawn(sched.Normal, "check", func(th *sched.Thread) {
		for _, prefix := range []string{"strongside", "weakside"} {
			for i := 0; i < filesPerSide; i++ {
				name := fmt.Sprintf("/%s-%d", prefix, i)
				f, err := o.FS.Open(th, name)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				buf := make([]byte, len(prefix)*1000)
				n, err := f.Read(th, buf)
				if err != nil || n != len(buf) {
					t.Errorf("%s: read %d err %v", name, n, err)
					return
				}
				if !bytes.Equal(buf, bytes.Repeat([]byte(prefix), 1000)) {
					t.Errorf("%s: content corrupted", name)
					return
				}
			}
		}
		rep, err := o.FS.Fsck(th)
		if err != nil || !rep.Clean() {
			t.Errorf("fsck: %v err=%v", rep, err)
		}
		done = true
	})
	if err := e.Run(sim.Time(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("checker did not run")
	}
	if err := o.DSM.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The metadata genuinely ping-ponged between kernels.
	if o.DSM.RequesterStats[soc.Strong].Faults == 0 || o.DSM.RequesterStats[soc.Weak].Faults == 0 {
		t.Fatal("no cross-kernel metadata traffic observed")
	}
}

// A NightWatch producer streams datagrams to a normal-thread consumer on
// the other kernel through the shared UDP stack.
func TestCrossKernelUDP(t *testing.T) {
	e, o := boot(t, K2Mode)
	const msgs = 20
	var received int
	consumerReady := sim.NewEvent(e)

	prC := o.SpawnProcess("consumer")
	prC.Spawn(sched.Normal, "recv", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		sk, err := o.Net.NewSocket(th, 9000)
		if err != nil {
			t.Error(err)
			return
		}
		consumerReady.Fire()
		for received < msgs {
			data, from, err := sk.RecvFrom(th)
			if err != nil {
				t.Error(err)
				return
			}
			if from.Port != 9001 || string(data) != fmt.Sprintf("m%d", received) {
				t.Errorf("got %q from %v at %d", data, from, received)
				return
			}
			received++
		}
		sk.Close(th)
	})

	prP := o.SpawnProcess("producer")
	prP.Spawn(sched.NightWatch, "send", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		th.Block(func(p *sim.Proc) { consumerReady.Wait(p) })
		sk, err := o.Net.NewSocket(th, 9001)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			if _, err := sk.SendTo(th, netstack.Addr{Port: 9000}, []byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Error(err)
				return
			}
			th.SleepIdle(500 * time.Microsecond)
		}
		sk.Close(th)
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if received != msgs {
		t.Fatalf("received %d/%d", received, msgs)
	}
}
