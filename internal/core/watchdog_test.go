package core

import (
	"bytes"
	"testing"
	"time"

	"k2/internal/fault"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/trace"
)

func bootWatched(t *testing.T) (*sim.Engine, *OS) {
	t.Helper()
	e := sim.NewEngine()
	cfg := soc.DefaultConfig()
	rel := soc.DefaultReliableParams()
	cfg.Reliable = &rel
	wd := DefaultWatchdogParams()
	o, err := Boot(e, Options{Mode: K2Mode, SoC: &cfg, Watchdog: &wd})
	if err != nil {
		t.Fatal(err)
	}
	return e, o
}

// End-to-end crash recovery: the weak kernel dies mid-run while owning DSM
// pages; the watchdog must notice within a few heartbeats, sweep its pages
// and blocks back to the survivors, and leave every invariant intact. A
// later reboot must be noticed too.
func TestWatchdogDetectsCrashAndReclaims(t *testing.T) {
	e, o := bootWatched(t)
	if o.Watchdog == nil {
		t.Fatal("watchdog not running")
	}
	// Hand two shared pages to the weak kernel before the crash.
	e.Spawn("setup", func(p *sim.Proc) {
		o.Ready.Wait(p)
		o.DSM.Share(100)
		o.DSM.Share(101)
		o.DSM.Write(p, o.S.Core(soc.Weak, 0), soc.Weak, 100)
		o.DSM.Write(p, o.S.Core(soc.Weak, 0), soc.Weak, 101)
	})
	const crashAt = 20 * time.Millisecond
	e.At(sim.Time(crashAt), func() { o.S.Domains[soc.Weak].Crash() })
	if err := e.Run(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	w := o.Watchdog
	if len(w.Deaths) != 1 {
		t.Fatalf("%d deaths declared, want 1", len(w.Deaths))
	}
	rec := w.Deaths[0]
	if rec.Domain != soc.Weak {
		t.Fatalf("declared %v dead", rec.Domain)
	}
	detect := time.Duration(rec.DeclaredAt) - crashAt
	if detect <= 0 || detect > 5*time.Millisecond {
		t.Fatalf("detection latency %v, want within a few heartbeat periods", detect)
	}
	if rec.RecoveredAt < rec.DeclaredAt {
		t.Fatal("recovered before declared")
	}
	if rec.ReclaimedPages < 2 {
		t.Fatalf("reclaimed %d pages, want at least the 2 the weak kernel owned", rec.ReclaimedPages)
	}
	if rec.ReclaimedBlocks < 1 {
		t.Fatalf("reclaimed %d blocks, want the weak kernel's boot block(s)", rec.ReclaimedBlocks)
	}
	if w.Alive(soc.Weak) {
		t.Fatal("watchdog still believes the crashed kernel is alive")
	}
	if o.DSM.Owner(100) != soc.Strong || o.DSM.Owner(101) != soc.Strong {
		t.Fatalf("pages not inherited: owners %v/%v", o.DSM.Owner(100), o.DSM.Owner(101))
	}
	if err := o.DSM.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := o.Mem.CheckPartition(); err != nil {
		t.Fatal(err)
	}

	// Reboot: the next answered ping marks the kernel alive again.
	o.S.Domains[soc.Weak].Reboot()
	if err := e.Run(sim.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if w.Reboots != 1 || !w.Alive(soc.Weak) {
		t.Fatalf("reboots=%d alive=%v after the kernel came back", w.Reboots, w.Alive(soc.Weak))
	}
}

// A healthy platform must never have a death declared, and the heartbeat
// must not keep the platform awake: all pings stop while domains sleep.
func TestWatchdogQuietOnHealthyPlatform(t *testing.T) {
	e, o := bootWatched(t)
	if err := e.Run(sim.Time(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	w := o.Watchdog
	if len(w.Deaths) != 0 {
		t.Fatalf("healthy run declared %d deaths", len(w.Deaths))
	}
	// After boot activity dies down the domains suspend (5 s inactivity);
	// a watchdog that kept pinging would have prevented exactly that.
	if o.S.Domains[soc.Strong].State() != soc.DomInactive {
		t.Fatalf("strong domain state %v, want inactive — the watchdog kept it awake",
			o.S.Domains[soc.Strong].State())
	}
	pings := w.Pings
	if err := e.Run(sim.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if w.Pings != pings {
		t.Fatalf("watchdog sent %d pings while the platform slept", w.Pings-pings)
	}
}

// faultyTraceDump runs one seeded faulty scenario to completion and returns
// the fault-kind trace dump plus the injector's stats.
func faultyTraceDump(t *testing.T, seed int64) (string, fault.Stats) {
	t.Helper()
	e, o := bootWatched(t)
	o.Trace.EnableOnly(trace.Fault)
	pl := fault.NewPlan(seed).
		CrashAt(soc.Weak, 10*time.Millisecond, 30*time.Millisecond).
		AllLinks(fault.LinkFaults{DropP: 0.1})
	pl.Arm(o.S, o.Trace)
	if err := e.Run(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Trace.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), pl.Stats
}

// The whole faulty run — injection, detection, recovery — must be a pure
// function of the seed: identical seeds give identical trace dumps.
func TestFaultyRunDeterministicPerSeed(t *testing.T) {
	d1, s1 := faultyTraceDump(t, 5)
	d2, s2 := faultyTraceDump(t, 5)
	if d1 != d2 {
		t.Fatalf("same seed produced different trace dumps:\n--- run 1\n%s\n--- run 2\n%s", d1, d2)
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different stats: %+v vs %+v", s1, s2)
	}
	if s1.Crashes != 1 || s1.Reboots != 1 {
		t.Fatalf("scripted faults did not fire: %+v", s1)
	}
}
