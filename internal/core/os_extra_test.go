package core

import (
	"testing"
	"time"

	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/trace"
)

func TestMapIOPropagatesToPeer(t *testing.T) {
	e, o := boot(t, K2Mode)
	pr := o.SpawnProcess("drv")
	pr.Spawn(sched.NightWatch, "probe", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		if err := o.MapIO(th, 0xF100_0000, 4); err != nil {
			t.Error(err)
			return
		}
		th.SleepIdle(time.Millisecond) // let the propagation message land
		if o.AS[soc.Strong].TempMappings() != 1 {
			t.Error("peer kernel missing the temporary mapping")
		}
		if o.AS[soc.Weak].TempMappings() != 1 {
			t.Error("local kernel missing the temporary mapping")
		}
		if err := o.UnmapIO(th, 0xF100_0000); err != nil {
			t.Error(err)
			return
		}
		th.SleepIdle(time.Millisecond)
		if o.AS[soc.Strong].TempMappings() != 0 || o.AS[soc.Weak].TempMappings() != 0 {
			t.Error("unmap did not propagate")
		}
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
}

func TestMapIOLinuxModeLocalOnly(t *testing.T) {
	e, o := boot(t, LinuxMode)
	pr := o.SpawnProcess("drv")
	pr.Spawn(sched.Normal, "probe", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		if err := o.MapIO(th, 0xF200_0000, 2); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if o.AS[soc.Strong].TempMappings() != 1 {
		t.Fatal("mapping missing")
	}
	if o.AS[soc.Weak].TempMappings() != 0 {
		t.Fatal("baseline propagated to the unused weak kernel")
	}
}

func TestSensorIRQFollowsStrongDomainState(t *testing.T) {
	e := sim.NewEngine()
	o, err := Boot(e, Options{Mode: K2Mode, SensorPeriod: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pr := o.SpawnProcess("sense")
	var gotBatches int
	pr.Spawn(sched.NightWatch, "reader", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		// Wait until the strong domain is inactive, then read batches.
		for o.S.Domains[soc.Strong].State() != soc.DomInactive {
			th.SleepIdle(500 * time.Millisecond)
		}
		wakes := o.S.Domains[soc.Strong].WakeCount()
		for i := 0; i < 5; i++ {
			o.Sensor.ReadBatch(th, 8)
			gotBatches++
		}
		if o.S.Domains[soc.Strong].WakeCount() != wakes {
			t.Error("sensor interrupts woke the inactive strong domain")
		}
		o.Sensor.Dev.Stop()
	})
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if gotBatches != 5 {
		t.Fatalf("batches = %d", gotBatches)
	}
}

func TestTraceCapturesKernelActivity(t *testing.T) {
	e, o := boot(t, K2Mode)
	pr := o.SpawnProcess("app")
	pr.Spawn(sched.NightWatch, "w", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		o.DMA.Transfer(th, 32<<10)
	})
	pr.Spawn(sched.Normal, "n", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		th.SleepIdle(100 * time.Millisecond)
		th.Exec(soc.Work(time.Millisecond))
	})
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	for _, k := range []trace.Kind{trace.Boot, trace.Power, trace.IRQ, trace.DSM, trace.Sched, trace.Mailbox} {
		if o.Trace.Counts[k] == 0 {
			t.Errorf("no %v trace events recorded", k)
		}
	}
	if o.Trace.Total() == 0 || o.Trace.Len() == 0 {
		t.Fatal("tracer empty")
	}
}

func TestSharedPagesDemoteMappings(t *testing.T) {
	// §6.3 footprint optimization: only sections containing DSM-shared
	// pages are demoted to 4 KB mappings, in both kernels.
	_, o := boot(t, K2Mode)
	if o.AS[soc.Strong].Demotions == 0 || o.AS[soc.Weak].Demotions == 0 {
		t.Fatal("service-state pages did not demote any section")
	}
	// Demotions stay tiny relative to the 1024 sections of 1 GB.
	if o.AS[soc.Strong].Demotions > 8 {
		t.Fatalf("%d sections demoted; the optimization should keep this minimal",
			o.AS[soc.Strong].Demotions)
	}
	// PTE accounting: a fully section-mapped space has ~1024+ entries; the
	// demoted one grows by 255 per demoted section only.
	fresh := (o.Layout.TotalPages + 255) / 256
	if got := o.AS[soc.Strong].PTEs(); got >= fresh+8*256 {
		t.Fatalf("PTEs = %d, want far below a fully 4KB-mapped space", got)
	}
}

func TestLinuxModeKeepsWeakDomainDark(t *testing.T) {
	e, o := boot(t, LinuxMode)
	pr := o.SpawnProcess("app")
	pr.Spawn(sched.NightWatch, "light", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		o.DMA.Transfer(th, 64<<10)
	})
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	// The weak domain did nothing: no wakes, inactive, near-zero energy.
	if o.S.Domains[soc.Weak].WakeCount() != 0 {
		t.Fatal("baseline used the weak domain")
	}
	if o.S.Domains[soc.Weak].State() != soc.DomInactive {
		t.Fatal("weak domain not inactive under the baseline")
	}
}

func TestBootRejectsTinyMemory(t *testing.T) {
	e := sim.NewEngine()
	cfg := soc.DefaultConfig()
	cfg.RAMBytes = 64 << 20 // 4 blocks: local regions eat 3, pool has 1
	_, err := Boot(e, Options{Mode: K2Mode, SoC: &cfg, InitialMainBlocks: 4, InitialShadowBlocks: 4})
	if err == nil {
		t.Fatal("boot succeeded without enough page blocks")
	}
}
