package core

import (
	"bytes"
	"testing"
	"time"

	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

func bootN(t *testing.T, weak int) (*sim.Engine, *OS) {
	t.Helper()
	e := sim.NewEngine()
	o, err := Boot(e, Options{Mode: K2Mode, WeakDomains: weak})
	if err != nil {
		t.Fatal(err)
	}
	return e, o
}

// Booting with N weak domains must bring up one shadow kernel per weak
// domain, all reachable through the single system image.
func TestBootOneShadowKernelPerWeakDomain(t *testing.T) {
	e, o := bootN(t, 3)
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !o.Ready.Fired() {
		t.Fatal("init never completed")
	}
	ks := o.Kernels()
	if len(ks) != 4 {
		t.Fatalf("kernels = %v, want strong + 3 shadows", ks)
	}
	if ks[0] != soc.Strong {
		t.Fatalf("kernels = %v; strong must be first", ks)
	}
	if len(o.AS) != 4 {
		t.Fatalf("address spaces = %d, want one per kernel", len(o.AS))
	}
}

// Light tasks must spread across weak domains least-loaded-first rather than
// piling onto the first shadow kernel.
func TestLightTasksSpreadAcrossWeakDomains(t *testing.T) {
	e, o := bootN(t, 2)
	for i := 0; i < 4; i++ {
		pr := o.SpawnProcess("light")
		pr.Spawn(sched.NightWatch, "w", func(th *sched.Thread) {
			th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
			for j := 0; j < 4; j++ {
				o.DMA.Transfer(th, 16<<10)
			}
		})
	}
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	var busyWeak int
	for _, k := range o.S.WeakDomains() {
		if o.DSM.RequesterStats[k].Faults > 0 {
			busyWeak++
		}
	}
	if busyWeak != 2 {
		t.Fatalf("%d of 2 weak domains saw DSM traffic; placement did not spread", busyWeak)
	}
}

// Determinism regression: two boots of the same topology running the same
// workload must produce byte-identical trace-ring dumps. This guards the
// engine's (time, seq) event ordering through the N-domain refactor.
func TestTopologyTraceDeterminism(t *testing.T) {
	for _, weak := range []int{1, 2, 4} {
		dump := func() string {
			e, o := bootN(t, weak)
			for i := 0; i < 3; i++ {
				pr := o.SpawnProcess("light")
				pr.Spawn(sched.NightWatch, "w", func(th *sched.Thread) {
					th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
					for j := 0; j < 4; j++ {
						o.DMA.Transfer(th, 64<<10)
					}
				})
			}
			if err := e.Run(sim.Time(time.Minute)); err != nil {
				t.Fatal(err)
			}
			var b bytes.Buffer
			if err := o.Trace.Dump(&b); err != nil {
				t.Fatal(err)
			}
			if o.Trace.Total() == 0 {
				t.Fatal("trace buffer is empty; nothing was compared")
			}
			return b.String()
		}
		a, b := dump(), dump()
		if a != b {
			t.Fatalf("weak=%d: two identical boots produced different traces:\n--- first ---\n%s\n--- second ---\n%s",
				weak, a, b)
		}
	}
}
