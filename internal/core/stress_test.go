package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"k2/internal/netstack"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

// A randomized whole-OS workout: several processes on both kernels mix DMA
// transfers, file IO, UDP traffic, page allocations and plain computation,
// with foreground bursts triggering the NightWatch protocol. Afterwards,
// every cross-cutting invariant in the system must hold. This is the
// closest thing to the paper's "run real mixed workloads and see nothing
// break" confidence test.
// seedStress spawns the randomized mixed workload on a booted OS and
// returns a flag that stays true iff every operation succeeded.
func seedStress(e *sim.Engine, o *OS, seed int64) *bool {
	ok := new(bool)
	*ok = true
	mkLight := func(id int, r *rand.Rand) {
		pr := o.SpawnProcess(fmt.Sprintf("light%d", id))
		pr.Spawn(sched.NightWatch, "w", func(th *sched.Thread) {
			th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
			for op := 0; op < 10; op++ {
				switch r.Intn(4) {
				case 0:
					o.DMA.Transfer(th, int64(4096*(1+r.Intn(8))))
				case 1:
					name := fmt.Sprintf("/s%d-%d-%d", id, op, r.Intn(1000))
					fl, err := o.FS.Create(th, name)
					if err != nil {
						*ok = false
						return
					}
					if err := fl.Write(th, make([]byte, r.Intn(20000))); err != nil {
						*ok = false
						return
					}
					if err := fl.Close(th); err != nil {
						*ok = false
						return
					}
				case 2:
					a, err := o.Net.NewSocket(th, 0)
					if err != nil {
						*ok = false
						return
					}
					b, err := o.Net.NewSocket(th, 0)
					if err != nil {
						*ok = false
						return
					}
					if _, err := a.SendTo(th, b.Addr(), make([]byte, r.Intn(4000))); err != nil {
						*ok = false
						return
					}
					if _, _, err := b.RecvFrom(th); err != nil {
						*ok = false
						return
					}
					a.Close(th)
					b.Close(th)
				case 3:
					buddy := o.Mem.Buddies[soc.Weak]
					if pfn, err := buddy.Alloc(th.P(), th.Core(), r.Intn(3), 1); err == nil {
						o.Mem.Free(th.P(), th.Core(), soc.Weak, pfn)
					}
				}
				th.SleepIdle(time.Duration(r.Intn(2000)) * time.Microsecond)
			}
		})
		// A foreground sibling exercising the suspend protocol.
		pr.Spawn(sched.Normal, "fg", func(th *sched.Thread) {
			th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
			for b := 0; b < 3; b++ {
				th.SleepIdle(time.Duration(1+r.Intn(5)) * time.Millisecond)
				th.Exec(soc.Work(time.Duration(r.Intn(2000)) * time.Microsecond))
			}
		})
	}
	for i := 0; i < 3; i++ {
		mkLight(i, rand.New(rand.NewSource(seed+int64(i))))
	}
	return ok
}

// A randomized whole-OS workout: several processes on both kernels mix DMA
// transfers, file IO, UDP traffic, page allocations and plain computation,
// with foreground bursts triggering the NightWatch protocol. Afterwards,
// every cross-cutting invariant in the system must hold.
func TestQuickWholeOSStress(t *testing.T) {
	f := func(seed int64) bool {
		e := sim.NewEngine()
		o, err := Boot(e, Options{Mode: K2Mode})
		if err != nil {
			t.Log(err)
			return false
		}
		ok := seedStress(e, o, seed)
		if err := e.Run(sim.Time(time.Hour)); err != nil {
			t.Log(err)
			return false
		}
		if !*ok {
			return false
		}
		// Cross-cutting invariants.
		if err := o.DSM.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		if err := o.Mem.CheckPartition(); err != nil {
			t.Log(err)
			return false
		}
		for _, k := range []soc.DomainID{soc.Strong, soc.Weak} {
			if err := o.Mem.Buddies[k].CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		// The filesystem survived concurrent use from both kernels.
		fsOK := false
		pr := o.SpawnProcess("fsck")
		pr.Spawn(sched.Normal, "fsck", func(th *sched.Thread) {
			rep, err := o.FS.Fsck(th)
			fsOK = err == nil && rep.Clean()
			if !fsOK {
				t.Logf("fsck: %v err=%v", rep, err)
			}
		})
		if err := e.Run(e.Now() + sim.Time(time.Hour)); err != nil {
			t.Log(err)
			return false
		}
		return fsOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// Determinism must extend to the whole stressed OS.
func TestWholeOSStressDeterminism(t *testing.T) {
	sig := func() string {
		e := sim.NewEngine()
		o, err := Boot(e, Options{Mode: K2Mode})
		if err != nil {
			t.Fatal(err)
		}
		pr := o.SpawnProcess("app")
		pr.Spawn(sched.NightWatch, "w", func(th *sched.Thread) {
			th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
			for i := 0; i < 5; i++ {
				o.DMA.Transfer(th, 16<<10)
				fl, err := o.FS.Create(th, fmt.Sprintf("/d%d", i))
				if err != nil {
					t.Error(err)
					return
				}
				if err := fl.Write(th, make([]byte, 5000)); err != nil {
					t.Error(err)
					return
				}
				if err := fl.Close(th); err != nil {
					t.Error(err)
					return
				}
				a, _ := o.Net.NewSocket(th, 0)
				b, _ := o.Net.NewSocket(th, 0)
				if _, err := a.SendTo(th, netstack.Addr{Port: b.Addr().Port}, make([]byte, 2000)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := b.RecvFrom(th); err != nil {
					t.Error(err)
					return
				}
				a.Close(th)
				b.Close(th)
			}
		})
		if err := e.Run(sim.Time(time.Minute)); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v|%.9f|%d|%d|%d", e.Now(), o.EnergyJ(),
			o.DSM.RequesterStats[soc.Weak].Faults,
			o.S.Mailbox.Sent(soc.Strong), o.Trace.Total())
	}
	if a, b := sig(), sig(); a != b {
		t.Fatalf("stressed boots diverged:\n%s\n%s", a, b)
	}
}
