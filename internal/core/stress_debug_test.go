package core

import (
	"fmt"
	"testing"
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
)

// TestDebugStressProgress is a diagnosis aid: it runs one stress seed in
// one-minute virtual steps and reports progress, making virtual-time
// livelocks visible. Skipped unless -run selects it explicitly... kept
// cheap enough to run always.
func TestDebugStressProgress(t *testing.T) {
	e := sim.NewEngine()
	o, err := Boot(e, Options{Mode: K2Mode})
	if err != nil {
		t.Fatal(err)
	}
	seedStress(e, o, 42)
	for step := 1; step <= 10; step++ {
		if err := e.Run(sim.Time(time.Duration(step) * 6 * time.Second)); err != nil {
			t.Fatal(err)
		}
		if testing.Verbose() {
			fmt.Printf("virtual %v strong=%v weak=%v deferred=%d\n",
				e.Now(), o.S.Domains[soc.Strong].State(), o.S.Domains[soc.Weak].State(),
				o.DSM.DeferredLen())
		}
	}
}
