package core

import (
	"fmt"

	"k2/internal/driver"
	"k2/internal/dsm"
	"k2/internal/fs"
	"k2/internal/irq"
	"k2/internal/mem"
	"k2/internal/netstack"
	"k2/internal/power"
	"k2/internal/replica"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/snap"
	"k2/internal/soc"
	"k2/internal/trace"
	"k2/internal/vm"
)

// wdKernelState is the watchdog's per-shadow-kernel checkpointable state.
type wdKernelState struct {
	Alive      bool
	Awaiting   bool
	SentEpoch  uint32
	PongEpoch  uint32
	Missed     int
	Suppressed bool
}

// watchdogState is the watchdog's checkpointable state.
type watchdogState struct {
	Kernels []wdKernelState
	Epoch   uint32
	Pings   int
	Pongs   int
	Reboots int
	Deaths  []DeathRecord
}

func (w *Watchdog) captureState() watchdogState {
	st := watchdogState{
		Epoch: w.epoch, Pings: w.Pings, Pongs: w.Pongs, Reboots: w.Reboots,
		Deaths: append([]DeathRecord(nil), w.Deaths...),
	}
	for _, s := range w.state {
		st.Kernels = append(st.Kernels, wdKernelState{
			Alive: s.alive, Awaiting: s.awaiting,
			SentEpoch: s.sentEpoch, PongEpoch: s.pongEpoch, Missed: s.missed,
			Suppressed: s.suppressed,
		})
	}
	return st
}

func (w *Watchdog) restoreState(st watchdogState) {
	for i, s := range st.Kernels {
		w.state[i] = wdState{
			alive: s.Alive, awaiting: s.Awaiting,
			sentEpoch: s.SentEpoch, pongEpoch: s.PongEpoch, missed: s.Missed,
			suppressed: s.Suppressed,
		}
	}
	w.epoch = st.Epoch
	w.Pings, w.Pongs, w.Reboots = st.Pings, st.Pongs, st.Reboots
	w.Deaths = append([]DeathRecord(nil), st.Deaths...)
}

// osState is the deep, deterministic capture of the whole engine+OS at the
// boot-ready quiesce point: engine clock and sequence counter, platform,
// tracer ring, meter, address spaces, memory, coherence directory,
// scheduler, router, every extended service, and the watchdog. It contains
// no pointers into the captured system — a snapshot can be restored any
// number of times and outlives its source.
type osState struct {
	Eng       sim.EngineState
	SoC       soc.SoCState
	Trace     trace.BufferState
	Meter     power.MeterState
	VM        []vm.AddressSpaceState
	Mem       mem.ManagerState
	DSM       *dsm.DSMState
	Sched     sched.SchedState
	Router    irq.RouterState
	DMA       driver.DMAState
	Disk      driver.RAMDiskState
	FS        fs.FileSystemState
	Net       netstack.StackState
	SensorDev *driver.SensorDeviceState
	Sensor    *driver.SensorDriverState
	Watchdog  *watchdogState
	Replica   *replica.State
	NextMapID uint32
}

// Snapshot is a checkpoint of a booted system, taken at the boot-ready
// quiesce point. Restore and Fork rehydrate it onto a fresh engine; the
// source system is not perturbed and can keep running.
type Snapshot struct {
	opts  Options
	state osState
}

// Snapshot captures the system. It may only be called at a quiesce point:
// Ready fired, the engine paused, no thread running, no mail, fault, DMA
// transfer or map propagation in flight — the state a system is in right
// after boot completes, before any workload is released. Each subsystem
// enforces its own preconditions and capture fails loudly if any is unmet.
func (o *OS) Snapshot() (*Snapshot, error) {
	if !o.Ready.Fired() {
		return nil, fmt.Errorf("core: snapshot before boot completed")
	}
	if n := len(o.pendingMaps); n > 0 {
		return nil, fmt.Errorf("core: %d map propagations in flight", n)
	}
	if o.FS == nil {
		return nil, fmt.Errorf("core: snapshot before the filesystem was formatted")
	}
	st := osState{
		Eng:       o.Eng.CaptureState(),
		Trace:     o.Trace.CaptureState(),
		Meter:     o.Meter.CaptureState(),
		Router:    o.Router.CaptureState(),
		Disk:      o.Disk.CaptureState(),
		NextMapID: o.nextMapID,
	}
	var err error
	if st.SoC, err = o.S.CaptureState(); err != nil {
		return nil, err
	}
	for _, as := range o.AS {
		st.VM = append(st.VM, as.CaptureState())
	}
	if st.Mem, err = o.Mem.CaptureState(); err != nil {
		return nil, err
	}
	if o.DSM != nil {
		ds, err := o.DSM.CaptureState()
		if err != nil {
			return nil, err
		}
		st.DSM = &ds
	}
	if st.Sched, err = o.Sched.CaptureState(); err != nil {
		return nil, err
	}
	if st.DMA, err = o.DMA.CaptureState(); err != nil {
		return nil, err
	}
	if st.FS, err = o.FS.CaptureState(); err != nil {
		return nil, err
	}
	if st.Net, err = o.Net.CaptureState(); err != nil {
		return nil, err
	}
	if o.Sensor != nil {
		dev := o.Sensor.Dev.CaptureState()
		st.SensorDev = &dev
		drv, err := o.Sensor.CaptureState()
		if err != nil {
			return nil, err
		}
		st.Sensor = &drv
	}
	if o.Watchdog != nil {
		ws := o.Watchdog.captureState()
		st.Watchdog = &ws
	}
	if o.Replicas != nil {
		rs, err := o.Replicas.CaptureState()
		if err != nil {
			return nil, err
		}
		st.Replica = &rs
	}
	opts := o.opts
	opts.TraceSink = nil // live subscriber, never captured
	return &Snapshot{opts: opts, state: st}, nil
}

// Restore rehydrates the snapshot onto a fresh engine and returns the
// restored system, byte-identical in behavior to the captured one. sink, if
// non-nil, receives the captured boot trace replayed in order and then every
// event the restored run emits — the stream a cold boot would have produced.
func (s *Snapshot) Restore(eng *sim.Engine, sink func(trace.Event)) (*OS, error) {
	opts := s.opts
	opts.TraceSink = sink
	return bootSystem(eng, opts, &s.state)
}

// Fork is Restore onto a brand-new engine: the returned system diverges
// freely (different workload, different fault storm) while the snapshot —
// and the system it was captured from — remain untouched.
func (s *Snapshot) Fork(sink func(trace.Event)) (*sim.Engine, *OS, error) {
	eng := sim.NewEngine()
	o, err := s.Restore(eng, sink)
	return eng, o, err
}

// Now returns the virtual time the snapshot was captured at (the boot-ready
// barrier).
func (s *Snapshot) Now() sim.Time { return s.state.Eng.Now }

// Marshal encodes the captured state with the deterministic snapshot codec:
// the same snapshot always yields the same bytes.
func (s *Snapshot) Marshal() []byte { return snap.Encode(s.state) }

// UnmarshalState decodes a Marshal-ed state back into the snapshot,
// replacing its captured state. The boot options are not part of the
// encoding and keep their current value.
func (s *Snapshot) UnmarshalState(data []byte) error {
	var st osState
	if err := snap.Decode(data, &st); err != nil {
		return err
	}
	s.state = st
	return nil
}

// restoreFrom is the patch phase of a warm boot: construction has already
// rebuilt every object (and replayed boot's deterministic allocations), so
// rewind the engine, overwrite every subsystem with the captured state,
// re-arm the timed sources, and respawn the background procs.
func (o *OS) restoreFrom(st *osState) error {
	// The extended-service state pages for ext2 are allocated by the init
	// thread on a cold boot; replay that allocation here (same allocator,
	// same position, hence the same pages) before the memory state is
	// patched over it.
	fsState, err := o.newState("ext2", 3, fs.StatePages)
	if err != nil {
		return err
	}
	o.FS = fs.RestoreFS(o.Disk, fsState, st.FS)

	// Rewind the engine: purge every construction-time event, restore the
	// clock and sequence counter captured at the quiesce point.
	if err := o.Eng.RestoreState(st.Eng); err != nil {
		return err
	}

	// Patch each subsystem. The platform restore re-arms the idle timers on
	// the rewound engine; rails are restored with it.
	if err := o.S.RestoreState(st.SoC); err != nil {
		return err
	}
	o.Trace.RestoreState(st.Trace)
	o.Meter.RestoreState(st.Meter)
	if len(st.VM) != len(o.AS) {
		return fmt.Errorf("core: snapshot has %d address spaces, platform %d", len(st.VM), len(o.AS))
	}
	for i, as := range o.AS {
		as.RestoreState(st.VM[i])
	}
	if err := o.Mem.RestoreState(st.Mem); err != nil {
		return err
	}
	if o.DSM != nil {
		if st.DSM == nil {
			return fmt.Errorf("core: snapshot has no DSM state")
		}
		if err := o.DSM.RestoreState(*st.DSM); err != nil {
			return err
		}
	}
	if err := o.Sched.RestoreState(st.Sched); err != nil {
		return err
	}
	o.Router.RestoreState(st.Router)
	o.DMA.RestoreState(st.DMA)
	o.Disk.RestoreState(st.Disk)
	o.Net.RestoreState(st.Net)
	if o.Sensor != nil {
		if st.SensorDev == nil || st.Sensor == nil {
			return fmt.Errorf("core: snapshot has no sensor state")
		}
		o.Sensor.Dev.RestoreState(*st.SensorDev)
		o.Sensor.RestoreState(*st.Sensor)
		o.Sensor.Dev.Rearm()
	}
	if o.Watchdog != nil {
		if st.Watchdog == nil {
			return fmt.Errorf("core: snapshot has no watchdog state")
		}
		o.Watchdog.restoreState(*st.Watchdog)
	}
	if o.Replicas != nil {
		if st.Replica == nil {
			return fmt.Errorf("core: snapshot has no replication state")
		}
		if err := o.Replicas.RestoreState(*st.Replica); err != nil {
			return err
		}
	}
	o.nextMapID = st.NextMapID

	// The captured system had fired Ready with no waiters left pending;
	// reproduce that, then hand the boot trace to the new sink and respawn
	// the daemons (they park immediately: empty queues, fired Ready).
	o.Ready.Fire()
	if o.opts.TraceSink != nil {
		for _, ev := range o.Trace.Events() {
			o.opts.TraceSink(ev)
		}
		o.Trace.SetSink(o.opts.TraceSink)
	}
	o.spawnDaemons()
	return nil
}
