package core

import (
	"testing"
	"time"

	"k2/internal/replica"
	"k2/internal/sim"
	"k2/internal/soc"
)

func replicatedOpts(weak, r int) Options {
	cfg := soc.DefaultConfig().WithWeakDomains(weak)
	rel := soc.DefaultReliableParams()
	cfg.Reliable = &rel
	wd := DefaultWatchdogParams()
	return Options{
		Mode: K2Mode, SoC: &cfg, Watchdog: &wd,
		Replication: &replica.Params{R: r, VoteTimeout: 500 * time.Microsecond},
	}
}

func replicaTestMachine(points int) replica.Machine {
	return replica.Machine{
		Init: 0xFEED_F00D_CAFE_D00D,
		Step: func(vp, s int, st uint64) uint64 {
			st ^= uint64(vp*17 + s + 3)
			st *= 0x9E3779B97F4A7C15
			return st
		},
		StepWork:     soc.Work(2 * time.Microsecond),
		StepsPerVote: 2,
		VotePoints:   points,
		Idle:         500 * time.Microsecond,
	}
}

// Satellite regression: a replica outvoted away from a crashed domain is
// recovered by the manager — the watchdog must not also walk its
// K-missed-beats death-and-reclaim path for the same domain (the
// double-recovery thrash). The watchdog keeps pinging, and the pong after
// reboot hands the domain back to it.
func TestReplicationSuppressesWatchdogReboot(t *testing.T) {
	e := sim.NewEngine()
	o, err := Boot(e, replicatedOpts(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	g, err := o.Replicas.StartGroup(replica.GroupSpec{Name: "g", Machine: replicaTestMachine(24)})
	if err != nil {
		t.Fatal(err)
	}
	victim := g.ReplicaDomains()[0]
	e.At(sim.Time(2200*time.Microsecond), func() { o.S.Domains[victim].Crash() })
	e.At(sim.Time(9*time.Millisecond), func() { o.S.Domains[victim].Reboot() })
	if err := e.Run(sim.Time(60 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !g.Done.Fired() {
		t.Fatalf("group stalled at %d of %d points", g.Committed(), g.VotePoints())
	}
	if o.Replicas.SweptDomains != 1 {
		t.Fatalf("manager ran %d recovery sweeps, want exactly 1 for the crashed domain", o.Replicas.SweptDomains)
	}
	for _, d := range o.Watchdog.Deaths {
		if d.Domain == victim {
			t.Fatalf("watchdog also declared %v dead and reclaimed it — double recovery", victim)
		}
	}
	if len(o.Watchdog.Deaths) != 0 {
		t.Fatalf("watchdog declared %d unrelated deaths on a single-crash run", len(o.Watchdog.Deaths))
	}
	if !o.Watchdog.Alive(victim) {
		t.Fatalf("%v rebooted but the watchdog still counts it dead", victim)
	}
	if o.Watchdog.Suppressed(victim) {
		t.Fatalf("%v answered again but is still suppressed", victim)
	}
	if o.Replicas.RebootsObserved == 0 {
		t.Fatal("manager never observed the suppressed domain's reboot")
	}
	if o.Replicas.SweptDead(victim) {
		t.Fatalf("%v is back but still marked swept-dead", victim)
	}
	if err := o.DSM.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := o.Mem.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}

// Replication metadata survives the checkpoint: a fork of a replicated
// system restores the manager (params and counters) and can run a voting
// group to completion, byte-identical to the parent's.
func TestSnapshotRoundTripsReplicationState(t *testing.T) {
	e1, o1 := bootToReady(t, replicatedOpts(6, 3))
	snp, err := o1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Marshal/unmarshal must carry the replica state too (the codec round
	// trip re-decodes into the same snapshot, which keeps the boot options).
	if err := snp.UnmarshalState(snp.Marshal()); err != nil {
		t.Fatal(err)
	}

	run := func(e *sim.Engine, o *OS) []replica.Commit {
		t.Helper()
		if o.Replicas == nil {
			t.Fatal("restored system lost its replication layer")
		}
		g, err := o.Replicas.StartGroup(replica.GroupSpec{Name: "g", Machine: replicaTestMachine(12)})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(sim.Time(60 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		if !g.Done.Fired() {
			t.Fatal("group stalled on restored system")
		}
		return g.Commits()
	}

	parent := run(e1, o1)
	eF, oF, err := snp.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	if oF.Replicas.Params.R != 3 || oF.Replicas.Params.VoteTimeout != 500*time.Microsecond {
		t.Fatalf("restored params %+v", oF.Replicas.Params)
	}
	forked := run(eF, oF)
	if len(parent) != len(forked) {
		t.Fatalf("commit counts differ: parent %d, fork %d", len(parent), len(forked))
	}
	for i := range parent {
		if parent[i] != forked[i] {
			t.Fatalf("commit %d differs: parent %+v, fork %+v", i, parent[i], forked[i])
		}
	}
}

// A started group refuses checkpointing — groups are live thread state the
// snapshot cannot quiesce.
func TestSnapshotRefusesLiveGroups(t *testing.T) {
	e, o := bootToReady(t, replicatedOpts(6, 3))
	_ = e
	if _, err := o.Replicas.StartGroup(replica.GroupSpec{Name: "g", Machine: replicaTestMachine(8)}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Snapshot(); err == nil {
		t.Fatal("snapshot succeeded with a live replicated group")
	}
}
