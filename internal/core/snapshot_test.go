package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

// bootToReady boots cold and runs the engine up to the boot-ready barrier:
// a monitor proc spawned before Boot is the first Ready waiter, so it pauses
// the engine at exactly the quiesce instant, before any other waiter's wake
// dispatches.
func bootToReady(t *testing.T, opts Options) (*sim.Engine, *OS) {
	t.Helper()
	e := sim.NewEngine()
	var o *OS
	e.Spawn("ready-monitor", func(p *sim.Proc) {
		o.Ready.Wait(p)
		e.Stop()
	})
	var err error
	o, err = Boot(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !o.Ready.Fired() {
		t.Fatal("init never completed")
	}
	return e, o
}

// exercise runs a deterministic mixed workload (filesystem, DMA, UDP) and
// returns a deep signature of the run: final time, energy, full trace dump,
// and the major counters. Byte-identical signatures mean byte-identical
// runs.
func exercise(t *testing.T, e *sim.Engine, o *OS) string {
	t.Helper()
	pr := o.SpawnProcess("app")
	pr.Spawn(sched.NightWatch, "mixed", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		f, err := o.FS.Create(th, "/chk")
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.Write(th, bytes.Repeat([]byte("k2"), 4096)); err != nil {
			t.Error(err)
			return
		}
		if err := f.Close(th); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 8; i++ {
			o.DMA.Transfer(th, 64<<10)
		}
		a, err := o.Net.NewSocket(th, 0)
		if err != nil {
			t.Error(err)
			return
		}
		b, err := o.Net.NewSocket(th, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := a.SendTo(th, b.Addr(), bytes.Repeat([]byte("x"), 4000)); err != nil {
			t.Error(err)
			return
		}
		if _, _, err := b.RecvFrom(th); err != nil {
			t.Error(err)
			return
		}
		a.Close(th)
		b.Close(th)
	})
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	var tr bytes.Buffer
	if err := o.Trace.Dump(&tr); err != nil {
		t.Fatal(err)
	}
	sig := fmt.Sprintf("now=%v energy=%.9f disk=%d/%d dma=%v sent=%d traces=%d\n%s",
		e.Now(), o.EnergyJ(), o.Disk.Reads, o.Disk.Writes, o.DMA.Transfers,
		o.Net.PacketsSent, o.Trace.Total(), tr.String())
	if o.DSM != nil {
		if err := o.DSM.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		sig += fmt.Sprintf("\nfaults=%d/%d", o.DSM.RequesterStats[soc.Strong].Faults,
			o.DSM.RequesterStats[soc.Weak].Faults)
	}
	return sig
}

func snapshotOpts(mode Mode) Options {
	return Options{
		Mode:         mode,
		SensorPeriod: 5 * time.Millisecond,
		Watchdog:     ptr(DefaultWatchdogParams()),
	}
}

func ptr[T any](v T) *T { return &v }

// The tentpole acceptance invariant at the core level: restore-then-run is
// byte-identical to run-straight-through, in both modes, with the watchdog
// and the sensor device live across the checkpoint.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	for _, mode := range []Mode{K2Mode, LinuxMode} {
		t.Run(mode.String(), func(t *testing.T) {
			opts := snapshotOpts(mode)
			if mode == LinuxMode {
				opts.Watchdog = nil
			}
			e1, o1 := bootToReady(t, opts)
			snp, err := o1.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			cold := exercise(t, e1, o1) // the captured parent continues unperturbed

			e2, o2, err := snp.Fork(nil)
			if err != nil {
				t.Fatal(err)
			}
			if e2.Now() != e1.Now() && o2.Ready.Fired() == false {
				t.Fatal("restored engine not at the quiesce point")
			}
			warm := exercise(t, e2, o2)
			if cold != warm {
				t.Fatalf("restored run diverged from straight-through run:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
			}
		})
	}
}

// A snapshot is reusable: two forks from the same checkpoint can run
// different workloads without perturbing each other or the parent.
func TestForkAndDiverge(t *testing.T) {
	e1, o1 := bootToReady(t, snapshotOpts(K2Mode))
	_ = e1
	snp, err := o1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	parentWrites, parentNow := o1.Disk.Writes, o1.Eng.Now()

	// Fork A: heavy DMA. Fork B: filesystem only.
	eA, oA, err := snp.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	prA := oA.SpawnProcess("a")
	prA.Spawn(sched.Normal, "dma", func(th *sched.Thread) {
		for i := 0; i < 32; i++ {
			oA.DMA.Transfer(th, 256<<10)
		}
	})
	if err := eA.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}

	eB, oB, err := snp.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	prB := oB.SpawnProcess("b")
	var readBack []byte
	prB.Spawn(sched.Normal, "fs", func(th *sched.Thread) {
		f, err := oB.FS.Create(th, "/div")
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.Write(th, []byte("diverged")); err != nil {
			t.Error(err)
			return
		}
		if err := f.Close(th); err != nil {
			t.Error(err)
			return
		}
		g, err := oB.FS.Open(th, "/div")
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 16)
		n, err := g.Read(th, buf)
		if err != nil {
			t.Error(err)
			return
		}
		readBack = buf[:n]
	})
	if err := eB.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}

	if got := oA.DMA.Transfers[soc.Strong]; got != 32 {
		t.Fatalf("fork A completed %d transfers, want 32", got)
	}
	if string(readBack) != "diverged" {
		t.Fatalf("fork B read %q", readBack)
	}
	if oB.DMA.Transfers[soc.Strong] != 0 {
		t.Fatal("fork B saw fork A's DMA traffic")
	}
	// The parent is unperturbed: still paused at the barrier, no workload ran.
	if o1.Disk.Writes != parentWrites || o1.Eng.Now() != parentNow {
		t.Fatalf("parent perturbed by forks: writes %d->%d, now %v->%v",
			parentWrites, o1.Disk.Writes, parentNow, o1.Eng.Now())
	}
}

// The snapshot codec round-trips the full OS state byte-stably.
func TestSnapshotMarshalRoundTrip(t *testing.T) {
	_, o := bootToReady(t, snapshotOpts(K2Mode))
	snp, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b1 := snp.Marshal()
	if err := snp.UnmarshalState(b1); err != nil {
		t.Fatal(err)
	}
	b2 := snp.Marshal()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("codec not byte-stable: %d vs %d bytes", len(b1), len(b2))
	}
	// A decoded snapshot must still restore and run.
	e, o2, err := snp.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !o2.Ready.Fired() {
		t.Fatal("decoded snapshot did not restore a ready system")
	}
}
