package core

import (
	"testing"

	"k2/internal/pdes"
)

// TestSnapshotRoundTripParallelEngine closes the loop between the two
// tentpole subsystems: checkpoint/fork and the parallel event scheduler.
// A system booted under the parallel engine must (a) run byte-identically
// to the sequential boot, (b) capture a snapshot at the ready barrier, and
// (c) restore from that snapshot into EITHER a sequential or a parallel
// engine with byte-identical behaviour — so warm starts and -engine-parallel
// compose freely in any order.
func TestSnapshotRoundTripParallelEngine(t *testing.T) {
	opts := snapshotOpts(K2Mode)

	eSeq, oSeq := bootToReady(t, opts)
	want := exercise(t, eSeq, oSeq)

	par := opts
	par.EngineParallel = 4
	ePar, oPar := bootToReady(t, par)
	defer ePar.Shutdown()
	snp, err := oPar.Snapshot()
	if err != nil {
		t.Fatalf("snapshot of a parallel-engine system: %v", err)
	}
	if got := exercise(t, ePar, oPar); got != want {
		t.Fatalf("parallel boot diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
	}

	// Restore sequentially: the parallel-captured checkpoint must not
	// remember anything about the scheduler it was taken under.
	eWarmSeq, oWarmSeq, err := snp.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := exercise(t, eWarmSeq, oWarmSeq); got != want {
		t.Fatalf("sequential restore of parallel checkpoint diverged:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	// Restore and re-attach the parallel scheduler: the fork's engine has
	// its partitions configured by the restored platform, so attaching is
	// exactly what the experiment warm path does.
	eWarmPar, oWarmPar, err := snp.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eWarmPar.Shutdown()
	pdes.Attach(eWarmPar, 4)
	if got := exercise(t, eWarmPar, oWarmPar); got != want {
		t.Fatalf("parallel restore of parallel checkpoint diverged:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}
