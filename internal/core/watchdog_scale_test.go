package core

import (
	"testing"
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
)

// bootWatchedN boots a K2 platform with n weak domains, the reliable
// transport and the watchdog — the shape the batched heartbeat was written
// for.
func bootWatchedN(t *testing.T, n int) (*sim.Engine, *OS) {
	t.Helper()
	e := sim.NewEngine()
	cfg := soc.DefaultConfig()
	// Each shadow kernel boots with one 16 MB block; 64 of them do not fit
	// the calibrated 1 GB OMAP4 part, so give the scale platform more RAM.
	cfg.RAMBytes = 4 << 30
	rel := soc.DefaultReliableParams()
	cfg.Reliable = &rel
	wd := DefaultWatchdogParams()
	o, err := Boot(e, Options{Mode: K2Mode, SoC: &cfg, WeakDomains: n, Watchdog: &wd})
	if err != nil {
		t.Fatal(err)
	}
	return e, o
}

// TestWatchdogScales64Domains is the regression test for the batched
// heartbeat: at 64 weak domains the watchdog must keep exactly the cadence
// and recovery behaviour it has at one. The old per-domain fan-out did N
// separate Mailbox.Send calls (each an ExecFor charge plus its own proc
// wakeup) every period; the batched beat must not change what an observer
// can see — beats happen every Period, every active domain is pinged each
// beat, a crash is still declared dead after exactly Misses silent periods,
// and the recovery sweep still reclaims the dead kernel's pages.
func TestWatchdogScales64Domains(t *testing.T) {
	const weak = 64
	e, o := bootWatchedN(t, weak)
	w := o.Watchdog
	if w == nil {
		t.Fatal("watchdog not running")
	}

	// Hand two shared pages to the first weak kernel so the recovery sweep
	// has real work, then crash it.
	e.Spawn("setup", func(p *sim.Proc) {
		o.Ready.Wait(p)
		o.DSM.Share(100)
		o.DSM.Share(101)
		o.DSM.Write(p, o.S.Core(soc.Weak, 0), soc.Weak, 100)
		o.DSM.Write(p, o.S.Core(soc.Weak, 0), soc.Weak, 101)
	})
	const crashAt = 20 * time.Millisecond
	e.At(sim.Time(crashAt), func() { o.S.Domains[soc.Weak].Crash() })
	const runUntil = 100 * time.Millisecond
	if err := e.Run(sim.Time(runUntil)); err != nil {
		t.Fatal(err)
	}

	// Recovery: unchanged from the single-domain platform. One death, the
	// right domain, detected within Misses periods plus slack for the
	// reliable transport's pong latency.
	if len(w.Deaths) != 1 {
		t.Fatalf("%d deaths declared, want 1", len(w.Deaths))
	}
	rec := w.Deaths[0]
	if rec.Domain != soc.Weak {
		t.Fatalf("declared %v dead, want %v", rec.Domain, soc.Weak)
	}
	detect := time.Duration(rec.DeclaredAt) - crashAt
	maxDetect := time.Duration(w.Params.Misses+3) * w.Params.Period
	if detect <= 0 || detect > maxDetect {
		t.Fatalf("detection latency %v at %d domains, want within %v", detect, weak, maxDetect)
	}
	if rec.ReclaimedPages < 2 {
		t.Fatalf("reclaimed %d pages, want at least the 2 the dead kernel owned", rec.ReclaimedPages)
	}
	if err := o.DSM.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := o.Mem.CheckPartition(); err != nil {
		t.Fatal(err)
	}

	// Beat accounting: every beat pings all 64 weak domains (dead ones
	// included — that is how a reboot is noticed), so the total must be an
	// exact multiple of 64, and the number of beats must match the
	// heartbeat cadence: one per Period from the ready barrier to the end
	// of the run, give or take boot and scheduling slack. A fan-out bug
	// that skipped or double-pinged domains under load breaks the
	// divisibility; a cadence bug breaks the beat bound.
	if w.Pings == 0 || w.Pings%weak != 0 {
		t.Fatalf("%d pings is not a positive multiple of %d domains", w.Pings, weak)
	}
	beats := w.Pings / weak
	maxBeats := int(runUntil / w.Params.Period)
	if beats < maxBeats/2 || beats > maxBeats {
		t.Fatalf("%d beats over %v, want close to one per %v (<= %d)",
			beats, runUntil, w.Params.Period, maxBeats)
	}
	// Healthy domains answered: every ping to the 63 survivors got a pong
	// (the crashed domain went silent mid-run, so totals differ by at most
	// its share plus in-flight beats).
	if w.Pongs < w.Pings-beats-weak {
		t.Fatalf("%d pongs for %d pings: survivors are missing beats", w.Pongs, w.Pings)
	}

	// Reboot: the next answered ping marks the kernel alive again, same as
	// on the small platform.
	o.S.Domains[soc.Weak].Reboot()
	if err := e.Run(sim.Time(120 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if w.Reboots != 1 || !w.Alive(soc.Weak) {
		t.Fatalf("reboots=%d alive=%v after the kernel came back", w.Reboots, w.Alive(soc.Weak))
	}
}
