package core

import (
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/trace"
)

// The watchdog heartbeats each shadow kernel over the mailbox using
// MsgGeneric mails. Payload encoding within the 20-bit mail payload:
// bit 19 marks a watchdog mail (map-propagation ids stay below it, see
// propagateMap), bit 18 distinguishes pong from ping, and the low 18 bits
// carry the heartbeat epoch so a stale pong cannot be mistaken for a fresh
// one.
const (
	wdFlag      = uint32(1) << 19
	wdPong      = uint32(1) << 18
	wdEpochMask = wdPong - 1
)

// WatchdogParams tunes the main kernel's shadow-kernel watchdog.
type WatchdogParams struct {
	// Period is the heartbeat interval.
	Period time.Duration
	// Misses is how many consecutive unanswered heartbeats declare a
	// shadow kernel dead.
	Misses int
}

// DefaultWatchdogParams returns a 500 µs heartbeat with death after 3
// misses — quick enough that recovery latency is dominated by detection,
// slow enough that a pong delayed by a busy service core is not a miss.
func DefaultWatchdogParams() WatchdogParams {
	return WatchdogParams{Period: 500 * time.Microsecond, Misses: 3}
}

// DeathRecord documents one declared shadow-kernel death and the recovery
// sweep that followed.
type DeathRecord struct {
	Domain          soc.DomainID
	DeclaredAt      sim.Time // when the watchdog declared death
	RecoveredAt     sim.Time // when the reclaim sweep finished
	BrokenLocks     int      // hardware spinlocks force-released
	ReclaimedPages  int      // DSM directory entries changed hands
	ReclaimedBlocks int      // 16 MB blocks returned to the K2 pool
}

// wdState is the watchdog's per-shadow-kernel bookkeeping.
type wdState struct {
	alive     bool
	awaiting  bool   // a ping is outstanding
	sentEpoch uint32 // epoch of the outstanding ping
	pongEpoch uint32 // epoch of the last pong received
	missed    int
	// suppressed: the replica manager owns recovery for this domain while
	// it re-integrates a replica away from it. The watchdog keeps pinging
	// (a pong is how everyone learns the domain rebooted) but counts no
	// misses and declares no death — the manager already ran the reclaim
	// sweep, and a second one would be the double-recovery thrash.
	suppressed bool
}

// Watchdog is the main kernel's recovery agent (enabled via
// Options.Watchdog): a background proc on the strong service core pings
// every shadow kernel each Period; after Misses consecutive silent periods
// it declares the kernel dead, breaks its hardware spinlocks, and sweeps
// its DSM ownership and memory blocks back to the survivors. A pong from a
// dead kernel (after soc.Domain.Reboot) marks it alive again.
type Watchdog struct {
	Params WatchdogParams

	os    *OS
	state []wdState
	epoch uint32

	// OnSuppressedPong, if set, is invoked when a suppressed domain
	// answers a ping again (it rebooted); the watchdog unsuppresses it
	// first. core.Boot points it at the replica manager.
	OnSuppressedPong func(k soc.DomainID)

	// Stats.
	Pings, Pongs int
	Deaths       []DeathRecord
	Reboots      int
}

func newWatchdog(o *OS, prm WatchdogParams) *Watchdog {
	if prm.Period <= 0 || prm.Misses <= 0 {
		prm = DefaultWatchdogParams()
	}
	w := &Watchdog{Params: prm, os: o, state: make([]wdState, o.S.NumDomains())}
	for _, k := range o.S.WeakDomains() {
		w.state[k].alive = true
	}
	return w
}

// Alive reports whether the watchdog currently believes kernel k is alive.
func (w *Watchdog) Alive(k soc.DomainID) bool { return w.state[k].alive }

// Suppressed reports whether domain k is exempt from miss counting while
// the replica manager re-integrates away from it.
func (w *Watchdog) Suppressed(k soc.DomainID) bool { return w.state[k].suppressed }

// Suppress exempts domain k from miss counting and death declaration while
// the replica manager re-integrates a replica away from it. It reports
// true when suppression engaged — the manager now owns the recovery sweep —
// and false when the watchdog has already declared k dead: its sweep has
// run, and the manager must not repeat it.
func (w *Watchdog) Suppress(k soc.DomainID) bool {
	st := &w.state[k]
	if !st.alive {
		return false
	}
	st.suppressed = true
	st.missed = 0
	return true
}

// run is the heartbeat loop; it never returns. It starts beating only once
// the system is ready: boot is shorter than a heartbeat period anyway, and
// gating on Ready guarantees no ping is in flight at the boot-ready quiesce
// point where checkpoints are taken.
func (w *Watchdog) run(p *sim.Proc, core *soc.Core) {
	o := w.os
	o.Ready.Wait(p)
	for {
		p.Sleep(w.Params.Period)
		if !core.Domain.Awake() {
			// The main kernel is suspended (or waking): it watches nothing,
			// and forcing it awake every period would keep the platform from
			// ever becoming inactive. Forget outstanding pings so the resumed
			// heartbeat does not count phantom misses.
			for i := range w.state {
				w.state[i].awaiting = false
			}
			continue
		}
		// One batched epoch scan per beat. The old loop interleaved, per
		// weak domain, a state-machine step, a possible recovery sweep and a
		// full Mailbox.Send (an ExecFor charge plus a delivery event) — an
		// O(N) fan-out of engine events every period that ROADMAP flagged as
		// the 64-domain scaling hazard. Now the beat advances one shared
		// epoch, classifies every domain first, runs the recovery sweeps,
		// then charges the core once for all MMIO writes and posts the pings
		// as engine-context sends: two watchdog-proc wakeups per beat
		// instead of N+1, with identical beat cadence and miss accounting
		// (pongs are matched per-domain by sender, so a shared epoch cannot
		// alias them).
		var dead, ping []soc.DomainID
		for _, k := range o.S.WeakDomains() {
			st := &w.state[k]
			if o.S.Domains[k].State() == soc.DomInactive {
				// Suspended by the OS on purpose — not dead. Pinging would
				// wake it; skip until it runs again.
				st.awaiting = false
				st.missed = 0
				continue
			}
			gotPong := st.awaiting && st.pongEpoch == st.sentEpoch
			switch {
			case st.suppressed:
				// Recovery for this domain belongs to the replica manager:
				// no miss counting, no death — but keep pinging, because the
				// pong is the reboot signal that hands the domain back.
				if gotPong {
					st.suppressed = false
					st.missed = 0
					o.Trace.Emit(trace.Fault, "watchdog: %v answered during re-integration; resuming watch", k)
					if w.OnSuppressedPong != nil {
						w.OnSuppressedPong(k)
					}
				}
			case st.alive && gotPong:
				st.missed = 0
			case st.alive && st.awaiting:
				st.missed++
				if st.missed >= w.Params.Misses {
					dead = append(dead, k)
				}
			case !st.alive && gotPong:
				st.alive = true
				st.missed = 0
				w.Reboots++
				o.Trace.Emit(trace.Fault, "watchdog: %v answered again; back alive", k)
			}
			ping = append(ping, k)
		}
		for _, k := range dead {
			w.declareDead(p, core, k)
		}
		if len(ping) == 0 {
			continue
		}
		w.epoch = (w.epoch + 1) & wdEpochMask
		core.ExecFor(p, time.Duration(len(ping))*o.S.Cfg.MailboxSendCost)
		for _, k := range ping {
			st := &w.state[k]
			st.sentEpoch = w.epoch
			st.awaiting = true
			w.Pings++
			o.S.Mailbox.SendAsync(core.Domain.ID, k,
				soc.NewMessage(soc.MsgGeneric, wdFlag|w.epoch, o.S.Mailbox.NextSeq()))
		}
	}
}

func (w *Watchdog) onPong(from soc.DomainID, epoch uint32) {
	w.Pongs++
	w.state[from].pongEpoch = epoch
}

// declareDead runs the recovery sweep for kernel k on the watchdog's core:
// force-release its hardware spinlocks first (a dead kernel may have frozen
// inside a critical section), then reclaim its DSM page ownership and its
// memory blocks.
func (w *Watchdog) declareDead(p *sim.Proc, core *soc.Core, k soc.DomainID) {
	o := w.os
	st := &w.state[k]
	st.alive = false
	st.missed = 0
	o.Trace.Emit(trace.Fault, "watchdog: %v dead after %d missed beats; reclaiming",
		k, w.Params.Misses)
	rec := DeathRecord{Domain: k, DeclaredAt: o.Eng.Now()}
	rec.BrokenLocks, rec.ReclaimedPages, rec.ReclaimedBlocks = o.reclaimDomain(p, core, k)
	rec.RecoveredAt = o.Eng.Now()
	w.Deaths = append(w.Deaths, rec)
	o.Trace.Emit(trace.Fault,
		"watchdog: reclaimed %d pages, %d blocks, %d locks from %v in %v",
		rec.ReclaimedPages, rec.ReclaimedBlocks, rec.BrokenLocks, k,
		time.Duration(rec.RecoveredAt-rec.DeclaredAt))
}

// reclaimDomain is the shared recovery sweep behind both the watchdog's
// declareDead and replica re-integration: force-release k's hardware
// spinlocks (a dead kernel may have frozen inside a critical section),
// then reclaim its DSM page ownership and its memory blocks back to the
// survivors.
func (o *OS) reclaimDomain(p *sim.Proc, core *soc.Core, k soc.DomainID) (locks, pages, blocks int) {
	locks = o.S.Spinlocks.BreakAllHeldBy(k)
	if o.DSM != nil {
		pages = o.DSM.ReclaimDead(p, core, k, soc.Strong)
	}
	blocks = o.Mem.ReclaimDead(p, core, k)
	return locks, pages, blocks
}

// handleWatchdogMail intercepts watchdog MsgGeneric mails in the
// dispatcher: kernels answer pings with a pong carrying the same epoch, and
// the main kernel forwards pongs to the watchdog. Reports whether the mail
// was a watchdog mail.
func (o *OS) handleWatchdogMail(p *sim.Proc, core *soc.Core, k, from soc.DomainID, payload uint32) bool {
	if payload&wdFlag == 0 {
		return false
	}
	if payload&wdPong != 0 {
		if o.Watchdog != nil {
			o.Watchdog.onPong(from, payload&wdEpochMask)
		}
		return true
	}
	o.S.Mailbox.Send(p, core, from,
		soc.NewMessage(soc.MsgGeneric, payload|wdPong, o.S.Mailbox.NextSeq()))
	return true
}
