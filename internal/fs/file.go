package fs

import (
	"encoding/binary"
	"fmt"
	"strings"

	"k2/internal/sched"
)

// DirEntry is one directory listing entry.
type DirEntry struct {
	Inode uint32
	Name  string
	IsDir bool
}

// File is an open file handle with a cursor.
type File struct {
	fs  *FileSystem
	ino uint32
	in  inode
	pos int
}

// splitPath normalizes an absolute path into components.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("fs: path %q is not absolute", path)
	}
	var out []string
	for _, c := range strings.Split(path, "/") {
		if c == "" || c == "." {
			continue
		}
		if c == ".." {
			return nil, fmt.Errorf("fs: %q: '..' not supported", path)
		}
		out = append(out, c)
	}
	return out, nil
}

// lookupDir scans directory inode dirIno for name.
func (f *FileSystem) lookupDir(t *sched.Thread, dirIno uint32, name string) (uint32, bool, error) {
	var din inode
	if err := f.readInode(t, dirIno, &din); err != nil {
		return 0, false, err
	}
	if din.Mode != modeDir {
		return 0, false, fmt.Errorf("fs: inode %d is not a directory", dirIno)
	}
	data, err := f.readAll(t, &din)
	if err != nil {
		return 0, false, err
	}
	for off := 0; off+dirEntryHeader <= len(data); {
		ino := binary.LittleEndian.Uint32(data[off:])
		nl := int(binary.LittleEndian.Uint16(data[off+4:]))
		if nl == 0 {
			break
		}
		if off+dirEntryHeader+nl > len(data) {
			return 0, false, fmt.Errorf("fs: corrupt directory %d", dirIno)
		}
		if ino != 0 && string(data[off+dirEntryHeader:off+dirEntryHeader+nl]) == name {
			return ino, true, nil
		}
		off += dirEntryHeader + nl
	}
	return 0, false, nil
}

// walk resolves all but the last component, returning (parent inode, leaf).
func (f *FileSystem) walk(t *sched.Thread, path string) (uint32, string, error) {
	comps, err := splitPath(path)
	if err != nil {
		return 0, "", err
	}
	if len(comps) == 0 {
		return 0, "", fmt.Errorf("fs: empty path")
	}
	dir := uint32(rootInode)
	for _, c := range comps[:len(comps)-1] {
		t.Exec(f.Costs.Lookup)
		f.touch(t, stateInodes, false)
		ino, ok, err := f.lookupDir(t, dir, c)
		if err != nil {
			return 0, "", err
		}
		if !ok {
			return 0, "", fmt.Errorf("fs: %q: no such directory", c)
		}
		dir = ino
	}
	return dir, comps[len(comps)-1], nil
}

func (f *FileSystem) addDirEntry(t *sched.Thread, dirIno, ino uint32, name string) error {
	var din inode
	if err := f.readInode(t, dirIno, &din); err != nil {
		return err
	}
	rec := make([]byte, dirEntryHeader+len(name))
	binary.LittleEndian.PutUint32(rec[0:], ino)
	binary.LittleEndian.PutUint16(rec[4:], uint16(len(name)))
	copy(rec[dirEntryHeader:], name)
	if err := f.writeAt(t, &din, int(din.Size), rec); err != nil {
		return err
	}
	return f.writeInode(t, dirIno, &din)
}

// Create makes a new empty file; it fails if the name exists.
func (f *FileSystem) Create(t *sched.Thread, path string) (*File, error) {
	f.lock(t)
	defer f.unlock(t)
	t.Exec(f.Costs.Create)
	f.touch(t, stateSB, true)
	dir, leaf, err := f.walk(t, path)
	if err != nil {
		return nil, err
	}
	if _, exists, err := f.lookupDir(t, dir, leaf); err != nil {
		return nil, err
	} else if exists {
		return nil, fmt.Errorf("fs: %q exists", path)
	}
	ino, err := f.allocInode(t)
	if err != nil {
		return nil, err
	}
	in := inode{Mode: modeFile, Links: 1}
	if err := f.writeInode(t, ino, &in); err != nil {
		return nil, err
	}
	if err := f.addDirEntry(t, dir, ino, leaf); err != nil {
		return nil, err
	}
	if err := f.flushMeta(t); err != nil {
		return nil, err
	}
	return &File{fs: f, ino: ino, in: in}, nil
}

// Mkdir creates a directory.
func (f *FileSystem) Mkdir(t *sched.Thread, path string) error {
	f.lock(t)
	defer f.unlock(t)
	t.Exec(f.Costs.Create)
	f.touch(t, stateSB, true)
	dir, leaf, err := f.walk(t, path)
	if err != nil {
		return err
	}
	if _, exists, err := f.lookupDir(t, dir, leaf); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("fs: %q exists", path)
	}
	ino, err := f.allocInode(t)
	if err != nil {
		return err
	}
	in := inode{Mode: modeDir, Links: 2}
	if err := f.writeInode(t, ino, &in); err != nil {
		return err
	}
	if err := f.addDirEntry(t, dir, ino, leaf); err != nil {
		return err
	}
	return f.flushMeta(t)
}

// Open opens an existing file.
func (f *FileSystem) Open(t *sched.Thread, path string) (*File, error) {
	f.lock(t)
	defer f.unlock(t)
	t.Exec(f.Costs.PerOp)
	f.touch(t, stateInodes, false)
	dir, leaf, err := f.walk(t, path)
	if err != nil {
		return nil, err
	}
	ino, ok, err := f.lookupDir(t, dir, leaf)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("fs: %q: no such file", path)
	}
	fl := &File{fs: f, ino: ino}
	if err := f.readInode(t, ino, &fl.in); err != nil {
		return nil, err
	}
	return fl, nil
}

// Unlink removes a file, freeing its inode and blocks.
func (f *FileSystem) Unlink(t *sched.Thread, path string) error {
	f.lock(t)
	defer f.unlock(t)
	t.Exec(f.Costs.PerOp)
	f.touch(t, stateSB, true)
	dir, leaf, err := f.walk(t, path)
	if err != nil {
		return err
	}
	ino, ok, err := f.lookupDir(t, dir, leaf)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("fs: %q: no such file", path)
	}
	var in inode
	if err := f.readInode(t, ino, &in); err != nil {
		return err
	}
	if in.Mode == modeDir {
		return fmt.Errorf("fs: %q is a directory", path)
	}
	if in.Links > 1 {
		// Other hard links remain: drop this name only.
		in.Links--
		if err := f.writeInode(t, ino, &in); err != nil {
			return err
		}
		if err := f.removeDirEntry(t, dir, ino, leaf); err != nil {
			return err
		}
		return f.flushMeta(t)
	}
	// Free data blocks.
	f.touch(t, stateBitmaps, true)
	nblocks := (int(in.Size) + f.bs - 1) / f.bs
	for i := 0; i < nblocks; i++ {
		b, err := f.blockOf(t, &in, i, false)
		if err != nil {
			return err
		}
		if b != 0 {
			f.freeBlock(b)
		}
	}
	if in.Indirect != 0 {
		f.freeBlock(in.Indirect)
	}
	f.freeInode(ino)
	// Erase the directory entry (tombstone inode 0).
	var din inode
	if err := f.readInode(t, dir, &din); err != nil {
		return err
	}
	data, err := f.readAll(t, &din)
	if err != nil {
		return err
	}
	for off := 0; off+dirEntryHeader <= len(data); {
		e := binary.LittleEndian.Uint32(data[off:])
		nl := int(binary.LittleEndian.Uint16(data[off+4:]))
		if nl == 0 {
			break
		}
		if e == ino && string(data[off+dirEntryHeader:off+dirEntryHeader+nl]) == leaf {
			binary.LittleEndian.PutUint32(data[off:], 0)
			if err := f.writeAt(t, &din, 0, data); err != nil {
				return err
			}
			if err := f.writeInode(t, dir, &din); err != nil {
				return err
			}
			break
		}
		off += dirEntryHeader + nl
	}
	return f.flushMeta(t)
}

// ReadDir lists a directory.
func (f *FileSystem) ReadDir(t *sched.Thread, path string) ([]DirEntry, error) {
	f.lock(t)
	defer f.unlock(t)
	t.Exec(f.Costs.PerOp)
	f.touch(t, stateInodes, false)
	ino := uint32(rootInode)
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	for _, c := range comps {
		t.Exec(f.Costs.Lookup)
		next, ok, err := f.lookupDir(t, ino, c)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("fs: %q: no such directory", c)
		}
		ino = next
	}
	var din inode
	if err := f.readInode(t, ino, &din); err != nil {
		return nil, err
	}
	data, err := f.readAll(t, &din)
	if err != nil {
		return nil, err
	}
	var out []DirEntry
	for off := 0; off+dirEntryHeader <= len(data); {
		e := binary.LittleEndian.Uint32(data[off:])
		nl := int(binary.LittleEndian.Uint16(data[off+4:]))
		if nl == 0 {
			break
		}
		if e != 0 {
			var cin inode
			if err := f.readInode(t, e, &cin); err != nil {
				return nil, err
			}
			out = append(out, DirEntry{
				Inode: e,
				Name:  string(data[off+dirEntryHeader : off+dirEntryHeader+nl]),
				IsDir: cin.Mode == modeDir,
			})
		}
		off += dirEntryHeader + nl
	}
	return out, nil
}

// readAll reads an inode's whole contents.
func (f *FileSystem) readAll(t *sched.Thread, in *inode) ([]byte, error) {
	out := make([]byte, in.Size)
	buf := make([]byte, f.bs)
	for off := 0; off < int(in.Size); off += f.bs {
		t.Exec(f.Costs.PerBlk)
		b, err := f.blockOf(t, in, off/f.bs, false)
		if err != nil {
			return nil, err
		}
		n := int(in.Size) - off
		if n > f.bs {
			n = f.bs
		}
		if b == 0 {
			for i := 0; i < n; i++ {
				out[off+i] = 0
			}
			continue
		}
		if err := f.dev.ReadBlock(t, int(b), buf); err != nil {
			return nil, err
		}
		copy(out[off:off+n], buf)
	}
	return out, nil
}

// writeAt writes data at the given offset, allocating blocks as needed and
// updating the inode size (but not persisting the inode — callers do).
func (f *FileSystem) writeAt(t *sched.Thread, in *inode, off int, data []byte) error {
	buf := make([]byte, f.bs)
	for done := 0; done < len(data); {
		t.Exec(f.Costs.PerBlk)
		pos := off + done
		bi := pos / f.bs
		bo := pos % f.bs
		n := f.bs - bo
		if n > len(data)-done {
			n = len(data) - done
		}
		b, err := f.blockOf(t, in, bi, true)
		if err != nil {
			return err
		}
		if bo != 0 || n != f.bs {
			if err := f.dev.ReadBlock(t, int(b), buf); err != nil {
				return err
			}
		}
		copy(buf[bo:bo+n], data[done:done+n])
		if err := f.dev.WriteBlock(t, int(b), buf); err != nil {
			return err
		}
		done += n
	}
	if off+len(data) > int(in.Size) {
		in.Size = uint32(off + len(data))
	}
	return nil
}

// Size returns the file's current size.
func (fl *File) Size() int { return int(fl.in.Size) }

// Write appends/overwrites data at the cursor.
func (fl *File) Write(t *sched.Thread, data []byte) error {
	fl.fs.lock(t)
	defer fl.fs.unlock(t)
	t.Exec(fl.fs.Costs.PerOp)
	fl.fs.touch(t, stateSB, true)
	if err := fl.fs.writeAt(t, &fl.in, fl.pos, data); err != nil {
		return err
	}
	fl.pos += len(data)
	return nil
}

// Read fills buf from the cursor, returning the byte count (0 at EOF).
func (fl *File) Read(t *sched.Thread, buf []byte) (int, error) {
	fl.fs.lock(t)
	defer fl.fs.unlock(t)
	t.Exec(fl.fs.Costs.PerOp)
	fl.fs.touch(t, stateInodes, false)
	if fl.pos >= int(fl.in.Size) {
		return 0, nil
	}
	// Read the covered blocks.
	n := len(buf)
	if n > int(fl.in.Size)-fl.pos {
		n = int(fl.in.Size) - fl.pos
	}
	blkBuf := make([]byte, fl.fs.bs)
	for done := 0; done < n; {
		t.Exec(fl.fs.Costs.PerBlk)
		pos := fl.pos + done
		bi := pos / fl.fs.bs
		bo := pos % fl.fs.bs
		c := fl.fs.bs - bo
		if c > n-done {
			c = n - done
		}
		b, err := fl.fs.blockOf(t, &fl.in, bi, false)
		if err != nil {
			return done, err
		}
		if b == 0 {
			for i := 0; i < c; i++ {
				buf[done+i] = 0
			}
		} else {
			if err := fl.fs.dev.ReadBlock(t, int(b), blkBuf); err != nil {
				return done, err
			}
			copy(buf[done:done+c], blkBuf[bo:bo+c])
		}
		done += c
	}
	fl.pos += n
	return n, nil
}

// Seek sets the cursor.
func (fl *File) Seek(pos int) { fl.pos = pos }

// Close persists the inode and metadata.
func (fl *File) Close(t *sched.Thread) error {
	fl.fs.lock(t)
	defer fl.fs.unlock(t)
	t.Exec(fl.fs.Costs.CloseOp)
	fl.fs.touch(t, stateInodes, true)
	if err := fl.fs.writeInode(t, fl.ino, &fl.in); err != nil {
		return err
	}
	return fl.fs.flushMeta(t)
}
