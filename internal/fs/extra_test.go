package fs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"k2/internal/sched"
)

func TestStat(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		fl, _ := f.Create(th, "/x")
		if err := fl.Write(th, make([]byte, 10000)); err != nil {
			t.Error(err)
			return
		}
		if err := fl.Close(th); err != nil {
			t.Error(err)
			return
		}
		fi, err := f.Stat(th, "/x")
		if err != nil {
			t.Error(err)
			return
		}
		if fi.Size != 10000 || fi.IsDir || fi.Blocks != 3 {
			t.Errorf("stat = %+v", fi)
		}
		root, err := f.Stat(th, "/")
		if err != nil || !root.IsDir || root.Inode != 1 {
			t.Errorf("root stat = %+v err=%v", root, err)
		}
		if _, err := f.Stat(th, "/missing"); err == nil {
			t.Error("stat of missing file succeeded")
		}
	})
}

func TestRename(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		if err := f.Mkdir(th, "/a"); err != nil {
			t.Error(err)
			return
		}
		if err := f.Mkdir(th, "/b"); err != nil {
			t.Error(err)
			return
		}
		fl, _ := f.Create(th, "/a/file")
		if err := fl.Write(th, []byte("content survives rename")); err != nil {
			t.Error(err)
			return
		}
		if err := fl.Close(th); err != nil {
			t.Error(err)
			return
		}
		if err := f.Rename(th, "/a/file", "/b/moved"); err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Open(th, "/a/file"); err == nil {
			t.Error("old name still resolves")
		}
		g, err := f.Open(th, "/b/moved")
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 64)
		n, _ := g.Read(th, buf)
		if string(buf[:n]) != "content survives rename" {
			t.Errorf("content = %q", buf[:n])
		}
		// Destination exists -> error.
		fl2, _ := f.Create(th, "/a/other")
		if err := fl2.Close(th); err != nil {
			t.Error(err)
			return
		}
		if err := f.Rename(th, "/a/other", "/b/moved"); err == nil {
			t.Error("rename over existing file succeeded")
		}
		// Consistency after all of it.
		rep, err := f.Fsck(th)
		if err != nil {
			t.Error(err)
			return
		}
		if !rep.Clean() {
			t.Errorf("fsck after rename: %v", rep)
		}
	})
}

func TestTruncate(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		fl, _ := f.Create(th, "/t")
		data := make([]byte, 50000)
		for i := range data {
			data[i] = byte(i)
		}
		if err := fl.Write(th, data); err != nil {
			t.Error(err)
			return
		}
		freeBefore := f.FreeBlocks()
		if err := fl.Truncate(th, 5000); err != nil {
			t.Error(err)
			return
		}
		if fl.Size() != 5000 {
			t.Errorf("size after shrink = %d", fl.Size())
		}
		if f.FreeBlocks() <= freeBefore {
			t.Error("shrink freed no blocks")
		}
		fl.Seek(0)
		got := make([]byte, 5000)
		if _, err := fl.Read(th, got); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, data[:5000]) {
			t.Error("data corrupted by shrink")
		}
		// Grow: the hole reads as zeros.
		if err := fl.Truncate(th, 9000); err != nil {
			t.Error(err)
			return
		}
		fl.Seek(5000)
		tail := make([]byte, 4000)
		n, err := fl.Read(th, tail)
		if err != nil || n != 4000 {
			t.Errorf("hole read n=%d err=%v", n, err)
			return
		}
		for _, b := range tail {
			if b != 0 {
				t.Error("hole is not zero-filled")
				break
			}
		}
		if err := fl.Close(th); err != nil {
			t.Error(err)
			return
		}
		rep, err := f.Fsck(th)
		if err != nil || !rep.Clean() {
			t.Errorf("fsck after truncate: %v err=%v", rep, err)
		}
	})
}

func TestFsckCleanVolume(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		if err := f.Mkdir(th, "/d"); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			fl, err := f.Create(th, fmt.Sprintf("/d/f%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			if err := fl.Write(th, make([]byte, 20000)); err != nil {
				t.Error(err)
				return
			}
			if err := fl.Close(th); err != nil {
				t.Error(err)
				return
			}
		}
		rep, err := f.Fsck(th)
		if err != nil {
			t.Error(err)
			return
		}
		if !rep.Clean() {
			t.Errorf("fsck: %v", rep)
		}
		if rep.Files != 5 || rep.Dirs != 2 {
			t.Errorf("fsck counted %d files, %d dirs", rep.Files, rep.Dirs)
		}
	})
}

func TestFsckDetectsCorruption(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		fl, _ := f.Create(th, "/x")
		if err := fl.Write(th, make([]byte, 8192)); err != nil {
			t.Error(err)
			return
		}
		if err := fl.Close(th); err != nil {
			t.Error(err)
			return
		}
		// Corruption 1: free a block that a file still references.
		f.freeBlock(fl.in.Direct[0])
		rep, err := f.Fsck(th)
		if err != nil {
			t.Error(err)
			return
		}
		if rep.Clean() {
			t.Error("fsck missed a referenced-but-free block")
		}
		// Restore, then corruption 2: leak a block.
		f.blockBitmap[fl.in.Direct[0]/8] |= 1 << (fl.in.Direct[0] % 8)
		f.sb.FreeBlocks--
		if _, err := f.allocBlock(th); err != nil { // allocated, never referenced
			t.Error(err)
			return
		}
		rep, err = f.Fsck(th)
		if err != nil {
			t.Error(err)
			return
		}
		if rep.Clean() {
			t.Error("fsck missed a leaked block")
		}
	})
}

// Property: after any random sequence of create/write/rename/truncate/
// unlink operations, fsck is clean.
func TestQuickFsckAlwaysClean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clean := true
		withFS(t, func(th *sched.Thread, f *FileSystem) {
			names := []string{"/a", "/b", "/c"}
			open := map[string]*File{}
			for op := 0; op < 30; op++ {
				name := names[rng.Intn(len(names))]
				switch rng.Intn(5) {
				case 0:
					if fl, err := f.Create(th, name); err == nil {
						if err := fl.Write(th, make([]byte, rng.Intn(30000))); err != nil {
							clean = false
							return
						}
						if err := fl.Close(th); err != nil {
							clean = false
							return
						}
						open[name] = fl
					}
				case 1:
					_ = f.Unlink(th, name)
					delete(open, name)
				case 2:
					dst := names[rng.Intn(len(names))] + "r"
					if f.Rename(th, name, dst) == nil {
						delete(open, name)
						_ = f.Unlink(th, dst) // keep the namespace small
					}
				case 3:
					if fl, ok := open[name]; ok {
						if err := fl.Truncate(th, rng.Intn(20000)); err != nil {
							clean = false
							return
						}
					}
				case 4:
					if fl, err := f.Open(th, name); err == nil {
						buf := make([]byte, 4096)
						if _, err := fl.Read(th, buf); err != nil {
							clean = false
							return
						}
					}
				}
			}
			rep, err := f.Fsck(th)
			if err != nil || !rep.Clean() {
				t.Logf("seed %d: %v err=%v", seed, rep, err)
				clean = false
			}
		})
		return clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
