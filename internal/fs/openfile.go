package fs

import (
	"fmt"

	"k2/internal/sched"
)

// Open flags, POSIX-style.
const (
	// OCreate creates the file if it does not exist.
	OCreate = 1 << iota
	// OExcl, with OCreate, fails if the file exists.
	OExcl
	// OTrunc truncates an existing file to zero length.
	OTrunc
	// OAppend positions the cursor at the end of the file.
	OAppend
)

// OpenFile opens path with the given flags. With no flags it behaves like
// Open; flag combinations follow POSIX semantics.
func (f *FileSystem) OpenFile(t *sched.Thread, path string, flags int) (*File, error) {
	f.lock(t)
	defer f.unlock(t)
	t.Exec(f.Costs.PerOp)
	f.touch(t, stateInodes, false)

	dir, leaf, err := f.walk(t, path)
	if err != nil {
		return nil, err
	}
	ino, exists, err := f.lookupDir(t, dir, leaf)
	if err != nil {
		return nil, err
	}
	switch {
	case exists && flags&OCreate != 0 && flags&OExcl != 0:
		return nil, fmt.Errorf("fs: %q exists", path)
	case !exists && flags&OCreate == 0:
		return nil, fmt.Errorf("fs: %q: no such file", path)
	case !exists:
		f.touch(t, stateSB, true)
		t.Exec(f.Costs.Create)
		ino, err = f.allocInode(t)
		if err != nil {
			return nil, err
		}
		in := inode{Mode: modeFile, Links: 1}
		if err := f.writeInode(t, ino, &in); err != nil {
			return nil, err
		}
		if err := f.addDirEntry(t, dir, ino, leaf); err != nil {
			return nil, err
		}
		if err := f.flushMeta(t); err != nil {
			return nil, err
		}
	}
	fl := &File{fs: f, ino: ino}
	if err := f.readInode(t, ino, &fl.in); err != nil {
		return nil, err
	}
	if fl.in.Mode == modeDir {
		return nil, fmt.Errorf("fs: %q is a directory", path)
	}
	if flags&OTrunc != 0 && fl.in.Size > 0 {
		if err := f.truncateLocked(t, fl, 0); err != nil {
			return nil, err
		}
	}
	if flags&OAppend != 0 {
		fl.pos = int(fl.in.Size)
	}
	return fl, nil
}

// Link creates a hard link newPath referring to oldPath's inode.
func (f *FileSystem) Link(t *sched.Thread, oldPath, newPath string) error {
	f.lock(t)
	defer f.unlock(t)
	t.Exec(f.Costs.PerOp)
	f.touch(t, stateInodes, true)
	oldDir, oldLeaf, err := f.walk(t, oldPath)
	if err != nil {
		return err
	}
	ino, ok, err := f.lookupDir(t, oldDir, oldLeaf)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("fs: %q: no such file", oldPath)
	}
	var in inode
	if err := f.readInode(t, ino, &in); err != nil {
		return err
	}
	if in.Mode == modeDir {
		return fmt.Errorf("fs: cannot hard-link directory %q", oldPath)
	}
	newDir, newLeaf, err := f.walk(t, newPath)
	if err != nil {
		return err
	}
	if _, exists, err := f.lookupDir(t, newDir, newLeaf); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("fs: %q exists", newPath)
	}
	in.Links++
	if err := f.writeInode(t, ino, &in); err != nil {
		return err
	}
	if err := f.addDirEntry(t, newDir, ino, newLeaf); err != nil {
		return err
	}
	return f.flushMeta(t)
}

// Sync flushes the in-memory metadata (superblock and bitmaps) to the
// device; data blocks are already write-through.
func (f *FileSystem) Sync(t *sched.Thread) error {
	f.lock(t)
	defer f.unlock(t)
	t.Exec(f.Costs.PerOp)
	f.touch(t, stateSB, false)
	return f.flushMeta(t)
}

// Links returns the link count of the file at path.
func (f *FileSystem) Links(t *sched.Thread, path string) (int, error) {
	fi, err := f.Stat(t, path)
	if err != nil {
		return 0, err
	}
	var in inode
	f.lock(t)
	defer f.unlock(t)
	if err := f.readInode(t, fi.Inode, &in); err != nil {
		return 0, err
	}
	return int(in.Links), nil
}
