package fs

import (
	"encoding/binary"
	"fmt"

	"k2/internal/sched"
)

// FsckReport is the result of a consistency check.
type FsckReport struct {
	Files, Dirs int
	UsedBlocks  int
	Problems    []string
}

// Clean reports whether no problems were found.
func (r FsckReport) Clean() bool { return len(r.Problems) == 0 }

func (r FsckReport) String() string {
	if r.Clean() {
		return fmt.Sprintf("fsck: clean; %d files, %d dirs, %d blocks in use", r.Files, r.Dirs, r.UsedBlocks)
	}
	return fmt.Sprintf("fsck: %d problems: %v", len(r.Problems), r.Problems)
}

// Fsck walks the volume from the root directory and cross-checks the
// reachable metadata against the bitmaps and the superblock counters:
// every reachable block must be marked used, no block may be referenced
// twice, every reachable inode must be marked allocated, and the free
// counters must agree with the bitmaps.
func (f *FileSystem) Fsck(t *sched.Thread) (FsckReport, error) {
	f.lock(t)
	defer f.unlock(t)
	var rep FsckReport
	blockRefs := make(map[uint32]string)
	seenInode := make(map[uint32]bool)

	note := func(format string, args ...any) {
		rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
	}
	blockUsed := func(b uint32) bool { return f.blockBitmap[b/8]&(1<<(b%8)) != 0 }
	inodeUsed := func(i uint32) bool { return f.inodeBitmap[i/8]&(1<<(i%8)) != 0 }

	ref := func(b uint32, what string) {
		if b == 0 {
			return
		}
		if b < f.sb.DataStart || b >= f.sb.Blocks {
			note("%s references out-of-range block %d", what, b)
			return
		}
		if prev, dup := blockRefs[b]; dup {
			note("block %d referenced by both %s and %s", b, prev, what)
			return
		}
		blockRefs[b] = what
		if !blockUsed(b) {
			note("%s references free block %d", what, b)
		}
	}

	nameRefs := make(map[uint32]int) // names referring to each inode
	declaredLinks := make(map[uint32]uint32)

	var walk func(ino uint32, path string) error
	walk = func(ino uint32, path string) error {
		nameRefs[ino]++
		if seenInode[ino] {
			// Legal for files (hard links); a directory reached twice is
			// a cycle or a corrupt tree.
			var in inode
			if err := f.readInode(t, ino, &in); err != nil {
				return err
			}
			if in.Mode == modeDir {
				note("directory inode %d reachable twice (at %s)", ino, path)
			}
			return nil
		}
		seenInode[ino] = true
		if !inodeUsed(ino) {
			note("%s uses free inode %d", path, ino)
		}
		var in inode
		if err := f.readInode(t, ino, &in); err != nil {
			return err
		}
		nblocks := (int(in.Size) + f.bs - 1) / f.bs
		for i := 0; i < nblocks; i++ {
			b, err := f.blockOf(t, &in, i, false)
			if err != nil {
				return err
			}
			ref(b, path)
		}
		ref(in.Indirect, path+" (indirect)")
		if in.Mode != modeDir {
			rep.Files++
			declaredLinks[ino] = in.Links
			return nil
		}
		rep.Dirs++
		data, err := f.readAll(t, &in)
		if err != nil {
			return err
		}
		for off := 0; off+dirEntryHeader <= len(data); {
			e := binary.LittleEndian.Uint32(data[off:])
			nl := int(binary.LittleEndian.Uint16(data[off+4:]))
			if nl == 0 {
				break
			}
			if off+dirEntryHeader+nl > len(data) {
				note("%s: corrupt entry at offset %d", path, off)
				break
			}
			if e != 0 {
				name := string(data[off+dirEntryHeader : off+dirEntryHeader+nl])
				if e >= f.sb.Inodes {
					note("%s/%s references out-of-range inode %d", path, name, e)
				} else if err := walk(e, path+"/"+name); err != nil {
					return err
				}
			}
			off += dirEntryHeader + nl
		}
		return nil
	}
	if err := walk(rootInode, ""); err != nil {
		return rep, err
	}
	rep.UsedBlocks = len(blockRefs)

	// Link-count check: a file's inode must declare exactly as many links
	// as the names referring to it.
	for ino, links := range declaredLinks {
		if nameRefs[ino] != int(links) {
			note("inode %d declares %d links but %d names refer to it", ino, links, nameRefs[ino])
		}
	}

	// Counter checks: bitmap population vs superblock free counters.
	usedBits := 0
	for b := uint32(0); b < f.sb.Blocks; b++ {
		if blockUsed(b) {
			usedBits++
		}
	}
	if got := int(f.sb.Blocks) - usedBits; got != int(f.sb.FreeBlocks) {
		note("superblock says %d free blocks, bitmap says %d", f.sb.FreeBlocks, got)
	}
	inodeBits := 0
	for i := uint32(0); i < f.sb.Inodes; i++ {
		if inodeUsed(i) {
			inodeBits++
		}
	}
	if got := int(f.sb.Inodes) - inodeBits; got != int(f.sb.FreeInodes) {
		note("superblock says %d free inodes, bitmap says %d", f.sb.FreeInodes, got)
	}
	// Leak check: used data blocks not reachable from the root.
	leaked := 0
	for b := f.sb.DataStart; b < f.sb.Blocks; b++ {
		if blockUsed(b) {
			if _, ok := blockRefs[b]; !ok {
				leaked++
			}
		}
	}
	if leaked > 0 {
		note("%d used data blocks unreachable from the root (leaked)", leaked)
	}
	return rep, nil
}
