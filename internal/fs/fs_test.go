package fs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"k2/internal/driver"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

// withFS runs body in a normal thread over a freshly formatted 32 MB
// ramdisk (no DSM: these tests exercise filesystem logic, not coherence).
func withFS(t *testing.T, body func(th *sched.Thread, f *FileSystem)) {
	t.Helper()
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	sc := sched.New(s, false)
	pr := sc.NewProcess("fstest")
	ran := false
	pr.Spawn(sched.Normal, "t", func(th *sched.Thread) {
		disk := driver.NewRAMDisk(s, 4096, 8192)
		f, err := Mkfs(th, disk, nil)
		if err != nil {
			t.Error(err)
			return
		}
		body(th, f)
		ran = true
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("test body did not run")
	}
}

func TestMkfsAndMount(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	sc := sched.New(s, false)
	pr := sc.NewProcess("fstest")
	pr.Spawn(sched.Normal, "t", func(th *sched.Thread) {
		disk := driver.NewRAMDisk(s, 4096, 1024)
		f, err := Mkfs(th, disk, nil)
		if err != nil {
			t.Error(err)
			return
		}
		fl, err := f.Create(th, "/hello")
		if err != nil {
			t.Error(err)
			return
		}
		if err := fl.Write(th, []byte("persisted")); err != nil {
			t.Error(err)
			return
		}
		if err := fl.Close(th); err != nil {
			t.Error(err)
			return
		}
		// Remount from the device and read back.
		g, err := Mount(th, disk, nil)
		if err != nil {
			t.Errorf("mount: %v", err)
			return
		}
		fl2, err := g.Open(th, "/hello")
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 32)
		n, err := fl2.Read(th, buf)
		if err != nil || string(buf[:n]) != "persisted" {
			t.Errorf("read after remount: %q err %v", buf[:n], err)
		}
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
}

func TestMountRejectsUnformatted(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	sc := sched.New(s, false)
	pr := sc.NewProcess("fstest")
	pr.Spawn(sched.Normal, "t", func(th *sched.Thread) {
		disk := driver.NewRAMDisk(s, 4096, 64)
		if _, err := Mount(th, disk, nil); err == nil {
			t.Error("mounted an unformatted device")
		}
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTripSizes(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		// 1 KB, 256 KB, 1 MB: the Figure 6(b) write sizes; 1 MB spills
		// into the indirect block.
		for _, size := range []int{1 << 10, 256 << 10, 1 << 20} {
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i * 7)
			}
			name := fmt.Sprintf("/f%d", size)
			fl, err := f.Create(th, name)
			if err != nil {
				t.Error(err)
				return
			}
			if err := fl.Write(th, data); err != nil {
				t.Error(err)
				return
			}
			if err := fl.Close(th); err != nil {
				t.Error(err)
				return
			}
			fl, err = f.Open(th, name)
			if err != nil {
				t.Error(err)
				return
			}
			if fl.Size() != size {
				t.Errorf("%s: size %d, want %d", name, fl.Size(), size)
			}
			got := make([]byte, size)
			n, err := fl.Read(th, got)
			if err != nil || n != size || !bytes.Equal(got, data) {
				t.Errorf("%s: read mismatch (n=%d err=%v)", name, n, err)
			}
		}
	})
}

func TestDirectoriesAndReadDir(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		if err := f.Mkdir(th, "/sync"); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 8; i++ {
			fl, err := f.Create(th, fmt.Sprintf("/sync/mail%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			if err := fl.Close(th); err != nil {
				t.Error(err)
				return
			}
		}
		ents, err := f.ReadDir(th, "/sync")
		if err != nil {
			t.Error(err)
			return
		}
		if len(ents) != 8 {
			t.Errorf("ReadDir: %d entries, want 8", len(ents))
		}
		root, err := f.ReadDir(th, "/")
		if err != nil {
			t.Error(err)
			return
		}
		if len(root) != 1 || !root[0].IsDir || root[0].Name != "sync" {
			t.Errorf("root listing: %+v", root)
		}
	})
}

func TestCreateDuplicateFails(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		if _, err := f.Create(th, "/a"); err != nil {
			t.Error(err)
		}
		if _, err := f.Create(th, "/a"); err == nil {
			t.Error("duplicate create succeeded")
		}
	})
}

func TestUnlinkFreesSpace(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		// Materialize the root directory's data block first so the
		// before/after comparison only covers the file's own blocks.
		if fl, err := f.Create(th, "/dummy"); err != nil {
			t.Error(err)
			return
		} else if err := fl.Close(th); err != nil {
			t.Error(err)
			return
		}
		freeBefore := f.Super().FreeBlocks
		fl, err := f.Create(th, "/big")
		if err != nil {
			t.Error(err)
			return
		}
		if err := fl.Write(th, make([]byte, 1<<20)); err != nil {
			t.Error(err)
			return
		}
		if err := fl.Close(th); err != nil {
			t.Error(err)
			return
		}
		if f.Super().FreeBlocks >= freeBefore {
			t.Error("write did not consume blocks")
		}
		if err := f.Unlink(th, "/big"); err != nil {
			t.Error(err)
			return
		}
		if f.Super().FreeBlocks != freeBefore {
			t.Errorf("free blocks %d after unlink, want %d", f.Super().FreeBlocks, freeBefore)
		}
		if _, err := f.Open(th, "/big"); err == nil {
			t.Error("opened unlinked file")
		}
		// The name is reusable.
		if _, err := f.Create(th, "/big"); err != nil {
			t.Errorf("recreate after unlink: %v", err)
		}
	})
}

func TestOverwriteMiddle(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		fl, _ := f.Create(th, "/x")
		base := bytes.Repeat([]byte("ab"), 5000) // 10 KB, crosses blocks
		if err := fl.Write(th, base); err != nil {
			t.Error(err)
			return
		}
		fl.Seek(4090) // straddles the block boundary at 4096
		if err := fl.Write(th, []byte("ZZZZZZZZZZZZ")); err != nil {
			t.Error(err)
			return
		}
		fl.Seek(0)
		got := make([]byte, len(base))
		if _, err := fl.Read(th, got); err != nil {
			t.Error(err)
			return
		}
		want := append([]byte(nil), base...)
		copy(want[4090:], "ZZZZZZZZZZZZ")
		if !bytes.Equal(got, want) {
			t.Error("overwrite across block boundary corrupted data")
		}
	})
}

func TestPathValidation(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		if _, err := f.Create(th, "relative"); err == nil {
			t.Error("relative path accepted")
		}
		if _, err := f.Create(th, "/../etc"); err == nil {
			t.Error("dotdot accepted")
		}
		if _, err := f.Open(th, "/missing/deep"); err == nil {
			t.Error("opened through a missing directory")
		}
	})
}

// Property: a random sequence of create/write/read/unlink matches an
// in-memory map model.
func TestQuickFilesystemVsModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ok := true
		withFS(t, func(th *sched.Thread, f *FileSystem) {
			model := make(map[string][]byte)
			names := []string{"/a", "/b", "/c", "/d"}
			for op := 0; op < 40 && ok; op++ {
				name := names[rng.Intn(len(names))]
				switch rng.Intn(3) {
				case 0: // (re)write
					data := make([]byte, rng.Intn(20000))
					rng.Read(data)
					if _, exists := model[name]; exists {
						if err := f.Unlink(th, name); err != nil {
							ok = false
							return
						}
					}
					fl, err := f.Create(th, name)
					if err != nil {
						ok = false
						return
					}
					if err := fl.Write(th, data); err != nil {
						ok = false
						return
					}
					if err := fl.Close(th); err != nil {
						ok = false
						return
					}
					model[name] = data
				case 1: // read & compare
					want, exists := model[name]
					fl, err := f.Open(th, name)
					if exists != (err == nil) {
						ok = false
						return
					}
					if !exists {
						continue
					}
					got := make([]byte, len(want)+10)
					n, err := fl.Read(th, got)
					if err != nil || n != len(want) || !bytes.Equal(got[:n], want) {
						ok = false
						return
					}
				case 2: // unlink
					_, exists := model[name]
					err := f.Unlink(th, name)
					if exists != (err == nil) {
						ok = false
						return
					}
					delete(model, name)
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
