package fs

import (
	"encoding/binary"
	"fmt"

	"k2/internal/sched"
)

// FileInfo is the result of Stat.
type FileInfo struct {
	Inode  uint32
	Size   int
	IsDir  bool
	Blocks int // data blocks allocated (excluding the indirect block)
}

// Stat returns metadata for the file or directory at path.
func (f *FileSystem) Stat(t *sched.Thread, path string) (FileInfo, error) {
	f.lock(t)
	defer f.unlock(t)
	t.Exec(f.Costs.PerOp)
	f.touch(t, stateInodes, false)
	comps, err := splitPath(path)
	if err != nil {
		return FileInfo{}, err
	}
	ino := uint32(rootInode)
	for _, c := range comps {
		t.Exec(f.Costs.Lookup)
		next, ok, err := f.lookupDir(t, ino, c)
		if err != nil {
			return FileInfo{}, err
		}
		if !ok {
			return FileInfo{}, fmt.Errorf("fs: %q: no such file or directory", path)
		}
		ino = next
	}
	var in inode
	if err := f.readInode(t, ino, &in); err != nil {
		return FileInfo{}, err
	}
	blocks := 0
	n := (int(in.Size) + f.bs - 1) / f.bs
	for i := 0; i < n; i++ {
		b, err := f.blockOf(t, &in, i, false)
		if err != nil {
			return FileInfo{}, err
		}
		if b != 0 {
			blocks++
		}
	}
	return FileInfo{Inode: ino, Size: int(in.Size), IsDir: in.Mode == modeDir, Blocks: blocks}, nil
}

// Rename moves a file to a new name, possibly across directories. Plain
// ext2 semantics: the destination must not exist.
func (f *FileSystem) Rename(t *sched.Thread, oldPath, newPath string) error {
	f.lock(t)
	defer f.unlock(t)
	t.Exec(f.Costs.PerOp)
	f.touch(t, stateSB, true)
	oldDir, oldLeaf, err := f.walk(t, oldPath)
	if err != nil {
		return err
	}
	ino, ok, err := f.lookupDir(t, oldDir, oldLeaf)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("fs: %q: no such file", oldPath)
	}
	newDir, newLeaf, err := f.walk(t, newPath)
	if err != nil {
		return err
	}
	if _, exists, err := f.lookupDir(t, newDir, newLeaf); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("fs: %q exists", newPath)
	}
	// Add the new entry, then tombstone the old one.
	if err := f.addDirEntry(t, newDir, ino, newLeaf); err != nil {
		return err
	}
	if err := f.removeDirEntry(t, oldDir, ino, oldLeaf); err != nil {
		return err
	}
	return f.flushMeta(t)
}

// removeDirEntry tombstones the entry (ino, leaf) in directory dirIno.
func (f *FileSystem) removeDirEntry(t *sched.Thread, dirIno, ino uint32, leaf string) error {
	var din inode
	if err := f.readInode(t, dirIno, &din); err != nil {
		return err
	}
	data, err := f.readAll(t, &din)
	if err != nil {
		return err
	}
	for off := 0; off+dirEntryHeader <= len(data); {
		e := binary.LittleEndian.Uint32(data[off:])
		nl := int(binary.LittleEndian.Uint16(data[off+4:]))
		if nl == 0 {
			break
		}
		if e == ino && string(data[off+dirEntryHeader:off+dirEntryHeader+nl]) == leaf {
			binary.LittleEndian.PutUint32(data[off:], 0)
			if err := f.writeAt(t, &din, 0, data); err != nil {
				return err
			}
			return f.writeInode(t, dirIno, &din)
		}
		off += dirEntryHeader + nl
	}
	return fmt.Errorf("fs: entry %q not found in directory %d", leaf, dirIno)
}

// Truncate shrinks or grows the open file to size bytes. Growing leaves a
// hole (reads return zeros); shrinking frees whole blocks past the end.
func (fl *File) Truncate(t *sched.Thread, size int) error {
	fl.fs.lock(t)
	defer fl.fs.unlock(t)
	return fl.fs.truncateLocked(t, fl, size)
}

// truncateLocked is Truncate with the service lock already held.
func (f *FileSystem) truncateLocked(t *sched.Thread, fl *File, size int) error {
	t.Exec(f.Costs.PerOp)
	f.touch(t, stateSB, true)
	if size < 0 {
		return fmt.Errorf("fs: negative truncate size %d", size)
	}
	old := int(fl.in.Size)
	if size >= old {
		fl.in.Size = uint32(size)
		return f.writeInode(t, fl.ino, &fl.in)
	}
	f.touch(t, stateBitmaps, true)
	keep := (size + f.bs - 1) / f.bs
	total := (old + f.bs - 1) / f.bs
	// Zero the tail of the partial last block so a later grow exposes a
	// proper hole instead of stale bytes.
	if size%f.bs != 0 {
		if b, err := f.blockOf(t, &fl.in, size/f.bs, false); err != nil {
			return err
		} else if b != 0 {
			buf := make([]byte, f.bs)
			if err := f.dev.ReadBlock(t, int(b), buf); err != nil {
				return err
			}
			for i := size % f.bs; i < f.bs; i++ {
				buf[i] = 0
			}
			if err := f.dev.WriteBlock(t, int(b), buf); err != nil {
				return err
			}
		}
	}
	for i := keep; i < total; i++ {
		t.Exec(f.Costs.PerBlk)
		b, err := f.blockOf(t, &fl.in, i, false)
		if err != nil {
			return err
		}
		if b != 0 {
			f.freeBlock(b)
			if err := f.clearBlockRef(t, &fl.in, i); err != nil {
				return err
			}
		}
	}
	fl.in.Size = uint32(size)
	if fl.pos > size {
		fl.pos = size
	}
	if err := f.writeInode(t, fl.ino, &fl.in); err != nil {
		return err
	}
	return f.flushMeta(t)
}

// clearBlockRef zeroes the mapping slot for file-relative block idx.
func (f *FileSystem) clearBlockRef(t *sched.Thread, in *inode, idx int) error {
	if idx < directBlocks {
		in.Direct[idx] = 0
		return nil
	}
	idx -= directBlocks
	if in.Indirect == 0 {
		return nil
	}
	ind := make([]byte, f.bs)
	if err := f.dev.ReadBlock(t, int(in.Indirect), ind); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(ind[4*idx:], 0)
	return f.dev.WriteBlock(t, int(in.Indirect), ind)
}

// FreeBlocks returns the number of free data blocks.
func (f *FileSystem) FreeBlocks() int { return int(f.sb.FreeBlocks) }

// FreeInodes returns the number of free inodes.
func (f *FileSystem) FreeInodes() int { return int(f.sb.FreeInodes) }
