// Package fs implements an ext2-like filesystem, the extended service
// behind Figure 6(b): a real on-disk layout with a superblock, block and
// inode bitmaps, an inode table with direct and single-indirect blocks, and
// directories, mounted on any driver.BlockDevice (the benchmarks use a
// ramdisk, as the paper does, §9.2).
//
// As a shadowed service, its metadata state is kept coherent between
// kernels by the DSM; CPU costs are charged to the calling thread's core,
// so the same operations are naturally ~3.5x slower on the weak domain.
package fs

import (
	"encoding/binary"
	"fmt"
	"time"

	"k2/internal/driver"
	"k2/internal/sched"
	"k2/internal/services"
	"k2/internal/sim"
	"k2/internal/soc"
)

// Magic identifies a formatted volume.
const Magic = 0x4B32_4653 // "K2FS"

const (
	inodeSize      = 128
	directBlocks   = 12
	rootInode      = 1
	modeFile       = 1
	modeDir        = 2
	dirEntryHeader = 6 // inode u32 + nameLen u16
)

// Superblock is the on-disk volume header (block 0).
type Superblock struct {
	Magic        uint32
	Blocks       uint32
	Inodes       uint32
	BlockBitmap  uint32 // first block of the block bitmap
	BitmapBlocks uint32
	InodeBitmap  uint32
	InodeTable   uint32
	TableBlocks  uint32
	DataStart    uint32
	FreeBlocks   uint32
	FreeInodes   uint32
}

type inode struct {
	Mode     uint32
	Size     uint32
	Links    uint32
	Direct   [directBlocks]uint32
	Indirect uint32
}

// Costs carries the filesystem's CPU costs per operation (reference work).
type Costs struct {
	Lookup  soc.Work // per path component
	Create  soc.Work
	PerOp   soc.Work // read/write syscall entry
	PerBlk  soc.Work // block mapping + buffer management per block
	CloseOp soc.Work
}

// DefaultCosts returns the calibration used by the benchmarks.
func DefaultCosts() Costs {
	return Costs{
		Lookup:  soc.Work(3 * time.Microsecond),
		Create:  soc.Work(8 * time.Microsecond),
		PerOp:   soc.Work(2 * time.Microsecond),
		PerBlk:  soc.Work(1500 * time.Nanosecond),
		CloseOp: soc.Work(2 * time.Microsecond),
	}
}

// FileSystem is a mounted volume.
type FileSystem struct {
	Costs Costs
	// State is the shadowed metadata state (superblock, bitmaps, inode
	// cache); nil outside K2.
	State *services.ShadowedState

	dev         driver.BlockDevice
	sb          Superblock
	blockBitmap []byte
	inodeBitmap []byte
	bs          int

	// The service lock: under K2 the hardware spinlock of State (§5.3
	// step 4: shadowed services' locks are augmented for inter-domain
	// exclusion); under the baseline a plain sleeping lock serializes the
	// strong cores.
	lockBusy bool
	lockGate *sim.Gate
}

// lock serializes a filesystem operation. With shadowed state it takes the
// hardware spinlock; otherwise an in-kernel sleeping lock.
func (f *FileSystem) lock(t *sched.Thread) {
	if f.State != nil {
		f.State.Enter(t)
		return
	}
	if f.lockGate == nil {
		f.lockGate = sim.NewGate(t.P().Engine())
	}
	for f.lockBusy {
		t.Block(func(p *sim.Proc) { f.lockGate.Wait(p) })
	}
	f.lockBusy = true
}

func (f *FileSystem) unlock(t *sched.Thread) {
	if f.State != nil {
		f.State.Exit(t)
		return
	}
	f.lockBusy = false
	f.lockGate.OpenOne()
}

// State page indices.
const (
	stateSB = iota
	stateBitmaps
	stateInodes
	stateLen
)

// StatePages is how many shadowed pages the filesystem's hot metadata
// occupies.
const StatePages = stateLen

// Mkfs formats the device and returns the mounted filesystem. The layout:
// superblock, block bitmap, inode bitmap (1 block), inode table, data.
func Mkfs(t *sched.Thread, dev driver.BlockDevice, state *services.ShadowedState) (*FileSystem, error) {
	bs := dev.BlockSize()
	blocks := dev.Blocks()
	if blocks < 16 {
		return nil, fmt.Errorf("fs: device too small (%d blocks)", blocks)
	}
	inodes := blocks / 8
	if inodes < 32 {
		inodes = 32
	}
	bitmapBlocks := (blocks/8 + bs - 1) / bs
	tableBlocks := (inodes*inodeSize + bs - 1) / bs
	sb := Superblock{
		Magic:        Magic,
		Blocks:       uint32(blocks),
		Inodes:       uint32(inodes),
		BlockBitmap:  1,
		BitmapBlocks: uint32(bitmapBlocks),
		InodeBitmap:  uint32(1 + bitmapBlocks),
		InodeTable:   uint32(2 + bitmapBlocks),
		TableBlocks:  uint32(tableBlocks),
		DataStart:    uint32(2 + bitmapBlocks + tableBlocks),
	}
	sb.FreeBlocks = sb.Blocks - sb.DataStart
	sb.FreeInodes = sb.Inodes - 2 // inode 0 invalid, inode 1 root

	f := &FileSystem{
		Costs:       DefaultCosts(),
		State:       state,
		dev:         dev,
		sb:          sb,
		blockBitmap: make([]byte, bitmapBlocks*bs),
		inodeBitmap: make([]byte, bs),
		bs:          bs,
	}
	// Mark metadata blocks used.
	for b := 0; b < int(sb.DataStart); b++ {
		f.blockBitmap[b/8] |= 1 << (b % 8)
	}
	f.inodeBitmap[0] |= 0b11 // inode 0 and root
	root := inode{Mode: modeDir, Links: 2}
	if err := f.writeInode(t, rootInode, &root); err != nil {
		return nil, err
	}
	if err := f.flushMeta(t); err != nil {
		return nil, err
	}
	return f, nil
}

// Mount reads the superblock and bitmaps from a formatted device.
func Mount(t *sched.Thread, dev driver.BlockDevice, state *services.ShadowedState) (*FileSystem, error) {
	bs := dev.BlockSize()
	buf := make([]byte, bs)
	f := &FileSystem{Costs: DefaultCosts(), State: state, dev: dev, bs: bs}
	if err := dev.ReadBlock(t, 0, buf); err != nil {
		return nil, err
	}
	f.sb = decodeSB(buf)
	if f.sb.Magic != Magic {
		return nil, fmt.Errorf("fs: bad magic %#x", f.sb.Magic)
	}
	f.blockBitmap = make([]byte, int(f.sb.BitmapBlocks)*bs)
	for i := 0; i < int(f.sb.BitmapBlocks); i++ {
		if err := dev.ReadBlock(t, int(f.sb.BlockBitmap)+i, f.blockBitmap[i*bs:(i+1)*bs]); err != nil {
			return nil, err
		}
	}
	f.inodeBitmap = make([]byte, bs)
	if err := dev.ReadBlock(t, int(f.sb.InodeBitmap), f.inodeBitmap); err != nil {
		return nil, err
	}
	return f, nil
}

// Super returns a copy of the superblock.
func (f *FileSystem) Super() Superblock { return f.sb }

func encodeSB(sb Superblock, buf []byte) {
	binary.LittleEndian.PutUint32(buf[0:], sb.Magic)
	binary.LittleEndian.PutUint32(buf[4:], sb.Blocks)
	binary.LittleEndian.PutUint32(buf[8:], sb.Inodes)
	binary.LittleEndian.PutUint32(buf[12:], sb.BlockBitmap)
	binary.LittleEndian.PutUint32(buf[16:], sb.BitmapBlocks)
	binary.LittleEndian.PutUint32(buf[20:], sb.InodeBitmap)
	binary.LittleEndian.PutUint32(buf[24:], sb.InodeTable)
	binary.LittleEndian.PutUint32(buf[28:], sb.TableBlocks)
	binary.LittleEndian.PutUint32(buf[32:], sb.DataStart)
	binary.LittleEndian.PutUint32(buf[36:], sb.FreeBlocks)
	binary.LittleEndian.PutUint32(buf[40:], sb.FreeInodes)
}

func decodeSB(buf []byte) Superblock {
	return Superblock{
		Magic:        binary.LittleEndian.Uint32(buf[0:]),
		Blocks:       binary.LittleEndian.Uint32(buf[4:]),
		Inodes:       binary.LittleEndian.Uint32(buf[8:]),
		BlockBitmap:  binary.LittleEndian.Uint32(buf[12:]),
		BitmapBlocks: binary.LittleEndian.Uint32(buf[16:]),
		InodeBitmap:  binary.LittleEndian.Uint32(buf[20:]),
		InodeTable:   binary.LittleEndian.Uint32(buf[24:]),
		TableBlocks:  binary.LittleEndian.Uint32(buf[28:]),
		DataStart:    binary.LittleEndian.Uint32(buf[32:]),
		FreeBlocks:   binary.LittleEndian.Uint32(buf[36:]),
		FreeInodes:   binary.LittleEndian.Uint32(buf[40:]),
	}
}

func (f *FileSystem) touch(t *sched.Thread, page int, write bool) {
	if f.State != nil {
		f.State.Touch(t, page, write)
	}
}

func (f *FileSystem) flushMeta(t *sched.Thread) error {
	buf := make([]byte, f.bs)
	encodeSB(f.sb, buf)
	if err := f.dev.WriteBlock(t, 0, buf); err != nil {
		return err
	}
	for i := 0; i < int(f.sb.BitmapBlocks); i++ {
		if err := f.dev.WriteBlock(t, int(f.sb.BlockBitmap)+i, f.blockBitmap[i*f.bs:(i+1)*f.bs]); err != nil {
			return err
		}
	}
	return f.dev.WriteBlock(t, int(f.sb.InodeBitmap), f.inodeBitmap)
}

func (f *FileSystem) allocBlock(t *sched.Thread) (uint32, error) {
	f.touch(t, stateBitmaps, true)
	if f.sb.FreeBlocks == 0 {
		return 0, fmt.Errorf("fs: no free blocks")
	}
	for b := int(f.sb.DataStart); b < int(f.sb.Blocks); b++ {
		if f.blockBitmap[b/8]&(1<<(b%8)) == 0 {
			f.blockBitmap[b/8] |= 1 << (b % 8)
			f.sb.FreeBlocks--
			return uint32(b), nil
		}
	}
	return 0, fmt.Errorf("fs: bitmap inconsistent with free count")
}

func (f *FileSystem) freeBlock(blk uint32) {
	f.blockBitmap[blk/8] &^= 1 << (blk % 8)
	f.sb.FreeBlocks++
}

func (f *FileSystem) allocInode(t *sched.Thread) (uint32, error) {
	f.touch(t, stateBitmaps, true)
	if f.sb.FreeInodes == 0 {
		return 0, fmt.Errorf("fs: no free inodes")
	}
	for i := 2; i < int(f.sb.Inodes); i++ {
		if f.inodeBitmap[i/8]&(1<<(i%8)) == 0 {
			f.inodeBitmap[i/8] |= 1 << (i % 8)
			f.sb.FreeInodes--
			return uint32(i), nil
		}
	}
	return 0, fmt.Errorf("fs: inode bitmap inconsistent")
}

func (f *FileSystem) freeInode(ino uint32) {
	f.inodeBitmap[ino/8] &^= 1 << (ino % 8)
	f.sb.FreeInodes++
}

func (f *FileSystem) inodeLoc(ino uint32) (blk, off int) {
	per := f.bs / inodeSize
	return int(f.sb.InodeTable) + int(ino)/per, (int(ino) % per) * inodeSize
}

func (f *FileSystem) readInode(t *sched.Thread, ino uint32, out *inode) error {
	f.touch(t, stateInodes, false)
	blk, off := f.inodeLoc(ino)
	buf := make([]byte, f.bs)
	if err := f.dev.ReadBlock(t, blk, buf); err != nil {
		return err
	}
	b := buf[off:]
	out.Mode = binary.LittleEndian.Uint32(b[0:])
	out.Size = binary.LittleEndian.Uint32(b[4:])
	out.Links = binary.LittleEndian.Uint32(b[8:])
	for i := 0; i < directBlocks; i++ {
		out.Direct[i] = binary.LittleEndian.Uint32(b[12+4*i:])
	}
	out.Indirect = binary.LittleEndian.Uint32(b[12+4*directBlocks:])
	return nil
}

func (f *FileSystem) writeInode(t *sched.Thread, ino uint32, in *inode) error {
	f.touch(t, stateInodes, true)
	blk, off := f.inodeLoc(ino)
	buf := make([]byte, f.bs)
	if err := f.dev.ReadBlock(t, blk, buf); err != nil {
		return err
	}
	b := buf[off:]
	binary.LittleEndian.PutUint32(b[0:], in.Mode)
	binary.LittleEndian.PutUint32(b[4:], in.Size)
	binary.LittleEndian.PutUint32(b[8:], in.Links)
	for i := 0; i < directBlocks; i++ {
		binary.LittleEndian.PutUint32(b[12+4*i:], in.Direct[i])
	}
	binary.LittleEndian.PutUint32(b[12+4*directBlocks:], in.Indirect)
	return f.dev.WriteBlock(t, blk, buf)
}

// blockOf maps a file-relative block index to a device block, allocating on
// demand when alloc is true. Index 0..11 direct, then single indirect.
func (f *FileSystem) blockOf(t *sched.Thread, in *inode, idx int, alloc bool) (uint32, error) {
	if idx < directBlocks {
		if in.Direct[idx] == 0 && alloc {
			b, err := f.allocBlock(t)
			if err != nil {
				return 0, err
			}
			in.Direct[idx] = b
		}
		return in.Direct[idx], nil
	}
	idx -= directBlocks
	perBlk := f.bs / 4
	if idx >= perBlk {
		return 0, fmt.Errorf("fs: file too large")
	}
	if in.Indirect == 0 {
		if !alloc {
			return 0, nil
		}
		b, err := f.allocBlock(t)
		if err != nil {
			return 0, err
		}
		in.Indirect = b
		zero := make([]byte, f.bs)
		if err := f.dev.WriteBlock(t, int(b), zero); err != nil {
			return 0, err
		}
	}
	ind := make([]byte, f.bs)
	if err := f.dev.ReadBlock(t, int(in.Indirect), ind); err != nil {
		return 0, err
	}
	b := binary.LittleEndian.Uint32(ind[4*idx:])
	if b == 0 && alloc {
		nb, err := f.allocBlock(t)
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint32(ind[4*idx:], nb)
		if err := f.dev.WriteBlock(t, int(in.Indirect), ind); err != nil {
			return 0, err
		}
		b = nb
	}
	return b, nil
}
