package fs

import (
	"bytes"
	"testing"

	"k2/internal/sched"
)

func TestOpenFileCreateFlags(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		// O_CREATE on a missing file creates it.
		fl, err := f.OpenFile(th, "/a", OCreate)
		if err != nil {
			t.Error(err)
			return
		}
		if err := fl.Write(th, []byte("one")); err != nil {
			t.Error(err)
			return
		}
		if err := fl.Close(th); err != nil {
			t.Error(err)
			return
		}
		// Plain OpenFile on an existing file works.
		if _, err := f.OpenFile(th, "/a", 0); err != nil {
			t.Errorf("reopen: %v", err)
		}
		// O_CREATE|O_EXCL on an existing file fails.
		if _, err := f.OpenFile(th, "/a", OCreate|OExcl); err == nil {
			t.Error("O_EXCL did not fail on existing file")
		}
		// Plain open of a missing file fails.
		if _, err := f.OpenFile(th, "/missing", 0); err == nil {
			t.Error("opened a missing file without O_CREATE")
		}
		// Opening a directory as a file fails.
		if err := f.Mkdir(th, "/d"); err != nil {
			t.Error(err)
			return
		}
		if _, err := f.OpenFile(th, "/d", 0); err == nil {
			t.Error("opened a directory as a file")
		}
	})
}

func TestOpenFileTruncAndAppend(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		fl, _ := f.OpenFile(th, "/log", OCreate)
		if err := fl.Write(th, []byte("0123456789")); err != nil {
			t.Error(err)
			return
		}
		if err := fl.Close(th); err != nil {
			t.Error(err)
			return
		}
		// O_APPEND continues at the end.
		fl, err := f.OpenFile(th, "/log", OAppend)
		if err != nil {
			t.Error(err)
			return
		}
		if err := fl.Write(th, []byte("AB")); err != nil {
			t.Error(err)
			return
		}
		if err := fl.Close(th); err != nil {
			t.Error(err)
			return
		}
		fl, _ = f.Open(th, "/log")
		buf := make([]byte, 32)
		n, _ := fl.Read(th, buf)
		if string(buf[:n]) != "0123456789AB" {
			t.Errorf("append result %q", buf[:n])
		}
		// O_TRUNC resets the file.
		fl, err = f.OpenFile(th, "/log", OTrunc)
		if err != nil {
			t.Error(err)
			return
		}
		if fl.Size() != 0 {
			t.Errorf("size after O_TRUNC = %d", fl.Size())
		}
		rep, err := f.Fsck(th)
		if err != nil || !rep.Clean() {
			t.Errorf("fsck: %v err=%v", rep, err)
		}
	})
}

func TestHardLinks(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		fl, _ := f.Create(th, "/orig")
		if err := fl.Write(th, []byte("shared bytes")); err != nil {
			t.Error(err)
			return
		}
		if err := fl.Close(th); err != nil {
			t.Error(err)
			return
		}
		if err := f.Link(th, "/orig", "/alias"); err != nil {
			t.Error(err)
			return
		}
		if n, _ := f.Links(th, "/orig"); n != 2 {
			t.Errorf("links = %d, want 2", n)
		}
		// Content visible through both names; same inode.
		a, _ := f.Stat(th, "/orig")
		b, _ := f.Stat(th, "/alias")
		if a.Inode != b.Inode {
			t.Error("link does not share the inode")
		}
		g, _ := f.Open(th, "/alias")
		buf := make([]byte, 32)
		n, _ := g.Read(th, buf)
		if !bytes.Equal(buf[:n], []byte("shared bytes")) {
			t.Errorf("alias content %q", buf[:n])
		}
		// Fsck understands hard links.
		rep, err := f.Fsck(th)
		if err != nil || !rep.Clean() {
			t.Fatalf("fsck with links: %v err=%v", rep, err)
		}
		// Unlinking one name keeps the data reachable via the other.
		freeBefore := f.FreeBlocks()
		if err := f.Unlink(th, "/orig"); err != nil {
			t.Error(err)
			return
		}
		if f.FreeBlocks() != freeBefore {
			t.Error("unlink of one hard link freed the shared blocks")
		}
		if n, _ := f.Links(th, "/alias"); n != 1 {
			t.Errorf("links after unlink = %d, want 1", n)
		}
		g, err = f.Open(th, "/alias")
		if err != nil {
			t.Error(err)
			return
		}
		n, _ = g.Read(th, buf)
		if !bytes.Equal(buf[:n], []byte("shared bytes")) {
			t.Error("data lost after unlinking a sibling name")
		}
		// Unlinking the last name frees everything.
		if err := f.Unlink(th, "/alias"); err != nil {
			t.Error(err)
			return
		}
		if f.FreeBlocks() <= freeBefore {
			t.Error("final unlink did not free the blocks")
		}
		rep, err = f.Fsck(th)
		if err != nil || !rep.Clean() {
			t.Fatalf("fsck after unlinks: %v err=%v", rep, err)
		}
	})
}

func TestLinkErrors(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		if err := f.Link(th, "/nope", "/x"); err == nil {
			t.Error("linked a missing file")
		}
		if err := f.Mkdir(th, "/d"); err != nil {
			t.Error(err)
			return
		}
		if err := f.Link(th, "/d", "/d2"); err == nil {
			t.Error("hard-linked a directory")
		}
		fl, _ := f.Create(th, "/a")
		if err := fl.Close(th); err != nil {
			t.Error(err)
			return
		}
		if err := f.Link(th, "/a", "/d"); err == nil {
			t.Error("link over an existing name succeeded")
		}
	})
}

func TestSync(t *testing.T) {
	withFS(t, func(th *sched.Thread, f *FileSystem) {
		fl, _ := f.Create(th, "/s")
		if err := fl.Write(th, []byte("x")); err != nil {
			t.Error(err)
			return
		}
		if err := f.Sync(th); err != nil {
			t.Error(err)
			return
		}
	})
}
