package fs

import (
	"fmt"

	"k2/internal/driver"
	"k2/internal/services"
)

// FileSystemState is the mounted filesystem's in-memory checkpointable
// state: the superblock and both bitmaps. File contents live on the block
// device and are captured with it.
type FileSystemState struct {
	SB          Superblock
	BlockBitmap []byte
	InodeBitmap []byte
}

// CaptureState records the in-memory metadata; it errors while the baseline
// sleeping lock is held (the shadowed hardware spinlock is captured with the
// platform).
func (f *FileSystem) CaptureState() (FileSystemState, error) {
	if f.lockBusy {
		return FileSystemState{}, fmt.Errorf("fs: operation in progress")
	}
	return FileSystemState{
		SB:          f.sb,
		BlockBitmap: append([]byte(nil), f.blockBitmap...),
		InodeBitmap: append([]byte(nil), f.inodeBitmap...),
	}, nil
}

// RestoreFS reconstructs a mounted filesystem from a captured state without
// touching the device or charging any CPU time — the untimed analog of
// Mount, used when rehydrating a checkpoint (the device contents are
// restored separately).
func RestoreFS(dev driver.BlockDevice, state *services.ShadowedState, st FileSystemState) *FileSystem {
	return &FileSystem{
		Costs:       DefaultCosts(),
		State:       state,
		dev:         dev,
		sb:          st.SB,
		blockBitmap: append([]byte(nil), st.BlockBitmap...),
		inodeBitmap: append([]byte(nil), st.InodeBitmap...),
		bs:          dev.BlockSize(),
	}
}
