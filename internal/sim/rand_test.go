package sim

import (
	"testing"
	"time"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	if NewRand(42).Uint64() == NewRand(43).Uint64() {
		t.Fatal("different seeds produced the same first draw")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn = %d", n)
		}
		if d := r.Duration(time.Millisecond); d < 0 || d >= time.Millisecond {
			t.Fatalf("Duration = %v", d)
		}
	}
	if r.Duration(0) != 0 {
		t.Fatal("Duration(0) must be 0")
	}
}

// Bernoulli must consume exactly one draw regardless of p, so call sites
// with different probabilities stay aligned across runs.
func TestBernoulliConsumesOneDraw(t *testing.T) {
	a, b := NewRand(9), NewRand(9)
	a.Bernoulli(0)
	b.Bernoulli(1)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Bernoulli draw count depends on p")
	}
	r := NewRand(9)
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if hits < 2700 || hits > 3300 {
		t.Fatalf("Bernoulli(0.3) hit %d/10000", hits)
	}
}
