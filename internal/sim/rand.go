package sim

import "time"

// Rand is a small deterministic pseudo-random source (splitmix64). The
// simulation cannot use math/rand: reproducibility must hold across Go
// releases and across processes, because two runs with the same seed are
// required to produce identical traces. Every randomized behavior in the
// repository (fault injection included) draws from a Rand seeded on the
// command line.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Equal seeds yield equal
// sequences forever.
func NewRand(seed int64) *Rand {
	return &Rand{state: uint64(seed)}
}

// State returns the generator's internal state for checkpointing.
func (r *Rand) State() uint64 { return r.state }

// SetState rewinds the generator onto a state captured with State, after
// which it reproduces the same draw sequence it would have from there.
func (r *Rand) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 random bits (splitmix64 step).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Duration returns a uniform duration in [0, max); zero if max <= 0.
func (r *Rand) Duration(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(r.Uint64() % uint64(max))
}

// Bernoulli reports true with probability p (clamped to [0, 1]). It always
// consumes exactly one draw, so interleaved call sites stay aligned across
// runs regardless of p.
func (r *Rand) Bernoulli(p float64) bool {
	v := r.Float64()
	return v < p
}
