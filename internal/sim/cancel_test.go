package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSleepOrCancelFullSleep(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	var completed bool
	var woke Time
	e.Spawn("s", func(p *Proc) {
		completed = p.SleepOrCancel(10*time.Millisecond, ev)
		woke = p.Now()
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !completed || woke != Time(10*time.Millisecond) {
		t.Fatalf("completed=%v woke=%v", completed, woke)
	}
}

func TestSleepOrCancelInterrupted(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	var completed bool
	var woke Time
	e.Spawn("s", func(p *Proc) {
		completed = p.SleepOrCancel(10*time.Millisecond, ev)
		woke = p.Now()
	})
	e.At(Time(3*time.Millisecond), func() { ev.Fire() })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if completed || woke != Time(3*time.Millisecond) {
		t.Fatalf("completed=%v woke=%v, want interrupted at 3ms", completed, woke)
	}
}

func TestSleepOrCancelAlreadyFired(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	ev.Fire()
	var completed, ran bool
	var woke Time
	e.Spawn("s", func(p *Proc) {
		completed = p.SleepOrCancel(10*time.Millisecond, ev)
		woke = p.Now()
		ran = true
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !ran || completed || woke != 0 {
		t.Fatalf("ran=%v completed=%v woke=%v, want immediate return", ran, completed, woke)
	}
}

func TestSleepOrCancelNilEvent(t *testing.T) {
	e := NewEngine()
	var completed bool
	e.Spawn("s", func(p *Proc) {
		completed = p.SleepOrCancel(time.Millisecond, nil)
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("nil cancel must degrade to a plain sleep")
	}
}

func TestSleepOrCancelLateFireHarmless(t *testing.T) {
	// The cancel fires after the sleep completed: the proc must not be
	// resumed twice.
	e := NewEngine()
	ev := NewEvent(e)
	phases := 0
	e.Spawn("s", func(p *Proc) {
		if !p.SleepOrCancel(time.Millisecond, ev) {
			t.Error("short sleep interrupted unexpectedly")
		}
		phases++
		p.Sleep(10 * time.Millisecond) // survives the late Fire below
		phases++
	})
	e.At(Time(5*time.Millisecond), func() { ev.Fire() })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if phases != 2 {
		t.Fatalf("phases = %d", phases)
	}
}

func TestOnFireOrdering(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	var order []int
	ev.OnFire(func() { order = append(order, 1) })
	ev.OnFire(func() { order = append(order, 2) })
	ev.Fire()
	ev.OnFire(func() { order = append(order, 3) }) // post-fire: immediate
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

// Property: SleepOrCancel wakes at exactly min(sleep, fire) and reports
// completion iff the sleep was shorter.
func TestQuickSleepOrCancelMin(t *testing.T) {
	f := func(sleepUS, fireUS uint16) bool {
		if sleepUS == 0 {
			sleepUS = 1
		}
		e := NewEngine()
		ev := NewEvent(e)
		var completed bool
		var woke Time
		e.Spawn("s", func(p *Proc) {
			completed = p.SleepOrCancel(time.Duration(sleepUS)*time.Microsecond, ev)
			woke = p.Now()
		})
		e.At(Time(fireUS)*Time(time.Microsecond), func() { ev.Fire() })
		if err := e.RunAll(); err != nil {
			return false
		}
		want := Time(sleepUS) * Time(time.Microsecond)
		wantComplete := true
		if Time(fireUS)*Time(time.Microsecond) < want {
			want = Time(fireUS) * Time(time.Microsecond)
			wantComplete = false
		}
		return woke == want && completed == wantComplete
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
