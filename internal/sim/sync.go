package sim

import "time"

// Event is a one-shot broadcast: procs waiting on it block until Fire, and
// waits after Fire return immediately.
type Event struct {
	eng       *Engine
	fired     bool
	callbacks []func()
}

// NewEvent returns an unfired event on e.
func NewEvent(e *Engine) *Event { return &Event{eng: e} }

// Fired reports whether Fire has been called.
func (ev *Event) Fired() bool { return ev.fired }

// Fire wakes all waiters (in wait order) and makes future Waits immediate.
// May be called from engine or proc context; waiters run via scheduled
// events, preserving determinism.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, fn := range ev.callbacks {
		fn()
	}
	ev.callbacks = nil
}

// OnFire runs fn (engine context, must not block) when the event fires, or
// immediately if it already has.
func (ev *Event) OnFire(fn func()) {
	if ev.fired {
		fn()
		return
	}
	ev.callbacks = append(ev.callbacks, fn)
}

// Wait blocks p until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.OnFire(func() {
		ev.eng.wakeAt(ev.eng.now, p)
	})
	p.park()
}

// SleepOrCancel sleeps for d but wakes early if cancel fires first. It
// reports whether the full duration elapsed. A nil cancel degrades to
// Sleep.
//
// The sleep arms a closure-free engine timer; if cancel fires first the
// timer is neutered in place, so no ghost event survives to pop and no-op
// after the proc has moved on.
func (p *Proc) SleepOrCancel(d time.Duration, cancel *Event) (completed bool) {
	if cancel == nil {
		p.Sleep(d)
		return true
	}
	if cancel.Fired() {
		return false
	}
	e := p.eng
	ev := e.timerAt(e.now.Add(d), p)
	gen := ev.gen
	completed = true
	cancel.OnFire(func() {
		// A stale fire (after the timer ran, or after the record was
		// recycled into an unrelated event) fails the cancel and must not
		// touch the proc.
		if e.cancelTimer(ev, gen, p) {
			completed = false
			e.wakeAt(e.now, p)
		}
	})
	p.park()
	return completed
}

// Gate is a repeatable wait point: procs block on Wait until another party
// calls Open, which releases all current waiters; the gate then remains
// closed for subsequent waiters (unlike Event).
//
// Waiters queue in a head-indexed slice so the backing array is reused
// across open/wait cycles instead of reallocating on every append.
type Gate struct {
	eng     *Engine
	waiters []*Proc
	head    int
}

// NewGate returns a closed gate on e.
func NewGate(e *Engine) *Gate { return &Gate{eng: e} }

// Waiters returns how many procs are currently blocked.
func (g *Gate) Waiters() int { return len(g.waiters) - g.head }

// Open releases all procs currently blocked in Wait.
func (g *Gate) Open() {
	for _, w := range g.waiters[g.head:] {
		g.eng.wakeAt(g.eng.now, w)
	}
	g.waiters = g.waiters[:0]
	g.head = 0
}

// OpenOne releases the longest-waiting proc, if any, and reports whether a
// proc was released.
func (g *Gate) OpenOne() bool {
	if g.head == len(g.waiters) {
		return false
	}
	w := g.waiters[g.head]
	g.waiters[g.head] = nil
	g.head++
	if g.head == len(g.waiters) {
		g.waiters = g.waiters[:0]
		g.head = 0
	}
	g.eng.wakeAt(g.eng.now, w)
	return true
}

// Wait blocks p until the gate is opened.
func (g *Gate) Wait(p *Proc) {
	g.waiters = append(g.waiters, p)
	p.park()
}

type resWaiter struct {
	p    *Proc
	prio int
	seq  uint64
}

// Resource is a counted resource (e.g. a CPU core pool) with priority
// acquisition: among waiters, higher prio wins; ties go to the earlier
// arrival. It is the building block for core time-sharing in the scheduler.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	seq      uint64
	waiters  []resWaiter
	// LastHolder is the proc that most recently held a unit; schedulers use
	// it to charge context-switch costs on handoff.
	LastHolder *Proc
}

// NewResource returns a resource with the given capacity.
func NewResource(e *Engine, capacity int) *Resource {
	return &Resource{eng: e, capacity: capacity}
}

// InUse returns the number of held units.
func (r *Resource) InUse() int { return r.inUse }

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// Acquire blocks p until a unit is available, with the given priority.
// It returns true if the unit was handed over from a different proc than p
// (i.e. a context switch happened).
func (r *Resource) Acquire(p *Proc, prio int) (switched bool) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		switched = r.LastHolder != nil && r.LastHolder != p
		r.LastHolder = p
		return switched
	}
	r.seq++
	r.waiters = append(r.waiters, resWaiter{p: p, prio: prio, seq: r.seq})
	p.park()
	switched = r.LastHolder != nil && r.LastHolder != p
	r.LastHolder = p
	return switched
}

// TryAcquire acquires a unit without blocking, returning false if none is
// available.
func (r *Resource) TryAcquire(p *Proc) bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		r.LastHolder = p
		return true
	}
	return false
}

// Release returns a unit and wakes the best waiter, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Resource.Release without Acquire")
	}
	r.inUse--
	r.grant()
}

func (r *Resource) grant() {
	if r.inUse >= r.capacity || len(r.waiters) == 0 {
		return
	}
	best := 0
	for i := 1; i < len(r.waiters); i++ {
		w, b := r.waiters[i], r.waiters[best]
		if w.prio > b.prio || (w.prio == b.prio && w.seq < b.seq) {
			best = i
		}
	}
	w := r.waiters[best]
	r.waiters = append(r.waiters[:best], r.waiters[best+1:]...)
	r.inUse++
	r.eng.wakeAt(r.eng.now, w.p)
}

// Queue is an unbounded FIFO of values with blocking Get; it models message
// queues such as hardware mailboxes. Like Gate, it is head-indexed so a
// steady-state put/get cycle reuses the backing array without allocating.
type Queue struct {
	eng   *Engine
	items []any
	head  int
	gate  *Gate
}

// NewQueue returns an empty queue on e.
func NewQueue(e *Engine) *Queue { return &Queue{eng: e, gate: NewGate(e)} }

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) - q.head }

// Put appends v and wakes one waiting getter.
func (q *Queue) Put(v any) {
	q.items = append(q.items, v)
	q.gate.OpenOne()
}

// take removes and returns the head item; the caller guarantees Len() > 0.
func (q *Queue) take() any {
	v := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

// Get blocks p until an item is available and returns it.
func (q *Queue) Get(p *Proc) any {
	for q.Len() == 0 {
		q.gate.Wait(p)
	}
	return q.take()
}

// TryGet returns the next item without blocking, or (nil, false).
func (q *Queue) TryGet() (any, bool) {
	if q.Len() == 0 {
		return nil, false
	}
	return q.take(), true
}

// Timer schedules fn once after d, and can be cancelled or reset. It is used
// for inactivity timeouts.
type Timer struct {
	eng      *Engine
	fn       func()
	armed    bool
	gen      int
	deadline Time
}

// NewTimer returns an unarmed timer that will run fn when it expires.
func NewTimer(e *Engine, fn func()) *Timer { return &Timer{eng: e, fn: fn} }

// Reset (re)arms the timer to fire d from now, cancelling any earlier arm.
func (t *Timer) Reset(d time.Duration) { t.ResetAt(t.eng.now.Add(d)) }

// ResetAt (re)arms the timer to fire at absolute time at, cancelling any
// earlier arm. Snapshot restore uses it to re-arm a captured timer at its
// original deadline rather than a relative offset.
func (t *Timer) ResetAt(at Time) {
	t.gen++
	t.armed = true
	t.deadline = at
	gen := t.gen
	t.eng.At(at, func() {
		if t.armed && t.gen == gen {
			t.armed = false
			t.fn()
		}
	})
}

// Stop cancels the timer if armed.
func (t *Timer) Stop() { t.armed = false; t.gen++ }

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.armed }

// Deadline returns the absolute expiry of the most recent arm. It is only
// meaningful while Armed.
func (t *Timer) Deadline() Time { return t.deadline }
