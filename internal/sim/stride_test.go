package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestInterruptStrideOneKeepsOrder asserts the interrupt poll is invisible
// to the simulation at ANY stride: polling after every single dispatch
// (stride 1, the most aggressive setting SetInterruptStride allows) must
// reproduce the default-stride run event for event — same (time, seq)
// dispatch order, same counters. The workload deliberately piles several
// events onto the same instant and chains follow-ups from inside dispatches,
// the shapes where a poll that perturbed ordering would show.
func TestInterruptStrideOneKeepsOrder(t *testing.T) {
	run := func(stride int) (string, int, Stats) {
		e := NewEngine()
		if stride > 0 {
			e.SetInterruptStride(stride)
		}
		polls := 0
		e.SetInterrupt(func() error { polls++; return nil })
		var log strings.Builder
		for i := 0; i < 64; i++ {
			i := i
			// Four events per instant: same-time ties resolved by seq.
			at := Time(time.Duration(i/4) * time.Microsecond)
			e.At(at, func() {
				fmt.Fprintf(&log, "%d@%d ", i, int64(e.Now()))
				if i%8 == 0 {
					// A chained event born at the same instant.
					e.After(0, func() {
						fmt.Fprintf(&log, "chain%d@%d ", i, int64(e.Now()))
					})
				}
			})
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		st.Wall = 0 // host time differs between runs by construction
		return log.String(), polls, st
	}
	baseLog, basePolls, baseStats := run(0)
	oneLog, onePolls, oneStats := run(1)
	if oneLog != baseLog {
		t.Fatalf("stride 1 perturbed dispatch order:\n--- default ---\n%s\n--- stride 1 ---\n%s",
			baseLog, oneLog)
	}
	if oneStats != baseStats {
		t.Fatalf("stride 1 changed engine counters:\ndefault: %+v\nstride1: %+v",
			baseStats, oneStats)
	}
	// Prove the stride actually took effect: the run dispatches far fewer
	// events than the default stride, so the default run polls never while
	// stride 1 polls once per dispatch.
	if basePolls != 0 {
		t.Fatalf("default stride polled %d times over %d dispatches (stride %d)",
			basePolls, baseStats.Dispatched, interruptStride)
	}
	if uint64(onePolls) != oneStats.Dispatched {
		t.Fatalf("stride 1 polled %d times over %d dispatches, want one per dispatch",
			onePolls, oneStats.Dispatched)
	}
}

// TestSetInterruptStrideTightensPendingCredit asserts that lowering the
// stride mid-run takes effect at the NEXT dispatch, not after the old
// stride's remaining credit drains — Engine.Shutdown and job cancellation
// rely on this when they tighten polling on a long-running engine.
func TestSetInterruptStrideTightensPendingCredit(t *testing.T) {
	e := NewEngine()
	polls := 0
	e.SetInterrupt(func() error { polls++; return nil })
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if polls != 0 {
		t.Fatalf("short run polled %d times under the default stride", polls)
	}
	e.SetInterruptStride(1) // must clamp the large leftover credit
	e.Spawn("ticker2", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if polls == 0 {
		t.Fatal("tightened stride never polled: the old credit was not clamped")
	}
}
