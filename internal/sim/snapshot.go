package sim

import "fmt"

// EngineState is the engine's own contribution to a system snapshot. It is
// deliberately tiny: at a quiesce point no proc is runnable and every pending
// event is one a higher layer knows how to re-create (an armed Timer, a
// daemon's parked wake, a device tick), so the heap itself is not captured.
// What must survive verbatim is the clock, the event sequence counter that
// breaks same-time ties, and the dispatch statistics.
type EngineState struct {
	Now  Time
	Seq  uint64
	Stat Stats
	// PartDispatched carries the per-partition dispatch counters so a
	// restored engine's partition telemetry continues from the captured
	// values, keeping warm-started and cold-booted runs identical.
	PartDispatched []uint64
}

// CaptureState records the engine-level state at a quiesce point. Callers
// are responsible for having driven the engine to such a point (no live
// procs beyond parked daemons, no proc mid-dispatch) before calling.
func (e *Engine) CaptureState() EngineState {
	return EngineState{
		Now:            e.now,
		Seq:            e.seq,
		Stat:           e.stats,
		PartDispatched: append([]uint64(nil), e.partDisp...),
	}
}

// RestoreState rewinds a freshly built engine onto a captured state: it
// discards every pending event (the restore path re-arms the recognized
// ones), restores the clock and sequence counter, and clears any stop or
// failure left over from construction. The engine must have no live procs —
// goroutine stacks cannot be restored, so daemons are respawned by the
// caller after this returns.
func (e *Engine) RestoreState(st EngineState) error {
	if e.nprocs != 0 {
		return fmt.Errorf("sim: RestoreState with %d live procs", e.nprocs)
	}
	for _, ev := range e.events {
		ev.proc, ev.fn = nil, nil
	}
	e.events = e.events[:0]
	if e.ws != nil {
		// Purge events parked in the window scheduler's partitions too; the
		// scheduler itself stays installed for the restored run.
		for _, h := range e.ws.DrainAll() {
			h.ref.proc, h.ref.fn = nil, nil
		}
	}
	e.now = st.Now
	e.seq = st.Seq
	e.stats = st.Stat
	if len(st.PartDispatched) > 0 {
		pd := make([]uint64, len(e.partDisp))
		copy(pd, st.PartDispatched)
		e.partDisp = pd
	} else {
		for i := range e.partDisp {
			e.partDisp[i] = 0
		}
	}
	e.stopped = false
	e.failure = nil
	return nil
}
