package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if e.Now() != 30 {
		t.Fatalf("final Now() = %v, want 30", e.Now())
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (FIFO tie-break)", i, v, i)
		}
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(1000, func() { ran = true })
	if err := e.Run(500); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("event after the horizon ran")
	}
	if e.Now() != 500 {
		t.Fatalf("Now() = %v, want 500", e.Now())
	}
	// The event must still be pending and run on a later Run call.
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("pending event lost after bounded Run")
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Spawn("sleeper", func(p *Proc) {
		at = append(at, p.Now())
		p.Sleep(5 * time.Millisecond)
		at = append(at, p.Now())
		p.Sleep(10 * time.Millisecond)
		at = append(at, p.Now())
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, Time(5 * time.Millisecond), Time(15 * time.Millisecond)}
	if !reflect.DeepEqual(at, want) {
		t.Fatalf("wake times = %v, want %v", at, want)
	}
}

func TestProcPanicSurfacesAsError(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) { panic("boom") })
	err := e.RunAll()
	if err == nil {
		t.Fatal("RunAll returned nil for a panicking proc")
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("parent", func(p *Proc) {
		order = append(order, "parent-start")
		p.Engine().Spawn("child", func(c *Proc) {
			order = append(order, "child")
		})
		p.Sleep(time.Microsecond)
		order = append(order, "parent-end")
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"parent-start", "child", "parent-end"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestEventBroadcastAndLatch(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	var woke []string
	for _, n := range []string{"a", "b"} {
		n := n
		e.Spawn(n, func(p *Proc) {
			ev.Wait(p)
			woke = append(woke, n)
		})
	}
	e.At(Time(time.Second), func() { ev.Fire() })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(woke, []string{"a", "b"}) {
		t.Fatalf("wake order = %v", woke)
	}
	// Waiting after Fire returns immediately.
	done := false
	e.Spawn("late", func(p *Proc) { ev.Wait(p); done = true })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Wait after Fire blocked")
	}
}

func TestGateReleasesOnlyCurrentWaiters(t *testing.T) {
	e := NewEngine()
	g := NewGate(e)
	var woke int
	e.Spawn("w1", func(p *Proc) { g.Wait(p); woke++; g.Wait(p); woke++ })
	e.At(10, func() { g.Open() })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if woke != 1 {
		t.Fatalf("woke = %d, want 1 (gate must re-close)", woke)
	}
}

func TestResourcePriorityAndFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []string
	hold := func(name string, prio int, startAt Time) {
		e.SpawnAt(startAt, name, func(p *Proc) {
			r.Acquire(p, prio)
			order = append(order, name)
			p.Sleep(100 * time.Microsecond)
			r.Release()
		})
	}
	hold("first", 0, 0)
	// These three all queue while "first" holds the resource.
	hold("lo-early", 0, 1)
	hold("lo-late", 0, 2)
	hold("hi", 10, 3)
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "hi", "lo-early", "lo-late"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("grant order = %v, want %v", order, want)
	}
}

func TestResourceReportsContextSwitch(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var sw []bool
	e.Spawn("a", func(p *Proc) {
		sw = append(sw, r.Acquire(p, 0))
		p.Sleep(time.Millisecond)
		r.Release()
		sw = append(sw, r.Acquire(p, 0)) // same proc again: no switch
		r.Release()
	})
	e.SpawnAt(Time(2*time.Millisecond), "b", func(p *Proc) {
		sw = append(sw, r.Acquire(p, 0))
		r.Release()
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true}
	if !reflect.DeepEqual(sw, want) {
		t.Fatalf("switched flags = %v, want %v", sw, want)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	maxInUse := 0
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Acquire(p, 0)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(time.Millisecond)
			r.Release()
		})
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	e.At(10, func() { q.Put(1); q.Put(2) })
	e.At(20, func() { q.Put(3) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestTimerResetAndStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Reset(10 * time.Millisecond)
	e.At(Time(5*time.Millisecond), func() { tm.Reset(20 * time.Millisecond) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (reset must supersede)", fired)
	}
	if e.Now() != Time(25*time.Millisecond) {
		t.Fatalf("fire time = %v, want 25ms", e.Now())
	}

	tm.Reset(time.Millisecond)
	tm.Stop()
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d after Stop, want 1", fired)
	}
}

// traceRun executes a randomized workload and returns its event trace;
// determinism demands identical traces for identical seeds.
func traceRun(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	e := NewEngine()
	var trace []string
	r := NewResource(e, 2)
	q := NewQueue(e)
	for i := 0; i < 8; i++ {
		i := i
		start := Time(rng.Intn(1000))
		e.SpawnAt(start, fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 3; j++ {
				r.Acquire(p, i%3)
				trace = append(trace, fmt.Sprintf("%d:%d@%d", i, j, p.Now()))
				p.Sleep(time.Duration(50 + i*7))
				r.Release()
				q.Put(i)
			}
		})
	}
	e.Spawn("drain", func(p *Proc) {
		for i := 0; i < 24; i++ {
			v := q.Get(p).(int)
			trace = append(trace, fmt.Sprintf("got%d@%d", v, p.Now()))
		}
	})
	if err := e.RunAll(); err != nil {
		panic(err)
	}
	return trace
}

func TestDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a, b := traceRun(seed), traceRun(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: traces differ:\n%v\n%v", seed, a, b)
		}
	}
}

// Property: dispatch order is monotonically non-decreasing in time for any
// set of scheduled events.
func TestQuickEventOrderMonotonic(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		e := NewEngine()
		var times []Time
		for _, off := range offsets {
			at := Time(off)
			e.At(at, func() { times = append(times, e.Now()) })
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(offsets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a proc performing a sequence of sleeps wakes at exactly the
// prefix sums of its sleep durations.
func TestQuickSleepPrefixSums(t *testing.T) {
	f := func(durs []uint16) bool {
		e := NewEngine()
		ok := true
		e.Spawn("p", func(p *Proc) {
			var sum Time
			for _, d := range durs {
				p.Sleep(time.Duration(d))
				sum += Time(d)
				if p.Now() != sum {
					ok = false
				}
			}
		})
		if err := e.RunAll(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Resource never exceeds capacity and completes all acquirers, for
// arbitrary small workloads.
func TestQuickResourceCapacityInvariant(t *testing.T) {
	f := func(holdTimes []uint8, capRaw uint8) bool {
		capacity := int(capRaw%4) + 1
		e := NewEngine()
		r := NewResource(e, capacity)
		over := false
		done := 0
		for i, h := range holdTimes {
			h := time.Duration(h)
			e.SpawnAt(Time(i), "p", func(p *Proc) {
				r.Acquire(p, 0)
				if r.InUse() > capacity {
					over = true
				}
				p.Sleep(h)
				r.Release()
				done++
			})
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		return !over && done == len(holdTimes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
