package sim

import (
	"testing"
	"time"
)

// BenchmarkEventFire measures the engine-event round trip: scheduling a
// callback, firing a one-shot Event from it and waking a waiting proc.
func BenchmarkEventFire(b *testing.B) {
	e := NewEngine()
	e.Spawn("waiter", func(p *Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := NewEvent(e)
			e.At(e.Now(), func() { ev.Fire() })
			ev.Wait(p)
		}
	})
	if err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSleep measures the closure-free timer path: one pooled event and
// two coroutine handoffs per iteration, no allocations.
func BenchmarkSleep(b *testing.B) {
	e := NewEngine()
	e.Spawn("sleeper", func(p *Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	if err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSleepOrCancel measures the cancellable-sleep path with the
// cancel never firing (the common case: the full duration elapses).
func BenchmarkSleepOrCancel(b *testing.B) {
	e := NewEngine()
	cancel := NewEvent(e)
	e.Spawn("sleeper", func(p *Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !p.SleepOrCancel(time.Microsecond, cancel) {
				b.Fatal("sleep cancelled unexpectedly")
			}
		}
	})
	if err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSwitch measures a full proc-to-proc context switch: two
// procs ping-pong a token through a pair of queues, so each iteration is
// two parks, two wakes and two engine dispatches.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine()
	qa, qb := NewQueue(e), NewQueue(e)
	tok := struct{}{} // zero-size token: queue round trips without boxing
	e.Spawn("a", func(p *Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qb.Put(tok)
			qa.Get(p)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			qb.Get(p)
			qa.Put(tok)
		}
	})
	if err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}
