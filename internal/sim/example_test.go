package sim_test

import (
	"fmt"
	"time"

	"k2/internal/sim"
)

// Two procs sharing a single-slot resource: the engine interleaves them in
// virtual time, deterministically.
func Example() {
	e := sim.NewEngine()
	core := sim.NewResource(e, 1)
	worker := func(name string, start sim.Time) {
		e.SpawnAt(start, name, func(p *sim.Proc) {
			core.Acquire(p, 0)
			fmt.Printf("%-5s runs at %v\n", name, p.Now())
			p.Sleep(3 * time.Millisecond)
			core.Release()
		})
	}
	worker("alice", 0)
	worker("bob", sim.Time(time.Millisecond))
	if err := e.RunAll(); err != nil {
		panic(err)
	}
	fmt.Println("done at", e.Now())
	// Output:
	// alice runs at 0s
	// bob   runs at 3ms
	// done at 6ms
}

// Events broadcast to all waiters; SleepOrCancel supports preemption.
func ExampleEvent() {
	e := sim.NewEngine()
	preempt := sim.NewEvent(e)
	e.Spawn("worker", func(p *sim.Proc) {
		completed := p.SleepOrCancel(10*time.Millisecond, preempt)
		fmt.Printf("completed=%v at %v\n", completed, p.Now())
	})
	e.At(sim.Time(4*time.Millisecond), func() { preempt.Fire() })
	if err := e.RunAll(); err != nil {
		panic(err)
	}
	// Output:
	// completed=false at 4ms
}
