package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestInterruptStopsRun asserts that an installed interrupt check stops a
// run promptly with its error instead of draining the event queue.
func TestInterruptStopsRun(t *testing.T) {
	e := NewEngine()
	stop := errors.New("cancelled")
	polls := 0
	e.SetInterrupt(func() error {
		polls++
		if polls >= 2 {
			return stop
		}
		return nil
	})
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	err := e.Run(Time(time.Hour))
	if !errors.Is(err, stop) {
		t.Fatalf("Run = %v, want %v", err, stop)
	}
	// The run stopped within a couple of poll strides, far short of the
	// hour of virtual time the ticker would otherwise consume.
	if e.Now() > Time(3*interruptStride)*Time(time.Microsecond) {
		t.Fatalf("run continued to %v after interrupt", e.Now())
	}
}

// TestInterruptDoesNotChangeResults asserts that a never-firing interrupt
// check leaves a run's outcome untouched.
func TestInterruptDoesNotChangeResults(t *testing.T) {
	run := func(withCheck bool) (Time, Stats) {
		e := NewEngine()
		if withCheck {
			e.SetInterrupt(func() error { return nil })
		}
		e.Spawn("worker", func(p *Proc) {
			for i := 0; i < 3*interruptStride; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		st.Wall = 0 // host time differs between runs by construction
		return e.Now(), st
	}
	nowA, stA := run(false)
	nowB, stB := run(true)
	if nowA != nowB || stA != stB {
		t.Fatalf("interrupt changed the run: (%v, %+v) vs (%v, %+v)", nowA, stA, nowB, stB)
	}
}

// TestShutdownUnwindsProcs asserts that Shutdown terminates the goroutines
// of parked procs so an abandoned engine does not leak them.
func TestShutdownUnwindsProcs(t *testing.T) {
	before := runtime.NumGoroutine()
	e := NewEngine()
	for i := 0; i < 50; i++ {
		e.Spawn("sleeper", func(p *Proc) {
			p.Sleep(time.Hour)
		})
	}
	// Let every proc start and park.
	if err := e.Run(Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if e.nprocs != 50 {
		t.Fatalf("nprocs = %d, want 50 parked", e.nprocs)
	}
	e.Shutdown()
	if e.nprocs != 0 || len(e.procs) != 0 {
		t.Fatalf("after Shutdown: nprocs=%d procs=%d, want 0", e.nprocs, len(e.procs))
	}
	// The proc goroutines exit asynchronously after their final yield.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+5 {
		t.Fatalf("goroutines: %d before, %d after shutdown", before, n)
	}
}

// TestShutdownRunsDeferredCleanup asserts that a killed proc's defers run:
// shutdown is an unwind, not an abandonment.
func TestShutdownRunsDeferredCleanup(t *testing.T) {
	e := NewEngine()
	cleaned := false
	e.Spawn("holder", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(time.Hour)
	})
	if err := e.Run(Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if !cleaned {
		t.Fatal("deferred cleanup did not run during Shutdown")
	}
}
