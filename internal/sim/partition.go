package sim

import "time"

// Partitioned scheduling support. The engine can tag every event with a home
// partition (one per coherence domain, plus partition 0 for shared traffic)
// and hand heap maintenance for far-future events to a WindowScheduler — a
// conservative parallel-discrete-event layer such as internal/pdes. The
// contract that makes this safe is narrow and absolute:
//
//   - The scheduler only ORDERS events; it never executes them. Dispatch
//     happens on the engine goroutine, one event at a time, by merging the
//     scheduler's pre-sorted per-partition runs with the engine's own heap
//     in global (time, seq) order.
//   - Partition assignment therefore moves work, never results: any event,
//     in any partition, at any worker count, dispatches at exactly the same
//     point in the global order as it would under the sequential loop.
//
// That structural property — not careful tuning — is why tables, traces and
// oracles stay byte-identical at every parallelism, and it is what the
// full-registry equivalence tests pin down.

// EventHandle is the engine's hand-off token for one scheduled event. The
// ordering keys (At, Seq) and the home Partition are plain copies that a
// scheduler may read from any goroutine; ref stays private to the sim
// package and is only dereferenced on the engine goroutine at dispatch.
type EventHandle struct {
	At   Time
	Seq  uint64
	Part int32
	ref  *event
}

// HandleLess reports whether a orders before b in global dispatch order.
func HandleLess(a, b EventHandle) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.Seq < b.Seq
}

// WindowScheduler maintains partitioned sub-heaps of future events on the
// engine's behalf. All methods are invoked from the engine goroutine; a
// scheduler may fan work out to its own workers inside OpenWindow, but must
// have joined them before returning (the engine touches no scheduler state
// while OpenWindow runs, and the scheduler touches none outside it).
type WindowScheduler interface {
	// Offer transfers custody of one pending event to its home partition.
	Offer(h EventHandle)
	// OpenWindow integrates all offered events and extracts, per partition,
	// the sorted run of events below horizon. This is the barrier the
	// parallel workers run under: it returns only when every partition has
	// reached the horizon.
	OpenWindow(horizon Time)
	// Peek returns the earliest unconsumed event of the current window's
	// runs, without consuming it.
	Peek() (EventHandle, bool)
	// Pop consumes the event Peek reported.
	Pop()
	// Rewind returns all unconsumed run entries to their partitions, closing
	// the current window. Safe to call with no window open.
	Rewind()
	// MinPending reports the earliest event held anywhere in the scheduler.
	MinPending() (Time, bool)
	// DrainAll removes and returns every event the scheduler holds, in no
	// particular order. Used to detach the scheduler or purge state.
	DrainAll() []EventHandle
	// Release stops any workers. The scheduler is unusable afterwards.
	Release()
}

// lookaheadWindows scales the per-window horizon: each window spans this
// many lookahead intervals past the earliest pending event. Correctness
// never depends on the span (the merge loop enforces global order
// regardless); it only trades barrier frequency against how much of the
// schedule the partitions get to pre-sort in parallel.
const lookaheadWindows = 8

// ConfigurePartitions declares how many event partitions exist (n >= 1;
// partition 0 is the shared partition) and sizes the per-partition dispatch
// counters. Tags outside [0, n) are folded into partition 0.
func (e *Engine) ConfigurePartitions(n int) {
	if n < 1 {
		n = 1
	}
	e.npart = int32(n)
	pd := make([]uint64, n)
	copy(pd, e.partDisp)
	e.partDisp = pd
}

// Partitions returns the configured partition count (0 if unconfigured).
func (e *Engine) Partitions() int { return int(e.npart) }

// PartitionDispatches returns a copy of the per-partition dispatch counters,
// or nil if partitions were never configured.
func (e *Engine) PartitionDispatches() []uint64 {
	if len(e.partDisp) == 0 {
		return nil
	}
	return append([]uint64(nil), e.partDisp...)
}

// SetEventPartition sets the partition tag that newly scheduled events
// inherit, returning the previous tag so scoped callers can restore it. The
// platform layer uses this to stamp cross-domain deliveries with the
// destination domain.
func (e *Engine) SetEventPartition(part int) int {
	prev := int(e.curPart)
	if part < 0 || (e.npart > 0 && part >= int(e.npart)) {
		part = 0
	}
	e.curPart = int32(part)
	return prev
}

// EventPartition returns the partition tag newly scheduled events inherit
// right now: the home partition of the event being dispatched, unless
// overridden by SetEventPartition.
func (e *Engine) EventPartition() int { return int(e.curPart) }

// SetLookahead records the minimum cross-partition event latency (for K2,
// the mailbox delivery latency registered by soc). It bounds how far a
// window may reach past the earliest pending event.
func (e *Engine) SetLookahead(d time.Duration) { e.lookahead = d }

// Lookahead returns the registered cross-partition latency bound.
func (e *Engine) Lookahead() time.Duration { return e.lookahead }

// SetWindowScheduler installs ws and routes future events through it. Any
// previously installed scheduler is released first (its events migrate back
// to the engine heap and from there to ws as they are re-offered on the next
// window).
func (e *Engine) SetWindowScheduler(ws WindowScheduler) {
	e.ReleaseScheduler()
	e.ws = ws
}

// ReleaseScheduler detaches the window scheduler, reclaims every event it
// holds onto the engine's own heap, and stops its workers. The engine
// reverts to the plain sequential loop; pending events are preserved.
func (e *Engine) ReleaseScheduler() {
	if e.ws == nil {
		return
	}
	for _, h := range e.ws.DrainAll() {
		e.push(h.ref)
	}
	e.ws.Release()
	e.ws = nil
	e.horizon = 0
}

// SetPartition pins the proc to a home partition: wake events targeting it
// are tagged with that partition regardless of who schedules them. part < 0
// restores the default (inherit the scheduling context's partition).
func (p *Proc) SetPartition(part int) { p.part = int32(part) }

// Partition returns the proc's pinned home partition, or -1 if it inherits.
func (p *Proc) Partition() int { return int(p.part) }

// windowSpan is how far past the earliest pending event a window's horizon
// reaches.
func (e *Engine) windowSpan() Time {
	w := Time(e.lookahead) * lookaheadWindows
	if w <= 0 {
		w = 1
	}
	return w
}

// minPending returns the earliest event held anywhere — scheduler partitions
// or the engine's own heap.
func (e *Engine) minPending() (Time, bool) {
	t, ok := e.ws.MinPending()
	if len(e.events) > 0 {
		if yt := e.events[0].at; !ok || yt < t {
			t, ok = yt, true
		}
	}
	return t, ok
}

// nextBelow consumes and returns the globally earliest event if it falls
// below horizon. The candidate sources are the scheduler's window runs and
// the engine heap (events scheduled during this window, below the horizon);
// ties break on seq, exactly as eventLess does.
func (e *Engine) nextBelow(horizon Time) (*event, bool) {
	var young *event
	if len(e.events) > 0 {
		young = e.events[0]
	}
	if h, ok := e.ws.Peek(); ok {
		if young == nil || h.At < young.at || (h.At == young.at && h.Seq < young.seq) {
			if h.At >= horizon {
				return nil, false
			}
			e.ws.Pop()
			return h.ref, true
		}
	}
	if young == nil || young.at >= horizon {
		return nil, false
	}
	e.pop()
	return young, true
}

// runWindowed is Run's dispatch loop under a window scheduler. Each
// iteration advances one lookahead window: pick the earliest pending event,
// extend the horizon past it, let the partitions pre-sort everything below
// the horizon in parallel (OpenWindow blocks until all of them reach it),
// then replay the window through dispatchOne in global (time, seq) order.
// Stop, interrupt failures and proc failures exit mid-window; the deferred
// Rewind hands unconsumed events back so a later Run (or a snapshot purge)
// sees a consistent queue.
func (e *Engine) runWindowed(until Time) error {
	defer func() {
		e.ws.Rewind()
		e.horizon = 0
	}()
	for !e.stopped {
		next, ok := e.minPending()
		if !ok {
			break
		}
		if until > 0 && next > until {
			e.now = until
			break
		}
		horizon := next + e.windowSpan()
		if horizon <= next {
			horizon = next + 1
		}
		// The horizon is exclusive, so until+1 lets events at exactly
		// `until` dispatch, matching the sequential loop's `at > until` cut.
		if until > 0 && horizon > until+1 {
			horizon = until + 1
		}
		e.horizon = horizon
		e.ws.OpenWindow(horizon)
		for !e.stopped {
			ev, ok := e.nextBelow(horizon)
			if !ok {
				break
			}
			e.dispatchOne(ev)
			if e.failure != nil {
				return e.failure
			}
		}
	}
	return e.failure
}
