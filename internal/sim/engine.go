// Package sim provides a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine advances a virtual clock and dispatches events in (time,
// sequence) order, so two runs of the same program observe identical
// interleavings. Simulated activities are written as ordinary Go functions
// running in Procs (coroutines multiplexed by the engine, exactly one of
// which executes at a time); they consume virtual time with Proc.Sleep and
// synchronize through Events, Gates, Resources and Queues.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string { return time.Duration(t).String() }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not usable;
// use NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan struct{} // procs signal the engine here when parking
	failure error
	stopped bool
	nprocs  int // live (not yet terminated) procs
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at time t (>= Now). fn runs in engine context and
// must not block; to perform blocking work, have fn spawn or wake a Proc.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now. See At for restrictions on fn.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now.Add(d), fn) }

// Spawn starts a new Proc running fn. The proc begins execution at the
// current virtual time (after already-scheduled events at that time).
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{name: name, eng: e, cont: make(chan struct{})}
	e.nprocs++
	go p.run(fn)
	e.At(e.now, func() { p.resume() })
	return p
}

// SpawnAt is Spawn with an explicit start time.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{name: name, eng: e, cont: make(chan struct{})}
	e.nprocs++
	go p.run(fn)
	e.At(t, func() { p.resume() })
	return p
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until the queue is empty, the clock passes until
// (if until > 0), Stop is called, or a proc fails. It returns the first proc
// failure, if any.
func (e *Engine) Run(until Time) error {
	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		if until > 0 && ev.at > until {
			e.now = until
			break
		}
		heap.Pop(&e.events)
		e.now = ev.at
		ev.fn()
		if e.failure != nil {
			return e.failure
		}
	}
	return e.failure
}

// RunAll runs until no events remain.
func (e *Engine) RunAll() error { return e.Run(0) }

func (e *Engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	e.stopped = true
}

// Proc is a simulated thread of control. A Proc's function runs in its own
// goroutine but the engine guarantees that at most one Proc executes at a
// time, handing control back and forth, so Proc code needs no locking of
// simulation state.
type Proc struct {
	name string
	eng  *Engine
	cont chan struct{}
	dead bool
}

// Name returns the proc's name, for traces and errors.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

func (p *Proc) run(fn func(*Proc)) {
	<-p.cont // wait for first resume
	defer func() {
		p.dead = true
		p.eng.nprocs--
		if r := recover(); r != nil {
			p.eng.fail(fmt.Errorf("sim: proc %q panicked: %v", p.name, r))
		}
		p.eng.yield <- struct{}{}
	}()
	fn(p)
}

// resume transfers control from the engine to the proc and waits for it to
// park or terminate. Must only be called from engine context.
func (p *Proc) resume() {
	if p.dead {
		return
	}
	p.cont <- struct{}{}
	<-p.eng.yield
}

// park transfers control from the proc back to the engine and blocks until
// resumed. Must only be called from proc context.
func (p *Proc) park() {
	p.eng.yield <- struct{}{}
	<-p.cont
}

// Sleep advances the proc by d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.At(p.eng.now.Add(d), func() { p.resume() })
	p.park()
}

// Yield reschedules the proc at the current time, letting other events and
// procs scheduled for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }
