// Package sim provides a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine advances a virtual clock and dispatches events in (time,
// sequence) order, so two runs of the same program observe identical
// interleavings. Simulated activities are written as ordinary Go functions
// running in Procs (coroutines multiplexed by the engine, exactly one of
// which executes at a time); they consume virtual time with Proc.Sleep and
// synchronize through Events, Gates, Resources and Queues.
//
// The event queue is built for throughput: event records are recycled
// through a free list, the priority queue is a 4-ary heap specialized to
// *event (shallower than a binary heap, no interface dispatch), and the
// common wake-a-proc operations (Sleep, Gate, Resource, Queue) go through a
// closure-free fast path that stores the target Proc directly in the event.
// None of this changes dispatch order: events still run strictly in
// (time, seq) order, so results are bit-for-bit reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string { return time.Duration(t).String() }

// Event kinds. evFn runs an arbitrary callback; evWake resumes a parked
// Proc without any closure; evTimer is evWake with one level of indirection
// (it schedules the wake instead of performing it), which is what a
// cancellable sleep needs: the cancel path can neuter the timer in place
// and issue its own wake, and the neutered record is discarded when popped
// instead of running a ghost callback.
const (
	evFn uint8 = iota
	evWake
	evTimer
)

type event struct {
	at   Time
	seq  uint64
	gen  uint32 // bumped on every recycle; guards stale cancel handles
	kind uint8
	part int32  // home partition (0 = shared) — see ConfigurePartitions
	proc *Proc  // wake target for evWake/evTimer (nil = neutered timer)
	fn   func() // callback for evFn
}

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Stats are cheap engine counters, maintained unconditionally (they cost a
// few increments per event) and read through Engine.Stats. Wall accumulates
// host time spent inside Run, so Dispatched/Wall.Seconds() is the engine's
// events-per-second and the final virtual clock over Wall is the
// virtual-to-wall-time ratio.
type Stats struct {
	Scheduled    uint64        // events pushed into the queue
	Dispatched   uint64        // events popped and acted upon
	Cancelled    uint64        // neutered timers discarded without running
	ProcSwitches uint64        // engine-to-proc control transfers
	Wall         time.Duration // host time spent inside Run
}

// EventsPerSec returns the dispatch rate over the accumulated wall time,
// or 0 if no wall time has been recorded.
func (s Stats) EventsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Dispatched) / s.Wall.Seconds()
}

// interruptStride is how many dispatched events pass between polls of the
// interrupt check. Large enough that the poll is free next to the dispatch
// work, small enough that a cancelled run stops within microseconds of
// host time. Tests may lower it per engine with SetInterruptStride.
const interruptStride = 4096

// Engine is a discrete-event simulation engine. The zero value is not usable;
// use NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  []*event      // 4-ary min-heap ordered by (at, seq)
	free    []*event      // recycled event records
	yield   chan struct{} // procs signal the engine here when parking
	failure error
	stopped bool
	nprocs  int // live (not yet terminated) procs
	stats   Stats

	procs map[*Proc]struct{} // live procs, for Shutdown

	interrupt     func() error // polled every stride dispatches
	interruptLeft int          // dispatches until the next poll
	stride        int          // poll period; interruptStride unless overridden

	// Partitioned scheduling (see partition.go). All fields are inert until
	// ConfigurePartitions / SetWindowScheduler are called, and the engine
	// stays byte-identical to the unpartitioned one either way.
	npart     int32           // partition count; 0 = partitioning disabled
	curPart   int32           // partition tag inherited by newly scheduled events
	partDisp  []uint64        // per-partition dispatch counters (len == npart)
	ws        WindowScheduler // nil = plain sequential Run
	horizon   Time            // events at/after this are offered to ws
	lookahead time.Duration   // cross-partition latency bound, from soc
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{
		yield:  make(chan struct{}),
		procs:  make(map[*Proc]struct{}),
		stride: interruptStride,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// LiveProcs returns how many spawned procs have not yet terminated. The
// chaos convergence oracle compares it against the fault-free run: a proc
// parked forever after recovery shows up as a surplus here.
func (e *Engine) LiveProcs() int { return e.nprocs }

// alloc takes an event record off the free list (or makes one), stamps it
// with the next sequence number and returns it ready to push.
func (e *Engine) alloc(t Time, kind uint8, p *Proc, fn func()) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(event)
	}
	if t < e.now {
		t = e.now
	}
	part := e.curPart
	if p != nil && p.part >= 0 {
		part = p.part // wakes belong to the woken proc's home partition
	}
	if part < 0 || (e.npart > 0 && part >= e.npart) {
		part = 0
	}
	e.seq++
	ev.at, ev.seq, ev.kind, ev.part, ev.proc, ev.fn = t, e.seq, kind, part, p, fn
	return ev
}

// release recycles a dispatched (or discarded) event. The generation bump
// invalidates any outstanding cancel handle to the old occupant.
func (e *Engine) release(ev *event) {
	ev.proc = nil
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// push inserts ev into the 4-ary heap.
func (e *Engine) push(ev *event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
	e.events = h
}

// enqueue routes a freshly allocated event: under a window scheduler, events
// at or beyond the current horizon are offered to their home partition's
// sub-heap; everything else (including all events when no scheduler is
// installed) goes on the engine's own heap. Routing never affects dispatch
// order — the merge stage in runWindowed consults both sources — so the
// choice of partition only moves heap-maintenance work, not observable
// behavior.
func (e *Engine) enqueue(ev *event) {
	e.stats.Scheduled++
	if e.ws != nil && ev.at >= e.horizon {
		e.ws.Offer(EventHandle{At: ev.at, Seq: ev.seq, Part: ev.part, ref: ev})
		return
	}
	e.push(ev)
}

// pop removes and returns the earliest event.
func (e *Engine) pop() *event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			best := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if eventLess(h[j], h[best]) {
					best = j
				}
			}
			if !eventLess(h[best], last) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	e.events = h
	return top
}

// At schedules fn to run at time t (>= Now). fn runs in engine context and
// must not block; to perform blocking work, have fn spawn or wake a Proc.
func (e *Engine) At(t Time, fn func()) {
	e.enqueue(e.alloc(t, evFn, nil, fn))
}

// After schedules fn to run d from now. See At for restrictions on fn.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now.Add(d), fn) }

// wakeAt schedules a closure-free resume of p at time t. It is the fast
// path under Sleep, Gate, Resource and Queue wakeups.
func (e *Engine) wakeAt(t Time, p *Proc) {
	e.enqueue(e.alloc(t, evWake, p, nil))
}

// timerAt schedules a cancellable wake of p at time t: when dispatched it
// schedules an immediate evWake (matching the two-step wake the cancellable
// sleep has always used), and until then it can be neutered in place by
// cancelTimer. Callers must capture ev.gen alongside the returned event to
// detect recycling.
func (e *Engine) timerAt(t Time, p *Proc) *event {
	ev := e.alloc(t, evTimer, p, nil)
	e.enqueue(ev)
	return ev
}

// cancelTimer neuters the pending timer ev if (and only if) the handle
// still refers to the same armed timer: same generation, still a timer,
// still targeting p. It reports whether the timer was cancelled; a false
// return means the timer already fired (or the record was recycled) and the
// cancel must do nothing.
func (e *Engine) cancelTimer(ev *event, gen uint32, p *Proc) bool {
	if ev.gen != gen || ev.kind != evTimer || ev.proc != p {
		return false
	}
	ev.proc = nil // discarded, not dispatched, when popped
	return true
}

// Spawn starts a new Proc running fn. The proc begins execution at the
// current virtual time (after already-scheduled events at that time).
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is Spawn with an explicit start time.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{name: name, eng: e, cont: make(chan struct{}), part: -1}
	e.nprocs++
	e.procs[p] = struct{}{}
	go p.run(fn)
	e.wakeAt(t, p)
	return p
}

// Stop makes Run return after the current event completes. The stop applies
// to the current Run only: a later Run call starts fresh, so an engine can be
// paused at a barrier (e.g. the boot-ready quiesce point) and resumed.
func (e *Engine) Stop() { e.stopped = true }

// SetInterrupt installs a cooperative cancellation check, polled once every
// few thousand dispatched events inside Run. A non-nil return stops the run
// with that error, exactly as a proc failure would. The check runs outside
// the (time, seq) dispatch order, so installing one never changes what a
// completed run computes — it only bounds how long an abandoned run keeps
// dispatching. A nil check removes the hook.
func (e *Engine) SetInterrupt(check func() error) {
	e.interrupt = check
	e.interruptLeft = e.stride
}

// SetInterruptStride overrides how many dispatches pass between interrupt
// polls. It exists for tests (e.g. proving that stride-1 polling does not
// perturb dispatch order); production code should leave the default. n <= 0
// restores the default stride.
func (e *Engine) SetInterruptStride(n int) {
	if n <= 0 {
		n = interruptStride
	}
	e.stride = n
	if e.interruptLeft > n {
		e.interruptLeft = n
	}
}

// Shutdown unwinds every live proc so its goroutine exits, then marks the
// engine stopped. It must be called from engine context (never from proc
// code) and is intended for abandoning a cancelled or failed run without
// leaking the goroutines of parked procs; the engine is unusable afterwards.
func (e *Engine) Shutdown() {
	e.ReleaseScheduler() // stop worker goroutines before abandoning the run
	e.stopped = true
	// Killing a proc runs its deferred cleanup, which may legally spawn or
	// wake others; iterate until the population is stable.
	for i := 0; i < 1000 && len(e.procs) > 0; i++ {
		for p := range e.procs {
			p.killed = true
			p.resume()
		}
	}
}

// dispatchOne advances the clock to ev and acts on it, then polls the
// interrupt hook on its stride. It is the single dispatch path shared by the
// sequential Run loop and the windowed merge loop in runWindowed, which is
// what makes the two modes byte-identical: every event passes through the
// same code in the same (time, seq) order either way.
func (e *Engine) dispatchOne(ev *event) {
	e.now = ev.at
	e.curPart = ev.part
	switch ev.kind {
	case evWake:
		p := ev.proc
		e.release(ev)
		e.stats.Dispatched++
		e.countPart()
		p.resume()
	case evTimer:
		p := ev.proc
		e.release(ev)
		if p == nil { // neutered by a cancel: discard silently
			e.stats.Cancelled++
			break
		}
		e.stats.Dispatched++
		e.countPart()
		e.wakeAt(e.now, p)
	default:
		fn := ev.fn
		e.release(ev)
		e.stats.Dispatched++
		e.countPart()
		fn()
	}
	if e.interrupt != nil {
		if e.interruptLeft--; e.interruptLeft <= 0 {
			e.interruptLeft = e.stride
			if err := e.interrupt(); err != nil {
				e.fail(err)
			}
		}
	}
}

// countPart attributes the dispatch that just happened to its partition.
// Maintained only once ConfigurePartitions has sized the counters.
func (e *Engine) countPart() {
	if len(e.partDisp) == 0 {
		return
	}
	p := e.curPart
	if p < 0 || int(p) >= len(e.partDisp) {
		p = 0
	}
	e.partDisp[p]++
}

// Run dispatches events until the queue is empty, the clock passes until
// (if until > 0), Stop is called, or a proc fails. It returns the first proc
// failure, if any. With a window scheduler installed the dispatch is driven
// by the partitioned merge loop instead; observable behavior is identical.
func (e *Engine) Run(until Time) error {
	start := time.Now()
	defer func() { e.stats.Wall += time.Since(start) }()
	e.stopped = false
	if e.ws != nil {
		return e.runWindowed(until)
	}
	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		if until > 0 && ev.at > until {
			e.now = until
			break
		}
		e.pop()
		e.dispatchOne(ev)
		if e.failure != nil {
			return e.failure
		}
	}
	return e.failure
}

// RunAll runs until no events remain.
func (e *Engine) RunAll() error { return e.Run(0) }

func (e *Engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	e.stopped = true
}

// Proc is a simulated thread of control. A Proc's function runs in its own
// goroutine but the engine guarantees that at most one Proc executes at a
// time, handing control back and forth, so Proc code needs no locking of
// simulation state.
type Proc struct {
	name   string
	eng    *Engine
	cont   chan struct{}
	dead   bool
	killed bool  // set by Engine.Shutdown; makes the next resume unwind
	part   int32 // home partition; -1 = inherit the scheduling context's
}

// errProcKilled is the sentinel panic value that unwinds a killed proc's
// stack during Engine.Shutdown. It is never reported as a failure.
var errProcKilled = fmt.Errorf("sim: proc killed by engine shutdown")

// Name returns the proc's name, for traces and errors.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

func (p *Proc) run(fn func(*Proc)) {
	<-p.cont // wait for first resume
	defer func() {
		p.dead = true
		p.eng.nprocs--
		delete(p.eng.procs, p)
		if r := recover(); r != nil && r != errProcKilled {
			p.eng.fail(fmt.Errorf("sim: proc %q panicked: %v", p.name, r))
		}
		p.eng.yield <- struct{}{}
	}()
	if p.killed {
		panic(errProcKilled)
	}
	fn(p)
}

// resume transfers control from the engine to the proc and waits for it to
// park or terminate. Must only be called from engine context.
func (p *Proc) resume() {
	if p.dead {
		return
	}
	p.eng.stats.ProcSwitches++
	p.cont <- struct{}{}
	<-p.eng.yield
}

// park transfers control from the proc back to the engine and blocks until
// resumed. Must only be called from proc context.
func (p *Proc) park() {
	p.eng.yield <- struct{}{}
	<-p.cont
	if p.killed {
		panic(errProcKilled)
	}
}

// Sleep advances the proc by d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.wakeAt(p.eng.now.Add(d), p)
	p.park()
}

// Yield reschedules the proc at the current time, letting other events and
// procs scheduled for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }
