package sim

import (
	"testing"
	"time"
)

func TestEngineStatsCounts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.Spawn("p", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Sleep(time.Millisecond)
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	// 5 fn events + 1 spawn wake + 2 sleep wakes.
	if st.Scheduled != 8 || st.Dispatched != 8 {
		t.Fatalf("scheduled/dispatched = %d/%d, want 8/8", st.Scheduled, st.Dispatched)
	}
	// One engine-to-proc transfer for the spawn and one per sleep wake;
	// termination happens inside the final transfer.
	if st.ProcSwitches != 3 {
		t.Fatalf("proc switches = %d, want 3", st.ProcSwitches)
	}
	if st.Cancelled != 0 {
		t.Fatalf("cancelled = %d, want 0", st.Cancelled)
	}
	if st.Wall <= 0 {
		t.Fatalf("wall = %v, want > 0", st.Wall)
	}
	if st.EventsPerSec() <= 0 {
		t.Fatalf("events/sec = %v, want > 0", st.EventsPerSec())
	}
}

func TestCancelledSleepLeavesNoGhostEvent(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	e.Spawn("s", func(p *Proc) {
		if p.SleepOrCancel(10*time.Millisecond, ev) {
			t.Error("sleep completed despite cancel")
		}
	})
	e.At(Time(time.Millisecond), func() { ev.Fire() })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want exactly the neutered sleep timer", st.Cancelled)
	}
	// The neutered timer must still have been drained from the queue.
	if len(e.events) != 0 {
		t.Fatalf("%d events left in queue", len(e.events))
	}
}

// TestStaleCancelDoesNotCorruptRecycledTimer arms a cancellable sleep,
// completes it, then reuses the engine (recycling the timer record) for a
// second cancellable sleep before firing the FIRST sleep's cancel event. The
// stale cancel must not neuter the second sleep's timer.
func TestStaleCancelDoesNotCorruptRecycledTimer(t *testing.T) {
	e := NewEngine()
	ev1, ev2 := NewEvent(e), NewEvent(e)
	var first, second bool
	e.Spawn("s", func(p *Proc) {
		first = p.SleepOrCancel(time.Millisecond, ev1)
		second = p.SleepOrCancel(10*time.Millisecond, ev2)
	})
	// Fire ev1 while the SECOND sleep is pending: its timer record may be
	// the recycled record of the first.
	e.At(Time(5*time.Millisecond), func() { ev1.Fire() })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !first {
		t.Fatal("first sleep should have completed before its cancel fired")
	}
	if !second {
		t.Fatal("second sleep was cancelled by the first sleep's stale cancel")
	}
	if e.Now() != Time(11*time.Millisecond) {
		t.Fatalf("final time = %v, want 11ms", e.Now())
	}
}

// TestEventPoolPreservesOrder exercises heavy recycle pressure: interleaved
// timers, sleeps and callbacks must still dispatch in (time, seq) order.
func TestEventPoolPreservesOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for round := 0; round < 50; round++ {
		base := Time(round) * Time(time.Millisecond)
		for i := 4; i >= 0; i-- {
			at := base + Time(i)*Time(100*time.Microsecond)
			e.At(at, func() { got = append(got, e.Now()) })
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 250 {
		t.Fatalf("dispatched %d events, want 250", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("dispatch order regressed at %d: %v after %v", i, got[i], got[i-1])
		}
	}
	if free := len(e.free); free == 0 {
		t.Fatal("free list empty after heavy recycling; pool not engaged")
	}
}

// TestFourAryHeapOrdering drives the specialized heap through adversarial
// same-time bursts: ties must break strictly by schedule order.
func TestFourAryHeapOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	for _, at := range []Time{7, 3, 3, 9, 1, 3, 7, 1, 0, 9, 5} {
		e.At(at, func() { got = append(got, int(e.Now())) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 3, 3, 3, 5, 7, 7, 9, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch times = %v, want %v", got, want)
		}
	}
}
