package irq

import (
	"testing"
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
)

var sharedLines = []soc.IRQLine{soc.IRQDMA, soc.IRQBlock, soc.IRQNet}

func TestBootRoutesToStrong(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	r := NewRouter(s, sharedLines)
	for _, l := range sharedLines {
		d, ok := r.HandlerDomain(l)
		if !ok || d != soc.Strong {
			t.Fatalf("line %d handler = %v/%v, want strong", l, d, ok)
		}
	}
}

func TestMasksFlipOnStrongPowerTransitions(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	r := NewRouter(s, sharedLines)
	// Let both domains go inactive (nothing runs).
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if s.Domains[soc.Strong].State() != soc.DomInactive {
		t.Fatal("strong should be inactive")
	}
	for _, l := range sharedLines {
		d, ok := r.HandlerDomain(l)
		if !ok || d != soc.Weak {
			t.Fatalf("line %d handler = %v/%v after strong sleep, want weak", l, d, ok)
		}
	}
	// Wake the strong domain: masks must flip back. Check shortly after
	// the wake completes (before the next inactivity timeout re-suspends).
	s.Domains[soc.Strong].Wake()
	if err := e.Run(e.Now() + sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	for _, l := range sharedLines {
		d, ok := r.HandlerDomain(l)
		if !ok || d != soc.Strong {
			t.Fatalf("line %d handler = %v/%v after wake, want strong", l, d, ok)
		}
	}
}

func TestSharedIRQNeverWakesInactiveStrong(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	NewRouter(s, sharedLines)
	weakGot := 0
	s.IRQ[soc.Weak].SetHandler(func(line soc.IRQLine) { weakGot++ })
	s.IRQ[soc.Strong].SetHandler(func(line soc.IRQLine) {})
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	wakes := s.Domains[soc.Strong].WakeCount()
	s.Raise(soc.IRQDMA)
	if err := e.Run(sim.Time(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if s.Domains[soc.Strong].WakeCount() != wakes {
		t.Fatal("shared interrupt woke the inactive strong domain (violates §7 rule 1)")
	}
	if weakGot != 1 {
		t.Fatalf("weak handled %d interrupts, want 1", weakGot)
	}
}

func TestSingleRouterKeepsStrongOwnership(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	r := NewSingleRouter(s, sharedLines)
	if err := e.Run(sim.Time(time.Minute)); err != nil { // strong suspends
		t.Fatal(err)
	}
	// Linux baseline: the strong domain still owns the lines (and will be
	// woken by them — the inefficiency K2 removes).
	for _, l := range sharedLines {
		d, ok := r.HandlerDomain(l)
		if !ok || d != soc.Strong {
			t.Fatalf("baseline handler for line %d = %v/%v, want strong", l, d, ok)
		}
	}
	strongGot := 0
	s.IRQ[soc.Strong].SetHandler(func(line soc.IRQLine) { strongGot++ })
	s.Raise(soc.IRQNet)
	if err := e.Run(sim.Time(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if strongGot != 1 {
		t.Fatal("baseline strong did not handle after wake")
	}
	if s.Domains[soc.Strong].WakeCount() == 0 {
		t.Fatal("baseline interrupt should wake the strong domain")
	}
}

func TestExactlyOneHandlerAlways(t *testing.T) {
	// §7: if multiple kernels compete for the same interrupt signal,
	// peripherals may enter incorrect states. Exercise many transitions
	// and assert the single-handler property at every step.
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	r := NewRouter(s, sharedLines)
	check := func(when string) {
		for _, l := range sharedLines {
			if _, ok := r.HandlerDomain(l); !ok {
				t.Fatalf("%s: line %d has zero or two handlers", when, l)
			}
		}
	}
	check("boot")
	for i := 0; i < 5; i++ {
		if err := e.Run(e.Now() + sim.Time(10*time.Second)); err != nil {
			t.Fatal(err)
		}
		check("after sleep")
		s.Domains[soc.Strong].Wake()
		if err := e.Run(e.Now() + sim.Time(time.Second)); err != nil {
			t.Fatal(err)
		}
		check("after wake")
	}
}
