package irq

// RouterState is the router's checkpointable state. The per-domain mask
// bits themselves live in the SoC's interrupt controllers and are captured
// with the platform; the router only owns the flip counter (its policy hooks
// are re-installed by construction).
type RouterState struct {
	Flips int
}

// CaptureState records the router's state.
func (r *Router) CaptureState() RouterState { return RouterState{Flips: r.Flips} }

// RestoreState rewinds the router onto a captured state.
func (r *Router) RestoreState(st RouterState) { r.Flips = st.Flips }
