// Package irq implements K2's shared-interrupt management (§7).
//
// IO peripheral interrupts are physically wired to all coherence domains;
// K2 must ensure each is handled by exactly one kernel. The rules: shared
// interrupts never wake the strong domain from an inactive state (a shadow
// kernel handles them then), and while the strong domain is awake the main
// kernel handles all shared interrupts. K2 implements this with hooks in
// the power-management code that flip the per-domain interrupt controller
// masks on strong-domain power transitions. With several weak domains the
// designated handler while the strong domain sleeps is the first weak domain
// — still exactly one unmasked controller per line.
package irq

import "k2/internal/soc"

// Router owns the masking policy for the shared interrupt lines.
type Router struct {
	s     *soc.SoC
	lines []soc.IRQLine
	// single, if true, pins all shared interrupts to the strong domain
	// (the Linux baseline, which has no shadow kernel).
	single bool

	// Flips counts mask flips (two per strong-domain power transition).
	Flips int
}

// NewRouter installs K2's masking rules for the given shared lines. At boot
// every shadow kernel masks all shared interrupts locally; the hooks flip
// masks when the strong domain suspends or wakes.
func NewRouter(s *soc.SoC, lines []soc.IRQLine) *Router {
	r := &Router{s: s, lines: lines}
	r.maskWeak()
	strong := s.Domains[soc.Strong]
	prevWake, prevSleep := strong.OnWake, strong.OnSleep
	strong.OnWake = func() {
		if prevWake != nil {
			prevWake()
		}
		r.maskWeak()
	}
	strong.OnSleep = func() {
		if prevSleep != nil {
			prevSleep()
		}
		r.maskStrong()
	}
	return r
}

// NewSingleRouter pins all shared interrupts to the strong domain — the
// configuration of the unmodified Linux baseline.
func NewSingleRouter(s *soc.SoC, lines []soc.IRQLine) *Router {
	r := &Router{s: s, lines: lines, single: true}
	r.maskWeak()
	return r
}

// shadowHandler is the weak domain designated to take shared interrupts
// while the strong domain is inactive.
func (r *Router) shadowHandler() soc.DomainID { return soc.Weak }

// maskWeak directs shared interrupts to the strong domain.
func (r *Router) maskWeak() {
	for _, k := range r.s.WeakDomains() {
		r.s.IRQ[k].MaskAll(r.lines)
	}
	r.s.IRQ[soc.Strong].UnmaskAll(r.lines)
	r.Flips++
}

// maskStrong directs shared interrupts to the designated weak domain
// (strong is inactive and must not be woken by them).
func (r *Router) maskStrong() {
	if r.single {
		return // Linux: nobody else can take them
	}
	r.s.IRQ[soc.Strong].MaskAll(r.lines)
	r.s.IRQ[r.shadowHandler()].UnmaskAll(r.lines)
	r.Flips++
}

// HandlerDomain reports which domain currently has line unmasked; exactly
// one domain must, or the peripherals could observe competing handlers.
func (r *Router) HandlerDomain(line soc.IRQLine) (soc.DomainID, bool) {
	owner := soc.DomainID(0)
	unmasked := 0
	for id := range r.s.IRQ {
		if !r.s.IRQ[id].Masked(line) {
			owner = soc.DomainID(id)
			unmasked++
		}
	}
	if unmasked != 1 {
		return 0, false
	}
	return owner, true
}
