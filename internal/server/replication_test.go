package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestReplicationJob drives a narrowed replication job through the HTTP
// API end to end: the replicas field is validated and echoed, the job's
// table reports the single requested degree, the replica counters land in
// /metrics, and a repeat submit is served from the result cache — while a
// different degree misses it (replicas is part of the cache key).
func TestReplicationJob(t *testing.T) {
	if testing.Short() {
		t.Skip("replication sweep in -short")
	}
	s, ts := newTestServer(t, Config{Parallel: 2, QueueDepth: 8})

	submit := func(body string) Status {
		t.Helper()
		resp, st := postJob(t, ts, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %q = %d", body, resp.StatusCode)
		}
		code, raw := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"?wait=120")
		if code != http.StatusOK {
			t.Fatalf("poll = %d", code)
		}
		var got Status
		if err := json.Unmarshal([]byte(raw), &got); err != nil {
			t.Fatal(err)
		}
		if got.State != StateDone {
			t.Fatalf("replication job = %+v", got)
		}
		return got
	}

	req := `{"experiment":"replication","seed":1,"weak_domains":8,"sweep":1,"replicas":3}`
	got := submit(req)
	if got.Replicas != 3 {
		t.Fatalf("status did not echo replicas: %+v", got)
	}
	if !strings.Contains(got.Result.Table, "NMR voting") {
		t.Fatalf("replication table:\n%s", got.Result.Table)
	}
	if n := strings.Count(got.Result.Table, "\n3  "); n != 1 ||
		strings.Contains(got.Result.Table, "\n1  ") {
		t.Fatalf("table not narrowed to R=3:\n%s", got.Result.Table)
	}
	if strings.Contains(got.Result.Table, "FAIL") {
		t.Fatalf("oracle violations:\n%s", got.Result.Table)
	}

	code, metricsBody := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"k2d_replica_votes_total",
		"k2d_replica_outvoted_total",
		"k2d_replica_reintegrations_total",
		"k2d_replica_failures_total 0",
		"k2d_replica_storms_total 1",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metricsBody)
		}
	}
	var votes uint64
	s.metrics.mu.Lock()
	votes = s.metrics.replicaVotes
	s.metrics.mu.Unlock()
	if votes == 0 {
		t.Fatal("finished replication job contributed no votes to /metrics")
	}

	// Byte-identical repeat: a cache hit (same replicas), then a miss for a
	// different degree.
	before := s.cache.stats()
	again := submit(req)
	after := s.cache.stats()
	if after.hits != before.hits+1 {
		t.Fatalf("repeat submit missed the cache: %+v -> %+v", before, after)
	}
	if again.Result.Table != got.Result.Table {
		t.Fatal("cached replication table is not byte-identical")
	}
	other := submit(`{"experiment":"replication","seed":1,"weak_domains":8,"sweep":1,"replicas":2}`)
	if other.Result.Table == got.Result.Table {
		t.Fatal("R=2 job served R=3's cached bytes — replicas missing from the cache key")
	}
}
