package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"k2/internal/dsm"
	"k2/internal/experiment"
	"k2/internal/soc"
	"k2/internal/stats"
)

// metrics is the daemon's observability surface, rendered as Prometheus
// text exposition on GET /metrics. It is deliberately dependency-free: a
// mutex, a few counters, and per-experiment latency histograms built on
// internal/stats.
type metrics struct {
	mu        sync.Mutex
	submitted uint64
	rejected  uint64                      // admission-control sheds (429s)
	completed map[State]uint64            // terminal states
	latency   map[string]*stats.Histogram // job wall time by experiment ID

	// Engine counters summed over every finished job's Result. Cache hits
	// contribute nothing here: they simulated nothing.
	engineEvents   uint64
	engineSwitches uint64
	virtualNS      uint64
	// partitionEvents sums each job's per-partition dispatch counters,
	// index-aligned with sim's partition numbering (0 = shared, then one
	// per coherence domain). Rendered with soc.PartitionName labels so
	// partition imbalance under -engine-parallel is observable.
	partitionEvents []uint64

	// warmStarts counts boots served by restoring a checkpoint instead of
	// booting cold, summed over every finished job.
	warmStarts uint64

	// DSM coherence counters summed over every finished job's booted
	// systems, plus how many finished jobs ran the MSI protocol.
	dsm     dsm.Counters
	msiJobs uint64

	// Chaos-sweep tallies summed over every finished chaos job.
	chaosStorms   uint64            // storms simulated
	chaosFailures uint64            // storms with at least one violation
	chaosPass     map[string]uint64 // oracle verdicts by oracle family
	chaosFail     map[string]uint64

	// Replication-ablation tallies summed over every finished replication
	// job: votes accepted by the strong-kernel voter, replicas outvoted
	// (flagged for any reason), and replicas re-integrated from voted state.
	replicaVotes    uint64
	replicaOutvoted uint64
	replicaReints   uint64
	replicaStorms   uint64
	replicaFailures uint64 // storm runs with at least one violation
	replicaMasked   uint64 // outvotes implicated by an injected fault
}

func newMetrics() *metrics {
	return &metrics{
		completed: make(map[State]uint64),
		latency:   make(map[string]*stats.Histogram),
		chaosPass: make(map[string]uint64),
		chaosFail: make(map[string]uint64),
	}
}

func (m *metrics) recordSubmitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *metrics) recordRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// recordFinished tallies a terminal job; res may be nil (cancelled while
// queued). A job served from the result cache counts as completed but
// contributes no engine, latency or chaos telemetry — it replayed a prior
// run's bytes without simulating anything.
func (m *metrics) recordFinished(id string, state State, res *experiment.Result, fromCache bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed[state]++
	if res == nil || fromCache {
		return
	}
	m.warmStarts += uint64(res.WarmStarts)
	if c, msi := res.DSMCounters(); c != (dsm.Counters{}) || msi {
		m.dsm.Add(c)
		if msi {
			m.msiJobs++
		}
	}
	m.engineEvents += res.Stats.Dispatched
	m.engineSwitches += res.Stats.ProcSwitches
	m.virtualNS += uint64(res.Virtual)
	for len(m.partitionEvents) < len(res.PartitionEvents) {
		m.partitionEvents = append(m.partitionEvents, 0)
	}
	for i, n := range res.PartitionEvents {
		m.partitionEvents[i] += n
	}
	if state == StateDone {
		h := m.latency[id]
		if h == nil {
			h = stats.NewHistogram(0)
			m.latency[id] = h
		}
		h.Observe(res.Wall)
	}
	if cd := res.ChaosResult(); cd != nil {
		// Chaos runs own their engines outside the probe; their DSM totals
		// arrive through the sweep summary instead.
		if cd.DSM != nil {
			m.dsm.Add(*cd.DSM)
		}
		if cd.Protocol == dsm.MSI.String() {
			m.msiJobs++
		}
		m.chaosStorms += uint64(cd.Sweep)
		m.chaosFailures += uint64(cd.Failures)
		for orc, n := range cd.OraclePass {
			m.chaosPass[orc] += uint64(n)
		}
		for orc, n := range cd.OracleFail {
			m.chaosFail[orc] += uint64(n)
		}
	}
	if rd := res.ReplicationResult(); rd != nil {
		for _, c := range rd.Cases {
			m.replicaVotes += c.Votes
			m.replicaOutvoted += uint64(c.Outvoted)
			m.replicaReints += c.Reintegrations
			m.replicaStorms += uint64(c.Storms)
			m.replicaFailures += uint64(c.Failures)
			m.replicaMasked += uint64(c.MaskedFaults)
		}
	}
}

// retryEstimate turns the shed moment's queue state into an honest
// Retry-After: the queued work ahead of the client divided over the worker
// pool, priced at the shed experiment's recent P50 job latency. With no
// latency observed for that experiment yet, the slowest known P50 stands
// in (pessimism beats a retry storm); with no data at all, 1 second. The
// result is clamped to [1, 60] whole seconds — the floor because a
// sub-second hint rounds to "hammer immediately", the ceiling because the
// estimate is a hint, not a lease.
func (m *metrics) retryEstimate(experiment string, queueDepth, parallel int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	p50 := time.Duration(0)
	if h := m.latency[experiment]; h != nil {
		p50 = h.P50()
	}
	if p50 == 0 {
		for _, h := range m.latency {
			if v := h.P50(); v > p50 {
				p50 = v
			}
		}
	}
	if p50 == 0 || parallel < 1 {
		return 1
	}
	rounds := (queueDepth + parallel) / parallel // queued work plus the slot ahead
	secs := int(math.Ceil((time.Duration(rounds) * p50).Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// render writes the Prometheus text exposition. Gauges the metrics struct
// does not own (queue depth, in-flight, draining) come in as arguments.
func (m *metrics) render(w io.Writer, queueDepth, inflight int, draining bool, cs cacheStats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("k2d_jobs_submitted_total", "Jobs admitted to the queue.", m.submitted)
	counter("k2d_jobs_rejected_total", "Jobs shed by admission control (429).", m.rejected)

	fmt.Fprintf(w, "# HELP k2d_jobs_completed_total Jobs by terminal state.\n# TYPE k2d_jobs_completed_total counter\n")
	for _, st := range []State{StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "k2d_jobs_completed_total{state=%q} %d\n", string(st), m.completed[st])
	}

	gauge("k2d_queue_depth", "Jobs waiting for a worker.", queueDepth)
	gauge("k2d_jobs_inflight", "Jobs currently simulating.", inflight)
	d := 0
	if draining {
		d = 1
	}
	gauge("k2d_draining", "1 once graceful shutdown has begun.", d)

	counter("k2d_chaos_storms_total", "Chaos storms simulated across all finished chaos jobs.", m.chaosStorms)
	counter("k2d_chaos_failures_total", "Chaos storms with at least one oracle violation.", m.chaosFailures)
	oracles := make(map[string]bool)
	for orc := range m.chaosPass {
		oracles[orc] = true
	}
	for orc := range m.chaosFail {
		oracles[orc] = true
	}
	orcIDs := make([]string, 0, len(oracles))
	for orc := range oracles {
		orcIDs = append(orcIDs, orc)
	}
	sort.Strings(orcIDs)
	fmt.Fprintf(w, "# HELP k2d_chaos_oracle_total Per-oracle verdicts across all finished chaos jobs.\n# TYPE k2d_chaos_oracle_total counter\n")
	for _, orc := range orcIDs {
		fmt.Fprintf(w, "k2d_chaos_oracle_total{oracle=%q,result=\"pass\"} %d\n", orc, m.chaosPass[orc])
		fmt.Fprintf(w, "k2d_chaos_oracle_total{oracle=%q,result=\"fail\"} %d\n", orc, m.chaosFail[orc])
	}

	counter("k2d_replica_votes_total", "Replica votes accepted by the strong-kernel voter across all finished replication jobs.", m.replicaVotes)
	counter("k2d_replica_outvoted_total", "Replicas outvoted (crashed, silent or diverged) across all finished replication jobs.", m.replicaOutvoted)
	counter("k2d_replica_reintegrations_total", "Outvoted replicas re-integrated from voted state onto fresh domains.", m.replicaReints)
	counter("k2d_replica_storms_total", "Storm runs simulated across all finished replication jobs.", m.replicaStorms)
	counter("k2d_replica_failures_total", "Replication storm runs with at least one oracle violation.", m.replicaFailures)
	counter("k2d_replica_masked_faults_total", "Outvotes implicated by an injected fault (masked, not repaired).", m.replicaMasked)

	counter("k2d_cache_hits_total", "Jobs served byte-identically from the result cache.", cs.hits)
	counter("k2d_cache_misses_total", "Cache lookups that had to simulate.", cs.misses)
	counter("k2d_cache_evictions_total", "Result-cache entries evicted by the LRU bound.", cs.evictions)
	gauge("k2d_cache_entries", "Results currently cached.", cs.entries)
	gauge("k2d_cache_bytes", "Approximate bytes retained by the result cache.", cs.bytes)
	counter("k2d_warm_starts_total", "Boots served by restoring a checkpoint instead of booting cold.", m.warmStarts)

	counter("k2d_dsm_faults_total", "DSM faults across all finished jobs' booted systems.", uint64(m.dsm.Faults))
	counter("k2d_dsm_read_faults_total", "DSM read faults resolved by installing a Shared replica (MSI).", uint64(m.dsm.ReadFaults))
	counter("k2d_dsm_write_faults_total", "DSM write faults that invalidated sharers before granting ownership (MSI).", uint64(m.dsm.WriteFaults))
	counter("k2d_dsm_claims_total", "DSM faults resolved locally against inactive peers (no mailbox traffic).", uint64(m.dsm.Claims))
	counter("k2d_dsm_invalidations_sent_total", "Invalidation requests sent to Shared replica holders (MSI).", uint64(m.dsm.InvalidationsSent))
	counter("k2d_dsm_invalidations_acked_total", "Invalidation acknowledgements received from sharers (MSI).", uint64(m.dsm.InvalidationsAcked))
	counter("k2d_dsm_probowner_hops_total", "Forwarding hops taken chasing stale probOwner hints (MSI).", uint64(m.dsm.ProbOwnerHops))
	counter("k2d_dsm_resends_total", "DSM requests resent after an owner timeout.", uint64(m.dsm.Resends))
	counter("k2d_dsm_dead_reclaims_total", "Pages reclaimed from crashed kernels by recovery sweeps.", uint64(m.dsm.DeadReclaims))
	counter("k2d_msi_jobs_total", "Finished jobs that ran the MSI read-replication protocol.", m.msiJobs)

	counter("k2d_engine_events_dispatched_total", "Simulation events dispatched across all finished jobs.", m.engineEvents)
	counter("k2d_engine_proc_switches_total", "Engine-to-proc control transfers across all finished jobs.", m.engineSwitches)
	counter("k2d_engine_virtual_ns_total", "Virtual nanoseconds simulated across all finished jobs.", m.virtualNS)
	if len(m.partitionEvents) > 0 {
		fmt.Fprintf(w, "# HELP k2d_engine_partition_events_total Events dispatched by home partition (coherence domain) across all finished jobs.\n# TYPE k2d_engine_partition_events_total counter\n")
		for i, n := range m.partitionEvents {
			fmt.Fprintf(w, "k2d_engine_partition_events_total{domain=%q} %d\n", soc.PartitionName(i), n)
		}
	}

	ids := make([]string, 0, len(m.latency))
	for id := range m.latency {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(w, "# HELP k2d_job_latency_seconds Wall-clock latency of completed jobs by experiment.\n# TYPE k2d_job_latency_seconds summary\n")
	for _, id := range ids {
		h := m.latency[id]
		for _, q := range []struct {
			label string
			v     time.Duration
		}{{"0.5", h.P50()}, {"0.95", h.P95()}, {"0.99", h.P99()}} {
			fmt.Fprintf(w, "k2d_job_latency_seconds{experiment=%q,quantile=%q} %g\n",
				id, q.label, q.v.Seconds())
		}
		fmt.Fprintf(w, "k2d_job_latency_seconds_sum{experiment=%q} %g\n", id, h.Sum()/1e9)
		fmt.Fprintf(w, "k2d_job_latency_seconds_count{experiment=%q} %d\n", id, h.N())
	}
}
