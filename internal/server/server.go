package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"k2/internal/dsm"
	"k2/internal/experiment"
)

// Config sizes the daemon.
type Config struct {
	// Parallel is the worker-pool size (concurrent jobs); <= 0 means
	// GOMAXPROCS — the same default as k2bench -parallel.
	Parallel int
	// QueueDepth bounds the admission queue; a full queue sheds load
	// with ErrQueueFull (HTTP 429). <= 0 means 64.
	QueueDepth int
	// JobTimeout bounds a job's host run time when its request does not
	// carry its own timeout_ms; 0 means no default bound.
	JobTimeout time.Duration
	// Seed is the default fault-injection seed for jobs that do not set
	// one; 0 means the package default (experiment.FaultSeed).
	Seed int64
	// TraceEvents bounds the per-job trace log; <= 0 means 16384.
	TraceEvents int
	// MaxFinished bounds how many terminal jobs stay queryable; the
	// oldest are evicted first. <= 0 means 1024.
	MaxFinished int
	// CacheSize bounds the deterministic result cache (entries): repeat
	// jobs with the same (experiment, seed, weak_domains, sweep) are
	// served byte-identically from the cache without simulating. 0 means
	// 128; negative disables caching.
	CacheSize int
	// WarmStart lets jobs boot their systems by restoring cached
	// checkpoints of booted OSes instead of booting cold. Results are
	// byte-identical either way; only host boot time is saved.
	WarmStart bool
	// EngineParallel is the default event-scheduler worker count for jobs
	// that do not set engine_parallel themselves (0 or 1 = sequential).
	// Like the request field it cannot change result bytes, so it never
	// enters the cache key.
	EngineParallel int
}

// Server is the k2d core: admission, the queue, the worker pool and the
// job table. Create with New, start the workers with Start, serve
// Handler(), and stop with Drain.
type Server struct {
	cfg     Config
	queue   *queue
	metrics *metrics
	cache   *resultCache // nil when disabled

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []*Job // terminal jobs in finish order, for bounded retention
	nextSeq  uint64
	inflight int
	draining bool

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

// New builds a server; no goroutines start until Start.
func New(cfg Config) *Server {
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = experiment.FaultSeed
	}
	if cfg.MaxFinished <= 0 {
		cfg.MaxFinished = 1024
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 128
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		queue:   newQueue(cfg.QueueDepth),
		metrics: newMetrics(),
		cache:   newResultCache(cfg.CacheSize),
		jobs:    make(map[string]*Job),
		baseCtx: ctx,
		stop:    cancel,
	}
}

// Start launches the worker pool.
func (s *Server) Start() {
	for w := 0; w < s.cfg.Parallel; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j, ok := s.queue.pop()
				if !ok {
					return
				}
				s.runJob(j)
			}
		}()
	}
}

// Workers returns the worker-pool size.
func (s *Server) Workers() int { return s.cfg.Parallel }

// Submit validates and admits a request. It returns ErrQueueFull when
// admission control sheds it and ErrDraining during shutdown.
func (s *Server) Submit(req Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Seed == 0 {
		req.Seed = s.cfg.Seed
	}
	// The daemon default only fills a request that left the knob unset;
	// Validate canonicalized an explicit "1" to 0, and either spelling
	// merely selects the sequential engine the default would replace.
	if req.EngineParallel == 0 && s.cfg.EngineParallel > 1 {
		req.EngineParallel = s.cfg.EngineParallel
	}
	def, _ := experiment.DefFor(req.Experiment, experiment.Params{
		Seed:        req.Seed,
		WeakDomains: req.WeakDomains,
		Sweep:       req.Sweep,
		Replicas:    req.Replicas,
	})

	// The deterministic result cache: a repeat of a finished job (same
	// experiment, seed, topology and sweep) is served immediately with the
	// byte-identical table and trace stream — no queueing, no simulation.
	// The lookup happens before admission so cache hits cannot be shed by
	// a full queue.
	ent, hit := s.cache.get(cacheKeyOf(req))

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextSeq++
	j := &Job{
		ID:        fmt.Sprintf("j%08d", s.nextSeq),
		Seq:       s.nextSeq,
		Req:       req,
		state:     StateQueued,
		submitted: time.Now(),
		def:       def,
		done:      make(chan struct{}),
		trace:     newTraceLog(s.cfg.TraceEvents),
	}
	if hit {
		j.fromCache = true
		j.trace = newTraceLogFrom(ent.events, ent.dropped)
	}
	s.jobs[j.ID] = j
	s.mu.Unlock()

	if hit {
		s.metrics.recordSubmitted()
		res := ent.res
		s.finishJob(j, StateDone, &res, "")
		return j, nil
	}

	if err := s.queue.push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		if errors.Is(err, ErrQueueFull) {
			s.metrics.recordRejected()
		}
		return nil, err
	}
	s.metrics.recordSubmitted()
	return j, nil
}

// RetryAfter estimates, in whole seconds, when a client shed by admission
// control should try again: queue depth over the worker pool, priced at
// the experiment's recent P50 latency (see metrics.retryEstimate).
func (s *Server) RetryAfter(experiment string) int {
	return s.metrics.retryEstimate(experiment, s.queue.depth(), s.cfg.Parallel)
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every known job's status, newest first.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(all))
	for _, j := range all {
		out = append(out, j.status())
	}
	// Newest first by admission order.
	for i, k := 0, len(out)-1; i < k; i, k = i+1, k-1 {
		out[i], out[k] = out[k], out[i]
	}
	return out
}

// Cancel stops a job: a queued job is removed from the queue, a running
// one has its context cancelled (the engines stop at their next interrupt
// poll). It reports an error for unknown or already-terminal jobs.
func (s *Server) Cancel(id string) (*Job, error) {
	j, ok := s.Job(id)
	if !ok {
		return nil, fmt.Errorf("no job %q", id)
	}
	if s.queue.remove(j) {
		s.finishJob(j, StateCancelled, nil, "cancelled while queued")
		return j, nil
	}
	j.mu.Lock()
	state, cancel := j.state, j.cancel
	if state == StateQueued && cancel == nil {
		// A worker popped the job but has not started it: runJob will see
		// the flag and finish it as cancelled without simulating.
		j.cancelEarly = true
	}
	j.mu.Unlock()
	if state.Terminal() {
		return j, fmt.Errorf("job %s already %s", id, state)
	}
	if cancel != nil {
		cancel() // runJob observes the cancellation and finishes the job
	}
	return j, nil
}

// runJob executes one claimed job on the calling worker goroutine.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	if j.state.Terminal() { // cancelled between pop and here
		j.mu.Unlock()
		return
	}
	if j.cancelEarly {
		j.mu.Unlock()
		s.finishJob(j, StateCancelled, nil, "cancelled while queued")
		return
	}
	timeout := s.cfg.JobTimeout
	if j.Req.TimeoutMS > 0 {
		timeout = time.Duration(j.Req.TimeoutMS) * time.Millisecond
	}
	ctx := s.baseCtx
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	s.mu.Lock()
	s.inflight++
	s.mu.Unlock()
	// A panicking experiment must not take its worker goroutine (and with
	// it the whole daemon) down: isolate the job, record the stack, and
	// fail only that job.
	var res experiment.Result
	panicMsg := func() (msg string) {
		defer func() {
			if rec := recover(); rec != nil {
				msg = fmt.Sprintf("%v\n%s", rec, debug.Stack())
			}
		}()
		opts := []experiment.Option{experiment.WithTraceSink(j.trace.add)}
		if s.cfg.WarmStart {
			opts = append(opts, experiment.WithWarmStart())
		}
		if j.Req.DSMProtocol != "" {
			// Validate already parsed and normalized the spelling.
			proto, _ := dsm.ParseProtocol(j.Req.DSMProtocol)
			opts = append(opts, experiment.WithDSMProtocol(proto))
		}
		if j.Req.EngineParallel > 1 {
			opts = append(opts, experiment.WithEngineParallel(j.Req.EngineParallel))
		}
		res = experiment.MeasureContext(ctx, j.def, opts...)
		return ""
	}()
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()

	switch {
	case panicMsg != "":
		s.finishJob(j, StateFailed, nil, "panic: "+panicMsg)
	case res.Err == nil:
		s.finishJob(j, StateDone, &res, "")
	case errors.Is(res.Err, context.DeadlineExceeded):
		s.finishJob(j, StateFailed, &res, fmt.Sprintf("deadline exceeded after %v", timeout))
	default:
		s.finishJob(j, StateCancelled, &res, res.Err.Error())
	}
}

// finishJob records a terminal transition in the job, the metrics and the
// bounded retention list.
func (s *Server) finishJob(j *Job, state State, res *experiment.Result, errMsg string) {
	j.finish(state, res, errMsg)
	s.metrics.recordFinished(j.Req.Experiment, state, res, j.fromCache)
	if state == StateDone && res != nil && !j.fromCache {
		evs, dropped, _ := j.trace.snapshot(0)
		s.cache.put(cacheKeyOf(j.Req), *res, evs, dropped)
	}
	s.mu.Lock()
	s.finished = append(s.finished, j)
	for len(s.finished) > s.cfg.MaxFinished {
		old := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, old.ID)
	}
	s.mu.Unlock()
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain performs the graceful shutdown: stop admitting, cancel every job
// still queued, let in-flight jobs finish until ctx expires, then cancel
// them too and wait for the workers to exit. It always leaves the worker
// pool stopped; the error reports whether in-flight work had to be cut
// short.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	for _, j := range s.queue.drain() {
		s.finishJob(j, StateCancelled, nil, "cancelled by shutdown")
	}

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		// Grace expired: cancel the base context, which cascades into
		// every in-flight job's interrupt check.
		s.stop()
		<-idle
		return fmt.Errorf("server: drain grace expired; in-flight jobs cancelled")
	}
}
