package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestTraceLogConcurrentReaders pins the traceLog drop-accounting contract
// under fan-out: N slow subscribers stream one job whose trace overflows a
// tiny retention bound, and every one of them must observe the exact same
// events — same count, same order, no duplicates — followed by the exact
// same terminal {"dropped":D} record, where D is precisely the number of
// events the bounded log declined to retain. Run under -race in CI, this
// also proves the writer (the experiment's trace sink) and any number of
// polling readers share the log safely.
func TestTraceLogConcurrentReaders(t *testing.T) {
	const limit = 8
	const readers = 6
	s, ts := newTestServer(t, Config{Parallel: 1, QueueDepth: 4, TraceEvents: limit, CacheSize: -1})

	resp, st := postJob(t, ts, `{"experiment":"f6a"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	type streamResult struct {
		lines   []string // data lines, in arrival order
		dropped int
		final   bool // saw a terminal dropped record
	}
	results := make([]streamResult, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
			if err != nil {
				t.Errorf("reader %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				var rec struct {
					Seq     *uint64 `json:"seq"`
					Dropped *int    `json:"dropped"`
				}
				if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
					t.Errorf("reader %d: bad line %q: %v", i, sc.Text(), err)
					return
				}
				switch {
				case rec.Dropped != nil:
					results[i].dropped = *rec.Dropped
					results[i].final = true
				case rec.Seq != nil:
					results[i].lines = append(results[i].lines, sc.Text())
					// A slow subscriber: linger so the writer laps the
					// bounded log while we are mid-stream.
					time.Sleep(2 * time.Millisecond)
				default:
					t.Errorf("reader %d: unclassifiable line %q", i, sc.Text())
				}
			}
			if err := sc.Err(); err != nil {
				t.Errorf("reader %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// The authoritative tally, from the log itself.
	j, ok := s.Job(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	evs, wantDropped, open := j.trace.snapshot(0)
	if open {
		t.Fatal("trace log still open after all readers finished")
	}
	if len(evs) != limit {
		t.Fatalf("retained %d events, want the bound %d", len(evs), limit)
	}
	if wantDropped <= 0 {
		t.Fatalf("expected the f6a trace to overflow a %d-event log; dropped = %d", limit, wantDropped)
	}

	for i, r := range results {
		if !r.final {
			t.Fatalf("reader %d: no terminal dropped record (dropped %d events silently)", i, wantDropped)
		}
		if r.dropped != wantDropped {
			t.Fatalf("reader %d: dropped %d, want exactly %d", i, r.dropped, wantDropped)
		}
		if len(r.lines) != limit {
			t.Fatalf("reader %d: received %d events, want exactly %d (no loss, no duplication)", i, len(r.lines), limit)
		}
		// Byte-identical stream across all subscribers: same events, same
		// order.
		for k := range r.lines {
			if r.lines[k] != results[0].lines[k] {
				t.Fatalf("reader %d line %d differs from reader 0:\n%s\nvs\n%s",
					i, k, r.lines[k], results[0].lines[k])
			}
		}
	}
}
