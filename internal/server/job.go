// Package server turns the experiment registry into a multi-tenant
// simulation-as-a-service: jobs (an experiment name plus parameters) enter
// a bounded admission-controlled queue, a dispatcher fans them over a
// worker pool of private simulation engines, and an HTTP API submits,
// polls, cancels and streams them. Determinism survives the queueing: the
// same experiment and seed produce byte-identical tables regardless of
// queue position or concurrency, because every job owns its engines
// outright (the same property the k2bench parallel runner relies on).
package server

import (
	"fmt"
	"sync"
	"time"

	"k2/internal/dsm"
	"k2/internal/experiment"
	"k2/internal/sim"
	"k2/internal/trace"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is simulating it.
	StateRunning State = "running"
	// StateDone: finished; the result is available.
	StateDone State = "done"
	// StateFailed: the run errored (e.g. its deadline expired).
	StateFailed State = "failed"
	// StateCancelled: removed by DELETE or by a draining shutdown.
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state can no longer change.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Request is the POST /v1/jobs body: which experiment to run and with
// what parameters.
type Request struct {
	// Experiment is a registry ID (k2bench -list).
	Experiment string `json:"experiment"`
	// Seed overrides the fault-injection PRNG seed (faults experiment
	// only; 0 = the daemon's default seed).
	Seed int64 `json:"seed,omitempty"`
	// WeakDomains narrows the scale experiment to one platform with this
	// many weak domains (0 = the registered 1/2/4 sweep); for the chaos
	// experiment it sizes the storm platform (0 = 2).
	WeakDomains int `json:"weak_domains,omitempty"`
	// Sweep sizes the chaos experiment: how many seeded storms to run
	// (0 = the registry default of 8) and how many the replication ablation
	// replays per degree (0 = 4).
	Sweep int `json:"sweep,omitempty"`
	// Replicas narrows the replication ablation to a single NMR degree,
	// 1-8 (0 = the registered R in {1,2,3} sweep). It changes output bytes,
	// so it is part of the result-cache key and the fleet shard key.
	Replicas int `json:"replicas,omitempty"`
	// DSMProtocol selects the coherence protocol the job's systems run:
	// "twostate" (or "", the default) or "msi". Validate normalizes it, so
	// spellings that mean the default all hit the same cache entry.
	DSMProtocol string `json:"dsm_protocol,omitempty"`
	// EngineParallel runs the job's simulation engines under the parallel
	// event scheduler (internal/pdes) with this many workers (0 or 1 =
	// sequential; Validate normalizes 1 to 0). It cannot change a single
	// output byte — the parallel engine is dispatch-order-identical by
	// construction — so it is validated and echoed but deliberately
	// excluded from the result-cache key and the fleet shard key: a cached
	// or sharded result is valid at any parallelism.
	EngineParallel int `json:"engine_parallel,omitempty"`
	// Priority orders the queue: higher runs first, FIFO within a class.
	Priority int `json:"priority,omitempty"`
	// TimeoutMS bounds the run in host milliseconds (0 = the daemon's
	// default job timeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Format is the default rendering for GET /v1/jobs/{id}?format=:
	// "text", "markdown" or "csv" ("" = text).
	Format string `json:"format,omitempty"`
}

// Validate normalizes req and reports the first problem. It is exported
// for the fleet router, which validates before hashing a request onto the
// worker ring.
func (r *Request) Validate() error {
	if r.Experiment == "" {
		return fmt.Errorf("missing experiment id")
	}
	if _, ok := experiment.DefFor(r.Experiment, experiment.Params{}); !ok {
		return fmt.Errorf("unknown experiment %q", r.Experiment)
	}
	if r.Seed < 0 {
		return fmt.Errorf("seed must be >= 0")
	}
	if r.WeakDomains < 0 {
		return fmt.Errorf("weak_domains must be >= 0")
	}
	if r.WeakDomains > 64 {
		return fmt.Errorf("weak_domains must be <= 64")
	}
	if r.Replicas < 0 {
		return fmt.Errorf("replicas must be >= 0")
	}
	if r.Replicas > 8 {
		return fmt.Errorf("replicas must be <= 8")
	}
	if r.Sweep < 0 {
		return fmt.Errorf("sweep must be >= 0")
	}
	if r.Sweep > 4096 {
		return fmt.Errorf("sweep must be <= 4096")
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0")
	}
	if r.EngineParallel < 0 {
		return fmt.Errorf("engine_parallel must be >= 0")
	}
	if r.EngineParallel > 64 {
		return fmt.Errorf("engine_parallel must be <= 64")
	}
	// 0 and 1 both mean a sequential engine; canonicalize so both spellings
	// share one wire form (the cache and shard keys ignore the field either
	// way — parallelism cannot change the result bytes).
	if r.EngineParallel == 1 {
		r.EngineParallel = 0
	}
	proto, err := dsm.ParseProtocol(r.DSMProtocol)
	if err != nil {
		return err
	}
	// Normalize so every spelling of the default ("", "twostate",
	// "two-state", ...) shares one cache key and wire form.
	if proto == dsm.TwoState {
		r.DSMProtocol = ""
	} else {
		r.DSMProtocol = proto.String()
	}
	switch r.Format {
	case "", "text", "markdown", "csv":
	default:
		return fmt.Errorf("unknown format %q (want text, markdown or csv)", r.Format)
	}
	return nil
}

// Job is one admitted request. All mutable fields are guarded by mu; Done
// is closed exactly once when the job reaches a terminal state.
type Job struct {
	ID  string
	Seq uint64 // admission order; the FIFO tiebreak within a priority
	Req Request

	mu        sync.Mutex
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *experiment.Result
	errMsg    string

	def         experiment.Def
	cancel      func() // cancels the job's context; non-nil once running
	cancelEarly bool   // DELETE raced the worker's claim; don't start
	fromCache   bool   // served from the result cache; never ran
	done        chan struct{}
	trace       *traceLog
}

// Status is the wire representation of a job (GET /v1/jobs/{id}).
type Status struct {
	ID         string  `json:"id"`
	Experiment string  `json:"experiment"`
	State      State   `json:"state"`
	Priority   int     `json:"priority,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	WeakDoms   int     `json:"weak_domains,omitempty"`
	Sweep      int     `json:"sweep,omitempty"`
	Replicas   int     `json:"replicas,omitempty"`
	Protocol   string  `json:"dsm_protocol,omitempty"`
	EnginePar  int     `json:"engine_parallel,omitempty"`
	Submitted  string  `json:"submitted"`
	QueuedMS   float64 `json:"queued_ms,omitempty"`
	RunMS      float64 `json:"run_ms,omitempty"`
	Error      string  `json:"error,omitempty"`

	Result *JobResult `json:"result,omitempty"`
}

// JobResult carries the finished experiment: the rendered table plus the
// engine telemetry the runner aggregates.
type JobResult struct {
	Table        string  `json:"table"`
	Engines      int     `json:"engines"`
	Events       uint64  `json:"events_dispatched"`
	ProcSwitches uint64  `json:"proc_switches"`
	VirtualMS    float64 `json:"virtual_ms"`
	WallMS       float64 `json:"wall_ms"`
}

// status snapshots the job under its lock.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.ID,
		Experiment: j.Req.Experiment,
		State:      j.state,
		Priority:   j.Req.Priority,
		Seed:       j.Req.Seed,
		WeakDoms:   j.Req.WeakDomains,
		Sweep:      j.Req.Sweep,
		Replicas:   j.Req.Replicas,
		Protocol:   j.Req.DSMProtocol,
		EnginePar:  j.Req.EngineParallel,
		Submitted:  j.submitted.UTC().Format(time.RFC3339Nano),
		Error:      j.errMsg,
	}
	if !j.started.IsZero() {
		st.QueuedMS = float64(j.started.Sub(j.submitted).Nanoseconds()) / 1e6
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunMS = float64(end.Sub(j.started).Nanoseconds()) / 1e6
	}
	if j.state == StateDone && j.result != nil {
		st.Result = &JobResult{
			Table:        j.result.Table.String(),
			Engines:      j.result.Engines,
			Events:       j.result.Stats.Dispatched,
			ProcSwitches: j.result.Stats.ProcSwitches,
			VirtualMS:    float64(time.Duration(j.result.Virtual).Nanoseconds()) / 1e6,
			WallMS:       float64(j.result.Wall.Nanoseconds()) / 1e6,
		}
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, res *experiment.Result, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.finished = time.Now()
	j.trace.closeLog()
	close(j.done)
}

// traceEvent is one NDJSON record of GET /v1/jobs/{id}/trace.
type traceEvent struct {
	Seq  uint64   `json:"seq"`
	AtNS sim.Time `json:"at_ns"`
	Kind string   `json:"kind"`
	Msg  string   `json:"msg"`
}

// traceLog buffers a job's kernel-trace stream: the worker goroutine
// appends (via the experiment trace sink), HTTP readers poll snapshots.
// It is bounded; past the cap events are counted as dropped rather than
// retained, so a chatty experiment cannot run the daemon out of memory.
type traceLog struct {
	mu      sync.Mutex
	events  []traceEvent
	limit   int
	dropped int
	closed  bool
}

func newTraceLog(limit int) *traceLog {
	if limit <= 0 {
		limit = 16384
	}
	return &traceLog{limit: limit}
}

// newTraceLogFrom builds an already-closed log holding a cached job's
// replayed trace stream, so GET /v1/jobs/{id}/trace on a cache hit serves
// the identical events the original run recorded.
func newTraceLogFrom(events []traceEvent, dropped int) *traceLog {
	return &traceLog{
		events:  append([]traceEvent(nil), events...),
		limit:   len(events),
		dropped: dropped,
		closed:  true,
	}
}

// add is the experiment.WithTraceSink callback.
func (l *traceLog) add(ev trace.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) >= l.limit {
		l.dropped++
		return
	}
	l.events = append(l.events, traceEvent{
		Seq: ev.Seq, AtNS: ev.At, Kind: ev.Kind.String(), Msg: ev.Msg,
	})
}

// snapshot returns events[from:] plus whether the log can still grow.
func (l *traceLog) snapshot(from int) (evs []traceEvent, dropped int, open bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < len(l.events) {
		evs = append(evs, l.events[from:]...)
	}
	return evs, l.dropped, !l.closed
}

func (l *traceLog) closeLog() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
}
