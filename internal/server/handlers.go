package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"k2/internal/experiment"
)

// Handler returns the k2d v1 HTTP API:
//
//	POST   /v1/jobs            submit a job (202; 429 when shed)
//	GET    /v1/jobs            list job statuses, newest first
//	GET    /v1/jobs/{id}       poll one job (?format=text|markdown|csv
//	                           renders the finished table raw; ?wait=s
//	                           long-polls for completion)
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET    /v1/jobs/{id}/trace stream the job's kernel trace as NDJSON
//	POST   /v1/chaos           submit a chaos sweep (a /v1/jobs shorthand)
//	GET    /v1/experiments     list the experiment registry
//	GET    /healthz            liveness (503 once draining)
//	GET    /metrics            Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/chaos", s.handleChaos)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is every non-2xx JSON body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed job request: %v", err)
		return
	}
	s.submitAndRespond(w, req)
}

// handleChaos is the chaos-sweep shorthand: the body carries only the sweep
// parameters and the experiment is forced to the chaos registry entry. The
// resulting job is a regular /v1/jobs citizen (poll, cancel, trace).
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Seed        int64 `json:"seed,omitempty"`
		WeakDomains int   `json:"weak_domains,omitempty"`
		Sweep       int   `json:"sweep,omitempty"`
		Priority    int   `json:"priority,omitempty"`
		TimeoutMS   int64 `json:"timeout_ms,omitempty"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "malformed chaos request: %v", err)
		return
	}
	s.submitAndRespond(w, Request{
		Experiment:  "chaos",
		Seed:        req.Seed,
		WeakDomains: req.WeakDomains,
		Sweep:       req.Sweep,
		Priority:    req.Priority,
		TimeoutMS:   req.TimeoutMS,
	})
}

// submitAndRespond admits req and writes the standard submission response.
func (s *Server) submitAndRespond(w http.ResponseWriter, req Request) {
	j, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter(req.Experiment)))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if secs := r.URL.Query().Get("wait"); secs != "" {
		d, err := strconv.ParseFloat(secs, 64)
		if err != nil || d < 0 || d > 600 {
			writeError(w, http.StatusBadRequest, "wait must be seconds in [0, 600]")
			return
		}
		select {
		case <-j.Done():
		case <-time.After(time.Duration(d * float64(time.Second))):
		case <-r.Context().Done():
			return
		}
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	j.mu.Lock()
	state, res := j.state, j.result
	j.mu.Unlock()
	if state != StateDone || res == nil {
		writeError(w, http.StatusConflict, "job %s is %s; a rendered table needs state %q",
			j.ID, state, StateDone)
		return
	}
	switch format {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Matches `k2bench` stdout byte-for-byte: table + trailing newline.
		fmt.Fprintln(w, res.Table.String())
	case "markdown":
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		fmt.Fprintln(w, res.Table.Markdown())
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		res.Table.WriteCSV(w) //nolint:errcheck // streaming to a gone client
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q", format)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, err := s.Cancel(id)
	if err != nil {
		if j == nil {
			writeError(w, http.StatusNotFound, "%v", err)
		} else {
			writeError(w, http.StatusConflict, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleTrace streams the job's kernel trace as NDJSON: events already
// recorded come out immediately, then the stream follows the running job
// (polling its bounded log) until the job finishes or the client leaves.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		evs, dropped, open := j.trace.snapshot(sent)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		sent += len(evs)
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if !open {
			if dropped > 0 {
				fmt.Fprintf(w, "{\"dropped\":%d}\n", dropped)
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			// Loop once more to drain anything emitted before the close.
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	var out []entry
	for _, d := range experiment.Registry() {
		out = append(out, entry{ID: d.ID, Name: d.Name})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	inflight := s.inflight
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.render(w, s.queue.depth(), inflight, draining, s.cache.stats())
}
