package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"k2/internal/experiment"
)

// doneResult fabricates a finished experiment with the given wall time,
// for priming the latency histograms.
func doneResult(id string, wall time.Duration) *experiment.Result {
	return &experiment.Result{ID: id, Wall: wall}
}

// TestRetryEstimate pins the Retry-After model: queue depth over the pool,
// priced at the experiment's P50, falling back to the slowest known P50,
// clamped to [1, 60].
func TestRetryEstimate(t *testing.T) {
	m := newMetrics()

	// No latency data at all: 1 second, never zero.
	if got := m.retryEstimate("t1", 10, 2); got != 1 {
		t.Fatalf("no data: got %d, want 1", got)
	}

	// Prime t1 at P50 = 2s and t9 at P50 = 5s.
	for i := 0; i < 5; i++ {
		m.recordFinished("t1", StateDone, doneResult("t1", 2*time.Second), false)
		m.recordFinished("t9", StateDone, doneResult("t9", 5*time.Second), false)
	}

	// 4 queued over 2 workers plus the claimed slot: 3 rounds x 2s = 6s.
	if got := m.retryEstimate("t1", 4, 2); got != 6 {
		t.Fatalf("t1 depth 4 parallel 2: got %d, want 6", got)
	}
	// Empty queue still waits out the in-flight round.
	if got := m.retryEstimate("t1", 0, 2); got != 2 {
		t.Fatalf("t1 depth 0: got %d, want 2", got)
	}
	// An experiment with no history prices at the slowest known P50 (t9).
	if got := m.retryEstimate("never-seen", 4, 2); got != 15 {
		t.Fatalf("unknown experiment: got %d, want 15", got)
	}
	// The ceiling: a very deep queue clamps to 60.
	if got := m.retryEstimate("t9", 1000, 1); got != 60 {
		t.Fatalf("deep queue: got %d, want 60", got)
	}
	// Cache hits and cancelled jobs must not pollute the estimate.
	m.recordFinished("t1", StateDone, doneResult("t1", time.Hour), true)
	m.recordFinished("t1", StateCancelled, doneResult("t1", time.Hour), false)
	if got := m.retryEstimate("t1", 4, 2); got != 6 {
		t.Fatalf("after cache/cancel noise: got %d, want 6", got)
	}
}

// TestRetryAfterHeader asserts the 429 response carries the estimate, not
// a hardcoded constant: with a primed P50 of 2s, one queued job and one
// worker, the shed client is told to come back in 4s.
func TestRetryAfterHeader(t *testing.T) {
	s := New(Config{Parallel: 1, QueueDepth: 1, CacheSize: -1})
	// Deliberately not Started: the queue fills deterministically.
	ts := newHTTPOnly(t, s)

	for i := 0; i < 3; i++ {
		s.metrics.recordFinished("t1", StateDone, doneResult("t1", 2*time.Second), false)
	}

	resp, _ := postJob(t, ts, `{"experiment":"t1"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp, _ = postJob(t, ts, `{"experiment":"t1"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer", ra)
	}
	// (1 queued + 1 slot) / 1 worker * 2s P50 = 4s.
	if secs != 4 {
		t.Fatalf("Retry-After = %d, want 4", secs)
	}

	// An experiment the daemon has never run prices at the slowest P50.
	resp, _ = postJob(t, ts, `{"experiment":"t4"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("t4 submit: %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "4" {
		t.Fatalf("t4 Retry-After = %q, want 4 (slowest-known fallback)", got)
	}
}

// newHTTPOnly serves a handler without starting workers (so the queue
// fills deterministically) and without the drain teardown.
func newHTTPOnly(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}
