package server

import (
	"encoding/json"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// A job may select the DSM coherence protocol; the daemon validates and
// normalizes it, echoes it in the status, keys the result cache on it, and
// surfaces the coherence counters on /metrics.
func TestJobDSMProtocol(t *testing.T) {
	s, ts := newTestServer(t, Config{Parallel: 2, QueueDepth: 16})

	t.Run("unknown protocol is 400", func(t *testing.T) {
		resp, _ := postJob(t, ts, `{"experiment":"t5","dsm_protocol":"mesi"}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit status %d, want 400", resp.StatusCode)
		}
	})

	waitDone := func(t *testing.T, id string) Status {
		t.Helper()
		code, body := getBody(t, ts.URL+"/v1/jobs/"+id+"?wait=30")
		if code != http.StatusOK {
			t.Fatalf("poll status %d: %s", code, body)
		}
		var done Status
		if err := json.Unmarshal([]byte(body), &done); err != nil {
			t.Fatal(err)
		}
		if done.State != StateDone {
			t.Fatalf("job %s finished %q: %s", id, done.State, done.Error)
		}
		return done
	}

	t.Run("msi job runs and echoes its protocol", func(t *testing.T) {
		resp, st := postJob(t, ts, `{"experiment":"t5","dsm_protocol":"msi"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		if st.Protocol != "msi" {
			t.Fatalf("submit echo protocol %q, want msi", st.Protocol)
		}
		done := waitDone(t, st.ID)
		if done.Protocol != "msi" || done.Result == nil {
			t.Fatalf("done status: %+v", done)
		}
	})

	t.Run("cache keys on the protocol", func(t *testing.T) {
		// Same experiment and parameters under the default protocol must be
		// a cache miss, not a byte-mismatched hit of the MSI run.
		_, st := postJob(t, ts, `{"experiment":"t5"}`)
		done := waitDone(t, st.ID)
		if done.Protocol != "" {
			t.Fatalf("default job echoes protocol %q", done.Protocol)
		}
		// Spellings of the default normalize to one key: "twostate" hits the
		// entry the "" job just filled.
		_, st2 := postJob(t, ts, `{"experiment":"t5","dsm_protocol":"twostate"}`)
		waitDone(t, st2.ID)
		cs := s.cache.stats()
		if cs.hits == 0 {
			t.Fatalf("normalized default spelling missed the cache: %+v", cs)
		}
		if ck := cacheKeyOf(Request{Experiment: "t5", DSMProtocol: "msi"}); ck.Protocol != "msi" {
			t.Fatalf("cache key drops the protocol: %+v", ck)
		}
	})

	t.Run("metrics expose the coherence counters", func(t *testing.T) {
		code, body := getBody(t, ts.URL+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics status %d", code)
		}
		for _, name := range []string{
			"k2d_dsm_faults_total", "k2d_dsm_read_faults_total",
			"k2d_dsm_invalidations_sent_total", "k2d_dsm_probowner_hops_total",
			"k2d_dsm_claims_total", "k2d_dsm_dead_reclaims_total",
			"k2d_msi_jobs_total",
		} {
			if !strings.Contains(body, "# TYPE "+name+" counter") {
				t.Fatalf("/metrics missing %s:\n%s", name, body)
			}
		}
		for _, name := range []string{"k2d_dsm_faults_total", "k2d_msi_jobs_total"} {
			m := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`).FindStringSubmatch(body)
			if m == nil {
				t.Fatalf("no sample for %s", name)
			}
			if v, _ := strconv.Atoi(m[1]); v == 0 {
				t.Fatalf("%s is zero after an MSI t5 job", name)
			}
		}
	})
}
