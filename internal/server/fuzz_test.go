package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzRequestDecode feeds arbitrary bodies through the same decode path
// handleSubmit uses (size-capped reader, unknown fields rejected): decoding
// must never panic, and an accepted request must survive a
// marshal-decode round trip unchanged.
func FuzzRequestDecode(f *testing.F) {
	f.Add(`{"experiment":"t1"}`)
	f.Add(`{"experiment":"chaos","seed":7,"weak_domains":4,"sweep":64}`)
	f.Add(`{"experiment":"faults","timeout_ms":1000,"priority":2,"format":"csv"}`)
	f.Add(`{}`)
	f.Add(`{"experiment":"t1","bogus":1}`)
	f.Add(`{"experiment":"t5","dsm_protocol":"msi"}`)
	f.Add(`{"experiment":"dsmshare","dsm_protocol":"two-state","weak_domains":4}`)
	f.Add(`{"experiment":"chaos","dsm_protocol":"mesi"}`)
	f.Add(`{"experiment":"replication","replicas":3,"weak_domains":16,"sweep":8}`)
	f.Add(`{"experiment":"replication","replicas":9}`)
	f.Add(`{"experiment":"replication","replicas":-1,"weak_domains":65}`)
	f.Add(`[1,2,3]`)
	f.Add(`"experiment"`)
	f.Add("{\"experiment\":\"\\u0000\"}")
	f.Fuzz(func(t *testing.T, body string) {
		var req Request
		r := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
		w := httptest.NewRecorder()
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			return
		}
		// An accepted request is canonical: marshal and decode it again and
		// the fields must match exactly.
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal of accepted request failed: %v", err)
		}
		var back Request
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-decode of %s failed: %v", out, err)
		}
		if back != req {
			t.Fatalf("request round-trip changed: %+v != %+v", back, req)
		}
	})
}
