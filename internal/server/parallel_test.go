package server

import (
	"strings"
	"testing"
)

// TestValidateEngineParallel pins the request contract: negatives and
// absurd worker counts are rejected, an explicit 1 canonicalizes to the
// zero wire form (both mean the sequential engine), and real values pass
// through untouched.
func TestValidateEngineParallel(t *testing.T) {
	for _, bad := range []int{-1, 65, 1000} {
		r := Request{Experiment: "t1", EngineParallel: bad}
		if err := r.Validate(); err == nil {
			t.Fatalf("engine_parallel=%d validated", bad)
		}
	}
	one := Request{Experiment: "t1", EngineParallel: 1}
	if err := one.Validate(); err != nil {
		t.Fatal(err)
	}
	if one.EngineParallel != 0 {
		t.Fatalf("engine_parallel=1 normalized to %d, want 0", one.EngineParallel)
	}
	four := Request{Experiment: "t1", EngineParallel: 4}
	if err := four.Validate(); err != nil {
		t.Fatal(err)
	}
	if four.EngineParallel != 4 {
		t.Fatalf("engine_parallel=4 rewritten to %d", four.EngineParallel)
	}
}

// TestEngineParallelExcludedFromCacheKey is the key-exclusion contract:
// engine_parallel cannot change a job's bytes, so requests differing only
// in it MUST collide on one cache entry — the sequential run's bytes serve
// the parallel request and vice versa.
func TestEngineParallelExcludedFromCacheKey(t *testing.T) {
	a := Request{Experiment: "t4", Seed: 3}
	b := Request{Experiment: "t4", Seed: 3, EngineParallel: 4}
	if cacheKeyOf(a) != cacheKeyOf(b) {
		t.Fatalf("engine_parallel entered the cache key: %+v vs %+v", cacheKeyOf(a), cacheKeyOf(b))
	}

	s, ts := newTestServer(t, Config{Parallel: 1, QueueDepth: 8})
	_, first := postJob(t, ts, `{"experiment":"t4"}`)
	firstBody := waitText(t, ts.URL, first.ID)
	_, second := postJob(t, ts, `{"experiment":"t4","engine_parallel":4}`)
	secondBody := waitText(t, ts.URL, second.ID)
	if secondBody != firstBody {
		t.Fatalf("parallel request diverged from cached sequential bytes:\n%q\nvs\n%q",
			secondBody, firstBody)
	}
	j, ok := s.Job(second.ID)
	if !ok || !j.fromCache {
		t.Fatal("request differing only in engine_parallel was re-simulated, not served from cache")
	}
}

// TestEngineParallelJobRunsAndEchoes submits a genuinely parallel job (cache
// cold), checks the status echoes the knob, the result matches a sequential
// daemon's bytes, and the per-partition dispatch counters reach /metrics.
func TestEngineParallelJobRunsAndEchoes(t *testing.T) {
	_, seqTS := newTestServer(t, Config{Parallel: 1, QueueDepth: 8})
	_, st := postJob(t, seqTS, `{"experiment":"t4"}`)
	want := waitText(t, seqTS.URL, st.ID)

	s, ts := newTestServer(t, Config{Parallel: 1, QueueDepth: 8})
	_, pst := postJob(t, ts, `{"experiment":"t4","engine_parallel":4}`)
	if pst.EnginePar != 4 {
		t.Fatalf("status echoes engine_parallel=%d, want 4", pst.EnginePar)
	}
	got := waitText(t, ts.URL, pst.ID)
	if got != want {
		t.Fatalf("parallel daemon diverged from sequential daemon:\n%q\nvs\n%q", got, want)
	}
	if j, _ := s.Job(pst.ID); j.fromCache {
		t.Fatal("cold parallel job claimed a cache hit")
	}

	code, m := getBody(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if !strings.Contains(m, `k2d_engine_partition_events_total{domain="shared"}`) {
		t.Fatalf("metrics missing k2d_engine_partition_events_total:\n%s", m)
	}
}

// TestServerDefaultEngineParallel: the daemon-wide -engine-parallel default
// fills requests that left the knob unset, and the echo shows the effective
// value.
func TestServerDefaultEngineParallel(t *testing.T) {
	_, ts := newTestServer(t, Config{Parallel: 1, QueueDepth: 8, EngineParallel: 2})
	_, st := postJob(t, ts, `{"experiment":"t1"}`)
	if st.EnginePar != 2 {
		t.Fatalf("status echoes engine_parallel=%d, want the daemon default 2", st.EnginePar)
	}
	waitText(t, ts.URL, st.ID)
}
