package server

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// waitText polls a job to completion and returns its rendered text body.
func waitText(t *testing.T, tsURL, id string) string {
	t.Helper()
	code, body := getBody(t, tsURL+"/v1/jobs/"+id+"?wait=120&format=text")
	if code != 200 {
		t.Fatalf("poll %s = %d %q", id, code, body)
	}
	return body
}

// traceBody returns the job's full NDJSON trace stream.
func traceBody(t *testing.T, tsURL, id string) string {
	t.Helper()
	code, body := getBody(t, tsURL+"/v1/jobs/"+id+"/trace")
	if code != 200 {
		t.Fatalf("trace %s = %d", id, code)
	}
	return body
}

// TestResultCacheHit is the tentpole's k2d acceptance: submitting the same
// job twice serves the repeat from the deterministic result cache — same
// table bytes, same trace stream, a distinct job ID, no second simulation —
// and the hit shows up on /metrics.
func TestResultCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Parallel: 1, QueueDepth: 8})

	_, first := postJob(t, ts, `{"experiment":"t1"}`)
	firstBody := waitText(t, ts.URL, first.ID)

	_, second := postJob(t, ts, `{"experiment":"t1"}`)
	if second.ID == first.ID {
		t.Fatal("repeat submission reused the job ID")
	}
	secondBody := waitText(t, ts.URL, second.ID)
	if secondBody != firstBody {
		t.Fatalf("cached body diverged:\n got: %q\nwant: %q", secondBody, firstBody)
	}
	j, ok := s.Job(second.ID)
	if !ok || !j.fromCache {
		t.Fatalf("repeat job was simulated, not served from cache (fromCache=%v)", ok && j.fromCache)
	}
	if got, want := traceBody(t, ts.URL, second.ID), traceBody(t, ts.URL, first.ID); got != want {
		t.Fatalf("cached trace stream diverged:\n got: %q\nwant: %q", got, want)
	}

	// A different parameter set is a different key: no hit.
	_, third := postJob(t, ts, `{"experiment":"faults","seed":7}`)
	waitText(t, ts.URL, third.ID)
	if j, _ := s.Job(third.ID); j.fromCache {
		t.Fatal("different parameters hit the cache")
	}

	code, m := getBody(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"k2d_cache_hits_total 1",
		"k2d_cache_misses_total 2",
		"k2d_cache_entries 2",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m)
		}
	}
	if strings.Contains(m, "k2d_cache_bytes 0\n") {
		t.Fatal("cache holds entries but reports zero bytes")
	}
}

// TestResultCacheDisabled: a negative CacheSize turns the cache off; the
// repeat job simulates again (and still produces identical bytes — the
// determinism the cache relies on).
func TestResultCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{Parallel: 1, QueueDepth: 8, CacheSize: -1})

	_, first := postJob(t, ts, `{"experiment":"t1"}`)
	a := waitText(t, ts.URL, first.ID)
	_, second := postJob(t, ts, `{"experiment":"t1"}`)
	b := waitText(t, ts.URL, second.ID)
	if a != b {
		t.Fatalf("repeat run diverged without cache:\n%q\nvs\n%q", a, b)
	}
	if j, _ := s.Job(second.ID); j.fromCache {
		t.Fatal("disabled cache served a hit")
	}
}

// TestResultCacheEviction: a capacity-1 cache evicts LRU; the evicted key
// misses again and the eviction is counted.
func TestResultCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Parallel: 1, QueueDepth: 8, CacheSize: 1})

	submitWait := func(body string) *Job {
		t.Helper()
		_, st := postJob(t, ts, body)
		waitText(t, ts.URL, st.ID)
		j, ok := s.Job(st.ID)
		if !ok {
			t.Fatalf("job %s vanished", st.ID)
		}
		return j
	}
	submitWait(`{"experiment":"t1"}`)              // cached
	submitWait(`{"experiment":"faults","seed":7}`) // evicts t1
	if j := submitWait(`{"experiment":"t1"}`); j.fromCache {
		t.Fatal("evicted entry served a hit")
	}
	code, m := getBody(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{"k2d_cache_evictions_total 2", "k2d_cache_entries 1"} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m)
		}
	}
}

// TestWarmStartServer: with -warm-start the daemon boots jobs from cached
// OS checkpoints; the result is byte-identical to a cold daemon's and the
// warm boots are counted on /metrics.
func TestWarmStartServer(t *testing.T) {
	_, coldTS := newTestServer(t, Config{Parallel: 1, QueueDepth: 8})
	_, warmTS := newTestServer(t, Config{Parallel: 1, QueueDepth: 8, WarmStart: true})

	run := func(ts *httptest.Server) string {
		t.Helper()
		_, st := postJob(t, ts, `{"experiment":"t4"}`)
		return waitText(t, ts.URL, st.ID)
	}
	a := run(coldTS)
	b := run(warmTS)
	if a != b {
		t.Fatalf("warm-started daemon diverged from cold:\n%q\nvs\n%q", a, b)
	}
	code, m := getBody(t, warmTS.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if !strings.Contains(m, "k2d_warm_starts_total") {
		t.Fatal("metrics missing k2d_warm_starts_total")
	}
	if strings.Contains(m, "k2d_warm_starts_total 0\n") {
		t.Fatalf("warm-start daemon reports zero warm starts:\n%s", m)
	}
}
