package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"k2/internal/experiment"
)

// newTestServer boots a started server plus its httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort teardown
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("bad submit body %q: %v", raw, err)
		}
	}
	return resp, st
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(raw)
}

// TestHandlers is the endpoint table test: submit, poll, render, cancel,
// malformed bodies and unknown IDs.
func TestHandlers(t *testing.T) {
	_, ts := newTestServer(t, Config{Parallel: 2, QueueDepth: 16})

	t.Run("submit and poll to completion", func(t *testing.T) {
		resp, st := postJob(t, ts, `{"experiment":"t1"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		if st.State != StateQueued && st.State != StateRunning {
			t.Fatalf("fresh job state %q", st.State)
		}
		if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
			t.Fatalf("Location %q", loc)
		}
		code, body := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"?wait=30")
		if code != http.StatusOK {
			t.Fatalf("poll status %d: %s", code, body)
		}
		var done Status
		if err := json.Unmarshal([]byte(body), &done); err != nil {
			t.Fatal(err)
		}
		if done.State != StateDone || done.Result == nil {
			t.Fatalf("after wait: %+v", done)
		}
		if !strings.Contains(done.Result.Table, "Table 1") {
			t.Fatalf("result table: %q", done.Result.Table)
		}
		// Rendered formats of the finished job.
		code, text := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"?format=text")
		if code != http.StatusOK || !strings.HasPrefix(text, "== Table 1") {
			t.Fatalf("format=text: %d %q", code, text)
		}
		code, md := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"?format=markdown")
		if code != http.StatusOK || !strings.Contains(md, "|") {
			t.Fatalf("format=markdown: %d %q", code, md)
		}
		code, csv := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"?format=csv")
		if code != http.StatusOK || !strings.Contains(csv, ",") {
			t.Fatalf("format=csv: %d %q", code, csv)
		}
	})

	t.Run("malformed bodies are 400", func(t *testing.T) {
		for _, body := range []string{
			``, `{`, `{"experiment":}`,
			`{"experiment":"no-such-experiment"}`,
			`{"experiment":"t1","bogus_field":1}`,
			`{"experiment":"t1","seed":-1}`,
			`{"experiment":"t1","weak_domains":-2}`,
			`{"experiment":"chaos","weak_domains":65}`,
			`{"experiment":"replication","replicas":-1}`,
			`{"experiment":"replication","replicas":9}`,
			`{"experiment":"t1","timeout_ms":-5}`,
			`{"experiment":"t1","format":"pdf"}`,
		} {
			resp, _ := postJob(t, ts, body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
			}
		}
	})

	t.Run("unknown job is 404", func(t *testing.T) {
		if code, _ := getBody(t, ts.URL+"/v1/jobs/j99999999"); code != http.StatusNotFound {
			t.Fatalf("GET unknown = %d", code)
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j99999999", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("DELETE unknown = %d", resp.StatusCode)
		}
	})

	t.Run("render of unfinished job is 409", func(t *testing.T) {
		s2, ts2 := newTestServer(t, Config{Parallel: 1, QueueDepth: 16})
		_ = s2
		// Park a long job and queue a second; the second is renderable
		// only once done.
		_, st := postJob(t, ts2, `{"experiment":"day"}`)
		code, body := getBody(t, ts2.URL+"/v1/jobs/"+st.ID+"?format=text")
		if code == http.StatusOK && !strings.HasPrefix(body, "== ") {
			t.Fatalf("format on unfinished job: %d %q", code, body)
		}
		if code != http.StatusConflict && code != http.StatusOK {
			t.Fatalf("format on unfinished job: %d %q", code, body)
		}
	})

	t.Run("healthz and experiments", func(t *testing.T) {
		code, body := getBody(t, ts.URL+"/healthz")
		if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
			t.Fatalf("healthz = %d %q", code, body)
		}
		code, body = getBody(t, ts.URL+"/v1/experiments")
		if code != http.StatusOK {
			t.Fatalf("experiments = %d", code)
		}
		var list []map[string]string
		if err := json.Unmarshal([]byte(body), &list); err != nil {
			t.Fatal(err)
		}
		if len(list) != len(experiment.Registry()) {
			t.Fatalf("experiments listed %d, want %d", len(list), len(experiment.Registry()))
		}
	})
}

// TestCancelQueuedJob cancels a job that has not started: no worker pool
// is running, so the job is deterministically still queued.
func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{Parallel: 1, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, st := postJob(t, ts, `{"experiment":"t1"}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	json.NewDecoder(resp.Body).Decode(&got) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || got.State != StateCancelled {
		t.Fatalf("cancel queued = %d %+v", resp.StatusCode, got)
	}
	// Cancelling again is a conflict.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel = %d, want 409", resp.StatusCode)
	}
}

// TestCancelRunningJob exercises DELETE of an in-flight job. The job's
// def is swapped (workers not yet started) for one that parks until the
// test releases it and then behaves like a real experiment whose engine
// was interrupted: it panics with the context error.
func TestCancelRunningJob(t *testing.T) {
	s := New(Config{Parallel: 1, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, err := s.Submit(Request{Experiment: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	j.def = experiment.Def{ID: "t1", Name: "parked", Run: func() experiment.Table {
		close(started)
		<-release
		panic(context.Canceled)
	}}
	s.Start()
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running = %d", resp.StatusCode)
	}
	close(release)
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job never finished")
	}
	if st := j.State(); st != StateCancelled {
		t.Fatalf("state after cancel = %q", st)
	}
}

// TestJobDeadline asserts per-job timeout enforcement through the real
// interrupt path: a 1 ms deadline on a long experiment fails the job.
func TestJobDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Parallel: 1, QueueDepth: 8})
	_ = s
	_, st := postJob(t, ts, `{"experiment":"day","timeout_ms":1}`)
	code, body := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"?wait=60")
	if code != http.StatusOK {
		t.Fatalf("poll = %d", code)
	}
	var got Status
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || !strings.Contains(got.Error, "deadline") {
		t.Fatalf("deadline job = %+v", got)
	}
}

// TestAdmissionControlSheds fills the queue (no workers draining it) and
// asserts the overflow submission is shed with 429 and counted.
func TestAdmissionControlSheds(t *testing.T) {
	s := New(Config{Parallel: 1, QueueDepth: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, _ := postJob(t, ts, `{"experiment":"t1"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d = %d", i, resp.StatusCode)
		}
	}
	resp, _ := postJob(t, ts, `{"experiment":"t1"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	code, metricsBody := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"k2d_jobs_rejected_total 1",
		"k2d_jobs_submitted_total 3",
		"k2d_queue_depth 3",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metricsBody)
		}
	}
}

// TestGracefulDrain: draining stops admission (healthz 503, POST 503),
// cancels queued jobs, and waits for in-flight work.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Parallel: 1, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	running, err := s.Submit(Request{Experiment: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	running.def = experiment.Def{ID: "t1", Name: "parked", Run: func() experiment.Table {
		close(started)
		<-release
		return experiment.Table{ID: "Table 1", Title: "drained"}
	}}
	queued, err := s.Submit(Request{Experiment: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// The queued job is cancelled promptly, without waiting for drain to
	// complete.
	select {
	case <-queued.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("queued job not cancelled by drain")
	}
	if st := queued.State(); st != StateCancelled {
		t.Fatalf("queued job state = %q", st)
	}

	// Admission is closed while the in-flight job still runs.
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", code)
	}
	resp, _ := postJob(t, ts, `{"experiment":"t1"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}

	// The in-flight job is allowed to finish, and drain then completes
	// cleanly.
	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not complete")
	}
	if st := running.State(); st != StateDone {
		t.Fatalf("in-flight job state after drain = %q", st)
	}
}

// TestServerDeterminismUnderLoad is the acceptance-criteria test: the same
// job submitted 8x concurrently yields byte-identical rendered bodies,
// equal to what a direct (k2bench-style) measurement produces.
func TestServerDeterminismUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{Parallel: 4, QueueDepth: 32})

	const n = 8
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
				strings.NewReader(`{"experiment":"f6a","format":"text"}`))
			if err != nil {
				t.Error(err)
				return
			}
			var st Status
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d = %d", i, resp.StatusCode)
				return
			}
			code, body := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"?wait=120&format=text")
			if code != http.StatusOK {
				t.Errorf("poll %d = %d %q", i, code, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	want := experiment.Measure(mustDef(t, "f6a")).Table.String() + "\n"
	for i, b := range bodies {
		if b != want {
			t.Fatalf("job %d body diverged from direct measurement:\n got: %q\nwant: %q", i, b, want)
		}
	}
}

// TestSeedParameterDeterminism: the faults experiment with an explicit
// seed returns identical bodies across jobs, and a different seed changes
// the result — the job parameters really reach the injector.
func TestSeedParameterDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{Parallel: 2, QueueDepth: 16})

	run := func(seed int64) string {
		_, st := postJob(t, ts, fmt.Sprintf(`{"experiment":"faults","seed":%d}`, seed))
		code, body := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"?wait=120&format=text")
		if code != http.StatusOK {
			t.Fatalf("seed %d poll = %d %q", seed, code, body)
		}
		return body
	}
	a1, a2 := run(7), run(7)
	if a1 != a2 {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a1, a2)
	}
	if b := run(8); b == a1 {
		t.Fatal("different seed produced identical fault tables")
	}
}

// TestTraceStreaming reads the NDJSON trace of a job and checks it opens
// with the boot record and parses line by line.
func TestTraceStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{Parallel: 1, QueueDepth: 8})
	_, st := postJob(t, ts, `{"experiment":"f6a"}`)
	if code, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"?wait=120"); code != http.StatusOK {
		t.Fatalf("wait = %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	first := ""
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if lines == 0 {
			first, _ = ev["msg"].(string)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("empty trace stream")
	}
	if !strings.HasPrefix(first, "booting") {
		t.Fatalf("first trace line msg = %q, want boot record", first)
	}
}

func mustDef(t *testing.T, id string) experiment.Def {
	t.Helper()
	d, ok := experiment.DefFor(id, experiment.Params{})
	if !ok {
		t.Fatalf("no experiment %q", id)
	}
	return d
}
