package server

import (
	"errors"
	"testing"
)

func qjob(seq uint64, prio int) *Job {
	return &Job{ID: string(rune('a' + seq)), Seq: seq, Req: Request{Priority: prio}}
}

func TestQueuePriorityAndFIFO(t *testing.T) {
	q := newQueue(8)
	jobs := []*Job{qjob(1, 0), qjob(2, 5), qjob(3, 0), qjob(4, 5), qjob(5, -1)}
	for _, j := range jobs {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	// Priority desc, FIFO within a class: 2, 4 (prio 5), 1, 3 (prio 0), 5.
	want := []uint64{2, 4, 1, 3, 5}
	for _, seq := range want {
		j, ok := q.pop()
		if !ok || j.Seq != seq {
			t.Fatalf("pop = (%v, %v), want seq %d", j, ok, seq)
		}
	}
}

func TestQueueAdmissionBound(t *testing.T) {
	q := newQueue(2)
	if err := q.push(qjob(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob(3, 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push over bound = %v, want ErrQueueFull", err)
	}
	// Popping frees a slot.
	if _, ok := q.pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := q.push(qjob(4, 0)); err != nil {
		t.Fatalf("push after pop = %v", err)
	}
}

func TestQueueRemove(t *testing.T) {
	q := newQueue(4)
	a, b := qjob(1, 0), qjob(2, 0)
	q.push(a)
	q.push(b)
	if !q.remove(a) {
		t.Fatal("remove of queued job failed")
	}
	if q.remove(a) {
		t.Fatal("double remove succeeded")
	}
	if j, ok := q.pop(); !ok || j != b {
		t.Fatalf("pop after remove = %v, want b", j)
	}
}

func TestQueueDrain(t *testing.T) {
	q := newQueue(4)
	q.push(qjob(1, 0))
	q.push(qjob(2, 0))
	left := q.drain()
	if len(left) != 2 {
		t.Fatalf("drain returned %d jobs, want 2", len(left))
	}
	if err := q.push(qjob(3, 0)); !errors.Is(err, ErrDraining) {
		t.Fatalf("push after drain = %v, want ErrDraining", err)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop after drain returned a job")
	}
}
