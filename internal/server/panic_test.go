package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"k2/internal/experiment"
)

// TestPanicIsolation plants a panicking experiment stub in an admitted job
// and asserts the worker goroutine survives it: the job alone fails, its
// error carries the panic value and a stack, and the same worker keeps
// serving later jobs.
func TestPanicIsolation(t *testing.T) {
	s := New(Config{Parallel: 1, QueueDepth: 8})
	j, err := s.Submit(Request{Experiment: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	// Swap the registry Def for a panicking stub before any worker starts.
	j.def = experiment.Def{ID: "boom", Name: "panicking stub", Run: func() experiment.Table {
		panic("boom")
	}}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort teardown
	})

	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("panicking job never finished")
	}
	st := j.status()
	if st.State != StateFailed {
		t.Fatalf("panicking job state = %s, want %s", st.State, StateFailed)
	}
	if !strings.Contains(st.Error, "panic: boom") {
		t.Fatalf("panicking job error = %q, want it to carry the panic value", st.Error)
	}
	if !strings.Contains(st.Error, "goroutine") {
		t.Fatalf("panicking job error carries no stack trace:\n%s", st.Error)
	}

	// The single worker must have survived to run the next job.
	j2, err := s.Submit(Request{Experiment: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j2.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("follow-up job never finished: the worker died with the panic")
	}
	if got := j2.State(); got != StateDone {
		t.Fatalf("follow-up job state = %s, want %s", got, StateDone)
	}
}
