package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestChaosEndpoint drives POST /v1/chaos end to end: the shorthand admits
// a chaos-sweep job, the job passes every oracle, and the per-oracle
// verdicts land in /metrics.
func TestChaosEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short")
	}
	_, ts := newTestServer(t, Config{Parallel: 2, QueueDepth: 8})

	resp, err := http.Post(ts.URL+"/v1/chaos", "application/json",
		strings.NewReader(`{"seed":1,"sweep":4}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/chaos = %d: %s", resp.StatusCode, raw)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Experiment != "chaos" || st.Sweep != 4 {
		t.Fatalf("chaos submit status = %+v", st)
	}

	code, body := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"?wait=120")
	if code != http.StatusOK {
		t.Fatalf("poll = %d", code)
	}
	var got Status
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("chaos job = %+v", got)
	}
	if !strings.Contains(got.Result.Table, "Oracle") {
		t.Fatalf("chaos table missing oracle summary:\n%s", got.Result.Table)
	}

	code, metricsBody := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"k2d_chaos_storms_total 4",
		"k2d_chaos_failures_total 0",
		`k2d_chaos_oracle_total{oracle="dsm",result="pass"} 4`,
		`k2d_chaos_oracle_total{oracle="convergence",result="pass"} 4`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metricsBody)
		}
	}

	// Unknown fields are rejected, matching /v1/jobs.
	resp, err = http.Post(ts.URL+"/v1/chaos", "application/json",
		strings.NewReader(`{"storms":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad chaos submit = %d, want 400", resp.StatusCode)
	}
}
