package server

import (
	"errors"
	"sync"
)

// ErrQueueFull is the admission-control shed: the queue is at its bound
// and the job is rejected (HTTP 429) rather than buffered without limit.
var ErrQueueFull = errors.New("server: job queue full")

// ErrDraining rejects submissions once a graceful shutdown has begun.
var ErrDraining = errors.New("server: draining, not admitting jobs")

// queue is the bounded priority FIFO between admission and the worker
// pool. Higher Request.Priority pops first; within a priority class, jobs
// pop in admission (Seq) order. Push never blocks — a full queue is an
// admission rejection, which is the whole point — while pop blocks until
// a job or close arrives.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Job // sorted: priority desc, then Seq asc
	limit  int
	closed bool
}

func newQueue(limit int) *queue {
	if limit <= 0 {
		limit = 64
	}
	q := &queue{limit: limit}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits j or rejects it without blocking.
func (q *queue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.items) >= q.limit {
		return ErrQueueFull
	}
	// Insert before the first strictly-lower-priority job: stable, so
	// equal priorities stay FIFO.
	i := 0
	for i < len(q.items) && q.items[i].Req.Priority >= j.Req.Priority {
		i++
	}
	q.items = append(q.items, nil)
	copy(q.items[i+1:], q.items[i:])
	q.items[i] = j
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available (highest priority, oldest first) or
// the queue is closed and empty; ok is false only in the latter case.
func (q *queue) pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j = q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return j, true
}

// remove takes a still-queued job out (DELETE of a queued job). It reports
// whether the job was found; false means a worker already claimed it.
func (q *queue) remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it == j {
			copy(q.items[i:], q.items[i+1:])
			q.items[len(q.items)-1] = nil
			q.items = q.items[:len(q.items)-1]
			return true
		}
	}
	return false
}

// depth returns the number of queued jobs.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// drain closes the queue — push rejects, workers exit once it empties —
// and returns the jobs that never started, for the caller to cancel.
func (q *queue) drain() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	left := q.items
	q.items = nil
	q.cond.Broadcast()
	return left
}
