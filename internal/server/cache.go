package server

import (
	"container/list"
	"sync"

	"k2/internal/experiment"
)

// cacheKey identifies a deterministic job outcome: the experiment plus
// every parameter that can change its bytes (the determinism contract:
// same experiment, seed, topology and sweep size mean byte-identical
// tables and traces). Priority, timeout and format are scheduling and
// presentation knobs and deliberately absent. EngineParallel is absent
// for a stronger reason: the parallel engine is dispatch-order-identical
// by construction, so a sequential job's cached bytes are exactly what a
// parallel run would have produced (and vice versa) — keying on it would
// only split one result across redundant entries.
type cacheKey struct {
	Experiment  string
	Seed        int64
	WeakDomains int
	Sweep       int
	Replicas    int
	Protocol    string // normalized by Validate; "" = the default two-state
}

func cacheKeyOf(req Request) cacheKey {
	return cacheKey{
		Experiment:  req.Experiment,
		Seed:        req.Seed,
		WeakDomains: req.WeakDomains,
		Sweep:       req.Sweep,
		Replicas:    req.Replicas,
		Protocol:    req.DSMProtocol,
	}
}

// cacheEntry is one finished job's replayable outcome: the detached result,
// the full trace stream, and the entry's approximate footprint in bytes.
type cacheEntry struct {
	key     cacheKey
	res     experiment.Result
	events  []traceEvent
	dropped int
	bytes   int
}

// entryBytes estimates the retained footprint: the rendered table plus the
// buffered trace events.
func entryBytes(res experiment.Result, events []traceEvent) int {
	n := len(res.Table.String())
	for _, ev := range events {
		n += len(ev.Kind) + len(ev.Msg) + 16
	}
	return n
}

// resultCache is k2d's deterministic result cache: an LRU over terminal
// done jobs keyed by (experiment, seed, weak_domains, sweep, replicas,
// protocol). A hit is
// served byte-identically — same table, same trace stream — without
// touching a simulation engine. A nil *resultCache is a disabled cache:
// every method is a no-op.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // of *cacheEntry; front = most recently used
	entries map[cacheKey]*list.Element

	hits, misses, evictions uint64
	bytes                   int
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[cacheKey]*list.Element),
	}
}

// get looks key up, counting a hit or a miss.
func (c *resultCache) get(key cacheKey) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores a finished job's outcome, detaching the result so the cache
// never pins simulation engines, and evicts least-recently-used entries
// past the capacity bound.
func (c *resultCache) put(key cacheKey, res experiment.Result, events []traceEvent, dropped int) {
	if c == nil {
		return
	}
	ent := &cacheEntry{
		key:     key,
		res:     res.Detached(),
		events:  append([]traceEvent(nil), events...),
		dropped: dropped,
	}
	ent.bytes = entryBytes(ent.res, ent.events)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Deterministic jobs can only produce the same bytes again; keep
		// the existing entry, just refresh recency.
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(ent)
	c.bytes += ent.bytes
	for c.order.Len() > c.cap {
		el := c.order.Back()
		old := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.entries, old.key)
		c.bytes -= old.bytes
		c.evictions++
	}
}

// cacheStats is the snapshot /metrics renders.
type cacheStats struct {
	enabled                 bool
	hits, misses, evictions uint64
	entries, bytes          int
}

func (c *resultCache) stats() cacheStats {
	if c == nil {
		return cacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		enabled: true,
		hits:    c.hits, misses: c.misses, evictions: c.evictions,
		entries: c.order.Len(), bytes: c.bytes,
	}
}
