package fleet

import (
	"math"
	"sync"
	"time"
)

// RateBurst is one tenant's quota: a token bucket refilling at Rate
// tokens/second with capacity Burst.
type RateBurst struct {
	Rate  float64
	Burst float64
}

// quotas is the per-tenant admission throttle in front of the workers'
// own queue-bound admission control: each tenant draws one token per
// submitted job from a private bucket. An empty bucket sheds the request
// with an honest Retry-After — the exact time until the bucket next holds
// a whole token — rather than queueing it, so one chatty tenant cannot
// starve the fleet for the rest.
type quotas struct {
	mu        sync.Mutex
	def       RateBurst
	overrides map[string]RateBurst
	buckets   map[string]*bucket
	sheds     map[string]uint64 // per-tenant quota rejections, for /metrics
	now       func() time.Time  // injectable for tests
}

type bucket struct {
	RateBurst
	tokens float64
	last   time.Time
}

func newQuotas(def RateBurst, overrides map[string]RateBurst) *quotas {
	return &quotas{
		def:       def,
		overrides: overrides,
		buckets:   make(map[string]*bucket),
		sheds:     make(map[string]uint64),
		now:       time.Now,
	}
}

// allow draws one token from tenant's bucket. When the bucket is empty it
// reports ok=false plus how long until one token will have refilled.
func (q *quotas) allow(tenant string) (ok bool, retryAfter time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.buckets[tenant]
	if b == nil {
		rb := q.def
		if o, found := q.overrides[tenant]; found {
			rb = o
		}
		b = &bucket{RateBurst: rb, tokens: rb.Burst, last: now}
		q.buckets[tenant] = b
	}
	b.tokens = math.Min(b.Burst, b.tokens+now.Sub(b.last).Seconds()*b.Rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	q.sheds[tenant]++
	need := (1 - b.tokens) / b.Rate // seconds until one whole token
	return false, time.Duration(math.Ceil(need*1e3)) * time.Millisecond
}

// shedCounts snapshots the per-tenant shed tallies.
func (q *quotas) shedCounts() map[string]uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]uint64, len(q.sheds))
	for t, n := range q.sheds {
		out[t] = n
	}
	return out
}
