package fleet

import (
	"fmt"
	"net/http"
	"testing"

	"k2/internal/server"
)

// TestFleetChaosWorkerKill is the service-level chaos oracle: kill a worker
// while it owns queued and running jobs, and require the fleet invariants
// to hold —
//
//	no job lost:            every accepted job reaches a terminal state;
//	no job double-reported: the completed counters sum to exactly the
//	                        accepted count;
//	results unchanged:      every job finishes done, and repeats of its key
//	                        return the byte-identical table, because the
//	                        re-executed jobs are deterministic.
//
// The kill is an abrupt TCP-level death (closed listener and connections),
// the same failure the CI smoke step inflicts with SIGKILL.
func TestFleetChaosWorkerKill(t *testing.T) {
	// Parallel-1 workers and a slow-ish experiment build a real backlog, so
	// the victim dies holding both running and queued jobs.
	fx := startFleetWith(t, 3, Config{}, server.Config{Parallel: 1, QueueDepth: 64})

	const jobs = 10
	var ids []string
	accepted := 0
	for i := 0; i < jobs; i++ {
		st, resp := submitJSON(t, fx.ts.URL, fmt.Sprintf(`{"experiment":"f6a","seed":%d}`, 100+i), "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		accepted++
		ids = append(ids, st.ID)
	}

	// Pick the victim: the worker owning the most non-terminal jobs right
	// now. (With 10 distinct keys on 3 workers every worker owns some, but
	// choosing the busiest makes the orphan re-homing path unmissable.)
	owned := make(map[string]int)
	fx.rt.mu.Lock()
	for _, j := range fx.rt.jobs {
		j.mu.Lock()
		if j.terminal == nil {
			owned[j.worker]++
		}
		j.mu.Unlock()
	}
	fx.rt.mu.Unlock()
	victim := ""
	for _, w := range fx.workers {
		if victim == "" || owned[w.id] > owned[victim] {
			victim = w.id
		}
	}
	if owned[victim] == 0 {
		t.Fatalf("no worker owns a live job yet; backlog never formed (owned=%v)", owned)
	}
	for _, w := range fx.workers {
		if w.id == victim {
			w.ts.CloseClientConnections()
			w.ts.Close()
		}
	}
	t.Logf("killed %s while it owned %d live jobs", victim, owned[victim])

	// Every accepted job must still reach done: the dead worker's jobs are
	// re-executed on their keys' new owners.
	tables := make(map[string]string)
	for i, id := range ids {
		st := waitDone(t, fx.ts.URL, id)
		if st.State != server.StateDone {
			t.Fatalf("job %s (%d) finished %s after the kill: %s", id, i, st.State, st.Error)
		}
		j, ok := fx.rt.job(id)
		if !ok {
			t.Fatalf("router lost job %s", id)
		}
		tables[j.Key] = fetchText(t, fx.ts.URL, id)
	}

	// Byte-identity survives re-execution: resubmitting each key now (served
	// by whichever worker owns it after the ring shrank) returns the same
	// bytes the first run produced.
	for i := 0; i < jobs; i++ {
		body := fmt.Sprintf(`{"experiment":"f6a","seed":%d}`, 100+i)
		st, resp := submitJSON(t, fx.ts.URL, body, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("resubmit %d: HTTP %d", i, resp.StatusCode)
		}
		accepted++
		if fin := waitDone(t, fx.ts.URL, st.ID); fin.State != server.StateDone {
			t.Fatalf("resubmit %d finished %s", i, fin.State)
		}
		j, _ := fx.rt.job(st.ID)
		if got := fetchText(t, fx.ts.URL, st.ID); got != tables[j.Key] {
			t.Fatalf("key %s: table after worker kill differs from before", j.Key)
		}
	}

	m := scrapeMetrics(t, fx.ts.URL)
	if got := int(m["k2fleet_worker_deaths_total"]); got < 1 {
		t.Fatalf("worker_deaths_total = %d, want >= 1 after the kill", got)
	}
	if got := int(m["k2fleet_resubmits_total"]); got < 1 {
		t.Fatalf("resubmits_total = %d: the victim's %d live jobs were never re-homed", got, owned[victim])
	}
	// No double-reporting: terminal states sum to exactly the accepted count.
	sum := int(m[`k2fleet_jobs_completed_total{state="done"}`]) +
		int(m[`k2fleet_jobs_completed_total{state="failed"}`]) +
		int(m[`k2fleet_jobs_completed_total{state="cancelled"}`])
	if sum != accepted {
		t.Fatalf("completed states sum to %d, accepted %d — a job was lost or double-reported", sum, accepted)
	}
	if got := int(m[`k2fleet_jobs_completed_total{state="done"}`]); got != accepted {
		t.Fatalf("completed{done} = %d, want all %d", got, accepted)
	}
	if got := int(m["k2fleet_ring_size"]); got != 2 {
		t.Fatalf("ring_size = %d after one death, want 2", got)
	}
	if got := int(m["k2fleet_jobs_orphaned_total"]); got != 0 {
		t.Fatalf("orphaned = %d, want 0 (two workers survived)", got)
	}
}
