package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"k2/internal/server"
)

// metrics is the router's observability surface, rendered as Prometheus
// text exposition on GET /metrics. Like the worker's it is dependency-free.
// Honesty is the contract the loadgen harness verifies: every counter here
// must exactly match what a client could tally on its own side of the wire
// (accepted jobs, sheds by kind, terminal states, trace drops).
type metrics struct {
	mu        sync.Mutex
	submitted uint64            // jobs accepted and routed (got a fleet ID)
	routed    map[string]uint64 // accepted jobs by first-assigned worker
	completed map[server.State]uint64
	resubmits uint64 // jobs re-submitted after a worker death
	orphaned  uint64 // jobs failed because no worker could take them

	quotaSheds     uint64 // 429s from tenant token buckets (per-tenant in quotas)
	admissionSheds uint64 // 429s proxied from a worker's queue bound
	expired        uint64 // workers expired by missed heartbeats
	deaths         uint64 // workers removed after a proxy/transport error

	traceForwarded  uint64 // NDJSON lines fanned out (counted once, not per sub)
	traceSubDropped uint64 // lines lost by lagging subscribers, summed
	subscribers     int    // live trace subscribers (gauge)
}

func newFleetMetrics() *metrics {
	return &metrics{
		routed:    make(map[string]uint64),
		completed: make(map[server.State]uint64),
	}
}

func (m *metrics) recordRouted(worker string) {
	m.mu.Lock()
	m.submitted++
	m.routed[worker]++
	m.mu.Unlock()
}

func (m *metrics) recordCompleted(st server.State) {
	m.mu.Lock()
	m.completed[st]++
	m.mu.Unlock()
}

func (m *metrics) recordResubmit() {
	m.mu.Lock()
	m.resubmits++
	m.mu.Unlock()
}

func (m *metrics) recordOrphaned() {
	m.mu.Lock()
	m.orphaned++
	m.mu.Unlock()
}

func (m *metrics) recordQuotaShed() {
	m.mu.Lock()
	m.quotaSheds++
	m.mu.Unlock()
}

func (m *metrics) recordAdmissionShed() {
	m.mu.Lock()
	m.admissionSheds++
	m.mu.Unlock()
}

func (m *metrics) recordExpired() {
	m.mu.Lock()
	m.expired++
	m.mu.Unlock()
}

func (m *metrics) recordDeath() {
	m.mu.Lock()
	m.deaths++
	m.mu.Unlock()
}

func (m *metrics) addTraceForwarded(n int) {
	m.mu.Lock()
	m.traceForwarded += uint64(n)
	m.mu.Unlock()
}

func (m *metrics) addTraceSubDropped(n int) {
	m.mu.Lock()
	m.traceSubDropped += uint64(n)
	m.mu.Unlock()
}

func (m *metrics) traceSubscribers(delta int) {
	m.mu.Lock()
	m.subscribers += delta
	m.mu.Unlock()
}

// workerHealth is one worker's scrape-time state, supplied by the router.
type workerHealth struct {
	id string
	up bool
}

// render writes the Prometheus text exposition. Scrape-time gauges the
// metrics struct does not own (worker health, ring size, tenant sheds,
// tracked jobs, draining) come in as arguments.
func (m *metrics) render(w io.Writer, workers []workerHealth, ringSize int, tenantSheds map[string]uint64, tracked, inflight int, draining bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("k2fleet_jobs_submitted_total", "Jobs accepted and routed to a worker.", m.submitted)
	fmt.Fprintf(w, "# HELP k2fleet_jobs_routed_total Accepted jobs by first-assigned worker.\n# TYPE k2fleet_jobs_routed_total counter\n")
	for _, id := range sortedKeys(m.routed) {
		fmt.Fprintf(w, "k2fleet_jobs_routed_total{worker=%q} %d\n", id, m.routed[id])
	}
	fmt.Fprintf(w, "# HELP k2fleet_jobs_completed_total Jobs by terminal state, as recorded by the router.\n# TYPE k2fleet_jobs_completed_total counter\n")
	for _, st := range []server.State{server.StateDone, server.StateFailed, server.StateCancelled} {
		fmt.Fprintf(w, "k2fleet_jobs_completed_total{state=%q} %d\n", string(st), m.completed[st])
	}
	counter("k2fleet_resubmits_total", "Jobs re-submitted to a new owner after a worker death.", m.resubmits)
	counter("k2fleet_jobs_orphaned_total", "Jobs failed because no worker could take them.", m.orphaned)

	counter("k2fleet_quota_sheds_total", "Submissions shed by per-tenant token buckets (429).", m.quotaSheds)
	fmt.Fprintf(w, "# HELP k2fleet_tenant_sheds_total Quota sheds by tenant.\n# TYPE k2fleet_tenant_sheds_total counter\n")
	for _, t := range sortedKeys(tenantSheds) {
		fmt.Fprintf(w, "k2fleet_tenant_sheds_total{tenant=%q} %d\n", t, tenantSheds[t])
	}
	counter("k2fleet_admission_sheds_total", "Submissions shed by a worker's queue bound (429, proxied).", m.admissionSheds)

	fmt.Fprintf(w, "# HELP k2fleet_worker_up Per-worker health from heartbeats (1 up, 0 down).\n# TYPE k2fleet_worker_up gauge\n")
	for _, wh := range workers {
		up := 0
		if wh.up {
			up = 1
		}
		fmt.Fprintf(w, "k2fleet_worker_up{worker=%q} %d\n", wh.id, up)
	}
	gauge("k2fleet_ring_size", "Workers currently on the consistent-hash ring.", ringSize)
	counter("k2fleet_workers_expired_total", "Workers expired by missed heartbeats.", m.expired)
	counter("k2fleet_worker_deaths_total", "Workers removed after a transport error.", m.deaths)

	counter("k2fleet_trace_lines_forwarded_total", "NDJSON trace lines fanned out by the hubs (counted once per line).", m.traceForwarded)
	counter("k2fleet_trace_sub_dropped_total", "Trace lines lost by subscribers lagging out of the shared window.", m.traceSubDropped)
	gauge("k2fleet_trace_subscribers", "Live trace subscribers across all jobs.", m.subscribers)

	gauge("k2fleet_jobs_tracked", "Jobs the router currently retains (terminal and live).", tracked)
	gauge("k2fleet_jobs_inflight", "Routed jobs not yet known terminal.", inflight)
	d := 0
	if draining {
		d = 1
	}
	gauge("k2fleet_draining", "1 once graceful shutdown has begun.", d)
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
