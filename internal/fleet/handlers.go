package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"k2/internal/server"
)

// Handler returns the k2fleet v1 HTTP API. It is wire-compatible with a
// single k2d for the job endpoints — clients move from one daemon to the
// fleet by changing the address — plus the worker registry:
//
//	POST   /v1/jobs            submit (202; 429 quota/admission shed with
//	                           honest Retry-After and X-K2-Shed: quota|admission)
//	GET    /v1/jobs            list fleet job statuses, newest first
//	GET    /v1/jobs/{id}       poll one job (?wait=s long-polls; ?format=
//	                           text serves the cached byte-identical table,
//	                           markdown/csv proxy to the owning worker)
//	DELETE /v1/jobs/{id}       cancel, proxied to the owning worker
//	GET    /v1/jobs/{id}/trace fan-out NDJSON trace stream (survives worker
//	                           death; ends with an exact {"dropped":N})
//	POST   /v1/workers         register/heartbeat a worker {id, url}
//	GET    /v1/workers         list workers and their health
//	GET    /v1/experiments     proxied from a live worker
//	GET    /healthz            liveness (503 once draining)
//	GET    /metrics            fleet-level Prometheus text exposition
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", r.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", r.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", r.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", r.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", r.handleTrace)
	mux.HandleFunc("POST /v1/workers", r.handleRegister)
	mux.HandleFunc("GET /v1/workers", r.handleWorkers)
	mux.HandleFunc("GET /v1/experiments", r.handleExperiments)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// tenantOf extracts the caller's tenant: the X-K2-Tenant header, else an
// Authorization bearer token used as an API key, else "default".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-K2-Tenant"); t != "" {
		return t
	}
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		if key := strings.TrimSpace(strings.TrimPrefix(auth, "Bearer ")); key != "" {
			return key
		}
	}
	return "default"
}

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req server.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed job request: %v", err)
		return
	}
	st, code, err := rt.Submit(req, tenantOf(r))
	if err != nil {
		var shed *shedError
		if errors.As(err, &shed) {
			w.Header().Set("Retry-After", strconv.Itoa(shed.retryAfter))
			w.Header().Set("X-K2-Shed", shed.kind)
		}
		writeError(w, code, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	all := make([]*fjob, 0, len(rt.jobs))
	for _, j := range rt.jobs {
		all = append(all, j)
	}
	rt.mu.Unlock()
	// Newest first by admission order.
	sort.Slice(all, func(i, k int) bool { return all[i].Seq > all[k].Seq })
	out := make([]server.Status, 0, len(all))
	for _, j := range all {
		out = append(out, j.statusLocked())
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := rt.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if secs := r.URL.Query().Get("wait"); secs != "" {
		d, err := strconv.ParseFloat(secs, 64)
		if err != nil || d < 0 || d > 600 {
			writeError(w, http.StatusBadRequest, "wait must be seconds in [0, 600]")
			return
		}
		select {
		case <-j.done:
		case <-time.After(time.Duration(d * float64(time.Second))):
		case <-r.Context().Done():
			return
		}
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		writeJSON(w, http.StatusOK, j.statusLocked())
		return
	}
	j.mu.Lock()
	terminal := j.terminal
	j.mu.Unlock()
	if terminal == nil || terminal.State != server.StateDone || terminal.Result == nil {
		writeError(w, http.StatusConflict, "job %s is not done; a rendered table needs state %q",
			j.ID, server.StateDone)
		return
	}
	switch format {
	case "text":
		// Served from the router's cached terminal status: the table string
		// is byte-identical to the worker's (and to k2bench), worker alive
		// or not.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, terminal.Result.Table)
	case "markdown", "csv":
		// Structured renders need the worker's Table value; proxy them.
		url, wid, ok := rt.ownerOf(j)
		if !ok {
			writeError(w, http.StatusServiceUnavailable,
				"job %s's owner is down; only format=text is served from the router's cache", j.ID)
			return
		}
		resp, err := rt.client.Get(url + "/v1/jobs/" + wid + "?format=" + format)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "owner unreachable: %v", err)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body) //nolint:errcheck // streaming to a gone client
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q", format)
	}
}

func (rt *Router) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := rt.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	terminal := j.terminal
	j.mu.Unlock()
	if terminal != nil {
		writeError(w, http.StatusConflict, "job %s already %s", j.ID, terminal.State)
		return
	}
	url, wid, ok := rt.ownerOf(j)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "job %s is between workers; retry", j.ID)
		return
	}
	req, _ := http.NewRequestWithContext(r.Context(), http.MethodDelete, url+"/v1/jobs/"+wid, nil)
	resp, err := rt.client.Do(req)
	if err != nil {
		j.mu.Lock()
		owner := j.worker
		j.mu.Unlock()
		rt.markDead(owner)
		writeError(w, http.StatusServiceUnavailable, "owner unreachable: %v", err)
		return
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode == http.StatusAccepted {
		var st server.Status
		if json.Unmarshal(raw, &st) == nil && st.State.Terminal() {
			rt.recordTerminal(j, st)
		}
		writeJSON(w, http.StatusAccepted, j.statusLocked())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	w.Write(raw) //nolint:errcheck // passthrough
}

func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := rt.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	rt.hubFor(j).serve(w, r)
}

// registerBody is the POST /v1/workers payload, doubling as a heartbeat.
type registerBody struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	var body registerBody
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<12))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil || body.ID == "" || body.URL == "" {
		writeError(w, http.StatusBadRequest, "register needs {\"id\":..., \"url\":...}")
		return
	}
	rt.Register(body.ID, body.URL)
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "workers": rt.ringSize()})
}

func (rt *Router) ringSize() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring.Len()
}

func (rt *Router) handleWorkers(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID       string `json:"id"`
		URL      string `json:"url"`
		Up       bool   `json:"up"`
		LastBeat string `json:"last_beat,omitempty"`
	}
	rt.mu.Lock()
	out := make([]entry, 0, len(rt.workers))
	for _, id := range sortedWorkerIDs(rt.workers) {
		wr := rt.workers[id]
		e := entry{ID: wr.id, URL: wr.url, Up: wr.up}
		if !wr.lastBeat.IsZero() {
			e.LastBeat = wr.lastBeat.UTC().Format(time.RFC3339Nano)
		}
		out = append(out, e)
	}
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleExperiments(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	var url string
	for _, id := range sortedWorkerIDs(rt.workers) {
		if rt.workers[id].up {
			url = rt.workers[id].url
			break
		}
	}
	rt.mu.Unlock()
	if url == "" {
		writeError(w, http.StatusServiceUnavailable, "no live workers")
		return
	}
	resp, err := rt.client.Get(url + "/v1/experiments")
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "worker unreachable: %v", err)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // passthrough
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	ringSize := rt.ring.Len()
	tracked := len(rt.jobs)
	inflight := rt.inflight
	draining := rt.draining
	rt.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.metrics.render(w, rt.Workers(), ringSize, rt.quotas.shedCounts(), tracked, inflight, draining)
}
