package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"k2/internal/server"
)

// Router is the k2fleet core: the worker registry and ring, the fleet job
// table, the re-submit-on-death supervisor and the trace hubs. Create with
// NewRouter, serve Handler(), and stop with Drain/Close.
type Router struct {
	cfg     Config
	quotas  *quotas
	metrics *metrics
	client  *http.Client // proxy transport; streaming-safe (no global timeout)

	mu       sync.Mutex
	ring     ring
	workers  map[string]*workerRec
	jobs     map[string]*fjob
	finished []*fjob // terminal jobs in finish order, for bounded retention
	nextSeq  uint64
	inflight int // routed jobs not yet known terminal
	draining bool

	stop chan struct{} // closed once, aborts watchers/hubs/supervisor
	once sync.Once
	wg   sync.WaitGroup
}

// workerRec is one registered worker.
type workerRec struct {
	id       string
	url      string // base URL, e.g. http://127.0.0.1:19091
	up       bool
	lastBeat time.Time
}

// fjob is one fleet-admitted job: the router's own ID, the worker currently
// owning it, and — once known — its single cached terminal status. The
// terminal status is recorded exactly once; that is the no-double-report
// guarantee.
type fjob struct {
	ID     string
	Seq    uint64
	Req    server.Request // seed already normalized
	Tenant string
	Key    string

	mu        sync.Mutex
	worker    string         // current owner's ID
	workerJob string         // owner-side job ID
	last      *server.Status // most recent polled status (ID rewritten)
	terminal  *server.Status // cached terminal status; nil while live
	resubmits int
	hub       *hub
	done      chan struct{} // closed when terminal is recorded
}

// NewRouter builds a router; Start launches the heartbeat supervisor.
func NewRouter(cfg Config) *Router {
	cfg = cfg.withDefaults()
	return &Router{
		cfg:     cfg,
		quotas:  newQuotas(RateBurst{Rate: cfg.TenantRate, Burst: cfg.TenantBurst}, cfg.TenantOverrides),
		metrics: newFleetMetrics(),
		client:  pooledClient(),
		workers: make(map[string]*workerRec),
		jobs:    make(map[string]*fjob),
		stop:    make(chan struct{}),
	}
}

// Start launches the heartbeat supervisor (a no-op with HeartbeatTTL 0).
func (r *Router) Start() {
	if r.cfg.HeartbeatTTL <= 0 {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		tick := time.NewTicker(r.cfg.HeartbeatTTL / 2)
		defer tick.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-tick.C:
				r.expireWorkers()
			}
		}
	}()
}

func (r *Router) expireWorkers() {
	cutoff := time.Now().Add(-r.cfg.HeartbeatTTL)
	r.mu.Lock()
	var dead []string
	for id, w := range r.workers {
		if w.up && w.lastBeat.Before(cutoff) {
			dead = append(dead, id)
		}
	}
	r.mu.Unlock()
	for _, id := range dead {
		r.metrics.recordExpired()
		r.markDead(id)
	}
}

// Register upserts a worker and doubles as its heartbeat. A worker that was
// down (expired, or removed after a transport error) rejoins the ring; its
// old jobs were already re-homed and stay where they are.
func (r *Router) Register(id, url string) {
	r.mu.Lock()
	w := r.workers[id]
	if w == nil {
		w = &workerRec{id: id, url: url}
		r.workers[id] = w
	}
	w.url = url
	w.lastBeat = time.Now()
	if !w.up {
		w.up = true
		r.ring.Add(id)
	}
	r.mu.Unlock()
}

// markDead removes a worker from the ring and re-homes every non-terminal
// job it owned. Re-executing an orphaned job on its key's new owner is
// safe — the contract the whole fleet leans on — because a deterministic
// job can only produce the byte-identical result again.
func (r *Router) markDead(id string) {
	r.mu.Lock()
	w := r.workers[id]
	if w == nil || !w.up {
		r.mu.Unlock()
		return
	}
	w.up = false
	r.ring.Remove(id)
	var orphans []*fjob
	for _, j := range r.jobs {
		j.mu.Lock()
		if j.terminal == nil && j.worker == id {
			orphans = append(orphans, j)
		}
		j.mu.Unlock()
	}
	r.mu.Unlock()
	r.metrics.recordDeath()
	for _, j := range orphans {
		r.wg.Add(1)
		go func(j *fjob) {
			defer r.wg.Done()
			r.resubmit(j)
		}(j)
	}
}

// resubmit re-homes one orphaned job onto its key's current owner,
// retrying through admission sheds and further deaths until ResubmitGrace
// runs out, after which the job fails honestly rather than silently.
func (r *Router) resubmit(j *fjob) {
	deadline := time.Now().Add(r.cfg.ResubmitGrace)
	for time.Now().Before(deadline) {
		select {
		case <-r.stop:
			return
		default:
		}
		j.mu.Lock()
		terminal := j.terminal != nil
		j.mu.Unlock()
		if terminal {
			return
		}
		r.mu.Lock()
		owner, ok := r.ring.Owner(j.Key)
		var url string
		if ok {
			url = r.workers[owner].url
		}
		r.mu.Unlock()
		if !ok {
			sleepOrStop(100*time.Millisecond, r.stop)
			continue
		}
		st, code, err := r.proxySubmit(url, j.Req)
		switch {
		case err != nil:
			r.markDead(owner)
			continue
		case code == http.StatusAccepted:
			j.mu.Lock()
			j.worker = owner
			j.workerJob = st.ID
			j.resubmits++
			j.mu.Unlock()
			r.metrics.recordResubmit()
			if st.State.Terminal() {
				r.recordTerminal(j, st)
			}
			return
		case code == http.StatusTooManyRequests:
			sleepOrStop(200*time.Millisecond, r.stop)
			continue
		default:
			r.metrics.recordOrphaned()
			r.recordTerminal(j, server.Status{
				ID: j.ID, Experiment: j.Req.Experiment, State: server.StateFailed,
				Error: fmt.Sprintf("resubmit after worker death rejected with HTTP %d", code),
			})
			return
		}
	}
	r.metrics.recordOrphaned()
	r.recordTerminal(j, server.Status{
		ID: j.ID, Experiment: j.Req.Experiment, State: server.StateFailed,
		Error: "no worker could take the job after its owner died",
	})
}

// proxySubmit POSTs req to a worker and decodes the job status on 202. A
// non-2xx code comes back with a zero Status; a transport error means the
// worker should be presumed dead.
func (r *Router) proxySubmit(workerURL string, req server.Request) (server.Status, int, error) {
	body, _ := json.Marshal(req)
	resp, err := r.client.Post(workerURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return server.Status{}, 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if resp.StatusCode != http.StatusAccepted {
		return server.Status{}, resp.StatusCode, nil
	}
	var st server.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		return server.Status{}, 0, fmt.Errorf("bad worker submit body: %w", err)
	}
	return st, resp.StatusCode, nil
}

// Submit admits one request for tenant: quota, ring resolution, proxy to
// the owner (chasing deaths), fleet ID assignment and watcher start. The
// returned status already carries the fleet ID.
func (r *Router) Submit(req server.Request, tenant string) (server.Status, int, error) {
	if err := req.Validate(); err != nil {
		return server.Status{}, http.StatusBadRequest, err
	}
	if req.Seed == 0 {
		req.Seed = r.cfg.DefaultSeed
	}
	r.mu.Lock()
	draining := r.draining
	r.mu.Unlock()
	if draining {
		return server.Status{}, http.StatusServiceUnavailable, fmt.Errorf("fleet: draining, not admitting jobs")
	}
	if ok, retry := r.quotas.allow(tenant); !ok {
		r.metrics.recordQuotaShed()
		secs := int(retry.Seconds() + 0.999)
		if secs < 1 {
			secs = 1
		}
		return server.Status{}, http.StatusTooManyRequests,
			&shedError{kind: "quota", retryAfter: secs, msg: fmt.Sprintf("tenant %q over quota", tenant)}
	}

	key := JobKey(req)
	// Chase the ring: a transport error during the proxy marks the target
	// dead and re-resolves, at most once per registered worker.
	for attempt := 0; ; attempt++ {
		r.mu.Lock()
		owner, ok := r.ring.Owner(key)
		var url string
		if ok {
			url = r.workers[owner].url
		}
		n := len(r.workers)
		r.mu.Unlock()
		if !ok {
			return server.Status{}, http.StatusServiceUnavailable, fmt.Errorf("fleet: no live workers")
		}
		st, code, err := r.proxySubmit(url, req)
		if err != nil {
			r.markDead(owner)
			if attempt < n {
				continue
			}
			return server.Status{}, http.StatusServiceUnavailable, fmt.Errorf("fleet: no worker reachable: %v", err)
		}
		switch code {
		case http.StatusAccepted:
			j := r.admit(req, tenant, key, owner, st)
			return j.statusLocked(), http.StatusAccepted, nil
		case http.StatusTooManyRequests:
			r.metrics.recordAdmissionShed()
			return server.Status{}, code, &shedError{kind: "admission", retryAfter: 1,
				msg: fmt.Sprintf("worker %s queue full", owner)}
		default:
			return server.Status{}, code, fmt.Errorf("worker %s rejected the job with HTTP %d", owner, code)
		}
	}
}

// shedError is a 429 with its Retry-After and shed kind attached, so the
// HTTP layer can surface both honestly.
type shedError struct {
	kind       string // "quota" or "admission"
	retryAfter int
	msg        string
}

func (e *shedError) Error() string { return e.msg }

// admit records an accepted job and starts its watcher.
func (r *Router) admit(req server.Request, tenant, key, owner string, st server.Status) *fjob {
	r.mu.Lock()
	r.nextSeq++
	j := &fjob{
		ID:        fmt.Sprintf("f%08d", r.nextSeq),
		Seq:       r.nextSeq,
		Req:       req,
		Tenant:    tenant,
		Key:       key,
		worker:    owner,
		workerJob: st.ID,
		done:      make(chan struct{}),
	}
	rewritten := st
	rewritten.ID = j.ID
	j.last = &rewritten
	r.jobs[j.ID] = j
	r.inflight++
	r.mu.Unlock()
	r.metrics.recordRouted(owner)
	if st.State.Terminal() {
		// A result-cache hit on the worker finishes at submit time.
		r.recordTerminal(j, st)
		return j
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.watch(j)
	}()
	return j
}

// watch long-polls the job's current owner until a terminal status is
// seen. A transport error marks the owner dead (triggering the re-submit
// path) and the watcher follows the job to its new home.
func (r *Router) watch(j *fjob) {
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		j.mu.Lock()
		if j.terminal != nil {
			j.mu.Unlock()
			return
		}
		worker, wid := j.worker, j.workerJob
		j.mu.Unlock()
		r.mu.Lock()
		rec := r.workers[worker]
		up := rec != nil && rec.up
		var url string
		if up {
			url = rec.url
		}
		r.mu.Unlock()
		if !up {
			// Between owners: the resubmit path is (or will be) running.
			sleepOrStop(50*time.Millisecond, r.stop)
			continue
		}
		resp, err := r.client.Get(url + "/v1/jobs/" + wid + "?wait=30")
		if err != nil {
			r.markDead(worker)
			continue
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			// The worker restarted and forgot the job: re-home it.
			r.markDead(worker)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			sleepOrStop(100*time.Millisecond, r.stop)
			continue
		}
		var st server.Status
		if err := json.Unmarshal(raw, &st); err != nil {
			sleepOrStop(100*time.Millisecond, r.stop)
			continue
		}
		j.mu.Lock()
		if j.workerJob == wid { // ignore a stale poll racing a re-submit
			rewritten := st
			rewritten.ID = j.ID
			j.last = &rewritten
		}
		stale := j.workerJob != wid
		j.mu.Unlock()
		if !stale && st.State.Terminal() {
			r.recordTerminal(j, st)
			return
		}
	}
}

// recordTerminal caches the job's single terminal status — exactly once,
// no matter how many paths race to report it — and applies retention. The
// metrics and retention bookkeeping land before done closes: a client that
// observes completion and then scrapes /metrics must already see itself
// counted, or the "metrics stay honest" contract breaks at the margin.
func (r *Router) recordTerminal(j *fjob, st server.Status) {
	st.ID = j.ID
	j.mu.Lock()
	if j.terminal != nil {
		j.mu.Unlock()
		return
	}
	j.terminal = &st
	j.last = &st
	j.mu.Unlock()
	r.metrics.recordCompleted(st.State)
	r.mu.Lock()
	r.inflight--
	r.finished = append(r.finished, j)
	for len(r.finished) > r.cfg.MaxFinished {
		old := r.finished[0]
		r.finished = r.finished[1:]
		delete(r.jobs, old.ID)
	}
	r.mu.Unlock()
	close(j.done)
}

// statusLocked snapshots the job's client-visible status.
func (j *fjob) statusLocked() server.Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal != nil {
		return *j.terminal
	}
	if j.last != nil {
		return *j.last
	}
	return server.Status{ID: j.ID, Experiment: j.Req.Experiment, State: server.StateQueued}
}

// job looks a fleet job up by ID.
func (r *Router) job(id string) (*fjob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// ownerOf resolves a job's current owner to a live base URL.
func (r *Router) ownerOf(j *fjob) (workerURL, workerJob string, ok bool) {
	j.mu.Lock()
	worker, wid := j.worker, j.workerJob
	j.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.workers[worker]
	if rec == nil || !rec.up {
		return "", "", false
	}
	return rec.url, wid, true
}

// hubFor returns the job's fan-out hub, creating and starting it on first
// use.
func (r *Router) hubFor(j *fjob) *hub {
	j.mu.Lock()
	if j.hub == nil {
		h := newHub(r.cfg.HubWindow, r.metrics)
		j.hub = h
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			h.run(r.client,
				func() (string, bool) {
					url, wid, ok := r.ownerOf(j)
					if !ok {
						return "", false
					}
					return url + "/v1/jobs/" + wid + "/trace", true
				},
				func() bool {
					j.mu.Lock()
					defer j.mu.Unlock()
					return j.terminal != nil
				},
				r.stop)
		}()
	}
	h := j.hub
	j.mu.Unlock()
	return h
}

// Workers snapshots the registry for /v1/workers and /metrics.
func (r *Router) Workers() []workerHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]workerHealth, 0, len(r.workers))
	for _, id := range sortedWorkerIDs(r.workers) {
		w := r.workers[id]
		out = append(out, workerHealth{id: w.id, up: w.up})
	}
	return out
}

func sortedWorkerIDs(ws map[string]*workerRec) []string {
	ids := make([]string, 0, len(ws))
	for id := range ws {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Draining reports whether graceful shutdown has begun.
func (r *Router) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Drain stops admitting and waits until every routed job is terminal or
// ctx expires. It does not cancel worker-side jobs — the workers drain
// themselves on their own SIGTERM — and always leaves the router's
// background goroutines stopped.
func (r *Router) Drain(ctx context.Context) error {
	r.mu.Lock()
	r.draining = true
	r.mu.Unlock()
	var err error
loop:
	for {
		r.mu.Lock()
		n := r.inflight
		r.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			err = fmt.Errorf("fleet: drain grace expired with %d jobs not yet terminal", n)
			break loop
		case <-time.After(25 * time.Millisecond):
		}
	}
	r.Close()
	return err
}

// Close aborts watchers, hubs and the supervisor and waits for them.
func (r *Router) Close() {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
}
