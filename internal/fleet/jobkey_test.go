package fleet

import (
	"testing"

	"k2/internal/server"
)

// TestJobKeyIgnoresEngineParallel pins the shard-key contract: requests
// differing only in engine_parallel land on the SAME ring position, because
// the parallel engine cannot change the job's bytes — spreading them would
// only defeat the per-worker result cache the sharding exists to exploit.
func TestJobKeyIgnoresEngineParallel(t *testing.T) {
	base := server.Request{Experiment: "scale", Seed: 9, WeakDomains: 4}
	par := base
	par.EngineParallel = 8
	if JobKey(base) != JobKey(par) {
		t.Fatalf("engine_parallel entered the shard key: %q vs %q", JobKey(base), JobKey(par))
	}
	// Parameters that DO change bytes must still split the key.
	other := base
	other.WeakDomains = 8
	if JobKey(base) == JobKey(other) {
		t.Fatal("weak_domains no longer distinguishes shard keys")
	}
}

// A replication degree changes the job's bytes, so it must split the shard
// key — while degree-0 requests keep the key they had before the field
// existed (ring placements survive the upgrade).
func TestJobKeyShardsOnReplicas(t *testing.T) {
	base := server.Request{Experiment: "replication", Seed: 3, WeakDomains: 16}
	r3 := base
	r3.Replicas = 3
	if JobKey(base) == JobKey(r3) {
		t.Fatal("replicas does not enter the shard key")
	}
	if got, want := JobKey(base), "replication/3/16/0"; got != want {
		t.Fatalf("degree-0 key %q, want the pre-replication form %q", got, want)
	}
}
