package fleet

import (
	"testing"
	"time"
)

// fakeClock drives a quotas instance on virtual time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newQuotaClock(q *quotas) *fakeClock {
	c := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	q.now = c.now
	return c
}

// TestQuotaBucket pins the token-bucket mechanics: burst capacity, steady
// refill, and an honest Retry-After equal to the time until the next whole
// token — never a round guess.
func TestQuotaBucket(t *testing.T) {
	q := newQuotas(RateBurst{Rate: 2, Burst: 4}, nil)
	clk := newQuotaClock(q)

	// A fresh tenant starts with a full burst.
	for i := 0; i < 4; i++ {
		if ok, _ := q.allow("acme"); !ok {
			t.Fatalf("request %d inside burst was shed", i)
		}
	}
	// The fifth draw finds an empty bucket: shed with the exact wait for
	// one token at 2/s = 500ms.
	ok, ra := q.allow("acme")
	if ok {
		t.Fatal("request past burst was admitted")
	}
	if ra != 500*time.Millisecond {
		t.Fatalf("Retry-After = %v, want exactly 500ms (1 token at 2/s)", ra)
	}

	// Advance 250ms: half a token. Still shed, and the advice shrinks to
	// the true remainder.
	clk.advance(250 * time.Millisecond)
	if ok, ra = q.allow("acme"); ok || ra != 250*time.Millisecond {
		t.Fatalf("half-refilled bucket: ok=%v retryAfter=%v, want shed with 250ms", ok, ra)
	}

	// Advance the advised wait: admitted again.
	clk.advance(250 * time.Millisecond)
	if ok, _ = q.allow("acme"); !ok {
		t.Fatal("request after the advised Retry-After was shed")
	}

	// Refill caps at Burst: a long idle spell does not bank extra tokens.
	clk.advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := q.allow("acme"); ok {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("after a long idle spell %d requests admitted, want the burst cap 4", admitted)
	}
}

// TestQuotaIsolation pins the point of per-tenant buckets: one tenant
// exhausting its quota must not cost any other tenant a single token, and
// overrides give named tenants their own rate class.
func TestQuotaIsolation(t *testing.T) {
	q := newQuotas(RateBurst{Rate: 1, Burst: 2}, map[string]RateBurst{
		"gold": {Rate: 100, Burst: 10},
	})
	newQuotaClock(q)

	// Drain the default-class tenant dry.
	for i := 0; i < 5; i++ {
		q.allow("free")
	}
	// A different default-class tenant still has its full burst.
	for i := 0; i < 2; i++ {
		if ok, _ := q.allow("other"); !ok {
			t.Fatalf("tenant %q shed because %q was chatty", "other", "free")
		}
	}
	// The gold override carries its own burst of 10.
	for i := 0; i < 10; i++ {
		if ok, _ := q.allow("gold"); !ok {
			t.Fatalf("gold request %d shed before its burst of 10", i)
		}
	}

	// Shed accounting is per tenant and counts only sheds, not draws.
	sheds := q.shedCounts()
	if sheds["free"] != 3 {
		t.Fatalf("free sheds = %d, want 3 (5 draws against burst 2)", sheds["free"])
	}
	if sheds["other"] != 0 || sheds["gold"] != 0 {
		t.Fatalf("unexpected sheds: other=%d gold=%d", sheds["other"], sheds["gold"])
	}
}
