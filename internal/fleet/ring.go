package fleet

import (
	"fmt"
	"sort"
)

// vnodes is how many points each worker claims on the ring. More points
// smooth the load split at the cost of a larger sorted array; 64 keeps the
// worst-case imbalance under ~20% at the fleet sizes k2 targets.
const vnodes = 64

// fnv1a is the 64-bit FNV-1a hash. It is written out rather than taken
// from hash/fnv so the ring's placement function is self-contained and
// visibly free of process-local state: the same bytes hash to the same
// point in every process, on every restart — the determinism the
// ring_test golden table pins down.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ringHash is the placement hash: FNV-1a finished with a splitmix64-style
// avalanche. Raw FNV-1a concentrates short inputs ("w1#0") in the top of
// the 64-bit space — the multiply only propagates entropy upward, so the
// offset basis dominates the high bits and a sort-ordered ring ends up
// grotesquely skewed (a 2-worker ring split 97%/3% in testing). The
// finalizer spreads that entropy back down; it is just arithmetic on the
// hash value, so placement stays a pure, process-independent function of
// the input bytes.
func ringHash(s string) uint64 {
	h := fnv1a(s)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ring is a consistent-hash ring over worker IDs. It is a value-semantics
// structure guarded by its owner (the Router): Add/Remove rebuild the
// sorted point array, Owner binary-searches it. Placement depends only on
// the member IDs — not on insertion order, process identity or time — so a
// restarted router resolves every key to the same worker, and the movement
// on membership change is the minimal 1/n reshuffle consistent hashing
// promises.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker string
}

// Add inserts a worker's virtual points. Adding a present worker is a
// no-op.
func (r *ring) Add(worker string) {
	for _, p := range r.points {
		if p.worker == worker {
			return
		}
	}
	for v := 0; v < vnodes; v++ {
		r.points = append(r.points, ringPoint{
			hash:   ringHash(fmt.Sprintf("%s#%d", worker, v)),
			worker: worker,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare, but the ring must be a total
		// order to be deterministic) break by worker ID.
		return r.points[i].worker < r.points[j].worker
	})
}

// Remove deletes a worker's virtual points.
func (r *ring) Remove(worker string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.worker != worker {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the distinct worker IDs on the ring, sorted.
func (r *ring) Members() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range r.points {
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of distinct workers.
func (r *ring) Len() int { return len(r.points) / vnodes }

// Owner maps a job key to its worker: the first ring point clockwise from
// the key's hash. ok is false on an empty ring.
func (r *ring) Owner(key string) (worker string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is a circle
	}
	return r.points[i].worker, true
}
