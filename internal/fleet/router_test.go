package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"k2/internal/server"
)

// workerFixture is one in-process k2d worker behind a real HTTP listener.
type workerFixture struct {
	id  string
	srv *server.Server
	ts  *httptest.Server
}

// fleetFixture is a router plus n workers, all in-process.
type fleetFixture struct {
	rt      *Router
	ts      *httptest.Server
	workers []*workerFixture
}

// startFleet boots a router and n registered workers. HeartbeatTTL is left
// zero unless cfg sets it: in tests, death detection happens through proxy
// transport errors, which keeps timing deterministic.
func startFleet(t *testing.T, n int, cfg Config) *fleetFixture {
	return startFleetWith(t, n, cfg, server.Config{Parallel: 2, QueueDepth: 64})
}

// startFleetWith is startFleet with control over the worker daemons' own
// config (queue depth, pool size) for backlog-sensitive tests.
func startFleetWith(t *testing.T, n int, cfg Config, wcfg server.Config) *fleetFixture {
	t.Helper()
	rt := NewRouter(cfg)
	rt.Start()
	fx := &fleetFixture{rt: rt, ts: httptest.NewServer(rt.Handler())}
	for i := 0; i < n; i++ {
		s := server.New(wcfg)
		s.Start()
		w := &workerFixture{id: workerID(i), srv: s, ts: httptest.NewServer(s.Handler())}
		rt.Register(w.id, w.ts.URL)
		fx.workers = append(fx.workers, w)
	}
	t.Cleanup(func() {
		fx.ts.Close()
		rt.Close()
		for _, w := range fx.workers {
			w.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			w.srv.Drain(ctx) //nolint:errcheck // teardown
			cancel()
		}
	})
	return fx
}

// submitJSON posts a job body with tenant headers and returns the decoded
// status plus the raw response.
func submitJSON(t *testing.T, base, body, tenant string) (server.Status, *http.Response) {
	t.Helper()
	req, _ := http.NewRequest("POST", base+"/v1/jobs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-K2-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var st server.Status
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("submit body %q: %v", raw, err)
		}
	}
	return st, resp
}

// waitDone long-polls a fleet job to its terminal state.
func waitDone(t *testing.T, base, id string) server.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?wait=10")
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st server.Status
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("poll %s body %q: %v", id, raw, err)
		}
		if st.State.Terminal() {
			return st
		}
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return server.Status{}
}

// fetchText grabs the rendered table for a done job.
func fetchText(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "?format=text")
	if err != nil {
		t.Fatalf("format=text %s: %v", id, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("format=text %s: HTTP %d: %s", id, resp.StatusCode, raw)
	}
	return string(raw)
}

// TestFleetRoutingByteIdentity is the tentpole contract end to end: jobs
// sharded across 3 workers by their deterministic key produce tables
// byte-identical to a single-process k2d, the same key always lands on the
// same worker (so the workers' result caches shard with the jobs), and the
// placement agrees with the ring.
func TestFleetRoutingByteIdentity(t *testing.T) {
	fx := startFleet(t, 3, Config{})

	// The single-process reference daemon.
	ref := server.New(server.Config{Parallel: 2, QueueDepth: 64})
	ref.Start()
	refTS := httptest.NewServer(ref.Handler())
	t.Cleanup(func() {
		refTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		ref.Drain(ctx) //nolint:errcheck // teardown
		cancel()
	})

	bodies := []string{
		`{"experiment":"t1"}`,
		`{"experiment":"t1","seed":7}`,
		`{"experiment":"t1","seed":11}`,
		`{"experiment":"t4"}`,
		`{"experiment":"t4","seed":7}`,
		`{"experiment":"t4","seed":13,"sweep":1}`,
	}
	type placed struct {
		key    string
		worker string
		table  string
	}
	first := make(map[string]placed)
	for round := 0; round < 2; round++ {
		for _, body := range bodies {
			st, resp := submitJSON(t, fx.ts.URL, body, "")
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %s: HTTP %d", body, resp.StatusCode)
			}
			if !strings.HasPrefix(st.ID, "f") {
				t.Fatalf("fleet job ID %q does not carry the fleet prefix", st.ID)
			}
			final := waitDone(t, fx.ts.URL, st.ID)
			if final.State != server.StateDone {
				t.Fatalf("%s finished %s: %s", body, final.State, final.Error)
			}
			table := fetchText(t, fx.ts.URL, st.ID)

			j, ok := fx.rt.job(st.ID)
			if !ok {
				t.Fatalf("router forgot job %s", st.ID)
			}
			j.mu.Lock()
			worker := j.worker
			j.mu.Unlock()

			// Placement must agree with the ring...
			fx.rt.mu.Lock()
			want, _ := fx.rt.ring.Owner(j.Key)
			fx.rt.mu.Unlock()
			if worker != want {
				t.Fatalf("%s placed on %s, ring says %s", j.Key, worker, want)
			}

			if p, seen := first[j.Key]; seen {
				// ...and stay put: the repeat submission rides the same
				// worker's result cache and returns the identical bytes.
				if p.worker != worker {
					t.Fatalf("key %s moved from %s to %s between submissions", j.Key, p.worker, worker)
				}
				if p.table != table {
					t.Fatalf("key %s: repeat submission returned different bytes", j.Key)
				}
				continue
			}
			first[j.Key] = placed{key: j.Key, worker: worker, table: table}

			// Byte-identity against the single-process daemon.
			refSt, refResp := submitJSON(t, refTS.URL, body, "")
			if refResp.StatusCode != http.StatusAccepted {
				t.Fatalf("reference submit %s: HTTP %d", body, refResp.StatusCode)
			}
			if fin := waitDone(t, refTS.URL, refSt.ID); fin.State != server.StateDone {
				t.Fatalf("reference %s finished %s", body, fin.State)
			}
			if refTable := fetchText(t, refTS.URL, refSt.ID); refTable != table {
				t.Fatalf("%s: fleet table differs from single-process k2d\n--- fleet ---\n%s--- k2d ---\n%s",
					body, table, refTable)
			}
		}
	}

	// The work actually spread: with 6 distinct keys on 3 workers, at least
	// two workers must own something (all-on-one would mean sharding is
	// broken even if results are right).
	owners := make(map[string]bool)
	for _, p := range first {
		owners[p.worker] = true
	}
	if len(owners) < 2 {
		t.Fatalf("all %d keys landed on one worker; the ring is not spreading load", len(first))
	}
}

// TestFleetQuotaShed pins the tenant quota surface: a tenant over its
// bucket gets a 429 with X-K2-Shed: quota and an honest Retry-After, while
// other tenants sail through, and the per-tenant shed shows up in /metrics.
func TestFleetQuotaShed(t *testing.T) {
	fx := startFleet(t, 1, Config{
		TenantRate:  1000, // default tenants effectively unthrottled
		TenantBurst: 1000,
		TenantOverrides: map[string]RateBurst{
			"starved": {Rate: 0.1, Burst: 1},
		},
	})

	st, resp := submitJSON(t, fx.ts.URL, `{"experiment":"t1"}`, "starved")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first starved submit: HTTP %d", resp.StatusCode)
	}
	waitDone(t, fx.ts.URL, st.ID)

	_, resp = submitJSON(t, fx.ts.URL, `{"experiment":"t1","seed":2}`, "starved")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second starved submit: HTTP %d, want 429", resp.StatusCode)
	}
	if kind := resp.Header.Get("X-K2-Shed"); kind != "quota" {
		t.Fatalf("X-K2-Shed = %q, want %q", kind, "quota")
	}
	// One token at 0.1/s refills in 10s: the advice must say so, not "1".
	if ra := resp.Header.Get("Retry-After"); ra != "10" {
		t.Fatalf("Retry-After = %q, want %q (1 token at 0.1/s)", ra, "10")
	}

	// A different tenant is untouched by the starved tenant's shed.
	st, resp = submitJSON(t, fx.ts.URL, `{"experiment":"t1","seed":3}`, "other")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant shed alongside starved: HTTP %d", resp.StatusCode)
	}
	waitDone(t, fx.ts.URL, st.ID)

	metrics := scrapeMetrics(t, fx.ts.URL)
	if got := metrics[`k2fleet_tenant_sheds_total{tenant="starved"}`]; got != 1 {
		t.Fatalf("tenant sheds for starved = %v, want 1", got)
	}
	if got := metrics["k2fleet_quota_sheds_total"]; got != 1 {
		t.Fatalf("quota sheds = %v, want 1", got)
	}
}

func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return parsePrometheus(string(raw))
}

// TestFleetMetricsHonesty submits a known mix and requires the fleet
// counters to match the client-side tally exactly — the contract the
// 100k-job loadgen harness later verifies at scale.
func TestFleetMetricsHonesty(t *testing.T) {
	fx := startFleet(t, 3, Config{})

	accepted, done := 0, 0
	var ids []string
	for i := 0; i < 9; i++ {
		body := fmt.Sprintf(`{"experiment":"t1","seed":%d}`, 1+i%4)
		st, resp := submitJSON(t, fx.ts.URL, body, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		accepted++
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := waitDone(t, fx.ts.URL, id); st.State == server.StateDone {
			done++
		}
	}

	m := scrapeMetrics(t, fx.ts.URL)
	if got := int(m["k2fleet_jobs_submitted_total"]); got != accepted {
		t.Fatalf("submitted_total = %d, client saw %d accepted", got, accepted)
	}
	if got := int(m[`k2fleet_jobs_completed_total{state="done"}`]); got != done {
		t.Fatalf(`completed{done} = %d, client saw %d`, got, done)
	}
	var routedSum int
	for i := 0; i < 3; i++ {
		routedSum += int(m[fmt.Sprintf("k2fleet_jobs_routed_total{worker=%q}", workerID(i))])
	}
	if routedSum != accepted {
		t.Fatalf("routed by worker sums to %d, want %d", routedSum, accepted)
	}
	if got := int(m["k2fleet_ring_size"]); got != 3 {
		t.Fatalf("ring_size = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if got := m[fmt.Sprintf("k2fleet_worker_up{worker=%q}", workerID(i))]; got != 1 {
			t.Fatalf("worker_up{%s} = %v, want 1", workerID(i), got)
		}
	}
	if got := int(m["k2fleet_jobs_inflight"]); got != 0 {
		t.Fatalf("inflight = %d after all jobs terminal, want 0", got)
	}
}

// TestFleetTraceFanOutE2E streams one job's trace through the router to
// several subscribers concurrently and checks they all see the same
// NDJSON, matching a direct stream from the owning worker.
func TestFleetTraceFanOutE2E(t *testing.T) {
	fx := startFleet(t, 3, Config{})

	st, resp := submitJSON(t, fx.ts.URL, `{"experiment":"f6a"}`, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}

	const readers = 3
	type res struct {
		lines []string
	}
	results := make([]res, readers)
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		go func(i int) {
			resp, err := http.Get(fx.ts.URL + "/v1/jobs/" + st.ID + "/trace")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			for _, l := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
				if l != "" {
					results[i].lines = append(results[i].lines, l)
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < readers; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("trace reader: %v", err)
		}
	}
	if final := waitDone(t, fx.ts.URL, st.ID); final.State != server.StateDone {
		t.Fatalf("job finished %s", final.State)
	}

	if len(results[0].lines) == 0 {
		t.Fatal("no trace lines reached subscribers through the fan-out hub")
	}
	for i := 1; i < readers; i++ {
		if len(results[i].lines) != len(results[0].lines) {
			t.Fatalf("reader %d saw %d lines, reader 0 saw %d", i, len(results[i].lines), len(results[0].lines))
		}
		for k := range results[i].lines {
			if results[i].lines[k] != results[0].lines[k] {
				t.Fatalf("reader %d line %d differs from reader 0", i, k)
			}
		}
	}
}
