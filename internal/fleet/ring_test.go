package fleet

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// ringKeys builds a deterministic population of realistic job keys.
func ringKeys(n int) []string {
	keys := make([]string, 0, n)
	exps := []string{"t1", "t4", "faults", "scale", "chaos"}
	for i := 0; i < n; i++ {
		keys = append(keys, fmt.Sprintf("%s/%d/%d/%d", exps[i%len(exps)], 1+i%64, i%5, i%3))
	}
	return keys
}

func workerID(i int) string { return fmt.Sprintf("w%d", i+1) }

// buildRing returns a ring holding workers w1..wN.
func buildRing(n int) *ring {
	r := &ring{}
	for i := 0; i < n; i++ {
		r.Add(workerID(i))
	}
	return r
}

// TestRingDeterminism pins the two properties the fleet leans on:
//
//  1. Placement is a pure function of (key, membership): fresh rings built
//     in any insertion order — as after a process restart — resolve every
//     key identically. A restarted router must route a key to the worker
//     that already holds its cached result.
//  2. Membership changes move the minimum: a join or leave at size N
//     remaps only the keys whose owner actually changed, about 1/N of
//     them, never a full reshuffle.
//
// The exact assignments, distribution and movement at ring sizes 1..8 are
// committed as an ablation-style table in testdata/ring_movement.golden;
// any drift in the hash or ring layout fails the diff (and would silently
// un-shard every deployed fleet's caches, which is why it is pinned).
func TestRingDeterminism(t *testing.T) {
	keys := ringKeys(1000)

	// Insertion order must not matter.
	fwd := buildRing(8)
	rev := &ring{}
	for i := 7; i >= 0; i-- {
		rev.Add(workerID(i))
	}
	for _, k := range keys {
		a, _ := fwd.Owner(k)
		b, _ := rev.Owner(k)
		if a != b {
			t.Fatalf("insertion order changed placement of %q: %s vs %s", k, a, b)
		}
	}

	// Restart determinism: a second independently-built ring agrees.
	again := buildRing(8)
	for _, k := range keys {
		a, _ := fwd.Owner(k)
		b, _ := again.Owner(k)
		if a != b {
			t.Fatalf("rebuilt ring moved %q: %s vs %s", k, a, b)
		}
	}

	// Remove and re-add: the ring heals to the identical layout.
	healed := buildRing(8)
	healed.Remove("w3")
	healed.Add("w3")
	for _, k := range keys {
		a, _ := fwd.Owner(k)
		b, _ := healed.Owner(k)
		if a != b {
			t.Fatalf("remove+re-add moved %q: %s vs %s", k, a, b)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Consistent-hash ring: distribution and movement, %d keys, %d vnodes/worker.\n", len(keys), vnodes)
	fmt.Fprintf(&b, "# size | per-worker key counts | moved on join size->size+1 | moved on w1 leave | fingerprint\n")
	for size := 1; size <= 8; size++ {
		r := buildRing(size)
		counts := make(map[string]int)
		fp := uint64(0)
		for _, k := range keys {
			o, ok := r.Owner(k)
			if !ok {
				t.Fatalf("size %d: no owner for %q", size, k)
			}
			counts[o]++
			fp = fp*1099511628211 ^ fnv1a(k+"=>"+o)
		}
		var dist []string
		mean := len(keys) / size
		for i := 0; i < size; i++ {
			c := counts[workerID(i)]
			dist = append(dist, fmt.Sprintf("%s:%d", workerID(i), c))
			// Balance guard, independent of the golden: with 64 vnodes no
			// worker should stray past 2x either side of the fair share.
			if c < mean/2 || c > mean*2 {
				t.Errorf("size %d: %s holds %d keys, fair share %d — ring badly skewed", size, workerID(i), c, mean)
			}
		}

		// Join: add one worker; only keys claimed by the newcomer move.
		joined := buildRing(size + 1)
		movedJoin, movedToNew := 0, 0
		for _, k := range keys {
			was, _ := r.Owner(k)
			now, _ := joined.Owner(k)
			if was != now {
				movedJoin++
				if now == workerID(size) {
					movedToNew++
				}
			}
		}
		if movedJoin != movedToNew {
			t.Fatalf("size %d join: %d keys moved but only %d to the new worker — an old->old move is not minimal",
				size, movedJoin, movedToNew)
		}

		// Leave: remove w1; only w1's keys move.
		left := buildRing(size)
		left.Remove("w1")
		movedLeave := 0
		for _, k := range keys {
			was, _ := r.Owner(k)
			now, ok := left.Owner(k)
			if !ok {
				if size != 1 {
					t.Fatalf("size %d: ring empty after one leave", size)
				}
				continue
			}
			if was != now {
				movedLeave++
				if was != "w1" {
					t.Fatalf("size %d leave: key %q moved %s->%s though its owner survived", size, k, was, now)
				}
			}
		}
		if size > 1 && movedLeave != counts["w1"] {
			t.Fatalf("size %d leave: moved %d, want exactly w1's %d keys", size, movedLeave, counts["w1"])
		}

		leaveCell := fmt.Sprintf("%d", movedLeave)
		if size == 1 {
			leaveCell = "-"
		}
		fmt.Fprintf(&b, "%d | %s | %d | %s | %016x\n", size, strings.Join(dist, " "), movedJoin, leaveCell, fp)
	}

	golden := filepath.Join("testdata", "ring_movement.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to regenerate): %v", err)
	}
	if string(want) != b.String() {
		t.Fatalf("ring table drifted from testdata/ring_movement.golden:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}
