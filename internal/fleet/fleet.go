// Package fleet scales the single-process k2d daemon into a sharded
// simulation service. A Router owns a consistent-hash ring of k2d worker
// processes: every job's deterministic key (experiment, seed, weak_domains,
// sweep) hashes onto exactly one worker, so the per-worker result caches
// shard with the jobs — any repeat of a key lands on the worker that
// already holds its bytes. The router proxies the /v1/jobs API, multiplexes
// live NDJSON trace streams through a fan-out hub with per-subscriber
// bounded windows and exact drop accounting, and puts per-tenant
// token-bucket quotas in front of the workers' admission control.
//
// Robustness is the point of the design: workers heartbeat the router, a
// dead worker is removed from the ring and every non-terminal job it owned
// is re-submitted to the key's new owner. Determinism makes that safe — a
// re-executed job can only produce the byte-identical result, so masking a
// worker death never changes what a client observes, only when it observes
// it. No job is lost and none is reported twice: the router hands out one
// fleet ID per admission and caches each job's single terminal status.
package fleet

import (
	"fmt"
	"net/http"
	"time"

	"k2/internal/experiment"
	"k2/internal/server"
)

// pooledClient builds an HTTP client sized for fleet traffic: hundreds of
// concurrent proxied submits, long-polls and trace streams to a handful of
// hosts. Go's default transport keeps only 2 idle connections per host, so
// at fleet concurrency nearly every request opens (and discards) a fresh
// TCP connection; under a 100k-job load that piles tens of thousands of
// sockets into TIME_WAIT, exhausts ephemeral ports, stalls heartbeats and
// makes the router declare healthy workers dead. Generous per-host pooling
// is what keeps the failure detector honest under load.
func pooledClient() *http.Client {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 0 // no global cap; the per-host bound governs
	t.MaxIdleConnsPerHost = 256
	t.IdleConnTimeout = 90 * time.Second
	return &http.Client{Transport: t}
}

// Config sizes the router.
type Config struct {
	// HeartbeatTTL expires a worker that has not registered or beaten for
	// this long; 0 disables expiry (workers then die only by proxy error).
	HeartbeatTTL time.Duration
	// DefaultSeed normalizes requests that carry no seed before hashing,
	// so "seed 0" and "seed <default>" shard (and cache) identically. 0
	// means experiment.FaultSeed, matching the workers' own default.
	DefaultSeed int64
	// TenantRate is the steady-state tokens/second each tenant's bucket
	// refills at; <= 0 means 50.
	TenantRate float64
	// TenantBurst is each bucket's capacity; <= 0 means 2*TenantRate.
	TenantBurst float64
	// TenantOverrides sets per-tenant rate/burst pairs, keyed by tenant.
	TenantOverrides map[string]RateBurst
	// MaxFinished bounds how many terminal jobs stay queryable on the
	// router; the oldest are evicted first. <= 0 means 4096.
	MaxFinished int
	// HubWindow bounds the shared trace window per job: a subscriber may
	// lag at most this many lines before it starts dropping. <= 0 means
	// 4096.
	HubWindow int
	// ResubmitGrace bounds how long a job orphaned by a worker death may
	// retry admission on its new owner before it is failed honestly.
	// <= 0 means 30s.
	ResubmitGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.DefaultSeed == 0 {
		c.DefaultSeed = experiment.FaultSeed
	}
	if c.TenantRate <= 0 {
		c.TenantRate = 50
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 2 * c.TenantRate
	}
	if c.MaxFinished <= 0 {
		c.MaxFinished = 4096
	}
	if c.HubWindow <= 0 {
		c.HubWindow = 4096
	}
	if c.ResubmitGrace <= 0 {
		c.ResubmitGrace = 30 * time.Second
	}
	return c
}

// JobKey is the deterministic shard key: every parameter that can change a
// job's bytes, and nothing else (priority, timeout and format are
// scheduling and presentation knobs; engine_parallel is excluded because
// the parallel engine is dispatch-order-identical — the same bytes come
// back at any worker count, so spreading those requests over the ring
// would only defeat result-cache sharding). Two requests with equal keys
// produce byte-identical tables and traces on any worker, which is what
// makes consistent-hash sharding also shard the result cache.
func JobKey(req server.Request) string {
	key := fmt.Sprintf("%s/%d/%d/%d", req.Experiment, req.Seed, req.WeakDomains, req.Sweep)
	// Appended only for a non-default protocol or replication degree:
	// default jobs keep the key (and thus the ring placement) they had
	// before either knob existed.
	if req.DSMProtocol != "" {
		key += "/" + req.DSMProtocol
	}
	if req.Replicas != 0 {
		key += fmt.Sprintf("/r%d", req.Replicas)
	}
	return key
}
