package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// hubLine parses one subscriber-side NDJSON line.
type hubLine struct {
	Seq           *uint64 `json:"seq"`
	Dropped       *int    `json:"dropped"`
	WorkerDropped *int    `json:"worker_dropped"`
	SubDropped    *int    `json:"sub_dropped"`
}

// readStream consumes a subscriber connection to EOF, returning the data
// lines (verbatim) and the terminal record if one arrived.
func readStream(t *testing.T, body *bufio.Scanner) (data []string, terminal *hubLine) {
	t.Helper()
	for body.Scan() {
		var l hubLine
		if err := json.Unmarshal(body.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", body.Text(), err)
		}
		if l.Dropped != nil && l.Seq == nil {
			cp := l
			terminal = &cp
			continue
		}
		data = append(data, body.Text())
	}
	if err := body.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return data, terminal
}

// TestHubFanOutAndReconnect runs the hub against an upstream worker that
// dies mid-stream: the first connection delivers 5 of 10 events and then
// drops the transport; the replacement (as after a router re-submit)
// replays the byte-identical stream from the start, plus the worker's
// terminal {"dropped":3}. Every subscriber must observe each event exactly
// once, in order, with no replay duplicates, and a terminal record that
// carries the worker's drops through unchanged.
func TestHubFanOutAndReconnect(t *testing.T) {
	const events = 10
	lines := make([]string, events)
	for i := range lines {
		lines[i] = fmt.Sprintf(`{"seq":%d,"kind":"ev","detail":"n%d"}`, i, i)
	}

	var phase atomic.Int32 // 0: first upstream (dies), 1+: replay upstream
	terminal := &atomic.Bool{}
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl := w.(http.Flusher)
		if phase.Add(1) == 1 {
			for _, l := range lines[:5] {
				fmt.Fprintln(w, l)
			}
			fl.Flush()
			// Die without finishing the chunked body: the hub must see a
			// transport error, not a clean EOF.
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		// The re-executed job: terminal before its stream is read, replayed
		// byte-identically from the beginning.
		terminal.Store(true)
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
		fmt.Fprintln(w, `{"dropped":3}`)
		fl.Flush()
	}))
	defer upstream.Close()

	h := newHub(1024, newFleetMetrics())
	stop := make(chan struct{})
	defer close(stop)
	var runDone sync.WaitGroup
	runDone.Add(1)
	go func() {
		defer runDone.Done()
		h.run(upstream.Client(), func() (string, bool) { return upstream.URL, true }, terminal.Load, stop)
	}()

	subs := httptest.NewServer(http.HandlerFunc(h.serve))
	defer subs.Close()

	const readers = 4
	type result struct {
		data     []string
		terminal *hubLine
	}
	results := make([]result, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(subs.URL)
			if err != nil {
				t.Errorf("reader %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			results[i].data, results[i].terminal = readStream(t, bufio.NewScanner(resp.Body))
		}(i)
	}
	wg.Wait()
	runDone.Wait()

	for i, r := range results {
		if len(r.data) != events {
			t.Fatalf("reader %d: %d events, want exactly %d (reconnect must not duplicate or lose)",
				i, len(r.data), events)
		}
		for k, got := range r.data {
			if got != lines[k] {
				t.Fatalf("reader %d line %d: %q, want %q", i, k, got, lines[k])
			}
		}
		if r.terminal == nil {
			t.Fatalf("reader %d: no terminal record despite worker drops", i)
		}
		if *r.terminal.Dropped != 3 || *r.terminal.WorkerDropped != 3 || *r.terminal.SubDropped != 0 {
			t.Fatalf("reader %d terminal: dropped=%d worker=%d sub=%d, want 3/3/0",
				i, *r.terminal.Dropped, *r.terminal.WorkerDropped, *r.terminal.SubDropped)
		}
	}
}

// slowWriter is a ResponseWriter whose Write stalls, standing in for a
// subscriber too slow for the stream. It implements just enough for
// hub.serve (no Flusher, so serve takes the unbuffered path).
type slowWriter struct {
	mu    sync.Mutex
	hdr   http.Header
	lines []string
	delay time.Duration
}

func (s *slowWriter) Header() http.Header { return s.hdr }
func (s *slowWriter) WriteHeader(int)     {}
func (s *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	s.mu.Lock()
	s.lines = append(s.lines, strings.TrimSuffix(string(p), "\n"))
	s.mu.Unlock()
	return len(p), nil
}

// TestHubSlowSubscriberDrops pins per-subscriber drop accounting: with a
// 4-line window and a subscriber that writes slower than the stream
// arrives, the overrun lines are dropped for that subscriber alone, and
// its terminal record reports the loss exactly — received + sub_dropped
// equals the total broadcast, and the fleet metric agrees.
func TestHubSlowSubscriberDrops(t *testing.T) {
	const total = 40
	m := newFleetMetrics()
	h := newHub(4, m)

	sw := &slowWriter{hdr: make(http.Header), delay: 3 * time.Millisecond}
	req := httptest.NewRequest("GET", "/trace", nil)
	served := make(chan struct{})
	go func() {
		defer close(served)
		h.serve(sw, req)
	}()

	// Give the subscriber a moment to join, then flood: the window holds 4
	// lines while each subscriber write takes 3ms.
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < total; i++ {
		h.broadcast([]byte(fmt.Sprintf(`{"seq":%d}`, i)))
	}
	h.close()
	<-served

	var data []string
	var term *hubLine
	for _, l := range sw.lines {
		var parsed hubLine
		if err := json.Unmarshal([]byte(l), &parsed); err != nil {
			t.Fatalf("bad line %q: %v", l, err)
		}
		if parsed.Dropped != nil && parsed.Seq == nil {
			cp := parsed
			term = &cp
			continue
		}
		data = append(data, l)
	}

	if term == nil {
		t.Fatalf("no terminal record; a lagging subscriber must be told what it lost (got %d lines)", len(data))
	}
	if *term.SubDropped == 0 {
		t.Fatal("subscriber kept up with a 4-line window at 3ms/write; test did not exercise lag")
	}
	if got := len(data) + *term.SubDropped; got != total {
		t.Fatalf("received %d + sub_dropped %d = %d, want exactly %d — drop accounting is not exact",
			len(data), *term.SubDropped, got, total)
	}
	if *term.WorkerDropped != 0 || *term.Dropped != *term.SubDropped {
		t.Fatalf("terminal attribution wrong: dropped=%d worker=%d sub=%d",
			*term.Dropped, *term.WorkerDropped, *term.SubDropped)
	}

	// No reordering and no duplication: seqs must be strictly increasing.
	last := int64(-1)
	for _, l := range data {
		var parsed hubLine
		json.Unmarshal([]byte(l), &parsed) //nolint:errcheck // parsed above
		if int64(*parsed.Seq) <= last {
			t.Fatalf("seq %d arrived after %d: reordered or duplicated", *parsed.Seq, last)
		}
		last = int64(*parsed.Seq)
	}

	// The fleet metric carries the same number.
	var buf strings.Builder
	m.render(&buf, nil, 0, nil, 0, 0, false)
	want := fmt.Sprintf("k2fleet_trace_sub_dropped_total %d", *term.SubDropped)
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("metrics missing %q:\n%s", want, buf.String())
	}
}
