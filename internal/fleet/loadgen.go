package fleet

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"k2/internal/server"
	"k2/internal/stats"
)

// MixEntry is one experiment in the load mix, picked in proportion to its
// weight.
type MixEntry struct {
	Experiment string
	Weight     int
}

// ParseMix parses "t1:3,t4:1" (weight defaults to 1).
func ParseMix(s string) ([]MixEntry, error) {
	if s == "" {
		return nil, nil
	}
	var out []MixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		exp, weight := part, 1
		if i := strings.IndexByte(part, ':'); i >= 0 {
			exp = part[:i]
			w, err := strconv.Atoi(part[i+1:])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("bad mix weight in %q", part)
			}
			weight = w
		}
		out = append(out, MixEntry{Experiment: exp, Weight: weight})
	}
	return out, nil
}

// LoadConfig parameterizes one k2load run against a fleet router (or,
// since the job API is wire-compatible, a single k2d).
type LoadConfig struct {
	URL  string // router base URL
	Jobs int    // total arrivals to offer
	// Rate is the open-loop arrival rate in jobs/second: arrivals are
	// scheduled on the clock and never wait for completions, so a slow
	// service faces the full offered load (the honest way to find its
	// shed point). <= 0 submits as fast as the client can.
	Rate float64
	// Mix is the experiment mix; nil means 100% t1.
	Mix []MixEntry
	// Seeds cycles arrivals over this many distinct seeds (1..Seeds).
	// Small values exercise the sharded result caches — repeats of a key
	// land on the same worker and are served from its cache; large values
	// force fresh simulation. <= 0 means 8.
	Seeds int
	// Subscribers opens this many concurrent trace subscribers on every
	// SubEvery-th accepted job. 0 disables trace fan-out load.
	Subscribers int
	// SubEvery samples accepted jobs for subscription; <= 0 means 100.
	SubEvery int
	// Tenants round-robins arrivals over these tenant names; nil means
	// the default tenant.
	Tenants []string
	// Timeout bounds one job's accepted-to-terminal wait before the
	// client counts it lost; <= 0 means 120s.
	Timeout time.Duration
	// Verify cross-checks the client-side tallies against the router's
	// /metrics at the end of the run.
	Verify bool
	// MaxInflight bounds concurrently outstanding arrivals (sockets and
	// goroutines); <= 0 means 512. When the bound is hit the next arrival
	// blocks — the load turns closed-loop at that margin, which the
	// harness accepts in exchange for not exhausting client fds on
	// 100k-job runs.
	MaxInflight int
}

// LatencySummary is the client-observed accepted-to-terminal latency.
type LatencySummary struct {
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// MetricsCheck is the result of diffing client-side accounting against the
// router's /metrics.
type MetricsCheck struct {
	Checked    bool     `json:"checked"`
	Matches    bool     `json:"matches"`
	Mismatches []string `json:"mismatches,omitempty"`
}

// LoadReport is k2load's JSON output: every count is client-side truth,
// tallied from what actually came over the wire.
type LoadReport struct {
	Jobs          int `json:"jobs"`
	Accepted      int `json:"accepted"`
	ShedQuota     int `json:"shed_quota"`
	ShedAdmission int `json:"shed_admission"`
	RejectedOther int `json:"rejected_other"`

	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Lost counts accepted jobs that never reached a terminal state
	// within the timeout — the count the chaos harness asserts is zero.
	Lost int `json:"lost"`

	UniqueKeys int `json:"unique_keys"`
	// ByteIdentityViolations counts jobs whose finished table differed
	// from another completion of the same key — determinism violations,
	// asserted zero regardless of sharding or worker deaths.
	ByteIdentityViolations int `json:"byte_identity_violations"`

	Latency LatencySummary `json:"latency"`

	TraceStreams int   `json:"trace_streams"`
	TraceEvents  int64 `json:"trace_events"`
	// TraceDropped sums the terminal {"dropped":N} records observed.
	TraceDropped int64 `json:"trace_dropped"`
	// TraceSubDropped sums only the subscriber-lag component, which must
	// exactly match k2fleet_trace_sub_dropped_total.
	TraceSubDropped int64 `json:"trace_sub_dropped"`

	ElapsedSec   float64 `json:"elapsed_sec"`
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"` // terminal jobs per second

	Metrics MetricsCheck `json:"metrics"`
}

// RunLoad drives the harness: open-loop arrivals at cfg.Rate, weighted
// experiment mix, seeds cycled to exercise the sharded caches, trace
// subscribers on sampled jobs, and client-side accounting precise enough
// to diff against the router's /metrics counter for counter.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadReport, error) {
	if cfg.Jobs <= 0 {
		return LoadReport{}, fmt.Errorf("k2load: jobs must be >= 1")
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 8
	}
	if cfg.SubEvery <= 0 {
		cfg.SubEvery = 100
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 512
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = []MixEntry{{Experiment: "t1", Weight: 1}}
	}
	var picks []string
	for _, m := range mix {
		for i := 0; i < m.Weight; i++ {
			picks = append(picks, m.Experiment)
		}
	}
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		tenants = []string{"default"}
	}

	client := pooledClient()
	var (
		mu      sync.Mutex
		rep     LoadReport
		hist    = stats.NewHistogram(1 << 17)
		tables  = make(map[string][32]byte) // job key -> table hash
		keys    = make(map[string]bool)
		wg      sync.WaitGroup
		traceWG sync.WaitGroup
	)
	rep.Jobs = cfg.Jobs

	inflight := make(chan struct{}, cfg.MaxInflight)

	var baseline map[string]float64
	if cfg.Verify {
		// Counter baseline: -verify compares this run's deltas, so a router
		// that served earlier runs still checks out exactly.
		baseline = scrapeCounters(client, cfg.URL)
	}

	start := time.Now()
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.Rate)
	}
	for i := 0; i < cfg.Jobs; i++ {
		if ctx.Err() != nil {
			break
		}
		if interval > 0 {
			// Open-loop pacing on the absolute clock: late arrivals are
			// not rescheduled, so a stall does not thin the offered load.
			next := start.Add(time.Duration(i) * interval)
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
			}
		}
		req := server.Request{
			Experiment: picks[i%len(picks)],
			Seed:       int64(1 + i%cfg.Seeds),
		}
		tenant := tenants[i%len(tenants)]
		inflight <- struct{}{}
		// One sampled arrival per SubEvery-sized window, with the sample
		// point rotating across windows: a fixed point (always offset 0)
		// aliases against the deterministic mix cycle whenever the cycle
		// length divides SubEvery, silently subscribing to only one
		// experiment.
		subscribe := cfg.Subscribers > 0 && i%cfg.SubEvery == (i/cfg.SubEvery)%cfg.SubEvery
		wg.Add(1)
		go func(req server.Request, tenant string, subscribe bool) {
			defer wg.Done()
			defer func() { <-inflight }()
			runOne(ctx, client, cfg, req, tenant, subscribe,
				&mu, &rep, hist, tables, keys, &traceWG)
		}(req, tenant, subscribe)
	}
	wg.Wait()
	traceWG.Wait()

	elapsed := time.Since(start)
	rep.ElapsedSec = elapsed.Seconds()
	rep.OfferedRate = cfg.Rate
	if elapsed > 0 {
		rep.AchievedRate = float64(rep.Done+rep.Failed+rep.Cancelled) / elapsed.Seconds()
	}
	rep.UniqueKeys = len(keys)
	rep.Latency = LatencySummary{
		P50MS:  hist.P50().Seconds() * 1e3,
		P95MS:  hist.P95().Seconds() * 1e3,
		P99MS:  hist.P99().Seconds() * 1e3,
		MeanMS: hist.MeanDuration().Seconds() * 1e3,
		MaxMS:  time.Duration(hist.Max()).Seconds() * 1e3,
	}
	if cfg.Verify {
		rep.Metrics = verifyMetrics(client, cfg.URL, baseline, &rep)
	}
	return rep, nil
}

// runOne offers one arrival and follows it to its terminal state.
func runOne(ctx context.Context, client *http.Client, cfg LoadConfig,
	req server.Request, tenant string, subscribe bool,
	mu *sync.Mutex, rep *LoadReport, hist *stats.Histogram,
	tables map[string][32]byte, keys map[string]bool, traceWG *sync.WaitGroup) {

	key := JobKey(req)
	mu.Lock()
	keys[key] = true
	mu.Unlock()

	body, _ := json.Marshal(req)
	hreq, _ := http.NewRequestWithContext(ctx, http.MethodPost, cfg.URL+"/v1/jobs", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-K2-Tenant", tenant)
	submitted := time.Now()
	resp, err := client.Do(hreq)
	if err != nil {
		mu.Lock()
		rep.RejectedOther++
		mu.Unlock()
		return
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	shedKind := resp.Header.Get("X-K2-Shed")
	code := resp.StatusCode
	resp.Body.Close()
	switch {
	case code == http.StatusTooManyRequests && shedKind == "quota":
		mu.Lock()
		rep.ShedQuota++
		mu.Unlock()
		return
	case code == http.StatusTooManyRequests:
		mu.Lock()
		rep.ShedAdmission++
		mu.Unlock()
		return
	case code != http.StatusAccepted:
		mu.Lock()
		rep.RejectedOther++
		mu.Unlock()
		return
	}
	var st server.Status
	if err := json.Unmarshal(raw, &st); err != nil || st.ID == "" {
		mu.Lock()
		rep.RejectedOther++
		mu.Unlock()
		return
	}
	mu.Lock()
	rep.Accepted++
	mu.Unlock()

	if subscribe {
		for s := 0; s < cfg.Subscribers; s++ {
			traceWG.Add(1)
			go func() {
				defer traceWG.Done()
				followTrace(ctx, client, cfg.URL, st.ID, mu, rep)
			}()
		}
	}

	// Follow to terminal with long-polls against the fleet ID.
	deadline := time.Now().Add(cfg.Timeout)
	for {
		if time.Now().After(deadline) || ctx.Err() != nil {
			mu.Lock()
			rep.Lost++
			mu.Unlock()
			return
		}
		code, raw := get(ctx, client, cfg.URL+"/v1/jobs/"+st.ID+"?wait=30")
		if code != http.StatusOK {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		var cur server.Status
		if json.Unmarshal(raw, &cur) != nil || !cur.State.Terminal() {
			continue
		}
		latency := time.Since(submitted)
		mu.Lock()
		switch cur.State {
		case server.StateDone:
			rep.Done++
			hist.Observe(latency)
			if cur.Result != nil {
				sum := sha256.Sum256([]byte(cur.Result.Table))
				if prev, seen := tables[key]; seen && prev != sum {
					rep.ByteIdentityViolations++
				} else {
					tables[key] = sum
				}
			}
		case server.StateFailed:
			rep.Failed++
		case server.StateCancelled:
			rep.Cancelled++
		}
		mu.Unlock()
		return
	}
}

// followTrace consumes one subscriber stream to EOF, tallying data lines
// and the terminal drop record.
func followTrace(ctx context.Context, client *http.Client, base, id string, mu *sync.Mutex, rep *LoadReport) {
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/trace", nil)
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	mu.Lock()
	rep.TraceStreams++
	mu.Unlock()
	var events, dropped, subDropped int64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var tl struct {
			Seq        *uint64 `json:"seq"`
			Dropped    *int    `json:"dropped"`
			SubDropped *int    `json:"sub_dropped"`
		}
		if json.Unmarshal(sc.Bytes(), &tl) != nil {
			continue
		}
		if tl.Seq != nil {
			events++
		} else if tl.Dropped != nil {
			dropped += int64(*tl.Dropped)
			if tl.SubDropped != nil {
				subDropped += int64(*tl.SubDropped)
			}
		}
	}
	mu.Lock()
	rep.TraceEvents += events
	rep.TraceDropped += dropped
	rep.TraceSubDropped += subDropped
	mu.Unlock()
}

func get(ctx context.Context, client *http.Client, url string) (int, []byte) {
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	return resp.StatusCode, raw
}

// scrapeCounters reads the router's /metrics into name{labels} -> value;
// nil on scrape failure.
func scrapeCounters(client *http.Client, base string) map[string]float64 {
	code, raw := get(context.Background(), client, base+"/metrics")
	if code != http.StatusOK {
		return nil
	}
	return parsePrometheus(string(raw))
}

// verifyMetrics scrapes the router and diffs the counter *deltas* since the
// run's baseline scrape against the client-side tallies, counter for
// counter. The baseline makes the check honest on a long-lived router that
// served earlier runs; any disagreement in the deltas is a bug in the
// service's accounting (or a second client sharing it during the run), and
// is listed rather than summarized.
func verifyMetrics(client *http.Client, base string, baseline map[string]float64, rep *LoadReport) MetricsCheck {
	vals := scrapeCounters(client, base)
	if vals == nil {
		return MetricsCheck{Checked: true, Mismatches: []string{"/metrics scrape failed"}}
	}
	check := MetricsCheck{Checked: true, Matches: true}
	expect := []struct {
		metric string
		want   int64
	}{
		{"k2fleet_jobs_submitted_total", int64(rep.Accepted)},
		{"k2fleet_quota_sheds_total", int64(rep.ShedQuota)},
		{"k2fleet_admission_sheds_total", int64(rep.ShedAdmission)},
		{`k2fleet_jobs_completed_total{state="done"}`, int64(rep.Done)},
		{`k2fleet_jobs_completed_total{state="failed"}`, int64(rep.Failed)},
		{`k2fleet_jobs_completed_total{state="cancelled"}`, int64(rep.Cancelled)},
		{"k2fleet_trace_sub_dropped_total", rep.TraceSubDropped},
	}
	for _, e := range expect {
		got := int64(vals[e.metric]) - int64(baseline[e.metric])
		if got != e.want {
			check.Matches = false
			check.Mismatches = append(check.Mismatches,
				fmt.Sprintf("%s: router +%d this run, client %d", e.metric, got, e.want))
		}
	}
	sort.Strings(check.Mismatches)
	return check
}

// parsePrometheus reads a text exposition into name{labels} -> value.
func parsePrometheus(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}
