package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// hub multiplexes one job's live NDJSON trace stream to any number of
// subscribers. It extends the worker traceLog's drop model one level up:
// the worker bounds what it *records* (its {"dropped":N} terminal record
// counts events never retained); the hub bounds what a subscriber may
// *lag*. All subscribers share a single bounded window of raw lines — one
// upstream connection, one copy in memory — and each subscriber is a
// cursor into it. A subscriber that falls more than the window behind has
// the overrun counted, exactly, as its personal drops; fast subscribers
// are never stalled by slow ones. The terminal record a subscriber
// receives is therefore honest end to end:
//
//	{"dropped": workerDropped + thisSubscriberDropped}
//
// Worker death mid-stream is masked: the run loop re-resolves the job's
// current owner (the router re-submits orphaned jobs, and determinism
// makes the re-executed stream byte-identical), reconnects, and skips the
// lines it already forwarded by position — so subscribers see no
// duplicates, no reordering and no gap.
type hub struct {
	mu   sync.Mutex
	cond *sync.Cond

	window int
	lines  [][]byte // the shared window; lines[0] is global index base
	base   int
	total  int // data lines broadcast ever: base + len(lines)

	upstreamDropped int // worker-side drops, from its terminal record
	closed          bool
	subs            int

	m *metrics
}

func newHub(window int, m *metrics) *hub {
	h := &hub{window: window, m: m}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// traceLine is the minimal shape of one upstream NDJSON line: enough to
// tell a data event (Seq set) from the terminal drop record (Dropped set).
type traceLine struct {
	Seq     *uint64 `json:"seq"`
	Dropped *int    `json:"dropped"`
}

// run owns the upstream side: connect to the job's current trace stream,
// forward lines, survive worker death by re-resolving and reconnecting,
// and close the hub once the job is terminal. resolve returns the current
// owner's trace URL (ok=false while the job is between workers);
// isTerminal reports whether the router has recorded the job's terminal
// status. stop aborts the hub (router shutdown).
func (h *hub) run(client *http.Client, resolve func() (string, bool), isTerminal func() bool, stop <-chan struct{}) {
	defer h.close()
	for {
		select {
		case <-stop:
			return
		default:
		}
		url, ok := resolve()
		if !ok {
			if isTerminal() {
				return
			}
			sleepOrStop(50*time.Millisecond, stop)
			continue
		}
		clean := h.follow(client, url)
		// A clean EOF means the worker ended the stream, which it does
		// only for a terminal job — but the router may not have recorded
		// that yet (or the job may have been re-submitted under it), so
		// trust only the router's record and otherwise reconnect; the
		// positional skip makes reconnecting to a replay harmless.
		if clean && isTerminal() {
			return
		}
		sleepOrStop(50*time.Millisecond, stop)
	}
}

func sleepOrStop(d time.Duration, stop <-chan struct{}) {
	select {
	case <-time.After(d):
	case <-stop:
	}
}

// follow streams one upstream connection, forwarding data lines past the
// ones already broadcast. It reports whether the stream ended cleanly
// (EOF) as opposed to a transport error (worker death).
func (h *hub) follow(client *http.Client, url string) (clean bool) {
	resp, err := client.Get(url)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// 404: the worker no longer knows the job (restarted, evicted) —
		// treat like a death so the router's re-submit path repairs it.
		return false
	}
	h.mu.Lock()
	skip := h.total // data lines already forwarded; a reconnect replays them
	h.mu.Unlock()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var tl traceLine
		line := sc.Bytes()
		if err := json.Unmarshal(line, &tl); err != nil {
			continue // not ours to interpret; never forward garbage
		}
		if tl.Dropped != nil && tl.Seq == nil {
			// The worker's terminal drop record. Assignment, not addition:
			// a re-executed job replays the byte-identical stream, so the
			// same record arriving twice must not double-count.
			h.mu.Lock()
			h.upstreamDropped = *tl.Dropped
			h.mu.Unlock()
			continue
		}
		if tl.Seq == nil {
			continue
		}
		if skip > 0 {
			skip--
			continue
		}
		h.broadcast(append([]byte(nil), line...))
	}
	return sc.Err() == nil
}

// broadcast appends one line to the shared window, evicting the oldest
// lines past the bound. Evicted lines are exactly what lagging subscribers
// count as dropped.
func (h *hub) broadcast(line []byte) {
	h.mu.Lock()
	h.lines = append(h.lines, line)
	h.total++
	if over := len(h.lines) - h.window; over > 0 {
		h.lines = h.lines[over:]
		h.base += over
	}
	h.m.addTraceForwarded(1)
	h.cond.Broadcast()
	h.mu.Unlock()
}

// close marks the stream finished and wakes every subscriber to drain and
// emit its terminal record.
func (h *hub) close() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// serve streams the hub to one subscriber: everything still in the window,
// then live lines as they arrive, then — once the job is over — a terminal
// {"dropped":N} record combining the worker's own drops with the lines
// this subscriber personally lost by lagging out of the window.
func (h *hub) serve(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	// cond.Wait cannot watch a context, so a leaving client wakes the
	// loop via a broadcast.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-r.Context().Done():
			h.cond.Broadcast()
		case <-done:
		}
	}()

	h.mu.Lock()
	h.subs++
	h.m.traceSubscribers(+1)
	next := h.base // join at the oldest retained line
	dropped := 0
	for {
		if r.Context().Err() != nil {
			h.subs--
			h.m.traceSubscribers(-1)
			h.mu.Unlock()
			return
		}
		if next < h.base {
			// The window moved past this subscriber while it was writing:
			// those lines are gone for it, and for it alone.
			lost := h.base - next
			dropped += lost
			h.m.addTraceSubDropped(lost)
			next = h.base
		}
		if next < h.base+len(h.lines) {
			batch := h.lines[next-h.base:]
			next = h.base + len(h.lines)
			h.mu.Unlock()
			for _, line := range batch {
				if _, err := w.Write(append(line, '\n')); err != nil {
					h.mu.Lock()
					h.subs--
					h.m.traceSubscribers(-1)
					h.mu.Unlock()
					return
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
			h.mu.Lock()
			continue
		}
		if h.closed {
			break
		}
		h.cond.Wait()
	}
	h.subs--
	h.m.traceSubscribers(-1)
	upstream := h.upstreamDropped
	h.mu.Unlock()
	// The terminal record: "dropped" keeps the worker's wire shape (the
	// total a consumer must assume lost), and the extra fields attribute
	// it — the worker's own recording bound vs this subscriber's lag —
	// so a client can diff each component against /metrics exactly.
	if total := upstream + dropped; total > 0 {
		fmt.Fprintf(w, "{\"dropped\":%d,\"worker_dropped\":%d,\"sub_dropped\":%d}\n",
			total, upstream, dropped) //nolint:errcheck // client may be gone
	}
	if flusher != nil {
		flusher.Flush()
	}
}
