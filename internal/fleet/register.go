package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Heartbeat is the worker side of fleet membership: it registers the
// worker with the router and re-registers every interval until ctx ends
// (POST /v1/workers is an idempotent upsert, so registration and heartbeat
// are the same request). Transient router outages are retried forever —
// a worker outliving its router should rejoin the moment it returns.
// logf, if non-nil, receives one line per state change.
func Heartbeat(ctx context.Context, routerURL, id, advertiseURL string, interval time.Duration, logf func(format string, args ...any)) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// The pooled transport keeps one persistent connection to the router —
	// under heavy fleet load fresh connections can stall on ephemeral-port
	// pressure, and a missed beat there gets a healthy worker expired. The
	// timeout is deliberately looser than the interval: a router briefly
	// slowed by load should cost one late beat, not a false death.
	client := pooledClient()
	client.Timeout = 2 * interval
	body, _ := json.Marshal(registerBody{ID: id, URL: advertiseURL})
	registered := false
	beat := func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			routerURL+"/v1/workers", bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			if registered {
				logf("fleet: lost router %s: %v (retrying)", routerURL, err)
				registered = false
			}
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			if registered {
				logf("fleet: router %s rejected heartbeat: HTTP %d", routerURL, resp.StatusCode)
				registered = false
			}
			return
		}
		if !registered {
			logf("fleet: registered with %s as %s (%s)", routerURL, id, advertiseURL)
			registered = true
		}
	}
	beat()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			beat()
		}
	}
}

// WorkerID derives a stable default worker identity from its advertise
// URL, for fleets that do not name workers explicitly.
func WorkerID(advertiseURL string) string {
	return fmt.Sprintf("w-%016x", fnv1a(advertiseURL))
}
