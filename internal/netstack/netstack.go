// Package netstack implements the UDP socket layer and loopback path used
// by the Figure 6(c) benchmark: socket creation and destruction, sendto and
// recvfrom through a loopback device, real Internet checksums over the
// payload, and bounded socket buffers with blocking receive.
//
// As a shadowed service its socket table is kept coherent by the DSM; CPU
// costs (buffer copies, checksum passes, protocol bookkeeping) are charged
// to the calling thread's core.
package netstack

import (
	"fmt"
	"time"

	"k2/internal/sched"
	"k2/internal/services"
	"k2/internal/sim"
	"k2/internal/soc"
)

// MTU is the loopback datagram payload limit per packet.
const MTU = 1472

// Costs carries the stack's CPU costs (reference work).
type Costs struct {
	SocketCreate  soc.Work
	SocketDestroy soc.Work
	PerPacket     soc.Work // header build/parse + queueing per packet
	PerByte       float64  // ns/byte: one copy in, one copy out
	ChecksumByte  float64  // ns/byte per checksum pass (one per direction)
}

// DefaultCosts returns the Figure 6(c) calibration.
func DefaultCosts() Costs {
	return Costs{
		SocketCreate:  soc.Work(30 * time.Microsecond),
		SocketDestroy: soc.Work(20 * time.Microsecond),
		PerPacket:     soc.Work(8 * time.Microsecond),
		PerByte:       1.0,
		ChecksumByte:  0.8,
	}
}

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// Datagram is one queued UDP datagram.
type Datagram struct {
	From     Addr
	Payload  []byte
	Checksum uint16
}

// Addr is a UDP endpoint (loopback only: just a port).
type Addr struct {
	Port int
}

func (a Addr) String() string { return fmt.Sprintf("lo:%d", a.Port) }

// Stack is the UDP/loopback network service.
type Stack struct {
	Costs Costs
	// State is the shadowed socket table (nil outside K2).
	State *services.ShadowedState

	s       *soc.SoC
	bound   map[int]*Socket
	nextEph int

	// Stats.
	PacketsSent int64
	BytesSent   int64
	Drops       int64
	ChecksumErr int64
}

// NewStack returns an empty stack.
func NewStack(s *soc.SoC, state *services.ShadowedState) *Stack {
	return &Stack{
		Costs:   DefaultCosts(),
		State:   state,
		s:       s,
		bound:   make(map[int]*Socket),
		nextEph: 49152,
	}
}

// Socket is a UDP socket with a bounded receive buffer.
type Socket struct {
	stack     *Stack
	addr      Addr
	buf       []*Datagram
	cap       int
	gate      *sim.Gate
	open      bool
	connected bool
	peer      Addr
}

func (st *Stack) touch(t *sched.Thread, write bool) {
	if st.State != nil {
		st.State.Touch(t, 0, write)
	}
}

// NewSocket creates a UDP socket bound to port (0 picks an ephemeral one).
func (st *Stack) NewSocket(t *sched.Thread, port int) (*Socket, error) {
	t.Exec(st.Costs.SocketCreate)
	st.touch(t, true)
	if port == 0 {
		for st.bound[st.nextEph] != nil {
			st.nextEph++
			if st.nextEph > 65535 {
				st.nextEph = 49152
			}
		}
		port = st.nextEph
		st.nextEph++
		if st.nextEph > 65535 {
			st.nextEph = 49152
		}
	}
	if st.bound[port] != nil {
		return nil, fmt.Errorf("netstack: port %d in use", port)
	}
	sk := &Socket{
		stack: st,
		addr:  Addr{Port: port},
		cap:   256, // packets; ~376 KB of 1472-byte datagrams, a Linux-like default
		gate:  sim.NewGate(st.s.Eng),
		open:  true,
	}
	st.bound[port] = sk
	return sk, nil
}

// Addr returns the socket's bound address.
func (sk *Socket) Addr() Addr { return sk.addr }

// Close destroys the socket.
func (sk *Socket) Close(t *sched.Thread) {
	if !sk.open {
		return
	}
	t.Exec(sk.stack.Costs.SocketDestroy)
	sk.stack.touch(t, true)
	delete(sk.stack.bound, sk.addr.Port)
	sk.open = false
	sk.gate.Open() // unblock pending receivers (they will see EOF)
}

// SendTo transmits payload to the loopback destination, fragmenting at the
// MTU. Each packet pays the per-packet cost, a copy and a checksum pass.
func (sk *Socket) SendTo(t *sched.Thread, dst Addr, payload []byte) (int, error) {
	if !sk.open {
		return 0, fmt.Errorf("netstack: send on closed socket")
	}
	st := sk.stack
	st.touch(t, false)
	sent := 0
	for off := 0; off < len(payload) || (len(payload) == 0 && off == 0); off += MTU {
		end := off + MTU
		if end > len(payload) {
			end = len(payload)
		}
		frag := payload[off:end]
		t.Exec(st.Costs.PerPacket + soc.Work(float64(len(frag))*(st.Costs.PerByte+st.Costs.ChecksumByte)))
		csum := Checksum(frag)
		dgram := &Datagram{From: sk.addr, Payload: append([]byte(nil), frag...), Checksum: csum}
		dstSk := st.bound[dst.Port]
		if dstSk == nil || !dstSk.open {
			st.Drops++
			if len(payload) == 0 {
				break
			}
			continue
		}
		if dstSk.connected && dstSk.peer != sk.addr {
			// Connected UDP sockets accept datagrams only from their
			// peer, as on Linux.
			st.Drops++
			if len(payload) == 0 {
				break
			}
			continue
		}
		if len(dstSk.buf) >= dstSk.cap {
			st.Drops++ // UDP: full buffer drops
			if len(payload) == 0 {
				break
			}
			continue
		}
		dstSk.buf = append(dstSk.buf, dgram)
		dstSk.gate.OpenOne()
		st.PacketsSent++
		st.BytesSent += int64(len(frag))
		sent += len(frag)
		if len(payload) == 0 {
			break
		}
	}
	return sent, nil
}

// RecvFrom blocks until a datagram arrives, verifies its checksum, copies
// the payload out and returns it with the sender address. A closed socket
// returns an error.
func (sk *Socket) RecvFrom(t *sched.Thread) ([]byte, Addr, error) {
	st := sk.stack
	for len(sk.buf) == 0 {
		if !sk.open {
			return nil, Addr{}, fmt.Errorf("netstack: recv on closed socket")
		}
		t.Block(func(p *sim.Proc) { sk.gate.Wait(p) })
	}
	st.touch(t, false)
	d := sk.buf[0]
	sk.buf = sk.buf[1:]
	t.Exec(st.Costs.PerPacket + soc.Work(float64(len(d.Payload))*(st.Costs.PerByte+st.Costs.ChecksumByte)))
	if Checksum(d.Payload) != d.Checksum {
		st.ChecksumErr++
		return nil, d.From, fmt.Errorf("netstack: checksum mismatch")
	}
	return d.Payload, d.From, nil
}

// Pending returns the number of buffered datagrams.
func (sk *Socket) Pending() int { return len(sk.buf) }

// Connect fixes the socket's peer: Send goes to the peer and the socket
// accepts datagrams only from it (connected-UDP semantics).
func (sk *Socket) Connect(t *sched.Thread, peer Addr) {
	t.Exec(sk.stack.Costs.PerPacket / 2) // cheap: records the peer address
	sk.stack.touch(t, true)
	sk.connected = true
	sk.peer = peer
}

// Connected reports whether Connect has been called.
func (sk *Socket) Connected() bool { return sk.connected }

// Send transmits payload to the connected peer.
func (sk *Socket) Send(t *sched.Thread, payload []byte) (int, error) {
	if !sk.connected {
		return 0, fmt.Errorf("netstack: Send on unconnected socket")
	}
	return sk.SendTo(t, sk.peer, payload)
}

// Recv receives from the connected peer.
func (sk *Socket) Recv(t *sched.Thread) ([]byte, error) {
	if !sk.connected {
		return nil, fmt.Errorf("netstack: Recv on unconnected socket")
	}
	data, _, err := sk.RecvFrom(t)
	return data, err
}
