package netstack

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

func withThread(t *testing.T, body func(th *sched.Thread, st *Stack)) {
	t.Helper()
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	sc := sched.New(s, false)
	pr := sc.NewProcess("nettest")
	ran := false
	pr.Spawn(sched.Normal, "t", func(th *sched.Thread) {
		body(th, NewStack(s, nil))
		ran = true
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("body did not run")
	}
}

func TestChecksumKnownVectors(t *testing.T) {
	// RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("checksum = %#x, want 0x220d", got)
	}
	if got := Checksum(nil); got != 0xffff {
		t.Fatalf("empty checksum = %#x, want 0xffff", got)
	}
}

// Property: checksum detects any single-byte corruption.
func TestQuickChecksumDetectsCorruption(t *testing.T) {
	f := func(data []byte, idx uint16, flip uint8) bool {
		if len(data) == 0 || flip == 0 {
			return true
		}
		i := int(idx) % len(data)
		orig := Checksum(data)
		mut := append([]byte(nil), data...)
		mut[i] ^= flip
		return Checksum(mut) != orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackRoundTrip(t *testing.T) {
	withThread(t, func(th *sched.Thread, st *Stack) {
		a, err := st.NewSocket(th, 1000)
		if err != nil {
			t.Error(err)
			return
		}
		b, err := st.NewSocket(th, 2000)
		if err != nil {
			t.Error(err)
			return
		}
		msg := []byte("hello over loopback")
		if _, err := a.SendTo(th, b.Addr(), msg); err != nil {
			t.Error(err)
			return
		}
		got, from, err := b.RecvFrom(th)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, msg) || from.Port != 1000 {
			t.Errorf("got %q from %v", got, from)
		}
		a.Close(th)
		b.Close(th)
	})
}

func TestFragmentationAtMTU(t *testing.T) {
	withThread(t, func(th *sched.Thread, st *Stack) {
		a, _ := st.NewSocket(th, 1)
		b, _ := st.NewSocket(th, 2)
		payload := make([]byte, MTU*2+100)
		for i := range payload {
			payload[i] = byte(i)
		}
		n, err := a.SendTo(th, b.Addr(), payload)
		if err != nil || n != len(payload) {
			t.Errorf("send n=%d err=%v", n, err)
			return
		}
		if b.Pending() != 3 {
			t.Errorf("pending = %d, want 3 fragments", b.Pending())
		}
		var got []byte
		for i := 0; i < 3; i++ {
			frag, _, err := b.RecvFrom(th)
			if err != nil {
				t.Error(err)
				return
			}
			got = append(got, frag...)
		}
		if !bytes.Equal(got, payload) {
			t.Error("reassembled payload mismatch")
		}
	})
}

func TestBlockingRecv(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	sc := sched.New(s, false)
	st := NewStack(s, nil)
	pr := sc.NewProcess("app")
	var recvAt sim.Time
	pr.Spawn(sched.Normal, "recv", func(th *sched.Thread) {
		sk, _ := st.NewSocket(th, 7)
		if _, _, err := sk.RecvFrom(th); err != nil {
			t.Error(err)
		}
		recvAt = th.P().Now()
	})
	pr2 := sc.NewProcess("app2")
	pr2.Spawn(sched.Normal, "send", func(th *sched.Thread) {
		th.SleepIdle(10 * time.Millisecond)
		sk, _ := st.NewSocket(th, 8)
		if _, err := sk.SendTo(th, Addr{Port: 7}, []byte("x")); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if recvAt < sim.Time(10*time.Millisecond) {
		t.Fatalf("recv returned at %v, before the send", recvAt)
	}
}

func TestSendToClosedOrMissingDrops(t *testing.T) {
	withThread(t, func(th *sched.Thread, st *Stack) {
		a, _ := st.NewSocket(th, 1)
		if _, err := a.SendTo(th, Addr{Port: 999}, []byte("x")); err != nil {
			t.Error(err)
		}
		if st.Drops != 1 {
			t.Errorf("drops = %d, want 1", st.Drops)
		}
		b, _ := st.NewSocket(th, 2)
		b.Close(th)
		if _, err := a.SendTo(th, Addr{Port: 2}, []byte("x")); err != nil {
			t.Error(err)
		}
		if st.Drops != 2 {
			t.Errorf("drops = %d, want 2", st.Drops)
		}
	})
}

func TestBufferOverflowDrops(t *testing.T) {
	withThread(t, func(th *sched.Thread, st *Stack) {
		a, _ := st.NewSocket(th, 1)
		b, _ := st.NewSocket(th, 2)
		for i := 0; i < 300; i++ {
			if _, err := a.SendTo(th, b.Addr(), []byte("x")); err != nil {
				t.Error(err)
				return
			}
		}
		if b.Pending() != 256 {
			t.Errorf("pending = %d, want capped at 256", b.Pending())
		}
		if st.Drops != 44 {
			t.Errorf("drops = %d, want 44", st.Drops)
		}
	})
}

func TestPortReuseAfterClose(t *testing.T) {
	withThread(t, func(th *sched.Thread, st *Stack) {
		a, err := st.NewSocket(th, 5)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := st.NewSocket(th, 5); err == nil {
			t.Error("duplicate bind accepted")
		}
		a.Close(th)
		if _, err := st.NewSocket(th, 5); err != nil {
			t.Errorf("rebind after close: %v", err)
		}
	})
}

func TestConnectedSockets(t *testing.T) {
	withThread(t, func(th *sched.Thread, st *Stack) {
		a, _ := st.NewSocket(th, 1)
		b, _ := st.NewSocket(th, 2)
		c, _ := st.NewSocket(th, 3)
		a.Connect(th, b.Addr())
		b.Connect(th, a.Addr())
		if _, err := a.Send(th, []byte("hi")); err != nil {
			t.Error(err)
			return
		}
		got, err := b.Recv(th)
		if err != nil || string(got) != "hi" {
			t.Errorf("recv %q err=%v", got, err)
		}
		// A third party's datagram to a connected socket is dropped.
		drops := st.Drops
		if _, err := c.SendTo(th, b.Addr(), []byte("stranger")); err != nil {
			t.Error(err)
			return
		}
		if st.Drops != drops+1 {
			t.Error("stranger datagram not dropped by connected socket")
		}
		if b.Pending() != 0 {
			t.Error("stranger datagram buffered")
		}
		// Unconnected Send/Recv fail.
		if _, err := c.Send(th, []byte("x")); err == nil {
			t.Error("Send on unconnected socket succeeded")
		}
		if _, err := c.Recv(th); err == nil {
			t.Error("Recv on unconnected socket succeeded")
		}
	})
}

func TestEphemeralPorts(t *testing.T) {
	withThread(t, func(th *sched.Thread, st *Stack) {
		a, _ := st.NewSocket(th, 0)
		b, _ := st.NewSocket(th, 0)
		if a.Addr().Port == b.Addr().Port {
			t.Error("ephemeral ports collide")
		}
		if a.Addr().Port < 49152 || b.Addr().Port < 49152 {
			t.Error("ephemeral ports outside the dynamic range")
		}
	})
}
