package netstack

import "fmt"

// StackState is the UDP stack's checkpointable state. Open sockets hold
// gates that blocked receivers wait on, so capture requires every socket
// closed — true at the boot-ready quiesce point, before any workload runs.
type StackState struct {
	NextEph     int
	PacketsSent int64
	BytesSent   int64
	Drops       int64
	ChecksumErr int64
}

// CaptureState records the stack's state; it errors while sockets are open.
func (st *Stack) CaptureState() (StackState, error) {
	if n := len(st.bound); n > 0 {
		return StackState{}, fmt.Errorf("netstack: %d sockets still open", n)
	}
	return StackState{
		NextEph:     st.nextEph,
		PacketsSent: st.PacketsSent,
		BytesSent:   st.BytesSent,
		Drops:       st.Drops,
		ChecksumErr: st.ChecksumErr,
	}, nil
}

// RestoreState rewinds the stack onto a captured state (no sockets bound).
func (st *Stack) RestoreState(s StackState) {
	st.bound = make(map[int]*Socket)
	st.nextEph = s.NextEph
	st.PacketsSent = s.PacketsSent
	st.BytesSent = s.BytesSent
	st.Drops = s.Drops
	st.ChecksumErr = s.ChecksumErr
}
