// Package driver implements the extended services exercised by the paper's
// evaluation: the DMA device driver (the representative shadowed device
// driver of §9.2 and §9.4) and a ramdisk block device (the backing store of
// the ext2 benchmark, §9.2).
package driver

import (
	"time"

	"k2/internal/sched"
	"k2/internal/services"
	"k2/internal/sim"
	"k2/internal/soc"
)

// DMACosts carries the driver's CPU costs, calibrated so the Linux row of
// Table 6 lands at 37.8 MB/s for 4 KB batches and 40.5 MB/s at 1 MB.
type DMACosts struct {
	// Program: clear-and-lookup bookkeeping, resource search and engine
	// programming per transfer (the fixed 6 µs component).
	Program soc.Work
	// Complete: the interrupt-side work per transfer: free resources,
	// complete the transfer.
	Complete soc.Work
}

// DefaultDMACosts returns the Table 6 calibration.
func DefaultDMACosts() DMACosts {
	return DMACosts{
		Program:  soc.Work(4 * time.Microsecond),
		Complete: soc.Work(2 * time.Microsecond),
	}
}

// DMADriver is the memory-to-memory DMA driver: a shadowed service used by
// almost all bulk IO (§9.2). Each transfer clears the destination region,
// finds a free channel in the (coherent) channel table, programs the DMA
// engine, and is completed from the DMA interrupt, which frees the channel.
type DMADriver struct {
	State *services.ShadowedState
	Costs DMACosts

	s       *soc.SoC
	pending []*dmaPending
	// Transfers counts completed driver-level transfers per kernel.
	Transfers []int
}

type dmaPending struct {
	engineDone *sim.Event
	driverDone *sim.Event
}

// NewDMA returns the driver bound to the SoC's DMA engine with the given
// shadowed state (one page: the channel table).
func NewDMA(s *soc.SoC, state *services.ShadowedState, costs DMACosts) *DMADriver {
	return &DMADriver{State: state, Costs: costs, s: s, Transfers: make([]int, s.NumDomains())}
}

// Transfer executes one memory-to-memory DMA of the given size from the
// calling thread: it clears the destination with the CPU, takes the channel
// table lock, programs the engine, and blocks until the completion
// interrupt finishes the transfer (§9.2 benchmark description).
func (d *DMADriver) Transfer(t *sched.Thread, bytes int64) {
	// Clear the destination memory region.
	t.Exec(d.s.MemsetWork(bytes))

	// Read the channel table to find empty resources. This access happens
	// before the lock, so a (possibly long, bottom-half-deferred) DSM
	// fault is taken without holding the hardware spinlock — holding it
	// across a deferred fault would stall the other kernel's driver for
	// the whole deferral.
	d.State.Touch(t, 0, true)

	// Program the engine under the channel table lock.
	d.State.Enter(t)
	d.State.Touch(t, 0, true)
	t.Exec(d.Costs.Program)
	pend := &dmaPending{
		engineDone: sim.NewEvent(d.s.Eng),
		driverDone: sim.NewEvent(d.s.Eng),
	}
	d.pending = append(d.pending, pend)
	d.s.DMA.Submit(&soc.Transfer{Domain: t.Kernel(), Bytes: bytes, Done: pend.engineDone})
	d.State.Exit(t)

	// Wait for the interrupt side to complete the transfer; the core is
	// free (IO-bound phase).
	t.Block(func(p *sim.Proc) { pend.driverDone.Wait(p) })
	d.Transfers[t.Kernel()]++
}

// HandleIRQ is the driver's interrupt handler, invoked by whichever kernel
// currently owns the shared DMA interrupt (§7): it frees the resources of
// every engine-completed transfer and completes them. It runs in a handler
// proc on the given core.
func (d *DMADriver) HandleIRQ(p *sim.Proc, core *soc.Core, k soc.DomainID) {
	done := d.takeCompleted()
	if len(done) == 0 {
		return // spurious or already-handled interrupt
	}
	// Prefault outside the lock (see Transfer).
	d.State.TouchFrom(p, core, k, 0, true)
	d.State.EnterFrom(p, core)
	d.State.TouchFrom(p, core, k, 0, true)
	core.Exec(p, d.Costs.Complete*soc.Work(len(done)))
	d.State.ExitFrom(p, core)
	for _, pend := range done {
		pend.driverDone.Fire()
	}
}

func (d *DMADriver) takeCompleted() []*dmaPending {
	var done []*dmaPending
	rest := d.pending[:0]
	for _, pend := range d.pending {
		if pend.engineDone.Fired() && !pend.driverDone.Fired() {
			done = append(done, pend)
		} else {
			rest = append(rest, pend)
		}
	}
	d.pending = rest
	return done
}
