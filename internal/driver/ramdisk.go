package driver

import (
	"fmt"
	"time"

	"k2/internal/sched"
	"k2/internal/soc"
)

// BlockDevice is the block-layer interface the filesystem mounts on.
type BlockDevice interface {
	// BlockSize returns the device's block size in bytes.
	BlockSize() int
	// Blocks returns the device capacity in blocks.
	Blocks() int
	// ReadBlock copies block blk into buf (len >= BlockSize).
	ReadBlock(t *sched.Thread, blk int, buf []byte) error
	// WriteBlock stores data (len == BlockSize) into block blk.
	WriteBlock(t *sched.Thread, blk int, data []byte) error
}

// RAMDisk is a memory-backed block device. The paper's ext2 benchmark uses
// a ramdisk because the SD card driver was not yet functional — which
// favors Linux, as it shortens the idle periods that are expensive for
// strong cores (§9.2). IO costs are pure CPU memcpy plus a small per-op
// overhead.
type RAMDisk struct {
	blockSize int
	data      [][]byte
	s         *soc.SoC

	// PerOp is the block-layer bookkeeping cost per request.
	PerOp soc.Work

	// Reads and Writes count operations.
	Reads, Writes int
}

// NewRAMDisk returns a zero-filled ramdisk of n blocks.
func NewRAMDisk(s *soc.SoC, blockSize, n int) *RAMDisk {
	d := &RAMDisk{blockSize: blockSize, s: s, PerOp: soc.Work(2 * time.Microsecond)}
	d.data = make([][]byte, n)
	return d
}

// BlockSize returns the block size.
func (d *RAMDisk) BlockSize() int { return d.blockSize }

// Blocks returns the capacity in blocks.
func (d *RAMDisk) Blocks() int { return len(d.data) }

func (d *RAMDisk) check(blk int) error {
	if blk < 0 || blk >= len(d.data) {
		return fmt.Errorf("ramdisk: block %d out of range [0,%d)", blk, len(d.data))
	}
	return nil
}

// ReadBlock implements BlockDevice.
func (d *RAMDisk) ReadBlock(t *sched.Thread, blk int, buf []byte) error {
	if err := d.check(blk); err != nil {
		return err
	}
	t.Exec(d.PerOp + d.s.MemcpyWork(int64(d.blockSize)))
	if d.data[blk] == nil {
		for i := 0; i < d.blockSize; i++ {
			buf[i] = 0
		}
	} else {
		copy(buf, d.data[blk])
	}
	d.Reads++
	return nil
}

// WriteBlock implements BlockDevice.
func (d *RAMDisk) WriteBlock(t *sched.Thread, blk int, data []byte) error {
	if err := d.check(blk); err != nil {
		return err
	}
	if len(data) != d.blockSize {
		return fmt.Errorf("ramdisk: short write of %d bytes", len(data))
	}
	t.Exec(d.PerOp + d.s.MemcpyWork(int64(d.blockSize)))
	if d.data[blk] == nil {
		d.data[blk] = make([]byte, d.blockSize)
	}
	copy(d.data[blk], data)
	d.Writes++
	return nil
}
