package driver

import (
	"bytes"
	"testing"
	"time"

	"k2/internal/dsm"
	"k2/internal/mem"
	"k2/internal/sched"
	"k2/internal/services"
	"k2/internal/sim"
	"k2/internal/soc"
)

// dmaRig wires a DMA driver the way the OS does: DSM dispatchers on both
// kernels, the main bottom-half drainer, and DMA IRQ handlers on both
// domains (masks select the active one; by default the strong domain
// handles, per §7).
func dmaRig() (*sim.Engine, *soc.SoC, *sched.Sched, *DMADriver, *dsm.DSM) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	sc := sched.New(s, false)
	d := dsm.New(s, dsm.DefaultParams())
	state := services.NewShadowedState("dma", d, s.Spinlocks.Lock(1), []mem.PFN{1000})
	drv := NewDMA(s, state, DefaultDMACosts())

	for _, k := range []soc.DomainID{soc.Strong, soc.Weak} {
		k := k
		core := d.ServiceCore[k]
		e.Spawn("dispatch-"+k.String(), func(p *sim.Proc) {
			for {
				msg, from := s.Mailbox.RecvFrom(p, k)
				if d.HandleMessage(p, core, k, from, msg) {
					continue
				}
				sc.HandleMessage(p, core, k, msg)
			}
		})
		s.IRQ[k].SetHandler(func(line soc.IRQLine) {
			if line != soc.IRQDMA {
				return
			}
			e.Spawn("dma-irq-"+k.String(), func(p *sim.Proc) {
				drv.HandleIRQ(p, core, k)
			})
		})
	}
	s.IRQ[soc.Weak].Mask(soc.IRQDMA) // strong awake: main handles (§7)
	e.Spawn("dsm-drainer", d.RunMainDrainer)
	return e, s, sc, drv, d
}

func TestDMATransferLatencyAndThroughput(t *testing.T) {
	e, s, sc, drv, _ := dmaRig()
	pr := sc.NewProcess("bench")
	var elapsed time.Duration
	const n = 20
	pr.Spawn(sched.Normal, "t", func(th *sched.Thread) {
		start := th.P().Now()
		for i := 0; i < n; i++ {
			drv.Transfer(th, 128<<10)
		}
		elapsed = th.P().Now().Sub(start)
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if drv.Transfers[soc.Strong] != n {
		t.Fatalf("transfers = %d, want %d", drv.Transfers[soc.Strong], n)
	}
	mbps := float64(n*(128<<10)) / elapsed.Seconds() / 1e6
	// Table 6 Linux row at 128 KB batches: 40.3 MB/s.
	if mbps < 36 || mbps > 44 {
		t.Fatalf("single-kernel DMA throughput = %.1f MB/s, want ~40", mbps)
	}
	_ = s
}

func TestDMA4KThroughputMatchesTable6(t *testing.T) {
	e, _, sc, drv, _ := dmaRig()
	pr := sc.NewProcess("bench")
	var elapsed time.Duration
	const n = 64
	pr.Spawn(sched.Normal, "t", func(th *sched.Thread) {
		start := th.P().Now()
		for i := 0; i < n; i++ {
			drv.Transfer(th, 4<<10)
		}
		elapsed = th.P().Now().Sub(start)
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	mbps := float64(n*(4<<10)) / elapsed.Seconds() / 1e6
	// Table 6 Linux row at 4 KB batches: 37.8 MB/s (CPU-overhead bound).
	if mbps < 34 || mbps > 41 {
		t.Fatalf("4K DMA throughput = %.1f MB/s, want ~37.8", mbps)
	}
}

func TestDMAFromShadowKernel(t *testing.T) {
	e, s, sc, drv, d := dmaRig()
	pr := sc.NewProcess("light")
	pr.Spawn(sched.NightWatch, "w", func(th *sched.Thread) {
		for i := 0; i < 3; i++ {
			drv.Transfer(th, 64<<10)
		}
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if drv.Transfers[soc.Weak] != 3 {
		t.Fatalf("shadow transfers = %d, want 3", drv.Transfers[soc.Weak])
	}
	// The shadow's programming faulted the channel table over at least
	// once.
	if d.RequesterStats[soc.Weak].Faults == 0 {
		t.Fatal("no DSM faults despite cross-kernel driver use")
	}
	_ = s
}

func TestRAMDiskPersistsBytes(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	sc := sched.New(s, false)
	pr := sc.NewProcess("disk")
	pr.Spawn(sched.Normal, "t", func(th *sched.Thread) {
		disk := NewRAMDisk(s, 4096, 16)
		data := bytes.Repeat([]byte{0xAB}, 4096)
		if err := disk.WriteBlock(th, 3, data); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		if err := disk.ReadBlock(th, 3, buf); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(buf, data) {
			t.Error("block 3 corrupted")
		}
		// Unwritten blocks read as zero.
		if err := disk.ReadBlock(th, 5, buf); err != nil {
			t.Error(err)
			return
		}
		for _, b := range buf {
			if b != 0 {
				t.Error("unwritten block not zero")
				break
			}
		}
		if err := disk.WriteBlock(th, 99, data); err == nil {
			t.Error("out-of-range write accepted")
		}
		if err := disk.WriteBlock(th, 1, data[:100]); err == nil {
			t.Error("short write accepted")
		}
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
}

func TestRAMDiskIOCostScales(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	sc := sched.New(s, false)
	prA := sc.NewProcess("a")
	prB := sc.NewProcess("b")
	var strongDur, weakDur time.Duration
	disk := NewRAMDisk(s, 4096, 16)
	data := make([]byte, 4096)
	prA.Spawn(sched.Normal, "t", func(th *sched.Thread) {
		start := th.P().Now()
		if err := disk.WriteBlock(th, 0, data); err != nil {
			t.Error(err)
		}
		strongDur = th.P().Now().Sub(start)
	})
	prB.Spawn(sched.NightWatch, "w", func(th *sched.Thread) {
		start := th.P().Now()
		if err := disk.WriteBlock(th, 1, data); err != nil {
			t.Error(err)
		}
		weakDur = th.P().Now().Sub(start)
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if weakDur <= strongDur*11 || weakDur >= strongDur*13 {
		t.Fatalf("weak/strong block IO = %v / %v, want ~12x", weakDur, strongDur)
	}
}
