package driver

import (
	"time"

	"k2/internal/sched"
	"k2/internal/services"
	"k2/internal/sim"
	"k2/internal/soc"
)

// Sample is one sensor reading.
type Sample struct {
	At    sim.Time
	Value int32
}

// SensorDevice models an autonomous sensor (accelerometer-style): once
// started it samples on its own clock into a small hardware FIFO and raises
// its shared interrupt at the FIFO watermark. Context-awareness light tasks
// (§2.1) read it continuously — under K2 the interrupts are handled by the
// weak domain whenever the strong domain sleeps (§7).
type SensorDevice struct {
	s      *soc.SoC
	Line   soc.IRQLine
	Period time.Duration

	fifo       []Sample
	depth      int
	mark       int
	running    bool
	seq        int32
	nextTickAt sim.Time

	// Overruns counts samples dropped to FIFO overflow.
	Overruns int
}

// NewSensorDevice returns a stopped device on the shared sensor line.
func NewSensorDevice(s *soc.SoC, period time.Duration) *SensorDevice {
	return &SensorDevice{s: s, Line: soc.IRQSensor, Period: period, depth: 32, mark: 8}
}

// Start begins autonomous sampling.
func (d *SensorDevice) Start() {
	if d.running {
		return
	}
	d.running = true
	d.tick()
}

// Stop halts sampling (pending FIFO contents remain readable).
func (d *SensorDevice) Stop() { d.running = false }

// Running reports whether the device samples.
func (d *SensorDevice) Running() bool { return d.running }

func (d *SensorDevice) tick() {
	d.tickAt(d.s.Eng.Now().Add(d.Period))
}

// tickAt arms the next sample at an absolute time, so a restored device can
// resume its sampling clock exactly where the captured one left off.
func (d *SensorDevice) tickAt(at sim.Time) {
	d.nextTickAt = at
	d.s.Eng.At(at, func() {
		if !d.running {
			return
		}
		d.seq++
		// A deterministic triangle waveform stands in for sensor data.
		v := d.seq % 200
		if v > 100 {
			v = 200 - v
		}
		if len(d.fifo) >= d.depth {
			d.Overruns++
		} else {
			d.fifo = append(d.fifo, Sample{At: d.s.Eng.Now(), Value: v})
		}
		if len(d.fifo) >= d.mark {
			d.s.Raise(d.Line)
		}
		d.tick()
	})
}

// drain empties the hardware FIFO.
func (d *SensorDevice) drain() []Sample {
	out := d.fifo
	d.fifo = nil
	return out
}

// SensorDriver is the shadowed driver for the sensor device: its sample
// queue is coherent state, the interrupt handler moves FIFO contents into
// it, and ReadBatch blocks light tasks until enough samples arrived.
type SensorDriver struct {
	State *services.ShadowedState
	Dev   *SensorDevice

	s       *soc.SoC
	queue   []Sample
	waiters *sim.Gate

	// PerSample is the driver's CPU cost per sample moved or read.
	PerSample soc.Work
	// Delivered counts samples handed to readers.
	Delivered int
}

// NewSensor returns the driver bound to dev.
func NewSensor(s *soc.SoC, dev *SensorDevice, state *services.ShadowedState) *SensorDriver {
	return &SensorDriver{
		State:     state,
		Dev:       dev,
		s:         s,
		waiters:   sim.NewGate(s.Eng),
		PerSample: soc.Work(800 * time.Nanosecond),
	}
}

// HandleIRQ moves the hardware FIFO into the driver queue; it runs on
// whichever kernel owns the shared sensor interrupt.
func (d *SensorDriver) HandleIRQ(p *sim.Proc, core *soc.Core, k soc.DomainID) {
	batch := d.Dev.drain()
	if len(batch) == 0 {
		return
	}
	d.State.TouchFrom(p, core, k, 0, true)
	core.Exec(p, d.PerSample*soc.Work(len(batch)))
	d.queue = append(d.queue, batch...)
	d.waiters.Open()
}

// Pending returns the driver-queue length.
func (d *SensorDriver) Pending() int { return len(d.queue) }

// ReadBatch blocks until n samples are available and returns them.
func (d *SensorDriver) ReadBatch(t *sched.Thread, n int) []Sample {
	for len(d.queue) < n {
		t.Block(func(p *sim.Proc) { d.waiters.Wait(p) })
	}
	d.State.Touch(t, 0, true)
	t.Exec(d.PerSample * soc.Work(n))
	out := d.queue[:n:n]
	d.queue = d.queue[n:]
	d.Delivered += n
	return out
}
