package driver

import (
	"testing"
	"time"

	"k2/internal/sched"
	"k2/internal/services"
	"k2/internal/sim"
	"k2/internal/soc"
)

// sensorRig wires a sensor device + driver with the IRQ routed to the
// strong domain (no DSM: pure driver mechanics).
func sensorRig(period time.Duration) (*sim.Engine, *soc.SoC, *sched.Sched, *SensorDriver) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	sc := sched.New(s, false)
	dev := NewSensorDevice(s, period)
	drv := NewSensor(s, dev, services.NewShadowedState("sensor", nil, nil, nil))
	s.IRQ[soc.Weak].Mask(soc.IRQSensor)
	s.IRQ[soc.Strong].SetHandler(func(line soc.IRQLine) {
		if line != soc.IRQSensor {
			return
		}
		e.Spawn("sensor-irq", func(p *sim.Proc) {
			drv.HandleIRQ(p, s.Core(soc.Strong, 1), soc.Strong)
		})
	})
	dev.Start()
	return e, s, sc, drv
}

func TestSensorDeliversBatches(t *testing.T) {
	e, _, sc, drv := sensorRig(time.Millisecond)
	pr := sc.NewProcess("app")
	var got []Sample
	pr.Spawn(sched.Normal, "reader", func(th *sched.Thread) {
		got = drv.ReadBatch(th, 16)
		drv.Dev.Stop()
	})
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Fatalf("got %d samples", len(got))
	}
	// Samples arrive in time order, 1 ms apart.
	for i := 1; i < len(got); i++ {
		if got[i].At.Sub(got[i-1].At) != time.Millisecond {
			t.Fatalf("sample spacing %v at %d", got[i].At.Sub(got[i-1].At), i)
		}
	}
	if drv.Delivered != 16 {
		t.Fatalf("delivered = %d", drv.Delivered)
	}
}

func TestSensorWaveformDeterministic(t *testing.T) {
	read := func() []Sample {
		e, _, sc, drv := sensorRig(time.Millisecond)
		pr := sc.NewProcess("app")
		var got []Sample
		pr.Spawn(sched.Normal, "reader", func(th *sched.Thread) {
			got = drv.ReadBatch(th, 24)
			drv.Dev.Stop()
		})
		if err := e.Run(sim.Time(time.Minute)); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := read(), read()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSensorFIFOOverrun(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	dev := NewSensorDevice(s, time.Millisecond)
	// No handler installed anywhere: the FIFO must cap and count overruns.
	s.IRQ[soc.Strong].Mask(soc.IRQSensor)
	s.IRQ[soc.Weak].Mask(soc.IRQSensor)
	dev.Start()
	e.After(100*time.Millisecond, func() { dev.Stop() })
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if len(dev.fifo) != 32 {
		t.Fatalf("fifo = %d, want capped at 32", len(dev.fifo))
	}
	if dev.Overruns == 0 {
		t.Fatal("no overruns recorded")
	}
}

func TestSensorStopHaltsEvents(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	dev := NewSensorDevice(s, time.Millisecond)
	dev.Start()
	e.After(10*time.Millisecond, func() { dev.Stop() })
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	// No sampling after Stop: the sequence counter froze (the domains'
	// idle timers still advance the clock to their 5 s timeout).
	if dev.seq > 11 {
		t.Fatalf("sampling continued after Stop: seq=%d", dev.seq)
	}
	if dev.Running() {
		t.Fatal("device still running")
	}
}
