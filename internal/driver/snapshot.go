package driver

import (
	"fmt"

	"k2/internal/sim"
)

// DMAState is the DMA driver's checkpointable state. In-flight transfers
// hold events that blocked submitters wait on, so capture requires a drained
// driver.
type DMAState struct {
	Transfers []int
}

// CaptureState records the driver's counters; it errors while transfers are
// in flight.
func (d *DMADriver) CaptureState() (DMAState, error) {
	if n := len(d.pending); n > 0 {
		return DMAState{}, fmt.Errorf("driver: %d DMA transfers in flight", n)
	}
	return DMAState{Transfers: append([]int(nil), d.Transfers...)}, nil
}

// RestoreState rewinds the driver onto a captured state.
func (d *DMADriver) RestoreState(st DMAState) {
	d.pending = nil
	copy(d.Transfers, st.Transfers)
}

// BlockData is one written ramdisk block.
type BlockData struct {
	Index int
	Data  []byte
}

// RAMDiskState is the ramdisk's checkpointable state: a sparse copy of the
// written blocks (unwritten blocks read as zero and are not stored).
type RAMDiskState struct {
	Blocks []BlockData // ascending index
	Reads  int
	Writes int
}

// CaptureState deep-copies the written blocks and the op counters.
func (d *RAMDisk) CaptureState() RAMDiskState {
	st := RAMDiskState{Reads: d.Reads, Writes: d.Writes}
	for i, blk := range d.data {
		if blk == nil {
			continue
		}
		st.Blocks = append(st.Blocks, BlockData{Index: i, Data: append([]byte(nil), blk...)})
	}
	return st
}

// RestoreState rewinds the ramdisk onto a captured state (same geometry).
func (d *RAMDisk) RestoreState(st RAMDiskState) {
	for i := range d.data {
		d.data[i] = nil
	}
	for _, b := range st.Blocks {
		d.data[b.Index] = append([]byte(nil), b.Data...)
	}
	d.Reads, d.Writes = st.Reads, st.Writes
}

// SensorDeviceState is the sensor hardware's checkpointable state, including
// the absolute time of its next autonomous sample.
type SensorDeviceState struct {
	FIFO       []Sample
	Seq        int32
	Running    bool
	Overruns   int
	NextTickAt sim.Time
}

// CaptureState records the device's sampling state.
func (d *SensorDevice) CaptureState() SensorDeviceState {
	return SensorDeviceState{
		FIFO:       append([]Sample(nil), d.fifo...),
		Seq:        d.seq,
		Running:    d.running,
		Overruns:   d.Overruns,
		NextTickAt: d.nextTickAt,
	}
}

// RestoreState rewinds the device onto a captured state. The pending sample
// event lives in the engine heap and is purged with it; call Rearm after the
// engine restore to schedule it again.
func (d *SensorDevice) RestoreState(st SensorDeviceState) {
	d.fifo = append([]Sample(nil), st.FIFO...)
	d.seq = st.Seq
	d.running = st.Running
	d.Overruns = st.Overruns
	d.nextTickAt = st.NextTickAt
}

// Rearm schedules the next autonomous sample at the restored deadline.
func (d *SensorDevice) Rearm() {
	if d.running {
		d.tickAt(d.nextTickAt)
	}
}

// SensorDriverState is the sensor driver's checkpointable state. Blocked
// readers wait on the driver's gate, so capture requires none — true at the
// boot-ready quiesce point.
type SensorDriverState struct {
	Queue     []Sample
	Delivered int
}

// CaptureState records the driver's queue and counters; it errors while a
// reader is blocked.
func (d *SensorDriver) CaptureState() (SensorDriverState, error) {
	if n := d.waiters.Waiters(); n > 0 {
		return SensorDriverState{}, fmt.Errorf("driver: %d sensor readers blocked", n)
	}
	return SensorDriverState{
		Queue:     append([]Sample(nil), d.queue...),
		Delivered: d.Delivered,
	}, nil
}

// RestoreState rewinds the driver onto a captured state.
func (d *SensorDriver) RestoreState(st SensorDriverState) {
	d.queue = append([]Sample(nil), st.Queue...)
	d.Delivered = st.Delivered
}
