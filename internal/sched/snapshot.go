package sched

import (
	"fmt"
	"sort"

	"k2/internal/sim"
	"k2/internal/soc"
)

// ProcessSnap is one process record's checkpointable state. Thread bodies
// are goroutines and cannot be captured, so processes may only be snapshotted
// once all their threads have exited (at the boot-ready barrier that is just
// init, already done).
type ProcessSnap struct {
	PID         int
	Name        string
	NWDomain    int
	NWPlaced    bool
	NWThreads   int
	NWSuspended bool
	DoneFired   bool
}

// CoreTID records which thread last ran on a core (context-switch detection).
type CoreTID struct {
	CoreID int
	TID    int
}

// KernelSnap is one kernel scheduler's checkpointable state.
type KernelSnap struct {
	FreeCores  []int // core IDs in free-stack order (bottom first)
	LastTID    []CoreTID
	NWAssigned int
	NextSeq    uint64
	Switches   int
}

// SchedState is the whole scheduler's checkpointable state.
type SchedState struct {
	NextPID      int
	NextTID      int
	SuspendsSent int
	ResumesSent  int
	Kernels      []KernelSnap
	Procs        []ProcessSnap // ascending PID
}

// CaptureState records the scheduler's state at a quiesce point: every
// thread exited, every core free, no waiter queued.
func (sc *Sched) CaptureState() (SchedState, error) {
	var st SchedState
	for _, ks := range sc.kernels {
		if ks.runnable != 0 {
			return st, fmt.Errorf("sched: kernel %v has %d runnable threads", ks.k, ks.runnable)
		}
		if len(ks.waiters) != 0 {
			return st, fmt.Errorf("sched: kernel %v has %d core waiters", ks.k, len(ks.waiters))
		}
		if len(ks.free) != len(sc.S.Domains[ks.k].Cores) {
			return st, fmt.Errorf("sched: kernel %v has %d of %d cores free", ks.k, len(ks.free), len(sc.S.Domains[ks.k].Cores))
		}
		snap := KernelSnap{NWAssigned: ks.nwAssigned, NextSeq: ks.nextSeq, Switches: ks.Switches}
		for _, c := range ks.free {
			snap.FreeCores = append(snap.FreeCores, c.ID)
		}
		for coreID, tid := range ks.lastTID {
			snap.LastTID = append(snap.LastTID, CoreTID{CoreID: coreID, TID: tid})
		}
		sort.Slice(snap.LastTID, func(i, j int) bool { return snap.LastTID[i].CoreID < snap.LastTID[j].CoreID })
		st.Kernels = append(st.Kernels, snap)
	}
	for pid, pr := range sc.procs {
		if pr.liveThreads != 0 {
			return st, fmt.Errorf("sched: process %d (%s) has %d live threads", pid, pr.Name, pr.liveThreads)
		}
		if pr.suspendAck != nil && !pr.suspendAck.Fired() {
			return st, fmt.Errorf("sched: process %d awaits a suspend ack", pid)
		}
		st.Procs = append(st.Procs, ProcessSnap{
			PID: pr.PID, Name: pr.Name, NWDomain: int(pr.nwDomain),
			NWPlaced:  pr.nwPlaced,
			NWThreads: pr.nwThreads, NWSuspended: pr.nwSuspended,
			DoneFired: pr.done.Fired(),
		})
	}
	sort.Slice(st.Procs, func(i, j int) bool { return st.Procs[i].PID < st.Procs[j].PID })
	st.NextPID, st.NextTID = sc.nextPID, sc.nextTID
	st.SuspendsSent, st.ResumesSent = sc.SuspendsSent, sc.ResumesSent
	return st, nil
}

// RestoreState rewinds a freshly constructed scheduler (same platform) onto
// a captured state, recreating process records (with fresh gates and events,
// legal because no thread was live at capture).
func (sc *Sched) RestoreState(st SchedState) error {
	if len(st.Kernels) != len(sc.kernels) {
		return fmt.Errorf("sched: snapshot has %d kernels, platform %d", len(st.Kernels), len(sc.kernels))
	}
	for id, ks := range sc.kernels {
		snap := st.Kernels[id]
		cores := sc.S.Domains[ks.k].Cores
		ks.free = ks.free[:0]
		for _, coreID := range snap.FreeCores {
			ks.free = append(ks.free, cores[coreID])
		}
		ks.waiters = nil
		ks.runnable = 0
		ks.lastTID = make(map[int]int, len(snap.LastTID))
		for _, e := range snap.LastTID {
			ks.lastTID[e.CoreID] = e.TID
		}
		ks.nwAssigned = snap.NWAssigned
		ks.nextSeq = snap.NextSeq
		ks.Switches = snap.Switches
	}
	sc.procs = make(map[int]*Process, len(st.Procs))
	for _, ps := range st.Procs {
		pr := &Process{
			PID: ps.PID, Name: ps.Name, sched: sc,
			nwDomain: soc.DomainID(ps.NWDomain), nwPlaced: ps.NWPlaced,
			nwThreads:   ps.NWThreads,
			nwSuspended: ps.NWSuspended,
			nwResume:    sim.NewGate(sc.S.Eng),
			nwPreempt:   sim.NewEvent(sc.S.Eng),
			done:        sim.NewEvent(sc.S.Eng),
		}
		if ps.DoneFired {
			pr.done.Fire()
		}
		sc.procs[pr.PID] = pr
	}
	sc.nextPID, sc.nextTID = st.NextPID, st.NextTID
	sc.SuspendsSent, sc.ResumesSent = st.SuspendsSent, st.ResumesSent
	return nil
}
