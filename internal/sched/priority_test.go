package sched

import (
	"testing"
	"time"

	"k2/internal/soc"
)

func TestPriorityOrdersCoreHandoff(t *testing.T) {
	e, _, sc := rig(false)
	var order []string
	// Saturate both strong cores, then queue three waiters with different
	// priorities.
	hog := sc.NewProcess("hogs")
	for i := 0; i < 2; i++ {
		hog.Spawn(Normal, "hog", func(th *Thread) {
			th.Exec(soc.Work(5 * time.Millisecond))
		})
	}
	spawnWaiter := func(name string, prio int) {
		pr := sc.NewProcess(name)
		pr.Spawn(Normal, name, func(th *Thread) {
			// Scheduling is lazy, so the priority set here governs the
			// thread's very first core acquisition.
			th.Priority = prio
			th.Exec(soc.Work(100 * time.Microsecond))
			order = append(order, name)
		})
	}
	spawnWaiter("low-early", 0)
	spawnWaiter("low-late", 0)
	spawnWaiter("high", 5)
	run(t, e, time.Minute)
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	if order[0] != "high" {
		t.Fatalf("high-priority waiter ran %v-th: %v", 1, order)
	}
	if order[1] != "low-early" || order[2] != "low-late" {
		t.Fatalf("equal priorities not FIFO: %v", order)
	}
}

func TestCPUTimeAccounting(t *testing.T) {
	e, _, sc := rig(false)
	pr := sc.NewProcess("acct")
	var nt, wt *Thread
	nt = pr.Spawn(Normal, "n", func(th *Thread) {
		th.Exec(soc.Work(2 * time.Millisecond))
		th.SleepIdle(10 * time.Millisecond) // not CPU time
		th.ExecFor(time.Millisecond)
	})
	pr2 := sc.NewProcess("acct2")
	wt = pr2.Spawn(NightWatch, "w", func(th *Thread) {
		th.Exec(soc.Work(time.Millisecond)) // 12 ms on the weak core
	})
	run(t, e, time.Minute)
	if got := nt.CPUTime(); got != 3*time.Millisecond {
		t.Fatalf("normal CPU time = %v, want 3ms", got)
	}
	if got := wt.CPUTime(); got != 12*time.Millisecond {
		t.Fatalf("nightwatch CPU time = %v, want 12ms (scaled)", got)
	}
}

func TestSwitchCounting(t *testing.T) {
	e, _, sc := rig(false)
	// Two single-core-bound... use three threads on two cores so handoffs
	// between distinct threads occur.
	for i := 0; i < 3; i++ {
		pr := sc.NewProcess("p")
		pr.Spawn(Normal, "t", func(th *Thread) {
			for j := 0; j < 3; j++ {
				th.Exec(soc.Work(200 * time.Microsecond))
				th.SleepIdle(50 * time.Microsecond)
			}
		})
	}
	run(t, e, time.Minute)
	if sc.Switches(soc.Strong) == 0 {
		t.Fatal("no context switches counted")
	}
	if sc.Switches(soc.Weak) != 0 {
		t.Fatal("phantom switches on the weak kernel")
	}
}
