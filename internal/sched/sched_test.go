package sched

import (
	"testing"
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
)

// rig builds a scheduler with the kernels' mailbox dispatchers running.
func rig(single bool) (*sim.Engine, *soc.SoC, *Sched) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	sc := New(s, single)
	for _, k := range []soc.DomainID{soc.Strong, soc.Weak} {
		k := k
		core := s.Core(k, 0)
		e.Spawn("dispatch-"+k.String(), func(p *sim.Proc) {
			for {
				msg := s.Mailbox.Recv(p, k)
				sc.HandleMessage(p, core, k, msg)
			}
		})
	}
	return e, s, sc
}

func run(t *testing.T, e *sim.Engine, horizon time.Duration) {
	t.Helper()
	if err := e.Run(sim.Time(horizon)); err != nil {
		t.Fatal(err)
	}
}

func TestThreadsRunOnTheirKernels(t *testing.T) {
	e, _, sc := rig(false)
	pr := sc.NewProcess("app")
	var normalDom, nwDom soc.DomainID
	pr.Spawn(Normal, "n", func(th *Thread) {
		th.Exec(soc.Work(time.Millisecond))
		normalDom = th.Core().Domain.ID
	})
	pr.Spawn(NightWatch, "w", func(th *Thread) {
		th.Exec(soc.Work(time.Millisecond))
		nwDom = th.Core().Domain.ID
	})
	run(t, e, time.Minute)
	if normalDom != soc.Strong {
		t.Fatalf("normal thread ran on %v", normalDom)
	}
	if nwDom != soc.Weak {
		t.Fatalf("nightwatch thread ran on %v", nwDom)
	}
}

func TestSingleKernelPinsEverythingStrong(t *testing.T) {
	e, _, sc := rig(true)
	pr := sc.NewProcess("app")
	var nwDom soc.DomainID
	pr.Spawn(NightWatch, "w", func(th *Thread) {
		th.Exec(soc.Work(time.Millisecond))
		nwDom = th.Core().Domain.ID
	})
	run(t, e, time.Minute)
	if nwDom != soc.Strong {
		t.Fatalf("baseline nightwatch ran on %v, want strong", nwDom)
	}
	if sc.SuspendsSent != 0 {
		t.Fatal("baseline must not run the suspend protocol")
	}
}

func TestExecDurationScales(t *testing.T) {
	e, _, sc := rig(false)
	pr := sc.NewProcess("app")
	var nDur, wDur time.Duration
	pr2 := sc.NewProcess("app2")
	pr.Spawn(Normal, "n", func(th *Thread) {
		start := th.P().Now()
		th.Exec(soc.Work(time.Millisecond))
		nDur = th.P().Now().Sub(start)
	})
	pr2.Spawn(NightWatch, "w", func(th *Thread) {
		start := th.P().Now()
		th.Exec(soc.Work(time.Millisecond))
		wDur = th.P().Now().Sub(start)
	})
	run(t, e, time.Minute)
	if nDur != time.Millisecond {
		t.Fatalf("normal exec = %v", nDur)
	}
	if wDur != 12*time.Millisecond {
		t.Fatalf("nightwatch exec = %v, want 12ms (weak core)", wDur)
	}
}

// The core invariant of §8: a NightWatch chunk never executes while a
// normal thread of the same process runs user code (post suspend-ack). The
// check runs at the end of every NightWatch chunk: by construction of the
// protocol a chunk is preempted before the ack is even sent, so a normal
// thread observed acked-running at a chunk boundary would mean overlap.
func TestNightWatchNeverOverlapsNormal(t *testing.T) {
	e, _, sc := rig(false)
	pr := sc.NewProcess("app")
	violated := false

	pr.Spawn(Normal, "n", func(th *Thread) {
		for i := 0; i < 5; i++ {
			th.SleepIdle(3 * time.Millisecond)
			th.Exec(soc.Work(2 * time.Millisecond))
		}
	})
	pr.Spawn(NightWatch, "w", func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Exec(soc.Work(100 * time.Microsecond))
			if th.Proc.RunningNormalAcked() > 0 {
				violated = true
			}
			th.SleepIdle(200 * time.Microsecond)
		}
	})
	run(t, e, 10*time.Minute)
	if violated {
		t.Fatal("NightWatch chunk executed while a normal thread of the same process was running")
	}
	if sc.SuspendsSent == 0 || sc.ResumesSent == 0 {
		t.Fatalf("protocol not exercised: suspends=%d resumes=%d", sc.SuspendsSent, sc.ResumesSent)
	}
}

func TestNightWatchDifferentProcessesUnaffected(t *testing.T) {
	// Multi-domain parallelism among processes must be allowed (§4.3),
	// or light tasks would depend on other applications' behavior.
	e, _, sc := rig(false)
	busy := sc.NewProcess("busy")
	light := sc.NewProcess("light")
	busy.Spawn(Normal, "n", func(th *Thread) {
		th.Exec(soc.Work(50 * time.Millisecond))
	})
	var nwRan bool
	var nwDone sim.Time
	light.Spawn(NightWatch, "w", func(th *Thread) {
		th.Exec(soc.Work(time.Millisecond))
		nwRan = true
		nwDone = th.P().Now()
	})
	run(t, e, time.Minute)
	if !nwRan {
		t.Fatal("nightwatch of another process blocked")
	}
	// It should have completed concurrently with the busy normal thread,
	// i.e. well before the 50 ms burst ended plus its own 12 ms.
	if nwDone > sim.Time(30*time.Millisecond) {
		t.Fatalf("nightwatch finished at %v; it was serialized behind another process", nwDone)
	}
}

func TestSuspendOverlapCost(t *testing.T) {
	// §8: the extra overhead on the main kernel is 1-2 µs per context
	// switch because the ack wait overlaps the switch. Measure the
	// schedule-in latency of a normal thread with and without a live
	// NightWatch sibling.
	measure := func(withNW bool) time.Duration {
		e, _, sc := rig(false)
		pr := sc.NewProcess("app")
		if withNW {
			pr.Spawn(NightWatch, "w", func(th *Thread) {
				for i := 0; i < 1000; i++ {
					th.Exec(soc.Work(10 * time.Microsecond))
					th.SleepIdle(100 * time.Microsecond)
				}
			})
		}
		// A second process provides a prior core holder so the normal
		// thread's schedule-in includes a context switch.
		other := sc.NewProcess("other")
		other.Spawn(Normal, "x", func(th *Thread) {
			th.Exec(soc.Work(100 * time.Microsecond))
		})
		other.Spawn(Normal, "x2", func(th *Thread) {
			th.Exec(soc.Work(100 * time.Microsecond))
		})
		var latency time.Duration
		e.At(sim.Time(10*time.Millisecond), func() {
			spawnedAt := e.Now()
			pr.Spawn(Normal, "n", func(th *Thread) {
				th.Exec(soc.Work(time.Microsecond))
				// Latency from spawn to completed first microsecond of
				// user work: context switch plus (with a NightWatch
				// sibling) the non-overlapped part of the ack wait.
				latency = th.P().Now().Sub(spawnedAt) - time.Microsecond
			})
		})
		if err := e.Run(sim.Time(time.Minute)); err != nil {
			t.Fatal(err)
		}
		return latency
	}
	base := measure(false)
	withNW := measure(true)
	extra := withNW - base
	if extra < 500*time.Nanosecond || extra > 4*time.Microsecond {
		t.Fatalf("suspend overlap overhead = %v (base %v, with NW %v), want ~1-2µs", extra, base, withNW)
	}
}

func TestCoreContentionTimeShares(t *testing.T) {
	e, _, sc := rig(false)
	pr := sc.NewProcess("app")
	done := 0
	// Three CPU-bound normal threads on two strong cores.
	for i := 0; i < 3; i++ {
		pr.Spawn(Normal, "n", func(th *Thread) {
			th.Exec(soc.Work(10 * time.Millisecond))
			done++
		})
	}
	run(t, e, time.Minute)
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	// 30 ms of work on 2 cores needs >= 15 ms of virtual time; events
	// after completion confirm no overlap beyond capacity. (A saturated
	// check lives in the soc Resource tests; here we just require
	// completion without deadlock.)
}

func TestProcessDoneFires(t *testing.T) {
	e, _, sc := rig(false)
	pr := sc.NewProcess("app")
	fired := false
	pr.Spawn(Normal, "n", func(th *Thread) { th.Exec(soc.Work(time.Millisecond)) })
	pr.Spawn(NightWatch, "w", func(th *Thread) { th.Exec(soc.Work(time.Millisecond)) })
	e.Spawn("watch", func(p *sim.Proc) {
		pr.Done().Wait(p)
		fired = true
	})
	run(t, e, time.Minute)
	if !fired {
		t.Fatal("Done never fired")
	}
}

func TestCanSleepRespectsRunnable(t *testing.T) {
	e, s, sc := rig(false)
	pr := sc.NewProcess("app")
	pr.Spawn(Normal, "n", func(th *Thread) {
		th.Exec(soc.Work(time.Millisecond))
		th.SleepIdle(20 * time.Second) // long block: domain should sleep
		th.Exec(soc.Work(time.Millisecond))
	})
	// After the 5s inactive timeout within the 20s block, strong suspends.
	if err := e.Run(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if s.Domains[soc.Strong].State() != soc.DomInactive {
		t.Fatalf("strong state = %v, want inactive during long block", s.Domains[soc.Strong].State())
	}
	run(t, e, 5*time.Minute)
	if s.Domains[soc.Strong].WakeCount() == 0 {
		t.Fatal("domain never woke to finish the thread")
	}
}
