// Package sched implements K2's thread scheduling (§8): per-kernel
// runqueues over the domains' cores, and the NightWatch thread abstraction
// for light tasks.
//
// NightWatch threads are pinned on the weak domain and are identical to
// normal threads from the developer's view — same process address space,
// same single system image — except for one rule: a NightWatch thread is
// only considered for scheduling when all normal threads of the same
// process are suspended, preventing multi-domain parallelism within a
// process (§4.3). The kernels coordinate with SuspendNW / AckSuspendNW /
// ResumeNW hardware mails, and the main kernel overlaps the suspend round
// trip with its context switch so the added cost is only 1–2 µs (§8).
package sched

import (
	"fmt"
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
)

// Kind distinguishes normal threads from NightWatch threads.
type Kind int

const (
	// Normal threads run on the strong domain (the main kernel).
	Normal Kind = iota
	// NightWatch threads are pinned on the weak domain (§8).
	NightWatch
)

func (k Kind) String() string {
	if k == NightWatch {
		return "nightwatch"
	}
	return "normal"
}

// Process is a single-system-image process: its threads may live on both
// kernels but share one logical address space.
type Process struct {
	PID  int
	Name string

	sched          *Sched
	nwDomain       soc.DomainID // home weak domain of NightWatch threads
	nwPlaced       bool         // nwDomain pinned explicitly via PlaceNW
	runnableNormal int
	runningAcked   int // normal threads holding a core past the suspend ack
	nwThreads      int
	nwSuspended    bool
	nwResume       *sim.Gate
	nwPreempt      *sim.Event // fired to preempt running NightWatch chunks
	suspendAck     *sim.Event // outstanding SuspendNW ack, if any
	threads        []*Thread
	liveThreads    int
	done           *sim.Event
}

// Done fires when every thread of the process has finished.
func (pr *Process) Done() *sim.Event { return pr.done }

// NWSuspended reports whether the process's NightWatch threads are
// currently barred from scheduling.
func (pr *Process) NWSuspended() bool { return pr.nwSuspended }

// RunningNormalAcked returns how many normal threads of the process are
// executing user code (core held and suspend ack received). While it is
// non-zero, no NightWatch chunk of the process may execute — the §8
// invariant that tests assert.
func (pr *Process) RunningNormalAcked() int { return pr.runningAcked }

// Thread is a schedulable activity. Its body runs in a sim.Proc and uses
// the Thread's methods to consume CPU time and block; the scheduler
// arbitrates the domain's cores among threads.
type Thread struct {
	TID  int
	Name string
	Kind Kind
	Proc *Process
	// Priority orders core handoff under contention: higher wins, ties go
	// FIFO. Zero is the default.
	Priority int

	ks      *kernelSched
	core    *soc.Core // held core, nil while blocked
	p       *sim.Proc
	cpuTime time.Duration
	waitSeq uint64
}

// CPUTime returns the thread's accumulated execution time (wall-clock on
// its core, i.e. already scaled by core speed).
func (t *Thread) CPUTime() time.Duration { return t.cpuTime }

// Sched is the two-kernel scheduler.
type Sched struct {
	S *soc.SoC
	// SingleKernel runs everything on the strong domain (Linux baseline):
	// NightWatch threads degrade to normal threads and no suspend protocol
	// runs.
	SingleKernel bool
	// NoSuspendOverlap waits for AckSuspendNW before the context switch
	// instead of overlapping the two (§8's optimization); exists for the
	// ablation quantifying the overlap.
	NoSuspendOverlap bool
	// Tracef, if set, receives NightWatch protocol trace lines.
	Tracef func(format string, args ...any)
	// Timeslice is the chunk size at which Exec checks for suspension.
	Timeslice soc.Work

	kernels []*kernelSched
	procs   map[int]*Process
	nextPID int
	nextTID int

	// Stats.
	SuspendsSent, ResumesSent int
}

type kernelSched struct {
	sched    *Sched
	k        soc.DomainID
	free     []*soc.Core
	waiters  []*coreWaiter
	lastTID  map[int]int // core ID -> last thread TID, for switch detection
	runnable int         // threads holding or waiting for a core
	// nwAssigned counts processes whose NightWatch threads live here; the
	// placement tie-breaker when runnable counts are equal.
	nwAssigned int
	nextSeq    uint64
	// Switches counts context switches on this kernel.
	Switches int
}

type coreWaiter struct {
	t    *Thread
	gate *sim.Gate
	core *soc.Core
}

// New returns a scheduler over the SoC's domains.
func New(s *soc.SoC, singleKernel bool) *Sched {
	sc := &Sched{
		S:            s,
		SingleKernel: singleKernel,
		Timeslice:    soc.Work(200 * time.Microsecond),
		procs:        make(map[int]*Process),
	}
	sc.kernels = make([]*kernelSched, s.NumDomains())
	for id := range s.Domains {
		k := soc.DomainID(id)
		ks := &kernelSched{sched: sc, k: k, lastTID: make(map[int]int)}
		ks.free = append(ks.free, s.Domains[k].Cores...)
		sc.kernels[k] = ks
	}
	// Domains may only suspend when their kernel has nothing runnable.
	for id := range s.Domains {
		ks := sc.kernels[id]
		s.Domains[id].CanSleep = func() bool { return ks.runnable == 0 }
	}
	return sc
}

// pickNWDomain chooses the home weak domain for a process's NightWatch
// threads: the least-loaded one — fewest runnable threads, ties broken by
// fewest NightWatch processes already placed there, then the lowest ID. On a
// two-domain platform this is always the single weak domain.
func (sc *Sched) pickNWDomain() soc.DomainID {
	return sc.PickNWDomains(1, nil)[0]
}

// PickNWDomains generalizes the least-loaded pick into replica-set
// placement with anti-affinity: it returns up to n distinct weak domains
// ordered best-first by the same criterion pickNWDomain uses (fewest
// runnable threads, then fewest NightWatch processes placed there, then
// lowest ID), skipping any domain for which skip returns true. It may
// return fewer than n when not enough weak domains survive the filter; the
// caller decides whether that is fatal (replica.Manager requires R distinct
// domains at group start, but accepts a degraded pool for re-integration).
func (sc *Sched) PickNWDomains(n int, skip func(soc.DomainID) bool) []soc.DomainID {
	var cands []soc.DomainID
	for _, k := range sc.S.WeakDomains() {
		if skip != nil && skip(k) {
			continue
		}
		cands = append(cands, k)
	}
	// Insertion sort by load: candidate lists are at most the weak-domain
	// count (≤ 64) and usually tiny. WeakDomains() yields ascending IDs and
	// the sort is stable, so equal-load ties keep the lowest ID first.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := sc.kernels[cands[j]], sc.kernels[cands[j-1]]
			if a.runnable < b.runnable ||
				(a.runnable == b.runnable && a.nwAssigned < b.nwAssigned) {
				cands[j], cands[j-1] = cands[j-1], cands[j]
				continue
			}
			break
		}
	}
	if len(cands) > n {
		cands = cands[:n]
	}
	return cands
}

// PlaceNW pins the home weak domain of pr's future NightWatch threads,
// overriding the least-loaded default pick. Replica-set placement uses it
// to spread R sibling processes over distinct domains. It must be called
// before the process's first NightWatch spawn; afterwards (or under the
// single-kernel baseline) it is a no-op.
func (pr *Process) PlaceNW(k soc.DomainID) {
	sc := pr.sched
	if sc.SingleKernel || pr.nwThreads > 0 || pr.nwPlaced {
		return
	}
	pr.nwDomain = k
	pr.nwPlaced = true
	sc.kernels[k].nwAssigned++
}

// Runnable returns how many threads of kernel k hold or want a core.
func (sc *Sched) Runnable(k soc.DomainID) int { return sc.kernels[k].runnable }

// Switches returns the number of context switches on kernel k.
func (sc *Sched) Switches(k soc.DomainID) int { return sc.kernels[k].Switches }

// NewProcess registers a process in the global PID namespace (part of the
// single system image: one table spans both kernels).
func (sc *Sched) NewProcess(name string) *Process {
	sc.nextPID++
	pr := &Process{
		PID:       sc.nextPID,
		Name:      name,
		sched:     sc,
		nwResume:  sim.NewGate(sc.S.Eng),
		nwPreempt: sim.NewEvent(sc.S.Eng),
		done:      sim.NewEvent(sc.S.Eng),
	}
	sc.procs[pr.PID] = pr
	return pr
}

// Process looks up a PID.
func (sc *Sched) Process(pid int) (*Process, bool) {
	pr, ok := sc.procs[pid]
	return pr, ok
}

// Spawn starts a thread of the given kind in process pr. The body receives
// the Thread, already scheduled on its kernel.
func (pr *Process) Spawn(kind Kind, name string, body func(t *Thread)) *Thread {
	sc := pr.sched
	k := soc.Strong
	if kind == NightWatch && !sc.SingleKernel {
		if pr.nwThreads == 0 && !pr.nwPlaced {
			// First NightWatch thread of the process: place it (and every
			// later sibling — they share suspend state) on the least-loaded
			// weak domain, unless PlaceNW pinned one already.
			pr.nwDomain = sc.pickNWDomain()
			sc.kernels[pr.nwDomain].nwAssigned++
		}
		k = pr.nwDomain
	}
	sc.nextTID++
	t := &Thread{TID: sc.nextTID, Name: name, Kind: kind, Proc: pr, ks: sc.kernels[k]}
	pr.threads = append(pr.threads, t)
	pr.liveThreads++
	if kind == NightWatch {
		pr.nwThreads++
	}
	// Scheduling is lazy: the thread competes for a core on its first
	// Exec/Block, so a body may set Thread.Priority (or block on an event)
	// before ever occupying one.
	sc.S.Eng.Spawn(fmt.Sprintf("%s/%s", pr.Name, name), func(p *sim.Proc) {
		t.p = p
		body(t)
		t.exit()
	})
	return t
}

// Kernel returns the domain this thread is pinned to.
func (t *Thread) Kernel() soc.DomainID { return t.ks.k }

// P returns the underlying sim proc (for waiting on events directly; the
// thread must be blocked via Block/Unblock around foreign waits).
func (t *Thread) P() *sim.Proc { return t.p }

// Core returns the thread's core, acquiring one first if the thread does
// not currently hold one (scheduling is lazy). Must be called from the
// thread's own context.
func (t *Thread) Core() *soc.Core {
	t.schedule()
	return t.core
}

// schedule acquires a core for the thread, waiting while the kernel is
// saturated or (for NightWatch threads) while the process is suspended.
func (t *Thread) schedule() {
	if t.core != nil {
		return
	}
	ks := t.ks
	ks.runnable++
	if t.Kind == NightWatch && !ks.sched.SingleKernel {
		for t.Proc.nwSuspended {
			// Not eligible: wait until the main kernel resumes us. We do
			// not count as runnable while barred.
			ks.runnable--
			t.Proc.nwResume.Wait(t.p)
			ks.runnable++
		}
	}
	if t.Kind == Normal {
		t.Proc.normalBecameRunnable(t.p)
	}
	ks.sched.S.Domains[ks.k].EnsureAwake(t.p)
	var c *soc.Core
	if n := len(ks.free); n > 0 {
		c = ks.free[n-1]
		ks.free = ks.free[:n-1]
	} else {
		ks.nextSeq++
		t.waitSeq = ks.nextSeq
		w := &coreWaiter{t: t, gate: sim.NewGate(ks.sched.S.Eng)}
		ks.waiters = append(ks.waiters, w)
		w.gate.Wait(t.p)
		c = w.core
	}
	t.core = c
	if last, ok := ks.lastTID[c.ID]; ok && last != t.TID {
		// Context switch: charge the incoming thread.
		ks.Switches++
		start := t.p.Now()
		c.Exec(t.p, ks.sched.S.Cfg.CtxSwitch)
		t.cpuTime += t.p.Now().Sub(start)
	}
	ks.lastTID[c.ID] = t.TID
	if t.Kind == Normal {
		t.Proc.awaitSuspendAck(t.p)
		t.Proc.runningAcked++
	}
}

// release gives the core back and hands it to the longest waiter, if any.
func (t *Thread) release() {
	if t.core == nil {
		return
	}
	ks := t.ks
	c := t.core
	t.core = nil
	ks.runnable--
	if t.Kind == Normal {
		t.Proc.runningAcked--
		t.Proc.normalBecameBlocked(t.p)
	}
	if len(ks.waiters) > 0 {
		// Highest priority wins; ties go to the longest waiter.
		best := 0
		for i := 1; i < len(ks.waiters); i++ {
			wi, wb := ks.waiters[i].t, ks.waiters[best].t
			if wi.Priority > wb.Priority ||
				(wi.Priority == wb.Priority && wi.waitSeq < wb.waitSeq) {
				best = i
			}
		}
		w := ks.waiters[best]
		ks.waiters = append(ks.waiters[:best], ks.waiters[best+1:]...)
		w.core = c
		w.gate.Open()
		return
	}
	ks.free = append(ks.free, c)
	ks.sched.S.Domains[ks.k].KickIdleTimer()
}

func (t *Thread) exit() {
	t.release()
	t.Proc.liveThreads--
	if t.Proc.liveThreads == 0 {
		t.Proc.done.Fire()
	}
}

// Exec consumes CPU work. NightWatch execution is preemptible: when the
// shadow kernel receives SuspendNW it fires the process's preempt signal,
// which interrupts the running chunk; the thread then releases its core and
// waits for ResumeNW (§8).
func (t *Thread) Exec(w soc.Work) {
	for w > 0 {
		t.schedule()
		chunk := w
		if chunk > t.ks.sched.Timeslice {
			chunk = t.ks.sched.Timeslice
		}
		start := t.p.Now()
		if t.Kind == NightWatch && !t.ks.sched.SingleKernel {
			preempt := t.Proc.nwPreempt
			w -= t.core.ExecCancelable(t.p, chunk, preempt)
			t.cpuTime += t.p.Now().Sub(start)
			if t.Proc.nwSuspended {
				t.release()
			}
			continue
		}
		t.core.Exec(t.p, chunk)
		t.cpuTime += t.p.Now().Sub(start)
		w -= chunk
	}
}

// ExecFor consumes wall-clock busy time unscaled by core speed (for
// interconnect-bound work).
func (t *Thread) ExecFor(d time.Duration) {
	t.schedule()
	t.core.ExecFor(t.p, d)
	t.cpuTime += d
}

// Block releases the thread's core and runs wait, which must park the proc
// (e.g. wait on an event or sleep); afterwards the thread is rescheduled.
// This models a thread blocking for IO.
func (t *Thread) Block(wait func(p *sim.Proc)) {
	t.release()
	wait(t.p)
	t.schedule()
}

// SleepIdle blocks the thread for d (the core is free; the domain may go
// idle or inactive).
func (t *Thread) SleepIdle(d time.Duration) {
	t.Block(func(p *sim.Proc) { p.Sleep(d) })
}

// Yield releases and reacquires the core, giving equal-priority threads a
// chance to run.
func (t *Thread) Yield() {
	t.release()
	t.p.Yield()
	t.schedule()
}

// normalBecameRunnable implements the schedule-in side of the NightWatch
// protocol: on the 0 -> 1 transition of runnable normal threads, the main
// kernel sends SuspendNW; the wait for the ack is overlapped with the
// context switch (awaitSuspendAck runs after it).
func (pr *Process) normalBecameRunnable(p *sim.Proc) {
	sc := pr.sched
	pr.runnableNormal++
	if sc.SingleKernel || pr.runnableNormal != 1 || pr.nwSuspended || pr.nwThreads == 0 {
		return
	}
	pr.nwSuspended = true
	pr.suspendAck = sim.NewEvent(sc.S.Eng)
	sc.SuspendsSent++
	if sc.Tracef != nil {
		sc.Tracef("SuspendNW(pid=%d): normal thread scheduling in", pr.PID)
	}
	sc.S.Mailbox.SendAsync(soc.Strong, pr.nwDomain,
		soc.NewMessage(soc.MsgSuspendNW, uint32(pr.PID), sc.S.Mailbox.NextSeq()))
	if sc.NoSuspendOverlap {
		// Unoptimized variant: block for the ack before the context
		// switch even begins.
		pr.awaitSuspendAck(p)
	}
}

// awaitSuspendAck completes the overlap: after the context switch, the
// schedule-in waits for AckSuspendNW before returning to user space.
func (pr *Process) awaitSuspendAck(p *sim.Proc) {
	if pr.suspendAck != nil && !pr.suspendAck.Fired() {
		pr.suspendAck.Wait(p)
	}
}

// normalBecameBlocked implements the resume side: when all normal threads
// of the process are blocked, the main kernel sends ResumeNW (§8).
func (pr *Process) normalBecameBlocked(p *sim.Proc) {
	sc := pr.sched
	pr.runnableNormal--
	if sc.SingleKernel || pr.runnableNormal != 0 || !pr.nwSuspended {
		return
	}
	sc.ResumesSent++
	if sc.Tracef != nil {
		sc.Tracef("ResumeNW(pid=%d): all normal threads blocked", pr.PID)
	}
	sc.S.Mailbox.SendAsync(soc.Strong, pr.nwDomain,
		soc.NewMessage(soc.MsgResumeNW, uint32(pr.PID), sc.S.Mailbox.NextSeq()))
}

// HandleMessage processes the scheduler's mailbox traffic on kernel k; the
// OS dispatcher calls it. It returns true if the message was handled.
func (sc *Sched) HandleMessage(p *sim.Proc, core *soc.Core, k soc.DomainID, msg soc.Message) bool {
	switch msg.Type() {
	case soc.MsgSuspendNW:
		// Shadow kernel: ack immediately, then flag the process's
		// NightWatch threads out of the runqueue (§8).
		pr, ok := sc.procs[int(msg.Payload())]
		if !ok {
			return true
		}
		sc.S.Mailbox.Send(p, core, soc.Strong,
			soc.NewMessage(soc.MsgAckSuspendNW, msg.Payload(), sc.S.Mailbox.NextSeq()))
		pr.nwSuspended = true
		// Preempt any running NightWatch chunk of the process and re-arm
		// the signal for the next suspension.
		pr.nwPreempt.Fire()
		pr.nwPreempt = sim.NewEvent(sc.S.Eng)
		return true
	case soc.MsgAckSuspendNW:
		pr, ok := sc.procs[int(msg.Payload())]
		if ok && pr.suspendAck != nil {
			pr.suspendAck.Fire()
			pr.suspendAck = nil
		}
		return true
	case soc.MsgResumeNW:
		pr, ok := sc.procs[int(msg.Payload())]
		if ok {
			pr.nwSuspended = false
			pr.nwResume.Open()
		}
		return true
	}
	return false
}
