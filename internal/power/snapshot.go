package power

import "k2/internal/sim"

// RailState is a rail's checkpointable state: the current level, the time the
// energy integral was last settled, and the integral itself. Captured raw —
// no settle is forced — so a capture/restore pair at the same virtual time is
// exact regardless of when the rail last changed level.
type RailState struct {
	Level  Milliwatts
	LastAt sim.Time
	Joules float64
}

// CaptureState records the rail's integrator state.
func (r *Rail) CaptureState() RailState {
	return RailState{Level: r.level, LastAt: r.lastAt, Joules: r.joules}
}

// RestoreState rewinds the rail onto a captured state.
func (r *Rail) RestoreState(st RailState) {
	r.level, r.lastAt, r.joules = st.Level, st.LastAt, st.Joules
}

// MeterState is a meter's checkpointable state: the per-rail baselines taken
// at the last Reset, in rail order.
type MeterState struct {
	Base []float64
}

// CaptureState records the meter's baselines.
func (m *Meter) CaptureState() MeterState {
	return MeterState{Base: append([]float64(nil), m.base...)}
}

// RestoreState rewinds the meter onto captured baselines. The meter must
// span the same rails, in the same order, as when the state was captured.
func (m *Meter) RestoreState(st MeterState) {
	m.base = append(m.base[:0], st.Base...)
}
