// Package power models per-domain power rails and energy accounting.
//
// The paper measures energy by sampling current on the separate power rails
// of the OMAP4 coherence domains (§9.2). We reproduce the same observable:
// each Rail integrates a piecewise-constant power level over virtual time,
// and experiments snapshot rails around an episode to obtain Joules.
package power

import "k2/internal/sim"

// Milliwatts is a power level in mW.
type Milliwatts float64

// Profile holds the power levels of one coherence domain, from Table 3 of
// the paper. Active is drawn while at least one core in the domain executes;
// Idle while the domain is awake but no core executes; Inactive once the
// domain has been suspended (the paper reports "less than 0.1 mW").
type Profile struct {
	Active   Milliwatts
	Idle     Milliwatts
	Inactive Milliwatts
}

// Rail integrates energy over virtual time at a piecewise-constant level.
type Rail struct {
	Name string

	// OnLevelChange, if set, observes every effective SetLevel: the virtual
	// time of the change plus the old and new levels. The rail has already
	// settled at the old level when the hook runs. Observers must not touch
	// simulation state; the hook exists so an invariant checker can shadow
	// the integral independently (internal/check's energy oracle).
	OnLevelChange func(at sim.Time, old, new Milliwatts)
	// OnAddEnergy, if set, observes every AddEnergyJ charge.
	OnAddEnergy func(j float64)

	eng    *sim.Engine
	level  Milliwatts
	lastAt sim.Time
	joules float64
}

// NewRail returns a rail starting at the given level.
func NewRail(eng *sim.Engine, name string, level Milliwatts) *Rail {
	return &Rail{Name: name, eng: eng, level: level, lastAt: eng.Now()}
}

func (r *Rail) settle() {
	now := r.eng.Now()
	r.joules += float64(r.level) / 1e3 * now.Sub(r.lastAt).Seconds()
	r.lastAt = now
}

// SetLevel changes the rail's power draw as of the current virtual time.
func (r *Rail) SetLevel(mw Milliwatts) {
	r.settle()
	if r.OnLevelChange != nil && mw != r.level {
		r.OnLevelChange(r.eng.Now(), r.level, mw)
	}
	r.level = mw
}

// Level returns the current power draw.
func (r *Rail) Level() Milliwatts { return r.level }

// EnergyJ returns total energy drawn through the current virtual time.
func (r *Rail) EnergyJ() float64 {
	r.settle()
	return r.joules
}

// AddEnergyJ charges a fixed energy cost (e.g. a domain wake penalty) that
// is not captured by the piecewise-constant level.
func (r *Rail) AddEnergyJ(j float64) {
	r.joules += j
	if r.OnAddEnergy != nil {
		r.OnAddEnergy(j)
	}
}

// Meter snapshots a set of rails so an experiment can measure the energy of
// one episode.
type Meter struct {
	rails []*Rail
	base  []float64
}

// NewMeter returns a meter over the given rails, zeroed at the current time.
func NewMeter(rails ...*Rail) *Meter {
	m := &Meter{rails: rails}
	m.Reset()
	return m
}

// Reset re-zeroes the meter at the current virtual time.
func (m *Meter) Reset() {
	m.base = m.base[:0]
	for _, r := range m.rails {
		m.base = append(m.base, r.EnergyJ())
	}
}

// EnergyJ returns the total energy drawn by all rails since the last Reset.
func (m *Meter) EnergyJ() float64 {
	var sum float64
	for i, r := range m.rails {
		sum += r.EnergyJ() - m.base[i]
	}
	return sum
}

// Battery models a device battery for the standby-time estimate (§9.2).
type Battery struct {
	// CapacityJ is usable battery energy in Joules. A typical 2013-era
	// phone battery (~6.5 Wh) is about 23,400 J.
	CapacityJ float64
}

// StandbyDays returns how many days the battery lasts at the given average
// drain in milliwatts.
func (b Battery) StandbyDays(avgMW float64) float64 {
	if avgMW <= 0 {
		return 0
	}
	seconds := b.CapacityJ / (avgMW / 1e3)
	return seconds / 86400
}
