package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"k2/internal/sim"
)

func TestRailIntegratesPiecewiseConstant(t *testing.T) {
	e := sim.NewEngine()
	r := NewRail(e, "test", 100) // 100 mW
	e.At(sim.Time(time.Second), func() { r.SetLevel(50) })
	e.At(sim.Time(3*time.Second), func() { r.SetLevel(0) })
	e.At(sim.Time(10*time.Second), func() {})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	// 100 mW for 1 s + 50 mW for 2 s = 0.1 + 0.1 = 0.2 J
	if got := r.EnergyJ(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("EnergyJ = %v, want 0.2", got)
	}
}

func TestRailAddEnergy(t *testing.T) {
	e := sim.NewEngine()
	r := NewRail(e, "test", 0)
	r.AddEnergyJ(0.5)
	if got := r.EnergyJ(); got != 0.5 {
		t.Fatalf("EnergyJ = %v, want 0.5", got)
	}
}

func TestMeterMeasuresEpisode(t *testing.T) {
	e := sim.NewEngine()
	a := NewRail(e, "a", 10)
	b := NewRail(e, "b", 20)
	m := NewMeter(a, b)
	e.At(sim.Time(2*time.Second), func() {
		// 2 s at 30 mW total = 0.06 J
		if got := m.EnergyJ(); math.Abs(got-0.06) > 1e-9 {
			t.Fatalf("episode energy = %v, want 0.06", got)
		}
		m.Reset()
	})
	e.At(sim.Time(3*time.Second), func() {
		if got := m.EnergyJ(); math.Abs(got-0.03) > 1e-9 {
			t.Fatalf("post-reset energy = %v, want 0.03", got)
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any sequence of level changes, energy is non-negative and
// monotonically non-decreasing over time for non-negative levels.
func TestQuickRailMonotone(t *testing.T) {
	f := func(levels []uint8) bool {
		e := sim.NewEngine()
		r := NewRail(e, "q", 0)
		for i, lv := range levels {
			lv := lv
			e.At(sim.Time(i)*sim.Time(time.Millisecond), func() { r.SetLevel(Milliwatts(lv)) })
		}
		prev := -1.0
		for i := range levels {
			e.At(sim.Time(i)*sim.Time(time.Millisecond)+1, func() {
				j := r.EnergyJ()
				if j < prev {
					panic("energy decreased")
				}
				prev = j
			})
		}
		return e.RunAll() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatteryStandby(t *testing.T) {
	b := Battery{CapacityJ: 86400} // 1 mW drains it in 1000 days... check math
	// 86400 J at 1 mW = 86400/0.001 s = 86,400,000 s = 1000 days
	if got := b.StandbyDays(1); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("StandbyDays(1mW) = %v, want 1000", got)
	}
	if got := b.StandbyDays(0); got != 0 {
		t.Fatalf("StandbyDays(0) = %v, want 0", got)
	}
}
