// Package fault is a deterministic fault injector for the simulated
// platform. A Plan is a script of domain-level faults (crash, hang, reboot,
// spurious interrupt) pinned to virtual times, plus per-link probabilistic
// mailbox faults (drop, delay, duplicate) drawn from a seeded PRNG
// (sim.Rand), so the same seed always yields the same fault sequence and —
// because the simulation itself is deterministic — the same trace. An empty
// Plan injects nothing and leaves every hardware path byte-identical to an
// un-instrumented run.
//
// The injector sits below the OS: timed faults act directly on soc.Domain
// power/crash state and the interrupt controllers, and link faults are
// installed as the mailbox fabric's MailFilter, where they see every
// transmission attempt including reliable-transport acks. Recovery is the
// OS's job (core.Watchdog, dsm/mem ReclaimDead); the injector only breaks
// things and records what it broke.
package fault

import (
	"fmt"
	"sort"
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/trace"
)

// LinkFaults is the probabilistic fault mix of one directed mailbox link.
// Probabilities apply per transmission attempt, to data mails and transport
// acks alike.
type LinkFaults struct {
	// DropP is the probability a transmission is lost.
	DropP float64
	// DelayP is the probability a transmission is delayed by a uniform
	// extra latency in (0, DelayMax].
	DelayP   float64
	DelayMax time.Duration
	// DupP is the probability a transmission is delivered twice.
	DupP float64
}

func (lf LinkFaults) active() bool {
	return lf.DropP > 0 || lf.DelayP > 0 || lf.DupP > 0
}

// timed is one scripted fault.
type timed struct {
	at   time.Duration
	kind string // "crash", "hang", "spurious-irq"
	dom  soc.DomainID
	line soc.IRQLine
	// rebootAfter, if > 0, schedules a reboot that long after the crash.
	rebootAfter time.Duration
}

// Stats counts the faults the plan actually injected.
type Stats struct {
	Crashes, Hangs, Reboots, SpuriousIRQs    int
	Dropped, Delayed, Duplicated, AckDropped int
}

// Plan is a deterministic fault schedule. Build one with NewPlan and the
// fluent setters, then Arm it on a booted platform before running the
// engine. The zero-fault plan is inert: Arm installs no filter and
// schedules nothing.
type Plan struct {
	// Seed is the PRNG seed for the probabilistic link faults.
	Seed int64

	rng    *sim.Rand
	script []timed
	links  map[[2]soc.DomainID]*LinkFaults
	all    *LinkFaults // fallback applied to links without an entry

	s     *soc.SoC
	tb    *trace.Buffer
	Stats Stats
}

// NewPlan returns an empty plan whose link faults draw from seed.
func NewPlan(seed int64) *Plan {
	return &Plan{
		Seed:  seed,
		rng:   sim.NewRand(seed),
		links: make(map[[2]soc.DomainID]*LinkFaults),
	}
}

// CrashAt scripts a fail-stop crash of domain d at virtual time at; if
// rebootAfter > 0 the domain reboots that long after the crash (0 = stays
// dead). A crashed domain freezes its procs, loses incoming mail and IRQs,
// and draws inactive-level power.
func (pl *Plan) CrashAt(d soc.DomainID, at, rebootAfter time.Duration) *Plan {
	pl.script = append(pl.script, timed{at: at, kind: "crash", dom: d, rebootAfter: rebootAfter})
	return pl
}

// HangAt is CrashAt except the domain wedges instead of powering off: same
// loss of service, but the rail keeps burning idle power until somebody
// notices — the expensive failure mode a watchdog exists for.
func (pl *Plan) HangAt(d soc.DomainID, at, rebootAfter time.Duration) *Plan {
	pl.script = append(pl.script, timed{at: at, kind: "hang", dom: d, rebootAfter: rebootAfter})
	return pl
}

// SpuriousIRQAt scripts a spurious assertion of the given interrupt line at
// virtual time at. Handlers must tolerate it (real lines are level-
// triggered and shared).
func (pl *Plan) SpuriousIRQAt(line soc.IRQLine, at time.Duration) *Plan {
	pl.script = append(pl.script, timed{at: at, kind: "spurious-irq", line: line})
	return pl
}

// Link returns the fault mix of the directed link from→to, creating it on
// first use.
func (pl *Plan) Link(from, to soc.DomainID) *LinkFaults {
	k := [2]soc.DomainID{from, to}
	if pl.links[k] == nil {
		pl.links[k] = &LinkFaults{}
	}
	return pl.links[k]
}

// DropMail sets the drop probability of the directed link from→to.
func (pl *Plan) DropMail(from, to soc.DomainID, p float64) *Plan {
	pl.Link(from, to).DropP = p
	return pl
}

// DelayMail sets the delay probability and maximum extra latency of the
// directed link from→to.
func (pl *Plan) DelayMail(from, to soc.DomainID, p float64, max time.Duration) *Plan {
	lf := pl.Link(from, to)
	lf.DelayP, lf.DelayMax = p, max
	return pl
}

// DupMail sets the duplication probability of the directed link from→to.
func (pl *Plan) DupMail(from, to soc.DomainID, p float64) *Plan {
	pl.Link(from, to).DupP = p
	return pl
}

// AllLinks sets the fallback fault mix applied to every link without an
// explicit entry.
func (pl *Plan) AllLinks(lf LinkFaults) *Plan {
	pl.all = &lf
	return pl
}

// hasLinkFaults reports whether any probabilistic link fault is configured.
func (pl *Plan) hasLinkFaults() bool {
	if pl.all != nil && pl.all.active() {
		return true
	}
	for _, lf := range pl.links {
		if lf.active() {
			return true
		}
	}
	return false
}

// Arm installs the plan on a booted platform: scripted faults are scheduled
// on the engine and, only if link faults are configured, the plan becomes
// the mailbox fabric's filter. tb may be nil (faults still inject, just
// untraced). Arm must be called before the engine runs.
func (pl *Plan) Arm(s *soc.SoC, tb *trace.Buffer) {
	pl.s, pl.tb = s, tb
	// Schedule in script order for equal times (stable sort keeps the
	// builder's order deterministic).
	sort.SliceStable(pl.script, func(i, j int) bool { return pl.script[i].at < pl.script[j].at })
	for i := range pl.script {
		ev := pl.script[i]
		s.Eng.At(sim.Time(ev.at), func() { pl.fire(ev) })
	}
	if pl.hasLinkFaults() {
		s.Mailbox.SetFilter(pl)
	}
}

func (pl *Plan) fire(ev timed) {
	switch ev.kind {
	case "crash", "hang":
		d := pl.s.Domains[ev.dom]
		if ev.kind == "hang" {
			d.Hang()
			pl.Stats.Hangs++
		} else {
			d.Crash()
			pl.Stats.Crashes++
		}
		pl.emit("%s of %s domain injected", ev.kind, d.Name)
		if ev.rebootAfter > 0 {
			pl.s.Eng.After(ev.rebootAfter, func() {
				d.Reboot()
				pl.Stats.Reboots++
				pl.emit("%s domain rebooted", d.Name)
			})
		}
	case "spurious-irq":
		pl.Stats.SpuriousIRQs++
		pl.emit("spurious IRQ on line %d injected", ev.line)
		pl.s.Raise(ev.line)
	}
}

func (pl *Plan) emit(format string, args ...any) {
	if pl.tb != nil {
		pl.tb.Emit(trace.Fault, format, args...)
	}
}

// linkFor returns the fault mix governing from→to, or nil for a clean link.
func (pl *Plan) linkFor(from, to soc.DomainID) *LinkFaults {
	if lf := pl.links[[2]soc.DomainID{from, to}]; lf != nil {
		return lf
	}
	return pl.all
}

// FilterMail implements soc.MailFilter. Draw order is fixed (drop, delay,
// delay amount, duplicate) and every configured probability consumes
// exactly one draw per attempt, so the PRNG stream — and therefore the
// whole run — is a pure function of the seed and the traffic.
func (pl *Plan) FilterMail(from, to soc.DomainID, msg soc.Message, ack bool) soc.MailVerdict {
	lf := pl.linkFor(from, to)
	if lf == nil || !lf.active() {
		return soc.MailVerdict{}
	}
	var v soc.MailVerdict
	if lf.DropP > 0 && pl.rng.Bernoulli(lf.DropP) {
		v.Drop = true
		if ack {
			pl.Stats.AckDropped++
			pl.emit("ack %v->%v dropped", from, to)
		} else {
			pl.Stats.Dropped++
			pl.emit("mail %v->%v (%v) dropped", from, to, msg)
		}
		return v
	}
	if lf.DelayP > 0 && pl.rng.Bernoulli(lf.DelayP) {
		v.Delay = pl.rng.Duration(lf.DelayMax)
		pl.Stats.Delayed++
		pl.emit("mail %v->%v delayed %v", from, to, v.Delay)
	}
	if !ack && lf.DupP > 0 && pl.rng.Bernoulli(lf.DupP) {
		v.Duplicate = true
		pl.Stats.Duplicated++
		pl.emit("mail %v->%v duplicated", from, to)
	}
	return v
}

// Summary is a one-line account of everything the plan injected.
func (s Stats) Summary() string {
	return fmt.Sprintf(
		"crashes %d, hangs %d, reboots %d, spurious IRQs %d, mails dropped %d, delayed %d, duplicated %d, acks dropped %d",
		s.Crashes, s.Hangs, s.Reboots, s.SpuriousIRQs,
		s.Dropped, s.Delayed, s.Duplicated, s.AckDropped)
}
