package fault

import (
	"testing"
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/trace"
)

func newRig() (*sim.Engine, *soc.SoC, *trace.Buffer) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	tb := trace.New(e, 1024)
	tb.Enable(trace.Fault, true)
	return e, s, tb
}

// The zero-fault plan must be inert: nothing scheduled, no filter installed,
// all traffic untouched — the property the byte-identical baseline rests on.
func TestZeroFaultPlanIsInert(t *testing.T) {
	e, s, tb := newRig()
	pl := NewPlan(1)
	pl.Arm(s, tb)
	got := 0
	e.Spawn("rx", func(p *sim.Proc) {
		for {
			s.Mailbox.RecvFrom(p, soc.Weak)
			got++
		}
	})
	e.Spawn("tx", func(p *sim.Proc) {
		for i := uint32(0); i < 20; i++ {
			s.Mailbox.SendAsync(soc.Strong, soc.Weak, soc.NewMessage(soc.MsgGeneric, i, i))
			p.Sleep(10 * time.Microsecond)
		}
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Fatalf("delivered %d/20 mails under an empty plan", got)
	}
	if pl.Stats != (Stats{}) {
		t.Fatalf("empty plan injected something: %+v", pl.Stats)
	}
	if st := s.Mailbox.Stats; st.Dropped != 0 || st.Delayed != 0 || st.Duplicated != 0 {
		t.Fatalf("fabric saw transport noise: %+v", st)
	}
	if tb.Len() != 0 {
		t.Fatalf("empty plan emitted %d trace events", tb.Len())
	}
}

// Scripted crash and reboot must fire at their exact virtual times, be
// counted, and be visible as trace.Fault events.
func TestScriptedCrashAndRebootFireOnTime(t *testing.T) {
	e, s, tb := newRig()
	pl := NewPlan(1).CrashAt(soc.Weak, time.Millisecond, 2*time.Millisecond)
	pl.Arm(s, tb)
	d := s.Domains[soc.Weak]
	e.At(sim.Time(999*time.Microsecond), func() {
		if d.Crashed() {
			t.Error("crashed before its scheduled time")
		}
	})
	e.At(sim.Time(1500*time.Microsecond), func() {
		if !d.Crashed() {
			t.Error("not crashed at t=1.5ms")
		}
		if got := d.Rail.Level(); got != d.Profile.Inactive {
			t.Errorf("crashed rail at %v, want inactive level", got)
		}
	})
	e.At(sim.Time(3500*time.Microsecond), func() {
		if d.Crashed() {
			t.Error("still crashed after the scheduled reboot")
		}
	})
	if err := e.Run(sim.Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if pl.Stats.Crashes != 1 || pl.Stats.Reboots != 1 {
		t.Fatalf("stats = %+v, want 1 crash / 1 reboot", pl.Stats)
	}
	if n := len(tb.Filter(trace.Fault)); n != 2 {
		t.Fatalf("%d fault trace events, want 2 (crash + reboot)", n)
	}
}

// A hang must leave the rail at idle power (not inactive) until the reboot.
func TestScriptedHangBurnsIdlePower(t *testing.T) {
	e, s, tb := newRig()
	pl := NewPlan(1).HangAt(soc.Weak, time.Millisecond, 0)
	pl.Arm(s, tb)
	d := s.Domains[soc.Weak]
	e.At(sim.Time(2*time.Millisecond), func() {
		if !d.Crashed() {
			t.Error("hung domain must count as crashed")
		}
		if got := d.Rail.Level(); got != d.Profile.Idle {
			t.Errorf("hung rail at %v, want idle level", got)
		}
	})
	if err := e.Run(sim.Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if pl.Stats.Hangs != 1 || pl.Stats.Crashes != 0 {
		t.Fatalf("stats = %+v, want 1 hang", pl.Stats)
	}
}

// A spurious IRQ must reach every unmasked handler at the scripted time.
func TestSpuriousIRQDelivered(t *testing.T) {
	e, s, tb := newRig()
	line := s.AllocIRQ()
	var hits []sim.Time
	s.IRQ[soc.Strong].SetHandler(func(l soc.IRQLine) {
		if l == line {
			hits = append(hits, e.Now())
		}
	})
	pl := NewPlan(1).SpuriousIRQAt(line, 5*time.Millisecond)
	pl.Arm(s, tb)
	if err := e.Run(sim.Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != sim.Time(5*time.Millisecond) {
		t.Fatalf("spurious IRQ hits = %v, want one at exactly 5ms", hits)
	}
	if pl.Stats.SpuriousIRQs != 1 {
		t.Fatalf("stats = %+v", pl.Stats)
	}
}

// Two plans with the same seed and configuration must produce identical
// verdict sequences for identical traffic; a different seed must not.
func TestFilterMailDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) *Plan {
		return NewPlan(seed).AllLinks(LinkFaults{
			DropP: 0.2, DelayP: 0.3, DelayMax: 50 * time.Microsecond, DupP: 0.2,
		})
	}
	verdicts := func(pl *Plan) []soc.MailVerdict {
		var vs []soc.MailVerdict
		for i := 0; i < 200; i++ {
			msg := soc.NewMessage(soc.MsgGeneric, uint32(i), uint32(i)&0x1FF)
			vs = append(vs, pl.FilterMail(soc.Strong, soc.Weak, msg, i%5 == 0))
		}
		return vs
	}
	a, b := verdicts(mk(42)), verdicts(mk(42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := verdicts(mk(43))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical verdict sequences")
	}
}

// A per-link entry overrides the AllLinks fallback; links with neither stay
// clean. Acks are never duplicated (a duplicated ack is meaningless).
func TestLinkSelectionAndAckRules(t *testing.T) {
	pl := NewPlan(7).AllLinks(LinkFaults{DupP: 1})
	pl.DropMail(soc.Strong, soc.Weak, 1)
	msg := soc.NewMessage(soc.MsgGeneric, 1, 1)

	if v := pl.FilterMail(soc.Strong, soc.Weak, msg, false); !v.Drop {
		t.Fatal("per-link DropP=1 did not drop")
	}
	if v := pl.FilterMail(soc.Weak, soc.Strong, msg, false); !v.Duplicate || v.Drop {
		t.Fatalf("fallback link verdict = %+v, want duplicate", v)
	}
	if v := pl.FilterMail(soc.Weak, soc.Strong, msg, true); v.Duplicate {
		t.Fatal("an ack was duplicated")
	}
	if pl.Stats.Dropped != 1 || pl.Stats.Duplicated != 1 {
		t.Fatalf("stats = %+v", pl.Stats)
	}
}
