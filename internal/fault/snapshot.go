package fault

// PlanState is a plan's checkpointable state: the PRNG position and the
// injection counters. The script and link mixes are configuration, not
// state — a restored run re-arms a plan built from the same configuration.
type PlanState struct {
	RngState uint64
	Stats    Stats
}

// CaptureState records the plan's PRNG position and counters.
func (pl *Plan) CaptureState() PlanState {
	return PlanState{RngState: pl.rng.State(), Stats: pl.Stats}
}

// RestoreState rewinds the plan onto a captured state, so the probabilistic
// draw stream continues exactly where the captured run left off.
func (pl *Plan) RestoreState(st PlanState) {
	pl.rng.SetState(st.RngState)
	pl.Stats = st.Stats
}
