package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.Stddev()-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s.Stddev())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Stddev() != 0 {
		t.Fatal("empty summary must be zeros")
	}
	s.Add(3)
	if s.Stddev() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-observation summary wrong")
	}
}

// Property: Welford matches the naive two-pass computation.
func TestQuickSummaryMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		var sum float64
		for _, v := range raw {
			s.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		if math.Abs(s.Mean()-mean) > 1e-6*(math.Abs(mean)+1) {
			return false
		}
		if len(raw) < 2 {
			return true
		}
		var ss float64
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		naive := math.Sqrt(ss / float64(len(raw)-1))
		return math.Abs(s.Stddev()-naive) < 1e-6*(naive+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := h.Percentile(50); got != 50*time.Microsecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*time.Microsecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Microsecond {
		t.Fatalf("p100 = %v", got)
	}
}

// Property: percentiles are order statistics of the observed set.
func TestQuickHistogramPercentileIsOrderStat(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := float64(pRaw%100) + 1
		h := NewHistogram(0)
		vals := make([]float64, len(raw))
		for i, v := range raw {
			d := time.Duration(v) * time.Microsecond
			h.Observe(d)
			vals[i] = float64(d.Nanoseconds())
		}
		sort.Float64s(vals)
		idx := int(math.Ceil(p/100*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		return h.Percentile(p) == time.Duration(vals[idx])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0)
	h.Observe(500 * time.Nanosecond)
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Microsecond)
	}
	h.Observe(70 * time.Microsecond)
	out := h.Render()
	for _, want := range []string{"<1µs", "2µs", "64µs", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramRetentionCap(t *testing.T) {
	h := NewHistogram(10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(rng.Intn(1000)) * time.Microsecond)
	}
	if h.N() != 100 {
		t.Fatalf("n = %d", h.N())
	}
	if len(h.exact) != 10 {
		t.Fatalf("retained = %d, want capped at 10", len(h.exact))
	}
}

func TestSummarySum(t *testing.T) {
	var s Summary
	for _, v := range []float64{1.5, 2.5, 6} {
		s.Add(v)
	}
	if got := s.Sum(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Sum = %v, want 10", got)
	}
}

func TestHistogramPXXAccessors(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.P50(); got != 50*time.Millisecond {
		t.Fatalf("P50 = %v", got)
	}
	if got := h.P95(); got != 95*time.Millisecond {
		t.Fatalf("P95 = %v", got)
	}
	if got := h.P99(); got != 99*time.Millisecond {
		t.Fatalf("P99 = %v", got)
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram(0)
	h.Observe(500 * time.Nanosecond) // under
	h.Observe(3 * time.Microsecond)  // bucket [2µs,4µs)
	h.Observe(3 * time.Microsecond)
	h.Observe(10 * time.Microsecond) // bucket [8µs,16µs)
	bs := h.Cumulative()
	if len(bs) < 3 {
		t.Fatalf("got %d buckets: %+v", len(bs), bs)
	}
	// Counts must be monotonically non-decreasing and end at N.
	var prev int64 = -1
	for _, b := range bs {
		if b.Count < prev {
			t.Fatalf("cumulative counts not monotonic: %+v", bs)
		}
		prev = b.Count
	}
	if last := bs[len(bs)-1]; last.Count != h.N() {
		t.Fatalf("final bucket count %d != N %d", last.Count, h.N())
	}
	// Spot checks: everything <= 1µs is the under bucket; by 4µs three
	// observations are covered; by 16µs all four are.
	if bs[0].UpperBound != time.Microsecond || bs[0].Count != 1 {
		t.Fatalf("under bucket = %+v", bs[0])
	}
	at := func(ub time.Duration) int64 {
		for _, b := range bs {
			if b.UpperBound == ub {
				return b.Count
			}
		}
		t.Fatalf("no bucket with upper bound %v in %+v", ub, bs)
		return 0
	}
	if at(4*time.Microsecond) != 3 {
		t.Fatalf("<=4µs count = %d, want 3", at(4*time.Microsecond))
	}
	if at(16*time.Microsecond) != 4 {
		t.Fatalf("<=16µs count = %d, want 4", at(16*time.Microsecond))
	}
}
