// Package stats provides the small statistics toolkit used across the
// reproduction: streaming summaries and fixed-resolution latency histograms
// for protocol and scheduler measurements.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary accumulates count/mean/min/max/variance in a single pass
// (Welford's algorithm).
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// AddDuration records a duration in nanoseconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(float64(d.Nanoseconds())) }

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the running mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// Stddev returns the sample standard deviation (0 for n < 2).
func (s *Summary) Stddev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// MeanDuration returns the mean as a duration.
func (s *Summary) MeanDuration() time.Duration { return time.Duration(s.mean) }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g min=%.3g max=%.3g sd=%.3g",
		s.n, s.mean, s.min, s.max, s.Stddev())
}

// Histogram is a latency histogram over exponential duration buckets
// (1 µs, 2 µs, 4 µs, ... doubling), retaining exact values up to a cap for
// precise percentiles on the sizes this project measures.
type Histogram struct {
	Summary
	buckets []int64 // bucket i covers [1µs<<i, 1µs<<(i+1))
	under   int64   // < 1 µs
	exact   []float64
	capN    int
}

// NewHistogram returns a histogram retaining up to keepExact exact samples
// for percentile queries (0 means 4096).
func NewHistogram(keepExact int) *Histogram {
	if keepExact <= 0 {
		keepExact = 4096
	}
	return &Histogram{capN: keepExact}
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) {
	h.AddDuration(d)
	if len(h.exact) < h.capN {
		h.exact = append(h.exact, float64(d.Nanoseconds()))
	}
	if d < time.Microsecond {
		h.under++
		return
	}
	b := 0
	for v := d / time.Microsecond; v > 1; v >>= 1 {
		b++
	}
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b]++
}

// Percentile returns the p-th percentile (0 < p <= 100) from the retained
// exact samples; for populations beyond the retention cap it is an
// approximation over the first capN observations.
func (h *Histogram) Percentile(p float64) time.Duration {
	if len(h.exact) == 0 {
		return 0
	}
	sorted := append([]float64(nil), h.exact...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return time.Duration(sorted[idx])
}

// P50 returns the median retained observation.
func (h *Histogram) P50() time.Duration { return h.Percentile(50) }

// P95 returns the 95th-percentile retained observation.
func (h *Histogram) P95() time.Duration { return h.Percentile(95) }

// P99 returns the 99th-percentile retained observation.
func (h *Histogram) P99() time.Duration { return h.Percentile(99) }

// Bucket is one cumulative histogram bucket: how many observations were
// at most UpperBound. The final bucket of Cumulative always covers
// everything (its Count equals N), mirroring Prometheus's +Inf bucket.
type Bucket struct {
	UpperBound time.Duration
	Count      int64
}

// Cumulative returns the histogram's log-spaced bounds with cumulative
// counts, ready to render as a Prometheus histogram series.
func (h *Histogram) Cumulative() []Bucket {
	out := make([]Bucket, 0, len(h.buckets)+2)
	run := h.under
	out = append(out, Bucket{UpperBound: time.Microsecond, Count: run})
	for i, c := range h.buckets {
		run += c
		out = append(out, Bucket{UpperBound: time.Microsecond << (i + 1), Count: run})
	}
	// Observations above the top bucket's bound (none today: buckets grow
	// to fit) and the +Inf contract are covered by a final total bucket.
	out = append(out, Bucket{UpperBound: time.Duration(math.MaxInt64), Count: h.n})
	return out
}

// Render draws a textual histogram, one row per non-empty bucket.
func (h *Histogram) Render() string {
	var b strings.Builder
	var peak int64 = 1
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "%12s %6d\n", "<1µs", h.under)
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := time.Microsecond << i
		bar := strings.Repeat("#", int(c*40/peak))
		fmt.Fprintf(&b, "%12s %6d %s\n", lo.String(), c, bar)
	}
	return b.String()
}
