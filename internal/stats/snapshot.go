package stats

// SummaryState is a summary's checkpointable state.
type SummaryState struct {
	N        int64
	Mean, M2 float64
	Min, Max float64
}

// CaptureState records the summary's accumulator state.
func (s *Summary) CaptureState() SummaryState {
	return SummaryState{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max}
}

// RestoreState rewinds the summary onto a captured state.
func (s *Summary) RestoreState(st SummaryState) {
	s.n, s.mean, s.m2, s.min, s.max = st.N, st.Mean, st.M2, st.Min, st.Max
}

// HistogramState is a histogram's checkpointable state.
type HistogramState struct {
	Summary SummaryState
	Buckets []int64
	Under   int64
	Exact   []float64
	CapN    int
}

// CaptureState records the histogram's state.
func (h *Histogram) CaptureState() HistogramState {
	return HistogramState{
		Summary: h.Summary.CaptureState(),
		Buckets: append([]int64(nil), h.buckets...),
		Under:   h.under,
		Exact:   append([]float64(nil), h.exact...),
		CapN:    h.capN,
	}
}

// RestoreState rewinds the histogram onto a captured state.
func (h *Histogram) RestoreState(st HistogramState) {
	h.Summary.RestoreState(st.Summary)
	h.buckets = append(h.buckets[:0], st.Buckets...)
	h.under = st.Under
	h.exact = append(h.exact[:0], st.Exact...)
	h.capN = st.CapN
}
