package stats_test

import (
	"fmt"
	"time"

	"k2/internal/stats"
)

func ExampleHistogram() {
	h := stats.NewHistogram(0)
	for i := 1; i <= 10; i++ {
		h.Observe(time.Duration(i*10) * time.Microsecond)
	}
	fmt.Printf("n=%d mean=%v p50=%v p90=%v\n",
		h.N(), h.MeanDuration(), h.Percentile(50), h.Percentile(90))
	// Output:
	// n=10 mean=55µs p50=50µs p90=90µs
}
