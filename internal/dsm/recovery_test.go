package dsm

import (
	"testing"
	"time"

	"k2/internal/mem"
	"k2/internal/sim"
	"k2/internal/soc"
)

// With OwnerTimeout set, a fault against a crashed owner must complete by
// reclaiming ownership through the shared metadata instead of spinning
// forever on a reply that will never come.
func TestFaultRecoversFromCrashedOwner(t *testing.T) {
	prm := DefaultParams()
	prm.OwnerTimeout = 100 * time.Microsecond
	e, s, d := rig(prm)
	d.Share(7)
	s.Domains[soc.Strong].Crash() // owner dies before the fault

	var took time.Duration
	e.Spawn("shadow", func(p *sim.Proc) {
		start := p.Now()
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 7)
		took = p.Now().Sub(start)
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if took == 0 {
		t.Fatal("fault never completed against the crashed owner")
	}
	if took < prm.OwnerTimeout || took > 10*prm.OwnerTimeout {
		t.Fatalf("recovery took %v, want roughly one OwnerTimeout (%v)", took, prm.OwnerTimeout)
	}
	st := d.RequesterStats[soc.Weak]
	if st.Recoveries != 1 || st.Resends != 0 {
		t.Fatalf("recoveries=%d resends=%d, want 1/0", st.Recoveries, st.Resends)
	}
	if d.Owner(7) != soc.Weak || d.Level(soc.Strong, 7) != Invalid {
		t.Fatalf("after recovery: owner=%v strong=%v", d.Owner(7), d.Level(soc.Strong, 7))
	}
	checkInv(t, d)
}

// dropOneGet loses the first matching Get on the fabric; the owner stays
// alive, so the timed-out faulter must re-send rather than reclaim.
type dropOneGet struct {
	from, to soc.DomainID
	dropped  int
}

func (f *dropOneGet) FilterMail(from, to soc.DomainID, msg soc.Message, ack bool) soc.MailVerdict {
	if !ack && msg.Type() == soc.MsgGetExclusive && from == f.from && to == f.to && f.dropped == 0 {
		f.dropped++
		return soc.MailVerdict{Drop: true}
	}
	return soc.MailVerdict{}
}

func TestFaultResendsToLiveSilentOwner(t *testing.T) {
	prm := DefaultParams()
	prm.OwnerTimeout = 100 * time.Microsecond
	e, s, d := rig(prm)
	s.Mailbox.SetFilter(&dropOneGet{from: soc.Weak, to: soc.Strong})
	d.Share(3)

	done := false
	e.Spawn("shadow", func(p *sim.Proc) {
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 3)
		done = true
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("fault never completed after the Get was lost")
	}
	st := d.RequesterStats[soc.Weak]
	if st.Resends != 1 || st.Recoveries != 0 {
		t.Fatalf("resends=%d recoveries=%d, want 1/0 (owner was alive)", st.Resends, st.Recoveries)
	}
	if d.Owner(3) != soc.Weak {
		t.Fatalf("owner = %v after the resent fault", d.Owner(3))
	}
	checkInv(t, d)
}

// ReclaimDead must sweep every directory entry the dead kernel appears in:
// pages it owned pass to a waiting faulter when there is one, else to the
// heir, and its half-done faults are released.
func TestReclaimDeadSweepsDirectory(t *testing.T) {
	e, s, d := rigN(2, DefaultParams())
	w2 := soc.DomainID(2)
	for pfn := 1; pfn <= 3; pfn++ {
		d.Share(mem.PFN(pfn))
	}
	// Pages 1 and 2 end up owned by the weak kernel; page 3 stays with the
	// strong kernel.
	e.Spawn("weak", func(p *sim.Proc) {
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 1)
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 2)
	})
	e.At(sim.Time(10*time.Millisecond), func() { s.Domains[soc.Weak].Crash() })
	// weak2 faults on page 1 after the crash, with the paper's unbounded
	// spin: only the sweep can complete it.
	w2Done := false
	e.SpawnAt(sim.Time(11*time.Millisecond), "w2", func(p *sim.Proc) {
		d.Write(p, s.Core(w2, 0), w2, 1)
		w2Done = true
	})
	var swept int
	e.SpawnAt(sim.Time(20*time.Millisecond), "sweeper", func(p *sim.Proc) {
		s.Domains[soc.Strong].EnsureAwake(p)
		swept = d.ReclaimDead(p, s.Core(soc.Strong, 0), soc.Weak, soc.Strong)
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if swept != 2 || d.DeadReclaims != 2 {
		t.Fatalf("swept %d entries (stat %d), want 2", swept, d.DeadReclaims)
	}
	if !w2Done {
		t.Fatal("the waiting faulter was not released by the sweep")
	}
	// Page 1 went to the waiter, page 2 to the heir, page 3 untouched.
	if d.Owner(1) != w2 || d.Level(w2, 1) != Exclusive {
		t.Fatalf("page 1: owner=%v level=%v, want the waiting weak2", d.Owner(1), d.Level(w2, 1))
	}
	if d.Owner(2) != soc.Strong || d.Level(soc.Strong, 2) != Exclusive {
		t.Fatalf("page 2: owner=%v, want the heir", d.Owner(2))
	}
	if d.Owner(3) != soc.Strong {
		t.Fatalf("page 3: owner=%v, want untouched", d.Owner(3))
	}
	if d.Level(soc.Weak, 1) != Invalid || d.Level(soc.Weak, 2) != Invalid {
		t.Fatal("dead kernel still holds copies after the sweep")
	}
	checkInv(t, d)
}

// Under the three-state protocol a surviving read-sharer takes over
// servicing a dead owner's page instead of the heir.
func TestReclaimDeadPrefersSurvivingHolder(t *testing.T) {
	prm := DefaultParams()
	prm.ThreeState = true
	prm.ShadowReadDetect = 0
	e, s, d := rigN(2, prm)
	w2 := soc.DomainID(2)
	d.Share(5)
	e.Spawn("flow", func(p *sim.Proc) {
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 5) // weak owns exclusively
		d.Read(p, s.Core(w2, 0), w2, 5)              // weak2 reads alongside
	})
	e.At(sim.Time(10*time.Millisecond), func() { s.Domains[soc.Weak].Crash() })
	e.SpawnAt(sim.Time(11*time.Millisecond), "sweeper", func(p *sim.Proc) {
		s.Domains[soc.Strong].EnsureAwake(p)
		d.ReclaimDead(p, s.Core(soc.Strong, 0), soc.Weak, soc.Strong)
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if d.Owner(5) != w2 {
		t.Fatalf("owner = %v, want the surviving holder weak2", d.Owner(5))
	}
	if d.Level(soc.Weak, 5) != Invalid {
		t.Fatal("dead kernel still holds the page")
	}
	checkInv(t, d)
}
