package dsm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"k2/internal/mem"
)

func TestDirectoryShareAndInitialOwner(t *testing.T) {
	d := NewDirectory(3)
	d.Share(10, 0)
	if d.Level(0, 10) != Exclusive || d.Level(1, 10) != Invalid {
		t.Fatal("initial levels wrong")
	}
	if got := d.Holders(10); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("holders = %v", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryExclusiveInvalidatesAll(t *testing.T) {
	d := NewDirectory(4)
	d.Share(1, 0)
	// Spread read copies everywhere.
	for k := 1; k < 4; k++ {
		if inv, down := d.Acquire(k, 1, false); inv != nil {
			t.Fatalf("read acquire invalidated %v", inv)
		} else if k == 1 && !reflect.DeepEqual(down, []int{0}) {
			t.Fatalf("first read should downgrade owner, got %v", down)
		}
	}
	if len(d.Holders(1)) != 4 {
		t.Fatalf("holders = %v", d.Holders(1))
	}
	// A write from kernel 2 must invalidate the other three.
	inv, _ := d.Acquire(2, 1, true)
	if len(inv) != 3 {
		t.Fatalf("invalidated %v, want 3 peers", inv)
	}
	if d.Level(2, 1) != Exclusive {
		t.Fatal("writer not exclusive")
	}
	for _, k := range []int{0, 1, 3} {
		if d.Level(k, 1) != Invalid {
			t.Fatalf("kernel %d still valid after invalidation", k)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryRepeatAcquireIsFree(t *testing.T) {
	d := NewDirectory(2)
	d.Share(5, 1)
	if inv, down := d.Acquire(1, 5, true); inv != nil || down != nil {
		t.Fatal("owner re-acquire should be a no-op")
	}
	d.Acquire(0, 5, false)
	grants := d.Grants
	if inv, down := d.Acquire(0, 5, false); inv != nil || down != nil || d.Grants != grants {
		t.Fatal("shared re-acquire should be a no-op")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryEvict(t *testing.T) {
	d := NewDirectory(3)
	d.Share(7, 0)
	d.Acquire(1, 7, false)
	d.EvictAll(0) // kernel 0's domain suspends
	if d.Level(0, 7) != Invalid {
		t.Fatal("evict did not clear validity")
	}
	// Kernel 2 writes: only kernel 1 needs invalidation.
	inv, _ := d.Acquire(2, 7, true)
	if !reflect.DeepEqual(inv, []int{1}) {
		t.Fatalf("invalidate = %v, want [1]", inv)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary request sequences from N kernels preserve the
// generalized one-writer invariant, writers always end Exclusive, readers
// always end at least Shared, and invalidation lists are exactly the
// previously-valid peers on writes.
func TestQuickDirectoryInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%6 + 2
		d := NewDirectory(n)
		const npages = 5
		for p := mem.PFN(0); p < npages; p++ {
			d.Share(p, int(p)%n)
		}
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 300; op++ {
			k := rng.Intn(n)
			pfn := mem.PFN(rng.Intn(npages))
			excl := rng.Intn(2) == 0
			prevValid := map[int]bool{}
			for _, h := range d.Holders(pfn) {
				prevValid[h] = true
			}
			inv, down := d.Acquire(k, pfn, excl)
			if excl {
				if d.Level(k, pfn) != Exclusive {
					return false
				}
				for _, p := range inv {
					if p == k || !prevValid[p] {
						return false // invalidated a non-holder or self
					}
				}
			} else {
				if d.Level(k, pfn) == Invalid {
					return false
				}
				if inv != nil {
					return false // reads never invalidate
				}
				for _, p := range down {
					if d.Level(p, pfn) != Shared {
						return false
					}
				}
			}
			if rng.Intn(20) == 0 {
				d.EvictAll(rng.Intn(n))
			}
			if d.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
