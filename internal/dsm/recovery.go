package dsm

import (
	"sort"
	"time"

	"k2/internal/mem"
	"k2/internal/sim"
	"k2/internal/soc"
)

// This file is the DSM's half of the fault-recovery machinery (see
// internal/fault): bounded fault spins that reclaim ownership from crashed
// peers, and the directory sweep the watchdog runs when it declares a
// kernel dead.

// spinRecover waits for the fault's replies like spin, but re-examines the
// directory every OwnerTimeout: ownership held by a crashed domain is
// claimed through the shared protocol metadata (its caches are gone, like a
// suspended peer's), and live-but-silent targets get the Get re-sent in
// case the fabric lost it.
func (d *DSM) spinRecover(p *sim.Proc, core *soc.Core, k soc.DomainID, pfn mem.PFN, pf *pendingFault, wantShared bool) {
	st := &d.RequesterStats[k]
	for !pf.ev.Fired() {
		// If this kernel itself died mid-fault, freeze with it; the reboot
		// path re-faults from scratch (ReclaimDead cleared our pending).
		core.Domain.EnsureAwake(p)
		if pf.ev.Fired() {
			return
		}
		core.Domain.BeginSpin()
		p.SleepOrCancel(d.Params.OwnerTimeout, pf.ev)
		core.Domain.EndSpin()
		if pf.ev.Fired() {
			return
		}

		// Timed out. Re-derive who still blocks the fault from the
		// directory: holders that served already went Invalid, so the
		// remaining non-Invalid targets are exactly the silent ones.
		pg := d.page(pfn)
		var dead, alive []soc.DomainID
		for _, t := range pg.faultTargets(k, wantShared) {
			if t == k {
				continue
			}
			if d.SoC.Domains[t].Crashed() {
				dead = append(dead, t)
			} else {
				alive = append(alive, t)
			}
		}
		if len(dead) > 0 {
			// Metadata-only claim, same cost as the inactive-peer path.
			core.ExecFor(p, d.Params.LocalClaim)
			if pf.ev.Fired() {
				return // a straggler Put landed while we paid the claim
			}
			for _, t := range dead {
				if wantShared && pg.level[t] == Exclusive {
					pg.level[t] = Shared
				} else if !wantShared {
					pg.level[t] = Invalid
				}
				if d.Tracef != nil {
					d.Tracef("%v reclaimed page %d from crashed %v", k, pfn, t)
				}
			}
		}
		if len(alive) == 0 {
			// Nothing left to wait for: complete the fault ourselves.
			if wantShared {
				pg.level[k] = Shared
			} else {
				pg.level[k] = Exclusive
				pg.takeOwner(k)
			}
			pg.pending[k] = nil
			st.Recoveries++
			if d.Tracef != nil {
				d.Tracef("%v completed page %d fault locally after owner timeout", k, pfn)
			}
			pf.ev.Fire()
			return
		}
		// Some targets are live but silent; the fault keeps waiting on
		// them alone, and the request is repeated in case it was lost.
		pf.want = len(alive)
		payload := uint32(pfn)
		if wantShared {
			payload |= sharedFlag
		}
		for _, t := range alive {
			st.Resends++
			d.SoC.Mailbox.Send(p, core, t,
				soc.NewMessage(soc.MsgGetExclusive, payload, d.SoC.Mailbox.NextSeq()))
		}
	}
}

// ReclaimDead removes a dead kernel from every directory entry: its copies
// are invalidated, faults it left half-done are released, and pages it
// owned pass to a surviving kernel — a waiting faulter when there is one,
// else the heir (normally the strong kernel, which also absorbs the dead
// kernel's memory; see mem.Manager.ReclaimDead). The caller is charged one
// metadata claim per touched page. It returns how many pages changed hands.
func (d *DSM) ReclaimDead(p *sim.Proc, core *soc.Core, dead, heir soc.DomainID) int {
	pfns := make([]mem.PFN, 0, len(d.pages))
	for pfn := range d.pages {
		pfns = append(pfns, pfn)
	}
	sort.Slice(pfns, func(i, j int) bool { return pfns[i] < pfns[j] })

	touched := 0
	for _, pfn := range pfns {
		pg := d.pages[pfn]
		changed := false
		// Release the dead kernel's own outstanding fault: its faulters are
		// frozen with the domain, and on reboot they re-check and re-fault.
		if pf := pg.pending[dead]; pf != nil {
			pg.pending[dead] = nil
			pf.ev.Fire()
			changed = true
		}
		if pg.level[dead] != Invalid {
			pg.level[dead] = Invalid
			changed = true
		}
		if pg.owner == dead {
			changed = true
			if holders := pg.holders(); len(holders) > 0 {
				// Surviving copies exist (read sharing): the lowest holder
				// takes over servicing.
				pg.owner = holders[0]
			} else if !d.grantToWaiter(pg) {
				pg.owner = heir
				pg.level[heir] = Exclusive
			}
		}
		if pg.probOwner != nil {
			// Repair hints through the crashed kernel: any chain routed at
			// or through it re-homes to the (post-repair) directory owner,
			// and the owner's own hint is restored to itself so every chain
			// terminates.
			for j, h := range pg.probOwner {
				if h == dead && soc.DomainID(j) != dead {
					pg.probOwner[j] = pg.owner
					changed = true
				}
			}
			if pg.probOwner[dead] != pg.owner {
				pg.probOwner[dead] = pg.owner
				changed = true
			}
			pg.probOwner[pg.owner] = pg.owner
		}
		if changed {
			touched++
			if d.Tracef != nil {
				d.Tracef("directory reclaimed page %d from dead %v (owner now %v)",
					pfn, dead, pg.owner)
			}
		}
	}
	d.DeadReclaims += touched
	if touched > 0 {
		core.ExecFor(p, time.Duration(touched)*d.Params.LocalClaim)
	}
	return touched
}

// grantToWaiter completes the lowest waiting kernel's pending fault on an
// orphaned page (no surviving holders), reporting whether one was granted.
func (d *DSM) grantToWaiter(pg *page) bool {
	for j := range pg.pending {
		pf := pg.pending[j]
		if pf == nil {
			continue
		}
		pg.level[j] = Exclusive
		pg.takeOwner(soc.DomainID(j))
		pg.pending[j] = nil
		pf.ev.Fire()
		return true
	}
	return false
}
