package dsm

import (
	"fmt"

	"k2/internal/mem"
)

// Directory generalizes the DSM's per-page metadata to N coherence domains,
// the extension §11 sketches: "For N domains (N being moderate), K2 can be
// extended without structural changes: the DSM will track page ownership
// among N domains". The directory is the serialization point — in a real
// N-domain K2 its entries live in shared memory, updated under a hardware
// spinlock, exactly like the two-domain protocol bits (§6.3).
//
// Acquire applies a request and reports which peers must be invalidated or
// downgraded; the caller performs (and charges) the corresponding messaging
// before touching the page. The two-domain DSM in this package is the
// N=2 specialization with its messaging already wired to the mailboxes.
type Directory struct {
	n     int
	pages map[mem.PFN][]Level

	// Stats.
	Grants, Invalidations, Downgrades int
}

// NewDirectory returns a directory for n kernels.
func NewDirectory(n int) *Directory {
	if n < 2 {
		panic("dsm: directory needs at least 2 kernels")
	}
	return &Directory{n: n, pages: make(map[mem.PFN][]Level)}
}

// Kernels returns the number of kernels tracked.
func (d *Directory) Kernels() int { return d.n }

// Share registers a page with an initial exclusive owner.
func (d *Directory) Share(pfn mem.PFN, owner int) {
	if _, dup := d.pages[pfn]; dup {
		return
	}
	lv := make([]Level, d.n)
	lv[owner] = Exclusive
	d.pages[pfn] = lv
}

// Level returns kernel k's level for pfn.
func (d *Directory) Level(k int, pfn mem.PFN) Level {
	lv, ok := d.pages[pfn]
	if !ok {
		return Invalid
	}
	return lv[k]
}

// Holders returns the kernels with any validity for pfn.
func (d *Directory) Holders(pfn mem.PFN) []int {
	var out []int
	for k, l := range d.pages[pfn] {
		if l != Invalid {
			out = append(out, k)
		}
	}
	return out
}

// Acquire grants kernel k access to pfn (exclusive for writes, shared for
// reads) and returns the peers that must be invalidated and the peers that
// must be downgraded from Exclusive to Shared. The caller sends the
// corresponding coherence messages (or skips them for inactive domains with
// clean caches, per the local-claim rule).
func (d *Directory) Acquire(k int, pfn mem.PFN, excl bool) (invalidate, downgrade []int) {
	lv, ok := d.pages[pfn]
	if !ok {
		panic(fmt.Sprintf("dsm: directory acquire of unshared page %d", pfn))
	}
	if excl {
		if lv[k] == Exclusive {
			return nil, nil
		}
		for p, l := range lv {
			if p != k && l != Invalid {
				invalidate = append(invalidate, p)
				d.Invalidations++
				lv[p] = Invalid
			}
		}
		lv[k] = Exclusive
		d.Grants++
		return invalidate, nil
	}
	if lv[k] != Invalid {
		return nil, nil
	}
	for p, l := range lv {
		if p != k && l == Exclusive {
			downgrade = append(downgrade, p)
			d.Downgrades++
			lv[p] = Shared
		}
	}
	lv[k] = Shared
	d.Grants++
	return nil, downgrade
}

// Evict drops kernel k's validity for pfn (e.g. its domain suspends with
// clean caches); if it held Exclusive, ownership falls to the directory
// until the next Acquire.
func (d *Directory) Evict(k int, pfn mem.PFN) {
	if lv, ok := d.pages[pfn]; ok {
		lv[k] = Invalid
	}
}

// EvictAll drops kernel k's validity for every page (domain suspend).
func (d *Directory) EvictAll(k int) {
	for _, lv := range d.pages {
		lv[k] = Invalid
	}
}

// Pages returns how many pages the directory tracks.
func (d *Directory) Pages() int { return len(d.pages) }

// CheckInvariants verifies, for every page: at most one Exclusive holder,
// and an Exclusive holder excludes every other validity (the one-writer
// invariant generalized to N kernels).
func (d *Directory) CheckInvariants() error {
	for pfn, lv := range d.pages {
		excl, valid := 0, 0
		for _, l := range lv {
			switch l {
			case Exclusive:
				excl++
				valid++
			case Shared:
				valid++
			}
		}
		if excl > 1 {
			return fmt.Errorf("dsm: page %d has %d exclusive holders", pfn, excl)
		}
		if excl == 1 && valid > 1 {
			return fmt.Errorf("dsm: page %d exclusive alongside shared copies", pfn)
		}
	}
	return nil
}
