package dsm

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"k2/internal/mem"
	"k2/internal/sim"
	"k2/internal/soc"
)

// checkInv fails the test if the protocol metadata invariants do not hold;
// every test ends with it so no scenario leaves the directory corrupt.
func checkInv(t *testing.T, d *DSM) {
	t.Helper()
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// rig wires a DSM with per-kernel mailbox dispatchers, as the OS does.
func rig(params Params) (*sim.Engine, *soc.SoC, *DSM) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	d := New(s, params)
	for id := range s.Domains {
		k := soc.DomainID(id)
		core := d.ServiceCore[k]
		e.Spawn("dispatch-"+k.String(), func(p *sim.Proc) {
			for {
				msg, from := s.Mailbox.RecvFrom(p, k)
				d.HandleMessage(p, core, k, from, msg)
			}
		})
	}
	e.Spawn("dsm-drainer", d.RunMainDrainer)
	return e, s, d
}

func TestShareInitialOwnership(t *testing.T) {
	_, _, d := rig(DefaultParams())
	d.Share(100)
	if d.Level(soc.Strong, 100) != Exclusive {
		t.Fatal("main must own fresh shared pages")
	}
	if d.Level(soc.Weak, 100) != Invalid {
		t.Fatal("shadow must start invalid")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessByOwnerIsFree(t *testing.T) {
	e, s, d := rig(DefaultParams())
	d.Share(7)
	var dur time.Duration
	e.Spawn("main", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 100; i++ {
			d.Write(p, s.Core(soc.Strong, 0), soc.Strong, 7)
		}
		dur = p.Now().Sub(start)
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if dur != 0 {
		t.Fatalf("owner accesses took %v, want 0 (MMU mapping effective)", dur)
	}
	if d.RequesterStats[soc.Strong].Faults != 0 {
		t.Fatal("owner access faulted")
	}
	checkInv(t, d)
}

func TestFaultTransfersOwnership(t *testing.T) {
	e, s, d := rig(DefaultParams())
	d.Share(7)
	e.Spawn("shadow", func(p *sim.Proc) {
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 7)
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if d.Level(soc.Weak, 7) != Exclusive || d.Level(soc.Strong, 7) != Invalid {
		t.Fatalf("levels after fault: main=%v shadow=%v",
			d.Level(soc.Strong, 7), d.Level(soc.Weak, 7))
	}
	if d.RequesterStats[soc.Weak].Faults != 1 {
		t.Fatalf("faults = %d, want 1", d.RequesterStats[soc.Weak].Faults)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Table 5 check: fault latency ~52 µs when main is the sender, ~48 µs when
// shadow is the sender (unloaded system).
func TestTable5FaultLatency(t *testing.T) {
	e, s, d := rig(DefaultParams())
	d.Share(7)
	var shadowUS, mainUS float64
	e.Spawn("ping-pong", func(p *sim.Proc) {
		// Shadow sender (page owned by main).
		start := p.Now()
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 7)
		shadowUS = float64(p.Now().Sub(start).Microseconds())
		// Main sender (page now owned by shadow).
		start = p.Now()
		d.Write(p, s.Core(soc.Strong, 0), soc.Strong, 7)
		mainUS = float64(p.Now().Sub(start).Microseconds())
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if mainUS < 42 || mainUS > 62 {
		t.Errorf("main-sender fault = %.1f µs, want ~52", mainUS)
	}
	if shadowUS < 38 || shadowUS > 58 {
		t.Errorf("shadow-sender fault = %.1f µs, want ~48", shadowUS)
	}
	checkInv(t, d)
}

func TestMainDefersUnderLoad(t *testing.T) {
	e, s, d := rig(DefaultParams())
	d.Share(7)
	// Keep the strong domain busy with short gaps (a CPU-bound benchmark):
	// 20 µs busy, 80 µs idle, forever — idle streaks stay below the
	// threshold, so the shadow's fault must wait for the forced flush.
	e.Spawn("main-load", func(p *sim.Proc) {
		for {
			s.Core(soc.Strong, 0).Exec(p, soc.Work(20*time.Microsecond))
			p.Sleep(80 * time.Microsecond)
		}
	})
	var waited time.Duration
	doneAt := sim.Time(-1)
	e.Spawn("shadow", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // let the load pattern establish
		start := p.Now()
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 7)
		waited = p.Now().Sub(start)
		doneAt = p.Now()
	})
	if err := e.Run(sim.Time(500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if doneAt < 0 {
		t.Fatal("shadow fault never completed")
	}
	prm := DefaultParams()
	if waited < prm.MainBHPeriod/2 {
		t.Fatalf("shadow fault waited only %v; expected bottom-half deferral (~%v)",
			waited, prm.MainBHPeriod)
	}
	if d.RequesterStats[soc.Weak].DeferWait == 0 {
		t.Fatal("defer wait not recorded")
	}
	checkInv(t, d)
}

func TestMainServedPromptlyWhenIdle(t *testing.T) {
	e, s, d := rig(DefaultParams())
	d.Share(7)
	var waited time.Duration
	e.Spawn("shadow", func(p *sim.Proc) {
		// Strong domain fully idle: drainer should serve at the idle
		// threshold, not the BH period.
		p.Sleep(2 * time.Millisecond)
		start := p.Now()
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 7)
		waited = p.Now().Sub(start)
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if waited > 2*time.Millisecond {
		t.Fatalf("idle-system shadow fault took %v, want well under the BH period", waited)
	}
	checkInv(t, d)
}

func TestPingPongManyPages(t *testing.T) {
	e, s, d := rig(DefaultParams())
	for i := mem.PFN(0); i < 8; i++ {
		d.Share(i)
	}
	rounds := 0
	e.Spawn("shadow", func(p *sim.Proc) {
		for r := 0; r < 5; r++ {
			for i := mem.PFN(0); i < 8; i++ {
				d.Write(p, s.Core(soc.Weak, 0), soc.Weak, i)
			}
			rounds++
			p.Sleep(time.Millisecond)
		}
	})
	e.Spawn("main", func(p *sim.Proc) {
		for r := 0; r < 5; r++ {
			p.Sleep(1500 * time.Microsecond)
			for i := mem.PFN(0); i < 8; i++ {
				d.Write(p, s.Core(soc.Strong, 0), soc.Strong, i)
			}
		}
	})
	if err := e.Run(sim.Time(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if rounds != 5 {
		t.Fatalf("rounds = %d", rounds)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentFaultersSamePageSameKernel(t *testing.T) {
	e, s, d := rig(DefaultParams())
	d.Share(3)
	done := 0
	for i := 0; i < 3; i++ {
		e.Spawn("shadow-thread", func(p *sim.Proc) {
			d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 3)
			done++
		})
	}
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
	// All three shared one fault.
	if f := d.RequesterStats[soc.Weak].Faults; f != 1 {
		t.Fatalf("faults = %d, want 1 (shared pending)", f)
	}
	checkInv(t, d)
}

func TestThreeStateReadSharing(t *testing.T) {
	prm := DefaultParams()
	prm.ThreeState = true
	prm.ShadowReadDetect = 0 // hypothetical platform with a capable MMU
	e, s, d := rig(prm)
	d.Share(9)
	e.Spawn("flow", func(p *sim.Proc) {
		// Shadow reads: both should end up Shared.
		d.Read(p, s.Core(soc.Weak, 0), soc.Weak, 9)
		if d.Level(soc.Strong, 9) != Shared || d.Level(soc.Weak, 9) != Shared {
			t.Errorf("after read: main=%v shadow=%v", d.Level(soc.Strong, 9), d.Level(soc.Weak, 9))
		}
		// Subsequent reads from both sides are free.
		f := d.RequesterStats[soc.Strong].Faults
		d.Read(p, s.Core(soc.Strong, 0), soc.Strong, 9)
		if d.RequesterStats[soc.Strong].Faults != f {
			t.Error("read of Shared page faulted")
		}
		// A write upgrades to Exclusive and invalidates the peer.
		d.Write(p, s.Core(soc.Strong, 0), soc.Strong, 9)
		if d.Level(soc.Strong, 9) != Exclusive || d.Level(soc.Weak, 9) != Invalid {
			t.Errorf("after write: main=%v shadow=%v", d.Level(soc.Strong, 9), d.Level(soc.Weak, 9))
		}
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoStateReadStillFaults(t *testing.T) {
	e, s, d := rig(DefaultParams())
	d.Share(9)
	e.Spawn("shadow", func(p *sim.Proc) {
		d.Read(p, s.Core(soc.Weak, 0), soc.Weak, 9)
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	// Two-state: a read takes exclusive ownership (no read-only sharing,
	// the OMAP4 M3 MMU limitation).
	if d.Level(soc.Weak, 9) != Exclusive || d.Level(soc.Strong, 9) != Invalid {
		t.Fatalf("two-state read: main=%v shadow=%v", d.Level(soc.Strong, 9), d.Level(soc.Weak, 9))
	}
	checkInv(t, d)
}

// Property: random access sequences from both kernels preserve the
// one-writer invariant and always terminate.
func TestQuickOneWriterInvariant(t *testing.T) {
	f := func(seed int64, threeState bool) bool {
		prm := DefaultParams()
		prm.ThreeState = threeState
		prm.MainBHPeriod = 2 * time.Millisecond // keep runs fast
		e, s, d := rig(prm)
		rng := rand.New(rand.NewSource(seed))
		const npages = 4
		for i := mem.PFN(0); i < npages; i++ {
			d.Share(i)
		}
		ok := true
		worker := func(k soc.DomainID, core *soc.Core) func(*sim.Proc) {
			return func(p *sim.Proc) {
				for i := 0; i < 25; i++ {
					pfn := mem.PFN(rng.Intn(npages))
					write := rng.Intn(2) == 0
					d.Access(p, core, k, pfn, write)
					lv := d.Level(k, pfn)
					if write && lv != Exclusive {
						ok = false
					}
					if d.CheckInvariants() != nil {
						ok = false
					}
					p.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
			}
		}
		e.Spawn("main-w", worker(soc.Strong, s.Core(soc.Strong, 0)))
		e.Spawn("shadow-w", worker(soc.Weak, s.Core(soc.Weak, 0)))
		if err := e.Run(sim.Time(time.Minute)); err != nil {
			return false
		}
		return ok && d.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageEncodingPreservesPFNAndFlag(t *testing.T) {
	// Pages fit in 18 bits (1 GB / 4 KB = 2^18); bit 19 carries the shared
	// flag; both must round-trip through the 20-bit payload.
	m := soc.NewMessage(soc.MsgGetExclusive, uint32(262143)|sharedFlag, 5)
	if m.Payload()&^uint32(sharedFlag) != 262143 {
		t.Fatal("pfn mangled")
	}
	if m.Payload()&sharedFlag == 0 {
		t.Fatal("shared flag lost")
	}
}
