package dsm

import (
	"testing"
	"time"

	"k2/internal/mem"
	"k2/internal/sim"
	"k2/internal/soc"
)

func TestDeferredRequestsDrainInBatch(t *testing.T) {
	e, s, d := rig(DefaultParams())
	for i := mem.PFN(0); i < 4; i++ {
		d.Share(i)
	}
	// Sustained short-gap load on the strong domain keeps its idle streak
	// below the threshold.
	e.Spawn("main-load", func(p *sim.Proc) {
		for {
			s.Core(soc.Strong, 0).Exec(p, soc.Work(20*time.Microsecond))
			p.Sleep(80 * time.Microsecond)
		}
	})
	// Four shadow threads fault on different pages; all defer, and one BH
	// flush must serve the whole batch.
	var doneAt []sim.Time
	for i := mem.PFN(0); i < 4; i++ {
		i := i
		e.SpawnAt(sim.Time(time.Millisecond), "shadow", func(p *sim.Proc) {
			d.Write(p, s.Core(soc.Weak, 0), soc.Weak, i)
			doneAt = append(doneAt, p.Now())
		})
	}
	if err := e.Run(sim.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(doneAt) != 4 {
		t.Fatalf("only %d faults completed", len(doneAt))
	}
	// All four completed within one small window (single flush), not four
	// separate BH periods apart.
	span := doneAt[len(doneAt)-1].Sub(doneAt[0])
	if span > 5*time.Millisecond {
		t.Fatalf("batch spread over %v; expected a single bottom-half flush", span)
	}
	checkInv(t, d)
}

func TestClaimsCountedSeparately(t *testing.T) {
	e, s, d := rig(DefaultParams())
	d.Share(1)
	// Let the strong domain go inactive, then fault from the shadow: the
	// fast path must be used and counted.
	e.SpawnAt(sim.Time(30*time.Second), "shadow", func(p *sim.Proc) {
		s.Domains[soc.Weak].EnsureAwake(p)
		start := p.Now()
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 1)
		if d := p.Now().Sub(start); d > 100*time.Microsecond {
			t.Errorf("claim took %v, want microseconds (no mailbox)", d)
		}
	})
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	st := d.RequesterStats[soc.Weak]
	if st.Faults != 1 || st.Claims != 1 {
		t.Fatalf("faults=%d claims=%d, want 1/1", st.Faults, st.Claims)
	}
	if s.Domains[soc.Strong].WakeCount() != 0 {
		t.Fatal("claim woke the strong domain")
	}
	checkInv(t, d)
}

func TestDisableInactiveClaimForcesMailbox(t *testing.T) {
	prm := DefaultParams()
	prm.DisableInactiveClaim = true
	e, s, d := rig(prm)
	d.Share(1)
	e.SpawnAt(sim.Time(30*time.Second), "shadow", func(p *sim.Proc) {
		s.Domains[soc.Weak].EnsureAwake(p)
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 1)
	})
	if err := e.Run(sim.Time(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	st := d.RequesterStats[soc.Weak]
	if st.Claims != 0 {
		t.Fatal("claim path used despite being disabled")
	}
	if st.Faults != 1 {
		t.Fatalf("faults = %d", st.Faults)
	}
	if s.Domains[soc.Strong].WakeCount() == 0 {
		t.Fatal("mailbox fault should have woken the strong domain")
	}
	checkInv(t, d)
}

func TestFaultHistogramPopulated(t *testing.T) {
	e, s, d := rig(DefaultParams())
	d.Share(1)
	e.Spawn("shadow", func(p *sim.Proc) {
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 1)
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	h := d.FaultHist[soc.Weak]
	if h.N() != 1 {
		t.Fatalf("histogram n = %d", h.N())
	}
	p50 := h.Percentile(50)
	if p50 < 30*time.Microsecond || p50 > 80*time.Microsecond {
		t.Fatalf("p50 = %v, want ~44µs", p50)
	}
	checkInv(t, d)
}
