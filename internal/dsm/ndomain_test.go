package dsm

import (
	"testing"
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
)

// rigN is rig on a topology with the given number of weak domains.
func rigN(weak int, params Params) (*sim.Engine, *soc.SoC, *DSM) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig().WithWeakDomains(weak))
	d := New(s, params)
	for id := range s.Domains {
		k := soc.DomainID(id)
		core := d.ServiceCore[k]
		e.Spawn("dispatch-"+k.String(), func(p *sim.Proc) {
			for {
				msg, from := s.Mailbox.RecvFrom(p, k)
				d.HandleMessage(p, core, k, from, msg)
			}
		})
	}
	e.Spawn("dsm-drainer", d.RunMainDrainer)
	return e, s, d
}

// A page must migrate strong -> weak -> weak2 -> strong, with the directory
// tracking the owner and exactly one holder at every step.
func TestPageMigratesAcrossThreeKernels(t *testing.T) {
	e, s, d := rigN(2, DefaultParams())
	w2 := soc.DomainID(2)
	d.Share(7)
	hops := []soc.DomainID{soc.Weak, w2, soc.Strong, w2}
	e.Spawn("walker", func(p *sim.Proc) {
		for _, k := range hops {
			d.Write(p, s.Core(k, 0), k, 7)
			if d.Owner(7) != k {
				t.Errorf("after write from %v: owner = %v", k, d.Owner(7))
			}
			if h := d.Holders(7); len(h) != 1 || h[0] != k {
				t.Errorf("after write from %v: holders = %v", k, h)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Error(err)
			}
		}
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	for _, k := range hops[:3] {
		if d.RequesterStats[k].Faults == 0 {
			t.Errorf("%v recorded no faults", k)
		}
	}
}

// Under the three-state protocol a write must invalidate every read-sharing
// kernel, not just one: the writer's fault completes only after a Put from
// each holder.
func TestThreeStateInvalidatesAllHolders(t *testing.T) {
	prm := DefaultParams()
	prm.ThreeState = true
	prm.ShadowReadDetect = 0
	e, s, d := rigN(2, prm)
	w2 := soc.DomainID(2)
	d.Share(9)
	e.Spawn("flow", func(p *sim.Proc) {
		d.Read(p, s.Core(soc.Weak, 0), soc.Weak, 9)
		d.Read(p, s.Core(w2, 0), w2, 9)
		if h := d.Holders(9); len(h) != 3 {
			t.Errorf("holders after reads = %v, want all three kernels", h)
		}
		d.Write(p, s.Core(w2, 0), w2, 9)
		for _, k := range []soc.DomainID{soc.Strong, soc.Weak} {
			if d.Level(k, 9) != Invalid {
				t.Errorf("%v still holds the page after remote write", k)
			}
		}
		if d.Level(w2, 9) != Exclusive || d.Owner(9) != w2 {
			t.Errorf("writer level=%v owner=%v", d.Level(w2, 9), d.Owner(9))
		}
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The inactive-peer fast path must apply to any inactive owner, not just the
// original two-domain pair: a page owned by a sleeping weak2 is claimed
// locally with no mailbox traffic.
func TestClaimFromAnyInactiveOwner(t *testing.T) {
	e, s, d := rigN(2, DefaultParams())
	w2 := soc.DomainID(2)
	d.Share(7)
	e.Spawn("weak2", func(p *sim.Proc) {
		d.Write(p, s.Core(w2, 0), w2, 7)
	})
	if err := e.Run(sim.Time(time.Minute)); err != nil { // weak2 goes inactive
		t.Fatal(err)
	}
	if s.Domains[w2].State() != soc.DomInactive {
		t.Fatalf("weak2 state = %v, want inactive", s.Domains[w2].State())
	}
	mailBefore := s.Mailbox.SentBetween(soc.Strong, w2)
	wakesBefore := s.Domains[w2].WakeCount()
	e.Spawn("strong", func(p *sim.Proc) {
		s.Domains[soc.Strong].EnsureAwake(p)
		d.Write(p, s.Core(soc.Strong, 0), soc.Strong, 7)
	})
	if err := e.Run(sim.Time(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if d.RequesterStats[soc.Strong].Claims != 1 {
		t.Fatalf("claims = %d, want 1", d.RequesterStats[soc.Strong].Claims)
	}
	if got := s.Mailbox.SentBetween(soc.Strong, w2); got != mailBefore {
		t.Fatalf("claim sent %d mailbox messages", got-mailBefore)
	}
	if got := s.Domains[w2].WakeCount(); got != wakesBefore {
		t.Fatalf("weak2 woke %d times; the claim must not wake the sleeping owner",
			got-wakesBefore)
	}
	if d.Owner(7) != soc.Strong || d.Level(w2, 7) != Invalid {
		t.Fatalf("after claim: owner=%v weak2=%v", d.Owner(7), d.Level(w2, 7))
	}
	checkInv(t, d)
}
