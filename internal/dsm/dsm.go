// Package dsm implements K2's software distributed shared memory (§6.3),
// which transparently keeps the state of shadowed OS services coherent
// between the kernels.
//
// The DSM implements sequential consistency with a page-based granularity
// (4 KB) and the paper's simple two-state protocol: each kernel tracks each
// shared page as Valid or Invalid, maintaining the one-writer invariant.
// Before accessing an Invalid page, a kernel sends GetExclusive through the
// hardware mailbox; the owning kernel flushes and invalidates the page and
// replies with PutExclusive. Fault handling spins (it may run in interrupt
// context and cannot sleep), and the communication priorities favor the
// strong domain: the main kernel services GetExclusive in bottom halves and
// defers further under load, while the shadow kernel services requests
// before any other pending interrupt.
//
// A three-state protocol with read-only sharing (§6.3, "An alternative
// design") is included for the ablation experiment; on OMAP4 it is
// penalized by the Cortex-M3's cascaded MMU, modelled as an extra read
// detection cost on the shadow kernel.
package dsm

import (
	"fmt"
	"time"

	"k2/internal/mem"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/stats"
)

// Level is a kernel's access level for one shared page.
type Level int

const (
	// Invalid: the kernel must fault before accessing the page.
	Invalid Level = iota
	// Shared: read-only copy (three-state protocol only).
	Shared
	// Exclusive: the kernel may read and write the page.
	Exclusive
)

func (l Level) String() string {
	switch l {
	case Invalid:
		return "invalid"
	case Shared:
		return "shared"
	default:
		return "exclusive"
	}
}

// Params carries the protocol's calibrated costs. The per-phase values come
// from Table 5 (µs): the breakdown of a DSM page fault by sender side.
type Params struct {
	// LocalFault is the page-fault entry cost on the requesting core
	// (main 3 µs, shadow 17 µs).
	LocalFault [2]time.Duration
	// Protocol is the protocol execution cost on the requesting core
	// (main 2 µs, shadow 13 µs).
	Protocol [2]time.Duration
	// Servicing is the request-servicing cost on the owning core: flush
	// and invalidate the page, then acknowledge (by main 7 µs, by shadow
	// 24 µs).
	Servicing [2]time.Duration
	// Exit is the fault-exit plus first-cache-miss cost on the requesting
	// core (main 18 µs, shadow 2 µs).
	Exit [2]time.Duration

	// MainIdleThreshold and MainBHPeriod implement the asymmetric
	// priority: the main kernel services GetExclusive only once its domain
	// has been idle this long, or at the forced bottom-half flush under
	// sustained load (§6.3; this produces Table 6's starvation of the
	// shadow kernel for CPU-bound workloads).
	MainIdleThreshold time.Duration
	MainBHPeriod      time.Duration
	// DrainPoll is how often the main drainer re-checks idleness while
	// requests are deferred.
	DrainPoll time.Duration

	// DisableInactiveClaim turns the inactive-peer fast path off, forcing
	// every fault through the mailbox (and thus waking the peer domain).
	// Exists for the ablation that shows the claim path is load-bearing
	// for §9.2's energy results.
	DisableInactiveClaim bool
	// LocalClaim is the cost of taking ownership from an inactive peer
	// domain: its caches were flushed on suspend, so the fault handler
	// updates the shared protocol metadata under a hardware spinlock
	// without any mailbox traffic — and, crucially, without waking the
	// peer, preserving §7's rule that shared activity never wakes the
	// strong domain. Without this path every light-task episode would
	// wake the strong domain through the mailbox and the energy benefits
	// of §9.2 would be unreachable.
	LocalClaim time.Duration

	// ThreeState enables read-only sharing. ShadowReadDetect is the extra
	// per-read-fault cost on the shadow kernel from driving its first-level
	// MMU for read detection, and ShadowReadThrash the per-read tax from
	// the resulting pressure on its ten-entry software-loaded TLB ("severe
	// thrashing", §6.3). Both are zero on a hypothetical platform with a
	// capable weak-domain MMU.
	ThreeState       bool
	ShadowReadDetect time.Duration
	ShadowReadThrash time.Duration
}

// DefaultParams returns the Table 5 calibration.
func DefaultParams() Params {
	return Params{
		LocalFault:        [2]time.Duration{3 * time.Microsecond, 17 * time.Microsecond},
		Protocol:          [2]time.Duration{2 * time.Microsecond, 13 * time.Microsecond},
		Servicing:         [2]time.Duration{7 * time.Microsecond, 24 * time.Microsecond},
		Exit:              [2]time.Duration{18 * time.Microsecond, 2 * time.Microsecond},
		MainIdleThreshold: 300 * time.Microsecond,
		MainBHPeriod:      25 * time.Millisecond,
		DrainPoll:         100 * time.Microsecond,
		LocalClaim:        2 * time.Microsecond,
		ThreeState:        false,
		ShadowReadDetect:  120 * time.Microsecond,
	}
}

// sharedFlag marks a GetExclusive as a read (shared) request in the
// three-state protocol; pages fit in 18 bits, leaving payload bit 19 free.
const sharedFlag = 1 << 19

type page struct {
	level   [2]Level
	pending [2]*sim.Event // outstanding fault per kernel
}

// Stats aggregates fault costs observed by one kernel as requester.
type Stats struct {
	Faults int
	// Claims counts faults resolved through the inactive-peer fast path
	// (no mailbox round trip).
	Claims    int
	Local     time.Duration
	Protocol  time.Duration
	Comm      time.Duration
	Servicing time.Duration
	Exit      time.Duration
	Total     time.Duration
	DeferWait time.Duration // portion of Comm spent in the main BH queue
}

// Mean returns the average per-fault duration of total.
func (s Stats) Mean() time.Duration {
	if s.Faults == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Faults)
}

// DSM is the coherence manager. One instance serves both kernels (its state
// stands for the per-kernel protocol metadata, three bits per page).
type DSM struct {
	SoC    *soc.SoC
	Params Params

	// Core used for servicing requests on each kernel.
	ServiceCore [2]*soc.Core
	// OnFirstShare, if set, is called when a page is first registered,
	// letting the OS demote its large-grain mapping (§6.3).
	OnFirstShare func(p mem.PFN)
	// Tracef, if set, receives protocol trace lines (faults, claims,
	// servicing); the OS wires it to the kernel tracer.
	Tracef func(format string, args ...interface{})

	pages map[mem.PFN]*page

	deferred  []deferredReq
	drainGate *sim.Gate

	// RequesterStats is indexed by the faulting kernel.
	RequesterStats [2]Stats
	// FaultHist records full-fault latencies per requesting kernel.
	FaultHist [2]*stats.Histogram
}

type deferredReq struct {
	pfn    mem.PFN
	from   soc.DomainID
	shared bool
	seq    uint32
	at     sim.Time
}

// New returns a DSM over the SoC; service cores default to the last strong
// core and the weak core.
func New(s *soc.SoC, params Params) *DSM {
	d := &DSM{
		SoC:    s,
		Params: params,
		pages:  make(map[mem.PFN]*page),
	}
	d.ServiceCore[soc.Strong] = s.Core(soc.Strong, s.Cfg.StrongCores-1)
	d.ServiceCore[soc.Weak] = s.Core(soc.Weak, 0)
	d.drainGate = sim.NewGate(s.Eng)
	d.FaultHist[soc.Strong] = stats.NewHistogram(0)
	d.FaultHist[soc.Weak] = stats.NewHistogram(0)
	return d
}

// Share registers a page with the DSM; the main kernel starts as its owner.
func (d *DSM) Share(pfn mem.PFN) {
	if _, dup := d.pages[pfn]; dup {
		return
	}
	pg := &page{}
	pg.level[soc.Strong] = Exclusive
	pg.level[soc.Weak] = Invalid
	d.pages[pfn] = pg
	if d.OnFirstShare != nil {
		d.OnFirstShare(pfn)
	}
}

// SharedPages returns how many pages the DSM manages.
func (d *DSM) SharedPages() int { return len(d.pages) }

// Level returns kernel k's current level for pfn.
func (d *DSM) Level(k soc.DomainID, pfn mem.PFN) Level {
	pg, ok := d.pages[pfn]
	if !ok {
		return Invalid
	}
	return pg.level[k]
}

func (d *DSM) page(pfn mem.PFN) *page {
	pg, ok := d.pages[pfn]
	if !ok {
		panic(fmt.Sprintf("dsm: access to unshared page %d", pfn))
	}
	return pg
}

// Access performs a read or write of a shared page from kernel k executing
// on core. If the kernel's copy is valid for the access, it costs nothing
// (the MMU mapping is effective); otherwise the calling proc takes a DSM
// page fault, spinning until ownership arrives.
func (d *DSM) Access(p *sim.Proc, core *soc.Core, k soc.DomainID, pfn mem.PFN, write bool) {
	if d.Params.ThreeState && k == soc.Weak && !write && d.Params.ShadowReadThrash > 0 {
		// Read detection through the M3's first-level MMU taxes every
		// read with TLB thrashing (§6.3).
		core.ExecFor(p, d.Params.ShadowReadThrash)
	}
	for {
		pg := d.page(pfn)
		lv := pg.level[k]
		if lv == Exclusive || (!write && lv == Shared) {
			return
		}
		d.fault(p, core, k, pfn, write)
		// Re-check: with concurrent faulters the level can regress between
		// the wake-up and this proc's turn; the loop preserves safety.
		pg = d.page(pfn)
		lv = pg.level[k]
		if lv == Exclusive || (!write && lv == Shared) {
			return
		}
	}
}

// Read is shorthand for a read access.
func (d *DSM) Read(p *sim.Proc, core *soc.Core, k soc.DomainID, pfn mem.PFN) {
	d.Access(p, core, k, pfn, false)
}

// Write is shorthand for a write access.
func (d *DSM) Write(p *sim.Proc, core *soc.Core, k soc.DomainID, pfn mem.PFN) {
	d.Access(p, core, k, pfn, true)
}

func (d *DSM) fault(p *sim.Proc, core *soc.Core, k soc.DomainID, pfn mem.PFN, write bool) {
	pg := d.page(pfn)
	st := &d.RequesterStats[k]
	start := p.Now()

	// If another thread of this kernel already faulted on the page, spin
	// on the same pending event. Registration must happen before any time
	// passes, or concurrent faulters would issue duplicate requests.
	if ev := pg.pending[k]; ev != nil {
		d.spin(p, core, ev)
		return
	}
	ev := sim.NewEvent(d.SoC.Eng)
	pg.pending[k] = ev

	prm := d.Params
	core.ExecFor(p, prm.LocalFault[k])
	st.Local += prm.LocalFault[k]
	core.ExecFor(p, prm.Protocol[k])
	st.Protocol += prm.Protocol[k]

	wantShared := prm.ThreeState && !write
	if prm.ThreeState && !write && k == soc.Weak {
		// Read detection through the M3's first-level MMU.
		core.ExecFor(p, prm.ShadowReadDetect)
		st.Local += prm.ShadowReadDetect
	}

	// Inactive-peer fast path: the peer's caches were flushed when its
	// domain suspended, so ownership is claimed through the shared
	// protocol metadata without mailbox traffic or a wake.
	if !prm.DisableInactiveClaim && d.SoC.Domains[k.Other()].State() == soc.DomInactive {
		core.ExecFor(p, prm.LocalClaim)
		if wantShared {
			if pg.level[k.Other()] == Exclusive {
				pg.level[k.Other()] = Shared
			}
			pg.level[k] = Shared
		} else {
			pg.level[k.Other()] = Invalid
			pg.level[k] = Exclusive
		}
		pg.pending[k] = nil
		ev.Fire()
		st.Faults++
		st.Claims++
		st.Total += p.Now().Sub(start)
		if d.Tracef != nil {
			d.Tracef("%v claimed page %d from inactive peer", k, pfn)
		}
		return
	}

	payload := uint32(pfn)
	if wantShared {
		payload |= sharedFlag
	}
	sent := p.Now()
	d.SoC.Mailbox.Send(p, core, k.Other(),
		soc.NewMessage(soc.MsgGetExclusive, payload, d.SoC.Mailbox.NextSeq()))
	d.spin(p, core, ev)

	core.ExecFor(p, prm.Exit[k])
	st.Exit += prm.Exit[k]
	st.Faults++
	st.Total += p.Now().Sub(start)
	d.FaultHist[k].Observe(p.Now().Sub(start))
	if d.Tracef != nil {
		d.Tracef("%v fault on page %d took %v (write=%v)", k, pfn, p.Now().Sub(start), write)
	}
	st.Servicing += prm.Servicing[k.Other()]
	// Comm is what remains of the wait after the peer's servicing time.
	wait := p.Now().Sub(sent) - prm.Exit[k] - prm.Servicing[k.Other()]
	if wait > 0 {
		st.Comm += wait
	}
}

// spin busy-waits for ev: the requester cannot sleep (fault handling may be
// in interrupt context), so the core burns active power until ownership
// arrives.
func (d *DSM) spin(p *sim.Proc, core *soc.Core, ev *sim.Event) {
	core.Domain.EnsureAwake(p)
	if ev.Fired() {
		return
	}
	core.Domain.BeginSpin()
	ev.Wait(p)
	core.Domain.EndSpin()
}

// HandleMessage processes a DSM mailbox message received by kernel k; the
// OS mailbox dispatcher calls it from k's dispatcher proc running on core.
// It returns true if the message was a DSM message.
func (d *DSM) HandleMessage(p *sim.Proc, core *soc.Core, k soc.DomainID, msg soc.Message) bool {
	switch msg.Type() {
	case soc.MsgGetExclusive:
		pfn := mem.PFN(msg.Payload() &^ sharedFlag)
		shared := msg.Payload()&sharedFlag != 0
		d.handleGet(p, core, k, deferredReq{pfn: pfn, from: k.Other(), shared: shared, seq: msg.Seq(), at: p.Now()})
		return true
	case soc.MsgPutExclusive:
		d.handlePut(k, mem.PFN(msg.Payload()&^sharedFlag), msg.Payload()&sharedFlag != 0)
		return true
	}
	return false
}

func (d *DSM) handleGet(p *sim.Proc, core *soc.Core, k soc.DomainID, req deferredReq) {
	pg := d.page(req.pfn)
	if pg.pending[k] != nil && k == soc.Strong {
		// Crossed upgrade requests (three-state): the strong side wins; it
		// serves the peer only after its own fault completes.
		ev := pg.pending[k]
		d.SoC.Eng.Spawn("dsm-crossed", func(p2 *sim.Proc) {
			ev.Wait(p2)
			d.serve(p2, core, k, req)
		})
		return
	}
	if k == soc.Strong {
		dom := d.SoC.Domains[soc.Strong]
		if dom.BusyCores() > 0 || dom.IdleFor() < d.Params.MainIdleThreshold {
			// Bottom half: defer while the strong domain is under load.
			d.deferred = append(d.deferred, req)
			d.drainGate.Open()
			return
		}
	}
	d.serve(p, core, k, req)
}

// serve flushes and invalidates the local copy and grants ownership.
func (d *DSM) serve(p *sim.Proc, core *soc.Core, k soc.DomainID, req deferredReq) {
	d.SoC.Domains[k].EnsureAwake(p)
	core.ExecFor(p, d.Params.Servicing[k])
	pg := d.page(req.pfn)
	if req.shared {
		if pg.level[k] == Exclusive {
			pg.level[k] = Shared
		}
	} else {
		pg.level[k] = Invalid
	}
	payload := uint32(req.pfn)
	if req.shared {
		payload |= sharedFlag
	}
	d.SoC.Mailbox.Send(p, core, req.from,
		soc.NewMessage(soc.MsgPutExclusive, payload, d.SoC.Mailbox.NextSeq()))
}

func (d *DSM) handlePut(k soc.DomainID, pfn mem.PFN, shared bool) {
	pg := d.page(pfn)
	if shared {
		pg.level[k] = Shared
	} else {
		pg.level[k] = Exclusive
	}
	if ev := pg.pending[k]; ev != nil {
		pg.pending[k] = nil
		ev.Fire()
	}
}

// RunMainDrainer is the main kernel's bottom-half loop: it services
// deferred GetExclusive requests once the strong domain has been idle long
// enough, or at the forced flush period under sustained load. The OS spawns
// it on a strong core; it never returns.
func (d *DSM) RunMainDrainer(p *sim.Proc) {
	core := d.ServiceCore[soc.Strong]
	dom := d.SoC.Domains[soc.Strong]
	for {
		for len(d.deferred) == 0 {
			d.drainGate.Wait(p)
		}
		oldest := d.deferred[0].at
		age := p.Now().Sub(oldest)
		idle := dom.IdleFor()
		if idle >= d.Params.MainIdleThreshold || age >= d.Params.MainBHPeriod {
			batch := d.deferred
			d.deferred = nil
			for _, req := range batch {
				d.RequesterStats[req.from].DeferWait += p.Now().Sub(req.at)
				d.serve(p, core, soc.Strong, req)
			}
			continue
		}
		p.Sleep(d.Params.DrainPoll)
	}
}

// DeferredLen returns the number of requests parked in the bottom-half
// queue.
func (d *DSM) DeferredLen() int { return len(d.deferred) }

// CheckInvariants verifies the one-writer invariant on every page: at most
// one kernel Exclusive, and never Exclusive alongside any other validity.
func (d *DSM) CheckInvariants() error {
	for pfn, pg := range d.pages {
		a, b := pg.level[soc.Strong], pg.level[soc.Weak]
		if a == Exclusive && b != Invalid || b == Exclusive && a != Invalid {
			return fmt.Errorf("dsm: one-writer invariant violated on page %d: main=%v shadow=%v", pfn, a, b)
		}
		if !d.Params.ThreeState && (a == Shared || b == Shared) {
			return fmt.Errorf("dsm: shared level in two-state mode on page %d", pfn)
		}
	}
	return nil
}
