// Package dsm implements K2's software distributed shared memory (§6.3),
// which transparently keeps the state of shadowed OS services coherent
// between the kernels.
//
// The DSM implements sequential consistency with a page-based granularity
// (4 KB) and the paper's simple two-state protocol: each kernel tracks each
// shared page as Valid or Invalid, maintaining the one-writer invariant.
// Before accessing an Invalid page, a kernel sends GetExclusive through the
// hardware mailbox; the owning kernel flushes and invalidates the page and
// replies with PutExclusive. Fault handling spins (it may run in interrupt
// context and cannot sleep), and the communication priorities favor the
// strong domain: the main kernel services GetExclusive in bottom halves and
// defers further under load, while the shadow kernel services requests
// before any other pending interrupt.
//
// A three-state protocol with read-only sharing (§6.3, "An alternative
// design") is included for the ablation experiment; on OMAP4 it is
// penalized by the Cortex-M3's cascaded MMU, modelled as an extra read
// detection cost on the shadow kernel.
package dsm

import (
	"fmt"
	"sort"
	"time"

	"k2/internal/mem"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/stats"
)

// Level is a kernel's access level for one shared page.
type Level int

const (
	// Invalid: the kernel must fault before accessing the page.
	Invalid Level = iota
	// Shared: read-only copy (three-state protocol only).
	Shared
	// Exclusive: the kernel may read and write the page.
	Exclusive
)

func (l Level) String() string {
	switch l {
	case Invalid:
		return "invalid"
	case Shared:
		return "shared"
	default:
		return "exclusive"
	}
}

// Protocol selects the coherence protocol variant.
type Protocol int

const (
	// TwoState is the paper's protocol: each kernel tracks each page as
	// Valid or Invalid and every fault steals the single copy. The default;
	// byte-identical to the pre-MSI code.
	TwoState Protocol = iota
	// MSI enables IVY-style read replication with distributed-manager
	// ownership (Li & Hudak): read faults install Shared copies on any
	// number of kernels, write faults invalidate every sharer with exact
	// ack accounting before granting Exclusive, and requests route along
	// per-kernel probOwner hints with forwarding chains and path
	// compression instead of always consulting the strong-domain
	// directory entry.
	MSI
)

func (pr Protocol) String() string {
	if pr == MSI {
		return "msi"
	}
	return "twostate"
}

// ParseProtocol maps a flag/JSON spelling to a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "", "twostate", "two-state", "2state":
		return TwoState, nil
	case "msi":
		return MSI, nil
	}
	return TwoState, fmt.Errorf("unknown dsm protocol %q (want twostate or msi)", s)
}

// Params carries the protocol's calibrated costs. The per-phase values come
// from Table 5 (µs): the breakdown of a DSM page fault by sender side. Each
// cost slice is indexed by kernel; kernels beyond the slice use its last
// entry, so the two-entry OMAP4 calibration serves any number of weak
// domains (they are all Cortex-M3 instances).
type Params struct {
	// LocalFault is the page-fault entry cost on the requesting core
	// (main 3 µs, shadow 17 µs).
	LocalFault []time.Duration
	// ProtocolCost is the protocol execution cost on the requesting core
	// (main 2 µs, shadow 13 µs).
	ProtocolCost []time.Duration
	// Servicing is the request-servicing cost on the owning core: flush
	// and invalidate the page, then acknowledge (by main 7 µs, by shadow
	// 24 µs).
	Servicing []time.Duration
	// Exit is the fault-exit plus first-cache-miss cost on the requesting
	// core (main 18 µs, shadow 2 µs).
	Exit []time.Duration

	// MainIdleThreshold and MainBHPeriod implement the asymmetric
	// priority: the main kernel services GetExclusive only once its domain
	// has been idle this long, or at the forced bottom-half flush under
	// sustained load (§6.3; this produces Table 6's starvation of the
	// shadow kernel for CPU-bound workloads).
	MainIdleThreshold time.Duration
	MainBHPeriod      time.Duration
	// DrainPoll is how often the main drainer re-checks idleness while
	// requests are deferred.
	DrainPoll time.Duration

	// DisableInactiveClaim turns the inactive-peer fast path off, forcing
	// every fault through the mailbox (and thus waking the peer domain).
	// Exists for the ablation that shows the claim path is load-bearing
	// for §9.2's energy results.
	DisableInactiveClaim bool
	// LocalClaim is the cost of taking ownership from an inactive peer
	// domain: its caches were flushed on suspend, so the fault handler
	// updates the shared protocol metadata under a hardware spinlock
	// without any mailbox traffic — and, crucially, without waking the
	// peer, preserving §7's rule that shared activity never wakes the
	// strong domain. Without this path every light-task episode would
	// wake the strong domain through the mailbox and the energy benefits
	// of §9.2 would be unreachable.
	LocalClaim time.Duration

	// ThreeState enables read-only sharing. ShadowReadDetect is the extra
	// per-read-fault cost on the shadow kernel from driving its first-level
	// MMU for read detection, and ShadowReadThrash the per-read tax from
	// the resulting pressure on its ten-entry software-loaded TLB ("severe
	// thrashing", §6.3). Both are zero on a hypothetical platform with a
	// capable weak-domain MMU.
	ThreeState       bool
	ShadowReadDetect time.Duration
	ShadowReadThrash time.Duration

	// Protocol selects the coherence protocol. TwoState (the zero value)
	// is the paper's Valid/Exclusive design and keeps every output
	// byte-identical to the pre-MSI code; MSI opts into read replication
	// with probOwner ownership hints. MSI subsumes ThreeState's read
	// sharing but, unlike it, routes requests via hints and does not model
	// the OMAP4 MMU read-detection penalties (it targets platforms whose
	// weak domains have a capable MMU).
	Protocol Protocol

	// OwnerTimeout, when non-zero, bounds how long a faulting kernel spins
	// for a reply before re-examining the directory: targets whose domain
	// has crashed are claimed through the shared protocol metadata
	// (generalizing the inactive-owner fast path — a dead domain's caches
	// are as gone as a suspended one's), and the Get is re-sent to targets
	// that are merely slow, in case the fabric lost it. Zero (the default)
	// preserves the paper's unbounded spin on a perfect substrate.
	OwnerTimeout time.Duration
}

// DefaultParams returns the Table 5 calibration.
func DefaultParams() Params {
	return Params{
		LocalFault:        []time.Duration{3 * time.Microsecond, 17 * time.Microsecond},
		ProtocolCost:      []time.Duration{2 * time.Microsecond, 13 * time.Microsecond},
		Servicing:         []time.Duration{7 * time.Microsecond, 24 * time.Microsecond},
		Exit:              []time.Duration{18 * time.Microsecond, 2 * time.Microsecond},
		MainIdleThreshold: 300 * time.Microsecond,
		MainBHPeriod:      25 * time.Millisecond,
		DrainPoll:         100 * time.Microsecond,
		LocalClaim:        2 * time.Microsecond,
		ThreeState:        false,
		ShadowReadDetect:  120 * time.Microsecond,
	}
}

// sharedFlag marks a GetExclusive as a read (shared) request in the
// three-state protocol; pages fit in 18 bits, leaving payload bit 19 free.
const sharedFlag = 1 << 19

// clampCost indexes a per-kernel cost slice, reusing the last entry for
// kernels beyond its length.
func clampCost(costs []time.Duration, k soc.DomainID) time.Duration {
	if int(k) < len(costs) {
		return costs[k]
	}
	return costs[len(costs)-1]
}

func (p Params) localFault(k soc.DomainID) time.Duration { return clampCost(p.LocalFault, k) }
func (p Params) protocol(k soc.DomainID) time.Duration   { return clampCost(p.ProtocolCost, k) }
func (p Params) servicing(k soc.DomainID) time.Duration  { return clampCost(p.Servicing, k) }
func (p Params) exit(k soc.DomainID) time.Duration       { return clampCost(p.Exit, k) }

// pendingFault is one kernel's outstanding fault on a page: the event its
// faulters spin on and how many PutExclusive replies are still expected
// (more than one only when a three-state upgrade invalidates several
// sharers).
type pendingFault struct {
	ev   *sim.Event
	want int
	// hops counts probOwner forwarding hops this fault's Get has taken so
	// far (MSI only); it both feeds the telemetry and bounds the chain.
	hops int
	// wasOwner records whether the kernel was the directory owner when the
	// fault began. If it was not, yet the directory now names it owner, some
	// holder has already granted this fault and a Put is in flight — an
	// incoming Get must then queue behind that grant (see serve).
	wasOwner bool
}

// page is the directory entry for one shared page: each kernel's access
// level (the sharer set) plus the current owner — the kernel that holds or
// last held the page Exclusive, and therefore services GetExclusive.
type page struct {
	level   []Level
	owner   soc.DomainID
	pending []*pendingFault // outstanding fault per kernel
	// probOwner is each kernel's hint about who owns the page (MSI only;
	// nil under TwoState). A kernel's Get is routed to its hint and
	// forwarded along the hint chain; every chain reaches the true owner
	// at quiescence because each ownership transfer points the old owner's
	// hint at the new one.
	probOwner []soc.DomainID
}

// takeOwner transfers directory ownership to k, maintaining the hint-chain
// invariant under MSI: the old owner's hint points forward at k and k's own
// hint points at itself. Under TwoState (probOwner nil) it is a plain owner
// assignment.
func (pg *page) takeOwner(k soc.DomainID) {
	if pg.probOwner != nil {
		pg.probOwner[pg.owner] = k
		pg.probOwner[k] = k
	}
	pg.owner = k
}

// holders returns the kernels with a valid (non-Invalid) copy.
func (pg *page) holders() []soc.DomainID {
	var out []soc.DomainID
	for k, lv := range pg.level {
		if lv != Invalid {
			out = append(out, soc.DomainID(k))
		}
	}
	return out
}

// Stats aggregates fault costs observed by one kernel as requester.
type Stats struct {
	Faults int
	// Claims counts faults resolved through the inactive-peer fast path
	// (no mailbox round trip).
	Claims int
	// Recoveries counts faults completed by reclaiming ownership from a
	// crashed peer after OwnerTimeout expired.
	Recoveries int
	// Resends counts Gets re-sent after OwnerTimeout to a live but
	// unresponsive target (the original may have been lost).
	Resends int
	// ReadFaults and WriteFaults split Faults by access kind (MSI; zero
	// under TwoState, where the distinction does not change the protocol).
	ReadFaults  int
	WriteFaults int
	// InvalidationsSent counts invalidation messages this kernel issued as
	// a write-faulting requester (Gets addressed to read-sharers, MSI);
	// InvalidationsAcked counts invalidations it serviced as a sharer.
	InvalidationsSent  int
	InvalidationsAcked int
	// ProbOwnerHops counts forwarding hops taken by this kernel's Gets
	// along probOwner chains; ForwardMaxDepth is the deepest single chain.
	ProbOwnerHops   int
	ForwardMaxDepth int
	Local           time.Duration
	Protocol        time.Duration
	Comm            time.Duration
	Servicing       time.Duration
	Exit            time.Duration
	Total           time.Duration
	DeferWait       time.Duration // portion of Comm spent in the main BH queue
}

// Mean returns the average per-fault duration of total.
func (s Stats) Mean() time.Duration {
	if s.Faults == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Faults)
}

// Counters is the cross-kernel aggregate of the DSM's event counters, the
// shape exported through k2bench -json and the k2d /metrics surface.
type Counters struct {
	Faults             int `json:"faults"`
	ReadFaults         int `json:"read_faults"`
	WriteFaults        int `json:"write_faults"`
	Claims             int `json:"claims"`
	Recoveries         int `json:"recoveries"`
	Resends            int `json:"resends"`
	InvalidationsSent  int `json:"invalidations_sent"`
	InvalidationsAcked int `json:"invalidations_acked"`
	ProbOwnerHops      int `json:"probowner_hops"`
	ForwardMaxDepth    int `json:"forward_max_depth"`
	DeadReclaims       int `json:"dead_reclaims"`
}

// Add accumulates o into c (ForwardMaxDepth takes the max, it is a depth).
func (c *Counters) Add(o Counters) {
	c.Faults += o.Faults
	c.ReadFaults += o.ReadFaults
	c.WriteFaults += o.WriteFaults
	c.Claims += o.Claims
	c.Recoveries += o.Recoveries
	c.Resends += o.Resends
	c.InvalidationsSent += o.InvalidationsSent
	c.InvalidationsAcked += o.InvalidationsAcked
	c.ProbOwnerHops += o.ProbOwnerHops
	if o.ForwardMaxDepth > c.ForwardMaxDepth {
		c.ForwardMaxDepth = o.ForwardMaxDepth
	}
	c.DeadReclaims += o.DeadReclaims
}

// Totals sums the per-requester counters over every kernel.
func (d *DSM) Totals() Counters {
	var c Counters
	for _, s := range d.RequesterStats {
		c.Add(Counters{
			Faults: s.Faults, ReadFaults: s.ReadFaults, WriteFaults: s.WriteFaults,
			Claims: s.Claims, Recoveries: s.Recoveries, Resends: s.Resends,
			InvalidationsSent: s.InvalidationsSent, InvalidationsAcked: s.InvalidationsAcked,
			ProbOwnerHops: s.ProbOwnerHops, ForwardMaxDepth: s.ForwardMaxDepth,
		})
	}
	c.DeadReclaims = d.DeadReclaims
	return c
}

// DSM is the coherence manager. One instance serves every kernel (its state
// stands for the per-kernel protocol metadata, three bits per page).
type DSM struct {
	SoC    *soc.SoC
	Params Params

	// Core used for servicing requests on each kernel.
	ServiceCore []*soc.Core
	// OnFirstShare, if set, is called when a page is first registered,
	// letting the OS demote its large-grain mapping (§6.3).
	OnFirstShare func(p mem.PFN)
	// Tracef, if set, receives protocol trace lines (faults, claims,
	// servicing); the OS wires it to the kernel tracer.
	Tracef func(format string, args ...any)

	pages map[mem.PFN]*page

	deferred  []deferredReq
	drainGate *sim.Gate

	// RequesterStats is indexed by the faulting kernel.
	RequesterStats []Stats
	// FaultHist records full-fault latencies per requesting kernel.
	FaultHist []*stats.Histogram
	// DeadReclaims counts directory entries swept by ReclaimDead.
	DeadReclaims int
}

type deferredReq struct {
	pfn    mem.PFN
	from   soc.DomainID
	shared bool
	seq    uint32
	at     sim.Time
}

// New returns a DSM over the SoC; service cores default to the last strong
// core and core 0 of each weak domain.
func New(s *soc.SoC, params Params) *DSM {
	n := s.NumDomains()
	d := &DSM{
		SoC:            s,
		Params:         params,
		pages:          make(map[mem.PFN]*page),
		ServiceCore:    make([]*soc.Core, n),
		RequesterStats: make([]Stats, n),
		FaultHist:      make([]*stats.Histogram, n),
	}
	d.ServiceCore[soc.Strong] = s.Core(soc.Strong, len(s.Domains[soc.Strong].Cores)-1)
	for _, k := range s.WeakDomains() {
		d.ServiceCore[k] = s.Core(k, 0)
	}
	d.drainGate = sim.NewGate(s.Eng)
	for k := range d.FaultHist {
		d.FaultHist[k] = stats.NewHistogram(0)
	}
	return d
}

// ResetStats clears the per-requester counters and fault histograms; the
// directory itself is untouched. Ablations call it after a warm-up access
// so steady-state protocol behaviour is measured without the boot-time
// first-transfer transient.
func (d *DSM) ResetStats() {
	for i := range d.RequesterStats {
		d.RequesterStats[i] = Stats{}
	}
	for k := range d.FaultHist {
		d.FaultHist[k] = stats.NewHistogram(0)
	}
	d.DeadReclaims = 0
}

// Share registers a page with the DSM; the main kernel starts as its owner.
func (d *DSM) Share(pfn mem.PFN) {
	if _, dup := d.pages[pfn]; dup {
		return
	}
	n := d.SoC.NumDomains()
	pg := &page{
		level:   make([]Level, n),
		pending: make([]*pendingFault, n),
		owner:   soc.Strong,
	}
	pg.level[soc.Strong] = Exclusive
	if d.Params.Protocol == MSI {
		pg.probOwner = make([]soc.DomainID, n)
		for k := range pg.probOwner {
			pg.probOwner[k] = soc.Strong
		}
	}
	d.pages[pfn] = pg
	if d.OnFirstShare != nil {
		d.OnFirstShare(pfn)
	}
}

// Owner returns the kernel currently responsible for servicing requests for
// pfn: the holder of the Exclusive copy, or the last kernel that held it.
func (d *DSM) Owner(pfn mem.PFN) soc.DomainID { return d.page(pfn).owner }

// Holders returns the kernels with a valid copy of pfn.
func (d *DSM) Holders(pfn mem.PFN) []soc.DomainID { return d.page(pfn).holders() }

// SharedPages returns how many pages the DSM manages.
func (d *DSM) SharedPages() int { return len(d.pages) }

// Pages returns every page the DSM manages, in ascending PFN order. The
// invariant oracle (internal/check) walks this to audit the directory.
func (d *DSM) Pages() []mem.PFN {
	pfns := make([]mem.PFN, 0, len(d.pages))
	for pfn := range d.pages {
		pfns = append(pfns, pfn)
	}
	sort.Slice(pfns, func(i, j int) bool { return pfns[i] < pfns[j] })
	return pfns
}

// Level returns kernel k's current level for pfn.
func (d *DSM) Level(k soc.DomainID, pfn mem.PFN) Level {
	pg, ok := d.pages[pfn]
	if !ok {
		return Invalid
	}
	return pg.level[k]
}

func (d *DSM) page(pfn mem.PFN) *page {
	pg, ok := d.pages[pfn]
	if !ok {
		panic(fmt.Sprintf("dsm: access to unshared page %d", pfn))
	}
	return pg
}

// Access performs a read or write of a shared page from kernel k executing
// on core. If the kernel's copy is valid for the access, it costs nothing
// (the MMU mapping is effective); otherwise the calling proc takes a DSM
// page fault, spinning until ownership arrives.
func (d *DSM) Access(p *sim.Proc, core *soc.Core, k soc.DomainID, pfn mem.PFN, write bool) {
	if d.Params.ThreeState && k != soc.Strong && !write && d.Params.ShadowReadThrash > 0 {
		// Read detection through the M3's first-level MMU taxes every
		// read with TLB thrashing (§6.3).
		core.ExecFor(p, d.Params.ShadowReadThrash)
	}
	for {
		pg := d.page(pfn)
		lv := pg.level[k]
		if lv == Exclusive || (!write && lv == Shared) {
			return
		}
		d.fault(p, core, k, pfn, write)
		// Re-check: with concurrent faulters the level can regress between
		// the wake-up and this proc's turn; the loop preserves safety.
		pg = d.page(pfn)
		lv = pg.level[k]
		if lv == Exclusive || (!write && lv == Shared) {
			return
		}
	}
}

// Read is shorthand for a read access.
func (d *DSM) Read(p *sim.Proc, core *soc.Core, k soc.DomainID, pfn mem.PFN) {
	d.Access(p, core, k, pfn, false)
}

// Write is shorthand for a write access.
func (d *DSM) Write(p *sim.Proc, core *soc.Core, k soc.DomainID, pfn mem.PFN) {
	d.Access(p, core, k, pfn, true)
}

// faultTargets returns the kernels that must give up (or downgrade) their
// copy for kernel k's fault: the current owner for a shared (read) request,
// every valid holder for an exclusive one. In the two-state protocol there
// is exactly one valid holder — the owner — so both cases degenerate to the
// single GetExclusive target of the paper's OMAP4 instance.
func (pg *page) faultTargets(k soc.DomainID, wantShared bool) []soc.DomainID {
	if wantShared {
		return []soc.DomainID{pg.owner}
	}
	var targets []soc.DomainID
	for _, h := range pg.holders() {
		if h != k {
			targets = append(targets, h)
		}
	}
	if len(targets) == 0 && pg.owner != k && pg.level[k] == Invalid {
		// No kernel holds a valid copy yet the directory names another
		// owner: ownership is in flight (the previous holder went Invalid
		// when it served, and the grant message has not reached the new
		// owner). Treating the page as free here would mint a second
		// Exclusive copy, so chase the in-flight grant instead: the named
		// owner serves (or forwards) once its Put lands, and if it is
		// suspended or crashed the claim and recovery paths take over.
		targets = append(targets, pg.owner)
	}
	return targets
}

func (d *DSM) fault(p *sim.Proc, core *soc.Core, k soc.DomainID, pfn mem.PFN, write bool) {
	pg := d.page(pfn)
	st := &d.RequesterStats[k]
	start := p.Now()

	// If another thread of this kernel already faulted on the page, spin
	// on the same pending event. Registration must happen before any time
	// passes, or concurrent faulters would issue duplicate requests.
	if pf := pg.pending[k]; pf != nil {
		d.spin(p, core, pf.ev)
		return
	}
	pf := &pendingFault{ev: sim.NewEvent(d.SoC.Eng), wasOwner: pg.owner == k}
	pg.pending[k] = pf

	prm := d.Params
	if prm.Protocol == MSI {
		if write {
			st.WriteFaults++
		} else {
			st.ReadFaults++
		}
	}
	core.ExecFor(p, prm.localFault(k))
	st.Local += prm.localFault(k)
	core.ExecFor(p, prm.protocol(k))
	st.Protocol += prm.protocol(k)

	wantShared := (prm.ThreeState || prm.Protocol == MSI) && !write
	if prm.ThreeState && !write && k != soc.Strong {
		// Read detection through the M3's first-level MMU.
		core.ExecFor(p, prm.ShadowReadDetect)
		st.Local += prm.ShadowReadDetect
	}

	// Resolve the target set now, after the protocol execution: the
	// directory metadata lives in the shared global region, so this read
	// and the per-target action below are one critical section in which no
	// virtual time passes.
	var messaged []soc.DomainID
	claimed := false
	for _, t := range pg.faultTargets(k, wantShared) {
		// Inactive-owner fast path: the target's caches were flushed when
		// its domain suspended, so ownership is claimed through the shared
		// protocol metadata without mailbox traffic — and without waking
		// it, preserving §7's rule for the strong domain.
		if !prm.DisableInactiveClaim && d.SoC.Domains[t].State() == soc.DomInactive {
			if !claimed {
				core.ExecFor(p, prm.LocalClaim)
				claimed = true
			}
			if wantShared {
				if pg.level[t] == Exclusive {
					pg.level[t] = Shared
				}
			} else {
				pg.level[t] = Invalid
			}
			if d.Tracef != nil {
				d.Tracef("%v claimed page %d from inactive %v", k, pfn, t)
			}
			continue
		}
		messaged = append(messaged, t)
	}

	if prm.Protocol == MSI {
		messaged = d.msiRoute(pg, pfn, k, messaged, wantShared, st)
	}

	if len(messaged) == 0 {
		// Every target was claimed locally: complete the fault without any
		// mailbox round trip.
		if wantShared {
			pg.level[k] = Shared
		} else {
			pg.level[k] = Exclusive
			pg.takeOwner(k)
		}
		pg.pending[k] = nil
		pf.ev.Fire()
		st.Faults++
		st.Claims++
		st.Total += p.Now().Sub(start)
		if d.Tracef != nil {
			d.Tracef("%v claimed page %d from inactive peer", k, pfn)
		}
		return
	}

	payload := uint32(pfn)
	if wantShared {
		payload |= sharedFlag
	}
	pf.want = len(messaged)
	sent := p.Now()
	for _, t := range messaged {
		d.SoC.Mailbox.Send(p, core, t,
			soc.NewMessage(soc.MsgGetExclusive, payload, d.SoC.Mailbox.NextSeq()))
	}
	if prm.OwnerTimeout > 0 {
		d.spinRecover(p, core, k, pfn, pf, wantShared)
	} else {
		d.spin(p, core, pf.ev)
	}

	core.ExecFor(p, prm.exit(k))
	st.Exit += prm.exit(k)
	st.Faults++
	st.Total += p.Now().Sub(start)
	d.FaultHist[k].Observe(p.Now().Sub(start))
	if d.Tracef != nil {
		d.Tracef("%v fault on page %d took %v (write=%v)", k, pfn, p.Now().Sub(start), write)
	}
	var servicing time.Duration
	for _, t := range messaged {
		servicing += prm.servicing(t)
	}
	st.Servicing += servicing
	// Comm is what remains of the wait after the servers' servicing time.
	wait := p.Now().Sub(sent) - prm.exit(k) - servicing
	if wait > 0 {
		st.Comm += wait
	}
}

// spin busy-waits for ev: the requester cannot sleep (fault handling may be
// in interrupt context), so the core burns active power until ownership
// arrives.
func (d *DSM) spin(p *sim.Proc, core *soc.Core, ev *sim.Event) {
	core.Domain.EnsureAwake(p)
	if ev.Fired() {
		return
	}
	core.Domain.BeginSpin()
	ev.Wait(p)
	core.Domain.EndSpin()
}

// HandleMessage processes a DSM mailbox message received by kernel k from
// kernel `from` (the mailbox envelope's sender); the OS mailbox dispatcher
// calls it from k's dispatcher proc running on core. It returns true if the
// message was a DSM message.
func (d *DSM) HandleMessage(p *sim.Proc, core *soc.Core, k soc.DomainID, from soc.DomainID, msg soc.Message) bool {
	switch msg.Type() {
	case soc.MsgGetExclusive:
		pfn := mem.PFN(msg.Payload() &^ sharedFlag)
		shared := msg.Payload()&sharedFlag != 0
		d.handleGet(p, core, k, deferredReq{pfn: pfn, from: from, shared: shared, seq: msg.Seq(), at: p.Now()})
		return true
	case soc.MsgPutExclusive:
		d.handlePut(k, from, mem.PFN(msg.Payload()&^sharedFlag), msg.Payload()&sharedFlag != 0)
		return true
	}
	return false
}

func (d *DSM) handleGet(p *sim.Proc, core *soc.Core, k soc.DomainID, req deferredReq) {
	pg := d.page(req.pfn)
	if pg.pending[k] != nil && k < req.from {
		// Crossed requests: both kernels faulted on the page and each sent
		// the other a Get. Kernel ID breaks the tie (lowest wins, so the
		// strong kernel always beats a shadow): the winner serves the peer
		// only after its own fault completes.
		ev := pg.pending[k].ev
		d.SoC.Eng.Spawn("dsm-crossed", func(p2 *sim.Proc) {
			ev.Wait(p2)
			d.serve(p2, core, k, req)
		})
		return
	}
	if k == soc.Strong {
		dom := d.SoC.Domains[soc.Strong]
		if dom.BusyCores() > 0 || dom.IdleFor() < d.Params.MainIdleThreshold {
			// Bottom half: defer while the strong domain is under load.
			d.deferred = append(d.deferred, req)
			d.drainGate.Open()
			return
		}
	}
	d.serve(p, core, k, req)
}

// msiRoute applies distributed-manager routing to a fault's message
// targets. A read fault consults the faulter's own probOwner hint instead
// of the directory entry, falling back to the directory when the hint is
// stale (self), redundant (already the directory answer), or points at a
// crashed or suspended domain that only the claim and recovery paths may
// handle. Write-fault targets are the exact copyset read from the shared
// protocol metadata and are kept as-is; every Get addressed to a
// read-sharer is accounted as an invalidation.
func (d *DSM) msiRoute(pg *page, pfn mem.PFN, k soc.DomainID, messaged []soc.DomainID, wantShared bool, st *Stats) []soc.DomainID {
	if !wantShared {
		for _, t := range messaged {
			if pg.level[t] == Shared {
				st.InvalidationsSent++
			}
		}
		return messaged
	}
	if len(messaged) != 1 || messaged[0] != pg.owner {
		return messaged
	}
	h := pg.probOwner[k]
	if h == k || h == pg.owner || d.SoC.Domains[h].Crashed() ||
		d.SoC.Domains[h].State() == soc.DomInactive {
		return messaged
	}
	if d.Tracef != nil {
		d.Tracef("%v routed Get for page %d via probOwner hint %v", k, pfn, h)
	}
	return []soc.DomainID{h}
}

// finishOne retires one expected reply of kernel k's pending fault without
// a Put message: the requester turned out to already hold what it asked for
// (its Get chased ownership that was already in flight toward it). Exact
// ack accounting demands that every Get chain terminate in exactly one
// decrement — a Put or this — or a multi-target write fault would spin
// forever on a reply that can never come.
func (d *DSM) finishOne(pg *page, k soc.DomainID, shared bool) {
	pf := pg.pending[k]
	if pf == nil {
		return
	}
	pf.want--
	if pf.want > 0 {
		return
	}
	if shared {
		pg.level[k] = Shared
	} else {
		pg.level[k] = Exclusive
		pg.takeOwner(k)
	}
	pg.pending[k] = nil
	pf.ev.Fire()
}

// msiForward re-routes a Get along the forwarding chain: to this kernel's
// probOwner hint when it is usable, else to the directory owner. An
// exclusive request path-compresses the hint as it passes (the requester
// will own the page), so later chains through this kernel shorten to one
// hop. Chains are bounded: past 2×NumDomains hops the request re-homes to
// the directory entry, which is always current.
func (d *DSM) msiForward(k soc.DomainID, pg *page, req deferredReq) {
	if pg.owner == req.from {
		// The requester already became the owner: ownership was granted
		// while this Get chased it. Retire one expected reply instead of
		// dropping silently, keeping the ack count exact.
		if d.Tracef != nil {
			d.Tracef("%v retired stale Get for page %d from %v (already owner)", k, req.pfn, req.from)
		}
		d.finishOne(pg, req.from, req.shared)
		return
	}
	st := &d.RequesterStats[req.from]
	hops := 1
	if pf := pg.pending[req.from]; pf != nil {
		pf.hops++
		hops = pf.hops
	}
	st.ProbOwnerHops++
	if hops > st.ForwardMaxDepth {
		st.ForwardMaxDepth = hops
	}
	next := pg.probOwner[k]
	if next == k || next == req.from || hops > 2*d.SoC.NumDomains() ||
		d.SoC.Domains[next].Crashed() {
		next = pg.owner
	}
	if !req.shared {
		// Path compression: the requester will own the page once granted.
		pg.probOwner[k] = req.from
	}
	payload := uint32(req.pfn)
	if req.shared {
		payload |= sharedFlag
	}
	if d.Tracef != nil {
		d.Tracef("%v forwarded Get for page %d from %v to probOwner %v (hop %d)", k, req.pfn, req.from, next, hops)
	}
	d.SoC.Mailbox.SendAsync(req.from, next,
		soc.NewMessage(soc.MsgGetExclusive, payload, req.seq))
}

// forward re-routes a Get that reached a kernel which no longer holds the
// page — the requester read a stale owner from the directory before the page
// moved on. The message is re-sent to the current owner with the original
// requester as sender, so the Put goes straight back to it. If the current
// owner IS the requester, ownership is already in flight toward it (the Put
// is in its inbox, behind this very message in the sender's channel order)
// and the request is simply dropped.
func (d *DSM) forward(k soc.DomainID, req deferredReq) {
	pg := d.page(req.pfn)
	if d.Params.Protocol == MSI {
		d.msiForward(k, pg, req)
		return
	}
	if pg.owner == req.from {
		if d.Tracef != nil {
			d.Tracef("%v dropped stale Get for page %d from %v (already owner)", k, req.pfn, req.from)
		}
		return
	}
	payload := uint32(req.pfn)
	if req.shared {
		payload |= sharedFlag
	}
	if d.Tracef != nil {
		d.Tracef("%v forwarded Get for page %d from %v to owner %v", k, req.pfn, req.from, pg.owner)
	}
	d.SoC.Mailbox.SendAsync(req.from, pg.owner,
		soc.NewMessage(soc.MsgGetExclusive, payload, req.seq))
}

// serve flushes and invalidates the local copy and grants ownership. A
// server that turns out not to hold the page forwards the request to the
// current owner instead (possible only with three or more kernels).
func (d *DSM) serve(p *sim.Proc, core *soc.Core, k soc.DomainID, req deferredReq) {
	pg := d.page(req.pfn)
	// Two races force a re-check of the pending state at serve time:
	//
	//  1. Crossed requests that sat in the bottom-half queue: the Get may be
	//     drained after this kernel started its own fault on the page. Without
	//     the re-check both kernels grant each other their stale copies and
	//     both end up Exclusive (the handleGet-time check only catches Gets
	//     that arrive after the fault began).
	//  2. A Get that overtook the Put granting this kernel's own fault: two
	//     cores of the sending domain can issue their mailbox writes in the
	//     same instant, so arrival order between channels is undefined. The
	//     directory gives it away — the fault was granted (owner is already
	//     this kernel) even though the fault began when it was not the owner
	//     — so the Get must queue behind the in-flight Put, i.e. behind the
	//     fault's completion. (When the kernel owned the page before faulting
	//     — a crossed upgrade — it must still serve lower-ID peers first, or
	//     both sides would defer and deadlock.)
	if pf := pg.pending[k]; pf != nil && (k < req.from || (pg.owner == k && !pf.wasOwner)) {
		ev := pf.ev
		d.SoC.Eng.Spawn("dsm-crossed", func(p2 *sim.Proc) {
			ev.Wait(p2)
			d.serve(p2, core, k, req)
		})
		return
	}
	if pg.level[k] == Invalid {
		d.forward(k, req)
		return
	}
	d.SoC.Domains[k].EnsureAwake(p)
	core.ExecFor(p, d.Params.servicing(k))
	// Re-check after servicing time passed: the page may have moved while
	// this bottom half executed.
	if pg.level[k] == Invalid {
		d.forward(k, req)
		return
	}
	if req.shared {
		if pg.level[k] == Exclusive {
			pg.level[k] = Shared
		}
	} else {
		if pg.probOwner != nil && pg.level[k] == Shared && pg.owner != k {
			// A read-sharer surrendering its copy to a write fault is an
			// invalidation ack, distinct from the owner's grant.
			d.RequesterStats[k].InvalidationsAcked++
		}
		pg.level[k] = Invalid
		// Ownership transfers with the Put: recording the requester as the
		// new owner here (not on receipt) keeps the directory ahead of the
		// message, so later Gets race at most into a forward.
		pg.takeOwner(req.from)
		if pg.probOwner != nil {
			pg.probOwner[k] = req.from
		}
	}
	payload := uint32(req.pfn)
	if req.shared {
		payload |= sharedFlag
	}
	if d.Tracef != nil {
		d.Tracef("%v served page %d to %v (shared=%v)", k, req.pfn, req.from, req.shared)
	}
	d.SoC.Mailbox.Send(p, core, req.from,
		soc.NewMessage(soc.MsgPutExclusive, payload, d.SoC.Mailbox.NextSeq()))
}

func (d *DSM) handlePut(k, from soc.DomainID, pfn mem.PFN, shared bool) {
	pg := d.page(pfn)
	pf := pg.pending[k]
	if pf != nil {
		pf.want--
		if pf.want > 0 {
			return // still waiting on other holders' invalidations
		}
	}
	if shared {
		pg.level[k] = Shared
		if pg.probOwner != nil {
			// The server of a read request is (or just was) the owner: the
			// reply path-compresses the requester's hint straight to it.
			pg.probOwner[k] = from
		}
	} else {
		pg.level[k] = Exclusive
		pg.takeOwner(k)
	}
	if d.Tracef != nil {
		d.Tracef("%v received Put for page %d (shared=%v, pending=%v)", k, pfn, shared, pf != nil)
	}
	if pf != nil {
		pg.pending[k] = nil
		pf.ev.Fire()
	}
}

// RunMainDrainer is the main kernel's bottom-half loop: it services
// deferred GetExclusive requests once the strong domain has been idle long
// enough, or at the forced flush period under sustained load. The OS spawns
// it on a strong core; it never returns.
func (d *DSM) RunMainDrainer(p *sim.Proc) {
	core := d.ServiceCore[soc.Strong]
	dom := d.SoC.Domains[soc.Strong]
	for {
		for len(d.deferred) == 0 {
			d.drainGate.Wait(p)
		}
		oldest := d.deferred[0].at
		age := p.Now().Sub(oldest)
		idle := dom.IdleFor()
		if idle >= d.Params.MainIdleThreshold || age >= d.Params.MainBHPeriod {
			batch := d.deferred
			d.deferred = nil
			for _, req := range batch {
				d.RequesterStats[req.from].DeferWait += p.Now().Sub(req.at)
				d.serve(p, core, soc.Strong, req)
			}
			continue
		}
		p.Sleep(d.Params.DrainPoll)
	}
}

// DeferredLen returns the number of requests parked in the bottom-half
// queue.
func (d *DSM) DeferredLen() int { return len(d.deferred) }

// CheckInvariants verifies the one-writer invariant on every page: at most
// one kernel Exclusive, and never Exclusive alongside any other validity.
func (d *DSM) CheckInvariants() error {
	for pfn, pg := range d.pages {
		holders := pg.holders()
		exclusive := 0
		for _, h := range holders {
			switch pg.level[h] {
			case Exclusive:
				exclusive++
			case Shared:
				if !d.Params.ThreeState && d.Params.Protocol != MSI {
					return fmt.Errorf("dsm: shared level in two-state mode on page %d (kernel %v)", pfn, h)
				}
			}
		}
		if exclusive > 1 || (exclusive == 1 && len(holders) > 1) {
			return fmt.Errorf("dsm: one-writer invariant violated on page %d: holders %v", pfn, holders)
		}
	}
	return nil
}

// CheckHintChains verifies the MSI forwarding-chain liveness invariant at
// quiescence: following probOwner hints from any kernel reaches the page's
// directory owner within NumDomains hops, so no Get can be forwarded
// forever and no hint chain dead-ends at a non-owner. Only meaningful once
// every fault has completed — mid-protocol, hints legitimately point at
// requesters that are not owners yet — so the invariant suite runs it at
// the Final (quiescent) check alone. A nil error under TwoState: there are
// no hints to audit.
func (d *DSM) CheckHintChains() error {
	if d.Params.Protocol != MSI {
		return nil
	}
	n := d.SoC.NumDomains()
	for _, pfn := range d.Pages() {
		pg := d.pages[pfn]
		for j := range pg.probOwner {
			cur := soc.DomainID(j)
			ok := false
			for step := 0; step <= n; step++ {
				if cur == pg.owner {
					ok = true
					break
				}
				next := pg.probOwner[cur]
				if next == cur {
					break // dead-ends at a non-owner
				}
				cur = next
			}
			if !ok {
				return fmt.Errorf("dsm: probOwner chain from kernel %v on page %d does not reach owner %v (hints %v)",
					soc.DomainID(j), pfn, pg.owner, pg.probOwner)
			}
		}
	}
	return nil
}
