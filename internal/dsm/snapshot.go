package dsm

import (
	"fmt"
	"sort"

	"k2/internal/mem"
	"k2/internal/soc"
	"k2/internal/stats"
)

// PageSnap is one directory entry's checkpointable state. ProbOwner is nil
// under TwoState (the hints exist only in the MSI protocol), keeping
// TwoState snapshots byte-identical to the pre-MSI codec.
type PageSnap struct {
	PFN       int
	Levels    []int
	Owner     int
	ProbOwner []int
}

// DSMState is the coherence manager's checkpointable state. Pending faults
// and deferred bottom-half requests cannot be captured (they reference
// spinning procs), so capture requires a quiescent directory.
type DSMState struct {
	Pages          []PageSnap // ascending PFN
	RequesterStats []Stats
	FaultHist      []stats.HistogramState
	DeadReclaims   int
}

// CaptureState records the directory, per-requester statistics and fault
// histograms. It errors when any fault is outstanding or the bottom-half
// queue is non-empty.
func (d *DSM) CaptureState() (DSMState, error) {
	var st DSMState
	if n := len(d.deferred); n > 0 {
		return st, fmt.Errorf("dsm: %d deferred requests queued", n)
	}
	pfns := d.Pages()
	for _, pfn := range pfns {
		pg := d.pages[pfn]
		for k, pf := range pg.pending {
			if pf != nil {
				return st, fmt.Errorf("dsm: kernel %v has a pending fault on page %d", soc.DomainID(k), pfn)
			}
		}
		ps := PageSnap{PFN: int(pfn), Owner: int(pg.owner)}
		for _, lv := range pg.level {
			ps.Levels = append(ps.Levels, int(lv))
		}
		for _, h := range pg.probOwner {
			ps.ProbOwner = append(ps.ProbOwner, int(h))
		}
		st.Pages = append(st.Pages, ps)
	}
	sort.Slice(st.Pages, func(i, j int) bool { return st.Pages[i].PFN < st.Pages[j].PFN })
	st.RequesterStats = append([]Stats(nil), d.RequesterStats...)
	for _, h := range d.FaultHist {
		st.FaultHist = append(st.FaultHist, h.CaptureState())
	}
	st.DeadReclaims = d.DeadReclaims
	return st, nil
}

// RestoreState rewinds a freshly constructed DSM (same platform and params)
// onto a captured state. OnFirstShare is NOT re-fired: the address-space
// state it feeds is restored separately by the OS.
func (d *DSM) RestoreState(st DSMState) error {
	if len(st.RequesterStats) != len(d.RequesterStats) {
		return fmt.Errorf("dsm: snapshot has %d kernels, platform %d", len(st.RequesterStats), len(d.RequesterStats))
	}
	n := d.SoC.NumDomains()
	d.pages = make(map[mem.PFN]*page, len(st.Pages))
	for _, ps := range st.Pages {
		pg := &page{
			level:   make([]Level, n),
			pending: make([]*pendingFault, n),
			owner:   soc.DomainID(ps.Owner),
		}
		for k, lv := range ps.Levels {
			pg.level[k] = Level(lv)
		}
		if len(ps.ProbOwner) > 0 {
			pg.probOwner = make([]soc.DomainID, n)
			for k := range pg.probOwner {
				pg.probOwner[k] = pg.owner
			}
			for k, h := range ps.ProbOwner {
				if k < n {
					pg.probOwner[k] = soc.DomainID(h)
				}
			}
		} else if d.Params.Protocol == MSI {
			pg.probOwner = make([]soc.DomainID, n)
			for k := range pg.probOwner {
				pg.probOwner[k] = pg.owner
			}
		}
		d.pages[mem.PFN(ps.PFN)] = pg
	}
	d.deferred = nil
	copy(d.RequesterStats, st.RequesterStats)
	for k, hs := range st.FaultHist {
		d.FaultHist[k].RestoreState(hs)
	}
	d.DeadReclaims = st.DeadReclaims
	return nil
}
