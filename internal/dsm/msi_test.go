package dsm

import (
	"testing"
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
)

func msiParams() Params {
	prm := DefaultParams()
	prm.Protocol = MSI
	return prm
}

// Under MSI a read fault installs a Shared replica without stealing the
// page: the owner keeps (a downgraded copy of) it, and the reader's later
// reads are free.
func TestMSIReadInstallsSharedCopy(t *testing.T) {
	e, s, d := rigN(2, msiParams())
	w2 := soc.DomainID(2)
	d.Share(7)
	e.Spawn("flow", func(p *sim.Proc) {
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 7)
		d.Read(p, s.Core(w2, 0), w2, 7)
		if d.Level(w2, 7) != Shared {
			t.Errorf("reader level = %v, want Shared", d.Level(w2, 7))
		}
		if d.Owner(7) != soc.Weak || d.Level(soc.Weak, 7) != Shared {
			t.Errorf("owner=%v level=%v, want a downgraded weak owner",
				d.Owner(7), d.Level(soc.Weak, 7))
		}
		faults := d.RequesterStats[w2].Faults
		d.Read(p, s.Core(w2, 0), w2, 7) // replica hit: no fault
		if got := d.RequesterStats[w2].Faults; got != faults {
			t.Errorf("second read faulted (%d -> %d)", faults, got)
		}
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	st := d.RequesterStats[w2]
	if st.ReadFaults != 1 || st.WriteFaults != 0 {
		t.Fatalf("read/write faults = %d/%d, want 1/0", st.ReadFaults, st.WriteFaults)
	}
	if err := d.CheckHintChains(); err != nil {
		t.Fatal(err)
	}
	checkInv(t, d)
}

// A write fault must invalidate every Shared replica with exact ack
// accounting: the writer's fault completes only once all sharers have
// answered, and both sides of the invalidation are counted.
func TestMSIWriteInvalidatesAllSharers(t *testing.T) {
	e, s, d := rigN(2, msiParams())
	w2 := soc.DomainID(2)
	d.Share(9)
	e.Spawn("flow", func(p *sim.Proc) {
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 9)
		d.Read(p, s.Core(w2, 0), w2, 9)
		d.Read(p, s.Core(soc.Strong, 0), soc.Strong, 9)
		if h := d.Holders(9); len(h) != 3 {
			t.Errorf("holders after reads = %v, want all three kernels", h)
		}
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 9) // upgrade: invalidate both sharers
		for _, k := range []soc.DomainID{soc.Strong, w2} {
			if d.Level(k, 9) != Invalid {
				t.Errorf("%v still holds the page after the upgrade", k)
			}
		}
		if d.Level(soc.Weak, 9) != Exclusive || d.Owner(9) != soc.Weak {
			t.Errorf("writer level=%v owner=%v", d.Level(soc.Weak, 9), d.Owner(9))
		}
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	c := d.Totals()
	if c.InvalidationsSent != 2 || c.InvalidationsAcked != 2 {
		t.Fatalf("invalidations sent/acked = %d/%d, want 2/2",
			c.InvalidationsSent, c.InvalidationsAcked)
	}
	if err := d.CheckHintChains(); err != nil {
		t.Fatal(err)
	}
	checkInv(t, d)
}

// A reader whose probOwner hint is stale must reach the owner through the
// forwarding chain, and the Put must compress its hint so the next miss goes
// direct.
func TestMSIProbOwnerForwarding(t *testing.T) {
	e, s, d := rigN(2, msiParams())
	w2 := soc.DomainID(2)
	d.Share(7)
	e.Spawn("flow", func(p *sim.Proc) {
		// weak takes ownership; w2's hint still points at the boot owner
		// (strong), which now only knows weak has the page.
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 7)
		d.Read(p, s.Core(w2, 0), w2, 7)
		if d.Level(w2, 7) != Shared {
			t.Errorf("level = %v after the chased read", d.Level(w2, 7))
		}
		if hops := d.RequesterStats[w2].ProbOwnerHops; hops != 1 {
			t.Errorf("probOwner hops = %d, want exactly 1 (strong -> weak)", hops)
		}
		// The Put compressed w2's hint straight to weak: invalidate the
		// replica and read again — no further hops.
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 7)
		d.Read(p, s.Core(w2, 0), w2, 7)
		if hops := d.RequesterStats[w2].ProbOwnerHops; hops != 1 {
			t.Errorf("hint not compressed: hops = %d after the second read", hops)
		}
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if c := d.Totals(); c.ForwardMaxDepth != 1 {
		t.Fatalf("forward max depth = %d, want 1", c.ForwardMaxDepth)
	}
	if err := d.CheckHintChains(); err != nil {
		t.Fatal(err)
	}
	checkInv(t, d)
}

// A read fault whose probOwner hint points at a crashed kernel must fall
// back to the directory entry instead of sending a Get into the void.
func TestMSIHintToCrashedDomainFallsBack(t *testing.T) {
	e, s, d := rigN(2, msiParams())
	w2 := soc.DomainID(2)
	d.Share(3)
	e.Spawn("flow", func(p *sim.Proc) {
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 3) // owner weak; w2's hint: strong
		s.Domains[soc.Strong].Crash()
		d.Read(p, s.Core(w2, 0), w2, 3)
		if d.Level(w2, 3) != Shared {
			t.Errorf("level = %v, want Shared via the directory fallback", d.Level(w2, 3))
		}
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	st := d.RequesterStats[w2]
	if st.ProbOwnerHops != 0 || st.Resends != 0 {
		t.Fatalf("hops=%d resends=%d, want 0/0: the fallback goes direct", st.ProbOwnerHops, st.Resends)
	}
}

// ReclaimDead must purge the dead kernel from every sharer set and repair
// every probOwner hint that pointed at it, leaving valid forwarding chains.
func TestMSIReclaimDeadRepairsHints(t *testing.T) {
	e, s, d := rigN(2, msiParams())
	w2 := soc.DomainID(2)
	d.Share(5)
	e.Spawn("flow", func(p *sim.Proc) {
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 5) // weak owns; hints lead to weak
		d.Read(p, s.Core(w2, 0), w2, 5)              // w2 shares, hint -> weak
	})
	e.At(sim.Time(10*time.Millisecond), func() { s.Domains[soc.Weak].Crash() })
	e.SpawnAt(sim.Time(11*time.Millisecond), "sweeper", func(p *sim.Proc) {
		s.Domains[soc.Strong].EnsureAwake(p)
		if n := d.ReclaimDead(p, s.Core(soc.Strong, 0), soc.Weak, soc.Strong); n == 0 {
			t.Error("ReclaimDead swept nothing")
		}
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if d.Owner(5) == soc.Weak {
		t.Fatal("dead kernel still owns the page")
	}
	if d.Level(soc.Weak, 5) != Invalid {
		t.Fatal("dead kernel still in the sharer set")
	}
	if err := d.CheckHintChains(); err != nil {
		t.Fatalf("hints not repaired after the sweep: %v", err)
	}
	checkInv(t, d)
}

// The default protocol must stay byte-for-byte the paper's two-state
// protocol: no probOwner metadata, no Shared installs on reads.
func TestTwoStateUnchangedByDefault(t *testing.T) {
	e, s, d := rigN(2, DefaultParams())
	w2 := soc.DomainID(2)
	d.Share(7)
	e.Spawn("flow", func(p *sim.Proc) {
		d.Write(p, s.Core(soc.Weak, 0), soc.Weak, 7)
		d.Read(p, s.Core(w2, 0), w2, 7) // a two-state read steals the only copy
		if d.Owner(7) != w2 || d.Level(w2, 7) != Exclusive {
			t.Errorf("owner=%v level=%v, want an exclusive steal", d.Owner(7), d.Level(w2, 7))
		}
		if d.Level(soc.Weak, 7) != Invalid {
			t.Error("previous owner kept a copy under two-state")
		}
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	c := d.Totals()
	if c.ReadFaults != 0 || c.WriteFaults != 0 || c.InvalidationsSent != 0 || c.ProbOwnerHops != 0 {
		t.Fatalf("MSI counters moved under two-state: %+v", c)
	}
	if err := d.CheckHintChains(); err != nil {
		t.Fatal(err)
	}
}
