package experiment

import (
	"fmt"
	"time"

	"k2/internal/core"
	"k2/internal/mem"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

// runThread spawns a thread of the given kind in its own process and
// returns an event fired when body completes.
func runThread(o *core.OS, kind sched.Kind, name string, after *sim.Event, body func(th *sched.Thread)) *sim.Event {
	done := sim.NewEvent(o.Eng)
	pr := o.SpawnProcess(name)
	pr.Spawn(kind, name, func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		if after != nil {
			th.Block(func(p *sim.Proc) { after.Wait(p) })
		}
		body(th)
		done.Fire()
	})
	return done
}

// Table4 measures physical-memory allocation and balloon latencies on both
// kernels (the paper's Table 4).
func Table4() Table {
	e, o := bootFresh(core.K2Mode)
	type meas struct{ main, shadow time.Duration }
	allocs := map[int]*meas{0: {}, 6: {}, 8: {}}
	balloonDef := &meas{}
	balloonInf := &meas{}

	measureAllocs := func(th *sched.Thread, k soc.DomainID, set func(m *meas, d time.Duration)) {
		b := o.Mem.Buddies[k]
		for _, order := range []int{0, 6, 8} {
			// Warm once so free lists are in steady state.
			if warm, err := b.Alloc(th.P(), th.Core(), order, mem.Unmovable); err == nil {
				b.Free(th.P(), th.Core(), warm)
			}
			start := th.P().Now()
			pfn, err := b.Alloc(th.P(), th.Core(), order, mem.Unmovable)
			if err != nil {
				panic(err)
			}
			set(allocs[order], th.P().Now().Sub(start))
			b.Free(th.P(), th.Core(), pfn)
		}
	}
	mainDone := runThread(o, sched.Normal, "alloc-main", nil, func(th *sched.Thread) {
		measureAllocs(th, soc.Strong, func(m *meas, d time.Duration) { m.main = d })
		start := th.P().Now()
		if _, err := o.Mem.DeflateBlock(th.P(), th.Core(), soc.Strong); err != nil {
			panic(err)
		}
		balloonDef.main = th.P().Now().Sub(start)
		start = th.P().Now()
		if _, err := o.Mem.InflateBlock(th.P(), th.Core(), soc.Strong); err != nil {
			panic(err)
		}
		balloonInf.main = th.P().Now().Sub(start)
	})
	runThread(o, sched.NightWatch, "alloc-shadow", mainDone, func(th *sched.Thread) {
		measureAllocs(th, soc.Weak, func(m *meas, d time.Duration) { m.shadow = d })
		start := th.P().Now()
		if _, err := o.Mem.DeflateBlock(th.P(), th.Core(), soc.Weak); err != nil {
			panic(err)
		}
		balloonDef.shadow = th.P().Now().Sub(start)
		start = th.P().Now()
		if _, err := o.Mem.InflateBlock(th.P(), th.Core(), soc.Weak); err != nil {
			panic(err)
		}
		balloonInf.shadow = th.P().Now().Sub(start)
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}

	us := func(d time.Duration) string { return fmt.Sprintf("%.0f", float64(d.Nanoseconds())/1e3) }
	t := Table{
		ID:     "Table 4",
		Title:  "latencies of physical memory allocations in K2 (µs)",
		Header: []string{"Allocation size", "Main", "paper", "Shadow", "paper"},
		Rows: [][]string{
			{"4KB", us(allocs[0].main), "1", us(allocs[0].shadow), "12"},
			{"256KB", us(allocs[6].main), "5", us(allocs[6].shadow), "45"},
			{"1024KB", us(allocs[8].main), "13", us(allocs[8].shadow), "146"},
			{"Balloon deflate", us(balloonDef.main), "10429", us(balloonDef.shadow), "12813"},
			{"Balloon inflate", us(balloonInf.main), "11612", us(balloonInf.shadow), "20408"},
		},
		Notes: []string{"the main kernel's allocator performance matches unmodified Linux (no inter-instance communication on the allocation path)"},
	}
	return t
}

// Table5 measures the breakdown of a DSM page fault for each sender side
// (the paper's Table 5), by ping-ponging a shared page between kernels on
// an otherwise idle system.
func Table5() Table {
	e, o := bootFresh(core.K2Mode)
	pfn, err := o.Mem.Buddies[soc.Strong].AllocBoot(0, mem.Unmovable)
	if err != nil {
		panic(err)
	}
	o.DSM.Share(pfn)
	const rounds = 40
	var mainDone *sim.Event
	shadowTurn := sim.NewEvent(e)
	mainDone = runThread(o, sched.Normal, "pingpong-main", nil, func(th *sched.Thread) {
		for i := 0; i < rounds; i++ {
			o.DSM.Write(th.P(), th.Core(), soc.Strong, pfn)
			th.SleepIdle(2 * time.Millisecond)
			if i == 0 {
				shadowTurn.Fire()
			}
			th.SleepIdle(2 * time.Millisecond)
		}
	})
	runThread(o, sched.NightWatch, "pingpong-shadow", shadowTurn, func(th *sched.Thread) {
		for i := 0; i < rounds; i++ {
			o.DSM.Write(th.P(), th.Core(), soc.Weak, pfn)
			th.SleepIdle(4 * time.Millisecond)
		}
	})
	_ = mainDone
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}

	ms := o.DSM.RequesterStats[soc.Strong]
	ss := o.DSM.RequesterStats[soc.Weak]
	if ms.Faults == 0 || ss.Faults == 0 {
		panic("experiment: ping-pong produced no faults")
	}
	per := func(total time.Duration, n int) string {
		return fmt.Sprintf("%.0f", float64(total.Nanoseconds())/float64(n)/1e3)
	}
	t := Table{
		ID:     "Table 5",
		Title:  "breakdown of the latency in a DSM page fault (µs), by GetExclusive sender",
		Header: []string{"Operations", "Main", "paper", "Shadow", "paper"},
		Rows: [][]string{
			{"Local fault handling", per(ms.Local, ms.Faults), "3", per(ss.Local, ss.Faults), "17"},
			{"Protocol execution", per(ms.Protocol, ms.Faults), "2", per(ss.Protocol, ss.Faults), "13"},
			{"Inter-domain communication", per(ms.Comm, ms.Faults), "5", per(ss.Comm, ss.Faults), "9"},
			{"Servicing request", per(ms.Servicing, ms.Faults), "24", per(ss.Servicing, ss.Faults), "7"},
			{"Exit fault, cache miss", per(ms.Exit, ms.Faults), "18", per(ss.Exit, ss.Faults), "2"},
			{"Total", per(ms.Total, ms.Faults), "52", per(ss.Total, ss.Faults), "48"},
		},
		Notes: []string{
			fmt.Sprintf("measured over %d faults per side on an idle system", ms.Faults),
			fmt.Sprintf("main-sender p50/p99: %v/%v; shadow-sender p50/p99: %v/%v",
				o.DSM.FaultHist[soc.Strong].Percentile(50), o.DSM.FaultHist[soc.Strong].Percentile(99),
				o.DSM.FaultHist[soc.Weak].Percentile(50), o.DSM.FaultHist[soc.Weak].Percentile(99)),
		},
	}
	return t
}

// dmaWindow drives full-speed DMA batches for a fixed window and returns
// per-kernel throughput in MB/s.
func dmaWindow(mode core.Mode, batch int64, window time.Duration, withShadow bool) (mainMBs, shadMBs float64) {
	e, o := bootFresh(mode)
	var mainBytes, shadBytes int64
	stop := false
	bench := func(counter *int64) func(th *sched.Thread) {
		return func(th *sched.Thread) {
			for !stop {
				o.DMA.Transfer(th, batch)
				if !stop {
					*counter += batch
				}
			}
		}
	}
	started := sim.NewEvent(e)
	runThread(o, sched.Normal, "dma-main", nil, func(th *sched.Thread) {
		started.Fire()
		bench(&mainBytes)(th)
	})
	if withShadow {
		runThread(o, sched.NightWatch, "dma-shadow", nil, bench(&shadBytes))
	}
	e.Spawn("window", func(p *sim.Proc) {
		started.Wait(p)
		p.Sleep(window)
		stop = true
		p.Sleep(2 * time.Second) // let in-flight transfers finish
		e.Stop()
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}
	toMBs := func(b int64) float64 { return float64(b) / 1e6 / window.Seconds() }
	return toMBs(mainBytes), toMBs(shadBytes)
}

// Table6 reproduces the shared-driver throughput experiment: both kernels
// invoke the DMA driver concurrently at full speed; the original Linux uses
// the strong domain only.
func Table6() Table {
	t := Table{
		ID:    "Table 6",
		Title: "DMA throughputs with the driver invoked in both kernels concurrently (MB/s)",
		Header: []string{"BatchSize", "Linux", "K2 total", "delta", "K2:Main", "K2:Shadow",
			"paper Linux", "paper K2", "paper Main", "paper Shadow"},
	}
	paper := map[int64][4]string{
		4 << 10:   {"37.8", "35.7", "35.6", "0.1"},
		128 << 10: {"40.3", "39.9", "28.4", "11.5"},
		256 << 10: {"40.3", "40.5", "28.6", "11.9"},
		1 << 20:   {"40.5", "43.1", "28.8", "14.3"},
	}
	window := 3 * time.Second
	for _, batch := range []int64{4 << 10, 128 << 10, 256 << 10, 1 << 20} {
		linux, _ := dmaWindow(core.LinuxMode, batch, window, false)
		k2Main, k2Shad := dmaWindow(core.K2Mode, batch, window, true)
		total := k2Main + k2Shad
		pv := paper[batch]
		t.Rows = append(t.Rows, []string{
			sz(batch), f1(linux), f1(total),
			fmt.Sprintf("%+.1f%%", (total/linux-1)*100),
			f1(k2Main), f1(k2Shad),
			pv[0], pv[1], pv[2], pv[3],
		})
	}
	t.Notes = append(t.Notes,
		"CPU-bound 4K batches starve the shadow kernel: its DSM faults wait for the main kernel's deferred bottom halves (§6.3)",
		"IO-bound batches keep the engine saturated from two queues, so K2's total can exceed Linux's")
	return t
}
