package experiment

import (
	"fmt"
	"time"

	"k2/internal/core"
	"k2/internal/mem"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

// runThread spawns a thread of the given kind in its own process and
// returns an event fired when body completes.
func runThread(o *core.OS, kind sched.Kind, name string, after *sim.Event, body func(th *sched.Thread)) *sim.Event {
	done := sim.NewEvent(o.Eng)
	pr := o.SpawnProcess(name)
	pr.Spawn(kind, name, func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		if after != nil {
			th.Block(func(p *sim.Proc) { after.Wait(p) })
		}
		body(th)
		done.Fire()
	})
	return done
}

// LatencyPair is one Table 4 measurement on each kernel, in µs.
type LatencyPair struct {
	MainUS   float64 `json:"main_us"`
	ShadowUS float64 `json:"shadow_us"`
}

// Table4Data is the measured content of Table 4.
type Table4Data struct {
	Alloc4KB       LatencyPair `json:"alloc_4kb"`
	Alloc256KB     LatencyPair `json:"alloc_256kb"`
	Alloc1024KB    LatencyPair `json:"alloc_1024kb"`
	BalloonDeflate LatencyPair `json:"balloon_deflate"`
	BalloonInflate LatencyPair `json:"balloon_inflate"`
}

// MeasureTable4 measures physical-memory allocation and balloon latencies on
// both kernels (the paper's Table 4).
func MeasureTable4() Table4Data {
	e, o := bootFresh(core.K2Mode)
	type meas struct{ main, shadow time.Duration }
	allocs := map[int]*meas{0: {}, 6: {}, 8: {}}
	balloonDef := &meas{}
	balloonInf := &meas{}

	measureAllocs := func(th *sched.Thread, k soc.DomainID, set func(m *meas, d time.Duration)) {
		b := o.Mem.Buddies[k]
		for _, order := range []int{0, 6, 8} {
			// Warm once so free lists are in steady state.
			if warm, err := b.Alloc(th.P(), th.Core(), order, mem.Unmovable); err == nil {
				b.Free(th.P(), th.Core(), warm)
			}
			start := th.P().Now()
			pfn, err := b.Alloc(th.P(), th.Core(), order, mem.Unmovable)
			if err != nil {
				panic(err)
			}
			set(allocs[order], th.P().Now().Sub(start))
			b.Free(th.P(), th.Core(), pfn)
		}
	}
	mainDone := runThread(o, sched.Normal, "alloc-main", nil, func(th *sched.Thread) {
		measureAllocs(th, soc.Strong, func(m *meas, d time.Duration) { m.main = d })
		start := th.P().Now()
		if _, err := o.Mem.DeflateBlock(th.P(), th.Core(), soc.Strong); err != nil {
			panic(err)
		}
		balloonDef.main = th.P().Now().Sub(start)
		start = th.P().Now()
		if _, err := o.Mem.InflateBlock(th.P(), th.Core(), soc.Strong); err != nil {
			panic(err)
		}
		balloonInf.main = th.P().Now().Sub(start)
	})
	runThread(o, sched.NightWatch, "alloc-shadow", mainDone, func(th *sched.Thread) {
		measureAllocs(th, soc.Weak, func(m *meas, d time.Duration) { m.shadow = d })
		start := th.P().Now()
		if _, err := o.Mem.DeflateBlock(th.P(), th.Core(), soc.Weak); err != nil {
			panic(err)
		}
		balloonDef.shadow = th.P().Now().Sub(start)
		start = th.P().Now()
		if _, err := o.Mem.InflateBlock(th.P(), th.Core(), soc.Weak); err != nil {
			panic(err)
		}
		balloonInf.shadow = th.P().Now().Sub(start)
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}

	pair := func(m *meas) LatencyPair {
		return LatencyPair{
			MainUS:   float64(m.main.Nanoseconds()) / 1e3,
			ShadowUS: float64(m.shadow.Nanoseconds()) / 1e3,
		}
	}
	d := Table4Data{
		Alloc4KB:       pair(allocs[0]),
		Alloc256KB:     pair(allocs[6]),
		Alloc1024KB:    pair(allocs[8]),
		BalloonDeflate: pair(balloonDef),
		BalloonInflate: pair(balloonInf),
	}
	deposit(func(pr *probe) { pr.t4 = &d })
	return d
}

// Table4 renders the paper's Table 4.
func Table4() Table {
	d := MeasureTable4()
	us := func(v float64) string { return fmt.Sprintf("%.0f", v) }
	t := Table{
		ID:     "Table 4",
		Title:  "latencies of physical memory allocations in K2 (µs)",
		Header: []string{"Allocation size", "Main", "paper", "Shadow", "paper"},
		Rows: [][]string{
			{"4KB", us(d.Alloc4KB.MainUS), "1", us(d.Alloc4KB.ShadowUS), "12"},
			{"256KB", us(d.Alloc256KB.MainUS), "5", us(d.Alloc256KB.ShadowUS), "45"},
			{"1024KB", us(d.Alloc1024KB.MainUS), "13", us(d.Alloc1024KB.ShadowUS), "146"},
			{"Balloon deflate", us(d.BalloonDeflate.MainUS), "10429", us(d.BalloonDeflate.ShadowUS), "12813"},
			{"Balloon inflate", us(d.BalloonInflate.MainUS), "11612", us(d.BalloonInflate.ShadowUS), "20408"},
		},
		Notes: []string{"the main kernel's allocator performance matches unmodified Linux (no inter-instance communication on the allocation path)"},
	}
	return t
}

// FaultBreakdown is one sender side of Table 5: the per-fault cost of each
// phase in µs.
type FaultBreakdown struct {
	Faults      int           `json:"faults"`
	LocalUS     float64       `json:"local_us"`
	ProtocolUS  float64       `json:"protocol_us"`
	CommUS      float64       `json:"comm_us"`
	ServicingUS float64       `json:"servicing_us"`
	ExitUS      float64       `json:"exit_us"`
	TotalUS     float64       `json:"total_us"`
	P50         time.Duration `json:"p50_ns"`
	P99         time.Duration `json:"p99_ns"`
}

// Table5Data is the measured content of Table 5.
type Table5Data struct {
	Main   FaultBreakdown `json:"main_sender"`
	Shadow FaultBreakdown `json:"shadow_sender"`
}

// MeasureTable5 measures the breakdown of a DSM page fault for each sender
// side (the paper's Table 5), by ping-ponging a shared page between kernels
// on an otherwise idle system.
func MeasureTable5() Table5Data {
	e, o := bootFresh(core.K2Mode)
	pfn, err := o.Mem.Buddies[soc.Strong].AllocBoot(0, mem.Unmovable)
	if err != nil {
		panic(err)
	}
	o.DSM.Share(pfn)
	const rounds = 40
	var mainDone *sim.Event
	shadowTurn := sim.NewEvent(e)
	mainDone = runThread(o, sched.Normal, "pingpong-main", nil, func(th *sched.Thread) {
		for i := 0; i < rounds; i++ {
			o.DSM.Write(th.P(), th.Core(), soc.Strong, pfn)
			th.SleepIdle(2 * time.Millisecond)
			if i == 0 {
				shadowTurn.Fire()
			}
			th.SleepIdle(2 * time.Millisecond)
		}
	})
	runThread(o, sched.NightWatch, "pingpong-shadow", shadowTurn, func(th *sched.Thread) {
		for i := 0; i < rounds; i++ {
			o.DSM.Write(th.P(), th.Core(), soc.Weak, pfn)
			th.SleepIdle(4 * time.Millisecond)
		}
	})
	_ = mainDone
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}

	breakdown := func(k soc.DomainID) FaultBreakdown {
		st := o.DSM.RequesterStats[k]
		if st.Faults == 0 {
			panic("experiment: ping-pong produced no faults")
		}
		per := func(total time.Duration) float64 {
			return float64(total.Nanoseconds()) / float64(st.Faults) / 1e3
		}
		return FaultBreakdown{
			Faults:      st.Faults,
			LocalUS:     per(st.Local),
			ProtocolUS:  per(st.Protocol),
			CommUS:      per(st.Comm),
			ServicingUS: per(st.Servicing),
			ExitUS:      per(st.Exit),
			TotalUS:     per(st.Total),
			P50:         o.DSM.FaultHist[k].Percentile(50),
			P99:         o.DSM.FaultHist[k].Percentile(99),
		}
	}
	d := Table5Data{Main: breakdown(soc.Strong), Shadow: breakdown(soc.Weak)}
	deposit(func(pr *probe) { pr.t5 = &d })
	return d
}

// Table5 renders the paper's Table 5.
func Table5() Table {
	d := MeasureTable5()
	ms, ss := d.Main, d.Shadow
	us := func(v float64) string { return fmt.Sprintf("%.0f", v) }
	t := Table{
		ID:     "Table 5",
		Title:  "breakdown of the latency in a DSM page fault (µs), by GetExclusive sender",
		Header: []string{"Operations", "Main", "paper", "Shadow", "paper"},
		Rows: [][]string{
			{"Local fault handling", us(ms.LocalUS), "3", us(ss.LocalUS), "17"},
			{"Protocol execution", us(ms.ProtocolUS), "2", us(ss.ProtocolUS), "13"},
			{"Inter-domain communication", us(ms.CommUS), "5", us(ss.CommUS), "9"},
			{"Servicing request", us(ms.ServicingUS), "24", us(ss.ServicingUS), "7"},
			{"Exit fault, cache miss", us(ms.ExitUS), "18", us(ss.ExitUS), "2"},
			{"Total", us(ms.TotalUS), "52", us(ss.TotalUS), "48"},
		},
		Notes: []string{
			fmt.Sprintf("measured over %d faults per side on an idle system", ms.Faults),
			fmt.Sprintf("main-sender p50/p99: %v/%v; shadow-sender p50/p99: %v/%v",
				ms.P50, ms.P99, ss.P50, ss.P99),
		},
	}
	return t
}

// dmaWindow drives full-speed DMA batches for a fixed window and returns
// per-kernel throughput in MB/s.
func dmaWindow(mode core.Mode, batch int64, window time.Duration, withShadow bool) (mainMBs, shadMBs float64) {
	e, o := bootFresh(mode)
	var mainBytes, shadBytes int64
	stop := false
	bench := func(counter *int64) func(th *sched.Thread) {
		return func(th *sched.Thread) {
			for !stop {
				o.DMA.Transfer(th, batch)
				if !stop {
					*counter += batch
				}
			}
		}
	}
	started := sim.NewEvent(e)
	runThread(o, sched.Normal, "dma-main", nil, func(th *sched.Thread) {
		started.Fire()
		bench(&mainBytes)(th)
	})
	if withShadow {
		runThread(o, sched.NightWatch, "dma-shadow", nil, bench(&shadBytes))
	}
	e.Spawn("window", func(p *sim.Proc) {
		started.Wait(p)
		p.Sleep(window)
		stop = true
		p.Sleep(2 * time.Second) // let in-flight transfers finish
		e.Stop()
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}
	toMBs := func(b int64) float64 { return float64(b) / 1e6 / window.Seconds() }
	return toMBs(mainBytes), toMBs(shadBytes)
}

// DMAThroughput is one Table 6 row: MB/s with the driver invoked in both
// kernels concurrently versus the Linux baseline.
type DMAThroughput struct {
	Batch    int64   `json:"batch_bytes"`
	LinuxMBs float64 `json:"linux_mbs"`
	MainMBs  float64 `json:"k2_main_mbs"`
	ShadMBs  float64 `json:"k2_shadow_mbs"`
}

// MeasureTable6 measures the shared-driver throughput experiment: both
// kernels invoke the DMA driver concurrently at full speed; the original
// Linux uses the strong domain only.
func MeasureTable6() []DMAThroughput {
	window := 3 * time.Second
	var out []DMAThroughput
	for _, batch := range []int64{4 << 10, 128 << 10, 256 << 10, 1 << 20} {
		linux, _ := dmaWindow(core.LinuxMode, batch, window, false)
		k2Main, k2Shad := dmaWindow(core.K2Mode, batch, window, true)
		out = append(out, DMAThroughput{Batch: batch, LinuxMBs: linux, MainMBs: k2Main, ShadMBs: k2Shad})
	}
	deposit(func(pr *probe) { pr.t6 = out })
	return out
}

// Table6 renders the paper's Table 6.
func Table6() Table {
	t := Table{
		ID:    "Table 6",
		Title: "DMA throughputs with the driver invoked in both kernels concurrently (MB/s)",
		Header: []string{"BatchSize", "Linux", "K2 total", "delta", "K2:Main", "K2:Shadow",
			"paper Linux", "paper K2", "paper Main", "paper Shadow"},
	}
	paper := map[int64][4]string{
		4 << 10:   {"37.8", "35.7", "35.6", "0.1"},
		128 << 10: {"40.3", "39.9", "28.4", "11.5"},
		256 << 10: {"40.3", "40.5", "28.6", "11.9"},
		1 << 20:   {"40.5", "43.1", "28.8", "14.3"},
	}
	for _, row := range MeasureTable6() {
		total := row.MainMBs + row.ShadMBs
		pv := paper[row.Batch]
		t.Rows = append(t.Rows, []string{
			sz(row.Batch), f1(row.LinuxMBs), f1(total),
			fmt.Sprintf("%+.1f%%", (total/row.LinuxMBs-1)*100),
			f1(row.MainMBs), f1(row.ShadMBs),
			pv[0], pv[1], pv[2], pv[3],
		})
	}
	t.Notes = append(t.Notes,
		"CPU-bound 4K batches starve the shadow kernel: its DSM faults wait for the main kernel's deferred bottom halves (§6.3)",
		"IO-bound batches keep the engine saturated from two queues, so K2's total can exceed Linux's")
	return t
}
