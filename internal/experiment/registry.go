package experiment

import "strings"

// Def is one registered experiment: a stable ID (the k2bench -only key),
// a human-readable name and the function that reproduces the table.
type Def struct {
	ID   string
	Name string
	Run  func() Table
}

// Registry returns every experiment of the reproduction in paper order.
// The slice is freshly allocated; callers may filter it freely.
func Registry() []Def {
	return []Def{
		{"t1", "Table 1 (platform cores)", Table1},
		{"f1", "Figure 1 (SoC trend)", Figure1},
		{"t2", "Table 2 analog (service classes)", Table2},
		{"t3", "Table 3 (core power)", Table3},
		{"f6a", "Figure 6(a) DMA energy", Figure6a},
		{"f6b", "Figure 6(b) ext2 energy", Figure6b},
		{"f6c", "Figure 6(c) UDP energy", Figure6c},
		{"standby", "Standby estimate (§9.2)", StandbyEstimate},
		{"timeline", "Standby timeline (§9.2, simulated hours)", StandbyTimeline},
		{"timeout", "Sensitivity: inactive timeout", TimeoutSensitivity},
		{"day", "Day-in-life (foreground + background)", DayInLife},
		{"t4", "Table 4 (allocation latency)", Table4},
		{"t5", "Table 5 (DSM fault breakdown)", Table5},
		{"t6", "Table 6 (shared DMA throughput)", Table6},
		{"a1", "Ablation §9.3 (shadowed allocator)", AblationSharedAllocator},
		{"a2", "Ablation §6.3 (three-state protocol)", AblationThreeState},
		{"a3", "Ablation DESIGN §5 (inactive-peer claim)", AblationInactiveClaim},
		{"a4", "Ablation §6.2 (movable placement)", AblationPlacementPolicy},
		{"a5", "Ablation §8 (suspend-ack overlap)", AblationSuspendOverlap},
		{"scale", "Scale (1/2/4 weak domains)", Scale},
		{"dsmshare", "DSM protocol ablation (two-state vs MSI/probOwner)", DSMShare},
		{"faults", "Fault injection + recovery", Faults},
		{"chaos", "Chaos sweep (random storms + invariant oracle)", Chaos},
		{"replication", "Replication ablation (NMR voting vs watchdog recovery)", Replication},
	}
}

// Params configure a parameterized instance of a registered experiment.
// The zero value means "as registered": every experiment accepts it, and
// DefFor with zero Params returns exactly the registry entry's behaviour.
type Params struct {
	// Seed overrides the fault-injection PRNG seed for the faults
	// experiment (0 = the process-wide FaultSeed default). Same
	// experiment + same seed means byte-identical output, which is the
	// determinism contract k2d exposes.
	Seed int64
	// WeakDomains, if non-zero, narrows the scale experiment to a single
	// platform with this many weak domains instead of the 1/2/4 sweep, and
	// sizes the platform of the chaos sweep (default 2).
	WeakDomains int
	// Sweep, if non-zero, sets how many seeded storms the chaos experiment
	// runs (default 8 for the registry entry; k2bench -chaos uses 256) and
	// how many the replication ablation replays per degree (default 4).
	Sweep int
	// Replicas, if non-zero, narrows the replication ablation to a single
	// replication degree instead of the R ∈ {1,2,3} sweep. Like Seed and
	// WeakDomains it changes output bytes, so k2d folds it into the
	// result-cache and fleet shard keys.
	Replicas int
	// EngineParallel, if > 1, runs the instance's engines under the
	// parallel event scheduler (internal/pdes) with that many workers.
	// Unlike the fields above it cannot change a single output byte —
	// the parallel engine is dispatch-order-identical by construction —
	// so k2d validates and echoes it but deliberately excludes it from
	// the result-cache and fleet shard keys. It is applied by the
	// measuring layer (WithEngineParallel), not bound into the Def.
	EngineParallel int
}

// DefFor resolves a registry ID to a Def bound to the given params. The
// binding closes over the param values — unlike the registry entries it
// never reads process-wide state at run time, so concurrent DefFor jobs
// with different params cannot race (this is what k2d dispatches). Unknown
// IDs report ok == false; params that an experiment does not understand
// are ignored.
func DefFor(id string, p Params) (Def, bool) {
	for _, d := range Registry() {
		if d.ID != id {
			continue
		}
		switch id {
		case "faults":
			seed := p.Seed
			if seed == 0 {
				seed = FaultSeed
			}
			d.Run = func() Table { return FaultsSeed(seed) }
		case "scale":
			if p.WeakDomains > 0 {
				weak := p.WeakDomains
				d.Run = func() Table { return ScaleN(weak) }
			}
		case "dsmshare":
			if p.WeakDomains > 0 {
				weak := p.WeakDomains
				d.Run = func() Table { return DSMShareN(weak) }
			}
		case "chaos":
			seed := p.Seed
			if seed == 0 {
				seed = ChaosSeed
			}
			weak, sweep := p.WeakDomains, p.Sweep
			d.Run = func() Table { return ChaosSweep(seed, weak, sweep, 0) }
		case "replication":
			seed := p.Seed
			if seed == 0 {
				seed = ReplicationSeed
			}
			weak, sweep, reps := p.WeakDomains, p.Sweep, p.Replicas
			d.Run = func() Table { return ReplicationSweep(seed, weak, sweep, 0, reps) }
		}
		return d, true
	}
	return Def{}, false
}

// Select filters the registry down to the comma-separated IDs in only
// (whitespace around IDs is ignored). An empty only selects everything;
// unknown IDs simply match nothing, mirroring the historical k2bench
// behavior of reporting "no experiment matched".
func Select(only string) []Def {
	defs := Registry()
	if only == "" {
		return defs
	}
	want := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		want[strings.TrimSpace(id)] = true
	}
	var out []Def
	for _, d := range defs {
		if want[d.ID] {
			out = append(out, d)
		}
	}
	return out
}
