package experiment

import (
	"context"
	"fmt"
	"sort"
	"time"

	"k2/internal/chaos"
	"k2/internal/check"
	"k2/internal/core"
	"k2/internal/dsm"
	"k2/internal/replica"
	"k2/internal/sim"
	"k2/internal/soc"
)

// ReplicationSeed seeds the replication ablation's storm derivation (the
// k2bench -seed flag under -only replication). Same base seed + same sweep
// size means the identical storm set and a byte-identical summary.
var ReplicationSeed int64 = 1

// Replicas is the process-wide replication-degree override for the
// replication experiment: 0 sweeps R ∈ {1,2,3}; > 0 narrows the ablation to
// that single degree. k2bench/k2sim -replicas set it; k2d jobs use
// Params.Replicas instead (bound per job, never this variable).
var Replicas int

// repVoteTimeout is the vote-point deadline the ablation platforms run:
// comfortably above the reliable transport's worst-case retransmit latency
// (8 retries x 25 µs), far below the watchdog-and-reboot recovery path it
// competes with.
const repVoteTimeout = 500 * time.Microsecond

// repMachine is the deterministic state machine every replication run
// votes on: 36 vote points of 4 splitmix steps, ~1 ms apart — a cadence
// the storms (5–50 ms, reboots 10–40 ms later) repeatedly interrupt.
func repMachine() replica.Machine {
	return replica.Machine{
		Init:         0x9E3779B97F4A7C15,
		Step:         repStep,
		StepWork:     soc.Work(5 * time.Microsecond),
		StepsPerVote: 4,
		VotePoints:   36,
		Idle:         time.Millisecond,
	}
}

// repStep is a splitmix64-style mix of (votePoint, step) into the state: a
// pure function, so healthy replicas can never disagree.
func repStep(votePoint, step int, state uint64) uint64 {
	x := state + (uint64(votePoint)<<32 | uint64(step+1))
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// replicationStorm derives a storm aimed at the replica neighborhood:
// domains weak..weak3 host the initial replica set at every degree, so
// faults there are the ones voting must mask (chaos.Generate's uniform
// draw over 16+ domains would rarely touch a replica). The first event
// always crashes or hangs weak — the R=1 replica's home — so every storm
// also exercises the unreplicated baseline's watchdog-and-reboot path.
func replicationStorm(seed int64, weak int) chaos.Storm {
	span := 3
	if weak < span {
		span = weak
	}
	r := sim.NewRand(seed)
	var st chaos.Storm
	n := 2 + r.Intn(3)
	for i := 0; i < n; i++ {
		kind := r.Intn(3)
		dom := soc.DomainID(1 + r.Intn(span))
		if i == 0 {
			kind = r.Intn(2) // crash or hang, never just an IRQ
			dom = soc.Weak
		}
		at := 5*time.Millisecond + r.Duration(25*time.Millisecond)
		reboot := 8*time.Millisecond + r.Duration(17*time.Millisecond)
		line := soc.IRQLine(r.Intn(4))
		switch kind {
		case 0:
			st.Events = append(st.Events, chaos.Event{Kind: chaos.Crash, Dom: dom, At: at, Reboot: reboot})
		case 1:
			st.Events = append(st.Events, chaos.Event{Kind: chaos.Hang, Dom: dom, At: at, Reboot: reboot})
		default:
			st.Events = append(st.Events, chaos.Event{Kind: chaos.IRQ, Line: line, At: at})
		}
	}
	st.Links.DropP = r.Float64() * 0.02
	st.Links.DelayP = r.Float64() * 0.02
	st.Links.DelayMax = 5*time.Microsecond + r.Duration(20*time.Microsecond)
	st.Links.DupP = r.Float64() * 0.01
	sort.SliceStable(st.Events, func(i, j int) bool { return st.Events[i].At < st.Events[j].At })
	return st
}

// repRun is the raw outcome of one replication run (one storm, or the
// fault-free baseline).
type repRun struct {
	commits    []replica.Commit
	gaps       []time.Duration
	flags      []replica.Flag
	votes      uint64
	quorum     uint64
	timeouts   uint64
	reints     uint64
	sweeps     uint64
	deaths     int
	reboots    int
	energyMJ   float64
	violations []check.Violation
}

func (r repRun) maxGap() time.Duration {
	var max time.Duration
	for _, g := range r.gaps {
		if g > max {
			max = g
		}
	}
	return max
}

// replicationRun boots the standard recovery platform with the voter
// attached (R replicas, the watchdog armed underneath as backstop), starts
// one replicated group, arms the storm, and audits the run with the full
// invariant oracle — the replication checks included. corrupt scripts one
// seed-derived digest divergence when R can outvote it (a strict majority
// of honest replicas, R >= 3).
func replicationRun(seed int64, weak, r int, storm *chaos.Storm, corrupt bool) repRun {
	e, o := bootFresh(core.K2Mode, func(op *core.Options) {
		op.WeakDomains = weak
		scfg := soc.DefaultConfig().WithWeakDomains(weak)
		rel := soc.DefaultReliableParams()
		scfg.Reliable = &rel
		op.SoC = &scfg
		wd := core.DefaultWatchdogParams()
		op.Watchdog = &wd
		prm := dsm.DefaultParams()
		prm.OwnerTimeout = 200 * time.Microsecond
		proto := DSMProtocol
		if pr := activeProbe(); pr != nil && pr.dsmProtocolSet {
			proto = pr.dsmProtocol
		}
		prm.Protocol = proto
		op.DSMParams = &prm
		op.Replication = &replica.Params{R: r, VoteTimeout: repVoteTimeout}
	})
	suite := check.New(o)

	spec := replica.GroupSpec{Name: "rep", Machine: repMachine()}
	if corrupt && r >= 3 {
		// One scripted divergence per storm, derived from the seed: the
		// replica votes a poisoned digest at one point and the honest
		// majority must outvote it on the spot.
		rng := sim.NewRand(seed ^ 0x5eed)
		mach := spec.Machine
		badRep, badVP := rng.Intn(r), 8+rng.Intn(mach.VotePoints-16)
		spec.Corrupt = func(rep, vp int) bool { return rep == badRep && vp == badVP }
	}
	g, err := o.Replicas.StartGroup(spec)
	if err != nil {
		panic(err)
	}
	suite.Obligation("replication-group", g.Done)

	var st chaos.Storm
	if storm != nil {
		st = *storm
	}
	plan := st.Plan(seed)
	plan.Arm(o.S, o.Trace)

	var res repRun
	finished := false
	check.ScheduleChecks(e, suite, 25*time.Millisecond, 150*time.Millisecond, 25*time.Millisecond,
		func() bool { return finished },
		func(vs []check.Violation) { res.violations = append(res.violations, vs...) })

	finish := func(vs []check.Violation) {
		res.violations = append(res.violations, vs...)
		finished = true
		m := o.Replicas
		res.commits = g.Commits()
		res.gaps = g.CommitGaps()
		res.flags = m.Flags()
		res.votes, res.quorum, res.timeouts = m.Votes, m.QuorumCommits, m.TimeoutCommits
		res.reints, res.sweeps = m.Reintegrations, m.SweptDomains
		if o.Watchdog != nil {
			res.deaths = len(o.Watchdog.Deaths)
			res.reboots = o.Watchdog.Reboots
		}
		res.energyMJ = o.EnergyJ() * 1e3
		e.Stop()
	}

	settle := func(now sim.Time) {
		at := now
		if last := sim.Time(st.LastEffect()); last > at {
			at = last
		}
		at += sim.Time(8 * time.Millisecond)
		e.At(at, func() {
			if finished {
				return
			}
			e.Spawn("rep-settle", func(p *sim.Proc) {
				quiesced := suite.SettleSweep(p)
				if finished {
					return
				}
				suite.RequireQuiescent = quiesced
				vs := suite.Final()
				if !quiesced {
					vs = append(vs, check.Violation{Oracle: "liveness",
						Msg: "transport/bottom-half never quiesced within the settle window"})
				}
				finish(vs)
			})
		})
	}
	e.Spawn("rep-monitor", func(p *sim.Proc) {
		g.Done.Wait(p)
		settle(p.Now())
	})

	// Hard backstop: a wedged group (every replica dead with no reboot — a
	// hand-written storm can do that) is audited as-is; the unfired Done
	// obligation becomes the liveness report.
	hardAt := sim.Time(500 * time.Millisecond)
	if last := sim.Time(2*st.LastEffect()) + sim.Time(200*time.Millisecond); last > hardAt {
		hardAt = last
	}
	e.At(hardAt, func() {
		if finished {
			return
		}
		vs := suite.Final()
		vs = append(vs, check.Violation{Oracle: "liveness",
			Msg: "run did not complete within the hard deadline"})
		finish(vs)
	})

	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}
	res.violations = dedupViolations(res.violations)
	return res
}

// dedupViolations drops repeats (a persistent failure trips every quiesce
// check) while preserving first-occurrence order.
func dedupViolations(vs []check.Violation) []check.Violation {
	seen := make(map[string]bool, len(vs))
	var out []check.Violation
	for _, v := range vs {
		k := v.Oracle + "\x00" + v.Msg
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// ReplicationFailure records one storm run that tripped an oracle under a
// given replication degree.
type ReplicationFailure struct {
	R          int      `json:"r"`
	Seed       int64    `json:"seed"`
	Storm      string   `json:"storm"`
	Violations []string `json:"violations"`
	Repro      string   `json:"repro"`
}

// ReplicationCase aggregates one replication degree over the whole storm
// set (the same storms are replayed at every degree, so the columns compare
// like for like).
type ReplicationCase struct {
	R      int `json:"r"`
	Storms int `json:"storms"`

	Votes          uint64 `json:"votes"`
	QuorumCommits  uint64 `json:"quorum_commits"`
	TimeoutCommits uint64 `json:"timeout_commits"`
	Outvoted       int    `json:"outvoted"`      // replicas flagged (any reason)
	MaskedFaults   int    `json:"masked_faults"` // implicated outvotes
	Reintegrations uint64 `json:"reintegrations"`
	ManagerSweeps  uint64 `json:"manager_sweeps"` // reclaims run ahead of the watchdog
	WatchdogDeaths int    `json:"watchdog_deaths"`
	Reboots        int    `json:"reboots"`

	// Gap metrics are the workload-visible progress cadence: the max/mean
	// inter-commit interval over every storm run, against the fault-free
	// baseline of the same degree. RecoveryMaxMS is the worst-case added
	// stall a fault caused — the number replication exists to drive to zero.
	BaseMaxGapMS  float64 `json:"base_max_gap_ms"`
	MaxGapMS      float64 `json:"max_gap_ms"`
	MeanGapMS     float64 `json:"mean_gap_ms"`
	RecoveryMaxMS float64 `json:"recovery_max_ms"`

	// EnergyMJ is the mean per-storm platform energy — the price of the
	// redundant executions.
	EnergyMJ     float64 `json:"energy_mj"`
	BaseEnergyMJ float64 `json:"base_energy_mj"`

	Failures int `json:"failures"` // storm runs with >= 1 violation
}

// ReplicationData is the machine-readable summary of one replication
// ablation: per-degree aggregates over a shared storm set.
type ReplicationData struct {
	BaseSeed      int64                `json:"base_seed"`
	WeakDomains   int                  `json:"weak_domains"`
	Sweep         int                  `json:"sweep"`
	VoteTimeoutUS int64                `json:"vote_timeout_us"`
	Cases         []ReplicationCase    `json:"cases"`
	Failing       []ReplicationFailure `json:"failing,omitempty"`
}

// replicationRepro renders the single-line reproduction command for one
// failing storm run.
func replicationRepro(seed int64, weak, r, sweep int) string {
	return fmt.Sprintf("k2bench -only=replication -seed=%d -replicas=%d -weakdomains=%d -sweep=%d",
		seed, r, weak, sweep)
}

// MeasureReplicationSweep replays sweep seeded crash storms (derived from
// baseSeed) at every requested replication degree on a platform with weak
// weak domains, with the invariant oracle — replication checks included —
// attached to every run, and compares each degree's commit cadence and
// digest sequence against its own fault-free baseline. replicas narrows the
// degree set to one value; 0 sweeps {1, 2, 3}. The summary depends only on
// (baseSeed, weak, sweep, replicas) — never on parallel or wall-clock.
func MeasureReplicationSweep(baseSeed int64, weak, sweep, parallel, replicas int) ReplicationData {
	if weak <= 0 {
		weak = 16
	}
	if sweep <= 0 {
		sweep = 4
	}
	rs := []int{1, 2, 3}
	if replicas > 0 {
		rs = []int{replicas}
	}
	// A degree needs that many distinct weak domains; drop what cannot fit
	// (e.g. -weakdomains=1 narrows the ablation to R=1).
	fit := rs[:0]
	for _, r := range rs {
		if r <= weak {
			fit = append(fit, r)
		}
	}
	rs = fit
	d := ReplicationData{
		BaseSeed: baseSeed, WeakDomains: weak, Sweep: sweep,
		VoteTimeoutUS: repVoteTimeout.Microseconds(),
	}

	// One storm set, derived once from the base seed and replayed at every
	// degree: the ablation's axes differ only in R.
	rng := sim.NewRand(baseSeed)
	seeds := make([]int64, sweep)
	storms := make([]chaos.Storm, sweep)
	for i := range seeds {
		seeds[i] = int64(rng.Uint64() >> 1)
		storms[i] = replicationStorm(seeds[i], weak)
	}

	ctx := context.Background()
	if pr := activeProbe(); pr != nil && pr.ctx != nil {
		ctx = pr.ctx
	}

	type cell struct{ run repRun }
	runs := make([]cell, len(rs)*sweep)
	bases := make([]repRun, len(rs))
	var defs []Def
	for ri, r := range rs {
		ri, r := ri, r
		defs = append(defs, Def{ID: fmt.Sprintf("rep-base-%d", r), Name: "replication baseline", Run: func() Table {
			bases[ri] = replicationRun(baseSeed, weak, r, nil, false)
			return Table{}
		}})
		for i := range storms {
			i := i
			defs = append(defs, Def{ID: fmt.Sprintf("rep-%d-%d", r, i), Name: "replication storm", Run: func() Table {
				runs[ri*sweep+i] = cell{run: replicationRun(seeds[i], weak, r, &storms[i], true)}
				return Table{}
			}})
		}
	}
	results := Runner{Parallel: parallel}.RunContext(ctx, defs)
	if err := ctx.Err(); err != nil {
		panic(err) // cancelled mid-sweep: surface it through MeasureContext
	}
	deposit(func(pr *probe) {
		for _, res := range results {
			if res.probe != nil {
				pr.engines = append(pr.engines, res.probe.engines...)
				pr.warmStarts += res.WarmStarts
			}
		}
	})

	for ri, r := range rs {
		base := bases[ri]
		c := ReplicationCase{R: r, Storms: sweep}
		c.BaseMaxGapMS = float64(base.maxGap().Microseconds()) / 1e3
		c.BaseEnergyMJ = base.energyMJ
		var gapSum time.Duration
		var gapN int
		for i := 0; i < sweep; i++ {
			run := runs[ri*sweep+i].run
			vs := run.violations
			// The masking proof: the committed digest sequence under the
			// storm must be the fault-free sequence — a fault may cost
			// latency (R=1's watchdog path) but never a wrong or missing
			// commit.
			if len(run.commits) != len(base.commits) {
				vs = append(vs, check.Violation{Oracle: "replication", Msg: fmt.Sprintf(
					"storm run committed %d vote points, fault-free baseline %d",
					len(run.commits), len(base.commits))})
			} else {
				for p := range run.commits {
					if run.commits[p].Digest != base.commits[p].Digest {
						vs = append(vs, check.Violation{Oracle: "replication", Msg: fmt.Sprintf(
							"vote point %d committed %#x, fault-free baseline %#x",
							p, run.commits[p].Digest, base.commits[p].Digest)})
						break
					}
				}
			}
			c.Votes += run.votes
			c.QuorumCommits += run.quorum
			c.TimeoutCommits += run.timeouts
			c.Reintegrations += run.reints
			c.ManagerSweeps += run.sweeps
			c.WatchdogDeaths += run.deaths
			c.Reboots += run.reboots
			c.EnergyMJ += run.energyMJ / float64(sweep)
			c.Outvoted += len(run.flags)
			for _, f := range run.flags {
				if f.Implicated {
					c.MaskedFaults++
				}
			}
			if mg := float64(run.maxGap().Microseconds()) / 1e3; mg > c.MaxGapMS {
				c.MaxGapMS = mg
			}
			for _, g := range run.gaps {
				gapSum += g
				gapN++
			}
			if len(vs) > 0 {
				c.Failures++
				f := ReplicationFailure{
					R: r, Seed: seeds[i], Storm: storms[i].String(),
					Repro: replicationRepro(baseSeed, weak, r, sweep),
				}
				for _, v := range vs {
					f.Violations = append(f.Violations, v.String())
				}
				d.Failing = append(d.Failing, f)
			}
		}
		if gapN > 0 {
			c.MeanGapMS = float64((gapSum / time.Duration(gapN)).Microseconds()) / 1e3
		}
		c.RecoveryMaxMS = c.MaxGapMS - c.BaseMaxGapMS
		d.Cases = append(d.Cases, c)
	}
	deposit(func(pr *probe) { pr.replication = &d })
	return d
}

// ReplicationResult returns the ablation summary a measured replication run
// deposited, or nil when the experiment was not the replication sweep (k2d
// feeds this into its replica metrics).
func (r Result) ReplicationResult() *ReplicationData {
	if r.probe == nil {
		return nil
	}
	return r.probe.replication
}

// Replication reports the registry-sized ablation: R ∈ {1,2,3} (or the
// -replicas override) over 4 shared storms on 16 weak domains.
func Replication() Table {
	return ReplicationSweep(ReplicationSeed, 0, 0, 0, Replicas)
}

// ReplicationSweep is Replication with explicit base seed, platform width,
// sweep size, parallelism and degree (zeros mean the defaults: 16 weak
// domains, 4 storms, GOMAXPROCS workers, the {1,2,3} degree sweep).
func ReplicationSweep(baseSeed int64, weak, sweep, parallel, replicas int) Table {
	return MeasureReplicationSweep(baseSeed, weak, sweep, parallel, replicas).Table()
}

// Table renders the ablation summary.
func (d ReplicationData) Table() Table {
	t := Table{
		ID: "Replication",
		Title: fmt.Sprintf(
			"NMR voting vs watchdog recovery: %d shared storms on %d weak domains (base seed %d, vote timeout %d µs)",
			d.Sweep, d.WeakDomains, d.BaseSeed, d.VoteTimeoutUS),
		Header: []string{"R", "commits q/t", "masked", "reint", "wd deaths",
			"max gap ms (fault-free)", "worst added stall ms", "energy mJ (fault-free)"},
	}
	for _, c := range d.Cases {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c.R),
			fmt.Sprintf("%d/%d", c.QuorumCommits, c.TimeoutCommits),
			fmt.Sprintf("%d", c.MaskedFaults),
			fmt.Sprintf("%d", c.Reintegrations),
			fmt.Sprintf("%d", c.WatchdogDeaths),
			fmt.Sprintf("%.3f (%.3f)", c.MaxGapMS, c.BaseMaxGapMS),
			fmt.Sprintf("%.3f", c.RecoveryMaxMS),
			fmt.Sprintf("%.1f (%.1f)", c.EnergyMJ, c.BaseEnergyMJ),
		})
	}
	for _, f := range d.Failing {
		t.Notes = append(t.Notes, fmt.Sprintf("FAIL R=%d seed=%d %s", f.R, f.Seed, f.Repro))
		for _, v := range f.Violations {
			t.Notes = append(t.Notes, "  "+v)
		}
	}
	t.Notes = append(t.Notes,
		"every degree replays the identical storm set; a replicated group of 36 vote points runs through each storm",
		"masked = outvoted replicas traced to an injected fault; the digest sequence must equal the fault-free baseline's",
		"worst added stall = max inter-commit gap minus the fault-free max: R=1 pays the watchdog-and-reboot path, R=3 votes past it",
		"same base seed => the identical storm set and a byte-identical summary, at any parallelism")
	return t
}
