package experiment

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"k2/internal/trace"
)

// measureAt runs one def at the given engine parallelism, capturing the
// rendered table and the full live trace stream.
func measureAt(d Def, parallel int) (table, traces string, r Result) {
	var tb strings.Builder
	r = MeasureContext(context.Background(), d,
		WithEngineParallel(parallel),
		WithTraceSink(func(ev trace.Event) {
			fmt.Fprintf(&tb, "%d %d %d %s\n", ev.Seq, int64(ev.At), ev.Kind, ev.Msg)
		}))
	return r.Table.String(), tb.String(), r
}

// TestEngineParallelByteIdentity is the tentpole acceptance test: the full
// experiment registry must produce byte-identical tables AND byte-identical
// live trace streams at engine parallelism 1, 2 and 4. The parallel engine
// only moves event-queue maintenance onto workers — dispatch replays every
// window in global (time, seq) order on the engine goroutine — so any
// diverging byte here is a real ordering bug, not a tolerance question.
// CI runs this under -race, which doubles as the data-race proof for the
// window barrier protocol.
func TestEngineParallelByteIdentity(t *testing.T) {
	for _, d := range Registry() {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			baseTable, baseTrace, baseR := measureAt(d, 1)
			if baseR.EngineParallel != 1 {
				t.Fatalf("sequential run reports EngineParallel = %d", baseR.EngineParallel)
			}
			for _, par := range []int{2, 4} {
				table, traces, r := measureAt(d, par)
				if r.EngineParallel != par {
					t.Fatalf("parallel run reports EngineParallel = %d, want %d",
						r.EngineParallel, par)
				}
				if table != baseTable {
					t.Fatalf("table diverged at engine parallelism %d\n--- sequential ---\n%s\n--- parallel %d ---\n%s",
						par, baseTable, par, table)
				}
				if traces != baseTrace {
					t.Fatalf("trace stream diverged at engine parallelism %d (%d vs %d bytes)",
						par, len(baseTrace), len(traces))
				}
				// The dispatch path is shared, so the engine counters — not
				// just the rendered bytes — must agree exactly.
				if r.Stats.Dispatched != baseR.Stats.Dispatched ||
					r.Stats.Scheduled != baseR.Stats.Scheduled ||
					r.Stats.Cancelled != baseR.Stats.Cancelled ||
					r.Stats.ProcSwitches != baseR.Stats.ProcSwitches {
					t.Fatalf("engine counters diverged at parallelism %d:\nseq: %+v\npar: %+v",
						par, baseR.Stats, r.Stats)
				}
				if len(r.PartitionEvents) != len(baseR.PartitionEvents) {
					t.Fatalf("partition counter shape diverged: %d vs %d",
						len(baseR.PartitionEvents), len(r.PartitionEvents))
				}
				for i := range r.PartitionEvents {
					if r.PartitionEvents[i] != baseR.PartitionEvents[i] {
						t.Fatalf("partition %d dispatch count diverged: %d vs %d",
							i, baseR.PartitionEvents[i], r.PartitionEvents[i])
					}
				}
			}
		})
	}
}

// TestPartitionEventsObserveDomains checks the partition telemetry is real:
// a 4-weak-domain scale run must attribute events to every domain partition,
// not lump them into the shared partition.
func TestPartitionEventsObserveDomains(t *testing.T) {
	d, ok := DefFor("scale", Params{WeakDomains: 4})
	if !ok {
		t.Fatal("scale not registered")
	}
	r := MeasureContext(context.Background(), d, WithEngineParallel(2))
	// Partitions: shared, strong, weak..weak4 (plus the two-domain engines
	// some sub-measurements boot). At least strong and two weak partitions
	// must have seen traffic.
	if len(r.PartitionEvents) < 6 {
		t.Fatalf("partition counters too small: %v", r.PartitionEvents)
	}
	nonzero := 0
	for _, n := range r.PartitionEvents[1:] {
		if n > 0 {
			nonzero++
		}
	}
	if nonzero < 3 {
		t.Fatalf("only %d domain partitions saw events: %v", nonzero, r.PartitionEvents)
	}
	var sum uint64
	for _, n := range r.PartitionEvents {
		sum += n
	}
	if sum != r.Stats.Dispatched {
		t.Fatalf("partition counters sum to %d, engine dispatched %d", sum, r.Stats.Dispatched)
	}
}

// TestEngineParallelSpeedupSmoke asserts the point of the subsystem on
// multicore hosts: at 16 weak domains the parallel engine must not be slower
// than the sequential one. Hosts without enough cores (CI containers are
// often 1-2 vCPU) skip — there is nothing to parallelize onto, and the
// byte-identity tests above still cover correctness.
func TestEngineParallelSpeedupSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup smoke needs full runs")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; speedup needs >= 4", runtime.NumCPU())
	}
	d, ok := DefFor("scale", Params{WeakDomains: 16})
	if !ok {
		t.Fatal("scale not registered")
	}
	// Warm both paths once (snapshot caches, allocator warmup), then time.
	MeasureContext(context.Background(), d, WithEngineParallel(1))
	seq := MeasureContext(context.Background(), d, WithEngineParallel(1))
	par := MeasureContext(context.Background(), d, WithEngineParallel(4))
	if par.Table.String() != seq.Table.String() {
		t.Fatal("speedup smoke runs diverged — determinism bug")
	}
	seqRate := seq.Stats.EventsPerSec()
	parRate := par.Stats.EventsPerSec()
	t.Logf("events/sec: sequential %.0f, parallel(4) %.0f (%.2fx), wall %v vs %v",
		seqRate, parRate, parRate/seqRate, seq.Wall, par.Wall)
	// Allow 10% noise: the requirement is "not slower", measured on the
	// engine dispatch rate the -json telemetry exposes.
	if parRate < seqRate*0.90 {
		t.Fatalf("parallel engine slower: %.0f ev/s vs sequential %.0f ev/s",
			parRate, seqRate)
	}
}

// TestEngineParallelCancellation proves cooperative interrupt polling keeps
// working mid-window: a cancelled context stops a parallel run promptly with
// the context's error and leaks nothing.
func TestEngineParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first interrupt poll must stop the run
	d, ok := DefFor("timeline", Params{})
	if !ok {
		t.Fatal("timeline not registered")
	}
	start := time.Now()
	r := MeasureContext(ctx, d, WithEngineParallel(4))
	if r.Err == nil {
		t.Fatal("cancelled parallel measurement reported no error")
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("cancelled run took %v to stop", el)
	}
}
