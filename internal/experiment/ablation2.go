package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"k2/internal/core"
	"k2/internal/dsm"
	"k2/internal/mem"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/workload"
)

// AblationInactiveClaim quantifies the derived mechanism documented in
// DESIGN.md §5: resolving a DSM fault against an *inactive* peer by
// claiming ownership through the shared protocol metadata, instead of
// sending GetExclusive through the mailbox (which wakes the peer). Without
// it, every light-task episode wakes the strong domain — and the wake flips
// the shared-interrupt masks back, dragging service state to the main
// kernel — so §9.2's energy benefits collapse.
func AblationInactiveClaim() Table {
	cfg := soc.DefaultConfig()
	cfg.StrongFreqMHz = 350
	run := func(disable bool) workload.Result {
		prm := dsm.DefaultParams()
		prm.DisableInactiveClaim = disable
		e, o := bootFresh(core.K2Mode, func(op *core.Options) {
			op.SoC = &cfg
			op.DSMParams = &prm
		})
		res, err := workload.MeasureEpisode(e, o, workload.DMA(o, 16<<10, 128<<10))
		if err != nil {
			panic(err)
		}
		return res
	}
	with := run(false)
	without := run(true)
	return Table{
		ID:     "Ablation (DESIGN §5)",
		Title:  "inactive-peer ownership claim: K2 light-task episode (DMA 16Kx8)",
		Header: []string{"configuration", "energy (mJ)", "MB/J", "strong wakes"},
		Rows: [][]string{
			{"with local claim (K2)", f2(with.EnergyJ * 1e3), f2(with.EfficiencyMBJ()),
				fmt.Sprintf("%d", with.StrongWakes)},
			{"mailbox-only faults", f2(without.EnergyJ * 1e3), f2(without.EfficiencyMBJ()),
				fmt.Sprintf("%d", without.StrongWakes)},
		},
		Notes: []string{
			"without the claim path the episode wakes the strong domain and pays its idle tail, erasing most of the energy win",
		},
	}
}

// AblationPlacementPolicy quantifies §6.2's optimization 3: placing movable
// pages near the balloon frontier with best effort, so page blocks there
// can be evacuated on inflation. A vanilla buddy (no migrate-type
// placement) sprinkles unmovable pages across blocks and pins them.
func AblationPlacementPolicy() Table {
	run := func(noPolicy bool) (unpinned int, blocks int) {
		e, s, fr := ablationRig()
		b := mem.NewBuddy(soc.Strong, fr, mem.DefaultCostModel(), true)
		b.NoPlacementPolicy = noPolicy
		const nblocks = 6
		b.AddRegion(0, nblocks*mem.BlockPages)

		// A realistic mix: ~75% movable (user data), ~25% unmovable
		// (kernel objects), with churn; fill ~55% of memory.
		rng := rand.New(rand.NewSource(42))
		var live []mem.PFN
		ok := false
		e.Spawn("fill", func(p *sim.Proc) {
			core := s.Core(soc.Strong, 0)
			target := nblocks * mem.BlockPages * 55 / 100
			used := 0
			for used < target {
				mt := mem.Movable
				if rng.Intn(4) == 0 {
					mt = mem.Unmovable
				}
				order := rng.Intn(3)
				pfn, err := b.Alloc(p, core, order, mt)
				if err != nil {
					break
				}
				live = append(live, pfn)
				used += 1 << order
				// Churn: occasionally free an old allocation.
				if len(live) > 8 && rng.Intn(3) == 0 {
					i := rng.Intn(len(live))
					b.Free(p, core, live[i])
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					// used is approximate under churn; that is fine.
				}
			}
			// Count blocks not pinned by any unmovable page: those are the
			// ones the balloon could reclaim (capacity permitting).
			for blk := mem.PFN(0); blk < nblocks*mem.BlockPages; blk += mem.BlockPages {
				pinned := false
				for i := blk; i < blk+mem.BlockPages; i++ {
					if fr.Allocated(i) && fr.Type(i) == mem.Unmovable {
						pinned = true
						break
					}
				}
				if !pinned {
					unpinned++
				}
			}
			ok = true
		})
		if err := e.Run(sim.Time(time.Hour)); err != nil {
			panic(err)
		}
		if !ok {
			panic("experiment: placement fill did not finish")
		}
		return unpinned, nblocks
	}
	withPol, n := run(false)
	withoutPol, _ := run(true)
	return Table{
		ID:     "Ablation §6.2",
		Title:  "movable-page placement near the balloon frontier (reclaimable blocks at 55% occupancy)",
		Header: []string{"configuration", "blocks not pinned by unmovable pages", "of"},
		Rows: [][]string{
			{"frontier placement (K2)", fmt.Sprintf("%d", withPol), fmt.Sprintf("%d", n)},
			{"vanilla buddy placement", fmt.Sprintf("%d", withoutPol), fmt.Sprintf("%d", n)},
		},
		Notes: []string{
			"movable pages constitute 70-80% of total pages on mobile systems (§6.2); steering unmovable ones away from the frontier keeps blocks reclaimable",
		},
	}
}

func ablationRig() (*sim.Engine, *soc.SoC, *mem.Frames) {
	e := newEngine()
	s := soc.New(e, soc.DefaultConfig())
	fr := mem.NewFrames(s.Pages(), s.Cfg.PageSize)
	return e, s, fr
}

// AblationSuspendOverlap quantifies §8's optimization of overlapping the
// SuspendNW ack wait with the context switch: the main kernel's extra
// schedule-in cost drops from a full message round trip to 1-2 µs.
func AblationSuspendOverlap() Table {
	measure := func(noOverlap bool) time.Duration {
		e, o := bootFresh(core.K2Mode)
		o.Sched.NoSuspendOverlap = noOverlap
		pr := o.SpawnProcess("app")
		pr.Spawn(sched.NightWatch, "w", func(th *sched.Thread) {
			th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
			for i := 0; i < 10000; i++ {
				th.Exec(soc.Work(5 * time.Microsecond))
				th.SleepIdle(100 * time.Microsecond)
			}
		})
		// A prior occupant so schedule-in includes a context switch.
		warm := o.SpawnProcess("warm")
		warm.Spawn(sched.Normal, "x", func(th *sched.Thread) {
			th.Exec(soc.Work(100 * time.Microsecond))
		})
		warm.Spawn(sched.Normal, "x2", func(th *sched.Thread) {
			th.Exec(soc.Work(100 * time.Microsecond))
		})
		var latency time.Duration
		e.At(sim.Time(10*time.Millisecond), func() {
			spawned := e.Now()
			pr.Spawn(sched.Normal, "n", func(th *sched.Thread) {
				th.Exec(soc.Work(time.Microsecond))
				latency = th.P().Now().Sub(spawned) - time.Microsecond
			})
		})
		if err := e.Run(sim.Time(time.Second)); err != nil {
			panic(err)
		}
		return latency
	}
	with := measure(false)
	without := measure(true)
	us := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3) }
	return Table{
		ID:     "Ablation §8",
		Title:  "overlapping the SuspendNW ack with the context switch (normal-thread schedule-in, µs)",
		Header: []string{"configuration", "schedule-in latency", "overhead vs context switch"},
		Rows: [][]string{
			{"overlapped (K2)", us(with), us(with - 3500*time.Nanosecond)},
			{"sequential", us(without), us(without - 3500*time.Nanosecond)},
		},
		Notes: []string{
			"a message round trip is ~5 µs and a context switch 3-4 µs, so overlapping leaves only 1-2 µs of exposed latency (§8)",
		},
	}
}
