package experiment

import (
	"testing"
)

// The replication ablation's headline claim, asserted: over the shared
// storm set, R=1 pays the watchdog detect-and-reboot path as worst-case
// added stall while R=3's voting quorum masks the same faults for a small
// fraction of it — with every storm run passing the full oracle suite, and
// every outvote implicated by an injected fault.
func TestReplicationSweepMasksFaults(t *testing.T) {
	d := MeasureReplicationSweep(1, 0, 2, 0, 0)
	if len(d.Cases) != 3 {
		t.Fatalf("%d cases, want the R in {1,2,3} sweep", len(d.Cases))
	}
	if len(d.Failing) != 0 {
		t.Fatalf("oracle failures: %+v", d.Failing)
	}
	byR := map[int]ReplicationCase{}
	for _, c := range d.Cases {
		if c.Failures != 0 {
			t.Fatalf("R=%d had %d failing storm runs", c.R, c.Failures)
		}
		byR[c.R] = c
	}
	r1, r3 := byR[1], byR[3]
	if r1.MaskedFaults != 0 {
		t.Fatalf("R=1 masked %d faults — an unreplicated group cannot outvote anything", r1.MaskedFaults)
	}
	if r1.WatchdogDeaths == 0 {
		t.Fatal("R=1 storms never hit the watchdog backstop — the storm generator misses the replica domains")
	}
	if r1.RecoveryMaxMS < 5 {
		t.Fatalf("R=1 worst added stall %.3f ms — too small to be the watchdog-and-reboot path", r1.RecoveryMaxMS)
	}
	if r3.MaskedFaults == 0 {
		t.Fatal("R=3 masked no faults over the storm set")
	}
	if r3.Reintegrations == 0 {
		t.Fatal("R=3 outvoted replicas were never re-integrated")
	}
	if r3.RecoveryMaxMS > 1 {
		t.Fatalf("R=3 worst added stall %.3f ms — voting did not mask the storms (R=1 pays %.3f ms)",
			r3.RecoveryMaxMS, r1.RecoveryMaxMS)
	}
	if r3.RecoveryMaxMS*5 > r1.RecoveryMaxMS {
		t.Fatalf("R=3 stall %.3f ms not drastically below R=1's %.3f ms", r3.RecoveryMaxMS, r1.RecoveryMaxMS)
	}
	// The redundancy costs energy: R=3's fault-free baseline burns more
	// than R=1's.
	if r3.BaseEnergyMJ <= r1.BaseEnergyMJ {
		t.Fatalf("R=3 baseline energy %.1f mJ not above R=1's %.1f mJ", r3.BaseEnergyMJ, r1.BaseEnergyMJ)
	}
}

// Same base seed, same summary — at any runner fan-out. The table is the
// byte-level contract k2d caches on.
func TestReplicationSweepDeterministic(t *testing.T) {
	a := ReplicationSweep(7, 0, 2, 0, 0).String()
	b := ReplicationSweep(7, 0, 2, 4, 0).String()
	if a != b {
		t.Fatalf("summary depends on runner parallelism:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// Params plumbing: the registry binding narrows the ablation to a single
// degree and re-seeds it, exactly what k2d dispatches.
func TestReplicationDefForNarrows(t *testing.T) {
	d, ok := DefFor("replication", Params{Seed: 5, Sweep: 1, Replicas: 2})
	if !ok {
		t.Fatal("replication not registered")
	}
	tb := d.Run()
	if len(tb.Rows) != 1 {
		t.Fatalf("%d rows, want the single narrowed degree", len(tb.Rows))
	}
	if tb.Rows[0][0] != "2" {
		t.Fatalf("row degree %q, want 2", tb.Rows[0][0])
	}
}
