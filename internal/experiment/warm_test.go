package experiment

import (
	"context"
	"strings"
	"testing"

	"k2/internal/trace"
)

// measureWithTrace runs one def with a trace collector attached and returns
// the rendered table plus the full event stream every booted system emitted.
func measureWithTrace(t *testing.T, d Def, opts ...Option) (string, string) {
	t.Helper()
	var events strings.Builder
	opts = append(opts, WithTraceSink(func(ev trace.Event) {
		events.WriteString(ev.String())
		events.WriteByte('\n')
	}))
	r := MeasureContext(context.Background(), d, opts...)
	if r.Err != nil {
		t.Fatalf("%s: %v", d.ID, r.Err)
	}
	return r.Table.String(), events.String()
}

// The tentpole acceptance invariant at the experiment layer: for every
// registry experiment, a warm-started run (boots restored from a cached
// checkpoint) produces the same table bytes and the same trace stream as a
// cold run.
func TestSnapshotRestoreByteIdentity(t *testing.T) {
	for _, d := range Registry() {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			t.Parallel()
			coldTable, coldTrace := measureWithTrace(t, d)
			warmTable, warmTrace := measureWithTrace(t, d, WithWarmStart())
			if coldTable != warmTable {
				t.Errorf("table diverged:\n--- cold ---\n%s\n--- warm ---\n%s", coldTable, warmTable)
			}
			if coldTrace != warmTrace {
				c, w := strings.Split(coldTrace, "\n"), strings.Split(warmTrace, "\n")
				i := 0
				for i < len(c) && i < len(w) && c[i] == w[i] {
					i++
				}
				cl, wl := "(end)", "(end)"
				if i < len(c) {
					cl = c[i]
				}
				if i < len(w) {
					wl = w[i]
				}
				t.Errorf("trace stream diverged at line %d (of %d cold / %d warm):\ncold: %s\nwarm: %s",
					i, len(c), len(w), cl, wl)
			}
		})
	}
}

// A warm-started measurement actually warm-starts: the probe records
// checkpoint restores and a boot/episode wall split for experiments that
// boot through bootFresh.
func TestWarmStartTelemetry(t *testing.T) {
	d, ok := DefFor("t4", Params{})
	if !ok {
		t.Fatal("registry has no t4")
	}
	// Prime the checkpoint cache, then measure warm.
	_ = MeasureContext(context.Background(), d, WithWarmStart())
	r := MeasureContext(context.Background(), d, WithWarmStart())
	if r.WarmStarts == 0 {
		t.Fatal("warm measurement reported zero warm starts")
	}
	if r.Boot <= 0 || r.Boot > r.Wall {
		t.Fatalf("boot wall %v out of range (wall %v)", r.Boot, r.Wall)
	}
	cold := MeasureContext(context.Background(), d)
	if cold.WarmStarts != 0 {
		t.Fatalf("cold measurement reported %d warm starts", cold.WarmStarts)
	}
}
