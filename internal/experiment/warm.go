package experiment

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"k2/internal/check"
	"k2/internal/core"
	"k2/internal/sim"
)

// This file is the experiment layer's checkpoint cache: one booted-OS
// snapshot per distinct boot configuration, built lazily on first use and
// shared by every warm-started measurement in the process (k2d keeps one
// process alive across jobs, so repeat jobs skip the boot entirely). The
// cache is sound because core snapshots are deep and reusable — restoring
// one cannot perturb it — and because a checkpoint is only kept when the
// source system passed the invariant oracle at the capture point.

// optionsKey fingerprints the boot options that determine a booted system's
// state. Pointer-valued options are dereferenced so the key reflects
// configuration, not addresses; TraceSink is excluded (a live subscriber,
// never part of the snapshot).
func optionsKey(o core.Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%v weak=%d disk=%d tracecap=%d sensor=%v main=%d shadow=%d",
		o.Mode, o.WeakDomains, o.DiskBlocks, o.TraceCapacity, o.SensorPeriod,
		o.InitialMainBlocks, o.InitialShadowBlocks)
	if o.SoC != nil {
		c := *o.SoC
		if c.Reliable != nil {
			fmt.Fprintf(&b, " rel=%+v", *c.Reliable)
			c.Reliable = nil
		}
		fmt.Fprintf(&b, " soc=%+v", c)
	}
	if o.DSMParams != nil {
		fmt.Fprintf(&b, " dsm=%+v", *o.DSMParams)
	}
	if o.Watchdog != nil {
		fmt.Fprintf(&b, " wd=%+v", *o.Watchdog)
	}
	if o.Replication != nil {
		fmt.Fprintf(&b, " rep=%+v", *o.Replication)
	}
	return b.String()
}

// snapEntry memoises one boot checkpoint — or the reason one could not be
// taken, so a platform that cannot quiesce is probed exactly once and every
// later boot falls straight through to the cold path.
type snapEntry struct {
	once sync.Once
	snp  *core.Snapshot
	err  error
}

var snapCache sync.Map // optionsKey -> *snapEntry

// readySnapshot returns the process-wide checkpoint of a system booted with
// exactly these options, building it on first request.
func readySnapshot(o core.Options) (*core.Snapshot, error) {
	key := optionsKey(o)
	v, _ := snapCache.LoadOrStore(key, &snapEntry{})
	ent := v.(*snapEntry)
	ent.once.Do(func() { ent.snp, ent.err = buildSnapshot(o) })
	return ent.snp, ent.err
}

// buildSnapshot boots a throwaway source system on a plain engine (never
// probe-registered: the source is not part of any measurement), runs it to
// the boot-ready barrier, audits it with the invariant oracle, and captures
// it. Any failure — boot error, non-quiescent platform, oracle violation —
// is returned and cached; callers fall back to cold boots.
func buildSnapshot(o core.Options) (snp *core.Snapshot, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("experiment: checkpoint boot panicked: %v", rec)
		}
	}()
	o.TraceSink = nil
	// The throwaway source system boots sequentially: a checkpoint is
	// byte-identical either way, and a plain engine leaves no scheduler
	// workers behind when the source is discarded.
	o.EngineParallel = 0
	e := sim.NewEngine()
	var os *core.OS
	e.Spawn("boot-monitor", func(p *sim.Proc) {
		os.Ready.Wait(p)
		e.Stop()
	})
	if os, err = core.Boot(e, o); err != nil {
		return nil, err
	}
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		return nil, err
	}
	if !os.Ready.Fired() {
		return nil, fmt.Errorf("experiment: boot never reached the ready barrier")
	}
	snp, err = os.Snapshot()
	if err != nil {
		return nil, err
	}
	// Audit the source at the capture point: a checkpoint of a system that
	// already violates an invariant must never be served.
	if vs := check.New(os).Check(); len(vs) > 0 {
		return nil, fmt.Errorf("experiment: source system unsound at capture: %v", vs[0])
	}
	return snp, nil
}
