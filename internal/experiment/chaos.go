package experiment

import (
	"context"
	"fmt"

	"k2/internal/chaos"
	"k2/internal/dsm"
	"k2/internal/sim"
)

// ChaosSeed seeds the chaos sweep's storm derivation (the k2bench -seed
// flag under -chaos). Same base seed + same sweep size means the identical
// set of storms and a byte-identical summary.
var ChaosSeed int64 = 1

// chaosOracles is the fixed reporting order of the oracle families.
var chaosOracles = []string{"dsm", "memory", "energy", "liveness", "convergence"}

// ChaosFailure records one storm that tripped an oracle: the schedule, the
// violations, a copy-pasteable repro command, and — for the first few
// failures — the shrunk minimal schedule.
type ChaosFailure struct {
	Seed        int64    `json:"seed"`
	Storm       string   `json:"storm"`
	Violations  []string `json:"violations"`
	Repro       string   `json:"repro"`
	ShrunkStorm string   `json:"shrunk_storm,omitempty"`
	ShrunkRepro string   `json:"shrunk_repro,omitempty"`
}

// ChaosData is the machine-readable summary of one chaos sweep: per-oracle
// pass/fail counts over every storm, aggregate recovery traffic, and the
// failing storms with their repro lines.
type ChaosData struct {
	BaseSeed    int64  `json:"base_seed"`
	WeakDomains int    `json:"weak_domains"`
	Sweep       int    `json:"sweep"`
	Protocol    string `json:"protocol"`
	Failures    int    `json:"failures"`

	OraclePass map[string]int `json:"oracle_pass"`
	OracleFail map[string]int `json:"oracle_fail"`

	// Aggregates over every run, in seed order.
	Deaths       int `json:"deaths"`
	Reboots      int `json:"reboots"`
	MailsDropped int `json:"mails_dropped"`
	Retransmits  int `json:"retransmits"`
	StaleFrees   int `json:"stale_frees"`

	// DSM sums the coherence-protocol counters over every storm run.
	DSM *dsm.Counters `json:"dsm_counters,omitempty"`

	Failing []ChaosFailure `json:"failing,omitempty"`
}

// MeasureChaosSweep runs sweep seeded storms (derived from baseSeed) on a
// platform with weak weak domains, fanning them across the runner's worker
// pool, with the full invariant oracle plus the convergence comparison
// against the fault-free baseline on every run. The first few failing
// storms are shrunk to minimal schedules. The summary depends only on
// (baseSeed, weak, sweep) — never on parallel or wall-clock — so repeated
// sweeps are byte-identical.
func MeasureChaosSweep(baseSeed int64, weak, sweep, parallel int) ChaosData {
	if weak <= 0 {
		weak = 2
	}
	if sweep <= 0 {
		sweep = 8
	}
	// The sweep honours the session protocol: the k2bench -dsm-protocol
	// package default, or the per-measurement override (k2d's per-job
	// protocol field).
	proto := DSMProtocol
	if pr := activeProbe(); pr != nil && pr.dsmProtocolSet {
		proto = pr.dsmProtocol
	}
	d := ChaosData{
		BaseSeed: baseSeed, WeakDomains: weak, Sweep: sweep, Protocol: proto.String(),
		OraclePass: map[string]int{}, OracleFail: map[string]int{},
	}

	// Warm-started sweeps (k2d -warm-start) restore every per-storm boot
	// from the cached platform checkpoint; results are byte-identical
	// either way, so the summary stays a function of (baseSeed, weak,
	// sweep) alone.
	ckpt := false
	if pr := activeProbe(); pr != nil && pr.warmStart {
		ckpt = true
	}

	// The convergence baseline: the same workload and platform, zero storm.
	base := chaos.Run(chaos.Config{WeakDomains: weak, Protocol: proto, Storm: &chaos.Storm{}, NewEngine: newEngine, Checkpoint: ckpt})

	rng := sim.NewRand(baseSeed)
	seeds := make([]int64, sweep)
	for i := range seeds {
		seeds[i] = int64(rng.Uint64() >> 1)
	}

	ctx := context.Background()
	if pr := activeProbe(); pr != nil && pr.ctx != nil {
		ctx = pr.ctx
	}

	runs := make([]chaos.Result, sweep)
	defs := make([]Def, sweep)
	for i := range defs {
		i := i
		defs[i] = Def{ID: fmt.Sprintf("chaos-%d", i), Name: "chaos storm", Run: func() Table {
			r := chaos.Run(chaos.Config{Seed: seeds[i], WeakDomains: weak, Protocol: proto, NewEngine: newEngine, Checkpoint: ckpt})
			r.Violations = append(r.Violations, chaos.Diverges(base, r)...)
			runs[i] = r
			return Table{}
		}}
	}
	results := Runner{Parallel: parallel}.RunContext(ctx, defs)
	if err := ctx.Err(); err != nil {
		panic(err) // cancelled mid-sweep: surface it through MeasureContext
	}
	// Hand the per-seed engines to the sweep's own probe so the telemetry
	// (events dispatched, virtual time) covers the whole fan-out, and
	// count the boots served from the platform checkpoint.
	deposit(func(pr *probe) {
		for _, res := range results {
			if res.probe != nil {
				pr.engines = append(pr.engines, res.probe.engines...)
			}
		}
		if base.Restored {
			pr.warmStarts++
		}
		for _, r := range runs {
			if r.Restored {
				pr.warmStarts++
			}
		}
	})

	const maxShrink = 5
	var dsmTotals dsm.Counters
	for _, r := range runs {
		dsmTotals.Add(r.DSM)
		failed := map[string]bool{}
		for _, v := range r.Violations {
			failed[v.Oracle] = true
		}
		for _, orc := range chaosOracles {
			if failed[orc] {
				d.OracleFail[orc]++
			} else {
				d.OraclePass[orc]++
			}
		}
		d.Deaths += r.Deaths
		d.Reboots += r.Reboots
		d.MailsDropped += r.Mail.Dropped
		d.Retransmits += r.Mail.Retransmits
		d.StaleFrees += r.StaleFrees
		if len(r.Violations) == 0 {
			continue
		}
		d.Failures++
		f := ChaosFailure{
			Seed:  r.Seed,
			Storm: r.Storm.String(),
			Repro: chaos.ReproCommand(r.Seed, weak, r.Storm, proto),
		}
		for _, v := range r.Violations {
			f.Violations = append(f.Violations, v.String())
		}
		if d.Failures <= maxShrink {
			seed := r.Seed
			// Shrinking always forks candidates from the platform
			// checkpoint: each predicate run replays only its post-boot
			// suffix, and checkpointing cannot change the verdict.
			fails := func(st chaos.Storm) bool {
				rr := chaos.Run(chaos.Config{Seed: seed, WeakDomains: weak, Protocol: proto, Storm: &st, NewEngine: newEngine, Checkpoint: true})
				return len(rr.Violations) > 0 || len(chaos.Diverges(base, rr)) > 0
			}
			shrunk := chaos.Shrink(r.Storm, fails, 200)
			f.ShrunkStorm = shrunk.String()
			f.ShrunkRepro = chaos.ReproCommand(seed, weak, shrunk, proto)
		}
		d.Failing = append(d.Failing, f)
	}
	d.DSM = &dsmTotals
	deposit(func(pr *probe) { pr.chaos = &d })
	return d
}

// ChaosResult returns the sweep summary a measured chaos run deposited, or
// nil when the experiment was not a chaos sweep (k2d feeds this into its
// per-oracle metrics).
func (r Result) ChaosResult() *ChaosData {
	if r.probe == nil {
		return nil
	}
	return r.probe.chaos
}

// Chaos reports the registry-sized chaos sweep: 8 storms on the default
// two-weak-domain platform. k2bench -chaos runs the full 256-storm sweep.
func Chaos() Table { return ChaosSweep(ChaosSeed, 0, 0, 0) }

// ChaosSweep is Chaos with explicit base seed, platform width, sweep size
// and parallelism (zeros mean the defaults: 2 weak domains, 8 storms,
// GOMAXPROCS workers).
func ChaosSweep(baseSeed int64, weak, sweep, parallel int) Table {
	return MeasureChaosSweep(baseSeed, weak, sweep, parallel).Table()
}

// Table renders the sweep summary (k2bench prints this in -chaos mode).
func (d ChaosData) Table() Table {
	title := fmt.Sprintf("%d random fault storms on %d weak domains (base seed %d), every oracle checked",
		d.Sweep, d.WeakDomains, d.BaseSeed)
	if d.Protocol != "" && d.Protocol != dsm.TwoState.String() {
		title += fmt.Sprintf(", %s protocol", d.Protocol)
	}
	t := Table{
		ID:     "Chaos",
		Title:  title,
		Header: []string{"Oracle", "Pass", "Fail"},
	}
	for _, orc := range chaosOracles {
		t.Rows = append(t.Rows, []string{orc,
			fmt.Sprintf("%d", d.OraclePass[orc]), fmt.Sprintf("%d", d.OracleFail[orc])})
	}
	t.Rows = append(t.Rows,
		[]string{"storms (all oracles)", fmt.Sprintf("%d", d.Sweep-d.Failures), fmt.Sprintf("%d", d.Failures)},
		[]string{"deaths / reboots", fmt.Sprintf("%d / %d", d.Deaths, d.Reboots), ""},
		[]string{"mails dropped / retransmits", fmt.Sprintf("%d / %d", d.MailsDropped, d.Retransmits), ""},
		[]string{"stale frees tolerated", fmt.Sprintf("%d", d.StaleFrees), ""},
	)
	for _, f := range d.Failing {
		t.Notes = append(t.Notes, "FAIL "+f.Repro)
		for _, v := range f.Violations {
			t.Notes = append(t.Notes, "  "+v)
		}
		if f.ShrunkRepro != "" {
			t.Notes = append(t.Notes, "  shrunk: "+f.ShrunkRepro)
		}
	}
	t.Notes = append(t.Notes,
		"each storm runs the sensorhub workload with the oracle attached: quiesce checks mid-run, settle sweep, final audit",
		"convergence compares the post-recovery final state against the fault-free run of the same platform",
		"same base seed => the identical storm set and a byte-identical summary, at any parallelism")
	return t
}
