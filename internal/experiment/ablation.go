package experiment

import (
	"fmt"
	"time"

	"k2/internal/core"
	"k2/internal/dsm"
	"k2/internal/mem"
	"k2/internal/sched"
	"k2/internal/services"
	"k2/internal/sim"
	"k2/internal/soc"
)

// AblationSharedAllocator reproduces §9.3's negative result: implementing
// the page allocator as a *shadowed* service instead of independent
// instances. The allocator's hot state (free lists, per-page metadata)
// spans several pages, so every allocation from alternating kernels incurs
// four to five DSM page faults — the paper observed a ~200x slowdown, and
// that "OS lockups happen frequently": overlapping critical sections hold
// the hardware spinlock across bottom-half-deferred faults, stalling the
// peer kernel for tens of milliseconds. The measurement here alternates the
// kernels strictly (the only regime that completes) and reports the
// per-allocation cost on the main kernel.
func AblationSharedAllocator() Table {
	e, o := bootFresh(core.K2Mode)
	const statePages = 5
	var pages []mem.PFN
	for i := 0; i < statePages; i++ {
		p, err := o.Mem.Buddies[soc.Strong].AllocBoot(0, mem.Unmovable)
		if err != nil {
			panic(err)
		}
		pages = append(pages, p)
	}
	state := services.NewShadowedState("shared-allocator", o.DSM, o.S.Spinlocks.Lock(8), pages)

	allocCost := soc.Work(900 * time.Nanosecond) // the order-0 buddy cost
	sharedAlloc := func(th *sched.Thread) {
		state.Enter(th)
		for i := 0; i < statePages; i++ {
			state.Touch(th, i, true)
		}
		th.Exec(allocCost)
		state.Exit(th)
	}

	const rounds = 30
	var mainBusy, baselinePerOp time.Duration
	mainTurn := sim.NewGate(e)
	shadowTurn := sim.NewGate(e)
	runThread(o, sched.Normal, "shared-alloc-main", nil, func(th *sched.Thread) {
		// Baseline: the independent allocator on the same kernel.
		b := o.Mem.Buddies[soc.Strong]
		start := th.P().Now()
		for i := 0; i < rounds; i++ {
			pfn, err := b.Alloc(th.P(), th.Core(), 0, mem.Unmovable)
			if err != nil {
				panic(err)
			}
			b.Free(th.P(), th.Core(), pfn)
		}
		baselinePerOp = th.P().Now().Sub(start) / (2 * rounds)

		// Shadowed allocator, strict alternation with the other kernel.
		for i := 0; i < rounds; i++ {
			start := th.P().Now()
			sharedAlloc(th)
			mainBusy += th.P().Now().Sub(start)
			shadowTurn.Open()
			th.Block(func(p *sim.Proc) { mainTurn.Wait(p) })
		}
	})
	runThread(o, sched.NightWatch, "shared-alloc-shadow", nil, func(th *sched.Thread) {
		for i := 0; i < rounds; i++ {
			th.Block(func(p *sim.Proc) { shadowTurn.Wait(p) })
			sharedAlloc(th)
			mainTurn.Open()
		}
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}

	totalFaults := o.DSM.RequesterStats[soc.Strong].Faults + o.DSM.RequesterStats[soc.Weak].Faults
	faultsPerAlloc := float64(totalFaults) / float64(2*rounds)
	mainPerOp := mainBusy / rounds
	slowdown := float64(mainPerOp) / float64(baselinePerOp)
	return Table{
		ID:     "Ablation §9.3",
		Title:  "page allocator as a shadowed service (why K2 made it independent)",
		Header: []string{"metric", "measured", "paper"},
		Rows: [][]string{
			{"independent alloc+free (main, µs)", fmt.Sprintf("%.1f", float64(baselinePerOp.Nanoseconds())/1e3), "~1"},
			{"shadowed alloc (main, alternating, µs)", fmt.Sprintf("%.1f", float64(mainPerOp.Nanoseconds())/1e3), ""},
			{"DSM faults per allocation", fmt.Sprintf("%.1f", faultsPerAlloc), "4-5"},
			{"slowdown", fmt.Sprintf("%.0fx", slowdown), "~200x"},
		},
		Notes: []string{
			"with overlapping (non-alternating) allocators the spinlock is held across deferred faults and the kernels stall for tens of ms — the paper's 'OS lockups'",
		},
	}
}

// threeStateCase runs one protocol configuration against one sharing
// pattern and returns the shadow kernel's busy time per operation (µs) and
// the total fault count.
func threeStateCase(prm dsm.Params, concurrentReaders bool) (shadowPerOpUS float64, faults int) {
	e, o := bootFresh(core.K2Mode, func(op *core.Options) { op.DSMParams = &prm })
	pfn, err := o.Mem.Buddies[soc.Strong].AllocBoot(0, mem.Unmovable)
	if err != nil {
		panic(err)
	}
	o.DSM.Share(pfn)

	const writes, readsPerWrite = 6, 50
	var shadowBusy time.Duration
	shadowTurn := sim.NewEvent(e)
	runThread(o, sched.Normal, "main-user", nil, func(th *sched.Thread) {
		for i := 0; i < writes; i++ {
			o.DSM.Write(th.P(), th.Core(), soc.Strong, pfn)
			if i == 0 {
				shadowTurn.Fire()
			}
			if concurrentReaders {
				// The main kernel also polls the shared state between its
				// writes (e.g. a driver reading device status).
				for j := 0; j < readsPerWrite; j++ {
					o.DSM.Read(th.P(), th.Core(), soc.Strong, pfn)
					th.SleepIdle(400 * time.Microsecond)
				}
			} else {
				th.SleepIdle(readsPerWrite * 400 * time.Microsecond)
			}
		}
	})
	runThread(o, sched.NightWatch, "shadow-reader", shadowTurn, func(th *sched.Thread) {
		for i := 0; i < writes*readsPerWrite; i++ {
			start := th.P().Now()
			o.DSM.Read(th.P(), th.Core(), soc.Weak, pfn)
			shadowBusy += th.P().Now().Sub(start)
			th.SleepIdle(400 * time.Microsecond)
		}
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}
	perOp := float64(shadowBusy.Nanoseconds()) / float64(writes*readsPerWrite) / 1e3
	faults = o.DSM.RequesterStats[soc.Strong].Faults + o.DSM.RequesterStats[soc.Weak].Faults
	return perOp, faults
}

// AblationThreeState compares the two-state protocol K2 ships with against
// the more common three-state protocol with read-only sharing (§6.3, "An
// alternative design"), across two sharing patterns and two weak-domain
// MMUs: the OMAP4 Cortex-M3 (whose read detection thrashes its ten-entry
// first-level TLB) and a hypothetical MMU with permission support (one of
// the missing architectural features §11 calls for).
func AblationThreeState() Table {
	cases := []struct {
		label string
		mut   func(*dsm.Params)
	}{
		{"two-state (K2 on OMAP4)", func(p *dsm.Params) {}},
		{"three-state on OMAP4 M3", func(p *dsm.Params) {
			p.ThreeState = true
			p.ShadowReadDetect = 120 * time.Microsecond
			p.ShadowReadThrash = 20 * time.Microsecond
		}},
		{"three-state, capable MMU", func(p *dsm.Params) {
			p.ThreeState = true
			p.ShadowReadDetect = 0
			p.ShadowReadThrash = 0
		}},
	}
	t := Table{
		ID:    "Ablation §6.3",
		Title: "two-state vs three-state DSM protocol (shadow µs/op; faults)",
		Header: []string{"configuration",
			"single writer, shadow reads", "faults",
			"concurrent readers", "faults"},
	}
	for _, c := range cases {
		prm := dsm.DefaultParams()
		c.mut(&prm)
		single, f1c := threeStateCase(prm, false)
		conc, f2c := threeStateCase(prm, true)
		t.Rows = append(t.Rows, []string{
			c.label,
			fmt.Sprintf("%.1f", single), fmt.Sprintf("%d", f1c),
			fmt.Sprintf("%.1f", conc), fmt.Sprintf("%d", f2c),
		})
	}
	t.Notes = append(t.Notes,
		"with a single writer, two-state already keeps reads local, and on OMAP4 three-state only adds the per-read TLB-thrashing tax — K2's choice",
		"with concurrent readers, read-only sharing eliminates the ownership ping-pong, but only a capable weak-domain MMU realizes the gain (§11)")
	return t
}
