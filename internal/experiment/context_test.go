package experiment

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"k2/internal/trace"
)

func defByID(t *testing.T, id string) Def {
	t.Helper()
	d, ok := DefFor(id, Params{})
	if !ok {
		t.Fatalf("experiment %q not in registry", id)
	}
	return d
}

// TestMeasureContextCancelStopsPromptly submits a long experiment under an
// already-cancelled context: the engines must stop at their first
// interrupt poll and the result must carry the context error, not a table.
func TestMeasureContextCancelStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	r := MeasureContext(ctx, defByID(t, "timeline"))
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", r.Err)
	}
	if len(r.Table.Rows) != 0 {
		t.Fatalf("cancelled measurement produced a table: %+v", r.Table)
	}
	// The timeline experiment simulates hours; a prompt stop is orders of
	// magnitude faster than running it out.
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("cancelled measurement still took %v", d)
	}
}

// TestMeasureContextDeadline is the same through a deadline, as k2d's
// per-job timeout uses it.
func TestMeasureContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	r := MeasureContext(ctx, defByID(t, "timeline"))
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", r.Err)
	}
}

// TestMeasureContextBackgroundIdentical asserts the satellite contract:
// threading a background context through the runner changes nothing about
// what an experiment produces.
func TestMeasureContextBackgroundIdentical(t *testing.T) {
	d := defByID(t, "f6a")
	plain := Measure(d)
	ctxed := MeasureContext(context.Background(), d)
	if plain.Err != nil || ctxed.Err != nil {
		t.Fatalf("unexpected errors: %v, %v", plain.Err, ctxed.Err)
	}
	if got, want := ctxed.Table.String(), plain.Table.String(); got != want {
		t.Fatalf("tables differ under background context:\n%s\nvs\n%s", got, want)
	}
	if ctxed.Stats.Dispatched != plain.Stats.Dispatched {
		t.Fatalf("dispatched %d vs %d", ctxed.Stats.Dispatched, plain.Stats.Dispatched)
	}
}

// TestRunContextSkipsPending asserts that experiments not yet started when
// the context dies are skipped with the context error.
func TestRunContextSkipsPending(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	defs := []Def{defByID(t, "t3"), defByID(t, "f6a")}
	results := Runner{Parallel: 1}.RunContext(ctx, defs)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d: Err = %v, want context.Canceled", i, r.Err)
		}
		if r.ID != defs[i].ID {
			t.Fatalf("result %d: ID = %q, want %q", i, r.ID, defs[i].ID)
		}
	}
}

// TestWithTraceSink asserts that a measured experiment streams its kernel
// trace to the installed sink, starting with the boot event.
func TestWithTraceSink(t *testing.T) {
	var events []trace.Event
	r := MeasureContext(context.Background(), defByID(t, "f6a"),
		WithTraceSink(func(ev trace.Event) { events = append(events, ev) }))
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(events) == 0 {
		t.Fatal("trace sink saw no events")
	}
	if !strings.HasPrefix(events[0].Msg, "booting") {
		t.Fatalf("first sink event = %q, want a boot record", events[0].Msg)
	}
}

// TestDefForParams asserts the parameter binding: unknown IDs are
// reported, and seed/weak-domain params reach the bound experiment.
func TestDefForParams(t *testing.T) {
	if _, ok := DefFor("nope", Params{}); ok {
		t.Fatal("DefFor accepted an unknown experiment")
	}
	d, ok := DefFor("scale", Params{WeakDomains: 2})
	if !ok {
		t.Fatal("scale not found")
	}
	tab := d.Run()
	// A single 2-weak-domain config has exactly 3 domain rows.
	if len(tab.Rows) != 3 {
		t.Fatalf("scale with WeakDomains=2 produced %d rows, want 3", len(tab.Rows))
	}
	if tab.Rows[0][0] != "2" {
		t.Fatalf("first row label = %q, want \"2\"", tab.Rows[0][0])
	}
}
