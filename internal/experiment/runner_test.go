package experiment

import (
	"strings"
	"testing"
)

func TestSelect(t *testing.T) {
	if got, want := len(Select("")), len(Registry()); got != want {
		t.Fatalf("empty filter selected %d of %d", got, want)
	}
	defs := Select(" t4 ,scale")
	if len(defs) != 2 || defs[0].ID != "t4" || defs[1].ID != "scale" {
		ids := make([]string, len(defs))
		for i, d := range defs {
			ids[i] = d.ID
		}
		t.Fatalf("Select(t4,scale) = %v", ids)
	}
	if defs := Select("nosuch"); len(defs) != 0 {
		t.Fatalf("unknown id matched %d experiments", len(defs))
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Registry() {
		if seen[d.ID] {
			t.Fatalf("duplicate experiment id %q", d.ID)
		}
		seen[d.ID] = true
		if d.Run == nil || d.Name == "" {
			t.Fatalf("experiment %q incomplete", d.ID)
		}
	}
}

func TestMeasureCollectsEngineTelemetry(t *testing.T) {
	r := Measure(Def{ID: "t4", Name: "t4", Run: Table4})
	if r.Engines == 0 {
		t.Fatal("no engines attributed to the experiment")
	}
	if r.Stats.Dispatched == 0 || r.Stats.ProcSwitches == 0 {
		t.Fatalf("empty engine stats: %+v", r.Stats)
	}
	if r.Wall <= 0 || r.Virtual <= 0 {
		t.Fatalf("wall = %v, virtual = %v; want both > 0", r.Wall, r.Virtual)
	}
	if r.EventsPerSec() <= 0 || r.VirtualPerWall() <= 0 {
		t.Fatalf("rates not positive: %v ev/s, %v virt/wall", r.EventsPerSec(), r.VirtualPerWall())
	}
	if r.probe.t4 == nil {
		t.Fatal("Table4 run did not deposit its Table4Data")
	}
}

func TestMeasureBenchHonorsFilter(t *testing.T) {
	b := MeasureBench(Select("t4"), 1)
	if len(b.Experiments) != 1 || b.Experiments[0].ID != "t4" {
		t.Fatalf("experiments = %+v, want just t4", b.Experiments)
	}
	if b.AllocLatencies == nil {
		t.Fatal("t4 selected but alloc_latencies section missing")
	}
	if b.FaultBreakdown != nil || b.DMAThroughput != nil || b.Scale != nil || b.Faults != nil {
		t.Fatal("unselected sections populated")
	}
}

// TestRunnerDeterminismAcrossParallelism is the regression gate for the
// parallel runner: the full experiment registry must render byte-identical
// tables sequentially and at every worker count, because each experiment's
// engines are private and dispatch in (time, seq) order regardless of which
// goroutine hosts them. CI runs this under -race.
func TestRunnerDeterminismAcrossParallelism(t *testing.T) {
	defs := Registry()
	render := func(rs []Result) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = r.Table.String()
		}
		return out
	}
	seq := render(Runner{Parallel: 1}.Run(defs))
	for _, workers := range []int{2, 4} {
		par := render(Runner{Parallel: workers}.Run(defs))
		for i := range seq {
			if seq[i] != par[i] {
				t.Errorf("workers=%d: experiment %s diverged:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					workers, defs[i].ID, firstDiffContext(seq[i]), firstDiffContext(par[i]))
			}
		}
	}
}

func firstDiffContext(s string) string {
	if len(s) > 600 {
		return s[:600] + "…"
	}
	return s
}

func TestRunnerPreservesOrderAndIDs(t *testing.T) {
	defs := Select("t1,t3,standby")
	rs := Runner{Parallel: 3}.Run(defs)
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	for i, r := range rs {
		if r.ID != defs[i].ID {
			t.Fatalf("result %d = %q, want %q", i, r.ID, defs[i].ID)
		}
		if !strings.Contains(r.Table.String(), "==") {
			t.Fatalf("result %d has an empty table", i)
		}
	}
}
