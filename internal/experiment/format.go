package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV emits the table as CSV: a header row, then data rows. Notes
// become trailing comment-style rows prefixed with "#".
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Markdown renders the table as a GitHub-flavored Markdown table with a
// heading, suitable for pasting into EXPERIMENTS.md.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	b.WriteString("|")
	for _, h := range t.Header {
		b.WriteString(" " + esc(h) + " |")
	}
	b.WriteString("\n|")
	for range t.Header {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		b.WriteString("|")
		for i := range t.Header {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			b.WriteString(" " + esc(cell) + " |")
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}
