package experiment

import (
	"fmt"

	"k2/internal/core"
	"k2/internal/power"
	"k2/internal/soc"
	"k2/internal/workload"
)

// energyPoint measures one (K2, Linux) pair of episodes for a workload
// factory and returns both results. As in §9.2, the platform favors Linux:
// the strong core is fixed at 350 MHz, its most efficient operating point,
// while the weak core runs at 200 MHz, its least efficient one.
func energyPoint(mk func(o *core.OS) workload.Task) (k2, linux workload.Result) {
	cfg := soc.DefaultConfig()
	cfg.StrongFreqMHz = 350
	at350 := func(op *core.Options) { op.SoC = &cfg }

	e, o := bootFresh(core.K2Mode, at350)
	res, err := workload.MeasureEpisode(e, o, mk(o))
	if err != nil {
		panic(err)
	}
	k2 = res
	e, o = bootFresh(core.LinuxMode, at350)
	res, err = workload.MeasureEpisode(e, o, mk(o))
	if err != nil {
		panic(err)
	}
	linux = res
	return k2, linux
}

type sweepPoint struct {
	label string
	mk    func(o *core.OS) workload.Task
}

func energyTable(id, title, unit string, points []sweepPoint, paperClaim string) Table {
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{unit, "Linux (MB/J)", "K2 (MB/J)", "K2/Linux", "K2 peak thr. (%% of Linux)"},
	}
	t.Header[4] = "K2 thr. (% of Linux)"
	for _, pt := range points {
		k2, linux := energyPoint(pt.mk)
		ratio := k2.EfficiencyMBJ() / linux.EfficiencyMBJ()
		thr := k2.ThroughputMBs() / linux.ThroughputMBs() * 100
		t.Rows = append(t.Rows, []string{
			pt.label,
			f2(linux.EfficiencyMBJ()),
			f2(k2.EfficiencyMBJ()),
			fx(ratio),
			f1(thr),
		})
	}
	t.Notes = append(t.Notes, paperClaim)
	t.Notes = append(t.Notes,
		"episode = wake, run at full speed, idle until the 5 s inactive timeout (§9.2)")
	return t
}

// Figure6a reproduces the DMA energy-efficiency benchmark: each run invokes
// the DMA driver for memory-to-memory transfers of BatchSize bytes until
// TotalSize bytes are copied.
func Figure6a() Table {
	type bt struct{ batch, total int64 }
	var points []sweepPoint
	for _, c := range []bt{
		{4 << 10, 64 << 10},
		{4 << 10, 256 << 10},
		{64 << 10, 256 << 10},
		{64 << 10, 1 << 20},
		{256 << 10, 1 << 20},
		{1 << 20, 16 << 20},
	} {
		c := c
		points = append(points, sweepPoint{
			label: fmt.Sprintf("(%s,%s)", sz(c.batch), sz(c.total)),
			mk:    func(o *core.OS) workload.Task { return workload.DMA(o, c.batch, c.total) },
		})
	}
	return energyTable("Figure 6(a)", "DMA driver energy efficiency",
		"(BatchSize,TotalSize)", points,
		"paper: K2 improves DMA energy efficiency by up to 9x; advantage grows as transfers get more IO-bound")
}

// Figure6b reproduces the ext2 benchmark: a NightWatch thread operates on
// eight files sequentially — create, write, close — with write sizes
// representing emails (1 KB), pictures (256 KB) and short videos (1 MB).
func Figure6b() Table {
	var points []sweepPoint
	for _, size := range []int{1 << 10, 256 << 10, 1 << 20} {
		size := size
		points = append(points, sweepPoint{
			label: sz(int64(size)),
			mk:    func(o *core.OS) workload.Task { return workload.Ext2(o, size, 8) },
		})
	}
	return energyTable("Figure 6(b)", "ext2 energy efficiency (8 files per run, ramdisk)",
		"Single file size", points,
		"paper: K2 improves ext2 energy efficiency by up to 8x")
}

// Figure6c reproduces the UDP loopback benchmark: write TotalSize bytes
// through a socket pair, recreating the sockets every BatchSize bytes.
func Figure6c() Table {
	type bt struct{ batch, total int64 }
	var points []sweepPoint
	for _, c := range []bt{
		{1 << 10, 4 << 10},
		{1 << 10, 64 << 10},
		{32 << 10, 256 << 10},
		{256 << 10, 1 << 20},
	} {
		c := c
		points = append(points, sweepPoint{
			label: fmt.Sprintf("(%s,%s)", sz(c.batch), sz(c.total)),
			mk:    func(o *core.OS) workload.Task { return workload.UDP(o, c.batch, c.total) },
		})
	}
	return energyTable("Figure 6(c)", "UDP loopback energy efficiency",
		"(BatchSize,TotalSize)", points,
		"paper: K2 improves UDP loopback energy efficiency by up to 10x; smaller totals favor K2 more")
}

// StandbyEstimate reproduces §9.2's device standby projection ("K2 will
// extend the reported device standby time by 59%, from 5.9 days to 9.4
// days"): a daily mix of background light tasks — continuous context
// sensing plus periodic cloud sync — over a device base floor, using the
// measured per-episode energies.
func StandbyEstimate() Table {
	battery := power.Battery{CapacityJ: 23400} // ~6.5 Wh, 2013-era phone
	const (
		baseFloorMW  = 24.0 // radios, RAM self-refresh, PMIC
		sensePeriodS = 6.0  // context awareness episode period
		syncPeriodS  = 600.0
	)
	senseK2, senseLinux := energyPoint(func(o *core.OS) workload.Task {
		return workload.DMA(o, 4<<10, 32<<10)
	})
	syncK2, syncLinux := energyPoint(func(o *core.OS) workload.Task {
		return workload.Ext2(o, 64<<10, 4)
	})
	avg := func(sense, sync workload.Result) float64 {
		return baseFloorMW + sense.EnergyJ/sensePeriodS*1e3 + sync.EnergyJ/syncPeriodS*1e3
	}
	linuxMW := avg(senseLinux, syncLinux)
	k2MW := avg(senseK2, syncK2)
	linuxDays := battery.StandbyDays(linuxMW)
	k2Days := battery.StandbyDays(k2MW)
	return Table{
		ID:     "Standby estimate (§9.2)",
		Title:  "projected device standby with background light tasks",
		Header: []string{"OS", "avg drain (mW)", "standby (days)", "paper (days)"},
		Rows: [][]string{
			{"Linux", f1(linuxMW), f1(linuxDays), "5.9"},
			{"K2", f1(k2MW), f1(k2Days), "9.4"},
			{"extension", "", fmt.Sprintf("+%.0f%%", (k2Days/linuxDays-1)*100), "+59%"},
		},
		Notes: []string{
			fmt.Sprintf("mix: context sensing every %.0fs (DMA 4Kx8), cloud sync every %.0fs (ext2 4x64K); base floor %.0f mW",
				sensePeriodS, syncPeriodS, baseFloorMW),
		},
	}
}

// EnergyShape is used by tests: it returns the K2/Linux efficiency ratio
// for a small DMA light task.
func EnergyShape() float64 {
	k2, linux := energyPoint(func(o *core.OS) workload.Task {
		return workload.DMA(o, 16<<10, 128<<10)
	})
	return k2.EfficiencyMBJ() / linux.EfficiencyMBJ()
}
