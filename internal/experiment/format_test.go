package experiment

import (
	"strings"
	"testing"
)

func demoTable() Table {
	return Table{
		ID:     "Demo",
		Title:  "pipes | and commas, everywhere",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1,5", "x|y"}, {"2", ""}},
		Notes:  []string{"remember"},
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := demoTable().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `"1,5",x|y` {
		t.Fatalf("row = %q (comma not quoted?)", lines[1])
	}
	if !strings.HasPrefix(lines[len(lines)-1], "# remember") {
		t.Fatalf("note missing: %q", lines[len(lines)-1])
	}
}

func TestMarkdown(t *testing.T) {
	out := demoTable().Markdown()
	for _, want := range []string{
		"### Demo:",
		"| a | b |",
		"|---|---|",
		`x\|y`, // pipe escaped
		"> remember",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	// A short row must still render all header columns.
	if !strings.Contains(out, "| 2 |  |") {
		t.Fatalf("short row not padded:\n%s", out)
	}
}

func TestMarkdownOnRealTable(t *testing.T) {
	out := Table1().Markdown()
	if !strings.Contains(out, "Cortex-A9") || !strings.Contains(out, "Thumb-2") {
		t.Fatal("real table lost content in markdown")
	}
}
