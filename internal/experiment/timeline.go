package experiment

import (
	"fmt"
	"time"

	"k2/internal/core"
	"k2/internal/power"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/workload"
)

// timelineAvgMW boots one OS and simulates a stretch of real usage — a
// context-sensing task firing every sensePeriod and a cloud sync every
// syncPeriod — then returns the measured average drain in mW, with the
// device base floor added. Unlike the per-episode arithmetic of
// StandbyEstimate, consecutive episodes here interact naturally (domains
// may not reach the inactive state between close episodes).
func timelineAvgMW(mode core.Mode, hours float64, sensePeriod, syncPeriod time.Duration, baseMW float64) float64 {
	e := newEngine()
	cfg := soc.DefaultConfig()
	cfg.StrongFreqMHz = 350
	o, err := core.Boot(e, core.Options{Mode: mode, SoC: &cfg})
	if err != nil {
		panic(err)
	}
	span := time.Duration(hours * float64(time.Hour))

	pr := o.SpawnProcess("daily")
	pr.Spawn(sched.NightWatch, "sense", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		task := workload.DMA(o, 4<<10, 32<<10)
		for i := 0; th.P().Now() < sim.Time(span); i++ {
			task(th, i)
			th.SleepIdle(sensePeriod)
		}
	})
	pr2 := o.SpawnProcess("sync")
	pr2.Spawn(sched.NightWatch, "sync", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		task := workload.Ext2(o, 64<<10, 4)
		for i := 0; th.P().Now() < sim.Time(span); i++ {
			th.SleepIdle(syncPeriod)
			task(th, i)
		}
	})

	// Measure from a settled point to the end of the span.
	measStart := sim.Time(time.Minute)
	var avgMW float64
	e.Spawn("meter", func(p *sim.Proc) {
		p.Sleep(time.Duration(measStart))
		o.MeterReset()
		p.Sleep(span - time.Duration(measStart))
		avgMW = o.EnergyJ() / (span - time.Duration(measStart)).Seconds() * 1e3
		e.Stop()
	})
	if err := e.Run(sim.Time(span) + sim.Time(time.Minute)); err != nil {
		panic(err)
	}
	return avgMW + baseMW
}

// StandbyTimeline is the simulated-timeline variant of the §9.2 standby
// estimate: instead of extrapolating from isolated episodes, it runs half a
// simulated hour of the background mix on each OS and measures the rails.
func StandbyTimeline() Table {
	battery := power.Battery{CapacityJ: 23400}
	const (
		hours  = 0.5
		baseMW = 24.0
	)
	sense, sync := 6*time.Second, 10*time.Minute
	linuxMW := timelineAvgMW(core.LinuxMode, hours, sense, sync, baseMW)
	k2MW := timelineAvgMW(core.K2Mode, hours, sense, sync, baseMW)
	linuxDays := battery.StandbyDays(linuxMW)
	k2Days := battery.StandbyDays(k2MW)
	return Table{
		ID:     "Standby timeline (§9.2)",
		Title:  fmt.Sprintf("measured over %.1f simulated hours of background usage", hours),
		Header: []string{"OS", "avg drain (mW)", "standby (days)", "paper (days)"},
		Rows: [][]string{
			{"Linux", f1(linuxMW), f1(linuxDays), "5.9"},
			{"K2", f1(k2MW), f1(k2Days), "9.4"},
			{"extension", "", fmt.Sprintf("+%.0f%%", (k2Days/linuxDays-1)*100), "+59%"},
		},
		Notes: []string{
			"unlike the per-episode estimate, close episodes here overlap their idle tails, which is why Linux's average drain is a bit lower than the extrapolation",
		},
	}
}

// dayAvgMW simulates a stretch of a full day: short interactive foreground
// sessions (normal threads bursting on the strong domain at its top
// frequency) over the continuous background mix.
func dayAvgMW(mode core.Mode, span time.Duration, baseMW float64) float64 {
	e := newEngine()
	o, err := core.Boot(e, core.Options{Mode: mode}) // 1200 MHz: interactive
	if err != nil {
		panic(err)
	}
	// Background: sensing every 6 s.
	bg := o.SpawnProcess("background")
	bg.Spawn(sched.NightWatch, "sense", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		task := workload.DMA(o, 4<<10, 32<<10)
		for i := 0; th.P().Now() < sim.Time(span); i++ {
			task(th, i)
			th.SleepIdle(6 * time.Second)
		}
	})
	// Foreground: a 20 s interactive session every 3 minutes — render
	// bursts with user think time between them.
	fg := o.SpawnProcess("foreground")
	fg.Spawn(sched.Normal, "ui", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
		for th.P().Now() < sim.Time(span) {
			th.SleepIdle(3 * time.Minute)
			for burst := 0; burst < 20; burst++ {
				th.Exec(soc.Work(120 * time.Millisecond)) // frame work
				th.SleepIdle(880 * time.Millisecond)      // think time
			}
		}
	})
	var avgMW float64
	e.Spawn("meter", func(p *sim.Proc) {
		p.Sleep(time.Minute)
		o.MeterReset()
		p.Sleep(span - time.Minute)
		avgMW = o.EnergyJ() / (span - time.Minute).Seconds() * 1e3
		e.Stop()
	})
	if err := e.Run(sim.Time(span) + sim.Time(time.Minute)); err != nil {
		panic(err)
	}
	return avgMW + baseMW
}

// DayInLife puts the standby gains in context: with interactive foreground
// sessions in the mix, the strong domain's render bursts dominate energy on
// both OSes, so K2's whole-day battery extension is smaller than its
// standby-only extension — the honest framing of §2.1: K2 targets the light
// tasks, not the demanding ones (which it must merely not slow down).
func DayInLife() Table {
	battery := power.Battery{CapacityJ: 23400}
	const baseMW = 24.0
	span := 20 * time.Minute
	linuxMW := dayAvgMW(core.LinuxMode, span, baseMW)
	k2MW := dayAvgMW(core.K2Mode, span, baseMW)
	return Table{
		ID:     "Day-in-life",
		Title:  "mixed foreground + background usage (strong domain at 1200 MHz for interaction)",
		Header: []string{"OS", "avg drain (mW)", "battery (days)"},
		Rows: [][]string{
			{"Linux", f1(linuxMW), f1(battery.StandbyDays(linuxMW))},
			{"K2", f1(k2MW), f1(battery.StandbyDays(k2MW))},
			{"extension", "", fmt.Sprintf("+%.0f%%", (battery.StandbyDays(k2MW)/battery.StandbyDays(linuxMW)-1)*100)},
		},
		Notes: []string{
			"interactive render bursts cost the same on both OSes (goal 3: preserve peak performance); K2's gain comes entirely from the background share",
		},
	}
}

// TimeoutSensitivity sweeps the core inactive timeout (the paper fixes it
// at 5 s following [41]) and reports how the K2/Linux energy ratio for a
// light task depends on it: the longer a strong core must idle before
// suspending, the more K2's weak-domain execution saves.
func TimeoutSensitivity() Table {
	t := Table{
		ID:     "Sensitivity",
		Title:  "K2/Linux energy-efficiency ratio vs core inactive timeout (DMA 16Kx8 episode)",
		Header: []string{"inactive timeout", "Linux (MB/J)", "K2 (MB/J)", "K2/Linux"},
	}
	for _, timeout := range []time.Duration{time.Second, 5 * time.Second, 10 * time.Second} {
		cfg := soc.DefaultConfig()
		cfg.StrongFreqMHz = 350
		cfg.InactiveTimeout = timeout
		run := func(mode core.Mode) workload.Result {
			e, o := bootFresh(mode, func(op *core.Options) { op.SoC = &cfg })
			res, err := workload.MeasureEpisode(e, o, workload.DMA(o, 16<<10, 128<<10))
			if err != nil {
				panic(err)
			}
			return res
		}
		k2 := run(core.K2Mode)
		linux := run(core.LinuxMode)
		t.Rows = append(t.Rows, []string{
			timeout.String(),
			f2(linux.EfficiencyMBJ()),
			f2(k2.EfficiencyMBJ()),
			fx(k2.EfficiencyMBJ() / linux.EfficiencyMBJ()),
		})
	}
	t.Notes = append(t.Notes,
		"the ratio is bounded by the idle-power ratio (25.2/3.8 = 6.6x) and approaches it as the idle tail dominates the episode")
	return t
}
