package experiment

import (
	"fmt"
	"strings"
	"time"

	"k2/internal/core"
	"k2/internal/services"
	"k2/internal/sim"
	"k2/internal/soc"
)

// Table1 echoes the platform configuration (the paper's Table 1:
// heterogeneous cores in the two coherence domains of OMAP4).
func Table1() Table {
	cfg := soc.DefaultConfig()
	return Table{
		ID:     "Table 1",
		Title:  "heterogeneous cores in the two coherence domains",
		Header: []string{"", "Cortex-A9 (strong)", "Cortex-M3 (weak)"},
		Rows: [][]string{
			{"ISA", "ARM", "Thumb-2"},
			{"Freq.", "350-1200 MHz", "100-200 MHz"},
			{"Cores", fmt.Sprintf("%d", cfg.StrongCores), fmt.Sprintf("%d (1 used by K2)", cfg.StrongCores)},
			{"Rel. speed @min/max", fmt.Sprintf("%.2f / %.2f", soc.Speed(soc.CortexA9, 350), soc.Speed(soc.CortexA9, 1200)),
				fmt.Sprintf("%.3f / %.3f", soc.Speed(soc.CortexM3, 100), soc.Speed(soc.CortexM3, 200))},
			{"MMU", "one ARM v7-A", "two cascaded (no cheap R/W split)"},
		},
		Notes: []string{"simulated platform; see internal/soc/omap4.go for all constants"},
	}
}

// Table2 is the refactoring-effort analog: the paper reports changed/added
// SLoC over Linux 3.4; this reproduction reports its service classification
// (the refactoring decisions of §5.3). Module SLoC are recorded in
// EXPERIMENTS.md.
func Table2() Table {
	_, o := bootFresh(core.K2Mode)
	reg := o.Registry
	t := Table{
		ID:     "Table 2 (analog)",
		Title:  "service classification under the shared-most model (§5.3)",
		Header: []string{"class", "count", "services"},
	}
	for _, cl := range []services.Class{services.Private, services.Independent, services.Shadowed} {
		names := reg.Names(func(c services.Class) bool { return c == cl })
		t.Rows = append(t.Rows, []string{
			cl.String(), fmt.Sprintf("%d", len(names)), strings.Join(names, ", ")})
	}
	t.Notes = append(t.Notes,
		"shadowed is the largest category, mirroring the paper's reuse of most of the Linux source",
		"per-module SLoC of this reproduction are recorded in EXPERIMENTS.md")
	return t
}

// measureRail measures the average rail power (mW) of a domain over a
// driven scenario.
func measureRail(strongMHz int, dom soc.DomainID, scenario func(e *sim.Engine, s *soc.SoC)) float64 {
	e := newEngine()
	cfg := soc.DefaultConfig()
	cfg.StrongFreqMHz = strongMHz
	s := soc.New(e, cfg)
	scenario(e, s)
	window := time.Second
	start := s.Domains[dom].Rail.EnergyJ()
	if err := e.Run(sim.Time(window)); err != nil {
		panic(err)
	}
	return (s.Domains[dom].Rail.EnergyJ() - start) / window.Seconds() * 1e3
}

// Table3 measures the rail power of each core state, which must land on
// the paper's Table 3 (the power model is validated end to end through the
// simulation, not just echoed).
func Table3() Table {
	busy := func(dom soc.DomainID) func(e *sim.Engine, s *soc.SoC) {
		return func(e *sim.Engine, s *soc.SoC) {
			e.Spawn("busy", func(p *sim.Proc) {
				s.Core(dom, 0).Exec(p, soc.Work(time.Hour))
			})
		}
	}
	idle := func(e *sim.Engine, s *soc.SoC) {} // awake, nothing running
	m3a := measureRail(1200, soc.Weak, busy(soc.Weak))
	m3i := measureRail(1200, soc.Weak, idle)
	a9a350 := measureRail(350, soc.Strong, busy(soc.Strong))
	a9i := measureRail(350, soc.Strong, idle)
	a9a1200 := measureRail(1200, soc.Strong, busy(soc.Strong))
	return Table{
		ID:     "Table 3",
		Title:  "power of the heterogeneous OMAP4 cores (measured on the simulated rails, mW)",
		Header: []string{"core", "active", "paper", "idle", "paper"},
		Rows: [][]string{
			{"Cortex-M3 (200MHz)", f1(m3a), "21.1", f1(m3i), "3.8"},
			{"Cortex-A9 (350MHz)", f1(a9a350), "79.8", f1(a9i), "25.2"},
			{"Cortex-A9 (1200MHz)", f1(a9a1200), "672", f1(a9i), "25.2"},
		},
		Notes: []string{"both domains draw <0.1 mW when inactive (modelled as 0.05 mW)"},
	}
}

// Figure1 regenerates the mobile-SoC trend plot (§2.2): performance/power
// points for DVFS on a strong core, coherent heterogeneity (a hypothetical
// big.LITTLE little core, bounded by the ~6x intra-domain asymmetry limit)
// and incoherent heterogeneity (the weak-domain core, up to ~20x).
func Figure1() Table {
	t := Table{
		ID:     "Figure 1",
		Title:  "trend in mobile SoC architectures (relative performance vs power, log-log)",
		Header: []string{"series", "point", "perf (rel)", "active mW", "idle mW"},
	}
	for _, f := range []int{1200, 920, 600, 350} {
		t.Rows = append(t.Rows, []string{"DVFS (A9)", fmt.Sprintf("%dMHz", f),
			fmt.Sprintf("%.3f", soc.Speed(soc.CortexA9, f)),
			f1(float64(soc.A9ActivePowerMW(f))), f1(float64(soc.A9IdlePowerMW()))})
	}
	// Coherent heterogeneity: a little core sharing the strong domain; the
	// unified coherence fabric limits its minimum power to ~1/6 of the big
	// core (§2.2).
	t.Rows = append(t.Rows, []string{"big.LITTLE (coherent)", "little",
		"0.150", f1(float64(soc.A9ActivePowerMW(350)) / 6), f1(float64(soc.A9IdlePowerMW()) / 6)})
	// Incoherent heterogeneity: the weak domain.
	t.Rows = append(t.Rows, []string{"multi-domain (incoherent)", "M3@200MHz",
		fmt.Sprintf("%.3f", soc.Speed(soc.CortexM3, 200)),
		f1(float64(soc.M3ActivePowerMW())), f1(float64(soc.M3IdlePowerMW()))})
	t.Notes = append(t.Notes,
		"absence of cross-domain coherence lets the weak core's idle power drop 6.6x below the strong core's")
	return t
}
