package experiment

import (
	"encoding/json"
	"io"
)

// BenchData is the machine-readable benchmark summary written by
// `k2bench -json`: the microbenchmark numbers (Tables 4–6) plus the
// N-domain scaling results.
type BenchData struct {
	AllocLatencies Table4Data      `json:"alloc_latencies"`
	FaultBreakdown Table5Data      `json:"dsm_fault_breakdown"`
	DMAThroughput  []DMAThroughput `json:"dma_throughput"`
	Scale          []ScaleConfig   `json:"scale"`
	Faults         FaultsData      `json:"faults"`
}

// MeasureBench runs the experiments behind BenchData.
func MeasureBench() BenchData {
	return BenchData{
		AllocLatencies: MeasureTable4(),
		FaultBreakdown: MeasureTable5(),
		DMAThroughput:  MeasureTable6(),
		Scale:          MeasureScale(),
		Faults:         MeasureFaults(),
	}
}

// WriteJSON writes the benchmark summary as indented JSON.
func (b BenchData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
