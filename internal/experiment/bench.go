package experiment

import (
	"encoding/json"
	"io"
	"time"

	"k2/internal/dsm"
	"k2/internal/soc"
	"k2/internal/stats"
)

// ExperimentTelemetry is the host-side performance record of one
// experiment run: how much wall clock it took, how hard the simulation
// engines worked, and the virtual-to-wall-time ratio. It is the trajectory
// CI tracks for simulator performance regressions.
type ExperimentTelemetry struct {
	ID   string `json:"id"`
	Name string `json:"name"`

	WallMS float64 `json:"wall_ms"`
	// BootMS is the slice of WallMS spent booting systems (cold boots or
	// checkpoint restores); EpisodeMS is the rest — the workload itself.
	// Warm starts shrink BootMS and leave EpisodeMS untouched.
	BootMS         float64 `json:"boot_ms"`
	EpisodeMS      float64 `json:"episode_ms"`
	WarmStarts     int     `json:"warm_starts,omitempty"`
	Engines        int     `json:"engines"`
	Events         uint64  `json:"events_dispatched"`
	ProcSwitches   uint64  `json:"proc_switches"`
	EventsPerSec   float64 `json:"events_per_sec"`
	VirtualMS      float64 `json:"virtual_ms"`
	VirtualPerWall float64 `json:"virtual_per_wall"`

	// EngineParallel is the per-engine event-scheduler worker count the run
	// was measured at (1 = sequential; output bytes are identical at any
	// value). EventsByDomain breaks Events down by home partition — the
	// coherence domain whose latency budget scheduled the event, "shared"
	// for untagged traffic — so partition imbalance is observable without
	// re-running under a profiler.
	EngineParallel int               `json:"engine_parallel"`
	EventsByDomain map[string]uint64 `json:"events_by_domain,omitempty"`
}

// telemetryOf flattens a runner Result into its JSON record.
func telemetryOf(r Result) ExperimentTelemetry {
	var byDomain map[string]uint64
	for i, n := range r.PartitionEvents {
		if n == 0 {
			continue
		}
		if byDomain == nil {
			byDomain = make(map[string]uint64)
		}
		byDomain[soc.PartitionName(i)] += n
	}
	return ExperimentTelemetry{
		ID:             r.ID,
		Name:           r.Name,
		WallMS:         ms(r.Wall),
		BootMS:         ms(r.Boot),
		EpisodeMS:      ms(r.Wall - r.Boot),
		WarmStarts:     r.WarmStarts,
		Engines:        r.Engines,
		Events:         r.Stats.Dispatched,
		ProcSwitches:   r.Stats.ProcSwitches,
		EventsPerSec:   r.EventsPerSec(),
		VirtualMS:      ms(time.Duration(r.Virtual)),
		VirtualPerWall: r.VirtualPerWall(),
		EngineParallel: r.EngineParallel,
		EventsByDomain: byDomain,
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// BenchData is the machine-readable benchmark summary written by
// `k2bench -json`: per-experiment wall-clock telemetry for every selected
// experiment, plus the structured microbenchmark numbers (Tables 4–6), the
// N-domain scaling results and the fault-injection record for whichever of
// those experiments were selected.
type BenchData struct {
	Parallel int `json:"parallel"`
	// EngineParallel is the process-wide event-scheduler worker count each
	// engine ran with (the -engine-parallel flag; 1 = sequential). It is
	// telemetry, not configuration of the results: every table and trace
	// byte is identical at any value.
	EngineParallel int                   `json:"engine_parallel"`
	TotalWallMS    float64               `json:"total_wall_ms"`
	EventsPerSec   *RateSummary          `json:"events_per_sec,omitempty"`
	Experiments    []ExperimentTelemetry `json:"experiments"`

	AllocLatencies *Table4Data      `json:"alloc_latencies,omitempty"`
	FaultBreakdown *Table5Data      `json:"dsm_fault_breakdown,omitempty"`
	DMAThroughput  []DMAThroughput  `json:"dma_throughput,omitempty"`
	Scale          []ScaleConfig    `json:"scale,omitempty"`
	Faults         *FaultsData      `json:"faults,omitempty"`
	Chaos          *ChaosData       `json:"chaos,omitempty"`
	DSMShare       []DSMShareCase   `json:"dsm_share,omitempty"`
	Replication    *ReplicationData `json:"replication,omitempty"`

	// DSMCounters sums the coherence-protocol counters over every selected
	// experiment's booted systems; DSMProtocol records the process-wide
	// protocol the run was taken under.
	DSMProtocol string        `json:"dsm_protocol"`
	DSMCounters *dsm.Counters `json:"dsm_counters,omitempty"`
}

// RateSummary is the distribution of per-experiment events_per_sec over a
// bench run: how fast the engine dispatched, experiment by experiment.
type RateSummary struct {
	N    int64   `json:"n"`
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// rateSummaryOf folds the per-experiment rates through a stats.Histogram.
// The histogram observes durations; a unitless rate is recorded as that
// many nanosecond ticks and read back as a float — the retained-sample
// percentile math is unit-agnostic, only the bucket labels assume time,
// and those are never rendered here.
func rateSummaryOf(results []Result) *RateSummary {
	h := stats.NewHistogram(0)
	for _, r := range results {
		if r.Err == nil {
			h.Observe(time.Duration(r.EventsPerSec()))
		}
	}
	if h.N() == 0 {
		return nil
	}
	return &RateSummary{
		N:    h.N(),
		Min:  h.Min(),
		Mean: h.Mean(),
		Max:  h.Max(),
		P50:  float64(h.P50()),
		P95:  float64(h.P95()),
		P99:  float64(h.P99()),
	}
}

// MeasureBench runs the selected experiments through the runner and
// assembles the benchmark summary. Each experiment runs exactly once: the
// structured sections are captured from the same runs that produce the
// telemetry.
func MeasureBench(defs []Def, parallel int) BenchData {
	r := Runner{Parallel: parallel}
	start := time.Now()
	results := r.Run(defs)
	total := time.Since(start)

	b := BenchData{Parallel: r.Workers(), TotalWallMS: ms(total), EventsPerSec: rateSummaryOf(results)}
	if b.EngineParallel = EngineParallel; b.EngineParallel < 1 {
		b.EngineParallel = 1
	}
	b.DSMProtocol = DSMProtocol.String()
	var dsmTotals dsm.Counters
	haveDSM := false
	for _, res := range results {
		b.Experiments = append(b.Experiments, telemetryOf(res))
		if c, _ := res.DSMCounters(); res.probe != nil && len(res.probe.dsms) > 0 {
			dsmTotals.Add(c)
			haveDSM = true
		}
		pr := res.probe
		if pr == nil {
			continue
		}
		if pr.t4 != nil {
			b.AllocLatencies = pr.t4
		}
		if pr.t5 != nil {
			b.FaultBreakdown = pr.t5
		}
		if pr.t6 != nil {
			b.DMAThroughput = pr.t6
		}
		if pr.scale != nil {
			b.Scale = pr.scale
		}
		if pr.faults != nil {
			b.Faults = pr.faults
		}
		if pr.chaos != nil {
			b.Chaos = pr.chaos
		}
		if pr.dsmShare != nil {
			b.DSMShare = pr.dsmShare
		}
		if pr.replication != nil {
			b.Replication = pr.replication
		}
	}
	if haveDSM {
		b.DSMCounters = &dsmTotals
	}
	return b
}

// WriteJSON writes the benchmark summary as indented JSON.
func (b BenchData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
