package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func num(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	s := tab.Rows[row][col]
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "x")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell [%d][%d] = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n"},
	}
	out := tab.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTable3MatchesPaperExactly(t *testing.T) {
	tab := Table3()
	checks := []struct {
		row, col int
		want     float64
	}{
		{0, 1, 21.1}, {0, 3, 3.8},
		{1, 1, 79.8}, {1, 3, 25.2},
		{2, 1, 672},
	}
	for _, c := range checks {
		if got := num(t, tab, c.row, c.col); got != c.want {
			t.Errorf("Table3[%d][%d] = %v, want %v", c.row, c.col, got, c.want)
		}
	}
}

func TestTable4WithinPaperBand(t *testing.T) {
	tab := Table4()
	// Columns: size, main, paper, shadow, paper. Every measured value must
	// be within 35% of the paper's.
	for r := range tab.Rows {
		for _, pair := range [][2]int{{1, 2}, {3, 4}} {
			got := num(t, tab, r, pair[0])
			want := num(t, tab, r, pair[1])
			if got < want*0.65 || got > want*1.35 {
				t.Errorf("Table4 row %q: measured %v vs paper %v (>35%% off)",
					tab.Rows[r][0], got, want)
			}
		}
	}
}

func TestTable5WithinPaperBand(t *testing.T) {
	tab := Table5()
	// Total row: main ~52, shadow ~48 (±25%).
	last := len(tab.Rows) - 1
	if got := num(t, tab, last, 1); got < 39 || got > 65 {
		t.Errorf("main-sender total = %v µs, want ~52", got)
	}
	if got := num(t, tab, last, 3); got < 36 || got > 60 {
		t.Errorf("shadow-sender total = %v µs, want ~48", got)
	}
}

func TestTable6Shape(t *testing.T) {
	tab := Table6()
	// Row 0 is the 4K batch: shadow starved (< 1 MB/s), main within 8% of
	// Linux.
	linux4K := num(t, tab, 0, 1)
	main4K := num(t, tab, 0, 4)
	shadow4K := num(t, tab, 0, 5)
	if shadow4K > 1.0 {
		t.Errorf("4K shadow throughput = %v MB/s, want starved (<1)", shadow4K)
	}
	if main4K < linux4K*0.92 {
		t.Errorf("4K main throughput = %v vs linux %v, want within 8%%", main4K, linux4K)
	}
	// IO-bound rows: both kernels healthy, main/shadow split ~2.4:1, total
	// within ±8% of Linux.
	for r := 1; r < len(tab.Rows); r++ {
		linux := num(t, tab, r, 1)
		total := num(t, tab, r, 2)
		main := num(t, tab, r, 4)
		shadow := num(t, tab, r, 5)
		if shadow < 8 {
			t.Errorf("row %s: shadow = %v MB/s, want > 8", tab.Rows[r][0], shadow)
		}
		split := main / shadow
		if split < 1.8 || split > 3.2 {
			t.Errorf("row %s: main/shadow = %.2f, want ~2.4", tab.Rows[r][0], split)
		}
		if total < linux*0.92 || total > linux*1.08 {
			t.Errorf("row %s: K2 total %v vs Linux %v, want within 8%%", tab.Rows[r][0], total, linux)
		}
	}
}

func TestEnergyShapeK2Wins(t *testing.T) {
	ratio := EnergyShape()
	if ratio < 4 || ratio > 12 {
		t.Fatalf("K2/Linux efficiency = %.2fx, want the paper's severalfold band", ratio)
	}
}

func TestStandbyExtension(t *testing.T) {
	tab := StandbyEstimate()
	linuxDays := num(t, tab, 0, 2)
	k2Days := num(t, tab, 1, 2)
	if k2Days <= linuxDays {
		t.Fatalf("K2 standby %v days <= Linux %v days", k2Days, linuxDays)
	}
	ext := k2Days/linuxDays - 1
	if ext < 0.3 || ext > 1.2 {
		t.Fatalf("standby extension = %.0f%%, want the paper's +59%% band", ext*100)
	}
}

func TestAblationSharedAllocatorSlowdown(t *testing.T) {
	tab := AblationSharedAllocator()
	faults := num(t, tab, 2, 1)
	slowdown := num(t, tab, 3, 1)
	if faults < 4 || faults > 5.5 {
		t.Errorf("faults per alloc = %v, paper says 4-5", faults)
	}
	if slowdown < 100 || slowdown > 600 {
		t.Errorf("slowdown = %vx, paper says ~200x", slowdown)
	}
}

func TestAblationThreeStateShape(t *testing.T) {
	tab := AblationThreeState()
	// Single-writer column: two-state must beat three-state-on-OMAP4.
	two := num(t, tab, 0, 1)
	omap := num(t, tab, 1, 1)
	capable := num(t, tab, 2, 1)
	if two >= omap {
		t.Errorf("single writer: two-state %v >= three-state-OMAP4 %v; K2's choice unjustified", two, omap)
	}
	if capable > two*1.2 {
		t.Errorf("single writer: capable-MMU three-state %v should match two-state %v", capable, two)
	}
	// Concurrent readers: the capable MMU must crush two-state's ping-pong.
	twoConc := num(t, tab, 0, 3)
	capableConc := num(t, tab, 2, 3)
	if capableConc*5 > twoConc {
		t.Errorf("concurrent readers: capable three-state %v not clearly better than two-state %v",
			capableConc, twoConc)
	}
}

func TestAblationInactiveClaimLoadBearing(t *testing.T) {
	tab := AblationInactiveClaim()
	withEff := num(t, tab, 0, 2)
	withoutEff := num(t, tab, 1, 2)
	if withEff < withoutEff*3 {
		t.Fatalf("claim path gains only %vx (%v vs %v MB/J); it should be load-bearing",
			withEff/withoutEff, withEff, withoutEff)
	}
	if wakes := num(t, tab, 0, 3); wakes != 0 {
		t.Fatalf("with the claim path the strong domain woke %v times", wakes)
	}
	if wakes := num(t, tab, 1, 3); wakes == 0 {
		t.Fatal("without the claim path the strong domain should have woken")
	}
}

func TestAblationPlacementPolicyHelps(t *testing.T) {
	tab := AblationPlacementPolicy()
	withPol := num(t, tab, 0, 1)
	withoutPol := num(t, tab, 1, 1)
	if withPol <= withoutPol {
		t.Fatalf("frontier placement leaves %v reclaimable blocks vs vanilla %v; policy ineffective",
			withPol, withoutPol)
	}
}

func TestAblationSuspendOverlapSavesMicroseconds(t *testing.T) {
	tab := AblationSuspendOverlap()
	with := num(t, tab, 0, 2)
	without := num(t, tab, 1, 2)
	if with < 0.5 || with > 2.5 {
		t.Errorf("overlapped overhead = %v µs, want the paper's 1-2 µs", with)
	}
	if without < with+2 {
		t.Errorf("sequential overhead %v µs not clearly worse than overlapped %v µs", without, with)
	}
}

func TestStandbyTimelineAgreesWithEstimate(t *testing.T) {
	// The simulated-timeline measurement must agree with the per-episode
	// extrapolation within 15%.
	est := StandbyEstimate()
	tl := StandbyTimeline()
	for row := 0; row < 2; row++ {
		a := num(t, est, row, 1)
		b := num(t, tl, row, 1)
		if b < a*0.85 || b > a*1.15 {
			t.Errorf("row %s: timeline %v mW vs estimate %v mW", est.Rows[row][0], b, a)
		}
	}
}

func TestTimeoutSensitivityMonotone(t *testing.T) {
	tab := TimeoutSensitivity()
	// Absolute efficiencies fall as the timeout grows (longer tails)...
	for r := 1; r < len(tab.Rows); r++ {
		if num(t, tab, r, 2) >= num(t, tab, r-1, 2) {
			t.Errorf("K2 efficiency not decreasing with timeout at row %d", r)
		}
	}
	// ...while the K2/Linux ratio stays in the idle-power-ratio band.
	for r := range tab.Rows {
		ratio := num(t, tab, r, 3)
		if ratio < 5 || ratio > 7.5 {
			t.Errorf("row %d ratio = %v, want near 6.6x", r, ratio)
		}
	}
}

func TestDayInLifeSmallerButPositiveGain(t *testing.T) {
	day := DayInLife()
	standby := StandbyEstimate()
	dayExt := num(t, day, 2, 2)
	standbyExt := num(t, standby, 2, 2)
	if dayExt <= 5 {
		t.Fatalf("day-in-life extension = %v%%, want positive", dayExt)
	}
	if dayExt >= standbyExt {
		t.Fatalf("day-in-life extension (%v%%) should be smaller than standby-only (%v%%): foreground costs are common to both OSes",
			dayExt, standbyExt)
	}
}

func TestFigure1MonotoneTrend(t *testing.T) {
	tab := Figure1()
	// Along the DVFS rows, power decreases with performance.
	for r := 1; r < 4; r++ {
		if num(t, tab, r, 3) >= num(t, tab, r-1, 3) {
			t.Errorf("DVFS power not decreasing at row %d", r)
		}
	}
	// The multi-domain point has the lowest idle power of all rows.
	last := len(tab.Rows) - 1
	m3Idle := num(t, tab, last, 4)
	for r := 0; r < last; r++ {
		if num(t, tab, r, 4) <= m3Idle {
			t.Errorf("row %d idle power %v <= M3 idle %v", r, num(t, tab, r, 4), m3Idle)
		}
	}
}

func TestTable2ShadowedDominates(t *testing.T) {
	tab := Table2()
	var counts = map[string]float64{}
	for r := range tab.Rows {
		counts[tab.Rows[r][0]] = num(t, tab, r, 1)
	}
	if counts["shadowed"] < counts["independent"] || counts["shadowed"] < counts["private"] {
		t.Fatalf("shadowed must be the largest class: %v", counts)
	}
}
