package experiment

import (
	"fmt"
	"time"

	"k2/internal/check"
	"k2/internal/core"
	"k2/internal/dsm"
	"k2/internal/mem"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

// This file is the read-replication ablation: the same sharing workloads
// under the paper's two-state protocol and under the MSI protocol with
// IVY-style probOwner ownership (dsm.Params.Protocol). Read-mostly sharing
// is where two-state pays its price — every read steals the only copy, so
// interleaved readers ping-pong the page — while MSI installs a Shared copy
// per domain once per write epoch. Write-heavy sharing has no read copies
// to preserve, so the two protocols should measure within noise of each
// other; the table keeps both patterns side by side to show exactly that.

// DSMShareCase is one measured cell: a protocol on a platform with
// WeakDomains weak domains under one sharing pattern.
type DSMShareCase struct {
	Pattern       string  `json:"pattern"` // "read-heavy" or "write-heavy"
	WeakDomains   int     `json:"weak_domains"`
	Protocol      string  `json:"protocol"`
	Faults        int     `json:"faults"`
	ReadFaults    int     `json:"read_faults,omitempty"`
	WriteFaults   int     `json:"write_faults,omitempty"`
	Invalidations int     `json:"invalidations,omitempty"`
	Messages      int     `json:"messages"`
	MeanFaultUS   float64 `json:"mean_fault_us"`
	P95FaultUS    float64 `json:"p95_fault_us"`
	Hops          int     `json:"probowner_hops,omitempty"`
	MaxChain      int     `json:"max_chain_depth,omitempty"`
}

const (
	// One write epoch: the producer writes, then the readers read the page
	// dsmShareReads times each before the next write invalidates them again.
	dsmShareEpochs = 6
	dsmShareReads  = 8
	// dsmSharePeriod spaces the write-heavy writers' stores.
	dsmSharePeriod = 400 * time.Microsecond
	// Read-heavy timing: the producer sleeps dsmShareEpochGap between
	// writes; with dsmShareTimeout its domain is fully suspended by the
	// time the readers wake dsmShareReaderLag into the epoch and burst
	// their polls at dsmShareReadGap spacing. The lag deliberately clears
	// the suspend transition, so every fault against the producer finds it
	// cleanly inactive — the §9.2 standby regime.
	dsmShareEpochGap  = 4 * time.Millisecond
	dsmShareReaderLag = 1500 * time.Microsecond
	dsmShareReadGap   = 50 * time.Microsecond
	dsmShareTimeout   = time.Millisecond
)

// dsmShareCase boots a K2 platform with weak weak domains under the given
// protocol and drives one sharing pattern over a single shared page.
//
// Read-heavy: a producer thread on the first weak domain writes the page
// once per epoch, then sleeps long enough for its domain to suspend; every
// other weak domain runs a reader that wakes mid-epoch and bursts
// dsmShareReads polls, spaced with busy work so the reader domains stay
// awake. Under two-state every poll is a fault: the first steal per epoch
// claims from the suspended producer, the rest chase the copy around the
// awake readers at full mailbox round trips (and collide into OwnerTimeout
// resends as the reader count grows). Under MSI each reader faults once
// per epoch and the claim from the suspended owner installs a Shared copy
// without waking anyone.
//
// Write-heavy: every weak domain runs a producer writing the page in a
// staggered round-robin; there are no standing read copies, so MSI has
// nothing to replicate and must match two-state within noise.
func dsmShareCase(proto dsm.Protocol, weak int, pattern string) DSMShareCase {
	prm := dsm.DefaultParams()
	prm.Protocol = proto
	// The default 5 s inactive timeout never fires inside a ~25 ms
	// workload; a 1 ms timeout (identical for both protocols) lets domains
	// actually suspend between accesses, as they do on the paper's
	// platform at standby time scales.
	cfg := soc.DefaultConfig()
	cfg.InactiveTimeout = dsmShareTimeout
	e, o := bootFresh(core.K2Mode, func(op *core.Options) {
		op.SoC = &cfg
		op.WeakDomains = weak
		op.DSMParams = &prm
	})
	suite := check.New(o)
	pfn, err := o.Mem.Buddies[soc.Strong].AllocBoot(0, mem.Unmovable)
	if err != nil {
		panic(err)
	}
	o.DSM.Share(pfn)

	// The first thread warms the page — the boot-time transfer out of the
	// strong domain pays a bottom-half deferral (~340 µs) that both
	// protocols share and neither's steady state contains — then resets the
	// counters and records the mailbox baseline, so the measurement is the
	// sharing pattern alone.
	mail0 := make([]int, o.S.NumDomains())
	warmed := sim.NewEvent(e)
	warm := func(th *sched.Thread) {
		o.DSM.Write(th.P(), th.Core(), th.Kernel(), pfn)
		o.DSM.ResetStats()
		for id := range mail0 {
			mail0[id] = o.S.Mailbox.SentBy(soc.DomainID(id))
		}
		warmed.Fire()
	}

	var dones []*sim.Event
	switch pattern {
	case "read-heavy":
		epochs := make([]*sim.Event, dsmShareEpochs)
		for i := range epochs {
			epochs[i] = sim.NewEvent(e)
		}
		dones = append(dones, runThread(o, sched.NightWatch, "share-producer", nil, func(th *sched.Thread) {
			warm(th)
			for i := 0; i < dsmShareEpochs; i++ {
				o.DSM.Write(th.P(), th.Core(), th.Kernel(), pfn)
				epochs[i].Fire()
				th.SleepIdle(dsmShareEpochGap)
			}
		}))
		for r := 0; r < weak-1; r++ {
			r := r
			dones = append(dones, runThread(o, sched.NightWatch, fmt.Sprintf("share-reader-%d", r), warmed, func(th *sched.Thread) {
				for i := 0; i < dsmShareEpochs; i++ {
					ev := epochs[i]
					th.Block(func(p *sim.Proc) { ev.Wait(p) })
					// Wake well past the producer's suspend transition,
					// with a small per-reader stagger, then burst the
					// polls; busy work between polls keeps this domain
					// awake, so two-state steals from fellow readers pay
					// full mailbox round trips.
					th.SleepIdle(dsmShareReaderLag + time.Duration(r+1)*5*time.Microsecond)
					for j := 0; j < dsmShareReads; j++ {
						o.DSM.Read(th.P(), th.Core(), th.Kernel(), pfn)
						th.Exec(soc.Work(dsmShareReadGap))
					}
				}
			}))
		}
	case "write-heavy":
		for r := 0; r < weak; r++ {
			r := r
			after := warmed
			if r == 0 {
				after = nil
			}
			dones = append(dones, runThread(o, sched.NightWatch, fmt.Sprintf("share-writer-%d", r), after, func(th *sched.Thread) {
				if r == 0 {
					warm(th)
				}
				th.Exec(soc.Work(time.Duration(r+1) * 100 * time.Microsecond))
				for i := 0; i < 2*dsmShareReads; i++ {
					o.DSM.Write(th.P(), th.Core(), th.Kernel(), pfn)
					th.Exec(soc.Work(2 * dsmSharePeriod))
				}
			}))
		}
	default:
		panic("experiment: unknown dsmshare pattern " + pattern)
	}
	e.Spawn("share-monitor", func(p *sim.Proc) {
		for _, d := range dones {
			d.Wait(p)
		}
		e.Stop()
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}
	for _, d := range dones {
		if !d.Fired() {
			panic("experiment: dsmshare workload did not finish")
		}
	}
	// Every fault completed, so the system is quiescent: audit everything,
	// including the MSI forwarding-chain liveness invariant.
	suite.RequireQuiescent = true
	if vs := suite.Final(); len(vs) != 0 {
		panic(fmt.Sprintf("experiment: dsmshare violated invariants: %v", vs))
	}

	c := o.DSM.Totals()
	cs := DSMShareCase{
		Pattern:       pattern,
		WeakDomains:   weak,
		Protocol:      proto.String(),
		Faults:        c.Faults,
		ReadFaults:    c.ReadFaults,
		WriteFaults:   c.WriteFaults,
		Invalidations: c.InvalidationsSent,
		Hops:          c.ProbOwnerHops,
		MaxChain:      c.ForwardMaxDepth,
	}
	var total time.Duration
	var p95 time.Duration
	for id := range o.S.Domains {
		k := soc.DomainID(id)
		cs.Messages += o.S.Mailbox.SentBy(k) - mail0[id]
		total += o.DSM.RequesterStats[k].Total
		if v := o.DSM.FaultHist[k].P95(); v > p95 {
			p95 = v
		}
	}
	if c.Faults > 0 {
		cs.MeanFaultUS = float64(total.Nanoseconds()) / float64(c.Faults) / 1e3
	}
	cs.P95FaultUS = float64(p95.Nanoseconds()) / 1e3
	return cs
}

// MeasureDSMShare runs the full protocol ablation: read-heavy and
// write-heavy sharing across 2/4/8/16 weak domains under both protocols.
func MeasureDSMShare() []DSMShareCase {
	var out []DSMShareCase
	for _, pattern := range []string{"read-heavy", "write-heavy"} {
		for _, weak := range []int{2, 4, 8, 16} {
			for _, proto := range []dsm.Protocol{dsm.TwoState, dsm.MSI} {
				out = append(out, dsmShareCase(proto, weak, pattern))
			}
		}
	}
	deposit(func(pr *probe) { pr.dsmShare = out })
	return out
}

// DSMShare reports the read-replication ablation table.
func DSMShare() Table {
	return dsmShareTable(MeasureDSMShare())
}

// DSMShareN is the ablation narrowed to a single platform with weak weak
// domains (the k2d weak_domains job parameter), still under both protocols
// and both patterns.
func DSMShareN(weak int) Table {
	var out []DSMShareCase
	for _, pattern := range []string{"read-heavy", "write-heavy"} {
		for _, proto := range []dsm.Protocol{dsm.TwoState, dsm.MSI} {
			out = append(out, dsmShareCase(proto, weak, pattern))
		}
	}
	deposit(func(pr *probe) { pr.dsmShare = out })
	return dsmShareTable(out)
}

func dsmShareTable(cases []DSMShareCase) Table {
	t := Table{
		ID:    "DSM share",
		Title: "two-state vs MSI/probOwner under read-heavy and write-heavy sharing",
		Header: []string{"pattern", "weak", "protocol", "faults", "read", "write",
			"inval", "mail", "mean fault (µs)", "p95 (µs)", "hops", "chain"},
	}
	var prevPattern string
	for _, c := range cases {
		label := ""
		if c.Pattern != prevPattern {
			label = c.Pattern
			prevPattern = c.Pattern
		}
		weakLabel := ""
		if c.Protocol == dsm.TwoState.String() {
			weakLabel = fmt.Sprintf("%d", c.WeakDomains)
		}
		t.Rows = append(t.Rows, []string{
			label, weakLabel, c.Protocol,
			fmt.Sprintf("%d", c.Faults),
			fmt.Sprintf("%d", c.ReadFaults), fmt.Sprintf("%d", c.WriteFaults),
			fmt.Sprintf("%d", c.Invalidations), fmt.Sprintf("%d", c.Messages),
			f1(c.MeanFaultUS), f1(c.P95FaultUS),
			fmt.Sprintf("%d", c.Hops), fmt.Sprintf("%d", c.MaxChain),
		})
	}
	t.Notes = append(t.Notes,
		"read-heavy: one producer writing per epoch then suspending, one reader per other weak domain bursting polls mid-epoch; staggered so bursts overlap",
		"write-heavy: staggered round-robin writers on every weak domain; no standing read copies, so the protocols should match within noise",
		"read/write fault split, invalidations, hops and chain depth are MSI-only counters (zero under two-state)")
	return t
}
