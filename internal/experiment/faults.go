package experiment

import (
	"fmt"
	"time"

	"k2/internal/check"
	"k2/internal/core"
	"k2/internal/dsm"
	"k2/internal/fault"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

// FaultSeed seeds the fault experiment's injector (the k2bench/k2sim -seed
// flag). Two runs with the same seed produce identical traces and results.
var FaultSeed int64 = 1

// FaultsData is the machine-readable result of the fault-injection
// experiment: one fault-free baseline and one faulted run of the same
// workload on the same platform, plus the recovery metrics of the faulted
// run.
type FaultsData struct {
	Seed int64 `json:"seed"`

	// Scenario.
	CrashAtMS     float64 `json:"crash_at_ms"`
	RebootAfterMS float64 `json:"reboot_after_ms"`
	DropPct       float64 `json:"mail_drop_pct"`

	// Recovery, from the watchdog's death record.
	DetectionUS     float64 `json:"detection_us"` // crash -> declared dead
	ReclaimUS       float64 `json:"reclaim_us"`   // declared -> state swept
	ReclaimedPages  int     `json:"reclaimed_pages"`
	ReclaimedBlocks int     `json:"reclaimed_blocks"`
	BrokenLocks     int     `json:"broken_locks"`
	WatchdogReboots int     `json:"watchdog_reboots"` // kernels seen alive again

	// Transport overhead.
	MailsDropped     int `json:"mails_dropped"` // injected + lost to the dead domain
	AcksDropped      int `json:"acks_dropped"`
	Retransmits      int `json:"retransmits"`
	Deduped          int `json:"deduped"`
	DeliveryFailures int `json:"delivery_failures"`

	// Cost vs the fault-free baseline.
	BaselineEnergyMJ  float64 `json:"baseline_energy_mj"`
	FaultedEnergyMJ   float64 `json:"faulted_energy_mj"`
	EnergyOverheadPct float64 `json:"energy_overhead_pct"`
	BaselineSpanMS    float64 `json:"baseline_span_ms"`
	FaultedSpanMS     float64 `json:"faulted_span_ms"`

	InvariantsOK bool `json:"invariants_ok"`
}

// faultPlatform is the common configuration of both runs: two weak domains,
// reliable mailbox transport, the shadow-kernel watchdog, and a bounded DSM
// owner-timeout — the full recovery stack. The baseline run pays for the
// stack (heartbeats, acks) but sees no faults, so the energy delta is the
// honest price of surviving the injected ones.
func faultPlatform(op *core.Options) {
	op.WeakDomains = 2
	cfg := soc.DefaultConfig().WithWeakDomains(2)
	rel := soc.DefaultReliableParams()
	cfg.Reliable = &rel
	op.SoC = &cfg
	wd := core.DefaultWatchdogParams()
	op.Watchdog = &wd
	prm := dsm.DefaultParams()
	prm.OwnerTimeout = 200 * time.Microsecond
	op.DSMParams = &prm
}

// faultsRun drives the sensorhub-style background load (as in the scale
// experiment) with the given plan armed and returns the booted system plus
// the workload span. Crashed workers freeze with their domain and finish
// after the scripted reboot, so the run terminates whenever every injected
// crash reboots.
func faultsRun(plan *fault.Plan) (*sim.Engine, *core.OS, *check.Suite, []check.Violation, time.Duration) {
	e, o := bootFresh(core.K2Mode, faultPlatform)
	suite := check.New(o)
	plan.Arm(o.S, o.Trace)
	const workers = 4
	const episodes = 40
	done := 0
	var span time.Duration
	start := e.Now()
	// The same mid-run quiesce-point audits the chaos driver arms (pure
	// reads: the measured numbers are unchanged).
	var periodic []check.Violation
	check.ScheduleChecks(e, suite, 25*time.Millisecond, 150*time.Millisecond, 25*time.Millisecond,
		func() bool { return done == workers },
		func(vs []check.Violation) { periodic = append(periodic, vs...) })
	for w := 0; w < workers; w++ {
		runThread(o, sched.NightWatch, fmt.Sprintf("sense-%d", w), nil, func(th *sched.Thread) {
			for i := 0; i < episodes; i++ {
				o.DMA.Transfer(th, 4<<10)
				th.Exec(soc.Work(50 * time.Microsecond)) // feature extraction
				th.SleepIdle(5 * time.Millisecond)
			}
			done++
			if done == workers {
				span = th.P().Now().Sub(start)
				e.Stop()
			}
		})
	}
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}
	if done != workers {
		panic("experiment: faulted workers did not finish")
	}
	return e, o, suite, periodic, span
}

// MeasureFaults runs the fault-injection experiment with the process-wide
// FaultSeed (the k2bench/k2sim -seed flag).
func MeasureFaults() FaultsData { return MeasureFaultsSeed(FaultSeed) }

// MeasureFaultsSeed runs the fault-injection experiment with an explicit
// seed: a fault-free baseline, then the same workload with weak domain 1
// crashing mid-run (rebooting 50 ms later) and every mailbox link dropping
// ~1 % of its traffic. Unlike MeasureFaults it reads no process-wide
// state, so concurrent runs with different seeds (k2d jobs) cannot race.
func MeasureFaultsSeed(seed int64) FaultsData {
	const (
		crashAt     = 60 * time.Millisecond
		rebootAfter = 50 * time.Millisecond
		dropP       = 0.01
	)
	d := FaultsData{
		Seed:          seed,
		CrashAtMS:     float64(crashAt.Microseconds()) / 1e3,
		RebootAfterMS: float64(rebootAfter.Microseconds()) / 1e3,
		DropPct:       dropP * 100,
	}

	_, ob, suiteB, periodicB, spanB := faultsRun(fault.NewPlan(seed)) // empty plan: fault-free
	d.BaselineEnergyMJ = ob.EnergyJ() * 1e3
	d.BaselineSpanMS = float64(spanB.Microseconds()) / 1e3

	plan := fault.NewPlan(seed).
		CrashAt(soc.Weak, crashAt, rebootAfter).
		AllLinks(fault.LinkFaults{DropP: dropP})
	_, o, suiteF, periodicF, span := faultsRun(plan)
	d.FaultedEnergyMJ = o.EnergyJ() * 1e3
	d.FaultedSpanMS = float64(span.Microseconds()) / 1e3
	if d.BaselineEnergyMJ > 0 {
		d.EnergyOverheadPct = (d.FaultedEnergyMJ/d.BaselineEnergyMJ - 1) * 100
	}

	if len(o.Watchdog.Deaths) > 0 {
		rec := o.Watchdog.Deaths[0]
		d.DetectionUS = float64(rec.DeclaredAt.Sub(sim.Time(crashAt)).Microseconds())
		d.ReclaimUS = float64(time.Duration(rec.RecoveredAt - rec.DeclaredAt).Microseconds())
		d.ReclaimedPages = rec.ReclaimedPages
		d.ReclaimedBlocks = rec.ReclaimedBlocks
		d.BrokenLocks = rec.BrokenLocks
	}
	d.WatchdogReboots = o.Watchdog.Reboots
	d.MailsDropped = o.S.Mailbox.Stats.Dropped
	d.AcksDropped = o.S.Mailbox.Stats.AcksDropped
	d.Retransmits = o.S.Mailbox.Stats.Retransmits
	d.Deduped = o.S.Mailbox.Stats.Deduped
	d.DeliveryFailures = o.S.Mailbox.Stats.Failed
	// The full invariant oracle, not just the two ad-hoc checks it replaced:
	// DSM directory, memory conservation, the energy integral and crashed-
	// domain residue, at the mid-run quiesce points and at end-of-run, on
	// both runs (after the energy snapshots above).
	d.InvariantsOK = len(periodicB) == 0 && len(suiteB.Final()) == 0 &&
		len(periodicF) == 0 && len(suiteF.Final()) == 0
	deposit(func(pr *probe) { pr.faults = &d })
	return d
}

// Faults reports the fault-injection experiment: what it costs the system
// to survive a mid-run kernel crash plus a lossy fabric, measured against
// the identical fault-free configuration.
func Faults() Table { return FaultsSeed(FaultSeed) }

// FaultsSeed is Faults with an explicit injector seed.
func FaultsSeed(seed int64) Table {
	d := MeasureFaultsSeed(seed)
	t := Table{
		ID: "Faults",
		Title: fmt.Sprintf(
			"crash of weak domain 1 at %.0f ms (+%.0f ms reboot), %.0f%% mail loss, seed %d",
			d.CrashAtMS, d.RebootAfterMS, d.DropPct, d.Seed),
		Header: []string{"Metric", "Fault-free", "Faulted"},
	}
	t.Rows = [][]string{
		{"episode span (ms)", f1(d.BaselineSpanMS), f1(d.FaultedSpanMS)},
		{"energy (mJ)", f2(d.BaselineEnergyMJ), f2(d.FaultedEnergyMJ)},
		{"energy overhead", "-", f1(d.EnergyOverheadPct) + "%"},
		{"death detection (µs)", "-", f1(d.DetectionUS)},
		{"state reclaim (µs)", "-", f1(d.ReclaimUS)},
		{"pages / blocks / locks reclaimed", "-",
			fmt.Sprintf("%d / %d / %d", d.ReclaimedPages, d.ReclaimedBlocks, d.BrokenLocks)},
		{"kernels seen rebooted", "-", fmt.Sprintf("%d", d.WatchdogReboots)},
		{"mails dropped / acks dropped", "0 / 0",
			fmt.Sprintf("%d / %d", d.MailsDropped, d.AcksDropped)},
		{"retransmits / deduped / failed", "0 / 0 / 0",
			fmt.Sprintf("%d / %d / %d", d.Retransmits, d.Deduped, d.DeliveryFailures)},
		{"invariants after recovery", "-", fmt.Sprintf("%v", d.InvariantsOK)},
	}
	t.Notes = append(t.Notes,
		"both runs use the full recovery stack (reliable transport, watchdog, DSM owner timeout); only the faults differ",
		"crashed workers freeze with their domain and complete after the reboot — the run finishes instead of hanging",
		"same -seed => identical trace and identical numbers (deterministic injector)")
	return t
}
