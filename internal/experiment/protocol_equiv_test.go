package experiment

import (
	"context"
	"testing"

	"k2/internal/dsm"
)

// Protocol-equivalence suite: every registry experiment must run to
// completion under the MSI protocol with all of its internal invariant
// suites passing (they panic on violation), and the experiments whose
// workloads never share DSM pages must produce byte-identical tables under
// both protocols. The chaos entry is covered by the chaos package's own MSI
// sweep; dsmshare pins both protocols internally.

// dsmFreeIDs are the experiments whose tables cannot depend on the DSM
// protocol at all: static platform tables and the pure frequency figure.
var dsmFreeIDs = map[string]bool{
	"t1": true, "f1": true, "t2": true, "t3": true,
}

func TestRegistryRunsUnderMSI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry twice")
	}
	for _, d := range Registry() {
		switch d.ID {
		case "chaos":
			continue
		}
		d := d
		t.Run(d.ID, func(t *testing.T) {
			r := MeasureContext(context.Background(), d, WithDSMProtocol(dsm.MSI))
			if r.Err != nil {
				t.Fatalf("%s under MSI: %v", d.ID, r.Err)
			}
			if len(r.Table.Header) == 0 && len(r.Table.Rows) == 0 {
				t.Fatalf("%s under MSI produced an empty table", d.ID)
			}
			if dsmFreeIDs[d.ID] {
				base := Measure(Def{ID: d.ID, Name: d.Name, Run: d.Run})
				if got, want := r.Table.String(), base.Table.String(); got != want {
					t.Fatalf("%s differs under MSI although it never touches the DSM:\n--- msi\n%s\n--- twostate\n%s",
						d.ID, got, want)
				}
			}
		})
	}
}

// The per-measurement override must reach the systems the experiment boots:
// a Table 5 run under MSI reports MSI counters, while the package default
// stays two-state and reports none.
func TestWithDSMProtocolReachesBootedSystems(t *testing.T) {
	d, ok := DefFor("t5", Params{})
	if !ok {
		t.Fatal("t5 not registered")
	}
	r := MeasureContext(context.Background(), d, WithDSMProtocol(dsm.MSI))
	c, msi := r.DSMCounters()
	if !msi {
		t.Fatal("no booted system ran the MSI protocol under WithDSMProtocol")
	}
	if c.Faults == 0 {
		t.Fatal("t5 under MSI recorded no DSM faults")
	}
	base := Measure(d)
	bc, msi := base.DSMCounters()
	if msi {
		t.Fatal("default t5 reports an MSI system")
	}
	if bc.ReadFaults != 0 || bc.InvalidationsSent != 0 || bc.ProbOwnerHops != 0 {
		t.Fatalf("default t5 moved MSI-only counters: %+v", bc)
	}
}
