// Package experiment reproduces every table and figure of the paper's
// evaluation (§9): each experiment boots fresh systems (K2 and the Linux
// baseline), drives the workloads, and renders a text table next to the
// paper's reported values. See DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for recorded results.
package experiment

import (
	"fmt"
	"strings"
	"time"

	"k2/internal/core"
	"k2/internal/dsm"
	"k2/internal/pdes"
	"k2/internal/sim"
)

// Table is one rendered experiment result.
type Table struct {
	ID     string // e.g. "Table 4", "Figure 6(a)"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// bootFresh boots an OS of the given mode on a new engine and runs it to
// the boot-ready barrier, so every workload — cold-booted or warm-started —
// is released from the same quiesce instant. When the active probe asks for
// warm starts (k2d -warm-start), the boot is served by restoring a cached
// checkpoint of a system booted with the same options; platforms that
// cannot be captured quiescently fall back to a cold boot. Either path
// yields byte-identical systems. When the run is measured with a trace sink
// (MeasureContext + WithTraceSink), the sink is installed on the booted
// system's tracer; a warm start first replays the captured boot trace, so
// the stream matches a cold boot's byte-for-byte.
func bootFresh(mode core.Mode, opts ...func(*core.Options)) (*sim.Engine, *core.OS) {
	start := time.Now()
	pr := activeProbe()
	o := core.Options{Mode: mode}
	if pr != nil {
		o.TraceSink = pr.traceSink
	}
	for _, f := range opts {
		f(&o)
	}
	// Select the coherence protocol for systems that did not pin their own
	// DSM parameters: the measurement's override when present, else the
	// process-wide default. Experiments with explicit params (the protocol
	// ablations, chaos recovery platforms) keep what they asked for.
	proto := DSMProtocol
	if pr != nil && pr.dsmProtocolSet {
		proto = pr.dsmProtocol
	}
	if proto != dsm.TwoState && o.DSMParams == nil {
		prm := dsm.DefaultParams()
		prm.Protocol = proto
		o.DSMParams = &prm
	}
	// Engine parallelism rides the same override-then-default resolution.
	// It is excluded from the snapshot fingerprint on purpose: a restored
	// system is byte-identical at any parallelism, so checkpoints are shared
	// across -engine-parallel values.
	par := pr.effectiveParallel()
	if par > 1 {
		o.EngineParallel = par
	}
	if pr != nil && pr.warmStart {
		if snp, err := readySnapshot(o); err == nil {
			e := newEngine()
			if os, err := snp.Restore(e, o.TraceSink); err == nil {
				if par > 1 {
					pdes.Attach(e, par)
				}
				pr.warmStarts++
				pr.bootWall += time.Since(start)
				if os.DSM != nil {
					pr.dsms = append(pr.dsms, os.DSM)
				}
				return e, os
			}
		}
	}
	e := newEngine()
	var os *core.OS
	e.Spawn("boot-monitor", func(p *sim.Proc) {
		os.Ready.Wait(p)
		e.Stop()
	})
	var err error
	if os, err = core.Boot(e, o); err != nil {
		panic(err)
	}
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}
	if !os.Ready.Fired() {
		panic("experiment: boot never reached the ready barrier")
	}
	if pr != nil {
		pr.bootWall += time.Since(start)
		if os.DSM != nil {
			pr.dsms = append(pr.dsms, os.DSM)
		}
	}
	return e, os
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func fx(v float64) string { return fmt.Sprintf("%.1fx", v) }
func sz(bytes int64) string {
	switch {
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dM", bytes>>20)
	case bytes >= 1<<10 && bytes%(1<<10) == 0:
		return fmt.Sprintf("%dK", bytes>>10)
	default:
		return fmt.Sprintf("%d", bytes)
	}
}

// All runs every deterministic experiment in the reproduction, in paper
// order (the fault-injection and chaos experiments, whose results depend on
// the process-wide seeds, stay opt-in via the registry).
func All() []Table {
	var out []Table
	for _, d := range Registry() {
		if d.ID == "faults" || d.ID == "chaos" || d.ID == "replication" {
			continue
		}
		out = append(out, d.Run())
	}
	return out
}
