// Package experiment reproduces every table and figure of the paper's
// evaluation (§9): each experiment boots fresh systems (K2 and the Linux
// baseline), drives the workloads, and renders a text table next to the
// paper's reported values. See DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for recorded results.
package experiment

import (
	"fmt"
	"strings"

	"k2/internal/core"
	"k2/internal/sim"
)

// Table is one rendered experiment result.
type Table struct {
	ID     string // e.g. "Table 4", "Figure 6(a)"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// bootFresh boots an OS of the given mode on a new engine. When the run is
// measured with a trace sink (MeasureContext + WithTraceSink), the sink is
// installed on the booted system's tracer.
func bootFresh(mode core.Mode, opts ...func(*core.Options)) (*sim.Engine, *core.OS) {
	e := newEngine()
	o := core.Options{Mode: mode}
	if pr := activeProbe(); pr != nil {
		o.TraceSink = pr.traceSink
	}
	for _, f := range opts {
		f(&o)
	}
	os, err := core.Boot(e, o)
	if err != nil {
		panic(err)
	}
	return e, os
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func fx(v float64) string { return fmt.Sprintf("%.1fx", v) }
func sz(bytes int64) string {
	switch {
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dM", bytes>>20)
	case bytes >= 1<<10 && bytes%(1<<10) == 0:
		return fmt.Sprintf("%dK", bytes>>10)
	default:
		return fmt.Sprintf("%d", bytes)
	}
}

// All runs every deterministic experiment in the reproduction, in paper
// order (the fault-injection and chaos experiments, whose results depend on
// the process-wide seeds, stay opt-in via the registry).
func All() []Table {
	var out []Table
	for _, d := range Registry() {
		if d.ID == "faults" || d.ID == "chaos" {
			continue
		}
		out = append(out, d.Run())
	}
	return out
}
