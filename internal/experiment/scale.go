package experiment

import (
	"fmt"
	"time"

	"k2/internal/check"
	"k2/internal/core"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

// ScaleDomain is one domain's share of a scale run.
type ScaleDomain struct {
	Domain      string  `json:"domain"`
	Faults      int     `json:"dsm_faults"`
	Claims      int     `json:"dsm_claims"`
	MeanFaultUS float64 `json:"mean_fault_us"`
	MailIn      int     `json:"mail_in"`
	MailOut     int     `json:"mail_out"`
	EnergyMJ    float64 `json:"energy_mj"`
}

// ScaleConfig is the result of one scale run: a platform with the given
// number of weak domains under the fixed background workload.
type ScaleConfig struct {
	WeakDomains int           `json:"weak_domains"`
	Workers     int           `json:"workers"`
	Domains     []ScaleDomain `json:"domains"`
}

// scaleRun boots a platform with weak weak domains and drives a
// sensorhub-style background load: several independent light-task processes,
// each a NightWatch thread running short DMA-driven sensing episodes. The
// scheduler spreads the processes across the weak domains; the shadowed DMA
// driver state makes every episode exercise the N-kernel DSM.
func scaleRun(weak int) ScaleConfig {
	e, o := bootFresh(core.K2Mode, func(op *core.Options) { op.WeakDomains = weak })
	suite := check.New(o)
	const workers = 4
	const episodes = 40
	done := 0
	// The same mid-run quiesce-point audits the chaos driver arms (pure
	// reads: the measured numbers are unchanged).
	var periodic []check.Violation
	check.ScheduleChecks(e, suite, 25*time.Millisecond, 150*time.Millisecond, 25*time.Millisecond,
		func() bool { return done == workers },
		func(vs []check.Violation) { periodic = append(periodic, vs...) })
	for w := 0; w < workers; w++ {
		runThread(o, sched.NightWatch, fmt.Sprintf("sense-%d", w), nil, func(th *sched.Thread) {
			for i := 0; i < episodes; i++ {
				o.DMA.Transfer(th, 4<<10)
				th.Exec(soc.Work(50 * time.Microsecond)) // feature extraction
				th.SleepIdle(5 * time.Millisecond)
			}
			done++
			if done == workers {
				e.Stop()
			}
		})
	}
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}
	if done != workers {
		panic("experiment: scale workers did not finish")
	}

	cfg := ScaleConfig{WeakDomains: weak, Workers: workers}
	for id, d := range o.S.Domains {
		k := soc.DomainID(id)
		st := o.DSM.RequesterStats[k]
		cfg.Domains = append(cfg.Domains, ScaleDomain{
			Domain:      k.String(),
			Faults:      st.Faults,
			Claims:      st.Claims,
			MeanFaultUS: float64(st.Mean().Nanoseconds()) / 1e3,
			MailIn:      o.S.Mailbox.Sent(k),
			MailOut:     o.S.Mailbox.SentBy(k),
			EnergyMJ:    d.Rail.EnergyJ() * 1e3,
		})
	}
	// End-of-run invariant audit (after the energy snapshot): a violation
	// here — or at any mid-run quiesce point — is a simulator bug, not a
	// measurement, so fail loudly.
	if vs := append(periodic, suite.Final()...); len(vs) != 0 {
		panic(fmt.Sprintf("experiment: scale run violated invariants: %v", vs))
	}
	return cfg
}

// MeasureScale runs the scaling experiment on platforms with 1, 2 and 4
// weak domains.
func MeasureScale() []ScaleConfig {
	var out []ScaleConfig
	for _, weak := range []int{1, 2, 4} {
		out = append(out, scaleRun(weak))
	}
	deposit(func(pr *probe) { pr.scale = out })
	return out
}

// Scale reports how the coherence traffic and energy of a fixed background
// workload spread as weak domains are added: the same four light-task
// processes on platforms with one, two and four weak domains.
func Scale() Table {
	return scaleTable(MeasureScale())
}

// ScaleN is the scale experiment narrowed to a single platform with weak
// weak domains (the k2d weak_domains job parameter).
func ScaleN(weak int) Table {
	cfgs := []ScaleConfig{scaleRun(weak)}
	deposit(func(pr *probe) { pr.scale = cfgs })
	return scaleTable(cfgs)
}

func scaleTable(cfgs []ScaleConfig) Table {
	t := Table{
		ID:    "Scale",
		Title: "N weak domains under a fixed sensorhub-style background load",
		Header: []string{"Weak domains", "Domain", "DSM faults", "claims",
			"mean fault (µs)", "mail in", "mail out", "energy (mJ)"},
	}
	for _, cfg := range cfgs {
		for i, d := range cfg.Domains {
			label := ""
			if i == 0 {
				label = fmt.Sprintf("%d", cfg.WeakDomains)
			}
			t.Rows = append(t.Rows, []string{
				label, d.Domain,
				fmt.Sprintf("%d", d.Faults), fmt.Sprintf("%d", d.Claims),
				f1(d.MeanFaultUS),
				fmt.Sprintf("%d", d.MailIn), fmt.Sprintf("%d", d.MailOut),
				f2(d.EnergyMJ),
			})
		}
	}
	t.Notes = append(t.Notes,
		"4 light-task processes, each 40 DMA sensing episodes; NightWatch threads placed least-loaded-first across weak domains",
		"the strong domain still services every fresh page's first fault (pages start main-owned), so its mail share stays high")
	return t
}
