package experiment

import (
	"context"
	"runtime"
	"sync"
	"time"

	"k2/internal/dsm"
	"k2/internal/sim"
	"k2/internal/trace"
)

// DSMProtocol is the process-wide default coherence protocol for systems
// booted by experiments that do not pin their own DSM parameters. k2bench
// -dsm-protocol sets it; per-measurement overrides use WithDSMProtocol.
// TwoState (the zero value) preserves the paper's protocol and keeps every
// default output byte-identical.
var DSMProtocol dsm.Protocol

// EngineParallel is the process-wide default engine parallelism for systems
// booted by experiments: > 1 attaches the conservative parallel scheduler
// (internal/pdes) with that many workers to every engine bootFresh creates.
// k2bench/k2sim -engine-parallel set it; per-measurement overrides use
// WithEngineParallel. Output is byte-identical at any value — the knob is
// deliberately excluded from k2d's result-cache and fleet shard keys.
var EngineParallel int

// probe collects what one experiment run did: every engine it booted (for
// event/switch/wall telemetry) and the machine-readable data the Measure*
// functions deposit for the JSON summary. A probe is active for exactly one
// goroutine at a time, so its fields need no locking.
type probe struct {
	engines []*sim.Engine

	// ctx, when cancellable, is wired into every engine the experiment
	// boots as a cooperative interrupt, so a cancelled measurement stops
	// dispatching promptly instead of running to completion.
	ctx context.Context
	// traceSink, if set, is installed on every kernel tracer the
	// experiment boots (via bootFresh), streaming events live.
	traceSink func(trace.Event)
	// warmStart asks bootFresh to serve boots by restoring a cached
	// checkpoint of a booted system instead of booting cold (k2d
	// -warm-start). Restored and cold-booted systems are byte-identical,
	// so this only moves host time, never results.
	warmStart bool
	// warmStarts counts the boots that were actually served from a
	// checkpoint; bootWall is the host time spent inside bootFresh (cold
	// boot or restore), so telemetry can split wall into boot vs episode.
	warmStarts int
	bootWall   time.Duration

	// dsmProtocol, when set, overrides the process-wide DSMProtocol for
	// systems this measurement boots (k2d's per-job protocol field).
	// dsmProtocolSet distinguishes "explicitly twostate" from "inherit".
	dsmProtocol    dsm.Protocol
	dsmProtocolSet bool
	// engineParallel, when set, overrides the process-wide EngineParallel
	// for systems this measurement boots (k2d's per-job field).
	engineParallel    int
	engineParallelSet bool
	// dsms collects the coherence manager of every system the experiment
	// booted, so the runner can aggregate protocol counters afterwards.
	dsms []*dsm.DSM

	t4          *Table4Data
	t5          *Table5Data
	t6          []DMAThroughput
	scale       []ScaleConfig
	faults      *FaultsData
	chaos       *ChaosData
	dsmShare    []DSMShareCase
	replication *ReplicationData
}

// probes maps goroutine IDs to their active probe. Experiments are plain
// func() Table with private engines, so the only way to attribute engine
// telemetry to the experiment that booted it — without threading a context
// through every experiment signature — is by the goroutine the runner
// executes it on. Entries exist only while a Measure call is in flight.
var probes sync.Map // goid -> *probe

// goid returns the current goroutine's ID by parsing the first line of the
// stack trace ("goroutine N [running]:"). It is a few hundred nanoseconds —
// paid once per engine boot and twice per experiment, never per event.
func goid() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id int64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// activeProbe returns the probe attached to the calling goroutine, or nil.
func activeProbe() *probe {
	if v, ok := probes.Load(goid()); ok {
		return v.(*probe)
	}
	return nil
}

// effectiveParallel resolves the engine parallelism for this measurement:
// the per-measurement override when present, else the process default,
// floored at 1 (sequential).
func (pr *probe) effectiveParallel() int {
	n := EngineParallel
	if pr != nil && pr.engineParallelSet {
		n = pr.engineParallel
	}
	if n < 1 {
		n = 1
	}
	return n
}

// newEngine is the experiment package's engine constructor: identical to
// sim.NewEngine, plus registration with the calling goroutine's probe so
// the runner can aggregate per-experiment engine telemetry afterwards.
// Under a cancellable context the engine also gets a cooperative interrupt
// check; contexts that can never be cancelled (context.Background) install
// nothing, keeping the default path byte- and cost-identical.
func newEngine() *sim.Engine {
	e := sim.NewEngine()
	if pr := activeProbe(); pr != nil {
		pr.engines = append(pr.engines, e)
		if pr.ctx != nil && pr.ctx.Done() != nil {
			ctx := pr.ctx
			e.SetInterrupt(func() error { return ctx.Err() })
		}
	}
	return e
}

// deposit hands machine-readable experiment data to the active probe, if
// any; outside a runner Measure call it is a no-op.
func deposit(f func(*probe)) {
	if pr := activeProbe(); pr != nil {
		f(pr)
	}
}

// Result is one measured experiment: the rendered table plus host-side
// telemetry aggregated over every engine the experiment booted.
type Result struct {
	ID    string
	Name  string
	Table Table

	// Err is non-nil when the measurement was cancelled or timed out via
	// its context before the experiment finished; Table is then zero.
	Err error

	Wall    time.Duration // host time for the whole experiment
	Boot    time.Duration // host time spent booting systems (cold or restored)
	Virtual sim.Time      // summed final virtual clocks of its engines
	Engines int
	Stats   sim.Stats // summed engine counters

	// WarmStarts counts boots served by restoring a checkpoint instead of
	// booting cold (see WithWarmStart); 0 on a fully cold run.
	WarmStarts int

	// EngineParallel is the engine parallelism the measurement ran at
	// (1 = sequential). PartitionEvents sums the per-partition dispatch
	// counters index-wise over every engine the experiment booted — index 0
	// is the shared partition, index i+1 is coherence domain i — exposing
	// partition balance; the counters are maintained at any parallelism.
	EngineParallel  int
	PartitionEvents []uint64

	probe *probe
}

// Detached returns a copy of the Result suitable for long-term retention
// (e.g. k2d's result cache): the measurement probe — which pins every
// engine and booted system the experiment created — is dropped, so the
// simulations can be collected. ChaosResult reports nil on a detached copy.
func (r Result) Detached() Result {
	r.probe = nil
	return r
}

// DSMCounters sums the coherence-protocol counters over every system the
// experiment booted, plus whether any of them ran the MSI protocol. On a
// detached result (or one that booted no DSM) it returns zeros and false.
func (r Result) DSMCounters() (dsm.Counters, bool) {
	var c dsm.Counters
	msi := false
	if r.probe == nil {
		return c, false
	}
	for _, d := range r.probe.dsms {
		c.Add(d.Totals())
		if d.Params.Protocol == dsm.MSI {
			msi = true
		}
	}
	return c, msi
}

// EventsPerSec returns dispatched events per second of experiment wall
// time. Unlike Stats.EventsPerSec this uses the experiment's envelope wall
// clock, so table formatting and boot code count against the rate.
func (r Result) EventsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Stats.Dispatched) / r.Wall.Seconds()
}

// VirtualPerWall returns the virtual-to-wall-time ratio: how many seconds
// of simulated time the experiment produced per second of host time.
func (r Result) VirtualPerWall() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return time.Duration(r.Virtual).Seconds() / r.Wall.Seconds()
}

// Measure runs one experiment with a probe attached and returns its table
// together with the engine telemetry.
func Measure(d Def) Result { return MeasureContext(context.Background(), d) }

// An Option adjusts one measurement.
type Option func(*probe)

// WithTraceSink streams every kernel-trace event the experiment's booted
// systems emit to fn, live, called from the goroutine running the
// experiment. The sink observes; it must not touch simulation state.
func WithTraceSink(fn func(trace.Event)) Option {
	return func(pr *probe) { pr.traceSink = fn }
}

// WithDSMProtocol overrides the process-wide DSMProtocol for this
// measurement alone: systems it boots without pinned DSM parameters use
// protocol p. Experiments that pin their own dsm.Params (the protocol
// ablations, chaos recovery platforms) keep them.
func WithDSMProtocol(p dsm.Protocol) Option {
	return func(pr *probe) { pr.dsmProtocol = p; pr.dsmProtocolSet = true }
}

// WithEngineParallel overrides the process-wide EngineParallel for this
// measurement alone: systems it boots run the parallel event scheduler with
// n workers (n <= 1 forces the plain sequential loop). Results are
// byte-identical at any n — the option trades nothing but host time.
func WithEngineParallel(n int) Option {
	return func(pr *probe) { pr.engineParallel = n; pr.engineParallelSet = true }
}

// WithWarmStart lets the measurement boot systems by restoring cached
// checkpoints of booted OSes (per option fingerprint) instead of booting
// cold. Results are byte-identical either way — the checkpoint is taken at
// the same quiesce barrier every cold boot runs to — so the option trades
// nothing but host boot time. Platforms that cannot be captured quiescently
// fall back to cold boots silently.
func WithWarmStart() Option {
	return func(pr *probe) { pr.warmStart = true }
}

// MeasureContext is Measure under a context: every engine the experiment
// boots carries a cooperative interrupt bound to ctx, so cancellation or a
// deadline stops the measurement promptly — abandoned engines are shut
// down (their proc goroutines unwound) and the Result carries ctx's error
// instead of a table. With a non-cancellable context the behaviour and the
// produced bytes are identical to Measure.
func MeasureContext(ctx context.Context, d Def, opts ...Option) Result {
	pr := &probe{ctx: ctx}
	for _, o := range opts {
		o(pr)
	}
	// Measurements can nest: the chaos sweep runs per-seed defs through an
	// inner Runner, and with one worker the inner measure executes on this
	// same goroutine. Restore the outer probe instead of deleting it, so the
	// sweep's own deposits still reach it afterwards.
	id := goid()
	prev, hadPrev := probes.Load(id)
	probes.Store(id, pr)
	defer func() {
		if hadPrev {
			probes.Store(id, prev)
		} else {
			probes.Delete(id)
		}
	}()

	start := time.Now()
	r := Result{ID: d.ID, Name: d.Name, probe: pr}
	func() {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if ctx.Err() == nil {
				panic(rec) // a genuine experiment failure, not a cancellation
			}
			// The interrupt stopped an engine mid-run and the experiment
			// panicked on the resulting error. Unwind what it left behind.
			r.Err = ctx.Err()
			for _, e := range pr.engines {
				e.Shutdown()
			}
		}()
		r.Table = d.Run()
	}()
	r.Wall = time.Since(start)
	r.Boot = pr.bootWall
	r.WarmStarts = pr.warmStarts
	r.Engines = len(pr.engines)
	r.EngineParallel = pr.effectiveParallel()
	for _, e := range pr.engines {
		st := e.Stats()
		r.Stats.Scheduled += st.Scheduled
		r.Stats.Dispatched += st.Dispatched
		r.Stats.Cancelled += st.Cancelled
		r.Stats.ProcSwitches += st.ProcSwitches
		r.Stats.Wall += st.Wall
		r.Virtual += e.Now()
		for i, n := range e.PartitionDispatches() {
			if i >= len(r.PartitionEvents) {
				r.PartitionEvents = append(r.PartitionEvents,
					make([]uint64, i+1-len(r.PartitionEvents))...)
			}
			r.PartitionEvents[i] += n
		}
		// The measurement is over: stop any scheduler worker goroutines.
		// The engine itself stays usable (sequentially) for post-run
		// inspection via the probe.
		e.ReleaseScheduler()
	}
	return r
}

// Runner fans independent experiments out over a fixed-size worker pool.
// Every experiment owns its engines outright, so parallelism lives strictly
// across engines: each engine still dispatches its events sequentially in
// (time, seq) order and produces the same bytes it would alone.
type Runner struct {
	// Parallel is the worker count; <= 0 means GOMAXPROCS.
	Parallel int
}

// Workers returns the effective worker count.
func (r Runner) Workers() int {
	if r.Parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Parallel
}

// Run measures every def and returns the results in def order, regardless
// of completion order.
func (r Runner) Run(defs []Def) []Result {
	return r.RunContext(context.Background(), defs)
}

// RunContext is Run under a context: in-flight experiments are interrupted
// when ctx is cancelled, and experiments not yet started are skipped;
// either way their Result carries ctx's error.
func (r Runner) RunContext(ctx context.Context, defs []Def) []Result {
	workers := r.Workers()
	if workers > len(defs) {
		workers = len(defs)
	}
	measure := func(i int) Result {
		if err := ctx.Err(); err != nil {
			return Result{ID: defs[i].ID, Name: defs[i].Name, Err: err}
		}
		return MeasureContext(ctx, defs[i])
	}
	results := make([]Result, len(defs))
	if workers <= 1 {
		for i := range defs {
			results[i] = measure(i)
		}
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = measure(i)
			}
		}()
	}
	for i := range defs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
