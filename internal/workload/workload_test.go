package workload

import (
	"testing"

	"k2/internal/core"
	"k2/internal/sim"
	"k2/internal/soc"
)

func measure(t *testing.T, mode core.Mode, mk func(o *core.OS) Task) Result {
	t.Helper()
	e := sim.NewEngine()
	cfg := soc.DefaultConfig()
	cfg.StrongFreqMHz = 350
	o, err := core.Boot(e, core.Options{Mode: mode, SoC: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureEpisode(e, o, mk(o))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDMAWorkloadMovesExactBytes(t *testing.T) {
	res := measure(t, core.K2Mode, func(o *core.OS) Task { return DMA(o, 4<<10, 100<<10) })
	if res.Bytes != 100<<10 {
		t.Fatalf("bytes = %d, want %d", res.Bytes, 100<<10)
	}
	if res.EnergyJ <= 0 || res.WorkSpan <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestDMAWorkloadPartialTail(t *testing.T) {
	// total not a multiple of batch: the last transfer is short.
	res := measure(t, core.LinuxMode, func(o *core.OS) Task { return DMA(o, 64<<10, 100<<10) })
	if res.Bytes != 100<<10 {
		t.Fatalf("bytes = %d, want %d", res.Bytes, 100<<10)
	}
}

func TestExt2WorkloadWritesAndCleansUp(t *testing.T) {
	e := sim.NewEngine()
	o, err := core.Boot(e, core.Options{Mode: core.K2Mode})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureEpisode(e, o, Ext2(o, 8<<10, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 8*8<<10 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	// Both episodes (warmup + measured) must have removed their files, so
	// repeated measurement does not exhaust the volume.
	if free := o.FS.Super().FreeInodes; free < o.FS.Super().Inodes-3 {
		t.Fatalf("files leaked: %d free inodes of %d", free, o.FS.Super().Inodes)
	}
}

func TestUDPWorkloadMovesBytes(t *testing.T) {
	res := measure(t, core.K2Mode, func(o *core.OS) Task { return UDP(o, 1<<10, 16<<10) })
	if res.Bytes != 16<<10 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
}

func TestK2EpisodeLeavesStrongAsleep(t *testing.T) {
	res := measure(t, core.K2Mode, func(o *core.OS) Task { return DMA(o, 16<<10, 64<<10) })
	if res.StrongWakes != 0 {
		t.Fatalf("K2 light-task episode woke the strong domain %d times", res.StrongWakes)
	}
}

func TestLinuxEpisodeWakesStrong(t *testing.T) {
	res := measure(t, core.LinuxMode, func(o *core.OS) Task { return DMA(o, 16<<10, 64<<10) })
	if res.StrongWakes == 0 {
		t.Fatal("baseline episode must wake the strong domain (the inefficiency K2 removes)")
	}
}

func TestEfficiencyArithmetic(t *testing.T) {
	r := Result{Bytes: 2e6, EnergyJ: 0.5}
	if got := r.EfficiencyMBJ(); got != 4 {
		t.Fatalf("EfficiencyMBJ = %v, want 4", got)
	}
	if (Result{}).EfficiencyMBJ() != 0 || (Result{}).ThroughputMBs() != 0 {
		t.Fatal("zero results must not divide by zero")
	}
}

func TestEpisodeDeterminism(t *testing.T) {
	a := measure(t, core.K2Mode, func(o *core.OS) Task { return Ext2(o, 4<<10, 4) })
	b := measure(t, core.K2Mode, func(o *core.OS) Task { return Ext2(o, 4<<10, 4) })
	if a != b {
		t.Fatalf("identical episodes diverged:\n%+v\n%+v", a, b)
	}
}
