// Package workload implements the light-task workloads of the paper's
// evaluation (§9.2) and the episode measurement protocol: in each run of a
// benchmark, cores are woken up, execute the workload as fast as possible,
// and then stay idle until becoming inactive; energy efficiency is the
// number of payload bytes per Joule over the whole episode.
package workload

import (
	"fmt"
	"time"

	"k2/internal/core"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

// Result is one measured episode.
type Result struct {
	// Bytes is the payload moved by the workload.
	Bytes int64
	// EnergyJ is the energy of the whole episode (both rails), including
	// the idle tail until the domains become inactive.
	EnergyJ float64
	// WorkSpan is the wall-clock time of the workload itself.
	WorkSpan time.Duration
	// StrongWakes counts strong-domain wakeups during the episode.
	StrongWakes int
}

// EfficiencyMBJ returns megabytes per joule (decimal MB, as the paper).
func (r Result) EfficiencyMBJ() float64 {
	if r.EnergyJ <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.EnergyJ
}

// ThroughputMBs returns the workload-phase throughput in MB/s.
func (r Result) ThroughputMBs() float64 {
	if r.WorkSpan <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.WorkSpan.Seconds()
}

// Task is a light-task workload body; run distinguishes repeated episodes
// (e.g. for unique file names).
type Task func(th *sched.Thread, run int) int64

// MeasureEpisode boots nothing itself: given a running OS, it performs one
// warmup episode (migrating service-state ownership, as a long-running
// benchmark session would have done), lets the system go fully inactive,
// and then measures one episode of the task running as a NightWatch thread.
// It drives the engine and returns the measurement.
func MeasureEpisode(e *sim.Engine, o *core.OS, task Task) (Result, error) {
	return MeasureEpisodeUntil(e, o, task, 2*time.Hour)
}

// MeasureEpisodeUntil is MeasureEpisode with an explicit virtual-time cap.
// Fault-injection runs use a short cap: a crashed-and-never-rebooted domain
// can leave the episode legitimately unfinishable, and the cap bounds how
// long the engine keeps simulating watchdog traffic before giving up.
func MeasureEpisodeUntil(e *sim.Engine, o *core.OS, task Task, cap time.Duration) (Result, error) {
	var res Result
	done := false

	runOnce := func(run int, out *Result) *sim.Event {
		finished := sim.NewEvent(e)
		pr := o.SpawnProcess(fmt.Sprintf("light-%d", run))
		pr.Spawn(sched.NightWatch, "task", func(th *sched.Thread) {
			th.Block(func(p *sim.Proc) { o.Ready.Wait(p) })
			start := th.P().Now()
			n := task(th, run)
			if out != nil {
				out.Bytes = n
				out.WorkSpan = th.P().Now().Sub(start)
			}
			finished.Fire()
		})
		return finished
	}

	e.Spawn("episode-driver", func(p *sim.Proc) {
		o.Ready.Wait(p)
		waitInactive(o, p)
		fin := runOnce(0, nil) // warmup
		fin.Wait(p)
		waitInactive(o, p)

		wakes := o.S.Domains[soc.Strong].WakeCount()
		o.MeterReset()
		fin = runOnce(1, &res)
		fin.Wait(p)
		waitInactive(o, p)
		res.EnergyJ = o.EnergyJ()
		res.StrongWakes = o.S.Domains[soc.Strong].WakeCount() - wakes
		done = true
		e.Stop()
	})
	if err := e.Run(sim.Time(cap)); err != nil {
		return res, err
	}
	if !done {
		return res, fmt.Errorf("workload: episode did not complete")
	}
	return res, nil
}

func waitInactive(o *core.OS, p *sim.Proc) {
	allInactive := func() bool {
		for _, d := range o.S.Domains {
			// A crashed domain has settled as far as it ever will; waiting
			// for it to go inactive would spin forever.
			if d.State() != soc.DomInactive && !d.Crashed() {
				return false
			}
		}
		return true
	}
	for !allInactive() {
		p.Sleep(200 * time.Millisecond)
	}
}

// DMA returns the Figure 6(a) workload: repeated memory-to-memory DMA
// transfers of batch bytes, total bytes in all.
func DMA(o *core.OS, batch, total int64) Task {
	return func(th *sched.Thread, run int) int64 {
		var moved int64
		for moved < total {
			n := batch
			if n > total-moved {
				n = total - moved
			}
			o.DMA.Transfer(th, n)
			moved += n
		}
		return moved
	}
}

// Ext2 returns the Figure 6(b) workload: a light task synchronizing
// contents from the cloud — it operates on `files` files sequentially,
// creating, writing `size` bytes and closing each.
func Ext2(o *core.OS, size, files int) Task {
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	return func(th *sched.Thread, run int) int64 {
		var written int64
		for i := 0; i < files; i++ {
			name := fmt.Sprintf("/sync-r%d-f%d", run, i)
			f, err := o.FS.Create(th, name)
			if err != nil {
				panic(err)
			}
			if err := f.Write(th, payload); err != nil {
				panic(err)
			}
			if err := f.Close(th); err != nil {
				panic(err)
			}
			written += int64(size)
		}
		// The next sync replaces the content; remove this run's files so
		// repeated episodes do not exhaust the volume.
		for i := 0; i < files; i++ {
			if err := o.FS.Unlink(th, fmt.Sprintf("/sync-r%d-f%d", run, i)); err != nil {
				panic(err)
			}
		}
		return written
	}
}

// UDP returns the Figure 6(c) workload: a loopback pair moving total bytes
// in batch-sized portions; after each batch both sockets are destroyed and
// recreated (mimicking per-fetch connections to the cloud).
func UDP(o *core.OS, batch, total int64) Task {
	return func(th *sched.Thread, run int) int64 {
		var moved int64
		buf := make([]byte, batch)
		for moved < total {
			a, err := o.Net.NewSocket(th, 0)
			if err != nil {
				panic(err)
			}
			b, err := o.Net.NewSocket(th, 0)
			if err != nil {
				panic(err)
			}
			n := int64(len(buf))
			if n > total-moved {
				n = total - moved
			}
			if _, err := a.SendTo(th, b.Addr(), buf[:n]); err != nil {
				panic(err)
			}
			var got int64
			for got < n {
				data, _, err := b.RecvFrom(th)
				if err != nil {
					panic(err)
				}
				got += int64(len(data))
			}
			moved += n
			a.Close(th)
			b.Close(th)
		}
		return moved
	}
}
