package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"k2/internal/sim"
	"k2/internal/soc"
)

func testRig() (*sim.Engine, *soc.SoC, *Frames) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	fr := NewFrames(s.Pages(), s.Cfg.PageSize)
	return e, s, fr
}

// runOn runs fn in a proc and drives the engine to completion.
func runOn(t *testing.T, e *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	e.Spawn("test", fn)
	if err := e.Run(sim.Time(1e15)); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyAddRegionDecomposesAligned(t *testing.T) {
	_, _, fr := testRig()
	b := NewBuddy(soc.Strong, fr, DefaultCostModel(), true)
	// An unaligned region: 3 pages starting at 1, plus a full block.
	b.AddRegion(1, 3)
	b.AddRegion(BlockPages, BlockPages)
	if b.FreePages() != 3+BlockPages {
		t.Fatalf("free = %d", b.FreePages())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyAllocSplitFreeCoalesce(t *testing.T) {
	_, _, fr := testRig()
	b := NewBuddy(soc.Strong, fr, DefaultCostModel(), true)
	b.AddRegion(0, BlockPages) // one 16 MB block

	p1, _, err := b.allocQuiet(0, Unmovable)
	if err != nil {
		t.Fatal(err)
	}
	if b.FreePages() != BlockPages-1 {
		t.Fatalf("free = %d", b.FreePages())
	}
	if !fr.Allocated(p1) || fr.Owner(p1) != int(soc.Strong) {
		t.Fatal("frame metadata wrong after alloc")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	b.freeQuiet(p1)
	if b.FreePages() != BlockPages {
		t.Fatalf("free after free = %d", b.FreePages())
	}
	// Everything must have coalesced back to a single max-order block.
	if len(b.free[MaxOrder]) != 1 {
		t.Fatalf("did not coalesce to max order: %v", b.free)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyPlacementPolicy(t *testing.T) {
	_, _, fr := testRig()
	// FrontierHigh (main kernel): movable high, unmovable low.
	b := NewBuddy(soc.Strong, fr, DefaultCostModel(), true)
	b.AddRegion(0, BlockPages)
	um, _, _ := b.allocQuiet(0, Unmovable)
	mv, _, _ := b.allocQuiet(0, Movable)
	if um != 0 {
		t.Fatalf("unmovable at %d, want 0 (low end)", um)
	}
	if mv != BlockPages-1 {
		t.Fatalf("movable at %d, want %d (high end)", mv, BlockPages-1)
	}

	// Shadow: frontier low, so movable low, unmovable high.
	fr2 := NewFrames(BlockPages, 4096)
	b2 := NewBuddy(soc.Weak, fr2, DefaultCostModel(), false)
	b2.AddRegion(0, BlockPages)
	mv2, _, _ := b2.allocQuiet(0, Movable)
	um2, _, _ := b2.allocQuiet(0, Unmovable)
	if mv2 != 0 {
		t.Fatalf("shadow movable at %d, want 0", mv2)
	}
	if um2 != BlockPages-1 {
		t.Fatalf("shadow unmovable at %d, want high end", um2)
	}
}

func TestBuddyExhaustion(t *testing.T) {
	_, _, fr := testRig()
	b := NewBuddy(soc.Strong, fr, DefaultCostModel(), true)
	b.AddRegion(0, 8)
	if _, _, err := b.allocQuiet(4, Unmovable); err != ErrNoMemory {
		t.Fatalf("order-4 from 8 pages: err = %v, want ErrNoMemory", err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := b.allocQuiet(0, Unmovable); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if _, _, err := b.allocQuiet(0, Unmovable); err != ErrNoMemory {
		t.Fatalf("err = %v, want ErrNoMemory when exhausted", err)
	}
}

// Table 4 check: allocation latencies on main and shadow must land near the
// paper's measurements (µs): 4K: 1/12, 256K: 5/45, 1024K: 13/146.
func TestTable4AllocLatencies(t *testing.T) {
	cases := []struct {
		order              int
		wantMain, wantShad float64 // µs
	}{
		{0, 1, 12},
		{6, 5, 45},
		{8, 13, 146},
	}
	for _, tc := range cases {
		e, s, fr := testRig()
		b := NewBuddy(soc.Strong, fr, DefaultCostModel(), true)
		bs := NewBuddy(soc.Weak, fr, DefaultCostModel(), false)
		b.AddRegion(0, BlockPages)
		bs.AddRegion(BlockPages, BlockPages)
		// Warm up so steady-state split counts apply.
		warm, _, _ := b.allocQuiet(tc.order, Unmovable)
		b.freeQuiet(warm)
		warm, _, _ = bs.allocQuiet(tc.order, Unmovable)
		bs.freeQuiet(warm)

		var mainUS, shadUS float64
		runOn(t, e, func(p *sim.Proc) {
			start := p.Now()
			if _, err := b.Alloc(p, s.Core(soc.Strong, 0), tc.order, Unmovable); err != nil {
				t.Fatal(err)
			}
			mainUS = float64(p.Now().Sub(start).Nanoseconds()) / 1e3
			start = p.Now()
			if _, err := bs.Alloc(p, s.Core(soc.Weak, 0), tc.order, Unmovable); err != nil {
				t.Fatal(err)
			}
			shadUS = float64(p.Now().Sub(start).Nanoseconds()) / 1e3
		})
		if mainUS < tc.wantMain*0.5 || mainUS > tc.wantMain*1.6 {
			t.Errorf("order %d main latency = %.2fµs, want ~%.0f", tc.order, mainUS, tc.wantMain)
		}
		if shadUS < tc.wantShad*0.5 || shadUS > tc.wantShad*1.6 {
			t.Errorf("order %d shadow latency = %.2fµs, want ~%.0f", tc.order, shadUS, tc.wantShad)
		}
	}
}

// Property: arbitrary interleavings of allocs and frees preserve the buddy
// invariants and conserve pages.
func TestQuickBuddyRandomWorkload(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw)%120 + 30
		_, _, fr := testRig()
		b := NewBuddy(soc.Strong, fr, DefaultCostModel(), true)
		b.AddRegion(0, 2*BlockPages)
		type allocation struct {
			pfn   PFN
			order int
		}
		var live []allocation
		for i := 0; i < ops; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				order := rng.Intn(7)
				mt := MigrateType(rng.Intn(2))
				pfn, _, err := b.allocQuiet(order, mt)
				if err != nil {
					continue
				}
				live = append(live, allocation{pfn, order})
			} else {
				i := rng.Intn(len(live))
				b.freeQuiet(live[i].pfn)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		inUse := 0
		for _, a := range live {
			inUse += 1 << a.order
		}
		if b.FreePages()+inUse != 2*BlockPages {
			return false
		}
		return b.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: no allocation ever returns a page that is already live, and
// frees make pages reusable.
func TestQuickBuddyNoDoubleAllocation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, _, fr := testRig()
		b := NewBuddy(soc.Weak, fr, DefaultCostModel(), false)
		b.AddRegion(0, BlockPages)
		liveSet := make(map[PFN]bool)
		var heads []PFN
		for i := 0; i < 200; i++ {
			if rng.Intn(3) > 0 || len(heads) == 0 {
				order := rng.Intn(4)
				pfn, _, err := b.allocQuiet(order, Movable)
				if err != nil {
					continue
				}
				for q := pfn; q < pfn+PFN(1<<order); q++ {
					if liveSet[q] {
						return false // double allocation
					}
					liveSet[q] = true
				}
				heads = append(heads, pfn)
			} else {
				i := rng.Intn(len(heads))
				h := heads[i]
				order := 0
				for q := h; fr.Allocated(q) && (q == h || !fr.f[q].head); q++ {
					order++ // count pages of the block
				}
				// Use recorded metadata instead.
				blkOrder := int(fr.f[h].order)
				b.freeQuiet(h)
				for q := h; q < h+PFN(1<<blkOrder); q++ {
					delete(liveSet, q)
				}
				heads = append(heads[:i], heads[i+1:]...)
				_ = order
			}
		}
		return b.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
