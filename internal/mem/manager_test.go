package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
)

// Property: any interleaving of allocations, frees, deflations and
// inflations across both kernels preserves (a) the block-ownership
// partition, (b) both buddies' internal invariants, and (c) global page
// conservation: pool pages + per-kernel (free + live) pages == global size.
func TestQuickManagerPartitionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, s, fr := testRig()
		globalStart := PFN(BlockPages)
		globalEnd := PFN(9 * BlockPages) // 8 blocks of playground
		m := NewManager(s, fr, DefaultCostModel(), globalStart, globalEnd)
		globalPages := int(globalEnd - globalStart)

		type allocation struct {
			pfn   PFN
			order int
			k     soc.DomainID
		}
		var live []allocation
		livePages := 0
		ok := true
		// Track balloon migrations so live allocations follow their data,
		// as the kernel's reverse mappings would.
		for _, bl := range m.Balloons {
			bl := bl
			bl.OnMigrate = func(old, new PFN, order int) {
				for i := range live {
					if live[i].pfn == old {
						live[i].pfn = new
						return
					}
				}
			}
		}

		e.Spawn("chaos", func(p *sim.Proc) {
			cores := [2]*soc.Core{s.Core(soc.Strong, 0), s.Core(soc.Weak, 0)}
			for op := 0; op < 150 && ok; op++ {
				k := soc.DomainID(rng.Intn(2))
				switch rng.Intn(5) {
				case 0, 1: // allocate
					order := rng.Intn(6)
					mt := MigrateType(rng.Intn(2))
					pfn, err := m.Buddies[k].Alloc(p, cores[k], order, mt)
					if err != nil {
						continue
					}
					live = append(live, allocation{pfn, order, k})
					livePages += 1 << order
				case 2: // free (sometimes via the cross-kernel redirect)
					if len(live) == 0 {
						continue
					}
					i := rng.Intn(len(live))
					a := live[i]
					via := soc.DomainID(rng.Intn(2))
					m.Free(p, cores[via], via, a.pfn)
					if via != a.k {
						// Redirected frees apply asynchronously via the
						// owner's worker; run it inline here.
						item := m.workQ[a.k].Get(p).(workItem)
						if item.kind != workRemoteFree {
							ok = false
							return
						}
						m.Buddies[a.k].Free(p, cores[a.k], item.pfn)
					}
					live = append(live[:i], live[i+1:]...)
					livePages -= 1 << a.order
				case 3: // deflate
					_, _ = m.DeflateBlock(p, cores[k], k)
				case 4: // inflate
					_, _ = m.InflateBlock(p, cores[k], k)
				}

				if m.CheckPartition() != nil ||
					m.Buddies[0].CheckInvariants() != nil ||
					m.Buddies[1].CheckInvariants() != nil {
					ok = false
					return
				}
				total := m.PoolBlocks()*BlockPages +
					m.Buddies[0].FreePages() + m.Buddies[1].FreePages() + livePages
				if total != globalPages {
					ok = false
					return
				}
			}
		})
		if err := e.Run(sim.Time(time.Hour)); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
