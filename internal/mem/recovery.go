package mem

import (
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
)

// ReclaimDead returns every 16 MB block a dead kernel held to the K2 pool.
// Unlike Inflate there is no kernel to evacuate pages or object: the dead
// kernel's allocations are simply gone, so the sweep resets the page
// metadata of each block and re-pools it wholesale. The caller (the
// watchdog, on a surviving core) is charged the same interconnect-bound
// metadata cost as a deflate per block. Pending meta-manager work queued
// for the dead kernel is discarded — it referenced memory that no longer
// belongs to it. Returns the number of blocks recovered.
func (m *Manager) ReclaimDead(p *sim.Proc, core *soc.Core, dead soc.DomainID) int {
	// Invalidate any balloon operation of the dead kernel frozen mid-charge:
	// when its proc resumes after a reboot it must not finish mutating
	// allocator state this sweep is about to re-pool (Balloon.Gen).
	m.reclaimGen[dead]++
	m.everSwept = true

	heads := m.ownedBlocks(dead)

	// The dead kernel's worker may have been holding the pool lock when it
	// froze; break it rather than spinning on a corpse.
	m.poolLock.Break(dead)
	m.poolLock.Acquire(p, core)
	for _, head := range heads {
		delete(m.blockOwner, head)
		m.pool = insertSorted(m.pool, head)
		for i := head; i < head+BlockPages; i++ {
			m.Frames.f[i] = frame{owner: ownerNone}
		}
	}
	m.poolLock.Release(p, core)

	m.Buddies[dead].Reset()
	m.pending[dead] = false
	for {
		if _, ok := m.workQ[dead].TryGet(); !ok {
			break
		}
	}
	m.DeadReclaims += len(heads)
	if m.Tracef != nil && len(heads) > 0 {
		m.Tracef("reclaimed %d blocks from dead %v (pool: %d)", len(heads), dead, len(m.pool))
	}
	core.ExecFor(p, m.Buddies[dead].cost.DeflateInterconnectPerPage*BlockPages*
		time.Duration(len(heads)))
	return len(heads)
}
