// Package mem implements K2's physical memory management (§6.2): per-kernel
// buddy page allocators with no shared state (independent services), balloon
// drivers that move physically contiguous 16 MB page blocks between kernels,
// and the meta-level manager that decides when to inflate and deflate based
// on per-kernel memory-pressure probes.
//
// Allocation requests are always served by the local instance; free requests
// for pages allocated by the other kernel are redirected asynchronously,
// based on an address range check in a thin wrapper over the free interface.
package mem

import (
	"fmt"
	"time"

	"k2/internal/soc"
)

// PFN is a physical page frame number.
type PFN int

// MigrateType classifies allocations for balloon evacuation: movable pages
// (user data) can be migrated out of an inflating page block; unmovable
// pages (kernel structures) pin their block. The paper reports 70-80 % of
// pages are movable on mobile systems.
type MigrateType int

const (
	// Unmovable pages pin their page block.
	Unmovable MigrateType = iota
	// Movable pages can be evacuated during balloon inflation.
	Movable
)

func (m MigrateType) String() string {
	if m == Movable {
		return "movable"
	}
	return "unmovable"
}

// ownerNone marks a page owned by K2 (via a balloon) rather than a kernel.
const ownerNone = -1

type frame struct {
	owner int8 // ownerNone, or the DomainID of the owning kernel's buddy
	alloc bool
	head  bool  // head page of an allocated or free block
	order uint8 // block order, valid on head pages
	free  bool  // head of a free block in a buddy free list
	mt    MigrateType
}

// Frames is the global physical page metadata array, analogous to Linux's
// struct page array. Both kernels' allocators and the balloons operate on
// the same Frames, mirroring the single shared RAM pool (§4.2).
type Frames struct {
	PageSize int
	f        []frame
}

// NewFrames returns metadata for n pages of the given size; all pages start
// unowned (K2's).
func NewFrames(n, pageSize int) *Frames {
	fr := &Frames{PageSize: pageSize, f: make([]frame, n)}
	for i := range fr.f {
		fr.f[i].owner = ownerNone
	}
	return fr
}

// Len returns the number of physical pages.
func (fr *Frames) Len() int { return len(fr.f) }

// Owner returns the buddy owner of page p: a kernel's soc.DomainID, or -1
// if the page is K2-owned (ballooned) or outside any allocator.
func (fr *Frames) Owner(p PFN) int { return int(fr.f[p].owner) }

// Allocated reports whether page p is currently allocated.
func (fr *Frames) Allocated(p PFN) bool { return fr.f[p].alloc }

// Type returns the migrate type of page p (meaningful when allocated).
func (fr *Frames) Type(p PFN) MigrateType { return fr.f[p].mt }

// CostModel carries the calibrated CPU costs of allocator and balloon
// operations, in reference work (see DESIGN.md §4). The defaults are fitted
// so that executing the real buddy/balloon algorithms reproduces Table 4.
type CostModel struct {
	// AllocBase + AllocPerPage*2^order + AllocPerOrder*order: Table 4's
	// 1 µs (4 KB), 5 µs (256 KB), 13 µs (1 MB) on the main kernel.
	AllocBase     soc.Work
	AllocPerPage  soc.Work
	AllocPerOrder soc.Work
	// FreeBase + FreePerMerge*merges.
	FreeBase     soc.Work
	FreePerMerge soc.Work
	// Probe cost: the pressure probes add "less than twenty instructions"
	// per allocation (§9.3).
	Probe soc.Work

	// Balloon per-page costs split into an interconnect-bound part (same
	// wall-clock on both cores: uncached page-metadata and DRAM traffic)
	// and a CPU part (scaled by core speed). Fitted to Table 4:
	// deflate 10.4/12.8 ms, inflate 11.6/20.4 ms (main/shadow).
	DeflateInterconnectPerPage time.Duration
	DeflateCPUPerPage          soc.Work
	InflateInterconnectPerPage time.Duration
	InflateCPUPerPage          soc.Work
}

// DefaultCostModel returns the Table 4 calibration.
func DefaultCostModel() CostModel {
	return CostModel{
		AllocBase:     soc.Work(900 * time.Nanosecond),
		AllocPerPage:  soc.Work(47 * time.Nanosecond),
		AllocPerOrder: soc.Work(170 * time.Nanosecond),
		FreeBase:      soc.Work(700 * time.Nanosecond),
		FreePerMerge:  soc.Work(170 * time.Nanosecond),
		Probe:         soc.Work(20 * time.Nanosecond),

		DeflateInterconnectPerPage: 2490 * time.Nanosecond,
		DeflateCPUPerPage:          soc.Work(53 * time.Nanosecond),
		InflateInterconnectPerPage: 2640 * time.Nanosecond,
		InflateCPUPerPage:          soc.Work(195 * time.Nanosecond),
	}
}

// ErrNoMemory is returned when an allocation cannot be satisfied.
var ErrNoMemory = fmt.Errorf("mem: out of memory")

// ErrUnmovable is returned when balloon inflation hits an unmovable page.
var ErrUnmovable = fmt.Errorf("mem: page block pinned by unmovable page")

// ErrReclaimed is returned when a balloon operation was interrupted by the
// kernel crashing and the watchdog sweeping its memory (ReclaimDead) before
// the operation's frozen proc resumed. The sweep already re-pooled the
// kernel's blocks, so the half-done operation must not touch them again.
var ErrReclaimed = fmt.Errorf("mem: kernel memory was reclaimed mid-operation")
