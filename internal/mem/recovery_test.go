package mem

import (
	"testing"

	"k2/internal/sim"
	"k2/internal/soc"
)

// ReclaimDead must return every block a dead kernel held to the K2 pool,
// reset the page metadata wholesale, and leave the partition invariant
// intact — the blocks are reusable by survivors immediately.
func TestReclaimDeadReturnsBlocksToPool(t *testing.T) {
	e, s, m := newStack()
	poolBoot := m.PoolBlocks()
	var heads []PFN
	runOn(t, e, func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			head, err := m.DeflateBlock(p, s.Core(soc.Weak, 0), soc.Weak)
			if err != nil {
				t.Fatal(err)
			}
			heads = append(heads, head)
		}
		// Live allocations inside the blocks: they die with the kernel.
		if _, err := m.Buddies[soc.Weak].Alloc(p, s.Core(soc.Weak, 0), 3, Unmovable); err != nil {
			t.Fatal(err)
		}
	})
	if m.PoolBlocks() != poolBoot-2 {
		t.Fatalf("pool = %d blocks before crash, want %d", m.PoolBlocks(), poolBoot-2)
	}

	s.Domains[soc.Weak].Crash()
	var n int
	runOn(t, e, func(p *sim.Proc) {
		s.Domains[soc.Strong].EnsureAwake(p)
		n = m.ReclaimDead(p, s.Core(soc.Strong, 0), soc.Weak)
	})
	if n != 2 || m.DeadReclaims != 2 {
		t.Fatalf("reclaimed %d blocks (stat %d), want 2", n, m.DeadReclaims)
	}
	if m.PoolBlocks() != poolBoot {
		t.Fatalf("pool = %d blocks after reclaim, want %d", m.PoolBlocks(), poolBoot)
	}
	if m.Buddies[soc.Weak].TotalPages() != 0 || m.Buddies[soc.Weak].FreePages() != 0 {
		t.Fatalf("dead buddy still reports %d total / %d free pages",
			m.Buddies[soc.Weak].TotalPages(), m.Buddies[soc.Weak].FreePages())
	}
	for _, head := range heads {
		if _, owned := m.BlockOwner(head); owned {
			t.Fatalf("block %d still has an owner", head)
		}
		for pfn := head; pfn < head+BlockPages; pfn++ {
			if m.Frames.Owner(pfn) != int(ownerNone) || m.Frames.Allocated(pfn) {
				t.Fatalf("frame %d not reset: owner=%d alloc=%v",
					pfn, m.Frames.Owner(pfn), m.Frames.Allocated(pfn))
			}
		}
	}
	if err := m.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}

// The dead kernel's worker may have frozen while holding the pool lock;
// ReclaimDead must break it instead of spinning on a corpse, and the sweep
// must still complete.
func TestReclaimDeadBreaksPoolLock(t *testing.T) {
	e, s, m := newStack()
	runOn(t, e, func(p *sim.Proc) {
		if _, err := m.DeflateBlock(p, s.Core(soc.Weak, 0), soc.Weak); err != nil {
			t.Fatal(err)
		}
		m.poolLock.Acquire(p, s.Core(soc.Weak, 0))
	})
	s.Domains[soc.Weak].Crash()

	done := false
	runOn(t, e, func(p *sim.Proc) {
		s.Domains[soc.Strong].EnsureAwake(p)
		m.ReclaimDead(p, s.Core(soc.Strong, 0), soc.Weak)
		done = true
	})
	if !done {
		t.Fatal("ReclaimDead hung on the dead kernel's pool lock")
	}
	if m.poolLock.Held() {
		t.Fatal("pool lock still held after the sweep")
	}
	if err := m.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}

// Meta-manager work queued for the dead kernel referenced memory that no
// longer belongs to it; the sweep must discard it and clear the pending
// flag so a rebooted kernel starts clean.
func TestReclaimDeadDrainsQueuedWork(t *testing.T) {
	e, s, m := newStack()
	m.Kick(soc.Weak)
	m.Kick(soc.Weak) // second kick is absorbed by pending; queue holds one item
	if m.workQ[soc.Weak].Len() == 0 || !m.pending[soc.Weak] {
		t.Fatal("setup: no work queued for the weak kernel")
	}
	s.Domains[soc.Weak].Crash()
	runOn(t, e, func(p *sim.Proc) {
		if n := m.ReclaimDead(p, s.Core(soc.Strong, 0), soc.Weak); n != 0 {
			t.Fatalf("reclaimed %d blocks from a kernel that owned none", n)
		}
	})
	if m.workQ[soc.Weak].Len() != 0 {
		t.Fatalf("%d work items survived the sweep", m.workQ[soc.Weak].Len())
	}
	if m.pending[soc.Weak] {
		t.Fatal("pending flag survived the sweep")
	}
	if err := m.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}
