package mem

import (
	"testing"
	"time"

	"k2/internal/sim"
	"k2/internal/soc"
)

// newStack builds a manager over a global region starting at block 1
// (leaving block 0 as a stand-in for local regions).
func newStack() (*sim.Engine, *soc.SoC, *Manager) {
	e, s, fr := testRig()
	m := NewManager(s, fr, DefaultCostModel(), BlockPages, PFN(s.Pages()))
	return e, s, m
}

func TestManagerPoolCoversGlobalRegion(t *testing.T) {
	_, s, m := newStack()
	wantBlocks := (s.Pages() - BlockPages) / BlockPages
	if m.PoolBlocks() != wantBlocks {
		t.Fatalf("pool = %d blocks, want %d", m.PoolBlocks(), wantBlocks)
	}
	if err := m.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}

func TestDeflateGrowsKernelAndFrontierPolicy(t *testing.T) {
	e, s, m := newStack()
	runOn(t, e, func(p *sim.Proc) {
		mainBlk, err := m.DeflateBlock(p, s.Core(soc.Strong, 0), soc.Strong)
		if err != nil {
			t.Fatal(err)
		}
		shadBlk, err := m.DeflateBlock(p, s.Core(soc.Weak, 0), soc.Weak)
		if err != nil {
			t.Fatal(err)
		}
		// Main takes the lowest pool block, shadow the highest (§6.2).
		if mainBlk != BlockPages {
			t.Fatalf("main block at %d, want %d (low end)", mainBlk, BlockPages)
		}
		wantShad := PFN(s.Pages()) - BlockPages
		if shadBlk != wantShad {
			t.Fatalf("shadow block at %d, want %d (high end)", shadBlk, wantShad)
		}
	})
	if m.Buddies[soc.Strong].FreePages() != BlockPages {
		t.Fatalf("main free pages = %d", m.Buddies[soc.Strong].FreePages())
	}
	if err := m.CheckPartition(); err != nil {
		t.Fatal(err)
	}
	_ = e
}

// Table 4 check: balloon deflate ~10.4/12.8 ms, inflate ~11.6/20.4 ms
// (main/shadow).
func TestTable4BalloonLatencies(t *testing.T) {
	e, s, m := newStack()
	measure := func(p *sim.Proc, fn func()) time.Duration {
		start := p.Now()
		fn()
		return p.Now().Sub(start)
	}
	var defMain, defShad, infMain, infShad time.Duration
	runOn(t, e, func(p *sim.Proc) {
		cm, cs := s.Core(soc.Strong, 0), s.Core(soc.Weak, 0)
		defMain = measure(p, func() {
			if _, err := m.DeflateBlock(p, cm, soc.Strong); err != nil {
				t.Fatal(err)
			}
		})
		defShad = measure(p, func() {
			if _, err := m.DeflateBlock(p, cs, soc.Weak); err != nil {
				t.Fatal(err)
			}
		})
		infMain = measure(p, func() {
			if _, err := m.InflateBlock(p, cm, soc.Strong); err != nil {
				t.Fatal(err)
			}
		})
		infShad = measure(p, func() {
			if _, err := m.InflateBlock(p, cs, soc.Weak); err != nil {
				t.Fatal(err)
			}
		})
	})
	check := func(name string, got time.Duration, wantMS float64) {
		ms := got.Seconds() * 1e3
		if ms < wantMS*0.6 || ms > wantMS*1.5 {
			t.Errorf("%s = %.2f ms, want ~%.1f", name, ms, wantMS)
		}
	}
	check("deflate main", defMain, 10.4)
	check("deflate shadow", defShad, 12.8)
	check("inflate main", infMain, 11.6)
	check("inflate shadow", infShad, 20.4)
}

func TestInflateMigratesMovablePages(t *testing.T) {
	e, s, m := newStack()
	runOn(t, e, func(p *sim.Proc) {
		core := s.Core(soc.Strong, 0)
		blk, err := m.DeflateBlock(p, core, soc.Strong)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.DeflateBlock(p, core, soc.Strong); err != nil {
			t.Fatal(err)
		}
		// Allocate movable pages; they land near the high frontier, i.e.
		// in the second block.
		for i := 0; i < 100; i++ {
			if _, err := m.Buddies[soc.Strong].Alloc(p, core, 0, Movable); err != nil {
				t.Fatal(err)
			}
		}
		before := m.Buddies[soc.Strong].FreePages()
		// Reclaim the frontier block (the second one): must migrate the
		// 100 movable pages into the first block and succeed.
		head, err := m.InflateBlock(p, core, soc.Strong)
		if err != nil {
			t.Fatalf("inflate failed: %v", err)
		}
		if head == blk {
			t.Fatalf("inflated the non-frontier block")
		}
		if moved := m.Balloons[soc.Strong].PagesMoved; moved != 100 {
			t.Fatalf("pages moved = %d, want 100", moved)
		}
		after := m.Buddies[soc.Strong].FreePages()
		// One block left holding 100 movable pages.
		if after != BlockPages-100 {
			t.Fatalf("free pages after inflate = %d, want %d (before %d)",
				after, BlockPages-100, before)
		}
	})
	if err := m.CheckPartition(); err != nil {
		t.Fatal(err)
	}
	_, _ = e, s
}

func TestInflateFailsOnUnmovablePage(t *testing.T) {
	e, s, m := newStack()
	runOn(t, e, func(p *sim.Proc) {
		core := s.Core(soc.Weak, 0)
		if _, err := m.DeflateBlock(p, core, soc.Weak); err != nil {
			t.Fatal(err)
		}
		// A single unmovable page pins the only block.
		if _, err := m.Buddies[soc.Weak].Alloc(p, core, 0, Unmovable); err != nil {
			t.Fatal(err)
		}
		if _, err := m.InflateBlock(p, core, soc.Weak); err != ErrUnmovable {
			t.Fatalf("err = %v, want ErrUnmovable", err)
		}
	})
	if err := m.CheckPartition(); err != nil {
		t.Fatal(err)
	}
	_, _ = e, s
}

func TestInflateRollbackOnNoRoom(t *testing.T) {
	e, s, m := newStack()
	runOn(t, e, func(p *sim.Proc) {
		core := s.Core(soc.Strong, 0)
		if _, err := m.DeflateBlock(p, core, soc.Strong); err != nil {
			t.Fatal(err)
		}
		// Fill over half the block with movable pages: migration cannot
		// fit them in the remaining free space of the same (only) block.
		n := BlockPages/2 + 8
		for i := 0; i < n; i++ {
			if _, err := m.Buddies[soc.Strong].Alloc(p, core, 0, Movable); err != nil {
				t.Fatal(err)
			}
		}
		free := m.Buddies[soc.Strong].FreePages()
		if _, err := m.InflateBlock(p, core, soc.Strong); err == nil {
			t.Fatal("inflate unexpectedly succeeded")
		}
		if got := m.Buddies[soc.Strong].FreePages(); got != free {
			t.Fatalf("free pages after rollback = %d, want %d", got, free)
		}
		if err := m.Buddies[soc.Strong].CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
	if err := m.CheckPartition(); err != nil {
		t.Fatal(err)
	}
	_, _ = e, s
}

func TestFreeRedirectsToOwningKernel(t *testing.T) {
	e, s, m := newStack()
	var remote PFN
	runOn(t, e, func(p *sim.Proc) {
		cm := s.Core(soc.Strong, 0)
		if _, err := m.DeflateBlock(p, cm, soc.Strong); err != nil {
			t.Fatal(err)
		}
		pfn, err := m.Buddies[soc.Strong].Alloc(p, cm, 0, Movable)
		if err != nil {
			t.Fatal(err)
		}
		remote = pfn
		// The shadow kernel frees a main-kernel page: it must be queued
		// for the main worker, not freed locally.
		m.Free(p, s.Core(soc.Weak, 0), soc.Weak, pfn)
		if m.Frames.Allocated(pfn) != true {
			t.Fatal("redirected free applied synchronously")
		}
	})
	// Drain via the main worker.
	e.Spawn("worker-main", func(p *sim.Proc) {
		m.Worker(p, s.Core(soc.Strong, 1), soc.Strong)
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if m.Frames.Allocated(remote) {
		t.Fatal("remote free was not applied by the owner's worker")
	}
}

func TestPressureProbeTriggersBackgroundDeflate(t *testing.T) {
	e, s, m := newStack()
	// Start both workers.
	e.Spawn("worker-main", func(p *sim.Proc) { m.Worker(p, s.Core(soc.Strong, 1), soc.Strong) })
	e.Spawn("worker-shadow", func(p *sim.Proc) { m.Worker(p, s.Core(soc.Weak, 0), soc.Weak) })
	done := false
	e.Spawn("app", func(p *sim.Proc) {
		core := s.Core(soc.Strong, 0)
		if _, err := m.DeflateBlock(p, core, soc.Strong); err != nil {
			t.Fatal(err)
		}
		// Allocate until below the watermark; the probe should kick the
		// worker, which deflates another block in the background.
		for m.Buddies[soc.Strong].FreePages() >= m.Buddies[soc.Strong].LowWater {
			if _, err := m.Buddies[soc.Strong].Alloc(p, core, 4, Movable); err != nil {
				t.Fatal(err)
			}
		}
		// Give the background worker time.
		p.Sleep(100 * time.Millisecond)
		if m.Buddies[soc.Strong].TotalPages() < 2*BlockPages {
			t.Error("background deflate did not run")
		}
		done = true
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("app did not finish")
	}
}

func TestReclaimFromPeerWhenPoolEmpty(t *testing.T) {
	e, s, fr := testRig()
	// Tiny global region: exactly 2 blocks.
	m := NewManager(s, fr, DefaultCostModel(), BlockPages, 3*BlockPages)
	if m.PoolBlocks() != 2 {
		t.Fatalf("pool = %d", m.PoolBlocks())
	}
	e.Spawn("worker-main", func(p *sim.Proc) { m.Worker(p, s.Core(soc.Strong, 1), soc.Strong) })
	e.Spawn("worker-shadow", func(p *sim.Proc) { m.Worker(p, s.Core(soc.Weak, 0), soc.Weak) })
	// Route balloon mailbox traffic (normally done by the kernels'
	// dispatchers).
	for _, k := range []soc.DomainID{soc.Strong, soc.Weak} {
		k := k
		e.Spawn("mbox-"+k.String(), func(p *sim.Proc) {
			for {
				msg, from := s.Mailbox.RecvFrom(p, k)
				switch msg.Type() {
				case soc.MsgBalloonCmd:
					m.EnqueueReclaim(k, from)
				case soc.MsgBalloonAck:
					m.OnBalloonAck(k)
				}
			}
		})
	}
	done := false
	e.Spawn("app", func(p *sim.Proc) {
		cs := s.Core(soc.Weak, 0)
		// Shadow takes both blocks; pool is now empty.
		if _, err := m.DeflateBlock(p, cs, soc.Weak); err != nil {
			t.Fatal(err)
		}
		if _, err := m.DeflateBlock(p, cs, soc.Weak); err != nil {
			t.Fatal(err)
		}
		// Main hits pressure: its worker must reclaim from shadow.
		m.Kick(soc.Strong)
		p.Sleep(500 * time.Millisecond)
		if m.Buddies[soc.Strong].TotalPages() == 0 {
			t.Error("main never received a block via peer reclaim")
		}
		if m.Reclaims == 0 {
			t.Error("no reclaim recorded")
		}
		done = true
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("app did not finish")
	}
}

// With more than two kernels, a pressured kernel must probe the peer with
// the most free pages first, not a hardwired "other" kernel.
func TestReclaimPrefersFreestPeer(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig().WithWeakDomains(2))
	fr := NewFrames(s.Pages(), s.Cfg.PageSize)
	// Tiny global region: exactly 2 blocks.
	m := NewManager(s, fr, DefaultCostModel(), BlockPages, 3*BlockPages)
	w2 := soc.DomainID(2)
	for id := range s.Domains {
		k := soc.DomainID(id)
		e.Spawn("worker-"+k.String(), func(p *sim.Proc) { m.Worker(p, s.Core(k, 0), k) })
		e.Spawn("mbox-"+k.String(), func(p *sim.Proc) {
			for {
				msg, from := s.Mailbox.RecvFrom(p, k)
				switch msg.Type() {
				case soc.MsgBalloonCmd:
					m.EnqueueReclaim(k, from)
				case soc.MsgBalloonAck:
					m.OnBalloonAck(k)
				}
			}
		})
	}
	// weak and weak2 each take a block; weak pins half of its block so that
	// weak2 is the freer peer.
	if _, err := m.DeflateBoot(soc.Weak); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeflateBoot(w2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Buddies[soc.Weak].AllocBoot(MaxOrder-1, Movable); err != nil {
		t.Fatal(err)
	}
	if m.Buddies[soc.Weak].FreePages() >= m.Buddies[w2].FreePages() {
		t.Fatal("setup broken: weak2 is not the freest peer")
	}
	done := false
	e.Spawn("app", func(p *sim.Proc) {
		m.Kick(soc.Strong)
		p.Sleep(500 * time.Millisecond)
		if m.Buddies[soc.Strong].TotalPages() == 0 {
			t.Error("strong never received a block via peer reclaim")
		}
		if m.Reclaims == 0 {
			t.Error("no reclaim recorded")
		}
		done = true
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("app did not finish")
	}
	if n := s.Mailbox.SentBetween(soc.Strong, soc.Weak); n != 0 {
		t.Fatalf("strong probed weak (%d messages) before the freer weak2", n)
	}
	if s.Mailbox.SentBetween(soc.Strong, w2) == 0 {
		t.Fatal("strong never probed weak2")
	}
	if err := m.CheckPartition(); err != nil {
		t.Fatal(err)
	}
}
