package mem

import (
	"fmt"
	"sort"

	"k2/internal/soc"
)

// FrameEntry is one non-default entry of the frames array. The array is
// captured as a sparse diff against its freshly constructed state (every
// page unowned): at the boot-ready quiesce point only a few tens of
// thousands of the quarter-million frames differ.
type FrameEntry struct {
	Index int
	Owner int
	Alloc bool
	Head  bool
	Order int
	Free  bool
	MT    int
}

// FramesState is the frames array's checkpointable state.
type FramesState struct {
	Entries []FrameEntry
}

// CaptureState records every frame that differs from its boot value.
func (fr *Frames) CaptureState() FramesState {
	var st FramesState
	for i, f := range fr.f {
		if f.owner == ownerNone && !f.alloc && !f.head && f.order == 0 && !f.free && f.mt == Unmovable {
			continue
		}
		st.Entries = append(st.Entries, FrameEntry{
			Index: i, Owner: int(f.owner), Alloc: f.alloc, Head: f.head,
			Order: int(f.order), Free: f.free, MT: int(f.mt),
		})
	}
	return st
}

// RestoreState rewinds a freshly constructed frames array (same size) onto a
// captured state.
func (fr *Frames) RestoreState(st FramesState) {
	for i := range fr.f {
		fr.f[i] = frame{owner: ownerNone}
	}
	for _, e := range st.Entries {
		fr.f[e.Index] = frame{
			owner: int8(e.Owner), alloc: e.Alloc, head: e.Head,
			order: uint8(e.Order), free: e.Free, mt: MigrateType(e.MT),
		}
	}
}

// BuddyState is one allocator's checkpointable state.
type BuddyState struct {
	Free   [][]int // per-order free lists, ascending
	NFree  int
	NTotal int
	Allocs int
	Frees  int
	Splits int
	Merges int
}

// CaptureState records the allocator's state (frames are captured separately
// via Frames.CaptureState).
func (b *Buddy) CaptureState() BuddyState {
	st := BuddyState{
		NFree: b.nfree, NTotal: b.ntotal,
		Allocs: b.Allocs, Frees: b.Frees, Splits: b.Splits, Merges: b.Merges,
	}
	st.Free = make([][]int, len(b.free))
	for order, list := range b.free {
		for _, p := range list {
			st.Free[order] = append(st.Free[order], int(p))
		}
	}
	return st
}

// RestoreState rewinds the allocator onto a captured state.
func (b *Buddy) RestoreState(st BuddyState) {
	for i := range b.free {
		b.free[i] = nil
		for _, p := range st.Free[i] {
			b.free[i] = append(b.free[i], PFN(p))
		}
	}
	b.nfree = st.NFree
	b.ntotal = st.NTotal
	b.Allocs, b.Frees, b.Splits, b.Merges = st.Allocs, st.Frees, st.Splits, st.Merges
}

// BalloonState is one balloon driver's checkpointable state.
type BalloonState struct {
	Inflates, Deflates, PagesMoved int
}

// CaptureState records the balloon's counters.
func (bl *Balloon) CaptureState() BalloonState {
	return BalloonState{Inflates: bl.Inflates, Deflates: bl.Deflates, PagesMoved: bl.PagesMoved}
}

// RestoreState rewinds the balloon onto captured counters.
func (bl *Balloon) RestoreState(st BalloonState) {
	bl.Inflates, bl.Deflates, bl.PagesMoved = st.Inflates, st.Deflates, st.PagesMoved
}

// BlockOwnerEntry records one block lease in the ownership map.
type BlockOwnerEntry struct {
	Head  int
	Owner int
}

// ManagerState is the meta-manager's checkpointable state, including its
// per-kernel allocators, balloons and the shared frames array.
type ManagerState struct {
	Frames     FramesState
	Buddies    []BuddyState
	Balloons   []BalloonState
	Pool       []int
	BlockOwner []BlockOwnerEntry // sorted by head
	Pending    []bool
	ReclaimGen []uint32
	EverSwept  bool
	Reclaims   int
	DeadRecl   int
	StaleFrees int
}

// CaptureState records the memory-management stack's state at a quiesce
// point; it errors if any background worker is mid-item or has queued work
// (those procs cannot be serialized).
func (m *Manager) CaptureState() (ManagerState, error) {
	var st ManagerState
	for k := range m.workQ {
		if n := m.workQ[k].Len(); n > 0 {
			return st, fmt.Errorf("mem: kernel %v has %d queued work items", soc.DomainID(k), n)
		}
		if m.busy[k] {
			return st, fmt.Errorf("mem: kernel %v worker is mid-item", soc.DomainID(k))
		}
	}
	st.Frames = m.Frames.CaptureState()
	for k := range m.Buddies {
		st.Buddies = append(st.Buddies, m.Buddies[k].CaptureState())
		st.Balloons = append(st.Balloons, m.Balloons[k].CaptureState())
	}
	for _, p := range m.pool {
		st.Pool = append(st.Pool, int(p))
	}
	for head, owner := range m.blockOwner {
		st.BlockOwner = append(st.BlockOwner, BlockOwnerEntry{Head: int(head), Owner: int(owner)})
	}
	sort.Slice(st.BlockOwner, func(i, j int) bool { return st.BlockOwner[i].Head < st.BlockOwner[j].Head })
	st.Pending = append([]bool(nil), m.pending...)
	st.ReclaimGen = append([]uint32(nil), m.reclaimGen...)
	st.EverSwept = m.everSwept
	st.Reclaims, st.DeadRecl, st.StaleFrees = m.Reclaims, m.DeadReclaims, m.StaleFrees
	return st, nil
}

// RestoreState rewinds a freshly constructed manager (same platform) onto a
// captured state. Worker procs are respawned by the OS afterwards; their
// queues start empty, matching the capture precondition.
func (m *Manager) RestoreState(st ManagerState) error {
	if len(st.Buddies) != len(m.Buddies) {
		return fmt.Errorf("mem: snapshot has %d kernels, platform %d", len(st.Buddies), len(m.Buddies))
	}
	m.Frames.RestoreState(st.Frames)
	for k := range m.Buddies {
		m.Buddies[k].RestoreState(st.Buddies[k])
		m.Balloons[k].RestoreState(st.Balloons[k])
	}
	m.pool = m.pool[:0]
	for _, p := range st.Pool {
		m.pool = append(m.pool, PFN(p))
	}
	m.blockOwner = make(map[PFN]soc.DomainID, len(st.BlockOwner))
	for _, e := range st.BlockOwner {
		m.blockOwner[PFN(e.Head)] = soc.DomainID(e.Owner)
	}
	copy(m.pending, st.Pending)
	copy(m.reclaimGen, st.ReclaimGen)
	for k := range m.busy {
		m.busy[k] = false
	}
	m.everSwept = st.EverSwept
	m.Reclaims, m.DeadReclaims, m.StaleFrees = st.Reclaims, st.DeadRecl, st.StaleFrees
	return nil
}
