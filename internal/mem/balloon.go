package mem

import (
	"k2/internal/sim"
	"k2/internal/soc"
)

// Balloon is a kernel's private balloon driver (§6.2). Retrofitting the idea
// from virtual machines, it gives K2 the illusion of on-demand resizable
// physical memory per kernel: deflate frees a 16 MB page block to the local
// page allocator (transferring ownership K2 -> kernel); inflate evacuates a
// page block from the kernel (kernel -> K2), migrating movable pages with
// best effort.
type Balloon struct {
	Kernel soc.DomainID

	// OnMigrate, if set, is told about every block evacuation performed
	// by Inflate (old head, new head, order) — the analog of the reverse
	// mappings a real kernel updates when it migrates movable pages.
	OnMigrate func(old, new PFN, order int)

	// Gen, if set, reports the kernel's reclaim generation (bumped by
	// Manager.ReclaimDead). Deflate and Inflate charge CPU time between
	// mutating allocator state, and a crash freezes the executing proc at
	// that charge; if the watchdog sweeps the kernel's memory before the
	// proc resumes, finishing the half-done operation would corrupt the
	// re-pooled blocks. A generation change across the charge detects
	// exactly that window. A crash+reboot with no sweep leaves the
	// generation — and the allocator — intact, so completing is correct.
	Gen func() uint32

	buddy  *Buddy
	frames *Frames
	cost   CostModel

	// Stats.
	Inflates, Deflates, PagesMoved int
}

// NewBalloon returns the balloon driver for the given kernel's allocator.
func NewBalloon(k soc.DomainID, buddy *Buddy, frames *Frames, cost CostModel) *Balloon {
	return &Balloon{Kernel: k, buddy: buddy, frames: frames, cost: cost}
}

func (bl *Balloon) gen() uint32 {
	if bl.Gen == nil {
		return 0
	}
	return bl.Gen()
}

// Deflate hands the K2-owned page block starting at block to the local page
// allocator. From the kernel's perspective the balloon is a device driver
// freeing part of its boot-time reservation, so the Linux allocator needs no
// changes (§6.2). The executing core is charged the calibrated per-page
// cost (interconnect-bound metadata writes plus a small CPU part). It
// reports false — without touching the allocator — if the kernel's memory
// was swept by ReclaimDead while the charge was frozen by a crash.
func (bl *Balloon) Deflate(p *sim.Proc, core *soc.Core, block PFN) bool {
	g0 := bl.gen()
	core.ExecFor(p, bl.cost.DeflateInterconnectPerPage*BlockPages)
	core.Exec(p, bl.cost.DeflateCPUPerPage*BlockPages)
	if bl.gen() != g0 {
		return false
	}
	bl.buddy.AddRegion(block, BlockPages)
	bl.Deflates++
	return true
}

// Inflate reclaims the page block starting at block from the local kernel:
// free pages are quarantined and allocated movable pages are migrated
// elsewhere in the kernel's memory. It fails with ErrUnmovable if the block
// is pinned by an unmovable page, or ErrNoMemory if the kernel lacks room
// to absorb the evacuees; in both cases the block is left with the kernel.
// ErrReclaimed means the kernel crashed mid-operation and ReclaimDead
// already swept its memory; the allocator was not touched further.
func (bl *Balloon) Inflate(p *sim.Proc, core *soc.Core, block PFN) error {
	g0 := bl.gen()
	// Pre-scan: an unmovable page pins the whole block (best-effort
	// placement makes this unlikely near the frontier, §6.2).
	for i := block; i < block+BlockPages; i++ {
		f := bl.frames.f[i]
		if int(f.owner) != int(bl.Kernel) {
			return errf("inflate of block %d not owned by kernel %v", block, bl.Kernel)
		}
		if f.alloc && f.mt == Unmovable {
			// Charge the scan that discovered the pin.
			core.ExecFor(p, bl.cost.InflateInterconnectPerPage*BlockPages/8)
			return ErrUnmovable
		}
	}

	bl.buddy.quarantineFree(block, BlockPages)
	moved := 0
	failed := false
	blocks := bl.buddy.allocatedBlocks(block, BlockPages)
	for _, ab := range blocks {
		head, order := PFN(ab[0]), ab[1]
		mt := bl.frames.f[head].mt
		dst, _, err := bl.buddy.allocQuiet(order, mt)
		if err != nil {
			failed = true
			break
		}
		// The data copy cost is part of the calibrated per-page cost.
		if bl.OnMigrate != nil {
			bl.OnMigrate(head, dst, order)
		}
		moved += 1 << order
		// Vacate the original pages: they now belong to K2. They were
		// allocated, so only the managed-total shrinks.
		bl.buddy.ntotal -= 1 << order
		for i := head; i < head+PFN(1<<order); i++ {
			bl.frames.f[i] = frame{owner: ownerNone}
		}
	}

	// Charge the evacuation: per-page scan/metadata plus migration.
	core.ExecFor(p, bl.cost.InflateInterconnectPerPage*BlockPages)
	core.Exec(p, bl.cost.InflateCPUPerPage*BlockPages)

	if bl.gen() != g0 {
		// The kernel died during the charge and the watchdog already swept
		// everything this operation was mutating; neither the rollback nor
		// the success path may touch the re-pooled blocks.
		return ErrReclaimed
	}
	if failed {
		// Return what we took: vacated originals and quarantined ranges
		// rejoin the kernel's allocator; the block stays with the kernel.
		bl.restore(block)
		return ErrNoMemory
	}
	bl.PagesMoved += moved
	bl.Inflates++
	return nil
}

// restore re-adds every K2-owned page in the block back to the kernel's
// allocator as free memory (rollback of a failed inflation).
func (bl *Balloon) restore(block PFN) {
	run := -1
	for i := block; i <= block+BlockPages; i++ {
		isK2 := i < block+BlockPages && int(bl.frames.f[i].owner) == ownerNone
		if isK2 && run < 0 {
			run = int(i)
		}
		if !isK2 && run >= 0 {
			bl.buddy.AddRegion(PFN(run), int(i)-run)
			run = -1
		}
	}
}
