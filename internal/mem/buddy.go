package mem

import (
	"fmt"
	"sort"

	"k2/internal/sim"
	"k2/internal/soc"
)

// MaxOrder is the largest buddy order: 2^12 pages = 16 MB, matching the
// meta-level manager's page-block granularity (§6.2).
const MaxOrder = 12

// BlockPages is the number of 4 KB pages in one 16 MB page block.
const BlockPages = 1 << MaxOrder

// Buddy is one kernel's physical page allocator: a real buddy system with
// per-order free lists, split/coalesce, and migrate-type-aware placement.
// Each kernel has an independent instance with no shared state (§6.2); the
// executing core is charged the calibrated CPU cost of each operation, so
// the weak kernel's allocator is naturally ~12x slower (Table 4).
type Buddy struct {
	// ID is the owning kernel (its domain).
	ID soc.DomainID
	// FrontierHigh places movable pages toward the high end of the address
	// space (the balloon frontier of the main kernel); the shadow kernel's
	// frontier is at the low end (§6.2 optimization 2 and 3).
	FrontierHigh bool
	// NoPlacementPolicy disables the migrate-type-aware placement (all
	// allocations take the lowest suitable block, as a vanilla buddy
	// would). Exists for the ablation quantifying §6.2's optimization 3.
	NoPlacementPolicy bool
	// LowWater triggers the pressure probe when free pages drop below it.
	LowWater int
	// OnPressure is the meta-level manager's probe hook (§6.2); invoked
	// from the allocating proc's context after the allocation completes.
	OnPressure func()

	frames *Frames
	cost   CostModel
	free   [MaxOrder + 1][]PFN // sorted ascending
	nfree  int
	ntotal int

	// Stats.
	Allocs, Frees, Splits, Merges int
}

// NewBuddy returns an empty allocator for kernel id over the shared frames.
func NewBuddy(id soc.DomainID, frames *Frames, cost CostModel, frontierHigh bool) *Buddy {
	return &Buddy{ID: id, FrontierHigh: frontierHigh, frames: frames, cost: cost}
}

// FreePages returns the number of free pages in this allocator.
func (b *Buddy) FreePages() int { return b.nfree }

// TotalPages returns the number of pages this allocator manages.
func (b *Buddy) TotalPages() int { return b.ntotal }

// Reset drops all of the allocator's memory and free lists, as if freshly
// constructed. The watchdog uses it when its kernel dies: the frames
// themselves are handed back to the pool by Manager.ReclaimDead, and a
// rebooted kernel starts from an empty allocator like at boot.
func (b *Buddy) Reset() {
	for i := range b.free {
		b.free[i] = nil
	}
	b.nfree = 0
	b.ntotal = 0
}

func insertSorted(s []PFN, v PFN) []PFN {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []PFN, v PFN) ([]PFN, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i >= len(s) || s[i] != v {
		return s, false
	}
	return append(s[:i], s[i+1:]...), true
}

func (b *Buddy) pushFree(p PFN, order int) {
	f := &b.frames.f[p]
	f.owner = int8(b.ID)
	f.alloc = false
	f.head = true
	f.free = true
	f.order = uint8(order)
	b.free[order] = insertSorted(b.free[order], p)
}

// AddRegion donates [start, start+n) to the allocator as free memory,
// decomposing it into maximal naturally-aligned blocks. Used at boot for
// local regions and by balloon deflation for page blocks. It charges no CPU
// cost itself (callers account for it).
func (b *Buddy) AddRegion(start PFN, n int) {
	b.ntotal += n
	b.nfree += n
	for i := start; i < start+PFN(n); i++ {
		b.frames.f[i] = frame{owner: int8(b.ID)}
	}
	p := start
	rem := n
	for rem > 0 {
		order := MaxOrder
		for order > 0 && (p&(1<<order-1) != 0 || 1<<order > rem) {
			order--
		}
		b.coalesceAndInsert(p, order)
		p += 1 << order
		rem -= 1 << order
	}
}

// Alloc allocates a block of 2^order pages of the given migrate type,
// charging the calibrated cost to core. It returns the head PFN.
func (b *Buddy) Alloc(p *sim.Proc, core *soc.Core, order int, mt MigrateType) (PFN, error) {
	pfn, splits, err := b.allocQuiet(order, mt)
	if err != nil {
		return 0, err
	}
	_ = splits
	w := b.cost.AllocBase +
		b.cost.AllocPerPage*soc.Work(1<<order) +
		b.cost.AllocPerOrder*soc.Work(order) +
		b.cost.Probe
	core.Exec(p, w)
	if b.OnPressure != nil && b.nfree < b.LowWater {
		b.OnPressure()
	}
	return pfn, nil
}

// AllocBoot allocates without charging CPU time; used during kernel boot,
// before time accounting matters.
func (b *Buddy) AllocBoot(order int, mt MigrateType) (PFN, error) {
	pfn, _, err := b.allocQuiet(order, mt)
	return pfn, err
}

// allocQuiet performs the allocation bookkeeping without charging time;
// boot-time setup and tests use it directly.
//
// Placement: movable allocations grow toward the balloon frontier and
// unmovable ones away from it, maximizing the chance that page blocks near
// the frontier can be evacuated on inflation (§6.2). To honor this with
// best effort, the search considers every order that can satisfy the
// request and picks the block closest to the preferred end (smaller blocks
// win ties to limit splitting).
func (b *Buddy) allocQuiet(order int, mt MigrateType) (PFN, int, error) {
	towardFrontier := mt == Movable
	takeHigh := towardFrontier == b.FrontierHigh
	if b.NoPlacementPolicy {
		takeHigh = false
	}

	k := -1
	var blk PFN
	for j := order; j <= MaxOrder; j++ {
		list := b.free[j]
		if len(list) == 0 {
			continue
		}
		var cand PFN
		if takeHigh {
			cand = list[len(list)-1]
		} else {
			cand = list[0]
		}
		switch {
		case k < 0:
			k, blk = j, cand
		case takeHigh && cand+PFN(1<<j) > blk+PFN(1<<k):
			k, blk = j, cand
		case !takeHigh && cand < blk:
			k, blk = j, cand
		}
	}
	if k < 0 {
		return 0, 0, ErrNoMemory
	}
	var ok bool
	b.free[k], ok = removeSorted(b.free[k], blk)
	if !ok {
		panic("mem: alloc: free list inconsistent")
	}
	b.frames.f[blk].free = false

	splits := 0
	for j := k; j > order; j-- {
		half := PFN(1 << (j - 1))
		lower, upper := blk, blk+half
		if takeHigh {
			b.pushFree(lower, j-1)
			blk = upper
		} else {
			b.pushFree(upper, j-1)
			blk = lower
		}
		splits++
	}
	b.Splits += splits

	head := &b.frames.f[blk]
	head.alloc = true
	head.head = true
	head.free = false
	head.order = uint8(order)
	head.mt = mt
	for i := blk + 1; i < blk+PFN(1<<order); i++ {
		f := &b.frames.f[i]
		f.alloc = true
		f.head = false
		f.free = false
		f.mt = mt
	}
	b.nfree -= 1 << order
	b.Allocs++
	return blk, splits, nil
}

// Free releases the block headed by pfn, coalescing with free buddies, and
// charges the calibrated cost to core. The page must have been allocated by
// this instance (the redirect wrapper in Router routes remote frees).
func (b *Buddy) Free(p *sim.Proc, core *soc.Core, pfn PFN) {
	merges := b.freeQuiet(pfn)
	w := b.cost.FreeBase + b.cost.FreePerMerge*soc.Work(merges) + b.cost.Probe
	core.Exec(p, w)
}

// freeQuiet performs the free bookkeeping without charging time.
func (b *Buddy) freeQuiet(pfn PFN) int {
	f := &b.frames.f[pfn]
	if !f.alloc || !f.head {
		panic("mem: Free of a page that is not an allocated block head")
	}
	if int(f.owner) != int(b.ID) {
		panic("mem: Free routed to the wrong allocator instance")
	}
	order := int(f.order)
	b.nfree += 1 << order
	b.Frees++
	for i := pfn; i < pfn+PFN(1<<order); i++ {
		g := &b.frames.f[i]
		g.alloc = false
		g.head = false
	}
	return b.coalesceAndInsert(pfn, order)
}

func (b *Buddy) coalesceAndInsert(pfn PFN, order int) int {
	merges := 0
	for order < MaxOrder {
		buddy := pfn ^ (1 << order)
		if int(buddy) >= b.frames.Len() {
			break
		}
		g := &b.frames.f[buddy]
		if int(g.owner) != int(b.ID) || !g.free || int(g.order) != order {
			break
		}
		// Merge with the buddy block.
		var ok bool
		b.free[order], ok = removeSorted(b.free[order], buddy)
		if !ok {
			panic("mem: free list inconsistent with frame metadata")
		}
		g.free = false
		g.head = false
		if buddy < pfn {
			pfn = buddy
		}
		order++
		merges++
	}
	b.Merges += merges
	b.pushFree(pfn, order)
	return merges
}

// quarantineFree removes all free sub-blocks within [start, start+n) from
// the free lists and strips their ownership, so a concurrent allocation
// cannot hand them out while the balloon inflates the block.
func (b *Buddy) quarantineFree(start PFN, n int) (removed int) {
	for p := start; p < start+PFN(n); {
		f := &b.frames.f[p]
		if f.free && f.head {
			order := int(f.order)
			var ok bool
			b.free[order], ok = removeSorted(b.free[order], p)
			if !ok {
				panic("mem: quarantine: free list inconsistent")
			}
			f.free = false
			f.head = false
			f.owner = ownerNone
			for i := p + 1; i < p+PFN(1<<order); i++ {
				b.frames.f[i].owner = ownerNone
			}
			removed += 1 << order
			p += PFN(1 << order)
			continue
		}
		p++
	}
	b.nfree -= removed
	b.ntotal -= removed
	return removed
}

// allocatedBlocks lists (head, order) of allocated blocks in [start, start+n).
func (b *Buddy) allocatedBlocks(start PFN, n int) [][2]int {
	var out [][2]int
	for p := start; p < start+PFN(n); {
		f := &b.frames.f[p]
		if f.alloc && f.head {
			out = append(out, [2]int{int(p), int(f.order)})
			p += PFN(1 << f.order)
			continue
		}
		p++
	}
	return out
}

// CheckInvariants validates the allocator's internal consistency: free-list
// entries match frame metadata, no block appears twice, and the free page
// count is exact. Tests and property checks call it after random workloads.
func (b *Buddy) CheckInvariants() error {
	count := 0
	seen := make(map[PFN]bool)
	for order, list := range b.free {
		for i, p := range list {
			if i > 0 && list[i-1] >= p {
				return errf("free list order %d not sorted", order)
			}
			if seen[p] {
				return errf("page %d on multiple free lists", p)
			}
			seen[p] = true
			f := b.frames.f[p]
			if !f.free || !f.head || int(f.order) != order || int(f.owner) != int(b.ID) {
				return errf("page %d free-list metadata mismatch", p)
			}
			if p&(1<<order-1) != 0 {
				return errf("page %d not aligned to order %d", p, order)
			}
			count += 1 << order
		}
	}
	if count != b.nfree {
		return errf("free count %d != tracked %d", count, b.nfree)
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("mem: invariant violated: "+format, args...)
}
