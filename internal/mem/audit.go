package mem

// This file holds the whole-stack accounting audits used by the global
// invariant oracle (internal/check). They live in package mem because the
// per-frame free/alloc bits are unexported; everything here is a pure read.

// CheckConservation verifies per-kernel page conservation over the whole
// frame table: for every kernel, the pages its buddy claims to manage equal
// the frames owned by it, its free count equals owned minus allocated, and
// no frame is simultaneously a free-block head and allocated. Quarantine
// (inflate) and vacate (migration) happen in zero virtual time, so the
// identity holds at every event boundary, mid-evacuation included.
func (m *Manager) CheckConservation() error {
	n := len(m.Buddies)
	total := make([]int, n)
	alloc := make([]int, n)
	for i := range m.Frames.f {
		f := &m.Frames.f[i]
		if f.free && f.alloc {
			return errf("page %d is both free and allocated", i)
		}
		if int(f.owner) == ownerNone {
			if f.alloc {
				return errf("K2-owned page %d is marked allocated", i)
			}
			continue
		}
		k := int(f.owner)
		if k < 0 || k >= n {
			return errf("page %d has out-of-range owner %d", i, k)
		}
		total[k]++
		if f.alloc {
			alloc[k]++
		}
	}
	for k, b := range m.Buddies {
		if b.TotalPages() != total[k] {
			return errf("kernel %d: buddy manages %d pages but owns %d frames",
				k, b.TotalPages(), total[k])
		}
		if b.FreePages() != total[k]-alloc[k] {
			return errf("kernel %d: buddy reports %d free but frames say %d owned - %d allocated",
				k, b.FreePages(), total[k], alloc[k])
		}
	}
	return nil
}

// CheckMetaQuiescent verifies that the meta-manager has no work parked
// forever: once the system is quiescent, every live kernel's work queue is
// drained, its worker is not wedged mid-item, and no pressure request is
// still marked pending. Kernels whose domain is currently crashed are
// exempt — their frozen worker legitimately holds whatever it held.
func (m *Manager) CheckMetaQuiescent() error {
	for k := range m.Buddies {
		if m.SoC.Domains[k].Crashed() {
			continue
		}
		if n := m.workQ[k].Len(); n != 0 {
			return errf("kernel %d: %d meta-manager work items parked at quiescence", k, n)
		}
		if m.busy[k] {
			return errf("kernel %d: meta-manager worker wedged mid-item at quiescence", k)
		}
		if m.pending[k] {
			return errf("kernel %d: pressure request pending with an empty queue", k)
		}
	}
	return nil
}
