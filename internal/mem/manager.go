package mem

import (
	"sort"

	"k2/internal/sim"
	"k2/internal/soc"
)

// Manager is K2's meta-level memory manager (§6.2): it owns the pool of
// 16 MB page blocks in the global region and decides when to take blocks
// from and give blocks to kernels. It is realized as distributed probes
// (Buddy.OnPressure hooks) plus one background worker per kernel, which
// coordinate through hardware messages and act by invoking local balloon
// drivers — like the kernel swap daemon, the expensive work happens in the
// background so individual allocations stay fast (Table 4).
type Manager struct {
	SoC    *soc.SoC
	Frames *Frames

	Buddies  []*Buddy
	Balloons []*Balloon

	// GlobalStart/GlobalEnd bound the shared global region in pages.
	GlobalStart, GlobalEnd PFN

	pool       []PFN // sorted free block heads owned by K2
	poolLock   *soc.HWSpinlock
	blockOwner map[PFN]soc.DomainID

	workQ   []*sim.Queue
	ackGate []*sim.Gate
	pending []bool // a deflate request is already queued
	busy    []bool // the worker is mid-item (between dequeue and completion)

	// reclaimGen counts ReclaimDead sweeps per kernel; balloon operations
	// frozen by a crash compare it across their CPU charges to detect that
	// the memory they were mutating has been swept out from under them.
	reclaimGen []uint32
	everSwept  bool

	// Tracef, if set, receives meta-manager trace lines.
	Tracef func(format string, args ...any)

	// Stats.
	Reclaims     int
	DeadReclaims int // blocks swept back from crashed kernels
	StaleFrees   int // frees of pages already swept or migrated away
}

type workItem struct {
	kind workKind
	pfn  PFN
	from soc.DomainID // reclaim requester, acked when the inflate finishes
}

type workKind int

const (
	workNeedBlock workKind = iota
	workReclaim
	workRemoteFree
)

// NewManager builds the memory-management stack over the global region
// [globalStart, globalEnd): one independent buddy instance and balloon per
// kernel, and the K2-owned block pool covering the whole region (§6.2: at
// boot the balloons occupy the entire shared region).
func NewManager(s *soc.SoC, frames *Frames, cost CostModel, globalStart, globalEnd PFN) *Manager {
	m := &Manager{
		SoC:         s,
		Frames:      frames,
		GlobalStart: globalStart,
		GlobalEnd:   globalEnd,
		poolLock:    s.Spinlocks.Lock(0),
		blockOwner:  make(map[PFN]soc.DomainID),
	}
	// The main kernel's blocks grow upward from just after its local
	// region (movable pages toward the high frontier); the shadow kernels'
	// grow downward from the end of memory.
	n := s.NumDomains()
	m.Buddies = make([]*Buddy, n)
	m.Balloons = make([]*Balloon, n)
	m.workQ = make([]*sim.Queue, n)
	m.ackGate = make([]*sim.Gate, n)
	m.pending = make([]bool, n)
	m.busy = make([]bool, n)
	m.reclaimGen = make([]uint32, n)
	for id := range m.Buddies {
		id := soc.DomainID(id)
		m.Buddies[id] = NewBuddy(id, frames, cost, id == soc.Strong)
		m.Balloons[id] = NewBalloon(id, m.Buddies[id], frames, cost)
		m.Balloons[id].Gen = func() uint32 { return m.reclaimGen[id] }
		m.workQ[id] = sim.NewQueue(s.Eng)
		m.ackGate[id] = sim.NewGate(s.Eng)
		m.Buddies[id].LowWater = 2 * BlockPages / 4 // 8 MB
		m.Buddies[id].OnPressure = func() { m.Kick(id) }
	}
	for b := alignUp(globalStart); b+BlockPages <= globalEnd; b += BlockPages {
		m.pool = append(m.pool, b)
	}
	return m
}

func alignUp(p PFN) PFN { return (p + BlockPages - 1) &^ (BlockPages - 1) }

// PoolBlocks returns how many 16 MB blocks K2 currently owns.
func (m *Manager) PoolBlocks() int { return len(m.pool) }

// BlockOwner returns which kernel holds the block at head, if any.
func (m *Manager) BlockOwner(head PFN) (soc.DomainID, bool) {
	d, ok := m.blockOwner[head]
	return d, ok
}

// Kick schedules background work to deflate a block into kernel k; it is
// the probe's action and costs the caller nothing beyond the probe itself.
func (m *Manager) Kick(k soc.DomainID) {
	if m.pending[k] {
		return
	}
	m.pending[k] = true
	m.workQ[k].Put(workItem{kind: workNeedBlock})
}

// EnqueueReclaim asks kernel k's worker to inflate one block back to the
// pool and acknowledge the requesting kernel; the OS mailbox dispatcher
// calls this on MsgBalloonCmd with the mail's sender.
func (m *Manager) EnqueueReclaim(k, from soc.DomainID) {
	m.workQ[k].Put(workItem{kind: workReclaim, from: from})
}

// EnqueueRemoteFree queues a page block freed by the other kernel for the
// owning kernel k (§6.2: free requests are redirected asynchronously).
func (m *Manager) EnqueueRemoteFree(k soc.DomainID, pfn PFN) {
	m.workQ[k].Put(workItem{kind: workRemoteFree, pfn: pfn})
}

// OnBalloonAck is called by the OS mailbox dispatcher when kernel k
// receives MsgBalloonAck, releasing a worker waiting for a reclaim.
func (m *Manager) OnBalloonAck(k soc.DomainID) { m.ackGate[k].Open() }

// Free routes a free request to the allocator instance that owns the page:
// the local instance directly, or the remote kernel's work queue via an
// asynchronous redirect with a thin address-check wrapper (§6.2).
func (m *Manager) Free(p *sim.Proc, core *soc.Core, local soc.DomainID, pfn PFN) {
	owner := m.Frames.Owner(pfn)
	if owner == int(local) {
		m.Buddies[local].Free(p, core, pfn)
		return
	}
	if owner < 0 {
		if m.everSwept {
			// A proc that froze in a crash can resume after the watchdog
			// swept its kernel's memory and free a page that no longer
			// belongs to anyone; the page is already back in the pool, so
			// the free is a deterministic no-op rather than corruption.
			m.StaleFrees++
			if m.Tracef != nil {
				m.Tracef("stale free of swept page %d from %v", pfn, local)
			}
			return
		}
		panic("mem: Free of a K2-owned page")
	}
	core.Exec(p, soc.Work(60)) // the wrapper's range check
	m.EnqueueRemoteFree(soc.DomainID(owner), pfn)
}

// DeflateBlock synchronously moves one block from the K2 pool to kernel k,
// choosing the block at k's frontier (low end for main, high end for
// shadow). It returns the block head. Used directly by the Table 4
// microbenchmark and by the background worker.
func (m *Manager) DeflateBlock(p *sim.Proc, core *soc.Core, k soc.DomainID) (PFN, error) {
	m.poolLock.Acquire(p, core)
	if len(m.pool) == 0 {
		m.poolLock.Release(p, core)
		return 0, ErrNoMemory
	}
	var head PFN
	if k == soc.Strong {
		head = m.pool[0]
		m.pool = m.pool[1:]
	} else {
		head = m.pool[len(m.pool)-1]
		m.pool = m.pool[:len(m.pool)-1]
	}
	m.blockOwner[head] = k
	m.poolLock.Release(p, core)
	if !m.Balloons[k].Deflate(p, core, head) {
		// The kernel died mid-deflate and ReclaimDead already returned the
		// block (blockOwner was set, so the sweep saw it) to the pool.
		return 0, ErrReclaimed
	}
	if m.Tracef != nil {
		m.Tracef("deflated block %d to %v (pool: %d left)", head, k, len(m.pool))
	}
	return head, nil
}

// DeflateBoot is DeflateBlock without CPU-time charging, for the early
// stage of kernel boot (§6.2) before time accounting matters.
func (m *Manager) DeflateBoot(k soc.DomainID) (PFN, error) {
	if len(m.pool) == 0 {
		return 0, ErrNoMemory
	}
	var head PFN
	if k == soc.Strong {
		head = m.pool[0]
		m.pool = m.pool[1:]
	} else {
		head = m.pool[len(m.pool)-1]
		m.pool = m.pool[:len(m.pool)-1]
	}
	m.blockOwner[head] = k
	m.Buddies[k].AddRegion(head, BlockPages)
	m.Balloons[k].Deflates++
	return head, nil
}

// InflateBlock synchronously reclaims one block from kernel k back to the
// pool, trying candidate blocks starting at k's frontier. It returns the
// reclaimed block head.
func (m *Manager) InflateBlock(p *sim.Proc, core *soc.Core, k soc.DomainID) (PFN, error) {
	cands := m.ownedBlocks(k)
	if k == soc.Strong {
		// Main blocks grew upward; reclaim from the top (frontier).
		for i, j := 0, len(cands)-1; i < j; i, j = i+1, j-1 {
			cands[i], cands[j] = cands[j], cands[i]
		}
	}
	var lastErr error = ErrNoMemory
	for _, head := range cands {
		err := m.Balloons[k].Inflate(p, core, head)
		if err == ErrReclaimed {
			// The candidate list predates the sweep; every entry is stale.
			return 0, err
		}
		if err == nil {
			m.poolLock.Acquire(p, core)
			delete(m.blockOwner, head)
			m.pool = insertSorted(m.pool, head)
			m.poolLock.Release(p, core)
			m.Reclaims++
			if m.Tracef != nil {
				m.Tracef("inflated block %d from %v back to the pool", head, k)
			}
			return head, nil
		}
		lastErr = err
	}
	return 0, lastErr
}

// peersByFreePages returns every kernel except k, ordered by how many free
// pages its buddy has (descending; ties go to the lowest ID) — the kernels
// most likely to have an inflatable block first.
func (m *Manager) peersByFreePages(k soc.DomainID) []soc.DomainID {
	peers := make([]soc.DomainID, 0, len(m.Buddies)-1)
	for id := range m.Buddies {
		if soc.DomainID(id) != k {
			peers = append(peers, soc.DomainID(id))
		}
	}
	sort.SliceStable(peers, func(i, j int) bool {
		return m.Buddies[peers[i]].FreePages() > m.Buddies[peers[j]].FreePages()
	})
	return peers
}

func (m *Manager) ownedBlocks(k soc.DomainID) []PFN {
	var out []PFN
	for head, owner := range m.blockOwner {
		if owner == k {
			out = append(out, head)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Worker runs kernel k's background meta-manager loop on the given core.
// The OS spawns one per kernel; it never returns.
func (m *Manager) Worker(p *sim.Proc, core *soc.Core, k soc.DomainID) {
	for {
		item := m.workQ[k].Get(p).(workItem)
		m.SoC.Domains[k].EnsureAwake(p)
		m.busy[k] = true
		switch item.kind {
		case workNeedBlock:
			m.pending[k] = false
			if m.Buddies[k].FreePages() >= m.Buddies[k].LowWater {
				break // pressure resolved itself (frees caught up)
			}
			if _, err := m.DeflateBlock(p, core, k); err == nil {
				break
			}
			// Pool empty: pressure-probe the peer kernels, most free pages
			// first (ties to the lowest ID), asking each to inflate until a
			// retry succeeds.
			for _, peer := range m.peersByFreePages(k) {
				m.SoC.Mailbox.Send(p, core, peer,
					soc.NewMessage(soc.MsgBalloonCmd, 0, m.SoC.Mailbox.NextSeq()))
				m.ackGate[k].Wait(p)
				if _, err := m.DeflateBlock(p, core, k); err == nil {
					break
				}
				// This peer had nothing reclaimable; try the next one, or
				// give up until the next pressure probe fires.
			}
		case workReclaim:
			_, _ = m.InflateBlock(p, core, k)
			m.SoC.Mailbox.Send(p, core, item.from,
				soc.NewMessage(soc.MsgBalloonAck, 0, m.SoC.Mailbox.NextSeq()))
		case workRemoteFree:
			if m.Frames.Owner(item.pfn) != int(k) {
				// The page migrated away (balloon inflate) or the kernel
				// was swept between the redirect and the worker reaching
				// the item; the original frame no longer exists to free.
				m.StaleFrees++
				break
			}
			m.Buddies[k].Free(p, core, item.pfn)
		}
		m.busy[k] = false
	}
}

// CheckPartition validates the global-region ownership invariant: every
// block is owned by exactly one of {K2 pool, main, shadow}, and page-level
// ownership agrees with block-level ownership for K2 blocks.
func (m *Manager) CheckPartition() error {
	inPool := make(map[PFN]bool, len(m.pool))
	for _, b := range m.pool {
		inPool[b] = true
	}
	for b := alignUp(m.GlobalStart); b+BlockPages <= m.GlobalEnd; b += BlockPages {
		_, owned := m.blockOwner[b]
		if owned == inPool[b] {
			return errf("block %d: pool=%v owned=%v (must be exactly one)", b, inPool[b], owned)
		}
		if inPool[b] {
			for i := b; i < b+BlockPages; i++ {
				if m.Frames.Owner(i) != ownerNone {
					return errf("page %d in pooled block %d has owner %d", i, b, m.Frames.Owner(i))
				}
			}
		}
	}
	return nil
}
