// Package replica is K2's N-modular-redundancy layer: following Döbel et
// al.'s resource-aware replication argument, it spends spare weak domains
// on redundant execution instead of leaving recovery to detection. R
// replicas of a process's NightWatch threads are placed on distinct weak
// domains (anti-affinity over sched's least-loaded pick), run the same
// deterministic state machine over the same inputs, and emit a digest of
// their state to the strong kernel at every vote point through the mailbox
// fabric. The strong kernel commits a vote point the moment a majority
// agrees — so a crashed, hung or diverged replica is outvoted *immediately*,
// with zero detection window for the workload — flags the loser, and
// re-integrates it by respawning from the committed state on a fresh
// domain. The watchdog stays armed underneath as the backstop for full-set
// loss: if every replica dies at once nothing votes, and progress resumes
// only after the watchdog's reclaim and the domains' reboot.
//
// Vote order is deterministic: votes travel as mailbox mails, mailbox
// delivery is engine-event ordered, and the voter's bookkeeping iterates
// replicas by index — so the same seed yields byte-identical commit
// sequences at any host parallelism, the same contract every other K2
// subsystem honors.
package replica

import (
	"fmt"
	"time"

	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/trace"
)

// Vote mails ride MsgGeneric's 20-bit payload: bit 18 set with bit 19 (the
// watchdog flag) clear marks a vote mail, and the low 18 bits index the
// manager's in-memory vote ledger (digests are 64-bit and travel
// out-of-band, the same idiom core's map propagation uses for mapOp).
// Map-propagation ids are masked below bit 18, so the three MsgGeneric
// users are provably disjoint.
const (
	// MailFlag marks a replica vote mail (core's dispatcher tests it after
	// the watchdog flag and before map propagation).
	MailFlag    = uint32(1) << 18
	mailIdxMask = MailFlag - 1
)

// corruptionMask is XORed into a digest when a scripted corruption fires:
// a deliberate single-replica divergence for exercising the voting and the
// divergence-implication oracle.
const corruptionMask = uint64(0xDEADBEEF00000001)

// graceVotePoints is how many vote points a freshly (re-)spawned
// incarnation is exempt from timeout flagging: a replacement starts behind
// the healthy cadence and needs a point or two of idle-skipping to catch
// up; flagging it for that lag would respawn it again, forever (the
// double-recovery thrash this layer exists to avoid).
const graceVotePoints = 2

// Params configures the replication layer (core.Options.Replication).
type Params struct {
	// R is the replication degree. 1 is unreplicated baseline semantics:
	// a single replica whose every vote commits on arrival — and whose
	// crash stalls the group until the watchdog-and-reboot path runs.
	R int
	// VoteTimeout bounds how long a vote point stays open after its first
	// vote arrives. At the deadline the strong kernel commits the
	// plurality and flags the silent or diverged minority. Quorum arrivals
	// commit earlier; the timeout only prices degraded quorums.
	VoteTimeout time.Duration
}

// DefaultParams returns triple-modular redundancy with a 500 µs vote
// timeout — shorter than the watchdog's ~1.5 ms detection window, so the
// voter always outruns the backstop.
func DefaultParams() Params {
	return Params{R: 3, VoteTimeout: 500 * time.Microsecond}
}

func (p Params) normalized() Params {
	if p.R < 1 {
		p.R = 1
	}
	if p.VoteTimeout <= 0 {
		p.VoteTimeout = 500 * time.Microsecond
	}
	return p
}

// Deps are the manager's hooks into the booted OS, passed as closures so
// this package does not import core.
type Deps struct {
	Eng   *sim.Engine
	S     *soc.SoC
	Sched *sched.Sched
	Trace *trace.Buffer
	// Ready gates replica threads on the boot barrier.
	Ready *sim.Event
	// StrongCore returns the strong kernel's service core (timeout sweeps
	// run there, like the watchdog's).
	StrongCore func() *soc.Core
	// Reclaim runs the kernel's recovery sweep for a dead domain:
	// force-release its spinlocks, reclaim its DSM ownership and memory
	// blocks. Shared with the watchdog's declareDead.
	Reclaim func(p *sim.Proc, core *soc.Core, k soc.DomainID) (locks, pages, blocks int)
	// WatchdogSuppress asks the watchdog to stand back from domain k while
	// the manager re-integrates away from it. It reports true when the
	// manager now owns the recovery sweep for k (suppression engaged, or
	// there is no watchdog); false when the watchdog already declared k
	// dead — its sweep has run, a second one would be the double-recovery
	// thrash. Nil behaves like "no watchdog" (the manager owns the sweep).
	WatchdogSuppress func(k soc.DomainID) bool
}

// Machine is the deterministic state machine each replica runs: Init is
// the state before vote point 0; each vote point is StepsPerVote
// applications of Step (each charged StepWork on the replica's weak core);
// the state after a vote point's last step is the digest the replica votes
// — and, once committed, the state a re-integrated replacement resumes
// from. Step must be a pure function of its arguments for replicas to
// agree.
type Machine struct {
	Init         uint64
	Step         func(votePoint, step int, state uint64) uint64
	StepWork     soc.Work
	StepsPerVote int
	VotePoints   int
	// Idle is the vote-point period: work for point vp is scheduled at
	// group start + vp*Idle, and a replica ahead of that absolute
	// schedule sleeps idle until it. The schedule is what keeps
	// the set phase-aligned — a replica behind it (a re-integrated
	// replacement, a thread thawed by a reboot) finds its targets in the
	// past, skips the sleeps, and converges back onto the shared cadence
	// instead of carrying a standing skew that would trip vote timeouts
	// forever. Per-point work (StepsPerVote * StepWork at the weak core's
	// speed) must fit inside Idle for the schedule to bind.
	Idle time.Duration
}

// GroupSpec describes one replicated group.
type GroupSpec struct {
	Name    string
	Machine Machine
	// Corrupt, if non-nil, scripts a digest corruption: when it reports
	// true for (replica, votePoint) the replica XORs corruptionMask into
	// the digest it votes (its internal state stays correct). The flag the
	// voter raises for it is recorded as implicated.
	Corrupt func(replica, votePoint int) bool
}

// CommitMode says how a vote point committed.
type CommitMode int

const (
	// CommitQuorum: a majority of replicas agreed; zero added latency.
	CommitQuorum CommitMode = iota
	// CommitTimeout: the vote point stayed below quorum for VoteTimeout
	// after its first vote and the plurality was committed.
	CommitTimeout
)

func (m CommitMode) String() string {
	if m == CommitTimeout {
		return "timeout"
	}
	return "quorum"
}

// Commit records one committed vote point.
type Commit struct {
	VotePoint int
	Digest    uint64
	At        sim.Time
	Mode      CommitMode
	Votes     int // votes counted at commit time
}

// FlagReason classifies why a replica was outvoted.
type FlagReason string

const (
	// ReasonCrashed: the replica had not voted and its domain is crashed.
	ReasonCrashed FlagReason = "crashed"
	// ReasonSilent: the replica missed the vote timeout without crash
	// evidence at flag time.
	ReasonSilent FlagReason = "silent"
	// ReasonDiverged: the replica voted a digest different from the
	// committed one.
	ReasonDiverged FlagReason = "diverged"
)

// Flag records one outvoted replica. Implicated reports whether the flag
// traces to an injected fault — the domain crashed since the replica's
// last accepted vote, or the divergence was scripted. The check.Suite
// oracle demands every flag be implicated: an unimplicated flag means the
// voter outvoted a healthy replica, a bug.
type Flag struct {
	Group      string
	Replica    int
	VotePoint  int
	Domain     soc.DomainID
	Reason     FlagReason
	Implicated bool
	At         sim.Time
}

// arrival is one accepted vote.
type arrival struct {
	rep     int
	inc     int
	digest  uint64
	corrupt bool
	at      sim.Time
}

// repState tracks one replica slot's current incarnation.
type repState struct {
	domain soc.DomainID
	// incarnation counts respawns; a superseded incarnation's thread
	// observes the bump at its next step and exits cooperatively.
	incarnation int
	// startVP is the vote point this incarnation began at (timeout grace).
	startVP int
	// votedVP is the last vote point this incarnation's vote was accepted
	// for (-1 before the first).
	votedVP int
	// crashCount is the domain's crash counter at the last accepted vote
	// (or spawn); a later mismatch implicates a crash in a flag.
	crashCount int
	// lastVoteAt is when this incarnation's last vote was accepted (spawn
	// time before the first): a replica behind the frontier but voting —
	// catching up after a reboot thawed it — is audibly alive, and a
	// timeout commit must not call it silent.
	lastVoteAt sim.Time
}

// Group is one replicated state machine: R replica slots, the per-point
// vote ledger, and the committed prefix.
type Group struct {
	Name string
	spec GroupSpec
	m    *Manager

	reps       []repState
	votes      [][]arrival
	commits    []Commit
	committed  int // frontier: vote points committed, in order
	timerArmed []bool
	startedAt  sim.Time

	// Done fires when every vote point has committed.
	Done *sim.Event
}

// mailRec is one ledger entry behind a vote mail's 18-bit index.
type mailRec struct {
	g         *Group
	rep, inc  int
	vp        int
	digest    uint64
	corrupt   bool
	delivered bool
}

// Manager is the strong kernel's voter and re-integration agent. It is
// single-threaded under the simulation engine like every other kernel
// component: votes arrive through the strong dispatcher, timeouts through
// spawned procs, so no locking is needed.
type Manager struct {
	Params Params
	d      Deps

	groups []*Group
	mails  []mailRec
	flags  []Flag
	// swept marks domains whose death the manager (not the watchdog)
	// reclaimed and that have not answered a ping since.
	swept map[soc.DomainID]bool

	// Stats.
	Votes           uint64 // votes accepted by the voter
	Outvoted        uint64 // replicas flagged
	Reintegrations  uint64 // replacement incarnations spawned
	QuorumCommits   uint64
	TimeoutCommits  uint64
	SweptDomains    uint64 // manager-run recovery sweeps
	RebootsObserved uint64 // suppressed domains seen answering again
}

// NewManager builds the replication layer over a booting OS. core.Boot
// calls it when Options.Replication is set (K2 mode with weak domains
// only).
func NewManager(d Deps, prm Params) *Manager {
	return &Manager{
		Params: prm.normalized(),
		d:      d,
		swept:  make(map[soc.DomainID]bool),
	}
}

// quorum is the majority threshold: R/2+1 (1 for R=1 — every vote
// commits on arrival; 2 for both R=2 and R=3).
func (m *Manager) quorum() int { return m.Params.R/2 + 1 }

// StartGroup places R replicas on distinct weak domains and starts them.
// It fails when fewer than R weak domains exist — replication needs the
// spare topology it is asked to use.
func (m *Manager) StartGroup(spec GroupSpec) (*Group, error) {
	mach := spec.Machine
	if mach.Step == nil || mach.StepsPerVote <= 0 || mach.VotePoints <= 0 {
		return nil, fmt.Errorf("replica: group %q needs a machine (Step, StepsPerVote, VotePoints)", spec.Name)
	}
	R := m.Params.R
	doms := m.d.Sched.PickNWDomains(R, nil)
	if len(doms) < R {
		return nil, fmt.Errorf("replica: %d replicas need %d distinct weak domains, platform has %d", R, R, len(doms))
	}
	g := &Group{
		Name:       spec.Name,
		spec:       spec,
		m:          m,
		votes:      make([][]arrival, mach.VotePoints),
		commits:    make([]Commit, mach.VotePoints),
		timerArmed: make([]bool, mach.VotePoints),
		startedAt:  m.d.Eng.Now(),
		Done:       sim.NewEvent(m.d.Eng),
	}
	for i := 0; i < R; i++ {
		g.reps = append(g.reps, repState{
			domain:     doms[i],
			votedVP:    -1,
			crashCount: m.d.S.Domains[doms[i]].CrashCount(),
			lastVoteAt: m.d.Eng.Now(),
		})
	}
	m.groups = append(m.groups, g)
	m.d.Trace.Emit(trace.Vote, "group %s: %d replicas on %v (%d vote points)",
		g.Name, R, doms, mach.VotePoints)
	for i := 0; i < R; i++ {
		m.spawnReplica(g, i, 0, 0, mach.Init)
	}
	return g, nil
}

// spawnReplica starts incarnation inc of replica idx as a fresh process
// whose NightWatch threads are pinned (PlaceNW) to the slot's domain.
func (m *Manager) spawnReplica(g *Group, idx, inc, fromVP int, state uint64) {
	r := &g.reps[idx]
	pr := m.d.Sched.NewProcess(fmt.Sprintf("%s-r%d.%d", g.Name, idx, inc))
	pr.PlaceNW(r.domain)
	pr.Spawn(sched.NightWatch, "replica", func(t *sched.Thread) {
		m.runReplica(t, g, idx, inc, fromVP, state)
	})
}

// runReplica is a replica thread's body: step the machine, vote the
// digest, idle at the frontier. A superseded incarnation exits at its next
// check; a replica on a crashed domain freezes inside Exec until the
// domain reboots, then resumes here and votes late (benignly, if it still
// agrees — or not at all, if a replacement superseded it meanwhile).
func (m *Manager) runReplica(t *sched.Thread, g *Group, idx, inc, fromVP int, state uint64) {
	if !m.d.Ready.Fired() {
		t.Block(func(p *sim.Proc) { m.d.Ready.Wait(p) })
	}
	mach := g.spec.Machine
	for vp := fromVP; vp < mach.VotePoints; vp++ {
		if mach.Idle > 0 {
			// Sleep up to this point's absolute schedule slot (work for
			// point vp starts at group start + vp*Idle); a replica behind
			// the schedule skips straight to the work. The sleep comes
			// before the work so a freshly re-integrated replacement —
			// spawned mid-period at the frontier — joins the shared cadence
			// instead of voting early and starting the timeout clock on
			// replicas that are exactly on schedule.
			target := g.startedAt.Add(time.Duration(vp) * mach.Idle)
			if now := t.P().Now(); target > now {
				t.SleepIdle(target.Sub(now))
			}
		}
		for s := 0; s < mach.StepsPerVote; s++ {
			if g.reps[idx].incarnation != inc {
				return
			}
			state = mach.Step(vp, s, state)
			if mach.StepWork > 0 {
				t.Exec(mach.StepWork)
			}
		}
		if g.reps[idx].incarnation != inc {
			return
		}
		digest := state
		corrupt := g.spec.Corrupt != nil && g.spec.Corrupt(idx, vp)
		if corrupt {
			digest ^= corruptionMask
			m.d.Trace.Emit(trace.Fault, "%s/r%d: scripted divergence at vote point %d", g.Name, idx, vp)
		}
		m.sendVote(t, g, idx, inc, vp, digest, corrupt)
	}
}

// sendVote appends a ledger entry and mails its index to the strong
// kernel. Fire-and-forget: the replica never blocks on the voter.
func (m *Manager) sendVote(t *sched.Thread, g *Group, idx, inc, vp int, digest uint64, corrupt bool) {
	id := uint32(len(m.mails))
	if id > mailIdxMask {
		panic("replica: vote ledger exceeds the 18-bit mail index space")
	}
	m.mails = append(m.mails, mailRec{g: g, rep: idx, inc: inc, vp: vp, digest: digest, corrupt: corrupt})
	m.d.S.Mailbox.Send(t.P(), t.Core(), soc.Strong,
		soc.NewMessage(soc.MsgGeneric, MailFlag|id, m.d.S.Mailbox.NextSeq()))
}

// HandleMail intercepts replica vote mails in the strong dispatcher
// (after the watchdog's bit-19 mails, before map propagation). Reports
// whether the mail was a vote mail.
func (m *Manager) HandleMail(p *sim.Proc, core *soc.Core, k soc.DomainID, payload uint32) bool {
	if payload&MailFlag == 0 || payload&(MailFlag<<1) != 0 {
		return false
	}
	if k != soc.Strong {
		return true // vote mails only ever target the strong kernel
	}
	id := payload & mailIdxMask
	if int(id) >= len(m.mails) || m.mails[id].delivered {
		return true // unknown slot or duplicated link delivery
	}
	m.mails[id].delivered = true
	m.handleVote(p, core, m.mails[id])
	return true
}

// handleVote is the voter: accept the digest, commit on quorum, arm the
// vote timeout on first arrival.
func (m *Manager) handleVote(p *sim.Proc, core *soc.Core, rec mailRec) {
	g := rec.g
	r := &g.reps[rec.rep]
	if rec.inc != r.incarnation {
		// A vote from a superseded incarnation (it was outvoted and
		// replaced while this mail was in flight, or while it was frozen on
		// a crashed domain). Its slot has moved on; drop it.
		m.d.Trace.Emit(trace.Vote, "%s/r%d: stale vote from incarnation %d (now %d)",
			g.Name, rec.rep, rec.inc, r.incarnation)
		return
	}
	m.Votes++
	r.crashCount = m.d.S.Domains[r.domain].CrashCount()
	r.lastVoteAt = m.d.Eng.Now()
	m.d.Trace.Emit(trace.Vote, "%s/r%d vote point %d digest %#x",
		g.Name, rec.rep, rec.vp, rec.digest)
	if rec.vp < g.committed {
		// Late vote for an already-committed point: benign catch-up if it
		// agrees, a divergence flag if not.
		r.votedVP = rec.vp
		if rec.digest != g.commits[rec.vp].Digest {
			m.flag(p, core, g, rec.rep, rec.vp, ReasonDiverged, rec.corrupt)
		}
		return
	}
	g.votes[rec.vp] = append(g.votes[rec.vp], arrival{
		rep: rec.rep, inc: rec.inc, digest: rec.digest, corrupt: rec.corrupt, at: m.d.Eng.Now(),
	})
	r.votedVP = rec.vp
	if !g.timerArmed[rec.vp] {
		g.timerArmed[rec.vp] = true
		m.armTimeout(g, rec.vp)
	}
	m.commitChain(p, core, g)
}

// armTimeout schedules the vote point's deadline. The handler runs as a
// spawned proc on the strong partition (it may flag, sweep and respawn,
// which need a proc context), skipped entirely when the point committed
// first.
func (m *Manager) armTimeout(g *Group, vp int) {
	eng := m.d.Eng
	eng.At(eng.Now().Add(m.Params.VoteTimeout), func() {
		if vp < g.committed {
			return
		}
		pr := eng.Spawn(fmt.Sprintf("%s-vote-timeout-%d", g.Name, vp), func(p *sim.Proc) {
			m.onTimeout(p, g, vp)
		})
		pr.SetPartition(m.d.S.DomainPartition(soc.Strong))
	})
}

// commitChain commits from the frontier forward while quorum holds. The
// chain matters after a timeout commit: the next point's votes may already
// be queued, and its own timer may have fired while it was not yet the
// frontier — re-arm in that case so no point can stall silently.
func (m *Manager) commitChain(p *sim.Proc, core *soc.Core, g *Group) {
	for g.committed < len(g.commits) {
		vp := g.committed
		digest, votes, ok := quorumDigest(g.currentArrivals(vp), m.quorum())
		if !ok {
			if len(g.votes[vp]) > 0 && !g.timerArmed[vp] {
				g.timerArmed[vp] = true
				m.armTimeout(g, vp)
			}
			return
		}
		m.commit(p, core, g, vp, digest, CommitQuorum, votes)
	}
}

// votesInFlight reports whether a live incarnation's vote for (g, vp) has
// been sent but not yet delivered to the voter.
func (m *Manager) votesInFlight(g *Group, vp int) bool {
	for i := range m.mails {
		rec := &m.mails[i]
		if rec.g == g && rec.vp == vp && !rec.delivered &&
			rec.inc == g.reps[rec.rep].incarnation {
			return true
		}
	}
	return false
}

// currentArrivals filters a vote point's arrivals down to live
// incarnations (a superseded replica's pre-flag vote must not count).
func (g *Group) currentArrivals(vp int) []arrival {
	arr := g.votes[vp][:0:0]
	for _, a := range g.votes[vp] {
		if a.inc == g.reps[a.rep].incarnation {
			arr = append(arr, a)
		}
	}
	return arr
}

// quorumDigest reports the digest holding at least q votes, if any. At
// most one digest can: q is a strict majority of R.
func quorumDigest(arr []arrival, q int) (uint64, int, bool) {
	for i, a := range arr {
		n := 1
		for _, b := range arr[i+1:] {
			if b.digest == a.digest {
				n++
			}
		}
		if n >= q {
			return a.digest, n, true
		}
	}
	return 0, 0, false
}

// pluralityDigest picks the most-voted digest. tied reports that a distinct
// digest matched the winner's count: healthy replicas run a pure function
// from the committed prefix and cannot disagree, so a tie proves a diverged
// digest is on the ballot — the caller must not commit one side of it.
func pluralityDigest(arr []arrival) (best uint64, bestN int, tied bool) {
	for _, a := range arr {
		n := 0
		for _, b := range arr {
			if b.digest == a.digest {
				n++
			}
		}
		if n > bestN {
			best, bestN, tied = a.digest, n, false
		} else if n == bestN && a.digest != best {
			tied = true
		}
	}
	return best, bestN, tied
}

// onTimeout commits the frontier by plurality after VoteTimeout of
// sub-quorum silence, then flags the stragglers.
func (m *Manager) onTimeout(p *sim.Proc, g *Group, vp int) {
	if vp != g.committed {
		return // committed while the handler proc was starting
	}
	if m.votesInFlight(g, vp) {
		// Votes for this point are sent but not yet heard — in the mailbox
		// fabric, or parked behind a busy strong dispatcher (a watchdog
		// reclaim sweep stalls it for longer than the vote timeout). A
		// replica that spoke must not be judged silent; wait another round.
		m.armTimeout(g, vp)
		return
	}
	arr := g.currentArrivals(vp)
	if len(arr) == 0 {
		// Every arrival went stale (its incarnation superseded). The
		// replacements will vote this point themselves; nothing to commit.
		return
	}
	digest, votes, tied := pluralityDigest(arr)
	if tied {
		// A diverged digest is on the ballot with no majority to outvote it
		// (a storm crashed an honest replica at the corrupted point, say).
		// Committing either side is a coin flip that can seal the lie; hold
		// the frontier and wait for a tiebreaker — the crashed replica thaws
		// on reboot and replays this point, or a respawned replacement votes
		// it. The added stall is the reboot path's, paid only in this
		// double-fault corner.
		m.armTimeout(g, vp)
		return
	}
	core := m.d.StrongCore()
	m.commit(p, core, g, vp, digest, CommitTimeout, votes)
	m.commitChain(p, core, g)
}

// commit seals a vote point, then audits the replica set against the
// committed digest: divergent voters are flagged always; non-voters are
// flagged when visibly crashed (quorum commits) or past the catch-up grace
// (timeout commits — a healthy replica in cadence cannot miss a timeout).
func (m *Manager) commit(p *sim.Proc, core *soc.Core, g *Group, vp int, digest uint64, mode CommitMode, votes int) {
	now := m.d.Eng.Now()
	g.commits[vp] = Commit{VotePoint: vp, Digest: digest, At: now, Mode: mode, Votes: votes}
	g.committed = vp + 1
	if mode == CommitQuorum {
		m.QuorumCommits++
	} else {
		m.TimeoutCommits++
	}
	m.d.Trace.Emit(trace.Vote, "group %s: vote point %d committed %#x (%s, %d votes)",
		g.Name, vp, digest, mode, votes)

	voted := make(map[int]arrival, len(g.reps))
	for _, a := range g.currentArrivals(vp) {
		voted[a.rep] = a
	}
	for i := range g.reps {
		r := &g.reps[i]
		if a, ok := voted[i]; ok {
			if a.digest != digest {
				m.flag(p, core, g, i, vp, ReasonDiverged, a.corrupt)
			}
			continue
		}
		dom := m.d.S.Domains[r.domain]
		switch mode {
		case CommitQuorum:
			// Outvoted with zero detection window: the quorum has already
			// committed; a visibly dead replica is flagged on the spot. A
			// healthy straggler (a catching-up replacement) is left alone.
			if dom.Crashed() {
				m.flag(p, core, g, i, vp, ReasonCrashed, false)
			}
		case CommitTimeout:
			if vp < r.startVP+graceVotePoints {
				continue // fresh incarnation still converging; not a fault
			}
			if !dom.Crashed() && now.Sub(r.lastVoteAt) <= m.Params.VoteTimeout {
				// Behind the frontier but audibly voting — a thawed replica
				// replaying the points it slept through. Let it catch up.
				continue
			}
			reason := ReasonSilent
			if dom.Crashed() {
				reason = ReasonCrashed
			}
			m.flag(p, core, g, i, vp, reason, false)
		}
	}
	if g.committed == len(g.commits) {
		m.d.Trace.Emit(trace.Vote, "group %s: all %d vote points committed", g.Name, len(g.commits))
		g.Done.Fire()
	}
}

// flag records an outvoted replica and immediately re-integrates its slot.
func (m *Manager) flag(p *sim.Proc, core *soc.Core, g *Group, idx, vp int, reason FlagReason, corrupt bool) {
	r := &g.reps[idx]
	dom := m.d.S.Domains[r.domain]
	f := Flag{
		Group: g.Name, Replica: idx, VotePoint: vp, Domain: r.domain,
		Reason: reason, At: m.d.Eng.Now(),
		Implicated: corrupt || dom.Crashed() || dom.CrashCount() != r.crashCount,
	}
	m.flags = append(m.flags, f)
	m.Outvoted++
	m.d.Trace.Emit(trace.Vote, "group %s: replica %d on %v outvoted at point %d (%s)",
		g.Name, idx, r.domain, vp, reason)
	m.reintegrate(p, core, g, idx)
}

// reintegrate replaces a flagged replica: take recovery of its old domain
// over from the watchdog (suppressing its reboot path — satellite of the
// double-recovery thrash), run the reclaim sweep if nobody has, then
// respawn a fresh incarnation from the last committed state on a domain
// chosen with anti-affinity against the surviving replicas.
func (m *Manager) reintegrate(p *sim.Proc, core *soc.Core, g *Group, idx int) {
	r := &g.reps[idx]
	old := r.domain
	if m.d.S.Domains[old].Crashed() && !m.swept[old] {
		ownsSweep := true
		if m.d.WatchdogSuppress != nil {
			ownsSweep = m.d.WatchdogSuppress(old)
		}
		if ownsSweep {
			m.swept[old] = true
			m.SweptDomains++
			// The sweep itself runs on its own proc: it charges milliseconds
			// of service-core time at large domain counts, and this call path
			// is the strong dispatcher — holding it would starve inbound
			// mail, and the watchdog would count phantom misses against every
			// healthy shadow kernel whose pongs sit undelivered behind the
			// sweep.
			pr := m.d.Eng.Spawn(fmt.Sprintf("%s-reint-sweep-%v", g.Name, old), func(sp *sim.Proc) {
				var locks, pages, blocks int
				if m.d.Reclaim != nil {
					locks, pages, blocks = m.d.Reclaim(sp, core, old)
				}
				m.d.Trace.Emit(trace.Fault,
					"re-integration: swept %v (%d locks, %d pages, %d blocks) ahead of the watchdog",
					old, locks, pages, blocks)
			})
			pr.SetPartition(m.d.S.DomainPartition(soc.Strong))
		}
	}
	// Anti-affinity pick: never a surviving replica's domain, prefer not
	// the old one and not a crashed one; degrade gracefully when the
	// platform is too small or too broken to offer better.
	live := make(map[soc.DomainID]bool, len(g.reps))
	for j := range g.reps {
		if j != idx {
			live[g.reps[j].domain] = true
		}
	}
	target := old // last resort: respawn in place, it recovers at reboot
	if pick := m.d.Sched.PickNWDomains(1, func(k soc.DomainID) bool {
		return live[k] || k == old || m.d.S.Domains[k].Crashed()
	}); len(pick) > 0 {
		target = pick[0]
	} else if pick := m.d.Sched.PickNWDomains(1, func(k soc.DomainID) bool {
		return live[k] || k == old
	}); len(pick) > 0 {
		target = pick[0]
	}
	r.incarnation++
	r.domain = target
	r.startVP = g.committed
	r.votedVP = g.committed - 1
	r.crashCount = m.d.S.Domains[target].CrashCount()
	r.lastVoteAt = m.d.Eng.Now()
	m.Reintegrations++
	state := g.spec.Machine.Init
	if g.committed > 0 {
		state = g.commits[g.committed-1].Digest
	}
	m.d.Trace.Emit(trace.Vote, "group %s: re-integrating replica %d on %v from vote point %d",
		g.Name, idx, target, g.committed)
	m.spawnReplica(g, idx, r.incarnation, g.committed, state)
}

// DomainBackAlive is the watchdog's suppressed-pong callback: a domain the
// manager swept has rebooted and answers again, so its slate is clean.
func (m *Manager) DomainBackAlive(k soc.DomainID) {
	if m.swept[k] {
		delete(m.swept, k)
	}
	m.RebootsObserved++
	m.d.Trace.Emit(trace.Vote, "%v rebooted during re-integration; watchdog resumes watch", k)
}

// SweptDead reports whether the manager (not the watchdog) reclaimed
// domain k's death and k has not come back since — check.Suite uses it to
// accept crashed residue the watchdog was suppressed away from.
func (m *Manager) SweptDead(k soc.DomainID) bool { return m.swept[k] }

// Groups returns every started group.
func (m *Manager) Groups() []*Group { return m.groups }

// Flags returns every outvote recorded so far.
func (m *Manager) Flags() []Flag { return append([]Flag(nil), m.flags...) }

// Committed returns how many vote points have committed, in order.
func (g *Group) Committed() int { return g.committed }

// VotePoints returns the group's total vote-point count.
func (g *Group) VotePoints() int { return len(g.commits) }

// Commits returns the committed prefix.
func (g *Group) Commits() []Commit {
	return append([]Commit(nil), g.commits[:g.committed]...)
}

// StartedAt returns when the group was started.
func (g *Group) StartedAt() sim.Time { return g.startedAt }

// CommitGaps returns the inter-commit intervals of the committed prefix,
// the first measured from group start — the workload-visible progress
// cadence whose spikes are exactly the fault-recovery latency replication
// exists to mask.
func (g *Group) CommitGaps() []time.Duration {
	gaps := make([]time.Duration, 0, g.committed)
	prev := g.startedAt
	for _, c := range g.commits[:g.committed] {
		gaps = append(gaps, c.At.Sub(prev))
		prev = c.At
	}
	return gaps
}

// ReplicaDomains returns each slot's current domain (tests assert the
// anti-affinity placement).
func (g *Group) ReplicaDomains() []soc.DomainID {
	out := make([]soc.DomainID, len(g.reps))
	for i := range g.reps {
		out[i] = g.reps[i].domain
	}
	return out
}

// Incarnation returns replica idx's current incarnation number.
func (g *Group) Incarnation(idx int) int { return g.reps[idx].incarnation }

// State is the manager's checkpointable configuration and counters.
// Checkpoints are taken at the boot-ready barrier, before any group
// starts, so group state never needs capturing — CaptureState enforces
// that the way sched refuses live threads.
type State struct {
	R              int
	VoteTimeoutNS  int64
	Votes          uint64
	Outvoted       uint64
	Reintegrations uint64
	QuorumCommits  uint64
	TimeoutCommits uint64
	SweptDomains   uint64
	Reboots        uint64
	Swept          []int // domains swept-dead at capture, ascending
}

// CaptureState snapshots the manager at a quiesce point.
func (m *Manager) CaptureState() (State, error) {
	if len(m.groups) > 0 {
		return State{}, fmt.Errorf("replica: cannot checkpoint with %d started groups", len(m.groups))
	}
	st := State{
		R: m.Params.R, VoteTimeoutNS: int64(m.Params.VoteTimeout),
		Votes: m.Votes, Outvoted: m.Outvoted, Reintegrations: m.Reintegrations,
		QuorumCommits: m.QuorumCommits, TimeoutCommits: m.TimeoutCommits,
		SweptDomains: m.SweptDomains, Reboots: m.RebootsObserved,
	}
	for k := range m.swept {
		st.Swept = append(st.Swept, int(k))
	}
	for i := 1; i < len(st.Swept); i++ {
		for j := i; j > 0 && st.Swept[j] < st.Swept[j-1]; j-- {
			st.Swept[j], st.Swept[j-1] = st.Swept[j-1], st.Swept[j]
		}
	}
	return st, nil
}

// RestoreState rewinds a freshly constructed manager onto a captured
// state.
func (m *Manager) RestoreState(st State) error {
	if st.R != m.Params.R || time.Duration(st.VoteTimeoutNS) != m.Params.VoteTimeout {
		return fmt.Errorf("replica: snapshot params R=%d timeout=%v, platform R=%d timeout=%v",
			st.R, time.Duration(st.VoteTimeoutNS), m.Params.R, m.Params.VoteTimeout)
	}
	m.Votes, m.Outvoted, m.Reintegrations = st.Votes, st.Outvoted, st.Reintegrations
	m.QuorumCommits, m.TimeoutCommits = st.QuorumCommits, st.TimeoutCommits
	m.SweptDomains, m.RebootsObserved = st.SweptDomains, st.Reboots
	m.swept = make(map[soc.DomainID]bool, len(st.Swept))
	for _, k := range st.Swept {
		m.swept[soc.DomainID(k)] = true
	}
	return nil
}
