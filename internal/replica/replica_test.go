package replica_test

import (
	"testing"
	"time"

	"k2/internal/core"
	"k2/internal/replica"
	"k2/internal/sim"
	"k2/internal/soc"
)

// bootReplicated boots a watched K2 system with the replication layer at
// degree r on a platform with the given number of weak domains.
func bootReplicated(t *testing.T, weak, r int) (*sim.Engine, *core.OS) {
	t.Helper()
	e := sim.NewEngine()
	cfg := soc.DefaultConfig().WithWeakDomains(weak)
	rel := soc.DefaultReliableParams()
	cfg.Reliable = &rel
	wd := core.DefaultWatchdogParams()
	o, err := core.Boot(e, core.Options{
		Mode: core.K2Mode, SoC: &cfg, Watchdog: &wd,
		Replication: &replica.Params{R: r, VoteTimeout: 500 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Replicas == nil {
		t.Fatal("replication layer not booted")
	}
	return e, o
}

// testMachine is a small deterministic machine: 2 steps per point at 24 µs
// of actual weak-core work each, so a 500 µs vote-point period binds.
func testMachine(points int) replica.Machine {
	return replica.Machine{
		Init: 0x1234_5678_9ABC_DEF0,
		Step: func(vp, s int, st uint64) uint64 {
			st ^= uint64(vp*31 + s + 1)
			st *= 0x9E3779B97F4A7C15
			return st
		},
		StepWork:     soc.Work(2 * time.Microsecond),
		StepsPerVote: 2,
		VotePoints:   points,
		Idle:         500 * time.Microsecond,
	}
}

// expectedDigests replays the machine as pure arithmetic: the digest
// sequence every healthy replica must vote and the voter must commit.
func expectedDigests(m replica.Machine) []uint64 {
	out := make([]uint64, m.VotePoints)
	st := m.Init
	for vp := 0; vp < m.VotePoints; vp++ {
		for s := 0; s < m.StepsPerVote; s++ {
			st = m.Step(vp, s, st)
		}
		out[vp] = st
	}
	return out
}

func requireCommittedSequence(t *testing.T, g *replica.Group, mach replica.Machine) {
	t.Helper()
	if !g.Done.Fired() {
		t.Fatalf("group not done: %d of %d points committed", g.Committed(), g.VotePoints())
	}
	want := expectedDigests(mach)
	for _, c := range g.Commits() {
		if c.Digest != want[c.VotePoint] {
			t.Fatalf("vote point %d committed %#x, machine computes %#x — a faulty digest won",
				c.VotePoint, c.Digest, want[c.VotePoint])
		}
	}
}

// A crashed replica must be outvoted by the surviving quorum with no
// workload-visible stall: every point commits the correct digest, the flag
// implicates the injected crash, and the commit cadence never opens a gap
// anywhere near the watchdog's detect-and-reboot window.
func TestReplicaQuorumMasksCrash(t *testing.T) {
	e, o := bootReplicated(t, 6, 3)
	mach := testMachine(16)
	g, err := o.Replicas.StartGroup(replica.GroupSpec{Name: "g", Machine: mach})
	if err != nil {
		t.Fatal(err)
	}
	victim := g.ReplicaDomains()[0]
	e.At(sim.Time(2200*time.Microsecond), func() { o.S.Domains[victim].Crash() })
	e.At(sim.Time(8*time.Millisecond), func() { o.S.Domains[victim].Reboot() })
	if err := e.Run(sim.Time(60 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	requireCommittedSequence(t, g, mach)
	flags := o.Replicas.Flags()
	if len(flags) == 0 {
		t.Fatal("crashed replica never flagged")
	}
	for _, f := range flags {
		if !f.Implicated {
			t.Fatalf("flag %+v not implicated by the injected crash", f)
		}
	}
	if o.Replicas.Reintegrations == 0 {
		t.Fatal("outvoted replica never re-integrated")
	}
	var maxGap time.Duration
	for _, gap := range g.CommitGaps() {
		if gap > maxGap {
			maxGap = gap
		}
	}
	// The watchdog path is ~1.5 ms detection plus reclaim plus reboot; the
	// voting quorum must ride straight through the crash. Two vote-point
	// periods of slack bounds scheduling noise.
	if maxGap > 2*mach.Idle {
		t.Fatalf("max commit gap %v — the crash was not masked (period %v)", maxGap, mach.Idle)
	}
}

// With R=2 a single crash leaves the group below quorum: progress must
// continue by timeout-plurality commits, still with the correct digests.
func TestReplicaTimeoutCommitsDegraded(t *testing.T) {
	e, o := bootReplicated(t, 4, 2)
	mach := testMachine(12)
	g, err := o.Replicas.StartGroup(replica.GroupSpec{Name: "g", Machine: mach})
	if err != nil {
		t.Fatal(err)
	}
	victim := g.ReplicaDomains()[1]
	e.At(sim.Time(2200*time.Microsecond), func() { o.S.Domains[victim].Crash() })
	e.At(sim.Time(8*time.Millisecond), func() { o.S.Domains[victim].Reboot() })
	if err := e.Run(sim.Time(60 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	requireCommittedSequence(t, g, mach)
	if o.Replicas.TimeoutCommits == 0 {
		t.Fatal("sub-quorum progress should have used timeout commits")
	}
	for _, f := range o.Replicas.Flags() {
		if !f.Implicated {
			t.Fatalf("flag %+v not implicated by the injected crash", f)
		}
	}
}

// A scripted divergence must lose the vote: the committed sequence stays
// the machine's, and the diverging replica is flagged (implicated, since
// the corruption is an injected fault) and re-incarnated.
func TestReplicaDivergenceOutvoted(t *testing.T) {
	e, o := bootReplicated(t, 6, 3)
	mach := testMachine(16)
	g, err := o.Replicas.StartGroup(replica.GroupSpec{
		Name: "g", Machine: mach,
		Corrupt: func(rep, vp int) bool { return rep == 1 && vp == 5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(sim.Time(60 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	requireCommittedSequence(t, g, mach)
	flags := o.Replicas.Flags()
	if len(flags) != 1 {
		t.Fatalf("flags %+v, want exactly the scripted divergence", flags)
	}
	f := flags[0]
	if f.Replica != 1 || f.VotePoint != 5 || f.Reason != replica.ReasonDiverged || !f.Implicated {
		t.Fatalf("flag %+v, want replica 1 diverged at point 5, implicated", f)
	}
	if g.Incarnation(1) != 1 {
		t.Fatalf("diverged replica at incarnation %d, want re-incarnated once", g.Incarnation(1))
	}
}

// The double-fault corner: the scripted divergence fires at a point where a
// storm has already frozen one honest replica, so the vote degrades to a
// 1-1 plurality tie between the poisoned digest and the lone honest one.
// The voter must hold the frontier instead of breaking the tie — the frozen
// replica thaws on reboot, replays the point, and the honest majority
// commits. Committing the tie the other way seals the poisoned digest and
// flags the healthy replica, both oracle violations.
func TestReplicaTieDefersUntilTiebreaker(t *testing.T) {
	e, o := bootReplicated(t, 6, 3)
	mach := testMachine(16)
	g, err := o.Replicas.StartGroup(replica.GroupSpec{
		Name: "g", Machine: mach,
		// Replica 0 votes first in mailbox order: its poisoned digest is the
		// earliest arrival, the side a naive earliest-wins tie-break seals.
		Corrupt: func(rep, vp int) bool { return rep == 0 && vp == 5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Freeze replica 2 after its point-4 vote and before its point-5 one.
	victim := g.ReplicaDomains()[2]
	e.At(sim.Time(2300*time.Microsecond), func() { o.S.Domains[victim].Crash() })
	e.At(sim.Time(10*time.Millisecond), func() { o.S.Domains[victim].Reboot() })
	if err := e.Run(sim.Time(120 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	requireCommittedSequence(t, g, mach)
	var diverged bool
	for _, f := range o.Replicas.Flags() {
		if !f.Implicated {
			t.Fatalf("flag %+v not implicated — a healthy replica was outvoted", f)
		}
		if f.Reason == replica.ReasonDiverged {
			if f.Replica != 0 {
				t.Fatalf("divergence flag on replica %d, want the corrupted replica 0", f.Replica)
			}
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("the scripted divergence was never flagged")
	}
}

// Placement is anti-affine: the initial set occupies distinct domains, and
// a re-integrated replacement lands on a domain no survivor occupies —
// never back on the crashed one.
func TestReplicaAntiAffinity(t *testing.T) {
	e, o := bootReplicated(t, 8, 3)
	mach := testMachine(16)
	g, err := o.Replicas.StartGroup(replica.GroupSpec{Name: "g", Machine: mach})
	if err != nil {
		t.Fatal(err)
	}
	initial := g.ReplicaDomains()
	seen := map[soc.DomainID]bool{}
	for _, d := range initial {
		if seen[d] {
			t.Fatalf("initial placement %v reuses a domain", initial)
		}
		seen[d] = true
	}
	victim := initial[2]
	e.At(sim.Time(2200*time.Microsecond), func() { o.S.Domains[victim].Crash() })
	if err := e.Run(sim.Time(60 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	after := g.ReplicaDomains()
	if after[2] == victim {
		t.Fatalf("replacement respawned on the crashed domain %v", victim)
	}
	if after[2] == after[0] || after[2] == after[1] {
		t.Fatalf("replacement %v collides with a survivor: %v", after[2], after)
	}
}

// R=1 is the unreplicated baseline: every vote commits on arrival (quorum
// of one), nothing is ever flagged, and the machinery adds no recoveries.
func TestReplicaR1Baseline(t *testing.T) {
	e, o := bootReplicated(t, 4, 1)
	mach := testMachine(12)
	g, err := o.Replicas.StartGroup(replica.GroupSpec{Name: "g", Machine: mach})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(sim.Time(60 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	requireCommittedSequence(t, g, mach)
	if n := o.Replicas.TimeoutCommits; n != 0 {
		t.Fatalf("%d timeout commits on a healthy R=1 run", n)
	}
	if fl := o.Replicas.Flags(); len(fl) != 0 {
		t.Fatalf("healthy R=1 run flagged %+v", fl)
	}
}

// A group needs R distinct weak domains; a too-small platform is an error,
// not a silent degradation.
func TestReplicaStartGroupTooFewDomains(t *testing.T) {
	_, o := bootReplicated(t, 2, 3)
	if _, err := o.Replicas.StartGroup(replica.GroupSpec{Name: "g", Machine: testMachine(4)}); err == nil {
		t.Fatal("StartGroup placed 3 replicas on 2 weak domains")
	}
}

// Two identical runs must agree byte-for-byte on the commit table — the
// determinism contract the voter's mailbox-ordered bookkeeping promises.
func TestReplicaDeterministicCommits(t *testing.T) {
	run := func() []replica.Commit {
		e, o := bootReplicated(t, 6, 3)
		mach := testMachine(16)
		g, err := o.Replicas.StartGroup(replica.GroupSpec{Name: "g", Machine: mach})
		if err != nil {
			t.Fatal(err)
		}
		victim := g.ReplicaDomains()[0]
		e.At(sim.Time(2200*time.Microsecond), func() { o.S.Domains[victim].Crash() })
		if err := e.Run(sim.Time(60 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		return g.Commits()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("commit counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("commit %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
