package trace

import "testing"

// FuzzParseKind asserts the kind-name codec is a clean partial inverse of
// String: parsing never panics, an accepted name round-trips exactly, and
// every in-range kind's String is accepted back.
func FuzzParseKind(f *testing.F) {
	for _, n := range Kinds() {
		f.Add(n)
	}
	f.Add("")
	f.Add("kind(3)")
	f.Add("DSM")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseKind(s)
		if err != nil {
			return
		}
		if got := k.String(); got != s {
			t.Fatalf("ParseKind(%q) = %v, but %v.String() = %q", s, k, k, got)
		}
		if k < 0 || k >= numKinds {
			t.Fatalf("ParseKind(%q) = %d, outside [0, %d)", s, k, numKinds)
		}
	})
}
