package trace_test

import (
	"os"

	"k2/internal/sim"
	"k2/internal/trace"
)

func ExampleBuffer() {
	e := sim.NewEngine()
	b := trace.New(e, 16)
	b.EnableOnly(trace.DSM, trace.Power)
	e.At(5, func() { b.Emit(trace.Power, "strong domain inactive") })
	e.At(9, func() { b.Emit(trace.DSM, "weak claimed page 42") })
	e.At(9, func() { b.Emit(trace.IRQ, "suppressed: kind disabled") })
	if err := e.RunAll(); err != nil {
		panic(err)
	}
	if err := b.Dump(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	//          5ns power   strong domain inactive
	//          9ns dsm     weak claimed page 42
	// -- 2 retained; totals: power=1 dsm=1
}
